GO ?= go

.PHONY: build vet lint test short race bench benchsmoke all check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static memory-safety lint over the shipped IR modules (examples +
# CARAT kernel suite); non-zero exit on any diagnostic.
lint:
	$(GO) run ./cmd/interweave lint examples/... kernels/...

test:
	$(GO) test ./...

# Quick gate: skips the multi-second sweep tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Full benchmark sweep, then regenerate BENCH_interp.json (interpreter
# fast path vs reference engine vs the pinned seed baseline).
bench:
	$(GO) test -bench=. -benchmem -count=3 ./...
	$(GO) run ./cmd/benchdiff -o BENCH_interp.json

# One run of every CARAT kernel on both execution engines, requiring
# bit-identical results; no timing, so it is cheap enough for check.
benchsmoke:
	$(GO) run ./cmd/benchdiff -quick

# Regenerate every table/figure (parallel across all cores by default).
all:
	$(GO) run ./cmd/interweave all

# Standard local gate.
check: build vet lint race benchsmoke

GO ?= go

# Minimum per-package statement coverage (percent) for the cover gate.
COVER_FLOOR ?= 60

.PHONY: build vet detvet lint test short race race-mem race-machine race-passes race-interp race-cache race-serve bench bench-mem bench-machine bench-cache bench-interp-fused benchsmoke cachesmoke servesmoke cover all check

build:
	$(GO) build ./...

vet: detvet
	$(GO) vet ./...

# Determinism vet over the repo's own Go sources: the packages that
# compute simulated time or experiment tables must not read the wall
# clock, the global math/rand generator, or map iteration order.
detvet:
	$(GO) run ./cmd/detvet

# Static memory-safety lint over the shipped IR modules (examples +
# CARAT kernel suite); non-zero exit on any diagnostic. The second leg
# checks the optimizer/linter lockstep: with the analysis-driven
# optimizer applied first, the opportunity linter must also be silent.
lint:
	$(GO) run ./cmd/interweave lint examples/... kernels/...
	$(GO) run ./cmd/interweave lint -opt -O examples/... kernels/...

test:
	$(GO) test ./...

# Quick gate: skips the multi-second sweep tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

# Focused race leg for the concurrent allocator front-end (CPUCache) and
# the parallel experiment runner — the two places goroutines share state.
race-mem:
	$(GO) test -race ./internal/mem ./internal/exp

# Focused race leg for the sharded event engine: the queue/barrier tests
# plus the stack-level sequential-vs-sharded oracles, under the race
# detector with multiple engine workers forced.
race-machine:
	$(GO) test -race ./internal/sim -run 'TestSharded|TestCancel'
	$(GO) test -race ./internal/core -run 'DomainOracle'
	$(GO) test -race ./internal/chaos -run 'TestShardedInvariantHooksFirePerShard'

# Focused race leg for the optimizer: the analysis-driven passes and
# their dataflow substrate share no state, and this keeps it that way
# when experiment cells run them from parallel workers.
race-passes:
	$(GO) test -race ./internal/analysis ./internal/passes -run 'TestGlobalDCE|TestLICM|TestCoalesce|TestOptimize|TestAvailCopies|TestAnalyzePurity|TestDomTree|TestLoopNest'
	$(GO) test -race ./internal/core -run 'TestCARATGeomeanUnderSix'

# Focused race leg for the interpreter engines: concurrent executors
# over a shared quiescent module (each with its own Interp) must stay
# race-free with superinstruction fusion active, and the fused
# differential sweeps keep the engines honest under the detector.
race-interp:
	$(GO) test -race ./internal/interp
	$(GO) test -race ./internal/passes -run 'TestDifferentialPassPipelines|FuzzDifferentialPipelines'

# Focused race leg for the result cache: the sharded LRU, singleflight
# coalescing, and the pool-slot handoff between them are the newest
# concurrent surfaces; the core leg runs the cached drivers at multiple
# pool widths over one shared Cache.
race-cache:
	$(GO) test -race ./internal/cache
	$(GO) test -race ./internal/core -run 'TestCached|TestChaosKeys|TestTableDigest'

# Focused race leg for the experiment service: the job store, bounded
# queue, NDJSON streamers, and graceful shutdown all share state with
# the worker goroutines and the cache/pool underneath; the whole suite
# (byte-identity, duplicate coalescing, backpressure, cancellation,
# shutdown leak checks, chaos replay) runs under the detector.
race-serve:
	$(GO) test -race -timeout 600s ./internal/serve

# Full benchmark sweep, then regenerate BENCH_interp.json (interpreter
# fast path vs reference engine vs the pinned seed baseline).
bench:
	$(GO) test -bench=. -benchmem -count=3 ./...
	$(GO) run ./cmd/benchdiff -o BENCH_interp.json

# Allocator benches: intrusive Buddy vs ReferenceBuddy single-core, plus
# the contended magazines-vs-mutex aggregate; writes BENCH_mem.json.
bench-mem:
	$(GO) run ./cmd/benchdiff -mem -o BENCH_mem.json

# Event-engine scaling benches: the Fig 3 heartbeat workload at 64-1024
# simulated CPUs, sequential vs sharded (digests must match); writes
# BENCH_machine.json.
bench-machine:
	$(GO) run ./cmd/benchdiff -machine -o BENCH_machine.json

# Result-cache benches: the experiment suite uncached vs cold vs warm
# (memory) vs warm (disk restart), plus the coalesced duplicate-caller
# leg; writes BENCH_cache.json and enforces the >=5x warm speedup.
bench-cache:
	$(GO) run ./cmd/benchdiff -cache -o BENCH_cache.json

# Interpreter-engine benchmark legs only (fast / reference / optimized /
# fused / optimized+fused), regenerating BENCH_interp.json with the
# fused geomeans; cheaper than the full `bench` sweep.
bench-interp-fused:
	$(GO) run ./cmd/benchdiff -o BENCH_interp.json

# One run of every CARAT kernel on both execution engines plus a 10k-op
# allocator differential trace, requiring bit-identical results; no
# timing, so it is cheap enough for check.
benchsmoke:
	$(GO) run ./cmd/benchdiff -quick

# Cold-vs-warm byte-identity smoke for the result cache on the trimmed
# experiment suite (memory, disk-restart, and coalescing legs); no
# timing, so it is cheap enough for check.
cachesmoke:
	$(GO) run ./cmd/benchdiff -cache -quick

# End-to-end daemon smoke: interweaved on an ephemeral port, one fig3
# job submitted over HTTP and followed via the event stream, result
# compared byte-for-byte (and by digest) against the registry run
# directly in-process, then a clean drain; no timing, cheap enough for
# check.
servesmoke:
	$(GO) run ./cmd/interweaved -smoke

# Per-package coverage gate over the internal packages: fails if any
# package tests below $(COVER_FLOOR)% of statements (or has no tests at
# all). Uses -short so it stays cheap enough for check.
cover:
	@$(GO) test -short -count=1 -cover ./internal/... | awk -v floor=$(COVER_FLOOR) '\
		{ print } \
		/\[no test files\]/ { bad = bad "  " $$2 " (no test files)\n" } \
		$$1 == "ok" && /coverage:/ { if ($$5+0 < floor) bad = bad "  " $$2 " (" $$5 ")\n" } \
		END { if (bad != "") { printf "\ncover: packages below the %s%% floor:\n%s", floor, bad; exit 1 } }'

# Regenerate every table/figure (parallel across all cores by default).
all:
	$(GO) run ./cmd/interweave all

# Standard local gate.
check: build vet lint race race-mem race-machine race-passes race-interp race-cache race-serve cover benchsmoke cachesmoke servesmoke

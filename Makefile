GO ?= go

.PHONY: build vet test short race bench all check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Quick gate: skips the multi-second sweep tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure (parallel across all cores by default).
all:
	$(GO) run ./cmd/interweave all

# Standard local gate.
check: build vet race

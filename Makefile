GO ?= go

.PHONY: build vet lint test short race bench all check

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static memory-safety lint over the shipped IR modules (examples +
# CARAT kernel suite); non-zero exit on any diagnostic.
lint:
	$(GO) run ./cmd/interweave lint examples/... kernels/...

test:
	$(GO) test ./...

# Quick gate: skips the multi-second sweep tests.
short:
	$(GO) test -short ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure (parallel across all cores by default).
all:
	$(GO) run ./cmd/interweave all

# Standard local gate.
check: build vet lint race

// Package chaos is the deterministic fault-injection and
// schedule-exploration harness for the simulated stack (the
// FoundationDB-style deterministic-simulation-testing idea applied to
// this repository): a Plan derived from a single seed injects faults at
// named sites — allocation failure in the mem layer, IPI loss/delay and
// timer jitter at the machine layer, event-wake delays in Nautilus,
// step-budget exhaustion in the interpreter — while registered
// cross-layer invariant checkers run at every injection firing.
//
// Determinism is the whole point: every site draws from its own RNG
// stream, derived from the plan seed and the site name alone
// (sim.RNG.SplitLabel), so the fault schedule is a pure function of
// (seed, per-site call sequence) — independent of site registration
// order and of which other sites exist. Running the same workload twice
// under the same seed yields byte-identical results and an identical
// fault trace; that property is what the metamorphic suite asserts.
//
// Layering: the substrate packages (mem, machine, nautilus, heartbeat,
// interp) know nothing about this package — they expose plain func
// hooks and invariant-check methods. chaos supplies injector closures
// for those hooks, and the composition happens in internal/core, in the
// cmd binaries, and in tests.
package chaos

import (
	"errors"
	"fmt"
)

// Kind classifies an injected fault.
type Kind uint8

const (
	// AllocFail fails an allocation (mem.Buddy.Inject / mem.CPUCache.Inject).
	AllocFail Kind = iota
	// IPIDrop suppresses an inter-processor interrupt entirely.
	IPIDrop
	// IPIDelay defers an IPI's delivery by Arg cycles.
	IPIDelay
	// TimerJitter stretches a LAPIC timer's next expiry by Arg cycles.
	TimerJitter
	// WakeDelay defers an idle-CPU dispatch after an event wake by Arg
	// cycles (never drops it — a dropped wake would be a lost wakeup,
	// which is exactly the bug class the invariant checker hunts).
	WakeDelay
	// StepBudget is interpreter step-budget exhaustion (ErrStepLimit
	// under a chaos-chosen MaxSteps).
	StepBudget
)

// String names the kind for traces.
func (k Kind) String() string {
	switch k {
	case AllocFail:
		return "alloc-fail"
	case IPIDrop:
		return "ipi-drop"
	case IPIDelay:
		return "ipi-delay"
	case TimerJitter:
		return "timer-jitter"
	case WakeDelay:
		return "wake-delay"
	case StepBudget:
		return "step-budget"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Fault is one injected fault occurrence: the site that fired, its
// per-site sequence number, the kind, and a kind-specific argument
// (bytes requested, delay cycles, steps executed).
type Fault struct {
	Site string
	Seq  int
	Kind Kind
	Arg  int64
}

// String renders the fault for traces and errors.
func (f Fault) String() string {
	return fmt.Sprintf("%s#%d %s(%d)", f.Site, f.Seq, f.Kind, f.Arg)
}

// FaultError is the typed error surfaced when an injected fault makes
// an operation fail. It wraps the underlying domain error (e.g.
// mem.ErrOutOfMemory, interp.ErrStepLimit), so errors.Is against the
// domain sentinel still matches, and errors.As against *FaultError
// identifies the failure as injected rather than organic.
type FaultError struct {
	Fault Fault
	Err   error
}

// Error renders the injected failure.
func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s: %v", e.Fault, e.Err)
}

// Unwrap exposes the wrapped domain error.
func (e *FaultError) Unwrap() error { return e.Err }

// AsFault reports whether err is or wraps a *FaultError, returning it.
func AsFault(err error) (*FaultError, bool) {
	var fe *FaultError
	if errors.As(err, &fe) {
		return fe, true
	}
	return nil, false
}

// Violation records an invariant check that failed during a fault
// firing: which fault was in flight, which named invariant broke, and
// the checker's error.
type Violation struct {
	Fault     Fault
	Invariant string
	Err       error
}

// String renders the violation.
func (v Violation) String() string {
	return fmt.Sprintf("invariant %q violated at %s: %v", v.Invariant, v.Fault, v.Err)
}

// Config sets per-kind fault rates and bounds. Zero values disable the
// corresponding fault kind, so Config{} is a no-fault plan.
type Config struct {
	// AllocFailProb is the per-allocation probability of transient
	// failure at each alloc site.
	AllocFailProb float64
	// AllocBudget, when non-zero, models hard exhaustion: after this
	// many allocation consults at a site, every later allocation there
	// fails. This is the stressor for the paper's no-fault memory-model
	// claim (§III): layers above must degrade, not corrupt.
	AllocBudget uint64
	// IPIDropProb / IPIDelayProb / IPIDelayMax perturb IPI delivery.
	IPIDropProb  float64
	IPIDelayProb float64
	IPIDelayMax  int64
	// TimerJitterProb / TimerJitterMax stretch LAPIC timer expiries.
	TimerJitterProb float64
	TimerJitterMax  int64
	// WakeDelayProb / WakeDelayMax defer idle-CPU event-wake dispatches.
	WakeDelayProb float64
	WakeDelayMax  int64
	// MaxSteps, when non-zero, is the interpreter step budget a plan
	// imposes (see Plan.StepBudget).
	MaxSteps int64
}

// DefaultConfig returns moderate fault rates: frequent enough that a
// hundred-seed metamorphic sweep exercises every kind, rare enough that
// workloads usually complete.
func DefaultConfig() Config {
	return Config{
		AllocFailProb:   0.02,
		IPIDropProb:     0.05,
		IPIDelayProb:    0.10,
		IPIDelayMax:     20_000,
		TimerJitterProb: 0.25,
		TimerJitterMax:  30_000,
		WakeDelayProb:   0.10,
		WakeDelayMax:    5_000,
	}
}

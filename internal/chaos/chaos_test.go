package chaos_test

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/interp"
	"repro/internal/mem"
)

// TestZeroConfigInjectsNothing: Config{} must be a no-fault plan — every
// injector kind stays silent over many consults.
func TestZeroConfigInjectsNothing(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(7, chaos.Config{})
	alloc := p.AllocInjector("a", mem.ErrOutOfMemory)
	ipi := p.IPIInjector("i")
	tmr := p.TimerInjector("t")
	wake := p.WakeInjector("w")
	for k := 0; k < 1000; k++ {
		if err := alloc(64); err != nil {
			t.Fatalf("alloc consult %d injected: %v", k, err)
		}
		if drop, delay := ipi(0, 1, 2); drop || delay != 0 {
			t.Fatalf("ipi consult %d injected drop=%v delay=%d", k, drop, delay)
		}
		if d := tmr(0, 2, 100); d != 0 {
			t.Fatalf("timer consult %d injected %d", k, d)
		}
		if d := wake(); d != 0 {
			t.Fatalf("wake consult %d injected %d", k, d)
		}
	}
	if p.Faults() != 0 || len(p.Trace()) != 0 {
		t.Fatalf("no-fault plan recorded %d faults", p.Faults())
	}
}

// TestSiteStreamsIndependent: a site's decision stream is a pure
// function of (seed, site name, per-site consult sequence). Driving
// *other* sites — or creating them in a different order — must not
// change what a site does.
func TestSiteStreamsIndependent(t *testing.T) {
	t.Parallel()
	cfg := chaos.Config{AllocFailProb: 0.3}
	drive := func(p *chaos.Plan, site string, n int) []bool {
		inj := p.AllocInjector(site, mem.ErrOutOfMemory)
		out := make([]bool, n)
		for i := range out {
			out[i] = inj(uint64(i)) != nil
		}
		return out
	}

	// Plan A: site "x" alone. Plan B: sites "noise1", "x", "noise2"
	// interleaved, with "x" consulted the same number of times.
	pa := chaos.NewPlan(99, cfg)
	want := drive(pa, "x", 200)

	pb := chaos.NewPlan(99, cfg)
	drive(pb, "noise1", 137)
	got := drive(pb, "x", 200)
	drive(pb, "noise2", 53)

	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("site x consult %d: alone=%v with-noise=%v", i, want[i], got[i])
		}
	}

	// And the per-site trace is identical too.
	ta, tb := pa.Trace(), pb.Trace()
	var xb []chaos.Fault
	for _, f := range tb {
		if f.Site == "x" {
			xb = append(xb, f)
		}
	}
	if len(ta) != len(xb) {
		t.Fatalf("trace length: alone=%d with-noise=%d", len(ta), len(xb))
	}
	for i := range ta {
		if ta[i] != xb[i] {
			t.Fatalf("trace[%d]: alone=%v with-noise=%v", i, ta[i], xb[i])
		}
	}
}

// TestSameSeedSameSchedule: two plans with the same seed produce
// byte-identical traces for the same consult sequence; a different seed
// produces a different one.
func TestSameSeedSameSchedule(t *testing.T) {
	t.Parallel()
	cfg := chaos.DefaultConfig()
	run := func(seed uint64) string {
		p := chaos.NewPlan(seed, cfg)
		alloc := p.AllocInjector("mem/alloc", mem.ErrOutOfMemory)
		ipi := p.IPIInjector("machine/ipi")
		tmr := p.TimerInjector("machine/timer")
		for i := 0; i < 500; i++ {
			_ = alloc(uint64(i % 512))
			_, _ = ipi(0, i%4, 1)
			_ = tmr(i%4, 2, 1000)
		}
		return p.TraceString()
	}
	a, b := run(42), run(42)
	if a != b {
		t.Fatalf("same seed diverged:\n--- run1\n%s--- run2\n%s", a, b)
	}
	if a == run(43) {
		t.Fatal("different seeds produced identical schedules")
	}
	if a == "" {
		t.Fatal("default config injected nothing over 1500 consults")
	}
}

// TestAllocBudgetExhaustion: after AllocBudget consults a site fails
// every allocation (hard exhaustion), regardless of probability.
func TestAllocBudgetExhaustion(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(1, chaos.Config{AllocBudget: 5})
	inj := p.AllocInjector("heap", mem.ErrOutOfMemory)
	for i := 0; i < 5; i++ {
		if err := inj(64); err != nil {
			t.Fatalf("consult %d failed inside budget: %v", i, err)
		}
	}
	for i := 0; i < 20; i++ {
		err := inj(64)
		if err == nil {
			t.Fatalf("consult %d succeeded past exhaustion budget", 5+i)
		}
		fe, ok := chaos.AsFault(err)
		if !ok || fe.Fault.Kind != chaos.AllocFail {
			t.Fatalf("exhaustion error not an alloc FaultError: %v", err)
		}
	}
}

// TestFaultErrorWrapsDomainSentinel: the typed chaos error must keep
// errors.Is working against the domain sentinel it wraps, and AsFault
// must find it through further wrapping.
func TestFaultErrorWrapsDomainSentinel(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(3, chaos.Config{AllocFailProb: 1})
	err := p.AllocInjector("z", mem.ErrOutOfMemory)(128)
	if err == nil {
		t.Fatal("probability-1 injector did not fire")
	}
	if !errors.Is(err, mem.ErrOutOfMemory) {
		t.Fatalf("errors.Is(err, mem.ErrOutOfMemory) = false for %v", err)
	}
	wrapped := fmt.Errorf("cell 3: %w", fmt.Errorf("alloc: %w", err))
	fe, ok := chaos.AsFault(wrapped)
	if !ok {
		t.Fatalf("AsFault failed through wrapping: %v", wrapped)
	}
	if fe.Fault.Site != "z" || fe.Fault.Kind != chaos.AllocFail || fe.Fault.Arg != 128 {
		t.Fatalf("fault metadata wrong: %+v", fe.Fault)
	}
	if _, ok := chaos.AsFault(mem.ErrOutOfMemory); ok {
		t.Fatal("AsFault matched a plain domain error")
	}
}

// TestStepFault: the interpreter hook records a StepBudget fault and
// wraps interp.ErrStepLimit.
func TestStepFault(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(5, chaos.Config{MaxSteps: 1000})
	if got := p.StepBudget(77); got != 1000 {
		t.Fatalf("StepBudget = %d, want configured 1000", got)
	}
	if got := chaos.NewPlan(5, chaos.Config{}).StepBudget(77); got != 77 {
		t.Fatalf("StepBudget = %d, want default 77", got)
	}
	err := p.StepFault("interp/steps", interp.ErrStepLimit)()
	if !errors.Is(err, interp.ErrStepLimit) {
		t.Fatalf("step fault does not wrap ErrStepLimit: %v", err)
	}
	fe, _ := chaos.AsFault(err)
	if fe == nil || fe.Fault.Kind != chaos.StepBudget || fe.Fault.Arg != 1000 {
		t.Fatalf("step fault metadata wrong: %v", err)
	}
}

// TestTraceCanonicalOrder: Trace merges per-site histories sorted by
// (site, seq), independent of consult interleaving.
func TestTraceCanonicalOrder(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(8, chaos.Config{AllocFailProb: 1})
	b := p.AllocInjector("b", mem.ErrOutOfMemory)
	a := p.AllocInjector("a", mem.ErrOutOfMemory)
	_ = b(1)
	_ = a(2)
	_ = b(3)
	tr := p.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace length = %d", len(tr))
	}
	want := []chaos.Fault{
		{Site: "a", Seq: 0, Kind: chaos.AllocFail, Arg: 2},
		{Site: "b", Seq: 0, Kind: chaos.AllocFail, Arg: 1},
		{Site: "b", Seq: 1, Kind: chaos.AllocFail, Arg: 3},
	}
	for i := range want {
		if tr[i] != want[i] {
			t.Fatalf("trace[%d] = %v, want %v", i, tr[i], want[i])
		}
	}
}

// TestInvariantViolationsRecorded: a failing checker is recorded against
// the in-flight fault; CheckNow records against a synthetic checkpoint.
func TestInvariantViolationsRecorded(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(9, chaos.Config{AllocFailProb: 1})
	broken := errors.New("free list corrupted")
	healthy := 0
	p.OnInvariant("always-bad", func() error { return broken })
	p.OnInvariant("always-good", func() error { healthy++; return nil })

	_ = p.AllocInjector("s", mem.ErrOutOfMemory)(64)
	p.CheckNow("final")

	v := p.Violations()
	if len(v) != 2 {
		t.Fatalf("violations = %d, want 2 (one per firing): %v", len(v), v)
	}
	if v[0].Invariant != "always-bad" || !errors.Is(v[0].Err, broken) {
		t.Fatalf("violation[0] = %v", v[0])
	}
	if v[0].Fault.Site != "s" {
		t.Fatalf("violation[0] fault = %v, want site s", v[0].Fault)
	}
	if v[1].Fault.Site != "checkpoint/final" {
		t.Fatalf("violation[1] fault = %v, want checkpoint", v[1].Fault)
	}
	if healthy != 2 {
		t.Fatalf("healthy checker ran %d times, want 2", healthy)
	}
}

// TestInvariantReentrancyBounded: a checker whose own inspection path
// fires a fault (e.g. it probes an allocator that has an injector
// installed) must not recurse into the checkers again.
func TestInvariantReentrancyBounded(t *testing.T) {
	t.Parallel()
	p := chaos.NewPlan(11, chaos.Config{AllocFailProb: 1})
	inner := p.AllocInjector("inner", mem.ErrOutOfMemory)
	calls := 0
	p.OnInvariant("probing", func() error {
		calls++
		_ = inner(32) // fires a fault from inside the checker
		return nil
	})
	_ = p.AllocInjector("outer", mem.ErrOutOfMemory)(64)
	if calls != 1 {
		t.Fatalf("checker ran %d times, want exactly 1 (no recursion)", calls)
	}
	// Both faults are still in the trace.
	if p.Faults() != 2 {
		t.Fatalf("faults = %d, want 2", p.Faults())
	}
}

// TestCPUAllocSubsites: per-CPU injectors use independent sub-site
// streams — cpu 0's traffic does not perturb cpu 1's schedule.
func TestCPUAllocSubsites(t *testing.T) {
	t.Parallel()
	cfg := chaos.Config{AllocFailProb: 0.4}
	seq := func(p *chaos.Plan, cpu, n int, noise bool) []bool {
		inj := p.CPUAllocInjector("cache", mem.ErrOutOfMemory)
		out := make([]bool, n)
		for i := range out {
			if noise {
				_ = inj(0, 8) // interleaved traffic on cpu 0
			}
			out[i] = inj(cpu, uint64(i)) != nil
		}
		return out
	}
	quiet := seq(chaos.NewPlan(21, cfg), 1, 300, false)
	noisy := seq(chaos.NewPlan(21, cfg), 1, 300, true)
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("cpu1 consult %d perturbed by cpu0 traffic", i)
		}
	}
}

package chaos_test

// The metamorphic suite is the harness's acceptance test: for every
// seed, run each cross-layer scenario twice and require byte-identical
// output AND a byte-identical fault trace — the deterministic-replay
// property the whole package exists for. Within a run, every error that
// escapes a scenario must be (or wrap) a typed *chaos.FaultError, no
// scenario may panic, and every registered invariant must hold at every
// injection firing.
//
// Run wide with:
//
//	go test ./internal/chaos -run TestMetamorphic -seeds 100

import (
	"errors"
	"flag"
	"fmt"
	"reflect"
	"runtime/debug"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/interp"
	"repro/internal/machine"
	"repro/internal/mem"
	"repro/internal/model"
	"repro/internal/nautilus"
	"repro/internal/sim"
	"repro/internal/workloads"
)

var seedsFlag = flag.Int("seeds", 25, "chaos seeds swept per metamorphic scenario")

// scenario is one fault-injected workload: it builds a fresh stack
// slice, arms a plan, runs, and renders everything observable into a
// deterministic output string. A non-nil error means the scenario saw
// something the harness must fail on (corruption, lost work, an
// untyped failure) — injected faults are *not* errors here, they fold
// into the output.
type scenario struct {
	name string
	run  func(seed uint64) (string, *chaos.Plan, error)
}

var scenarios = []scenario{
	{"buddy-churn", scenarioBuddy},
	{"heartbeat-ipi", scenarioHeartbeat},
	{"nautilus-events", scenarioNautilus},
	{"interp-budget", scenarioInterp},
}

func TestMetamorphic(t *testing.T) {
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			t.Parallel()
			for s := 0; s < *seedsFlag; s++ {
				seed := uint64(s) + 1
				out1, trace1 := runOnce(t, sc, seed)
				out2, trace2 := runOnce(t, sc, seed)
				if out1 != out2 {
					t.Fatalf("%s seed %d: output diverged between replays\n--- run1\n%s\n--- run2\n%s",
						sc.name, seed, out1, out2)
				}
				if trace1 != trace2 {
					t.Fatalf("%s seed %d: fault trace diverged between replays\n--- run1\n%s--- run2\n%s",
						sc.name, seed, trace1, trace2)
				}
			}
		})
	}
}

// runOnce executes one scenario run, failing the test on panics,
// harness errors, or invariant violations.
func runOnce(t *testing.T, sc scenario, seed uint64) (out, trace string) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s seed %d panicked: %v\n%s", sc.name, seed, r, debug.Stack())
		}
	}()
	out, plan, err := sc.run(seed)
	if err != nil {
		t.Fatalf("%s seed %d: %v", sc.name, seed, err)
	}
	if v := plan.Violations(); len(v) > 0 {
		t.Fatalf("%s seed %d: %d invariant violation(s), first: %v", sc.name, seed, len(v), v[0])
	}
	return out, plan.TraceString()
}

// faultString renders an injected failure for the output transcript,
// returning an error instead if err is not fault-typed.
func faultString(err error) (string, error) {
	if err == nil {
		return "ok", nil
	}
	if fe, ok := chaos.AsFault(err); ok {
		return fe.Error(), nil
	}
	return "", fmt.Errorf("untyped failure escaped: %w", err)
}

// scenarioBuddy churns the intrusive buddy allocator under transient
// fault injection plus hard exhaustion, with the allocator's structural
// invariants checked at every firing. Organic out-of-memory (the zone
// really is full) is tolerated; anything else escaping Alloc/Free is a
// harness failure.
func scenarioBuddy(seed uint64) (string, *chaos.Plan, error) {
	cfg := chaos.DefaultConfig()
	cfg.AllocFailProb = 0.05
	cfg.AllocBudget = 700
	plan := chaos.NewPlan(seed, cfg)

	b, err := mem.NewBuddy(0, 1<<20, 6)
	if err != nil {
		return "", plan, err
	}
	b.Inject = plan.AllocInjector("buddy/alloc", mem.ErrOutOfMemory)
	plan.OnInvariant("buddy-structure", b.CheckInvariants)

	rng := sim.NewRNG(seed ^ 0xb0ddd)
	var live []mem.Addr
	injected, organic := 0, 0
	for op := 0; op < 1000; op++ {
		if len(live) == 0 || rng.Float64() < 0.6 {
			a, aerr := b.Alloc(1 + rng.Uint64()%8192)
			if aerr != nil {
				if _, ok := chaos.AsFault(aerr); ok {
					injected++
				} else if errors.Is(aerr, mem.ErrOutOfMemory) {
					organic++
				} else {
					return "", plan, fmt.Errorf("op %d: unexpected alloc error: %w", op, aerr)
				}
				continue
			}
			live = append(live, a)
		} else {
			i := int(rng.Uint64() % uint64(len(live)))
			if ferr := b.Free(live[i]); ferr != nil {
				return "", plan, fmt.Errorf("op %d: free of live block failed: %w", op, ferr)
			}
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
		}
	}
	for _, a := range live {
		if ferr := b.Free(a); ferr != nil {
			return "", plan, fmt.Errorf("teardown free failed: %w", ferr)
		}
	}
	plan.CheckNow("teardown")
	if b.LiveAllocs() != 0 {
		return "", plan, fmt.Errorf("leak: %d live allocs after teardown", b.LiveAllocs())
	}
	out := fmt.Sprintf("stats=%+v injected=%d organic=%d largest=%d",
		b.Stats(), injected, organic, b.LargestFree())
	return out, plan, nil
}

// scenarioHeartbeat runs the TPAL-style heartbeat runtime on the
// Nautilus-IPI substrate while the hardware layer drops and delays the
// heartbeat IPIs and jitters the LAPIC timers (the real ArmChaos wiring
// from internal/core). Lost IPIs only skip promotions — the frame
// conservation invariant must hold at every firing and the full
// iteration range must still complete.
func scenarioHeartbeat(seed uint64) (string, *chaos.Plan, error) {
	plan := chaos.NewPlan(seed, chaos.DefaultConfig())
	eng := sim.NewEngine()
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: 4}, 7)
	core.ArmChaos(m, plan)

	hcfg := heartbeat.DefaultConfig()
	hcfg.Substrate = heartbeat.SubstrateNautilusIPI
	hcfg.PeriodCycles = 20_000
	hcfg.Seed = seed
	rt := heartbeat.New(m, hcfg)
	plan.OnInvariant("frame-conservation", rt.CheckInvariants)

	const items = 60_000
	rt.Run(items, 40, 32)
	plan.CheckNow("done")

	var done, promos, hits int64
	for w := 0; w < rt.NumWorkers(); w++ {
		st := rt.WorkerStats(w)
		done += st.Items
		promos += st.Promotions
		hits += st.StealHits
	}
	if done != items {
		return "", plan, fmt.Errorf("lost work under IPI faults: %d of %d items done", done, items)
	}
	out := fmt.Sprintf("doneAt=%d items=%d promotions=%d steals=%d ipisDropped=%d",
		rt.DoneAt(), done, promos, hits, dropTotal(m))
	return out, plan, nil
}

func dropTotal(m *machine.Machine) int64 {
	var n int64
	for _, c := range m.CPUs {
		n += c.Stats.IPIsDropped
	}
	return n
}

// scenarioNautilus exercises the Nautilus event path: worker threads
// park on a join-style latch, a signaler broadcasts, and the chaos plan
// defers the idle-CPU dispatches that follow each wake while failing a
// slice of the kernel's state allocations (which the kernel must absorb
// — threads degrade to stateless, nothing corrupts). The no-lost-wakeup
// invariant runs at every firing, and every worker must complete.
func scenarioNautilus(seed uint64) (string, *chaos.Plan, error) {
	cfg := chaos.DefaultConfig()
	cfg.AllocFailProb = 0.25
	plan := chaos.NewPlan(seed, cfg)

	eng := sim.NewEngine()
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: 4}, 7)
	k := nautilus.New(m, nautilus.DefaultConfig())
	defer k.Shutdown()

	k.WakeDelay = plan.WakeInjector("nautilus/wake")
	for zi, z := range k.Mem.Zones {
		z.Buddy.Inject = plan.AllocInjector(fmt.Sprintf("nautilus/zone%d", zi), mem.ErrOutOfMemory)
		z.Cache.Inject = plan.CPUAllocInjector(fmt.Sprintf("nautilus/cache%d", zi), mem.ErrOutOfMemory)
		plan.OnInvariant(fmt.Sprintf("zone%d-structure", zi), z.Buddy.CheckInvariants)
	}

	gate := nautilus.NewLatch(k)
	plan.OnInvariant("no-lost-wakeup", gate.CheckNoLostWakeup)

	const workers = 6
	done := 0
	for i := 0; i < workers; i++ {
		i := i
		k.Spawn(1+i%3, nautilus.ClassThread, nautilus.ThreadOpts{}, func(tc *nautilus.ThreadCtx) {
			tc.Compute(int64(500 * (i + 1)))
			tc.Wait(gate)
			tc.Compute(250)
			done++
		})
	}
	k.Spawn(0, nautilus.ClassThread, nautilus.ThreadOpts{}, func(tc *nautilus.ThreadCtx) {
		tc.Compute(30_000)
		tc.Broadcast(gate)
	})
	eng.Run()
	plan.CheckNow("quiesced")

	if done != workers {
		return "", plan, fmt.Errorf("lost wakeup: %d of %d workers finished", done, workers)
	}
	ms := k.MemStats()
	out := fmt.Sprintf("now=%d switches=%d signals=%d wakeups=%d stateAllocs=%d stateFailed=%d cacheAllocs=%d",
		eng.Now(), k.Switches, gate.Signals, gate.Wakeups,
		ms.StateAllocs, ms.StateAllocFailed, ms.Cache.Allocs)
	return out, plan, nil
}

// scenarioInterp runs one CARAT IR kernel on BOTH interpreter engines
// under a chaos-chosen step budget and heap-allocation faults, each
// engine under its own plan derived from the same seed (identical
// per-site streams). The engines must remain bit-identical under
// injection: same return value or same fault at the same point, same
// final heap, same fault trace.
func scenarioInterp(seed uint64) (string, *chaos.Plan, error) {
	suite := workloads.CARATSuite()
	k := suite[int(seed)%len(suite)]
	cfg := chaos.Config{
		AllocFailProb: 0.01,
		MaxSteps:      2_000 + int64(seed%97)*3_000,
	}

	type result struct {
		ret  uint64
		stat interp.Stats
		heap map[mem.Addr]uint64
		errs string
	}
	engine := func(reference bool) (result, *chaos.Plan, error) {
		plan := chaos.NewPlan(seed, cfg)
		ip, err := interp.New(k.Build())
		if err != nil {
			return result{}, plan, err
		}
		ip.MaxSteps = plan.StepBudget(interp.DefaultMaxSteps)
		ip.Hooks.StepLimit = plan.StepFault("interp/steps", interp.ErrStepLimit)
		ip.Heap.Buddy.Inject = plan.AllocInjector("interp/heap", mem.ErrOutOfMemory)
		plan.OnInvariant("heap-structure", ip.Heap.Buddy.CheckInvariants)

		var ret uint64
		if reference {
			ret, err = ip.ReferenceCall(k.Entry)
		} else {
			ret, err = ip.Call(k.Entry)
		}
		es, herr := faultString(err)
		if herr != nil {
			return result{}, plan, herr
		}
		plan.CheckNow("returned")
		return result{ret: ret, stat: ip.Stats, heap: ip.Heap.Snapshot(), errs: es}, plan, nil
	}

	fast, fplan, err := engine(false)
	if err != nil {
		return "", fplan, err
	}
	ref, rplan, err := engine(true)
	if err != nil {
		return "", rplan, err
	}
	if fast.ret != ref.ret || fast.stat != ref.stat || fast.errs != ref.errs ||
		!reflect.DeepEqual(fast.heap, ref.heap) {
		return "", fplan, fmt.Errorf("%s: engines diverged under injection: fast=(ret %d, %q) reference=(ret %d, %q)",
			k.Name, fast.ret, fast.errs, ref.ret, ref.errs)
	}
	if ft, rt := fplan.TraceString(), rplan.TraceString(); ft != rt {
		return "", fplan, fmt.Errorf("%s: fault schedules diverged between engines:\n--- fast\n%s--- reference\n%s",
			k.Name, ft, rt)
	}
	// Also reflect reference-plan violations into the returned plan's
	// verdict by failing here: the harness only inspects one plan.
	if v := rplan.Violations(); len(v) > 0 {
		return "", fplan, fmt.Errorf("%s: reference engine invariant violation: %v", k.Name, v[0])
	}
	out := fmt.Sprintf("kernel=%s ret=%d steps=%d cycles=%d heapwords=%d outcome=%s",
		k.Name, fast.ret, fast.stat.Steps, fast.stat.Cycles, len(fast.heap), fast.errs)
	return out, fplan, nil
}

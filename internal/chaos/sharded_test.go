package chaos_test

import (
	"fmt"
	"testing"

	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/heartbeat"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// runShardedHeartbeat drives the heartbeat runtime in steal-domain mode
// under an armed chaos plan, with a frame-conservation invariant hook
// scoped to every IPI site — so each consult fires the checker for the
// one domain the faulted CPU belongs to, touching only that shard's
// state. shards == 1 is the sequential oracle.
func runShardedHeartbeat(t *testing.T, seed uint64, shards int) (string, *chaos.Plan) {
	t.Helper()
	const cpus, domains = 8, 4
	plan := chaos.NewPlan(seed, chaos.DefaultConfig())
	var eng sim.Sim
	if shards > 1 {
		eng = sim.NewSharded(shards, sim.Time(model.Default().HW.IPILatency))
	} else {
		eng = sim.NewEngine()
	}
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 7)
	core.ArmChaos(m, plan)

	hcfg := heartbeat.DefaultConfig()
	hcfg.Substrate = heartbeat.SubstrateNautilusIPI
	hcfg.PeriodCycles = 20_000
	hcfg.Seed = seed
	hcfg.Domains = domains
	rt := heartbeat.New(m, hcfg)
	for cpu := 0; cpu < cpus; cpu++ {
		// Worker i runs on CPU i and belongs to domain i*D/n; with
		// shards == domains this is also the CPU's engine shard, so the
		// checker below only ever reads state owned by the consulting
		// shard.
		d := cpu * domains / cpus
		plan.OnSiteInvariant(fmt.Sprintf("machine/ipi/cpu%d", cpu), "frame-conservation",
			func() error { return rt.CheckDomainInvariants(d) })
		plan.OnSiteInvariant(fmt.Sprintf("machine/timer/cpu%d", cpu), "frame-conservation",
			func() error { return rt.CheckDomainInvariants(d) })
	}

	const items = 60_000
	rt.Run(items, 40, 32)

	var done int64
	for w := 0; w < rt.NumWorkers(); w++ {
		done += rt.WorkerStats(w).Items
	}
	if done != items {
		t.Fatalf("lost work under IPI faults: %d of %d items done", done, items)
	}
	return fmt.Sprintf("doneAt=%d trace=%s", rt.DoneAt(), plan.TraceString()), plan
}

// TestShardedInvariantHooksFirePerShard: under the sharded engine, the
// site-scoped frame-conservation hooks fire during concurrent windows,
// find no violations, and the fault trace plus completion time are
// byte-identical to the sequential oracle's.
func TestShardedInvariantHooksFirePerShard(t *testing.T) {
	t.Parallel()
	for _, seed := range []uint64{3, 17} {
		seqOut, seqPlan := runShardedHeartbeat(t, seed, 1)
		shOut, shPlan := runShardedHeartbeat(t, seed, 4)
		if seqOut != shOut {
			t.Fatalf("seed %d: sharded run diverges from oracle\nseq: %.400s\nsharded: %.400s", seed, seqOut, shOut)
		}
		if seqPlan.Faults() == 0 {
			t.Fatalf("seed %d: chaos plan injected nothing; the invariant hooks were never exercised", seed)
		}
		sv, hv := seqPlan.Violations(), shPlan.Violations()
		chaos.SortViolations(sv)
		chaos.SortViolations(hv)
		if fmt.Sprint(sv) != fmt.Sprint(hv) {
			t.Fatalf("seed %d: violation sets differ between engines:\n%v\nvs\n%v", seed, sv, hv)
		}
		if len(sv) != 0 {
			t.Fatalf("seed %d: frame conservation violated under IPI faults: %v", seed, sv)
		}
	}
}

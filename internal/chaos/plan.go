package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/sim"
)

// Plan is one seeded fault schedule plus the invariant checkers that
// must hold at every injection firing. A plan hands out injector
// closures bound to named sites; each site owns an RNG stream derived
// from the plan seed and the site name alone, so fault decisions are a
// pure function of (seed, site, per-site call sequence) and replaying a
// workload under the same seed reproduces the same trace.
//
// The plan's own bookkeeping is mutex-guarded, so injectors may be
// called from concurrent goroutines (the exp pool regression test
// does); but per-site decision sequences are only deterministic when
// each site is driven from one goroutine, which is how the simulation
// layers use them (one site per CPU, one engine per plan).
type Plan struct {
	seed uint64
	cfg  Config

	mu         sync.Mutex
	sites      map[string]*site
	faults     int
	checks     []invariant
	siteChecks map[string][]invariant
	viols      []Violation
	inCheck    bool // re-entrancy guard: checkers must not recurse into checkers
}

// site is one injection point's private state.
type site struct {
	rng      *sim.RNG
	seq      int
	consults uint64 // allocation consults, for the exhaustion budget
	trace    []Fault
	inCheck  bool // per-site re-entrancy guard for site-scoped checkers
}

// invariant is a registered named checker.
type invariant struct {
	name string
	fn   func() error
}

// NewPlan creates a plan for seed with the given fault configuration.
func NewPlan(seed uint64, cfg Config) *Plan {
	return &Plan{seed: seed, cfg: cfg, sites: make(map[string]*site)}
}

// Seed returns the plan's seed.
func (p *Plan) Seed() uint64 { return p.seed }

// Config returns the plan's fault configuration.
func (p *Plan) Config() Config { return p.cfg }

// siteLocked returns (creating on demand) the named site. Caller holds p.mu.
func (p *Plan) siteLocked(name string) *site {
	s := p.sites[name]
	if s == nil {
		s = &site{rng: sim.NewRNG(p.seed).SplitLabel(name)}
		p.sites[name] = s
	}
	return s
}

// recordLocked appends a fault at s and returns it. Caller holds p.mu.
func (p *Plan) recordLocked(name string, s *site, kind Kind, arg int64) Fault {
	f := Fault{Site: name, Seq: s.seq, Kind: kind, Arg: arg}
	s.seq++
	s.trace = append(s.trace, f)
	p.faults++
	return f
}

// OnInvariant registers a named invariant checker; every registered
// checker runs at every subsequent fault firing, and any error it
// returns is recorded as a Violation against the in-flight fault.
// Checkers run with the plan lock released, so they may inspect
// structures whose own hooks consult this plan — but a fault fired
// *inside* a checker is recorded without re-running the checkers
// (bounded recursion).
func (p *Plan) OnInvariant(name string, fn func() error) {
	p.mu.Lock()
	p.checks = append(p.checks, invariant{name: name, fn: fn})
	p.mu.Unlock()
}

// OnSiteInvariant registers a checker that runs only for faults fired at
// the named site (exact match, including any /cpuN suffix). Site-scoped
// checkers are the sharded-run form of OnInvariant: a fault consulted on
// one engine shard may only be checked against state owned by that
// shard, so each shard's sites carry their own checkers and their own
// re-entrancy guard. Global OnInvariant checkers remain suited to
// sequential runs only — their shared guard makes concurrent firings
// skip checks nondeterministically, and they typically walk state that
// spans shards.
func (p *Plan) OnSiteInvariant(siteName, name string, fn func() error) {
	p.mu.Lock()
	if p.siteChecks == nil {
		p.siteChecks = make(map[string][]invariant)
	}
	p.siteChecks[siteName] = append(p.siteChecks[siteName], invariant{name: name, fn: fn})
	p.mu.Unlock()
}

// checkAt runs the registered invariants against the in-flight fault:
// every global checker (unless one is already running), then the fault
// site's own checkers (unless that site's are already running — a fault
// fired from inside a checker at the same site is recorded without
// recursing).
func (p *Plan) checkAt(f Fault) {
	p.mu.Lock()
	var checks, siteChecks []invariant
	tookGlobal := !p.inCheck && len(p.checks) > 0
	if tookGlobal {
		p.inCheck = true
		checks = p.checks
	}
	var s *site
	if len(p.siteChecks[f.Site]) > 0 {
		s = p.siteLocked(f.Site)
		if !s.inCheck {
			s.inCheck = true
			siteChecks = p.siteChecks[f.Site]
		} else {
			s = nil
		}
	}
	p.mu.Unlock()
	if !tookGlobal && s == nil {
		return
	}

	var bad []Violation
	for _, c := range append(append([]invariant(nil), checks...), siteChecks...) {
		if err := c.fn(); err != nil {
			bad = append(bad, Violation{Fault: f, Invariant: c.name, Err: err})
		}
	}

	p.mu.Lock()
	p.viols = append(p.viols, bad...)
	if tookGlobal {
		p.inCheck = false
	}
	if s != nil {
		s.inCheck = false
	}
	p.mu.Unlock()
}

// CheckNow runs every registered invariant at an explicit checkpoint
// (outside any fault firing), recording violations against a synthetic
// fault labeled with the checkpoint name.
func (p *Plan) CheckNow(label string) {
	p.checkAt(Fault{Site: "checkpoint/" + label})
}

// Violations returns a copy of all recorded invariant violations, in
// recording order. A sequential run's order is deterministic; under
// concurrent shards, canonicalize with SortViolations before comparing
// runs.
func (p *Plan) Violations() []Violation {
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]Violation(nil), p.viols...)
}

// SortViolations orders violations canonically by (site, sequence,
// invariant name) — the same key Trace uses — so two runs of the same
// plan compare byte-identically regardless of how many engine shards
// recorded them concurrently.
func SortViolations(v []Violation) {
	sort.Slice(v, func(i, j int) bool {
		if v[i].Fault.Site != v[j].Fault.Site {
			return v[i].Fault.Site < v[j].Fault.Site
		}
		if v[i].Fault.Seq != v[j].Fault.Seq {
			return v[i].Fault.Seq < v[j].Fault.Seq
		}
		return v[i].Invariant < v[j].Invariant
	})
}

// Faults returns how many faults have fired.
func (p *Plan) Faults() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.faults
}

// Trace returns every fired fault, merged across sites and sorted by
// (site, sequence) — a canonical replayable description of the run's
// fault schedule, independent of interleaving between sites.
func (p *Plan) Trace() []Fault {
	p.mu.Lock()
	var out []Fault
	for _, s := range p.sites {
		out = append(out, s.trace...)
	}
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Site != out[j].Site {
			return out[i].Site < out[j].Site
		}
		return out[i].Seq < out[j].Seq
	})
	return out
}

// TraceString renders the canonical trace one fault per line.
func (p *Plan) TraceString() string {
	var sb strings.Builder
	for _, f := range p.Trace() {
		sb.WriteString(f.String())
		sb.WriteByte('\n')
	}
	return sb.String()
}

// allocConsult is one allocation-site consult: count it against the
// exhaustion budget, then draw for transient failure.
func (p *Plan) allocConsult(name string, n uint64, cause error) error {
	p.mu.Lock()
	s := p.siteLocked(name)
	s.consults++
	fail := p.cfg.AllocBudget > 0 && s.consults > p.cfg.AllocBudget
	if !fail && p.cfg.AllocFailProb > 0 {
		fail = s.rng.Float64() < p.cfg.AllocFailProb
	}
	if !fail {
		p.mu.Unlock()
		return nil
	}
	f := p.recordLocked(name, s, AllocFail, int64(n))
	p.mu.Unlock()
	p.checkAt(f)
	return &FaultError{Fault: f, Err: cause}
}

// AllocInjector returns an injector for mem.Buddy.Inject at the named
// site: probabilistic transient failures plus hard exhaustion after the
// configured budget. The returned error wraps cause (the caller's
// out-of-memory sentinel) in a *FaultError.
func (p *Plan) AllocInjector(name string, cause error) func(n uint64) error {
	return func(n uint64) error { return p.allocConsult(name, n, cause) }
}

// CPUAllocInjector returns an injector for mem.CPUCache.Inject: each
// CPU gets its own sub-site ("name/cpuK") and therefore its own stream,
// so one CPU's allocation pattern never perturbs another's fault
// schedule — the property that keeps per-CPU runs replayable.
func (p *Plan) CPUAllocInjector(name string, cause error) func(cpu int, n uint64) error {
	return func(cpu int, n uint64) error {
		return p.allocConsult(fmt.Sprintf("%s/cpu%d", name, cpu), n, cause)
	}
}

// IPIInjector returns an injector for machine.Machine.IPIFault at the
// named site: each consult may drop the IPI or delay it by up to
// IPIDelayMax cycles. Decisions draw from the destination CPU's
// sub-site stream, keying the schedule to the delivery target.
func (p *Plan) IPIInjector(name string) func(src, dst, vec int) (drop bool, delay int64) {
	return func(src, dst, vec int) (bool, int64) {
		p.mu.Lock()
		s := p.siteLocked(fmt.Sprintf("%s/cpu%d", name, dst))
		if p.cfg.IPIDropProb > 0 && s.rng.Float64() < p.cfg.IPIDropProb {
			f := p.recordLocked(fmt.Sprintf("%s/cpu%d", name, dst), s, IPIDrop, int64(vec))
			p.mu.Unlock()
			p.checkAt(f)
			return true, 0
		}
		if p.cfg.IPIDelayProb > 0 && p.cfg.IPIDelayMax > 0 && s.rng.Float64() < p.cfg.IPIDelayProb {
			d := 1 + s.rng.Int63n(p.cfg.IPIDelayMax)
			f := p.recordLocked(fmt.Sprintf("%s/cpu%d", name, dst), s, IPIDelay, d)
			p.mu.Unlock()
			p.checkAt(f)
			return false, d
		}
		p.mu.Unlock()
		return false, 0
	}
}

// TimerInjector returns an injector for machine.Machine.TimerFault at
// the named site: each timer (re)arm may be stretched by up to
// TimerJitterMax extra cycles, drawn from the owning CPU's sub-site.
func (p *Plan) TimerInjector(name string) func(cpu, vec int, delay int64) int64 {
	return func(cpu, vec int, delay int64) int64 {
		p.mu.Lock()
		s := p.siteLocked(fmt.Sprintf("%s/cpu%d", name, cpu))
		if p.cfg.TimerJitterProb <= 0 || p.cfg.TimerJitterMax <= 0 ||
			s.rng.Float64() >= p.cfg.TimerJitterProb {
			p.mu.Unlock()
			return 0
		}
		d := 1 + s.rng.Int63n(p.cfg.TimerJitterMax)
		f := p.recordLocked(fmt.Sprintf("%s/cpu%d", name, cpu), s, TimerJitter, d)
		p.mu.Unlock()
		p.checkAt(f)
		return d
	}
}

// WakeInjector returns an injector for nautilus.Kernel.WakeDelay at the
// named site: each idle-CPU dispatch after an event wake may be
// deferred by up to WakeDelayMax cycles. The dispatch is only ever
// delayed, never dropped — liveness is the invariant under test, not a
// fault to inject.
func (p *Plan) WakeInjector(name string) func() int64 {
	return func() int64 {
		p.mu.Lock()
		s := p.siteLocked(name)
		if p.cfg.WakeDelayProb <= 0 || p.cfg.WakeDelayMax <= 0 ||
			s.rng.Float64() >= p.cfg.WakeDelayProb {
			p.mu.Unlock()
			return 0
		}
		d := 1 + s.rng.Int63n(p.cfg.WakeDelayMax)
		f := p.recordLocked(name, s, WakeDelay, d)
		p.mu.Unlock()
		p.checkAt(f)
		return d
	}
}

// StepBudget returns the interpreter step budget this plan imposes:
// cfg.MaxSteps when set, else def (pass 0 to keep the engine default).
func (p *Plan) StepBudget(def int64) int64 {
	if p.cfg.MaxSteps > 0 {
		return p.cfg.MaxSteps
	}
	return def
}

// StepFault returns an interp.Hooks.StepLimit hook bound to the named
// site: when the interpreter exhausts its step budget, the hook records
// a StepBudget fault and substitutes a *FaultError wrapping cause
// (interp.ErrStepLimit), so budget exhaustion surfaces as a typed
// injected failure.
func (p *Plan) StepFault(name string, cause error) func() error {
	return func() error {
		p.mu.Lock()
		s := p.siteLocked(name)
		f := p.recordLocked(name, s, StepBudget, p.StepBudget(0))
		p.mu.Unlock()
		p.checkAt(f)
		return &FaultError{Fault: f, Err: cause}
	}
}

// Package detvet is a determinism vet for the repository's own Go
// sources. The simulator's results must be reproducible from a seed
// alone (ROADMAP: determinism is the contract every layer tests
// against), so the packages that compute simulated time, machine state,
// or experiment tables must not consult wall-clock time, the global
// math/rand generator, or Go's randomized map iteration order.
//
// It is deliberately stdlib-only (go/ast + go/parser + a lenient
// go/types pass): the build environment has no module proxy, so
// golang.org/x/tools/go/analysis is unavailable. The trade-off is that
// map detection is best-effort — expressions whose types cannot be
// inferred without imported type information are skipped rather than
// guessed at.
//
// Rules:
//
//   - time-now: calls to time.Now, time.Since, or time.Until (the
//     latter two read the wall clock internally).
//   - global-rand: calls through the math/rand package's global
//     generator (rand.Intn, rand.Seed, ...). Constructing a private
//     seeded source via rand.New/rand.NewSource is fine.
//   - range-over-map: a range statement over a value of map type;
//     iteration order is randomized per run.
//
// A finding is suppressed by a "detvet:ok" comment on the same line,
// for sites that are deliberately order-insensitive or outside the
// deterministic core (e.g. wall-clock progress reporting).
package detvet

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"sort"
	"strconv"
	"strings"
)

// Finding is one determinism hazard.
type Finding struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: [%s] %s", f.Pos, f.Rule, f.Msg)
}

// CheckDirs vets every non-test Go file in each directory (not
// recursively) and returns the combined findings, ordered by position.
func CheckDirs(dirs ...string) ([]Finding, error) {
	var all []Finding
	for _, dir := range dirs {
		fs, err := CheckDir(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	return all, nil
}

// CheckDir vets the non-test Go files of one directory.
func CheckDir(dir string) ([]Finding, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, fmt.Errorf("detvet: %s: %w", dir, err)
	}
	var files []*ast.File
	for _, pkg := range pkgs {
		var names []string
		for name := range pkg.Files { // detvet:ok — sorted below
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			files = append(files, pkg.Files[name])
		}
	}
	return checkFiles(fset, files), nil
}

// CheckSource vets a single in-memory file; src takes anything
// parser.ParseFile accepts (string, []byte, io.Reader).
func CheckSource(filename string, src any) ([]Finding, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	return checkFiles(fset, []*ast.File{f}), nil
}

// stubImporter satisfies every import with an empty package, so the
// type checker can still infer the types of locally-declared values.
// Anything flowing through an import comes out untyped and is skipped
// by the map rule — lenient by construction.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		name = name[i+1:]
	}
	pkg := types.NewPackage(path, name)
	pkg.MarkComplete()
	return pkg, nil
}

func checkFiles(fset *token.FileSet, files []*ast.File) []Finding {
	if len(files) == 0 {
		return nil
	}
	// Lenient type pass: swallow every error (stub imports guarantee
	// plenty), keep whatever expression types could be inferred.
	info := &types.Info{Types: make(map[ast.Expr]types.TypeAndValue)}
	conf := types.Config{Error: func(error) {}, Importer: stubImporter{}}
	conf.Check(files[0].Name.Name, fset, files, info) // detvet is best-effort; error ignored

	var out []Finding
	for _, f := range files {
		ok := suppressedLines(fset, f)
		imp := importNames(f)
		report := func(pos token.Pos, rule, msg string) {
			p := fset.Position(pos)
			if ok[p.Line] {
				return
			}
			out = append(out, Finding{Pos: p, Rule: rule, Msg: msg})
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkCall(n, imp, report)
			case *ast.RangeStmt:
				if tv, found := info.Types[n.X]; found {
					if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
						report(n.Range, "range-over-map",
							"map iteration order is randomized; iterate sorted keys or suppress with detvet:ok")
					}
				}
			}
			return true
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Pos, out[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return out
}

// randConstructors are the math/rand entry points that build a private
// generator instead of touching the global one.
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

// wallClockFns are the time package functions that read the wall clock.
var wallClockFns = map[string]bool{"Now": true, "Since": true, "Until": true}

func checkCall(call *ast.CallExpr, imp map[string]string, report func(token.Pos, string, string)) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok || id.Obj != nil { // Obj != nil means a local binding shadows the package name
		return
	}
	switch imp[id.Name] {
	case "time":
		if wallClockFns[sel.Sel.Name] {
			report(call.Pos(), "time-now",
				fmt.Sprintf("time.%s reads the wall clock; derive time from the simulated clock or suppress with detvet:ok", sel.Sel.Name))
		}
	case "math/rand", "math/rand/v2":
		if !randConstructors[sel.Sel.Name] {
			report(call.Pos(), "global-rand",
				fmt.Sprintf("rand.%s uses the shared global generator; use a seeded rand.New(rand.NewSource(...)) instead", sel.Sel.Name))
		}
	}
}

// importNames maps each file-local package name to its import path.
func importNames(f *ast.File) map[string]string {
	m := make(map[string]string)
	for _, spec := range f.Imports {
		path, err := strconv.Unquote(spec.Path.Value)
		if err != nil {
			continue
		}
		name := path
		if i := strings.LastIndexByte(name, '/'); i >= 0 {
			name = name[i+1:]
		}
		if spec.Name != nil {
			name = spec.Name.Name
			if name == "." || name == "_" {
				continue // dot/blank imports are out of scope for this vet
			}
		}
		m[name] = path
	}
	return m
}

// suppressedLines collects the lines carrying a detvet:ok marker.
func suppressedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	lines := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, "detvet:ok") {
				lines[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return lines
}

package detvet

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// check runs CheckSource and fails the test on parse errors.
func check(t *testing.T, src string) []Finding {
	t.Helper()
	fs, err := CheckSource("src.go", src)
	if err != nil {
		t.Fatal(err)
	}
	return fs
}

func rules(fs []Finding) []string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Rule)
	}
	return out
}

func TestWallClockCalls(t *testing.T) {
	src := `package p
import "time"
func f(t0 time.Time) (time.Time, time.Duration, time.Duration) {
	return time.Now(), time.Since(t0), time.Until(t0)
}
func ok() time.Duration { return 3 * time.Second }
`
	fs := check(t, src)
	if len(fs) != 3 {
		t.Fatalf("findings = %v, want 3 time-now", fs)
	}
	for _, f := range fs {
		if f.Rule != "time-now" {
			t.Errorf("rule = %s, want time-now (%s)", f.Rule, f)
		}
	}
	// time.Second is a constant, not a clock read.
	for _, f := range fs {
		if f.Pos.Line == 6 {
			t.Errorf("constant use flagged: %s", f)
		}
	}
}

func TestGlobalRandVsConstructors(t *testing.T) {
	src := `package p
import "math/rand"
func bad() int { rand.Seed(42); return rand.Intn(10) }
func good() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(10)
}
`
	fs := check(t, src)
	if got := rules(fs); len(got) != 2 || got[0] != "global-rand" || got[1] != "global-rand" {
		t.Fatalf("findings = %v, want exactly [global-rand global-rand]", fs)
	}
	for _, f := range fs {
		if f.Pos.Line != 3 {
			t.Errorf("constructor flagged: %s", f)
		}
	}
}

func TestAliasedImport(t *testing.T) {
	src := `package p
import (
	mrand "math/rand"
	clock "time"
)
func f() int64 { return clock.Now().UnixNano() + int64(mrand.Int()) }
`
	fs := check(t, src)
	got := rules(fs)
	if len(got) != 2 {
		t.Fatalf("findings = %v, want time-now and global-rand through aliases", fs)
	}
	if !(got[0] == "time-now" && got[1] == "global-rand" || got[0] == "global-rand" && got[1] == "time-now") {
		t.Fatalf("rules = %v", got)
	}
}

func TestShadowedPackageName(t *testing.T) {
	// A local value named like the package must not trigger.
	src := `package p
type clock struct{}
func (clock) Now() int { return 0 }
func f() int {
	var time clock
	return time.Now()
}
`
	if fs := check(t, src); len(fs) != 0 {
		t.Fatalf("shadowed name flagged: %v", fs)
	}
}

func TestRangeOverMap(t *testing.T) {
	src := `package p
func f(m map[string]int, s []int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	for _, v := range s {
		sum += v
	}
	local := map[int]bool{1: true}
	for k := range local {
		sum += k
	}
	return sum
}
`
	fs := check(t, src)
	if got := rules(fs); len(got) != 2 {
		t.Fatalf("findings = %v, want 2 range-over-map (slice must not count)", fs)
	}
	for _, f := range fs {
		if f.Rule != "range-over-map" {
			t.Errorf("rule = %s", f.Rule)
		}
		if f.Pos.Line == 7 {
			t.Errorf("slice range flagged: %s", f)
		}
	}
}

func TestSuppression(t *testing.T) {
	src := `package p
import "time"
func f(m map[string]int) int64 {
	for range m { // detvet:ok -- order-insensitive count
	}
	return time.Now().Unix() // detvet:ok -- progress display only
}
func g() int64 { return time.Now().Unix() }
`
	fs := check(t, src)
	if len(fs) != 1 || fs[0].Pos.Line != 8 {
		t.Fatalf("findings = %v, want only the unsuppressed line-8 call", fs)
	}
}

func TestUntypedMapSkipped(t *testing.T) {
	// The type of other.Value() is unknowable with stub imports; the
	// lenient checker must stay silent rather than guess.
	src := `package p
import "example.com/other"
func f() {
	for range other.Value() {
	}
}
`
	if fs := check(t, src); len(fs) != 0 {
		t.Fatalf("untyped range flagged: %v", fs)
	}
}

func TestFindingString(t *testing.T) {
	fs := check(t, "package p\nimport \"time\"\nvar _ = time.Now()\n")
	if len(fs) != 1 {
		t.Fatalf("findings = %v", fs)
	}
	s := fs[0].String()
	if !strings.Contains(s, "src.go:3") || !strings.Contains(s, "[time-now]") {
		t.Fatalf("String() = %q", s)
	}
}

func TestCheckDirSkipsTests(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("a.go", "package p\nimport \"time\"\nvar _ = time.Now()\n")
	write("b.go", "package p\nfunc b(m map[int]int) {\n\tfor range m {\n\t}\n}\n")
	write("a_test.go", "package p\nimport \"time\"\nvar _ = time.Now()\n")

	fs, err := CheckDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 {
		t.Fatalf("findings = %v, want 2 (test file must be skipped)", fs)
	}
	// Deterministic output order: a.go before b.go.
	if !strings.HasSuffix(fs[0].Pos.Filename, "a.go") || !strings.HasSuffix(fs[1].Pos.Filename, "b.go") {
		t.Fatalf("order = %v", fs)
	}

	all, err := CheckDirs(dir, dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 4 {
		t.Fatalf("CheckDirs = %d findings, want 4", len(all))
	}
}

func TestCheckDirMissing(t *testing.T) {
	if _, err := CheckDirs(filepath.Join(t.TempDir(), "nope")); err == nil {
		t.Fatal("missing directory did not error")
	}
}

func TestCheckSourceParseError(t *testing.T) {
	if _, err := CheckSource("bad.go", "package p\nfunc {"); err == nil {
		t.Fatal("parse error not reported")
	}
}

// TestRepoCoreIsClean pins the repo invariant that `make check`
// enforces: the deterministic core has no findings.
func TestRepoCoreIsClean(t *testing.T) {
	for _, dir := range []string{"../sim", "../machine", "../heartbeat", "../exp"} {
		fs, err := CheckDir(dir)
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		for _, f := range fs {
			t.Errorf("%s: %s", dir, f)
		}
	}
}

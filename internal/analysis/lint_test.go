package analysis

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/workloads"
)

// kindsOf collects the set of diagnostic kinds in ds.
func kindsOf(ds []Diag) map[Kind]int {
	out := make(map[Kind]int)
	for _, d := range ds {
		out[d.Kind]++
	}
	return out
}

func TestLintFlagsEverySeededBug(t *testing.T) {
	want := map[string]Kind{
		"buggy/use-after-free":   KindUseAfterFree,
		"buggy/double-free":      KindDoubleFree,
		"buggy/leak":             KindLeak,
		"buggy/leak-conditional": KindLeak,
		"buggy/dead-store":       KindDeadStore,
		"buggy/use-before-def":   KindUseBeforeDef,
	}
	for _, tgt := range workloads.BuggySuite() {
		ds := Lint(tgt.Mod, tgt.Extern)
		if len(ds) == 0 {
			t.Errorf("%s: no diagnostics", tgt.Name)
			continue
		}
		k, ok := want[tgt.Name]
		if !ok {
			t.Errorf("unexpected buggy module %s", tgt.Name)
			continue
		}
		if kindsOf(ds)[k] == 0 {
			t.Errorf("%s: want a %s diagnostic, got %v", tgt.Name, k, ds)
		}
	}
}

func TestLintCleanOnShippedModules(t *testing.T) {
	for _, tgt := range workloads.LintTargets() {
		if ds := Lint(tgt.Mod, tgt.Extern); len(ds) != 0 {
			t.Errorf("%s: want clean, got %v", tgt.Name, ds)
		}
	}
}

func TestLintInvalidIR(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	b.Const(1) // no terminator
	ds := Lint(m, nil)
	if len(ds) != 1 || ds[0].Kind != KindInvalidIR {
		t.Fatalf("want single invalid-ir diag, got %v", ds)
	}
}

func TestDiagStringAndJSON(t *testing.T) {
	d := Diag{Module: "m", Fn: "f", Block: "b", Instr: 3,
		Kind: KindLeak, Msg: "x"}
	if got := d.String(); got != "m/f.b#3: leak: x" {
		t.Fatalf("String() = %q", got)
	}
	buf, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(buf), `"kind":"leak"`) {
		t.Fatalf("JSON = %s", buf)
	}
}

func TestLintDeterministic(t *testing.T) {
	// Diagnostics must come out in the same order on every run: build
	// the same buggy module repeatedly and compare renderings.
	render := func() string {
		var sb strings.Builder
		for _, tgt := range workloads.BuggySuite() {
			for _, d := range Lint(tgt.Mod, tgt.Extern) {
				sb.WriteString(tgt.Name + ": " + d.String() + "\n")
			}
		}
		return sb.String()
	}
	first := render()
	for i := 0; i < 5; i++ {
		if got := render(); got != first {
			t.Fatalf("lint output changed between runs:\n%s\nvs\n%s", first, got)
		}
	}
}

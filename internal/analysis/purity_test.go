package analysis

import (
	"testing"

	"repro/internal/ir"
)

// purityModule builds a module covering the summary lattice:
//
//	alu        — pure, bounded, cannot fault
//	divides    — pure but may fault (div)
//	stores     — impure (heap write), bounded
//	allocs     — impure, may fault (alloc + free)
//	wraps      — calls alu (transitively pure/bounded)
//	wrapsbad   — calls stores (transitively impure)
//	loops      — pure but unbounded (contains a loop)
//	selfrec    — pure self-recursion: stays pure, never bounded
//	extern     — calls an undefined function
func purityModule() *ir.Module {
	m := ir.NewModule("t")

	alu := m.NewFunction("alu", 2)
	b := ir.NewBuilder(alu)
	b.Ret(b.Add(b.Param(0), b.Param(1)))

	div := m.NewFunction("divides", 2)
	b = ir.NewBuilder(div)
	b.Ret(b.Div(b.Param(0), b.Param(1)))

	st := m.NewFunction("stores", 1)
	b = ir.NewBuilder(st)
	b.Store(b.Param(0), 0, b.Const(1))
	b.Ret(ir.NoReg)

	al := m.NewFunction("allocs", 0)
	b = ir.NewBuilder(al)
	buf := b.Alloc(8)
	b.Free(buf)
	b.Ret(ir.NoReg)

	w := m.NewFunction("wraps", 2)
	b = ir.NewBuilder(w)
	b.Ret(b.Call("alu", b.Param(0), b.Param(1)))

	wb := m.NewFunction("wrapsbad", 1)
	b = ir.NewBuilder(wb)
	b.Ret(b.Call("stores", b.Param(0)))

	lp := m.NewFunction("loops", 0)
	b = ir.NewBuilder(lp)
	s := b.Const(0)
	b.CountingLoop(0, 4, 1, func(i ir.Reg) { b.MovTo(s, b.Add(s, i)) })
	b.Ret(s)

	sr := m.NewFunction("selfrec", 1)
	b = ir.NewBuilder(sr)
	b.Ret(b.Call("selfrec", b.Param(0)))

	ex := m.NewFunction("extern", 0)
	b = ir.NewBuilder(ex)
	b.Ret(b.Call("undefined_thing"))

	return m
}

func TestAnalyzePurity(t *testing.T) {
	p := AnalyzePurity(purityModule())
	cases := []struct {
		fn                      string
		pure, mayFault, bounded bool
		dceSafe                 bool
	}{
		{"alu", true, false, true, true},
		{"divides", true, true, true, false},
		{"stores", false, false, true, false},
		{"allocs", false, true, true, false},
		{"wraps", true, false, true, true},
		{"wrapsbad", false, false, true, false},
		{"loops", true, false, false, false},
		{"selfrec", true, false, false, false},
		{"extern", false, true, false, false},
	}
	for _, c := range cases {
		s := p.Summary(c.fn)
		if s.Pure != c.pure || s.MayFault != c.mayFault || s.Bounded != c.bounded {
			t.Errorf("%s: got pure=%v fault=%v bounded=%v, want %v/%v/%v",
				c.fn, s.Pure, s.MayFault, s.Bounded, c.pure, c.mayFault, c.bounded)
		}
		if s.DCESafe() != c.dceSafe {
			t.Errorf("%s: DCESafe = %v, want %v", c.fn, s.DCESafe(), c.dceSafe)
		}
	}
	// Detail bits.
	if s := p.Summary("stores"); !s.WritesHeap || s.ReadsHeap || s.Allocates {
		t.Error("stores detail bits wrong")
	}
	if s := p.Summary("allocs"); !s.Allocates || !s.WritesHeap {
		t.Error("allocs detail bits wrong")
	}
	if s := p.Summary("wrapsbad"); !s.WritesHeap {
		t.Error("heap write did not propagate through the call graph")
	}
	if s := p.Summary("extern"); !s.CallsExtern {
		t.Error("extern call not recorded")
	}
	// Unknown names are fully conservative.
	if s := p.Summary("nonexistent"); s.Pure || !s.MayFault || s.Bounded || s.DCESafe() {
		t.Error("unknown function summary not conservative")
	}
}

// TestAnalyzePurityMutualRecursion: mutual recursion of pure ALU
// functions stays pure (optimistic fixpoint) but is never bounded
// (pessimistic fixpoint) — so it is not DCE-safe.
func TestAnalyzePurityMutualRecursion(t *testing.T) {
	m := ir.NewModule("t")
	even := m.NewFunction("even", 1)
	b := ir.NewBuilder(even)
	b.Ret(b.Call("odd", b.Sub(b.Param(0), b.Const(1))))
	odd := m.NewFunction("odd", 1)
	b = ir.NewBuilder(odd)
	b.Ret(b.Call("even", b.Sub(b.Param(0), b.Const(1))))

	p := AnalyzePurity(m)
	for _, fn := range []string{"even", "odd"} {
		s := p.Summary(fn)
		if !s.Pure || s.MayFault {
			t.Errorf("%s: mutual ALU recursion lost purity: %+v", fn, s)
		}
		if s.Bounded || s.DCESafe() {
			t.Errorf("%s: call cycle proven bounded", fn)
		}
	}
}

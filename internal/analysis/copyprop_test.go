package analysis

import (
	"testing"

	"repro/internal/ir"
)

// TestAvailCopiesTransfer: gen on a mov, kill on redefinition of either
// side.
func TestAvailCopiesTransfer(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	src := b.Param(0)
	cp := b.Mov(src)         // instr 0, copy 0: cp <- src
	alias := b.Mov(cp)       // instr 1, copy 1: alias <- cp
	b.MovTo(src, b.Const(9)) // instrs 2-3; the mov redefines src, killing copy 0
	b.Ret(alias)             // instr 4

	info := ir.AnalyzeCFG(f)
	ac := NewAvailCopies(f)
	if len(ac.Copies) != 3 { // cp<-src, alias<-cp, src<-const
		t.Fatalf("found %d copies, want 3", len(ac.Copies))
	}
	res := Solve(info, ac)
	if !res.Converged {
		t.Fatal("no convergence")
	}

	entry := f.Blocks[0]
	var afterChain, afterKill *BitSet
	res.Replay(entry, func(idx int, in *ir.Instr, facts *BitSet) {
		// facts are the IN of each instruction (forward replay).
		switch idx {
		case 3: // just before the redefinition of src
			afterChain = facts.Copy()
		case 4: // the ret, after the kill
			afterKill = facts.Copy()
		}
	})
	if afterChain == nil || afterKill == nil {
		t.Fatal("replay missed instructions")
	}
	// After both movs: cp<-src and alias<-cp available; chains resolve
	// to src.
	if got := ac.Resolve(alias, afterChain); got != src {
		t.Fatalf("Resolve(alias) = r%d, want r%d (src)", got, src)
	}
	if s, ok := ac.SourceOf(cp, afterChain); !ok || s != src {
		t.Fatal("SourceOf(cp) wrong before the kill")
	}
	// After src is redefined: cp<-src is dead, alias<-cp survives.
	if _, ok := ac.SourceOf(cp, afterKill); ok {
		t.Fatal("copy of redefined source still available")
	}
	if got := ac.Resolve(alias, afterKill); got != cp {
		t.Fatalf("Resolve(alias) after kill = r%d, want r%d (cp)", got, cp)
	}
}

// TestAvailCopiesMeet: a copy must be available on every path to count
// at a join.
func TestAvailCopiesMeet(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")

	src := b.Param(0)
	both := b.Mov(src) // available on both paths
	b.Br(b.Param(1), then, els)

	b.SetBlock(then)
	oneArm := b.Mov(src) // defined (as a copy) only on this path
	b.Jmp(join)

	b.SetBlock(els)
	b.MovTo(oneArm, b.Const(5)) // same register, not a tracked copy source
	b.Jmp(join)

	b.SetBlock(join)
	b.Ret(b.Add(both, oneArm))

	info := ir.AnalyzeCFG(f)
	ac := NewAvailCopies(f)
	res := Solve(info, ac)
	in := res.In[join]
	if s, ok := ac.SourceOf(both, in); !ok || s != src {
		t.Fatal("copy available on both paths lost at the join")
	}
	if _, ok := ac.SourceOf(oneArm, in); ok {
		t.Fatal("one-armed copy available at the join")
	}
}

// TestRedundantCopies: a re-mov of an already-held value is redundant;
// chain-equal movs are too.
func TestRedundantCopies(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	src := b.Param(0)
	cp := b.Mov(src)    // instr 0: not redundant (first copy)
	b.MovTo(cp, src)    // instr 1: redundant, cp already equals src
	alias := b.Mov(cp)  // instr 2: not redundant (new register)
	b.MovTo(alias, src) // instr 3: redundant via chain, alias == cp == src
	b.Ret(alias)

	got := RedundantCopies(f, ir.AnalyzeCFG(f))
	if len(got) != 2 {
		t.Fatalf("found %d redundant copies, want 2: %+v", len(got), got)
	}
	for _, c := range got {
		if c.Idx != 1 && c.Idx != 3 {
			t.Fatalf("wrong instruction flagged: %+v", c)
		}
	}
}

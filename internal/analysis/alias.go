package analysis

import "repro/internal/ir"

// AllocSite is one static OpAlloc instruction.
type AllocSite struct {
	Block *ir.Block
	Idx   int
	Dst   ir.Reg
	// Size is the allocation size in bytes when statically known
	// (constant immediate, or a size register whose every reaching
	// definition is the same constant), else 0.
	Size int64
}

// Alias is a flow-insensitive, function-local may-points-to partition:
// each register maps to the set of allocation sites its value may
// derive from, plus a distinguished Unknown element for values of
// non-local origin (parameters, loads, call results). It also computes
// which sites escape the function (stored to memory, passed to a call,
// or returned) — the partition CARAT's escape tracking and the leak
// lint both query.
type Alias struct {
	F     *ir.Function
	Sites []AllocSite

	// pts[r] has bit s set when r may point into Sites[s]; bit
	// len(Sites) is the Unknown element.
	pts     []*BitSet
	escaped *BitSet
	unknown int
}

// AnalyzeAlias computes the partition for f. The optional reaching-defs
// result (pass nil to skip) sharpens AllocSite.Size for register-sized
// allocations.
func AnalyzeAlias(f *ir.Function, rd *ReachingDefs, rdRes *Result) *Alias {
	a := &Alias{F: f}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpAlloc {
				continue
			}
			site := AllocSite{Block: b, Idx: i, Dst: in.Dst}
			if in.A == ir.NoReg {
				site.Size = in.Imm
			} else if rd != nil && rdRes != nil {
				site.Size = constReachingValue(rd, rdRes, b, i, in.A)
			}
			a.Sites = append(a.Sites, site)
		}
	}
	a.unknown = len(a.Sites)
	n := len(a.Sites) + 1
	a.pts = make([]*BitSet, f.NumRegs)
	for r := range a.pts {
		a.pts[r] = NewBitSet(n)
	}
	a.escaped = NewBitSet(n)
	for i := 0; i < f.NumParams; i++ {
		a.pts[i].Set(a.unknown)
	}

	// Fixpoint over the pointer-flow ops. Site indices are assigned in
	// block order, so re-scanning blocks in order keeps everything
	// deterministic.
	changed := true
	for changed {
		changed = false
		merge := func(dst ir.Reg, src *BitSet) {
			if dst == ir.NoReg {
				return
			}
			before := a.pts[dst].Count()
			a.pts[dst].Union(src)
			if a.pts[dst].Count() != before {
				changed = true
			}
		}
		setUnknown := func(dst ir.Reg) {
			if dst != ir.NoReg && !a.pts[dst].Has(a.unknown) {
				a.pts[dst].Set(a.unknown)
				changed = true
			}
		}
		site := 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpAlloc:
					if !a.pts[in.Dst].Has(site) {
						a.pts[in.Dst].Set(site)
						changed = true
					}
					site++
				case ir.OpMov:
					merge(in.Dst, a.pts[in.A])
				case ir.OpAdd, ir.OpSub:
					// Pointer arithmetic: the result may point wherever
					// either operand did.
					merge(in.Dst, a.pts[in.A])
					merge(in.Dst, a.pts[in.B])
				case ir.OpLoad, ir.OpCall:
					setUnknown(in.Dst)
				}
			}
		}
	}

	// Escapes: a site whose pointer is stored into memory, passed to a
	// call, or returned is visible outside this function body.
	esc := func(r ir.Reg) {
		if r != ir.NoReg {
			a.escaped.Union(a.pts[r])
		}
	}
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				esc(in.B)
			case ir.OpCall:
				for _, arg := range in.Args {
					esc(arg)
				}
			case ir.OpRet:
				esc(in.A)
			}
		}
	}
	return a
}

// constReachingValue returns the constant value of r at (b, idx) when
// every reaching definition of r is an OpConst with the same immediate,
// else 0.
func constReachingValue(rd *ReachingDefs, res *Result, b *ir.Block, idx int, r ir.Reg) int64 {
	facts, ok := res.In[b]
	if !ok {
		return 0
	}
	cur := facts.Copy()
	for i := 0; i < idx; i++ {
		rd.Transfer(b, i, b.Instrs[i], cur)
	}
	var val int64
	seen := false
	for _, id := range rd.DefsOf(r) {
		if !cur.Has(id) {
			continue
		}
		s := rd.Sites[id]
		if s.Block == nil { // parameter: unknown value
			return 0
		}
		def := s.Block.Instrs[s.Idx]
		if def.Op != ir.OpConst {
			return 0
		}
		if seen && def.Imm != val {
			return 0
		}
		val, seen = def.Imm, true
	}
	if !seen {
		return 0
	}
	return val
}

// PointsTo returns r's may-points-to set (site bits plus the Unknown
// bit at Unknown()).
func (a *Alias) PointsTo(r ir.Reg) *BitSet { return a.pts[r] }

// Unknown returns the bit index of the Unknown element.
func (a *Alias) Unknown() int { return a.unknown }

// MustSite returns the unique allocation site r's value derives from,
// if r cannot hold a value of any other origin.
func (a *Alias) MustSite(r ir.Reg) (int, bool) {
	s := a.pts[r]
	if s.Has(a.unknown) || s.Count() != 1 {
		return -1, false
	}
	site := -1
	s.ForEach(func(i int) { site = i })
	return site, true
}

// Escaped reports whether the site's pointer may be visible outside
// the function.
func (a *Alias) Escaped(site int) bool { return a.escaped.Has(site) }

// SiteOfInstr returns the index of the allocation site at (b, idx), or
// -1 when that instruction is not an OpAlloc.
func (a *Alias) SiteOfInstr(b *ir.Block, idx int) int {
	for i, s := range a.Sites {
		if s.Block == b && s.Idx == idx {
			return i
		}
	}
	return -1
}

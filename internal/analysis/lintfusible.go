package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// KindFusiblePair: an adjacent instruction pair the interpreter's
// superinstruction fuser collapses into one dispatch (compare+branch,
// guard+access, load/store adjacencies, isolated ALU chains).
const KindFusiblePair Kind = "fusible-pair"

// LintFusible reports the fusible adjacent pairs of every function of
// m. It is deliberately separate from LintOpt: LintOpt's diagnostics
// are in lockstep with passes.Optimize (a module that has been through
// the pipeline reports none), while fusible pairs are engine
// opportunities that no IR pass removes — an optimized module still
// has them, and the interpreter exploits them at Compile time.
//
// The walk is ir.EachFusiblePair with a nil opcode filter — exactly the
// static default heuristic the fusion stage uses — so for any function
// the diagnostic count equals the superinstruction count the compiled
// engine forms (interp's Program.FusedPairs, with fusion-table
// filtering off). A lockstep test in internal/interp pins that
// equality.
func LintFusible(m *ir.Module) []Diag {
	var out []Diag
	for _, f := range m.Functions() {
		for _, d := range LintFusibleFunc(f) {
			d.Module = m.Name
			out = append(out, d)
		}
	}
	return out
}

// LintFusibleFunc reports the fusible pairs of one function.
func LintFusibleFunc(f *ir.Function) []Diag {
	var out []Diag
	for _, b := range f.Blocks {
		blk := b
		ir.EachFusiblePair(blk, nil, func(i int, k ir.FuseKind) {
			out = append(out, Diag{Fn: f.Name, Block: blk.Name, Instr: i,
				Kind: KindFusiblePair,
				Msg: fmt.Sprintf("%s then %s fuse into a %s superinstruction",
					blk.Instrs[i].Op, blk.Instrs[i+1].Op, k)})
		})
	}
	sortDiags(out)
	return out
}

package analysis

import (
	"fmt"

	"repro/internal/ir"
)

// Optimizer-opportunity diagnostic kinds. Unlike the memory-safety
// kinds these do not indicate bugs — they flag work the standard
// optimization pipeline (passes.Optimize) would remove, and the
// lockstep guarantee is that a module that has been through the
// pipeline reports none of them.
const (
	// KindRedundantCopy: a mov whose two sides already provably hold
	// the same value (deleted by CopyCoalesce).
	KindRedundantCopy Kind = "redundant-copy"
	// KindLoopInvariant: a speculatable instruction recomputing the
	// same loop-invariant value on every iteration (hoisted by LICM).
	KindLoopInvariant Kind = "loop-invariant-recompute"
	// KindPartialDeadStore: a side-effect-free register write that is
	// dead at its own program point — every path overwrites or drops
	// the value before reading it — even when the register is read
	// elsewhere, which is exactly the delta a liveness-based DCE
	// (GlobalDCE) removes and the old syntactic sweep could not see.
	KindPartialDeadStore Kind = "partially-dead-store"
)

// LintOpt runs the optimizer-opportunity linter over every function of
// m. The diagnostics are derived from the same analyses the optimizer
// passes consume (available copies, the loop nest + liveness hoisting
// candidates, liveness), so the set is empty exactly when the standard
// pipeline has nothing left to do.
func LintOpt(m *ir.Module) []Diag {
	var out []Diag
	for _, f := range m.Functions() {
		for _, d := range LintOptFunc(f) {
			d.Module = m.Name
			out = append(out, d)
		}
	}
	return out
}

// LintOptFunc reports the optimization opportunities in one
// (Verify-valid) function.
func LintOptFunc(f *ir.Function) []Diag {
	var out []Diag
	info := ir.AnalyzeCFG(f)

	for _, c := range RedundantCopies(f, info) {
		out = append(out, Diag{Fn: f.Name, Block: c.Block.Name, Instr: c.Idx,
			Kind: KindRedundantCopy,
			Msg:  fmt.Sprintf("v%d already holds the value of v%d; this copy is a no-op", c.Dst, c.Src)})
	}

	dom := NewDomTree(info)
	ln := AnalyzeLoops(info, dom)
	live := Solve(info, NewLiveness(f))
	for _, c := range ln.HoistCandidates(live) {
		out = append(out, Diag{Fn: f.Name, Block: c.Block.Name, Instr: c.Idx,
			Kind: KindLoopInvariant,
			Msg: fmt.Sprintf("%s recomputes a loop-invariant value every iteration of loop %q; hoistable to the preheader",
				c.In.Op, c.Loop.Header.Name)})
	}

	// Dead side-effect-free writes: the value is overwritten or dropped
	// on every path before any read.
	usedSomewhere := make(map[ir.Reg]bool)
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				usedSomewhere[u] = true
			}
		}
	}
	for _, b := range info.RPO {
		live.Replay(b, func(idx int, in *ir.Instr, after *BitSet) {
			if !SideEffectFree(in.Op) {
				return
			}
			d := in.Defs()
			if d == ir.NoReg || after.Has(int(d)) {
				return
			}
			msg := fmt.Sprintf("value of v%d is never read", d)
			if usedSomewhere[d] {
				msg = fmt.Sprintf("store to v%d is dead here: every path overwrites it before the reads elsewhere", d)
			}
			out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: idx,
				Kind: KindPartialDeadStore, Msg: msg})
		})
	}
	sortDiags(out)
	return out
}

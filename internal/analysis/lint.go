package analysis

import (
	"fmt"
	"sort"

	"repro/internal/ir"
)

// Kind classifies a lint diagnostic.
type Kind string

// Diagnostic kinds.
const (
	KindInvalidIR    Kind = "invalid-ir"
	KindUseBeforeDef Kind = "use-before-def"
	KindDeadStore    Kind = "dead-store"
	KindUseAfterFree Kind = "use-after-free"
	KindDoubleFree   Kind = "double-free"
	KindLeak         Kind = "leak"
	KindUnreachable  Kind = "unreachable-block"
)

// Diag is one structured finding, positioned at an instruction of a
// block (Instr -1 for whole-block findings).
type Diag struct {
	Module string `json:"module,omitempty"`
	Fn     string `json:"fn"`
	Block  string `json:"block,omitempty"`
	Instr  int    `json:"instr"`
	Kind   Kind   `json:"kind"`
	Msg    string `json:"msg"`
}

// String renders the diagnostic as module/fn.block#instr: kind: msg.
func (d Diag) String() string {
	pos := d.Fn
	if d.Module != "" {
		pos = d.Module + "/" + pos
	}
	if d.Block != "" {
		pos += "." + d.Block
		if d.Instr >= 0 {
			pos += fmt.Sprintf("#%d", d.Instr)
		}
	}
	return fmt.Sprintf("%s: %s: %s", pos, d.Kind, d.Msg)
}

// Lint runs the memory-safety linter over every function of m. extern
// names call targets defined outside the module (as in
// ir.VerifyModule). Diagnostics are the static superset of what the
// CARAT runtime would catch dynamically: every guard violation,
// untracked free, or end-of-run leak the interpreter can observe on
// these bugs has a corresponding diagnostic (the differential test
// asserts this inclusion).
func Lint(m *ir.Module, extern map[string]bool) []Diag {
	var out []Diag
	if err := ir.VerifyModule(m, extern); err != nil {
		out = append(out, Diag{Module: m.Name, Fn: "-", Instr: -1,
			Kind: KindInvalidIR, Msg: err.Error()})
		return out
	}
	for _, f := range m.Functions() {
		for _, d := range LintFunc(f) {
			d.Module = m.Name
			out = append(out, d)
		}
	}
	return out
}

// LintFunc lints a single (Verify-valid) function.
func LintFunc(f *ir.Function) []Diag {
	var out []Diag
	info := ir.AnalyzeCFG(f)

	// Unreachable blocks: Verify rejects blocks no edge references, but
	// a dead cycle passes it; the CFG walk exposes both.
	reachable := make(map[*ir.Block]bool, len(info.RPO))
	for _, b := range info.RPO {
		reachable[b] = true
	}
	for _, b := range f.Blocks {
		if !reachable[b] {
			out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: -1,
				Kind: KindUnreachable,
				Msg:  "block is unreachable from the function entry"})
		}
	}

	out = append(out, lintUseBeforeDef(f, info)...)
	out = append(out, lintDeadStores(f, info)...)
	out = append(out, lintHeap(f, info)...)
	sortDiags(out)
	return out
}

// lintUseBeforeDef flags uses of registers that are not definitely
// assigned — some path from entry reaches the use without writing the
// register (which the interpreter silently reads as zero).
func lintUseBeforeDef(f *ir.Function, info *ir.CFGInfo) []Diag {
	var out []Diag
	res := Solve(info, NewDefiniteAssign(f))
	var buf []ir.Reg
	for _, b := range info.RPO {
		res.Replay(b, func(idx int, in *ir.Instr, facts *BitSet) {
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				if !facts.Has(int(u)) {
					out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: idx,
						Kind: KindUseBeforeDef,
						Msg:  fmt.Sprintf("v%d may be used before definition in %s", u, in.Op)})
					break
				}
			}
		})
	}
	return out
}

// lintDeadStores flags block-local overwritten stores: a store to
// (base, offset) followed in the same block by another store to the
// same location with no intervening read, call, free, or write to the
// base register. Conservative about aliasing — any load or opaque
// operation keeps earlier stores alive.
func lintDeadStores(f *ir.Function, info *ir.CFGInfo) []Diag {
	var out []Diag
	type loc struct {
		base ir.Reg
		imm  int64
	}
	for _, b := range info.RPO {
		pending := make(map[loc]int)
		for idx, in := range b.Instrs {
			switch in.Op {
			case ir.OpStore:
				k := loc{in.A, in.Imm}
				if prev, ok := pending[k]; ok {
					out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: prev,
						Kind: KindDeadStore,
						Msg: fmt.Sprintf("store to [v%d+%d] is overwritten at #%d before any read",
							in.A, in.Imm, idx)})
				}
				pending[k] = idx
				continue
			case ir.OpLoad, ir.OpCall, ir.OpFree, ir.OpRet,
				ir.OpGuard, ir.OpTrackAlloc, ir.OpTrackFree, ir.OpTrackEsc:
				// Possible readers (or region releases): all earlier
				// stores may be observed.
				pending = make(map[loc]int)
			}
			if d := in.Defs(); d != ir.NoReg {
				for k := range pending {
					if k.base == d {
						delete(pending, k)
					}
				}
			}
		}
	}
	return out
}

// lintHeap runs the allocation-site analyses and flags use-after-free,
// double-free, and leaks.
func lintHeap(f *ir.Function, info *ir.CFGInfo) []Diag {
	var out []Diag
	rd := NewReachingDefs(f)
	rdRes := Solve(info, rd)
	alias := AnalyzeAlias(f, rd, rdRes)
	if len(alias.Sites) == 0 {
		return nil
	}
	siteName := func(s int) string {
		site := alias.Sites[s]
		return fmt.Sprintf("alloc at %s#%d (v%d)", site.Block.Name, site.Idx, site.Dst)
	}

	mustFreed := Solve(info, NewMustFreed(f, alias))
	for _, b := range info.RPO {
		mustFreed.Replay(b, func(idx int, in *ir.Instr, facts *BitSet) {
			var base ir.Reg
			switch in.Op {
			case ir.OpLoad, ir.OpStore:
				base = in.A
			case ir.OpFree:
				base = in.A
			default:
				return
			}
			s, ok := alias.MustSite(base)
			if !ok || !facts.Has(s) {
				return
			}
			if in.Op == ir.OpFree {
				out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: idx,
					Kind: KindDoubleFree,
					Msg:  fmt.Sprintf("double free of %s", siteName(s))})
			} else {
				out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: idx,
					Kind: KindUseAfterFree,
					Msg:  fmt.Sprintf("%s of freed %s", in.Op, siteName(s))})
			}
		})
	}

	// Leaks: a non-escaping allocation still live at a return leaks on
	// the path that reaches it. Report each leaking site once, at the
	// first return that observes it.
	liveUnfreed := Solve(info, NewLiveUnfreed(f, alias))
	leaked := make(map[int]bool)
	for _, b := range info.RPO {
		liveUnfreed.Replay(b, func(idx int, in *ir.Instr, facts *BitSet) {
			if in.Op != ir.OpRet {
				return
			}
			for s := range alias.Sites {
				if leaked[s] || alias.Escaped(s) || !facts.Has(s) {
					continue
				}
				leaked[s] = true
				out = append(out, Diag{Fn: f.Name, Block: b.Name, Instr: idx,
					Kind: KindLeak,
					Msg:  fmt.Sprintf("%s is not freed on a path to this return", siteName(s))})
			}
		})
	}
	return out
}

// sortDiags orders diagnostics by block id, instruction, then kind, so
// lint output is deterministic.
func sortDiags(ds []Diag) {
	sort.SliceStable(ds, func(i, j int) bool {
		if ds[i].Block != ds[j].Block {
			return ds[i].Block < ds[j].Block
		}
		if ds[i].Instr != ds[j].Instr {
			return ds[i].Instr < ds[j].Instr
		}
		return ds[i].Kind < ds[j].Kind
	})
}

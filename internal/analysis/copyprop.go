package analysis

import "repro/internal/ir"

// Copy is one static copy instruction dst <- src (an OpMov).
type Copy struct {
	Block    *ir.Block
	Idx      int
	Dst, Src ir.Reg
}

// AvailCopies is copy propagation as a forward must-analysis on the
// Solve framework: fact i holds at a program point when copy i has
// executed on every path reaching the point and neither its source nor
// its destination has been redefined since — so regs[Dst] == regs[Src]
// is guaranteed there, and a use of Dst can be rewritten to Src.
type AvailCopies struct {
	F      *ir.Function
	Copies []Copy

	siteID map[*ir.Block]map[int]int
	// byReg lists the copies mentioning a register on either side (a
	// redefinition of either side invalidates the equality).
	byReg map[ir.Reg][]int
	// byDst lists the copies writing a register. At most one of them
	// can be available at any point (a later copy to the same register
	// kills the earlier ones), so lookup is unambiguous.
	byDst map[ir.Reg][]int
}

// NewAvailCopies scans f and builds the copy universe. Self-copies
// (mov r <- r) carry no information and get no fact.
func NewAvailCopies(f *ir.Function) *AvailCopies {
	ac := &AvailCopies{
		F:      f,
		siteID: make(map[*ir.Block]map[int]int),
		byReg:  make(map[ir.Reg][]int),
		byDst:  make(map[ir.Reg][]int),
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op != ir.OpMov || in.Dst == in.A {
				continue
			}
			id := len(ac.Copies)
			ac.Copies = append(ac.Copies, Copy{Block: b, Idx: i, Dst: in.Dst, Src: in.A})
			if ac.siteID[b] == nil {
				ac.siteID[b] = make(map[int]int)
			}
			ac.siteID[b][i] = id
			ac.byReg[in.Dst] = append(ac.byReg[in.Dst], id)
			ac.byReg[in.A] = append(ac.byReg[in.A], id)
			ac.byDst[in.Dst] = append(ac.byDst[in.Dst], id)
		}
	}
	return ac
}

// Direction implements Problem.
func (ac *AvailCopies) Direction() Direction { return Forward }

// Meet implements Problem: a copy must hold on every incoming path.
func (ac *AvailCopies) Meet() Meet { return Intersect }

// NumFacts implements Problem.
func (ac *AvailCopies) NumFacts() int { return len(ac.Copies) }

// Boundary implements Problem: no copies hold at entry.
func (ac *AvailCopies) Boundary() *BitSet { return NewBitSet(len(ac.Copies)) }

// Transfer implements Problem: a definition of r kills every copy
// mentioning r; a (non-self) mov then generates its own fact.
func (ac *AvailCopies) Transfer(b *ir.Block, idx int, in *ir.Instr, facts *BitSet) {
	d := in.Defs()
	if d == ir.NoReg {
		return
	}
	for _, id := range ac.byReg[d] {
		facts.Clear(id)
	}
	if in.Op == ir.OpMov && in.Dst != in.A {
		facts.Set(ac.siteID[b][idx])
	}
}

// SiteID returns the fact id of the copy at (b, idx), or -1 if that
// instruction is not a tracked copy.
func (ac *AvailCopies) SiteID(b *ir.Block, idx int) int {
	if m, ok := ac.siteID[b]; ok {
		if id, ok := m[idx]; ok {
			return id
		}
	}
	return -1
}

// SourceOf returns the register r is currently a copy of, given the
// facts at a point: the source of the (unique) available copy writing
// r. ok is false when no copy of r is available.
func (ac *AvailCopies) SourceOf(r ir.Reg, facts *BitSet) (ir.Reg, bool) {
	for _, id := range ac.byDst[r] {
		if facts.Has(id) {
			return ac.Copies[id].Src, true
		}
	}
	return r, false
}

// Resolve chases copy chains to the representative source: if r <- s
// and s <- t are both available, a use of r can read t directly. The
// chase is bounded by the register count (availability cannot form a
// cycle — generating r <- s first kills every fact mentioning r — but
// the bound keeps a malformed lattice from hanging).
func (ac *AvailCopies) Resolve(r ir.Reg, facts *BitSet) ir.Reg {
	for i := 0; i < ac.F.NumRegs; i++ {
		src, ok := ac.SourceOf(r, facts)
		if !ok {
			return r
		}
		r = src
	}
	return r
}

// IsRedundant reports whether a mov is a no-op at a point with the
// given facts: its two sides already provably hold the same value.
// Available copies form a forest (each register has at most one
// available copy writing it), so two registers are provably equal
// exactly when chasing their chains reaches the same representative.
func (ac *AvailCopies) IsRedundant(in *ir.Instr, facts *BitSet) bool {
	if in.Op != ir.OpMov {
		return false
	}
	return in.Dst == in.A || ac.Resolve(in.Dst, facts) == ac.Resolve(in.A, facts)
}

// RedundantCopies returns the copies that are no-ops at their own
// program point — self-copies, and movs whose (dst, src) equality
// already holds on every incoming path. These are precisely the movs
// the CopyCoalesce pass deletes outright, and what the optimizer-
// opportunity linter reports.
func RedundantCopies(f *ir.Function, info *ir.CFGInfo) []Copy {
	ac := NewAvailCopies(f)
	res := Solve(info, ac)
	var out []Copy
	for _, b := range info.RPO {
		res.Replay(b, func(idx int, in *ir.Instr, facts *BitSet) {
			if ac.IsRedundant(in, facts) {
				out = append(out, Copy{Block: b, Idx: idx, Dst: in.Dst, Src: in.A})
			}
		})
	}
	return out
}

package analysis

import (
	"sort"

	"repro/internal/ir"
)

// LoopInfo augments one of the CFG's natural loops with the derived
// facts the optimizer needs: a deterministic body order, the exit
// blocks, and per-register definition counts inside the loop (the basis
// of the loop-invariance test).
type LoopInfo struct {
	*ir.Loop
	// Body is the loop's blocks (header included) in RPO order.
	Body []*ir.Block
	// Exits are the blocks outside the loop that a loop block branches
	// to, in deterministic (source-RPO, successor) order, deduplicated.
	Exits []*ir.Block
	// DefCount is the number of instructions inside the loop that
	// define each register; registers absent from the map are invariant
	// across iterations.
	DefCount map[ir.Reg]int
}

// Invariant reports whether r's value cannot change while the loop
// runs: no instruction in the body defines it.
func (l *LoopInfo) Invariant(r ir.Reg) bool { return l.DefCount[r] == 0 }

// LoopNest ties the natural loops of one function together with its
// dominator tree and orders them for transformation.
type LoopNest struct {
	Info *ir.CFGInfo
	Dom  *DomTree
	// Loops holds every natural loop, innermost-first (deepest nesting
	// depth first; ties broken by header RPO position), which is the
	// order hoisting wants: code moved out of an inner loop lands in
	// the enclosing loop's body where a later pass round can move it
	// further.
	Loops []*LoopInfo

	byHeader map[*ir.Block]*LoopInfo
	rpoIndex map[*ir.Block]int
}

// AnalyzeLoops builds the loop nest for an analyzed CFG.
func AnalyzeLoops(info *ir.CFGInfo, dom *DomTree) *LoopNest {
	ln := &LoopNest{
		Info:     info,
		Dom:      dom,
		byHeader: make(map[*ir.Block]*LoopInfo),
		rpoIndex: make(map[*ir.Block]int, len(info.RPO)),
	}
	for i, b := range info.RPO {
		ln.rpoIndex[b] = i
	}
	for _, l := range info.Loops {
		li := &LoopInfo{Loop: l, DefCount: make(map[ir.Reg]int)}
		for _, b := range info.RPO {
			if !l.Blocks[b] {
				continue
			}
			li.Body = append(li.Body, b)
			for _, in := range b.Instrs {
				if d := in.Defs(); d != ir.NoReg {
					li.DefCount[d]++
				}
			}
		}
		seen := make(map[*ir.Block]bool)
		for _, b := range li.Body {
			for _, s := range b.Succs() {
				if !l.Blocks[s] && !seen[s] {
					seen[s] = true
					li.Exits = append(li.Exits, s)
				}
			}
		}
		ln.Loops = append(ln.Loops, li)
		ln.byHeader[l.Header] = li
	}
	sort.SliceStable(ln.Loops, func(i, j int) bool {
		if ln.Loops[i].Depth != ln.Loops[j].Depth {
			return ln.Loops[i].Depth > ln.Loops[j].Depth
		}
		return ln.rpoIndex[ln.Loops[i].Header] < ln.rpoIndex[ln.Loops[j].Header]
	})
	return ln
}

// ByHeader returns the loop headed by b, or nil.
func (ln *LoopNest) ByHeader(b *ir.Block) *LoopInfo { return ln.byHeader[b] }

// InnermostOf returns the innermost loop containing b, or nil.
func (ln *LoopNest) InnermostOf(b *ir.Block) *LoopInfo {
	var best *LoopInfo
	for _, l := range ln.Loops {
		if l.Blocks[b] && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}

// HoistCandidate is one instruction LICM can move to its loop's
// preheader without changing any observable result.
type HoistCandidate struct {
	Loop  *LoopInfo
	Block *ir.Block
	Idx   int
	In    *ir.Instr
}

// HoistCandidates returns the instructions that are provably safe to
// hoist out of their innermost loop, in deterministic (loop, body-RPO,
// index) order. live must be a solved Liveness result for the same CFG.
//
// An instruction qualifies when all of the following hold:
//
//   - its opcode is speculatable: side-effect free and unable to fault,
//     so executing it on the zero-trip path (where the loop body never
//     runs) is unobservable except through its destination;
//   - every operand is loop-invariant (no definition inside the loop),
//     so the value it computes is the same on every iteration;
//   - its destination has exactly one definition inside the loop (this
//     instruction), so no other in-loop write races the hoisted value;
//   - its destination is not live into the loop header, so overwriting
//     it before the first iteration — including when the loop body
//     never executes, or exits before reaching the instruction —
//     cannot clobber a value some path still reads. (Liveness at the
//     header covers every such path: if any use were reachable from
//     the header without an intervening definition, the register would
//     be live there.)
//
// Together these make the hoisted instruction produce exactly the value
// every in-loop execution would have produced, and make the extra
// execution on loop-free paths invisible.
func (ln *LoopNest) HoistCandidates(live *Result) []HoistCandidate {
	var out []HoistCandidate
	var buf []ir.Reg
	for _, l := range ln.Loops {
		for _, b := range l.Body {
			if ln.InnermostOf(b) != l {
				continue // handled as part of the inner loop
			}
			headerIn := live.In[l.Header]
			if headerIn == nil {
				continue
			}
			for idx, in := range b.Instrs {
				if !Speculatable(in.Op) {
					continue
				}
				d := in.Defs()
				if d == ir.NoReg || l.DefCount[d] != 1 {
					continue
				}
				if headerIn.Has(int(d)) {
					continue
				}
				invariant := true
				buf = in.Uses(buf[:0])
				for _, u := range buf {
					if !l.Invariant(u) {
						invariant = false
						break
					}
				}
				if invariant {
					out = append(out, HoistCandidate{Loop: l, Block: b, Idx: idx, In: in})
				}
			}
		}
	}
	return out
}

package analysis

import (
	"testing"

	"repro/internal/ir"
)

// diamond builds:
//
//	entry: br p0 ? left : right
//	left:  x = 5       ; jmp merge
//	right: (no def of x); jmp merge
//	merge: ret x
//
// and returns the function, the shared register x, and the four blocks.
func diamond(t *testing.T) (*ir.Function, ir.Reg, []*ir.Block) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunction("d", 1)
	b := ir.NewBuilder(f)
	x := f.NewReg()
	left := b.Block("left")
	right := b.Block("right")
	merge := b.Block("merge")
	b.Br(b.Param(0), left, right)
	b.SetBlock(left)
	b.MovTo(x, b.Const(5))
	b.Jmp(merge)
	b.SetBlock(right)
	b.Jmp(merge)
	b.SetBlock(merge)
	b.Ret(x)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f, x, []*ir.Block{f.Entry(), left, right, merge}
}

func TestDiamondDefiniteAssign(t *testing.T) {
	f, x, blocks := diamond(t)
	merge := blocks[3]
	info := ir.AnalyzeCFG(f)
	res := Solve(info, NewDefiniteAssign(f))
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
	// x is assigned on the left arm only: the intersect meet at the
	// merge must drop it, while the parameter survives.
	if res.In[merge].Has(int(x)) {
		t.Fatalf("v%d wrongly definitely-assigned at merge", x)
	}
	if !res.In[merge].Has(0) {
		t.Fatal("parameter 0 must be definitely assigned everywhere")
	}
	if !res.Out[blocks[1]].Has(int(x)) {
		t.Fatal("x must be assigned at left's exit")
	}
}

func TestDiamondReachingDefsAndLiveness(t *testing.T) {
	f, x, blocks := diamond(t)
	left, right, merge := blocks[1], blocks[2], blocks[3]
	info := ir.AnalyzeCFG(f)

	rd := NewReachingDefs(f)
	res := Solve(info, rd)
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
	// Exactly one static def of x (the mov in left, instruction index 1);
	// the union meet carries it into the merge.
	ids := rd.DefsOf(x)
	if len(ids) != 1 {
		t.Fatalf("DefsOf(x) = %d sites, want 1", len(ids))
	}
	if !res.In[merge].Has(ids[0]) {
		t.Fatal("left's def of x must reach the merge")
	}
	if res.In[right].Has(ids[0]) {
		t.Fatal("left's def cannot reach the right arm")
	}

	lv := NewLiveness(f)
	lres := Solve(info, lv)
	// x is read at the merge's ret: live-in of both arms and of entry
	// (it is never defined on the right path).
	if !lres.In[merge].Has(int(x)) {
		t.Fatal("x must be live into the merge")
	}
	if !lres.In[right].Has(int(x)) {
		t.Fatal("x must be live through the right arm")
	}
	if lres.In[left].Has(int(x)) {
		// The left arm fully redefines x before the use.
		t.Fatal("x must be dead into the left arm (redefined there)")
	}
}

func TestNestedLoopsConverge(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("nest", 0)
	b := ir.NewBuilder(f)
	sum := b.Const(0)
	b.CountingLoop(0, 4, 1, func(i ir.Reg) {
		b.CountingLoop(0, 4, 1, func(j ir.Reg) {
			b.CountingLoop(0, 4, 1, func(k ir.Reg) {
				b.MovTo(sum, b.Add(sum, k))
			})
		})
	})
	b.Ret(sum)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	info := ir.AnalyzeCFG(f)
	if len(info.Loops) != 3 {
		t.Fatalf("loops = %d, want 3", len(info.Loops))
	}
	for name, p := range map[string]Problem{
		"reaching":  NewReachingDefs(f),
		"liveness":  NewLiveness(f),
		"defassign": NewDefiniteAssign(f),
	} {
		res := Solve(info, p)
		if !res.Converged {
			t.Fatalf("%s did not converge", name)
		}
		// RPO sweeps settle in about loop-depth rounds, far below the
		// safety cap.
		if res.Rounds > len(info.RPO) {
			t.Fatalf("%s took %d rounds over %d blocks", name, res.Rounds, len(info.RPO))
		}
	}
	// The innermost accumulator def must reach the outer loop's header
	// through three levels of back edges.
	rd := NewReachingDefs(f)
	res := Solve(info, rd)
	var innermost *ir.Loop
	for _, l := range info.Loops {
		if innermost == nil || l.Depth > innermost.Depth {
			innermost = l
		}
	}
	outer := info.Loops[0]
	for _, l := range info.Loops {
		if l.Depth < outer.Depth {
			outer = l
		}
	}
	found := false
	for _, id := range rd.DefsOf(sum) {
		s := rd.Sites[id]
		if s.Block != nil && innermost.Blocks[s.Block] && res.In[outer.Header].Has(id) {
			found = true
		}
	}
	if !found {
		t.Fatal("innermost def of sum must reach the outermost header")
	}
}

// multiLatch builds a loop whose header has two in-loop back edges:
//
//	entry:  g = alloc 64; jmp header
//	header: br p0 ? body : exit
//	body:   guard [g+0]; br p0 ? latch1 : latch2
//	latch1: jmp header
//	latch2: x = 1; jmp header
//	exit:   ret
func multiLatch(t *testing.T) (*ir.Function, *ir.Instr, ir.Reg) {
	t.Helper()
	m := ir.NewModule("t")
	f := m.NewFunction("ml", 1)
	b := ir.NewBuilder(f)
	g := b.Alloc(64)
	x := f.NewReg()
	header := b.Block("header")
	body := b.Block("body")
	latch1 := b.Block("latch1")
	latch2 := b.Block("latch2")
	exit := b.Block("exit")
	b.Jmp(header)
	b.SetBlock(header)
	b.Br(b.Param(0), body, exit)
	b.SetBlock(body)
	guard := &ir.Instr{Op: ir.OpGuard, Dst: ir.NoReg, A: g, B: ir.NoReg}
	body.Instrs = append(body.Instrs, guard)
	b.Br(b.Param(0), latch1, latch2)
	b.SetBlock(latch1)
	b.Jmp(header)
	b.SetBlock(latch2)
	b.MovTo(x, b.Const(1))
	b.Jmp(header)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	return f, guard, x
}

func TestMultiLatchLoop(t *testing.T) {
	f, guard, x := multiLatch(t)
	info := ir.AnalyzeCFG(f)
	if len(info.Loops) != 1 || len(info.Loops[0].Latches) != 2 {
		t.Fatalf("want one loop with two latches, got %+v", info.Loops)
	}
	header := info.Loops[0].Header

	// Availability: the guard executes on the way to both latches, so it
	// is available at each latch's exit — but NOT at the header, whose
	// meet includes the guard-free entry path (first iteration). This
	// asymmetry is what keeps availability-based elimination sound in
	// loops.
	rd := NewReachingDefs(f)
	alias := AnalyzeAlias(f, rd, Solve(info, rd))
	av := NewAvailFacts(f, alias)
	res := Solve(info, av)
	if !res.Converged {
		t.Fatal("avail did not converge")
	}
	for _, l := range info.Loops[0].Latches {
		if !av.GuardAvailable(guard, res.Out[l]) {
			t.Fatalf("guard must be available at latch %s exit", l.Name)
		}
	}
	if av.GuardAvailable(guard, res.In[header]) {
		t.Fatal("guard must NOT be available at the header (entry path has not checked)")
	}

	// Reaching defs: latch2's def of x flows around the back edge into
	// the header; definite assignment rejects it (latch1 path skips it).
	rres := Solve(info, rd)
	reached := false
	for _, id := range rd.DefsOf(x) {
		if rres.In[header].Has(id) {
			reached = true
		}
	}
	if !reached {
		t.Fatal("latch2's def of x must reach the header")
	}
	da := Solve(info, NewDefiniteAssign(f))
	if da.In[header].Has(int(x)) {
		t.Fatal("x must not be definitely assigned at the header")
	}
}

func TestUnreachableCycleIgnoredBySolver(t *testing.T) {
	f, _, blocks := diamond(t)
	// A dead two-block cycle: each references the other, so Verify's
	// no-edge check passes, but no path from entry reaches them.
	d1 := f.NewBlock("dead1")
	d2 := f.NewBlock("dead2")
	d1.Instrs = append(d1.Instrs, &ir.Instr{Op: ir.OpJmp, A: ir.NoReg, B: ir.NoReg, Target: d2})
	d2.Instrs = append(d2.Instrs, &ir.Instr{Op: ir.OpJmp, A: ir.NoReg, B: ir.NoReg, Target: d1})
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
	info := ir.AnalyzeCFG(f)
	if len(info.RPO) != len(blocks) {
		t.Fatalf("RPO has %d blocks, want %d reachable", len(info.RPO), len(blocks))
	}
	res := Solve(info, NewReachingDefs(f))
	if !res.Converged {
		t.Fatal("solver did not converge")
	}
	if _, ok := res.In[d1]; ok {
		t.Fatal("unreachable block must have no solved facts")
	}
	visited := false
	res.Replay(d1, func(int, *ir.Instr, *BitSet) { visited = true })
	if visited {
		t.Fatal("Replay over an unreachable block must be a no-op")
	}
	// The lint layer is what reports them.
	diags := LintFunc(f)
	dead := 0
	for _, d := range diags {
		if d.Kind == KindUnreachable {
			dead++
		}
	}
	if dead != 2 {
		t.Fatalf("want 2 unreachable-block diags, got %d (%v)", dead, diags)
	}
}

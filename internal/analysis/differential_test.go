// Differential test: on the seeded buggy modules, the static linter's
// diagnostics must be a superset of what the CARAT runtime observes
// dynamically. The runtime only sees the one path it executes; the
// linter reasons over all paths, so every dynamic detection must have a
// static counterpart (the converse need not hold).
package analysis_test

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/passes"
	"repro/internal/workloads"
)

// dynamicSignals runs a CARAT-instrumented module and reports which bug
// classes the runtime detected: guard violations (use-after-free),
// untracked frees (double-free), and live regions at exit (leak). A run
// that dies in the interpreter's heap (e.g. the second free) counts as
// a detection of whatever the table recorded up to that point.
func dynamicSignals(t *testing.T, tgt workloads.NamedModule, args ...uint64) (uaf, dfree, leak bool) {
	t.Helper()
	m := tgt.Mod
	if err := passes.RunAll(m, &passes.CARATInject{}); err != nil {
		t.Fatalf("%s: inject: %v", tgt.Name, err)
	}
	ip, err := interp.New(m)
	if err != nil {
		t.Fatalf("%s: %v", tgt.Name, err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	_, runErr := ip.Call(tgt.Entry, args...)
	if runErr != nil && tb.Violations == 0 && tb.Untracked == 0 {
		t.Fatalf("%s: run died with no runtime detection: %v", tgt.Name, runErr)
	}
	return tb.Violations > 0, tb.Untracked > 0, runErr == nil && tb.Len() > 0
}

func TestStaticDiagnosticsCoverDynamicDetections(t *testing.T) {
	// Arguments chosen to drive each buggy module down its buggy path
	// (leak-conditional leaks when the branch is not taken; use-before-def
	// reads the unset register when the branch is not taken).
	args := map[string][]uint64{
		"buggy/leak-conditional": {0},
		"buggy/use-before-def":   {0},
	}
	for _, tgt := range workloads.BuggySuite() {
		// Lint the pristine module first: instrumentation below mutates it.
		diags := analysis.Lint(tgt.Mod, tgt.Extern)
		kinds := make(map[analysis.Kind]bool)
		for _, d := range diags {
			kinds[d.Kind] = true
		}
		uaf, dfree, leak := dynamicSignals(t, tgt, args[tgt.Name]...)
		if uaf && !kinds[analysis.KindUseAfterFree] {
			t.Errorf("%s: runtime saw a violation but lint has no use-after-free diag (%v)", tgt.Name, diags)
		}
		if dfree && !kinds[analysis.KindDoubleFree] {
			t.Errorf("%s: runtime saw an untracked free but lint has no double-free diag (%v)", tgt.Name, diags)
		}
		if leak && !kinds[analysis.KindLeak] {
			t.Errorf("%s: regions live at exit but lint has no leak diag (%v)", tgt.Name, diags)
		}
		if !uaf && !dfree && !leak && len(diags) == 0 {
			t.Errorf("%s: neither static nor dynamic detection fired", tgt.Name)
		}
	}
}

func TestShippedModulesCleanBothWays(t *testing.T) {
	// On the clean modules the inclusion is two-sided: no diagnostics and
	// no runtime detections.
	for _, tgt := range workloads.LintTargets() {
		if ds := analysis.Lint(tgt.Mod, tgt.Extern); len(ds) != 0 {
			t.Errorf("%s: %v", tgt.Name, ds)
			continue
		}
		uaf, dfree, leak := dynamicSignals(t, tgt)
		if uaf || dfree || leak {
			t.Errorf("%s: runtime detections on a lint-clean module (uaf=%v dfree=%v leak=%v)",
				tgt.Name, uaf, dfree, leak)
		}
	}
}

package analysis

import "repro/internal/ir"

// DomTree materializes the dominator relation of a CFG as an explicit
// tree over ir.CFGInfo's immediate dominators: children lists in
// deterministic (RPO) order, plus pre/post DFS numbering so Dominates
// answers in O(1) instead of walking idom chains. The optimizer passes
// (GlobalDCE, LICM) and the loop nest build on it.
type DomTree struct {
	Info *ir.CFGInfo

	children map[*ir.Block][]*ir.Block
	// pre/post are DFS interval numbers over the dominator tree:
	// a dominates b iff pre[a] <= pre[b] && post[b] <= post[a].
	pre, post map[*ir.Block]int
	depth     map[*ir.Block]int
}

// NewDomTree builds the dominator tree for an analyzed CFG.
func NewDomTree(info *ir.CFGInfo) *DomTree {
	t := &DomTree{
		Info:     info,
		children: make(map[*ir.Block][]*ir.Block),
		pre:      make(map[*ir.Block]int),
		post:     make(map[*ir.Block]int),
		depth:    make(map[*ir.Block]int),
	}
	if len(info.RPO) == 0 {
		return t
	}
	root := info.RPO[0]
	// Children in RPO order: a parent always precedes its children in
	// RPO, so the tree below is well-formed and deterministically
	// ordered.
	for _, b := range info.RPO[1:] {
		id := info.IDom[b]
		if id == nil {
			continue
		}
		t.children[id] = append(t.children[id], b)
	}
	// Iterative DFS for the interval numbering.
	clock := 0
	type frame struct {
		b    *ir.Block
		next int
	}
	stack := []frame{{b: root}}
	t.pre[root] = clock
	clock++
	for len(stack) > 0 {
		top := &stack[len(stack)-1]
		kids := t.children[top.b]
		if top.next < len(kids) {
			c := kids[top.next]
			top.next++
			t.pre[c] = clock
			clock++
			t.depth[c] = t.depth[top.b] + 1
			stack = append(stack, frame{b: c})
			continue
		}
		t.post[top.b] = clock
		clock++
		stack = stack[:len(stack)-1]
	}
	return t
}

// Root returns the tree root (the function entry), or nil for an empty
// CFG.
func (t *DomTree) Root() *ir.Block {
	if len(t.Info.RPO) == 0 {
		return nil
	}
	return t.Info.RPO[0]
}

// IDom returns b's immediate dominator, or nil for the root and for
// unreachable blocks.
func (t *DomTree) IDom(b *ir.Block) *ir.Block {
	id := t.Info.IDom[b]
	if id == b {
		return nil // root
	}
	return id
}

// Children returns b's dominator-tree children in RPO order. The slice
// is shared; callers must not mutate it.
func (t *DomTree) Children(b *ir.Block) []*ir.Block { return t.children[b] }

// Dominates reports whether a dominates b (reflexively), in O(1) via
// the DFS interval test. Unreachable blocks dominate nothing and are
// dominated by nothing.
func (t *DomTree) Dominates(a, b *ir.Block) bool {
	pa, oka := t.pre[a]
	pb, okb := t.pre[b]
	if !oka || !okb {
		return false
	}
	return pa <= pb && t.post[b] <= t.post[a]
}

// StrictlyDominates reports whether a dominates b and a != b.
func (t *DomTree) StrictlyDominates(a, b *ir.Block) bool {
	return a != b && t.Dominates(a, b)
}

// Depth returns b's depth in the tree (root is 0); unreachable blocks
// report -1.
func (t *DomTree) Depth(b *ir.Block) int {
	if _, ok := t.pre[b]; !ok {
		return -1
	}
	return t.depth[b]
}

// Walk visits the tree in preorder (each block before the blocks it
// strictly dominates), in deterministic order.
func (t *DomTree) Walk(visit func(b *ir.Block)) {
	root := t.Root()
	if root == nil {
		return
	}
	stack := []*ir.Block{root}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		visit(b)
		kids := t.children[b]
		for i := len(kids) - 1; i >= 0; i-- {
			stack = append(stack, kids[i])
		}
	}
}

// Package analysis implements a reusable dataflow framework over
// internal/ir — a worklist solver on the CFG's reverse postorder with
// per-instruction transfer functions and bit-vector lattices — plus the
// concrete analyses built on it (reaching definitions, liveness,
// definite assignment, available copies, guard/allocation availability,
// and a flow-insensitive may-alias/escape partition), structural
// analyses (an explicit dominator tree and a loop nest with hoisting
// candidates), an interprocedural purity/effect summary over the call
// graph, and a memory-safety linter that reports use-before-def, dead
// stores, use-after-free, double-free, and leaked allocations as
// structured diagnostics.
//
// The framework is the compiler side of the paper's interweaving
// argument (§IV-A): what CARAT's runtime would check dynamically, the
// compiler proves statically — and what it can prove, the passes in
// internal/passes delete (CARATElim, GlobalDCE), rewrite (CopyCoalesce)
// or move (LICM). LintOpt reports the same facts as optimizer-
// opportunity diagnostics so analysis and transformation stay in
// lockstep: everything it flags, the standard pipeline removes.
package analysis

import "math/bits"

// BitSet is a fixed-universe bit vector; the unit of every dataflow
// lattice in this package.
type BitSet struct {
	n     int
	words []uint64
}

// NewBitSet returns an empty set over a universe of n facts.
func NewBitSet(n int) *BitSet {
	return &BitSet{n: n, words: make([]uint64, (n+63)/64)}
}

// Len returns the universe size.
func (s *BitSet) Len() int { return s.n }

// Set adds fact i.
func (s *BitSet) Set(i int) { s.words[i>>6] |= 1 << uint(i&63) }

// Clear removes fact i.
func (s *BitSet) Clear(i int) { s.words[i>>6] &^= 1 << uint(i&63) }

// Has reports whether fact i is present.
func (s *BitSet) Has(i int) bool { return s.words[i>>6]&(1<<uint(i&63)) != 0 }

// Fill adds every fact in the universe.
func (s *BitSet) Fill() {
	for i := range s.words {
		s.words[i] = ^uint64(0)
	}
	s.trim()
}

// Reset removes every fact.
func (s *BitSet) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// trim zeroes the bits past n so Equal and Count stay exact.
func (s *BitSet) trim() {
	if s.n&63 != 0 && len(s.words) > 0 {
		s.words[len(s.words)-1] &= (1 << uint(s.n&63)) - 1
	}
}

// Copy returns an independent copy.
func (s *BitSet) Copy() *BitSet {
	c := &BitSet{n: s.n, words: make([]uint64, len(s.words))}
	copy(c.words, s.words)
	return c
}

// CopyFrom overwrites s with o (same universe).
func (s *BitSet) CopyFrom(o *BitSet) { copy(s.words, o.words) }

// Union adds every fact of o to s.
func (s *BitSet) Union(o *BitSet) {
	for i := range s.words {
		s.words[i] |= o.words[i]
	}
}

// Intersect removes every fact of s not in o.
func (s *BitSet) Intersect(o *BitSet) {
	for i := range s.words {
		s.words[i] &= o.words[i]
	}
}

// Equal reports whether s and o hold the same facts.
func (s *BitSet) Equal(o *BitSet) bool {
	for i := range s.words {
		if s.words[i] != o.words[i] {
			return false
		}
	}
	return true
}

// Count returns the number of facts present.
func (s *BitSet) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// ForEach calls fn for every present fact, in ascending order.
func (s *BitSet) ForEach(fn func(i int)) {
	for wi, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			fn(wi<<6 + b)
			w &= w - 1
		}
	}
}

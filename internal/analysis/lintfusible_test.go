package analysis

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

func TestLintFusibleFindsPatterns(t *testing.T) {
	m := ir.NewModule("fus")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	x := b.Load(buf, 0)
	y := b.Load(buf, 8) // load+load
	_ = y
	c := b.Const(3)
	cond := b.ICmp(ir.PredLT, x, c)
	thn := b.Block("t")
	els := b.Block("e")
	b.Br(cond, thn, els) // icmp+br
	b.SetBlock(thn)
	b.Ret(x)
	b.SetBlock(els)
	b.Ret(c)

	ds := LintFusible(m)
	if len(ds) != 2 {
		t.Fatalf("got %d diagnostics, want 2: %v", len(ds), ds)
	}
	for _, d := range ds {
		if d.Kind != KindFusiblePair {
			t.Errorf("kind %q, want %q", d.Kind, KindFusiblePair)
		}
		if d.Module != "fus" || d.Fn != "main" {
			t.Errorf("diag not attributed: %+v", d)
		}
	}
	// sortDiags orders by function, block, then instruction index; both
	// pairs are in the entry block, load+load (instr 1) before icmp+br.
	if !strings.Contains(ds[0].Msg, "load then load") || !strings.Contains(ds[0].Msg, "load+load") {
		t.Errorf("diag 0 message %q", ds[0].Msg)
	}
	if !strings.Contains(ds[1].Msg, "icmp then br") || !strings.Contains(ds[1].Msg, "cmp+br") {
		t.Errorf("diag 1 message %q", ds[1].Msg)
	}
	if ds[0].Instr >= ds[1].Instr {
		t.Errorf("diagnostics out of instruction order: %d then %d", ds[0].Instr, ds[1].Instr)
	}
}

// TestLintFusibleLockstepWithCompiler pins the lockstep rule: the
// diagnostic walk shares the fuser's pattern predicates and selection
// policy (ir.EachFusiblePair with a nil table), so on every kernel the
// diagnostic count equals the superinstruction count the compiler
// actually forms under the default heuristic.
func TestLintFusibleLockstepWithCompiler(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		m := k.Build()
		n := len(LintFusible(m))
		p := interp.Compile(m, interp.DefaultCosts(), nil)
		if n != p.FusedPairs() {
			t.Errorf("%s: %d fusible-pair diagnostics, compiler fused %d pairs",
				k.Name, n, p.FusedPairs())
		}
		if n == 0 {
			t.Errorf("%s: no fusible pairs reported", k.Name)
		}
	}
}

// TestLintOptExcludesFusible pins the -O contract: fusible-pair is an
// engine-opportunity diagnostic, not optimizer debt, so LintOpt (the
// pass-lockstep check that must be silent after StdOptimization) never
// reports it.
func TestLintOptExcludesFusible(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		for _, d := range LintOpt(k.Build()) {
			if d.Kind == KindFusiblePair {
				t.Fatalf("%s: LintOpt reported %v", k.Name, d)
			}
		}
	}
}

package analysis

import "repro/internal/ir"

// Direction selects which way facts propagate.
type Direction int

// Dataflow directions.
const (
	Forward Direction = iota
	Backward
)

// Meet selects the lattice join applied where paths merge.
type Meet int

// Meet operators: Union for may-analyses (a fact holds on some path),
// Intersect for must-analyses (a fact holds on every path).
const (
	Union Meet = iota
	Intersect
)

// Problem is a monotone bit-vector dataflow problem. The solver derives
// each block's transfer function by applying Transfer to its
// instructions in execution order (Forward) or reverse order (Backward).
type Problem interface {
	Direction() Direction
	Meet() Meet
	// NumFacts is the universe size.
	NumFacts() int
	// Boundary is the fact set at the function entry (Forward) or at
	// every exit (Backward).
	Boundary() *BitSet
	// Transfer applies one instruction's gen/kill effect to facts in
	// place.
	Transfer(b *ir.Block, idx int, in *ir.Instr, facts *BitSet)
}

// Result holds the per-block fixpoint of a solved problem. In and Out
// are always in execution order: In is the facts at the block's entry,
// Out at its exit, regardless of direction. Unreachable blocks (absent
// from the CFG's RPO) have no entry.
type Result struct {
	In, Out map[*ir.Block]*BitSet
	// Rounds is the number of sweeps over the CFG until the fixpoint;
	// Converged is false only if the safety cap was hit, which for a
	// monotone transfer cannot happen (the fuzz tests assert this).
	Rounds    int
	Converged bool

	p    Problem
	info *ir.CFGInfo
}

// Solve runs the worklist iteration for p over info's reachable blocks.
// Blocks are swept in reverse postorder (Forward) or postorder
// (Backward), which for reducible CFGs converges in loop-depth+2
// sweeps; a cap of len(RPO)+8 sweeps guards against non-monotone
// transfer bugs.
func Solve(info *ir.CFGInfo, p Problem) *Result {
	r := &Result{
		In:  make(map[*ir.Block]*BitSet),
		Out: make(map[*ir.Block]*BitSet),
		p:   p, info: info,
	}
	order := info.RPO
	if p.Direction() == Backward {
		order = make([]*ir.Block, len(info.RPO))
		for i, b := range info.RPO {
			order[len(info.RPO)-1-i] = b
		}
	}
	if len(order) == 0 {
		r.Converged = true
		return r
	}

	// top is the initial value of every non-boundary node: empty for
	// Union (no fact proven on any path yet), full for Intersect (every
	// fact vacuously holds until a path refutes it).
	mkTop := func() *BitSet {
		s := NewBitSet(p.NumFacts())
		if p.Meet() == Intersect {
			s.Fill()
		}
		return s
	}
	for _, b := range order {
		r.In[b] = mkTop()
		r.Out[b] = mkTop()
	}

	// start/end pick the maps facing the meet and the transfer result
	// for the solve direction.
	pre, post := r.In, r.Out // Forward: meet into In, transfer to Out
	if p.Direction() == Backward {
		pre, post = r.Out, r.In // Backward: meet into Out, transfer to In
	}

	maxRounds := len(order) + 8
	changed := true
	for changed && r.Rounds < maxRounds {
		changed = false
		r.Rounds++
		for _, b := range order {
			// Meet over dataflow predecessors. The entry block of a
			// forward problem meets the boundary value in addition to
			// any CFG predecessors (the entry can be a loop header).
			edges := r.flowPreds(b)
			cur := pre[b]
			first := true
			if len(edges) == 0 || (p.Direction() == Forward && b == order[0]) {
				cur.CopyFrom(p.Boundary())
				first = false
			}
			for _, e := range edges {
				src, ok := post[e]
				if !ok {
					continue
				}
				if first {
					cur.CopyFrom(src)
					first = false
				} else if p.Meet() == Union {
					cur.Union(src)
				} else {
					cur.Intersect(src)
				}
			}
			next := r.transferBlock(b, cur)
			if !next.Equal(post[b]) {
				post[b].CopyFrom(next)
				changed = true
			}
		}
	}
	r.Converged = !changed
	return r
}

// flowPreds returns the blocks whose post-facts feed b's meet: CFG
// predecessors for forward problems, successors for backward ones.
func (r *Result) flowPreds(b *ir.Block) []*ir.Block {
	if r.p.Direction() == Forward {
		return r.info.Preds[b]
	}
	return b.Succs()
}

// transferBlock applies the block's instruction transfers to a copy of
// in, honoring the problem direction.
func (r *Result) transferBlock(b *ir.Block, in *BitSet) *BitSet {
	facts := in.Copy()
	if r.p.Direction() == Forward {
		for i, instr := range b.Instrs {
			r.p.Transfer(b, i, instr, facts)
		}
	} else {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			r.p.Transfer(b, i, b.Instrs[i], facts)
		}
	}
	return facts
}

// Replay visits b's instructions in execution order, passing the fact
// set holding immediately before instruction idx for forward problems,
// or immediately after it (e.g. live-out) for backward problems. The
// set is reused between calls; copy it to retain.
func (r *Result) Replay(b *ir.Block, visit func(idx int, in *ir.Instr, facts *BitSet)) {
	if r.p.Direction() == Forward {
		facts, ok := r.In[b]
		if !ok {
			return
		}
		cur := facts.Copy()
		for i, instr := range b.Instrs {
			visit(i, instr, cur)
			r.p.Transfer(b, i, instr, cur)
		}
		return
	}
	out, ok := r.Out[b]
	if !ok {
		return
	}
	// Backward: compute the after-sets front-to-back by replaying the
	// suffix transfer for each instruction. O(n²) in block length, but
	// blocks are short and lint runs offline.
	for i := range b.Instrs {
		cur := out.Copy()
		for j := len(b.Instrs) - 1; j > i; j-- {
			r.p.Transfer(b, j, b.Instrs[j], cur)
		}
		visit(i, b.Instrs[i], cur)
	}
}

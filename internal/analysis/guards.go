package analysis

import "repro/internal/ir"

// AvailFacts is the forward must-analysis behind analysis-driven guard
// elimination (§IV-A: the compiler proves checks redundant instead of
// merely hoisting them). Its universe holds three fact families:
//
//   - guard availability: an identical carat.guard (same base register,
//     offset, and region flag) has executed on every path since the
//     last event that could change its outcome;
//   - escape availability: an identical carat.track_escape (same
//     location base, offset, and value register) has executed on every
//     path — re-recording is idempotent;
//   - base validity: an OpAlloc's destination register still holds that
//     allocation's base, and no free or call can have released it — a
//     guard on such a register provably passes.
//
// Kills are conservative: any free, tracked free, or call invalidates
// every fact (a callee may free arbitrary regions); redefining a
// register invalidates the facts that mention it.
type AvailFacts struct {
	F     *ir.Function
	Alias *Alias

	guardID map[guardKey]int
	escID   map[escKey]int
	// siteFact[s] is the baseValid fact id of allocation site s.
	siteFact []int
	// sitesByDst lists site indices per destination register.
	sitesByDst map[ir.Reg][]int
	// killByReg lists fact ids invalidated by a write to a register.
	killByReg map[ir.Reg][]int
	siteAt    map[*ir.Block]map[int]int
	numFacts  int
}

type guardKey struct {
	a      ir.Reg
	imm    int64
	region bool
}

type escKey struct {
	a, b ir.Reg
	imm  int64
}

// NewAvailFacts builds the fact universe for f given its alias
// partition.
func NewAvailFacts(f *ir.Function, alias *Alias) *AvailFacts {
	av := &AvailFacts{
		F: f, Alias: alias,
		guardID:    make(map[guardKey]int),
		escID:      make(map[escKey]int),
		sitesByDst: make(map[ir.Reg][]int),
		killByReg:  make(map[ir.Reg][]int),
		siteAt:     make(map[*ir.Block]map[int]int),
	}
	id := 0
	alloc := func() int { id++; return id - 1 }
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			switch in.Op {
			case ir.OpGuard:
				k := guardKey{in.A, in.Imm, in.Region}
				if _, ok := av.guardID[k]; !ok {
					fid := alloc()
					av.guardID[k] = fid
					av.killByReg[k.a] = append(av.killByReg[k.a], fid)
				}
			case ir.OpTrackEsc:
				k := escKey{in.A, in.B, in.Imm}
				if _, ok := av.escID[k]; !ok {
					fid := alloc()
					av.escID[k] = fid
					av.killByReg[k.a] = append(av.killByReg[k.a], fid)
					if k.b != k.a {
						av.killByReg[k.b] = append(av.killByReg[k.b], fid)
					}
				}
			case ir.OpAlloc:
				s := len(av.siteFact)
				fid := alloc()
				av.siteFact = append(av.siteFact, fid)
				av.sitesByDst[in.Dst] = append(av.sitesByDst[in.Dst], s)
				av.killByReg[in.Dst] = append(av.killByReg[in.Dst], fid)
				if av.siteAt[b] == nil {
					av.siteAt[b] = make(map[int]int)
				}
				av.siteAt[b][i] = s
			}
		}
	}
	av.numFacts = id
	return av
}

// Direction implements Problem.
func (av *AvailFacts) Direction() Direction { return Forward }

// Meet implements Problem.
func (av *AvailFacts) Meet() Meet { return Intersect }

// NumFacts implements Problem.
func (av *AvailFacts) NumFacts() int { return av.numFacts }

// Boundary implements Problem: nothing is available at entry.
func (av *AvailFacts) Boundary() *BitSet { return NewBitSet(av.numFacts) }

// Transfer implements Problem.
func (av *AvailFacts) Transfer(b *ir.Block, idx int, in *ir.Instr, facts *BitSet) {
	switch in.Op {
	case ir.OpFree, ir.OpTrackFree, ir.OpCall:
		facts.Reset()
		if in.Op != ir.OpCall {
			return
		}
	}
	if d := in.Defs(); d != ir.NoReg {
		for _, fid := range av.killByReg[d] {
			facts.Clear(fid)
		}
	}
	switch in.Op {
	case ir.OpGuard:
		facts.Set(av.guardID[guardKey{in.A, in.Imm, in.Region}])
	case ir.OpTrackEsc:
		facts.Set(av.escID[escKey{in.A, in.B, in.Imm}])
	case ir.OpAlloc:
		facts.Set(av.siteFact[av.siteAt[b][idx]])
	}
}

// GuardAvailable reports whether an identical guard is available in
// facts.
func (av *AvailFacts) GuardAvailable(in *ir.Instr, facts *BitSet) bool {
	id, ok := av.guardID[guardKey{in.A, in.Imm, in.Region}]
	return ok && facts.Has(id)
}

// EscAvailable reports whether an identical escape record is available.
func (av *AvailFacts) EscAvailable(in *ir.Instr, facts *BitSet) bool {
	id, ok := av.escID[escKey{in.A, in.B, in.Imm}]
	return ok && facts.Has(id)
}

// GuardProvable reports whether the guard provably passes: its base
// register holds the live base of a known allocation, and (for an exact
// guard) the offset lies inside the allocation's statically known size.
// A region guard needs only base validity; an exact guard at offset 0
// is in bounds of any allocation (tracked sizes are at least one byte).
func (av *AvailFacts) GuardProvable(in *ir.Instr, facts *BitSet) bool {
	for _, s := range av.sitesByDst[in.A] {
		if !facts.Has(av.siteFact[s]) {
			continue
		}
		if in.Region || in.Imm == 0 {
			return true
		}
		if size := av.Alias.Sites[s].Size; size > 0 && in.Imm > 0 && in.Imm < size {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------
// Freed-site analyses (use-after-free / double-free / leak substrate)
// ---------------------------------------------------------------------

// FreedSites tracks, per allocation site, whether the allocation has
// been released. Two configurations share the transfer skeleton:
//
//   - MustFreed (Intersect): a site is freed on every path — gen at a
//     free whose operand must-aliases exactly that site, kill when the
//     site re-allocates. Uses and frees of a must-freed site are the
//     use-after-free and double-free diagnostics.
//   - LiveUnfreed (Union): a site is live and unreleased on some path —
//     gen at the allocation, kill at any free or call that may release
//     it. A non-escaping site still live at a return is a leak.
type FreedSites struct {
	F     *ir.Function
	Alias *Alias
	meet  Meet
	// live selects the LiveUnfreed configuration.
	live   bool
	siteAt map[*ir.Block]map[int]int
}

// NewMustFreed builds the definitely-freed configuration.
func NewMustFreed(f *ir.Function, alias *Alias) *FreedSites {
	return newFreedSites(f, alias, Intersect, false)
}

// NewLiveUnfreed builds the live-and-unfreed configuration.
func NewLiveUnfreed(f *ir.Function, alias *Alias) *FreedSites {
	return newFreedSites(f, alias, Union, true)
}

func newFreedSites(f *ir.Function, alias *Alias, meet Meet, live bool) *FreedSites {
	fs := &FreedSites{F: f, Alias: alias, meet: meet, live: live,
		siteAt: make(map[*ir.Block]map[int]int)}
	site := 0
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Op == ir.OpAlloc {
				if fs.siteAt[b] == nil {
					fs.siteAt[b] = make(map[int]int)
				}
				fs.siteAt[b][i] = site
				site++
			}
		}
	}
	return fs
}

// Direction implements Problem.
func (fs *FreedSites) Direction() Direction { return Forward }

// Meet implements Problem.
func (fs *FreedSites) Meet() Meet { return fs.meet }

// NumFacts implements Problem.
func (fs *FreedSites) NumFacts() int { return len(fs.Alias.Sites) }

// Boundary implements Problem: at entry nothing is freed (MustFreed)
// and nothing is allocated (LiveUnfreed).
func (fs *FreedSites) Boundary() *BitSet { return NewBitSet(len(fs.Alias.Sites)) }

// Transfer implements Problem.
func (fs *FreedSites) Transfer(b *ir.Block, idx int, in *ir.Instr, facts *BitSet) {
	switch in.Op {
	case ir.OpAlloc:
		s := fs.siteAt[b][idx]
		if fs.live {
			facts.Set(s)
		} else {
			facts.Clear(s)
		}
	case ir.OpFree:
		if fs.live {
			// Any site the operand may point to may be released; an
			// unknown operand may release anything that escaped.
			pts := fs.Alias.PointsTo(in.A)
			pts.ForEach(func(i int) {
				if i < len(fs.Alias.Sites) {
					facts.Clear(i)
				}
			})
			if pts.Has(fs.Alias.Unknown()) {
				for s := range fs.Alias.Sites {
					if fs.Alias.Escaped(s) {
						facts.Clear(s)
					}
				}
			}
			return
		}
		if s, ok := fs.Alias.MustSite(in.A); ok {
			facts.Set(s)
		}
	case ir.OpCall:
		if fs.live {
			// The callee may free anything reachable from its
			// arguments or from prior escapes.
			for _, arg := range in.Args {
				fs.Alias.PointsTo(arg).ForEach(func(i int) {
					if i < len(fs.Alias.Sites) {
						facts.Clear(i)
					}
				})
			}
			for s := range fs.Alias.Sites {
				if fs.Alias.Escaped(s) {
					facts.Clear(s)
				}
			}
		}
	}
}

package analysis

import (
	"testing"

	"repro/internal/ir"
)

// diamondFn builds entry -> (then | else) -> join; ret.
func diamondFn() (*ir.Function, map[string]*ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	then := b.Block("then")
	els := b.Block("else")
	join := b.Block("join")
	b.Br(b.Param(0), then, els)
	b.SetBlock(then)
	v1 := b.Const(1)
	b.Jmp(join)
	b.SetBlock(els)
	b.Const(2)
	b.Jmp(join)
	b.SetBlock(join)
	b.Ret(v1)
	return f, map[string]*ir.Block{
		"entry": f.Blocks[0], "then": then, "else": els, "join": join,
	}
}

func TestDomTreeDiamond(t *testing.T) {
	f, bs := diamondFn()
	dom := NewDomTree(ir.AnalyzeCFG(f))

	if dom.Root() != bs["entry"] {
		t.Fatal("root is not entry")
	}
	for _, name := range []string{"then", "else", "join"} {
		if dom.IDom(bs[name]) != bs["entry"] {
			t.Fatalf("idom(%s) != entry", name)
		}
	}
	if dom.IDom(bs["entry"]) != nil {
		t.Fatal("entry has an idom")
	}
	// Neither branch arm dominates the join.
	if dom.Dominates(bs["then"], bs["join"]) || dom.Dominates(bs["else"], bs["join"]) {
		t.Fatal("branch arm dominates join")
	}
	if !dom.Dominates(bs["entry"], bs["join"]) || !dom.Dominates(bs["join"], bs["join"]) {
		t.Fatal("entry/self domination wrong")
	}
	if dom.StrictlyDominates(bs["join"], bs["join"]) {
		t.Fatal("strict domination is reflexive")
	}
	if got := dom.Depth(bs["join"]); got != 1 {
		t.Fatalf("depth(join) = %d, want 1", got)
	}
	if kids := dom.Children(bs["entry"]); len(kids) != 3 {
		t.Fatalf("entry has %d dom children, want 3", len(kids))
	}
	// Preorder walk visits every reachable block exactly once, parent
	// before child.
	seen := make(map[*ir.Block]bool)
	dom.Walk(func(b *ir.Block) {
		if id := dom.IDom(b); id != nil && !seen[id] {
			t.Fatalf("walk visited %s before its idom", b.Name)
		}
		seen[b] = true
	})
	if len(seen) != 4 {
		t.Fatalf("walk saw %d blocks, want 4", len(seen))
	}
}

// nestedLoopFn builds a two-deep loop nest using the builder's counting
// loops and returns the function.
func nestedLoopFn() *ir.Function {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	sum := b.Const(0)
	b.CountingLoop(0, 4, 1, func(i ir.Reg) {
		b.CountingLoop(0, 3, 1, func(j ir.Reg) {
			b.MovTo(sum, b.Add(sum, b.Add(i, j)))
		})
	})
	b.Ret(sum)
	return f
}

func TestLoopNestNested(t *testing.T) {
	f := nestedLoopFn()
	info := ir.AnalyzeCFG(f)
	dom := NewDomTree(info)
	ln := AnalyzeLoops(info, dom)

	if len(ln.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(ln.Loops))
	}
	inner, outer := ln.Loops[0], ln.Loops[1]
	if inner.Depth <= outer.Depth {
		t.Fatal("loops not ordered innermost-first")
	}
	if inner.Parent != outer.Loop {
		t.Fatal("inner loop's parent is not the outer loop")
	}
	if !outer.Blocks[inner.Header] {
		t.Fatal("outer loop body does not contain inner header")
	}
	if ln.ByHeader(inner.Header) != inner || ln.ByHeader(outer.Header) != outer {
		t.Fatal("ByHeader lookup wrong")
	}
	if got := ln.InnermostOf(inner.Header); got != inner {
		t.Fatal("InnermostOf(inner header) is not the inner loop")
	}
	if got := ln.InnermostOf(outer.Header); got != outer {
		t.Fatal("InnermostOf(outer header) is not the outer loop")
	}
	// The loop headers dominate their bodies.
	for _, l := range ln.Loops {
		for _, blk := range l.Body {
			if !dom.Dominates(l.Header, blk) {
				t.Fatalf("header %s does not dominate body block %s", l.Header.Name, blk.Name)
			}
		}
	}
	// Exits are outside the loop.
	for _, l := range ln.Loops {
		if len(l.Exits) == 0 {
			t.Fatalf("loop %s has no exits", l.Header.Name)
		}
		for _, e := range l.Exits {
			if l.Blocks[e] {
				t.Fatalf("exit %s is inside the loop", e.Name)
			}
		}
	}
}

// multiLatchFn builds one loop with two distinct back edges:
//
//	entry -> head; head -> (bodyA | exit); bodyA -> (head | bodyB);
//	bodyB -> head
func multiLatchFn() (*ir.Function, *ir.Block) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	head := b.Block("head")
	bodyA := b.Block("bodyA")
	bodyB := b.Block("bodyB")
	exit := b.Block("exit")
	b.Jmp(head)
	b.SetBlock(head)
	b.Br(b.Param(0), bodyA, exit)
	b.SetBlock(bodyA)
	b.Br(b.Param(1), head, bodyB)
	b.SetBlock(bodyB)
	b.Jmp(head)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)
	return f, head
}

func TestLoopNestMultiLatch(t *testing.T) {
	f, head := multiLatchFn()
	info := ir.AnalyzeCFG(f)
	ln := AnalyzeLoops(info, NewDomTree(info))
	if len(ln.Loops) != 1 {
		t.Fatalf("found %d loops, want 1 (merged latches)", len(ln.Loops))
	}
	l := ln.Loops[0]
	if l.Header != head {
		t.Fatal("wrong header")
	}
	if len(l.Latches) != 2 {
		t.Fatalf("loop has %d latches, want 2", len(l.Latches))
	}
	if len(l.Body) != 3 { // head, bodyA, bodyB
		t.Fatalf("loop body has %d blocks, want 3", len(l.Body))
	}
}

// TestLoopNestIrreducibleEntry: a cycle entered at two points has no
// dominating header, so natural-loop detection must report no loop
// rather than a wrong one.
func TestLoopNestIrreducibleEntry(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	x := b.Block("x")
	y := b.Block("y")
	exit := b.Block("exit")
	b.Br(b.Param(0), x, y) // two entries into the x<->y cycle
	b.SetBlock(x)
	b.Br(b.Param(1), y, exit)
	b.SetBlock(y)
	b.Br(b.Param(1), x, exit)
	b.SetBlock(exit)
	b.Ret(ir.NoReg)

	info := ir.AnalyzeCFG(f)
	if len(info.Loops) != 0 {
		t.Fatalf("irreducible cycle reported as %d natural loops", len(info.Loops))
	}
	dom := NewDomTree(info)
	// Neither cycle block dominates the other.
	if dom.Dominates(x, y) || dom.Dominates(y, x) {
		t.Fatal("cycle blocks dominate each other")
	}
	if dom.IDom(x) != f.Blocks[0] || dom.IDom(y) != f.Blocks[0] {
		t.Fatal("cycle blocks' idom is not the entry")
	}
}

// TestDomTreeUnreachable: blocks severed from the entry dominate
// nothing, are dominated by nothing, and report depth -1.
func TestDomTreeUnreachable(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	dead := b.Block("dead")
	b.Ret(ir.NoReg)
	b.SetBlock(dead)
	b.Ret(ir.NoReg)

	dom := NewDomTree(ir.AnalyzeCFG(f))
	entry := f.Blocks[0]
	if dom.Dominates(entry, dead) || dom.Dominates(dead, entry) || dom.Dominates(dead, dead) {
		t.Fatal("unreachable block participates in domination")
	}
	if dom.Depth(dead) != -1 {
		t.Fatal("unreachable block has a depth")
	}
}

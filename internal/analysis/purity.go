package analysis

import "repro/internal/ir"

// SideEffectFree reports whether an opcode's only effect is writing its
// destination register: no heap traffic, no runtime-table updates, no
// hook dispatch, and no fault it can raise. Div/Rem are excluded (they
// fault on a zero divisor), as are loads (memory-model hooks observe
// every access).
func SideEffectFree(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpFConst, ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpICmp, ir.OpFCmp:
		return true
	}
	return false
}

// Speculatable reports whether an instruction with this opcode may be
// executed on paths where the original program would not have run it.
// For this IR it coincides with SideEffectFree: those ops cannot fault
// (FDiv follows IEEE semantics, integer shifts mask their amount), so
// the only trace of a speculative execution is the destination value.
func Speculatable(op ir.Op) bool { return SideEffectFree(op) }

// FnSummary is the per-function effect summary the interprocedural
// purity analysis computes.
type FnSummary struct {
	// Pure: the function's only effect is computing its return value —
	// no heap reads or writes, no allocation, no CARAT/timing/poll
	// intrinsics, no extern calls, and only calls to Pure functions.
	Pure bool
	// MayFault: some execution may abort with a runtime fault (integer
	// division or modulo by zero, allocation failure, a free of a bad
	// address, an extern error, or a callee that may fault).
	MayFault bool
	// Bounded: every execution terminates without consuming unbounded
	// steps — no loops in the CFG, no (possibly mutual) recursion, and
	// only calls to Bounded functions. Unlike Pure/MayFault this is
	// proven pessimistically, so call cycles are never Bounded.
	Bounded bool

	// Effect detail (refinements of !Pure).
	ReadsHeap, WritesHeap, Allocates bool
	Intrinsics                       bool // CARAT guards/tracking, yield checks, polls
	CallsExtern                      bool
}

// DCESafe reports whether a call to this function can be deleted when
// its result is unused: the call must be pure, unable to fault, and
// certain to terminate. (Step/depth budget exhaustion is treated as a
// resource limit, not a preserved effect — the same stance the timing
// and inline passes already take toward instruction counts.)
func (s FnSummary) DCESafe() bool { return s.Pure && !s.MayFault && s.Bounded }

// Purity holds the module-wide summaries.
type Purity struct {
	Fns map[string]FnSummary
}

// Summary returns the summary for a function; unknown (extern) names
// report fully conservative facts.
func (p *Purity) Summary(name string) FnSummary {
	if s, ok := p.Fns[name]; ok {
		return s
	}
	return FnSummary{Pure: false, MayFault: true, Bounded: false, CallsExtern: true}
}

// AnalyzePurity computes per-function effect summaries over m's call
// graph. Pure and !MayFault are optimistic fixpoints (assume the best,
// demote until stable — so self- and mutually-recursive functions built
// only from side-effect-free ops remain pure), while Bounded is a
// pessimistic fixpoint (assume the worst, promote until stable — so
// call cycles and functions containing loops are never Bounded).
func AnalyzePurity(m *ir.Module) *Purity {
	p := &Purity{Fns: make(map[string]FnSummary)}
	fns := m.Functions()

	// Local facts that do not depend on callees.
	type local struct {
		summary  FnSummary
		hasLoops bool
		callees  []string
	}
	locals := make(map[string]*local, len(fns))
	for _, f := range fns {
		lc := &local{summary: FnSummary{Pure: true, MayFault: false, Bounded: false}}
		info := ir.AnalyzeCFG(f)
		lc.hasLoops = len(info.Loops) > 0
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpDiv, ir.OpRem:
					lc.summary.MayFault = true
				case ir.OpLoad:
					lc.summary.Pure = false
					lc.summary.ReadsHeap = true
				case ir.OpStore:
					lc.summary.Pure = false
					lc.summary.WritesHeap = true
				case ir.OpAlloc:
					lc.summary.Pure = false
					lc.summary.Allocates = true
					lc.summary.MayFault = true // out-of-memory
				case ir.OpFree:
					lc.summary.Pure = false
					lc.summary.WritesHeap = true
					lc.summary.MayFault = true // bad free faults
				case ir.OpGuard, ir.OpTrackAlloc, ir.OpTrackFree, ir.OpTrackEsc,
					ir.OpYieldCheck, ir.OpPoll:
					lc.summary.Pure = false
					lc.summary.Intrinsics = true
				case ir.OpCall:
					lc.callees = append(lc.callees, in.Callee)
				}
			}
		}
		locals[f.Name] = lc
		p.Fns[f.Name] = lc.summary
	}

	// Optimistic demotion for Pure/MayFault and effect detail.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			s := p.Fns[f.Name]
			for _, callee := range locals[f.Name].callees {
				cs := p.Summary(callee)
				merged := s
				merged.Pure = s.Pure && cs.Pure
				merged.MayFault = s.MayFault || cs.MayFault
				merged.ReadsHeap = s.ReadsHeap || cs.ReadsHeap
				merged.WritesHeap = s.WritesHeap || cs.WritesHeap
				merged.Allocates = s.Allocates || cs.Allocates
				merged.Intrinsics = s.Intrinsics || cs.Intrinsics
				merged.CallsExtern = s.CallsExtern || cs.CallsExtern
				if _, defined := p.Fns[callee]; !defined {
					merged.CallsExtern = true
				}
				if merged != s {
					s = merged
					changed = true
				}
			}
			p.Fns[f.Name] = s
		}
	}

	// Pessimistic promotion for Bounded: a function is Bounded once it
	// has no loops and every callee is already proven Bounded. Cycles in
	// the call graph never satisfy the premise, so recursion — however
	// indirect — stays unbounded.
	for changed := true; changed; {
		changed = false
		for _, f := range fns {
			s := p.Fns[f.Name]
			if s.Bounded || locals[f.Name].hasLoops {
				continue
			}
			ok := true
			for _, callee := range locals[f.Name].callees {
				if !p.Summary(callee).Bounded {
					ok = false
					break
				}
			}
			if ok {
				s.Bounded = true
				p.Fns[f.Name] = s
				changed = true
			}
		}
	}
	return p
}

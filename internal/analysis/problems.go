package analysis

import "repro/internal/ir"

// ---------------------------------------------------------------------
// Reaching definitions
// ---------------------------------------------------------------------

// DefSite is one static definition of a register: an instruction that
// writes Reg, or a function parameter (Block nil, Idx -1).
type DefSite struct {
	Block *ir.Block
	Idx   int
	Reg   ir.Reg
}

// ReachingDefs is the classic forward may-analysis: which definition
// sites may supply a register's value at a program point.
type ReachingDefs struct {
	F     *ir.Function
	Sites []DefSite

	siteID map[*ir.Block]map[int]int
	byReg  map[ir.Reg][]int
	params []int
}

// NewReachingDefs scans f and builds the problem's fact universe.
func NewReachingDefs(f *ir.Function) *ReachingDefs {
	rd := &ReachingDefs{
		F:      f,
		siteID: make(map[*ir.Block]map[int]int),
		byReg:  make(map[ir.Reg][]int),
	}
	add := func(s DefSite) int {
		id := len(rd.Sites)
		rd.Sites = append(rd.Sites, s)
		rd.byReg[s.Reg] = append(rd.byReg[s.Reg], id)
		return id
	}
	for i := 0; i < f.NumParams; i++ {
		rd.params = append(rd.params, add(DefSite{Block: nil, Idx: -1, Reg: ir.Reg(i)}))
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if d := in.Defs(); d != ir.NoReg {
				if rd.siteID[b] == nil {
					rd.siteID[b] = make(map[int]int)
				}
				rd.siteID[b][i] = add(DefSite{Block: b, Idx: i, Reg: d})
			}
		}
	}
	return rd
}

// Direction implements Problem.
func (rd *ReachingDefs) Direction() Direction { return Forward }

// Meet implements Problem.
func (rd *ReachingDefs) Meet() Meet { return Union }

// NumFacts implements Problem.
func (rd *ReachingDefs) NumFacts() int { return len(rd.Sites) }

// Boundary implements Problem: at entry, only parameters are defined.
func (rd *ReachingDefs) Boundary() *BitSet {
	s := NewBitSet(len(rd.Sites))
	for _, id := range rd.params {
		s.Set(id)
	}
	return s
}

// Transfer implements Problem: a definition kills every other def site
// of the same register and generates its own.
func (rd *ReachingDefs) Transfer(b *ir.Block, idx int, in *ir.Instr, facts *BitSet) {
	d := in.Defs()
	if d == ir.NoReg {
		return
	}
	for _, id := range rd.byReg[d] {
		facts.Clear(id)
	}
	facts.Set(rd.siteID[b][idx])
}

// SiteID returns the fact id of the definition at (b, idx), or -1.
func (rd *ReachingDefs) SiteID(b *ir.Block, idx int) int {
	if m, ok := rd.siteID[b]; ok {
		if id, ok := m[idx]; ok {
			return id
		}
	}
	return -1
}

// DefsOf returns the fact ids of every definition site of r (including
// the parameter pseudo-site when r is a parameter).
func (rd *ReachingDefs) DefsOf(r ir.Reg) []int { return rd.byReg[r] }

// ---------------------------------------------------------------------
// Liveness
// ---------------------------------------------------------------------

// Liveness is the classic backward may-analysis over registers: a
// register is live when some path to a use exists with no intervening
// redefinition.
type Liveness struct {
	F   *ir.Function
	buf []ir.Reg
}

// NewLiveness builds the liveness problem for f.
func NewLiveness(f *ir.Function) *Liveness { return &Liveness{F: f} }

// Direction implements Problem.
func (lv *Liveness) Direction() Direction { return Backward }

// Meet implements Problem.
func (lv *Liveness) Meet() Meet { return Union }

// NumFacts implements Problem: one fact per virtual register.
func (lv *Liveness) NumFacts() int { return lv.F.NumRegs }

// Boundary implements Problem: nothing is live after a return.
func (lv *Liveness) Boundary() *BitSet { return NewBitSet(lv.F.NumRegs) }

// Transfer implements Problem (applied in reverse instruction order):
// kill the definition, then generate the uses.
func (lv *Liveness) Transfer(_ *ir.Block, _ int, in *ir.Instr, facts *BitSet) {
	if d := in.Defs(); d != ir.NoReg {
		facts.Clear(int(d))
	}
	lv.buf = in.Uses(lv.buf[:0])
	for _, u := range lv.buf {
		facts.Set(int(u))
	}
}

// ---------------------------------------------------------------------
// Definite assignment
// ---------------------------------------------------------------------

// DefiniteAssign is the forward must-analysis dual of liveness: a
// register is definitely assigned at a point when every path from entry
// writes it first. The linter's use-before-def check is "use of a
// register that is not definitely assigned".
type DefiniteAssign struct {
	F *ir.Function
}

// NewDefiniteAssign builds the definite-assignment problem for f.
func NewDefiniteAssign(f *ir.Function) *DefiniteAssign { return &DefiniteAssign{F: f} }

// Direction implements Problem.
func (da *DefiniteAssign) Direction() Direction { return Forward }

// Meet implements Problem.
func (da *DefiniteAssign) Meet() Meet { return Intersect }

// NumFacts implements Problem.
func (da *DefiniteAssign) NumFacts() int { return da.F.NumRegs }

// Boundary implements Problem: parameters arrive assigned.
func (da *DefiniteAssign) Boundary() *BitSet {
	s := NewBitSet(da.F.NumRegs)
	for i := 0; i < da.F.NumParams; i++ {
		s.Set(i)
	}
	return s
}

// Transfer implements Problem.
func (da *DefiniteAssign) Transfer(_ *ir.Block, _ int, in *ir.Instr, facts *BitSet) {
	if d := in.Defs(); d != ir.NoReg {
		facts.Set(int(d))
	}
}

package cache

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// chanSlots is a minimal Slots implementation over a buffered channel,
// mirroring exp.Pool's semaphore without importing it (no cycle).
type chanSlots chan struct{}

func (s chanSlots) Acquire() { s <- struct{}{} }
func (s chanSlots) Release() { <-s }
func (s chanSlots) Block(wait func()) {
	s.Release()
	defer s.Acquire()
	wait()
}

// TestGetOrComputeCtxSources walks one key through every serving tier
// and checks the reported Source at each step.
func TestGetOrComputeCtxSources(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	ctx := context.Background()
	k := NewEnc().Str("k", "sources").Sum()
	compute := func() ([]byte, error) { return []byte("v"), nil }

	c := New(Config{Dir: dir})
	if _, src, err := c.GetOrComputeCtx(ctx, k, nil, false, compute); err != nil || src != SourceComputed {
		t.Fatalf("cold: src %v err %v, want computed", src, err)
	}
	if _, src, err := c.GetOrComputeCtx(ctx, k, nil, false, compute); err != nil || src != SourceMem {
		t.Fatalf("warm: src %v err %v, want mem", src, err)
	}
	// A fresh cache over the same directory simulates a restart: the
	// value must come back from disk and be promoted.
	c2 := New(Config{Dir: dir})
	if _, src, err := c2.GetOrComputeCtx(ctx, k, nil, false, compute); err != nil || src != SourceDisk {
		t.Fatalf("restart: src %v err %v, want disk", src, err)
	}
	if _, src, err := c2.GetOrComputeCtx(ctx, k, nil, false, compute); err != nil || src != SourceMem {
		t.Fatalf("promoted: src %v err %v, want mem", src, err)
	}
}

// TestWaiterCancelledWhileLeaderComputes: a coalesced waiter whose
// context ends while the leader is mid-compute returns its ctx error
// without disturbing the flight — the leader still completes, caches
// the value, and later callers hit.
func TestWaiterCancelledWhileLeaderComputes(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := NewEnc().Str("k", "waiter-cancel").Sum()
	started := make(chan struct{})
	release := make(chan struct{})

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, src, err := c.GetOrComputeCtx(context.Background(), k, nil, false, func() ([]byte, error) {
			close(started)
			<-release
			return []byte("slow"), nil
		})
		if err != nil || src != SourceComputed {
			t.Errorf("leader: src %v err %v", src, err)
		}
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	waiterErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrComputeCtx(ctx, k, nil, false, func() ([]byte, error) {
			return nil, errors.New("waiter must not compute")
		})
		waiterErr <- err
	}()
	// Give the waiter time to join the flight, then cancel it.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-waiterErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled waiter error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled waiter did not return while leader still computing")
	}

	close(release)
	wg.Wait()
	if v, src, err := c.GetOrComputeCtx(context.Background(), k, nil, false, nil); err != nil || src != SourceMem || string(v) != "slow" {
		t.Fatalf("after leader finished: %q src %v err %v, want cached \"slow\"", v, src, err)
	}
	if st := c.Stats(); st.Computes != 1 {
		t.Fatalf("computes = %d, want 1", st.Computes)
	}
}

// TestLeaderCancelledWaiterRetries: a leader cancelled before its
// compute starts (parked in slot admission) retires the flight with
// ErrLeaderCancelled; a live waiter coalesced behind it must not
// inherit the cancellation — it retries, becomes leader, and computes.
func TestLeaderCancelledWaiterRetries(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := NewEnc().Str("k", "leader-cancel").Sum()
	slots := make(chanSlots, 1)
	slots.Acquire() // occupy the only slot so the leader parks in admission

	lctx, lcancel := context.WithCancel(context.Background())
	leaderErr := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrComputeCtx(lctx, k, slots, false, func() ([]byte, error) {
			return nil, errors.New("cancelled leader must not compute")
		})
		leaderErr <- err
	}()
	// Let the leader join the flight and block in Acquire, then attach
	// a live waiter behind it.
	time.Sleep(10 * time.Millisecond)
	waiterVal := make(chan string, 1)
	go func() {
		v, _, err := c.GetOrComputeCtx(context.Background(), k, nil, false, func() ([]byte, error) {
			return []byte("retried"), nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		waiterVal <- string(v)
	}()
	time.Sleep(10 * time.Millisecond)

	lcancel()
	slots.Release() // unblock admission; leader sees its dead ctx
	select {
	case err := <-leaderErr:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("leader error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled leader did not return")
	}
	select {
	case v := <-waiterVal:
		if v != "retried" {
			t.Fatalf("waiter value = %q, want \"retried\"", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("waiter did not retry after leader cancellation")
	}
	if st := c.Stats(); st.Computes != 1 {
		t.Fatalf("computes = %d, want 1 (the waiter's retry)", st.Computes)
	}
	// The slot protocol stayed balanced: the slot is free again.
	select {
	case slots <- struct{}{}:
	default:
		t.Fatal("slot leaked: cancelled leader did not release admission")
	}
}

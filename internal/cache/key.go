// Package cache is the content-addressed result cache for experiment
// cells: every cell in this reproduction is a pure function of
// (seed, config) — the determinism guarantee PR 1 established and every
// oracle since has re-verified — so a canonical serialization of the
// config is a complete address for the result. The package provides
//
//   - canonical keys: Enc serializes configs into a tagged,
//     length-prefixed byte form hashed with SHA-256 into a Key (FNV-1a
//     picks the LRU shard);
//   - a sharded in-memory LRU (2^k shards, per-shard mutex, intrusive
//     list, byte-budgeted eviction) with disk spill (length-prefixed,
//     checksummed entries under $INTERWEAVE_CACHE_DIR; a corrupt or
//     truncated entry is a miss, never an error);
//   - request coalescing: a panic-safe singleflight so duplicate
//     in-flight keys compute once and fan the bytes out, composed with
//     an admission-controlled worker pool (exp.Pool) so coalesced
//     waiters never hold pool slots.
//
// Determinism discipline: nothing here reads the wall clock, uses global
// randomness, or ranges over a map in a key or value path; cached bytes
// are returned exactly as stored, so cached and uncached runs are
// byte-identical.
package cache

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash/fnv"
	"math"
)

// Key is the content address of one cached value: a SHA-256 over the
// canonical serialization of everything the value depends on. The zero
// Key is reserved as "no key" (see IsZero) and is never stored.
type Key [sha256.Size]byte

// IsZero reports whether k is the reserved "no key" value.
func (k Key) IsZero() bool { return k == Key{} }

// String renders the key as lowercase hex (the on-disk entry name).
func (k Key) String() string { return hex.EncodeToString(k[:]) }

// shard maps the key onto one of n shards (n a power of two) via
// FNV-1a, so shard choice is independent of the SHA-256 prefix order
// entries happen to be inserted in.
func (k Key) shard(n int) int {
	h := fnv.New64a()
	h.Write(k[:])
	return int(h.Sum64() & uint64(n-1))
}

// Enc builds a canonical byte form incrementally and hashes it into a
// Key. Every field is written as
//
//	len(label) u32be | label | type tag | payload
//
// with variable-size payloads length-prefixed, so distinct field
// sequences can never collide by concatenation ambiguity. Labels make
// the form self-describing: reordering, renaming, or retyping a config
// field changes the key even when the raw values coincide.
type Enc struct {
	sum []byte // canonical bytes accumulated so far
}

// Type tags for Enc payloads.
const (
	tagStr  = 0x01
	tagU64  = 0x02
	tagI64  = 0x03
	tagF64  = 0x04
	tagBool = 0x05
	tagKey  = 0x06
	tagList = 0x07
)

// NewEnc returns an empty canonical encoder.
func NewEnc() *Enc { return &Enc{} }

func (e *Enc) label(l string, tag byte) {
	var n [4]byte
	binary.BigEndian.PutUint32(n[:], uint32(len(l)))
	e.sum = append(e.sum, n[:]...)
	e.sum = append(e.sum, l...)
	e.sum = append(e.sum, tag)
}

func (e *Enc) u64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.sum = append(e.sum, b[:]...)
}

// Str writes a labelled string field.
func (e *Enc) Str(label, v string) *Enc {
	e.label(label, tagStr)
	e.u64(uint64(len(v)))
	e.sum = append(e.sum, v...)
	return e
}

// U64 writes a labelled unsigned integer field.
func (e *Enc) U64(label string, v uint64) *Enc {
	e.label(label, tagU64)
	e.u64(v)
	return e
}

// I64 writes a labelled signed integer field.
func (e *Enc) I64(label string, v int64) *Enc {
	e.label(label, tagI64)
	e.u64(uint64(v))
	return e
}

// Int writes a labelled int field.
func (e *Enc) Int(label string, v int) *Enc { return e.I64(label, int64(v)) }

// F64 writes a labelled float field by its exact IEEE-754 bits, so the
// encoding is total (NaN, ±0, subnormals) and never passes through a
// decimal rendering.
func (e *Enc) F64(label string, v float64) *Enc {
	e.label(label, tagF64)
	e.u64(math.Float64bits(v))
	return e
}

// Bool writes a labelled boolean field.
func (e *Enc) Bool(label string, v bool) *Enc {
	e.label(label, tagBool)
	if v {
		e.sum = append(e.sum, 1)
	} else {
		e.sum = append(e.sum, 0)
	}
	return e
}

// Key writes a labelled sub-key (composing keys, e.g. a per-cell key
// derived from a driver key).
func (e *Enc) Key(label string, k Key) *Enc {
	e.label(label, tagKey)
	e.sum = append(e.sum, k[:]...)
	return e
}

// F64s writes a labelled float slice (length-prefixed).
func (e *Enc) F64s(label string, vs []float64) *Enc {
	e.label(label, tagList)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.u64(math.Float64bits(v))
	}
	return e
}

// Ints writes a labelled int slice (length-prefixed).
func (e *Enc) Ints(label string, vs []int) *Enc {
	e.label(label, tagList)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.u64(uint64(int64(v)))
	}
	return e
}

// Strs writes a labelled string slice (length-prefixed, each element
// length-prefixed).
func (e *Enc) Strs(label string, vs []string) *Enc {
	e.label(label, tagList)
	e.u64(uint64(len(vs)))
	for _, v := range vs {
		e.u64(uint64(len(v)))
		e.sum = append(e.sum, v...)
	}
	return e
}

// Sum hashes the canonical bytes accumulated so far into a Key. The
// encoder remains usable: further fields extend the same byte form.
func (e *Enc) Sum() Key { return Key(sha256.Sum256(e.sum)) }

// Fingerprint hashes the canonical bytes with FNV-1a into 64 bits — for
// compact salts and digests where a full Key is overkill.
func (e *Enc) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write(e.sum)
	return h.Sum64()
}

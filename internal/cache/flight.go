package cache

import (
	"context"
	"errors"
	"fmt"
	"sync"
)

// ErrLeaderPanic is wrapped into the error coalesced waiters receive
// when the leader computing their key panicked. The panic itself
// propagates on the leader's goroutine (where exp.Pool converts it to a
// *CellError with the real stack); waiters get this marker instead of a
// second panic so one faulty cell fails exactly the cells that depend
// on it, each on its own goroutine.
var ErrLeaderPanic = errors.New("cache: coalesced leader panicked")

// ErrLeaderCancelled is the error a flight finishes with when its
// leader's context ended before the compute ran. Unlike a compute
// failure it says nothing about the key itself, so GetOrComputeCtx
// waiters whose own context is still live treat it as "try again"
// rather than a failure: one cancelled submitter must not fail the
// other callers coalesced behind it.
var ErrLeaderCancelled = errors.New("cache: coalesced leader cancelled")

// flightGroup deduplicates in-flight computes per key: the first caller
// to join a key becomes the leader and runs the compute; callers
// arriving before the leader finishes become waiters and share the
// leader's result. The entry is removed when the leader finishes, so a
// failed compute is retried by the next caller rather than poisoning
// the key.
type flightGroup struct {
	mu    sync.Mutex
	calls map[Key]*flightCall
}

// flightCall is one in-flight compute. done is closed exactly once by
// finish, after val/err are set.
type flightCall struct {
	done chan struct{}
	val  []byte
	err  error
}

// join returns the call for k, creating it if absent. leader reports
// whether the caller must run the compute and finish the call.
func (g *flightGroup) join(k Key) (c *flightCall, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.calls == nil {
		g.calls = make(map[Key]*flightCall)
	}
	if c, ok := g.calls[k]; ok {
		return c, false
	}
	c = &flightCall{done: make(chan struct{})}
	g.calls[k] = c
	return c, true
}

// finish publishes the leader's outcome, wakes every waiter, and
// retires the key so later callers start a fresh flight.
func (g *flightGroup) finish(k Key, c *flightCall, val []byte, err error) {
	g.mu.Lock()
	delete(g.calls, k)
	g.mu.Unlock()
	c.val = val
	c.err = err
	close(c.done)
}

// wait blocks until the leader finishes and returns its outcome. A
// leader failure is wrapped so the waiter's error names the coalescing
// (and %w keeps fault classification — e.g. chaos.AsFault — intact).
func (c *flightCall) wait() ([]byte, error) {
	<-c.done
	if c.err != nil {
		return nil, fmt.Errorf("cache: coalesced compute failed: %w", c.err)
	}
	return c.val, nil
}

// waitCtx is wait with caller-side cancellation: a waiter whose own
// context ends stops waiting and returns its ctx error. The flight
// itself is unaffected — the leader keeps computing and other waiters
// keep waiting; abandoning a flight never contaminates the cache.
func (c *flightCall) waitCtx(ctx context.Context) ([]byte, error) {
	select {
	case <-c.done:
		return c.wait()
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

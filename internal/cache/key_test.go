package cache

import "testing"

// TestEncDeterministic pins that the same field sequence always yields
// the same key, across encoder instances.
func TestEncDeterministic(t *testing.T) {
	t.Parallel()
	mk := func() Key {
		return NewEnc().
			Str("experiment", "fig3").
			U64("seed", 42).
			I64("offset", -7).
			F64("period", 1000.5).
			Bool("chaos", false).
			F64s("periods", []float64{10, 100, 1000}).
			Ints("cpus", []int{1, 2, 256}).
			Strs("kernels", []string{"cg", "mg"}).
			Sum()
	}
	if mk() != mk() {
		t.Fatal("identical field sequences produced different keys")
	}
}

// TestEncFieldSensitivity checks that every kind of change — value,
// label, type, order, slice split — changes the key.
func TestEncFieldSensitivity(t *testing.T) {
	t.Parallel()
	base := func() *Enc { return NewEnc().Str("a", "x").U64("n", 1) }
	ref := base().Sum()
	variants := map[string]Key{
		"value":       NewEnc().Str("a", "y").U64("n", 1).Sum(),
		"label":       NewEnc().Str("b", "x").U64("n", 1).Sum(),
		"type":        NewEnc().Str("a", "x").I64("n", 1).Sum(),
		"order":       NewEnc().U64("n", 1).Str("a", "x").Sum(),
		"extra field": base().Bool("z", false).Sum(),
	}
	for name, k := range variants {
		if k == ref {
			t.Errorf("%s change did not change the key", name)
		}
	}
	// Concatenation ambiguity: ["ab","c"] vs ["a","bc"] must differ.
	if NewEnc().Strs("s", []string{"ab", "c"}).Sum() == NewEnc().Strs("s", []string{"a", "bc"}).Sum() {
		t.Error("string-slice element boundaries are not encoded")
	}
	// Float bits, not decimal rendering: -0 and +0 differ as configs.
	neg := NewEnc().F64("f", negZero()).Sum()
	if pos := NewEnc().F64("f", 0).Sum(); pos == neg {
		t.Error("float encoding lost the sign of zero")
	}
}

func negZero() float64 {
	z := 0.0
	return -z
}

// TestEncIncremental pins that Sum is a prefix snapshot: extending the
// encoder after Sum yields the same key as encoding the full sequence
// at once.
func TestEncIncremental(t *testing.T) {
	t.Parallel()
	e := NewEnc().Str("a", "x")
	first := e.Sum()
	second := e.U64("n", 9).Sum()
	if first == second {
		t.Fatal("extending the encoder did not change the key")
	}
	if second != NewEnc().Str("a", "x").U64("n", 9).Sum() {
		t.Fatal("incremental and one-shot encodings disagree")
	}
}

// TestKeyShardStable pins shard selection: in range, stable, and spread
// across more than one shard for distinct keys.
func TestKeyShardStable(t *testing.T) {
	t.Parallel()
	seen := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := NewEnc().Int("i", i).Sum()
		s := k.shard(8)
		if s < 0 || s >= 8 {
			t.Fatalf("shard out of range: %d", s)
		}
		if s != k.shard(8) {
			t.Fatal("shard selection unstable")
		}
		seen[s] = true
	}
	if len(seen) < 2 {
		t.Fatal("all keys landed on one shard")
	}
}

func TestKeyZeroAndString(t *testing.T) {
	t.Parallel()
	var z Key
	if !z.IsZero() {
		t.Fatal("zero key not IsZero")
	}
	k := NewEnc().Str("a", "x").Sum()
	if k.IsZero() {
		t.Fatal("real key reported IsZero")
	}
	if len(k.String()) != 64 {
		t.Fatalf("hex key length = %d", len(k.String()))
	}
}

func TestFingerprint(t *testing.T) {
	t.Parallel()
	a := NewEnc().Str("a", "x").Fingerprint()
	if b := NewEnc().Str("a", "x").Fingerprint(); b != a {
		t.Fatal("fingerprint not deterministic")
	}
	if b := NewEnc().Str("a", "y").Fingerprint(); b == a {
		t.Fatal("fingerprint insensitive to value")
	}
}

package cache

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/exp"
)

func TestCacheGetPut(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := tkey("gp")
	if _, ok := c.Get(k); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, []byte("v"))
	if v, ok := c.Get(k); !ok || string(v) != "v" {
		t.Fatalf("get = %q, %v", v, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestCacheSpillAcrossRestart pins the disk tier: a second Cache
// instance over the same directory — a simulated process restart —
// serves the first instance's entries, promoting them into memory.
func TestCacheSpillAcrossRestart(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	c1 := New(Config{Dir: dir})
	k := tkey("restart")
	c1.Put(k, []byte("persisted"))
	if st := c1.Stats(); st.SpillWrite != 1 {
		t.Fatalf("spill write not recorded: %+v", st)
	}

	c2 := New(Config{Dir: dir})
	v, ok := c2.Get(k)
	if !ok || string(v) != "persisted" {
		t.Fatalf("restart get = %q, %v", v, ok)
	}
	st := c2.Stats()
	if st.SpillHits != 1 {
		t.Fatalf("disk hit not recorded: %+v", st)
	}
	// Promoted: the next get is a memory hit, not another disk read.
	c2.Get(k)
	if st := c2.Stats(); st.SpillReads != 1 {
		t.Fatalf("promotion did not stick: %+v", st)
	}
}

// TestCacheMemEvictionFallsBackToDisk pins the two tiers composing: an
// entry evicted from memory for budget is still served from disk.
func TestCacheMemEvictionFallsBackToDisk(t *testing.T) {
	t.Parallel()
	c := New(Config{Shards: 1, MemBudget: 64, Dir: t.TempDir()})
	k := tkey("evicted")
	c.Put(k, []byte("survivor"))
	for i := 0; i < 8; i++ {
		c.Put(tkey(fmt.Sprintf("filler%d", i)), make([]byte, 32))
	}
	v, ok := c.Get(k)
	if !ok || string(v) != "survivor" {
		t.Fatalf("evicted entry not served from disk: %q, %v", v, ok)
	}
	if st := c.Stats(); st.SpillHits == 0 || st.Evictions == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestGetOrComputeBasics(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := tkey("goc")
	calls := 0
	compute := func() ([]byte, error) { calls++; return []byte("r"), nil }
	for i := 0; i < 3; i++ {
		v, err := c.GetOrCompute(k, nil, false, compute)
		if err != nil || string(v) != "r" {
			t.Fatalf("GetOrCompute = %q, %v", v, err)
		}
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times", calls)
	}
}

// TestGetOrComputeErrorNotCached pins retry semantics: a failed compute
// leaves nothing behind — the next caller recomputes.
func TestGetOrComputeErrorNotCached(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := tkey("err")
	boom := errors.New("boom")
	if _, err := c.GetOrCompute(k, nil, false, func() ([]byte, error) { return nil, boom }); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	v, err := c.GetOrCompute(k, nil, false, func() ([]byte, error) { return []byte("ok"), nil })
	if err != nil || string(v) != "ok" {
		t.Fatalf("retry = %q, %v", v, err)
	}
}

// TestCoalescingExactlyOnce is the acceptance-criteria test: K
// duplicate in-flight configs execute the cell exactly once, every
// caller gets the same bytes, and the waiters are counted.
func TestCoalescingExactlyOnce(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := tkey("dup")
	const K = 16
	var computes atomic.Int32
	inFlight := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once

	var wg sync.WaitGroup
	results := make([][]byte, K)
	errs := make([]error, K)
	for i := 0; i < K; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = c.GetOrCompute(k, nil, false, func() ([]byte, error) {
				computes.Add(1)
				once.Do(func() { close(inFlight) })
				<-release // hold the flight open until all K have joined
				return []byte("once"), nil
			})
		}(i)
	}
	<-inFlight
	waitFor(t, func() bool { return c.Stats().Coalesced == K-1 }, "K-1 waiters to coalesce")
	close(release)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want exactly 1", n)
	}
	for i := 0; i < K; i++ {
		if errs[i] != nil || !bytes.Equal(results[i], []byte("once")) {
			t.Fatalf("caller %d: %q, %v", i, results[i], errs[i])
		}
	}
}

// TestCoalescedWaitersDontHoldSlots is the slot-accounting regression
// test from the issue: at pool width 1, N duplicate submissions must
// not deadlock. The leader's compute refuses to finish until all N-1
// waiters have coalesced — which they can only do if joining the flight
// never requires a slot. With slot-first ordering this test times out.
func TestCoalescedWaitersDontHoldSlots(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	p := exp.New(1)
	k := tkey("slotless")
	const N = 8
	var computes atomic.Int32

	done := make(chan struct{})
	go func() {
		defer close(done)
		var wg sync.WaitGroup
		for i := 0; i < N; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Submission path: no slot held yet; the leader must
				// acquire the pool's only slot to compute.
				v, err := c.GetOrCompute(k, p, false, func() ([]byte, error) {
					computes.Add(1)
					waitFor(t, func() bool { return c.Stats().Coalesced == N-1 },
						"waiters to coalesce while leader holds the only slot")
					return []byte("v"), nil
				})
				if err != nil || string(v) != "v" {
					t.Errorf("GetOrCompute = %q, %v", v, err)
				}
			}()
		}
		wg.Wait()
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: duplicate submissions at pool width 1 never completed")
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("compute ran %d times", n)
	}
}

// TestWaiterInsideCellReleasesSlot pins the held=true path: a pool cell
// waiting on a coalesced result must free its slot (via Block) so the
// leader — queued behind it on a width-1 pool — can run.
func TestWaiterInsideCellReleasesSlot(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	p := exp.New(1)
	k := tkey("incell")
	leaderMayRun := make(chan struct{})
	var computes atomic.Int32

	// Pre-lead the flight from outside the pool so the cell below joins
	// as a waiter; the flight finishes only when leaderMayRun closes.
	fc, leader := c.flight.join(k)
	if !leader {
		t.Fatal("setup: expected to lead the flight")
	}
	go func() {
		<-leaderMayRun
		c.flight.finish(k, fc, []byte("led"), nil)
	}()
	done := make(chan error, 1)
	go func() {
		// The pool's only cell waits on the flight; Block must free the
		// slot so the second Run below can close leaderMayRun.
		done <- p.Run(1, func(int) error {
			v, err := c.GetOrCompute(k, p, true, func() ([]byte, error) {
				computes.Add(1)
				return nil, errors.New("must not compute")
			})
			if err != nil || string(v) != "led" {
				return fmt.Errorf("waiter got %q, %v", v, err)
			}
			return nil
		})
	}()
	// Only admit the second Run once the cell has coalesced onto the
	// flight (and is therefore parked in Block with the slot released).
	waitFor(t, func() bool { return c.Stats().Coalesced == 1 }, "cell to coalesce")
	if err := p.Run(1, func(int) error { close(leaderMayRun); return nil }); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("deadlock: in-cell waiter held its slot")
	}
	if computes.Load() != 0 {
		t.Fatal("waiter recomputed a led flight")
	}
}

// TestLeaderPanicReleasesWaiters pins panic safety: the leader's panic
// propagates on the leader's goroutine, waiters get ErrLeaderPanic
// (never a hang), and the key stays retryable.
func TestLeaderPanicReleasesWaiters(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	k := tkey("panic")
	armed := make(chan struct{})
	release := make(chan struct{})

	waitErr := make(chan error, 1)
	go func() {
		<-armed
		_, err := c.GetOrCompute(k, nil, false, func() ([]byte, error) {
			return []byte("waiter must not compute"), nil
		})
		waitErr <- err
	}()

	leaderDone := make(chan any, 1)
	go func() {
		defer func() { leaderDone <- recover() }()
		c.GetOrCompute(k, nil, false, func() ([]byte, error) {
			close(armed)
			<-release
			panic("cell exploded")
		})
	}()

	waitFor(t, func() bool { return c.Stats().Coalesced == 1 }, "waiter to coalesce")
	close(release)
	if r := <-leaderDone; r == nil || !strings.Contains(fmt.Sprint(r), "cell exploded") {
		t.Fatalf("leader panic = %v", r)
	}
	select {
	case err := <-waitErr:
		if !errors.Is(err, ErrLeaderPanic) {
			t.Fatalf("waiter error = %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("waiter hung after leader panic")
	}
	// The key is retryable: the failed flight was retired.
	v, err := c.GetOrCompute(k, nil, false, func() ([]byte, error) { return []byte("retried"), nil })
	if err != nil || string(v) != "retried" {
		t.Fatalf("retry after panic = %q, %v", v, err)
	}
}

// TestGetOrComputeConcurrentMixedKeys is the race-detector workload:
// many goroutines over a small key space with eviction pressure, disk
// spill, and coalescing all active at once.
func TestGetOrComputeConcurrentMixedKeys(t *testing.T) {
	t.Parallel()
	c := New(Config{Shards: 4, MemBudget: 1 << 10, Dir: t.TempDir()})
	p := exp.New(4)
	const G, rounds, keys = 8, 50, 7
	var wg sync.WaitGroup
	for g := 0; g < G; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				i := (g + r) % keys
				k := tkey(fmt.Sprintf("mixed%d", i))
				want := fmt.Sprintf("val%d", i)
				v, err := c.GetOrCompute(k, p, false, func() ([]byte, error) {
					return []byte(want), nil
				})
				if err != nil || string(v) != want {
					t.Errorf("key %d: %q, %v", i, v, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if st := c.Stats(); st.Computes > keys*G {
		t.Fatalf("computes exploded: %+v", st)
	}
}

func TestStatsString(t *testing.T) {
	t.Parallel()
	c := New(Config{})
	c.Put(tkey("s"), []byte("v"))
	c.Get(tkey("s"))
	s := c.Stats().String()
	for _, want := range []string{"hits", "misses", "coalesced", "evictions"} {
		if !strings.Contains(s, want) {
			t.Fatalf("stats string missing %q: %s", want, s)
		}
	}
}

// waitFor polls cond (a cheap, race-free predicate) until it holds or
// the deadline passes. Tests use it only to sequence goroutines, never
// to assert timing.
func waitFor(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

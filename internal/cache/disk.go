package cache

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
)

// EnvDir is the environment variable naming the disk-spill directory;
// it mirrors the interweave CLI's -cache flag.
const EnvDir = "INTERWEAVE_CACHE_DIR"

// Disk entry format (little-endian):
//
//	magic   [8]byte  "IWCACHE1"
//	key     [32]byte the entry's Key (guards against renamed files)
//	length  u64      payload length
//	payload [length]byte
//	check   u64      FNV-1a over payload
//
// Entries are written to a temp file and renamed into place, so readers
// never observe a partial write; a file that is truncated, bit-flipped,
// or from a different format version simply fails validation and is
// treated as a miss — corruption is never an error.
var diskMagic = [8]byte{'I', 'W', 'C', 'A', 'C', 'H', 'E', '1'}

// entryExt is the on-disk entry suffix; Clear and Scan only ever touch
// files with this suffix, so a mistargeted cache dir cannot lose
// foreign files.
const entryExt = ".iwc"

// diskStore is the spill tier: one file per key under dir.
type diskStore struct {
	dir string
}

// newDiskStore prepares dir (creating it if needed). An empty dir, or a
// dir that cannot be created, disables spill (returns nil).
func newDiskStore(dir string) *diskStore {
	if dir == "" {
		return nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil
	}
	return &diskStore{dir: dir}
}

func (d *diskStore) path(k Key) string {
	return filepath.Join(d.dir, k.String()+entryExt)
}

// get reads and validates the entry for k. Any failure — missing file,
// short read, wrong magic, wrong key, bad checksum — is a miss.
func (d *diskStore) get(k Key) ([]byte, bool) {
	raw, err := os.ReadFile(d.path(k))
	if err != nil {
		return nil, false
	}
	payload, ok := decodeEntry(k, raw)
	return payload, ok
}

// decodeEntry validates one raw entry against k (or any key if k is
// zero, for Scan) and returns its payload.
func decodeEntry(k Key, raw []byte) ([]byte, bool) {
	const header = 8 + 32 + 8
	if len(raw) < header+8 {
		return nil, false
	}
	if [8]byte(raw[:8]) != diskMagic {
		return nil, false
	}
	if fk := Key(raw[8:40]); !k.IsZero() && fk != k {
		return nil, false
	}
	n := binary.LittleEndian.Uint64(raw[40:48])
	if uint64(len(raw)) != header+n+8 {
		return nil, false
	}
	payload := raw[header : header+n]
	h := fnv.New64a()
	h.Write(payload)
	if h.Sum64() != binary.LittleEndian.Uint64(raw[header+n:]) {
		return nil, false
	}
	return payload, true
}

// put writes the entry for k atomically (temp file + rename). Spill is
// best-effort: an error is reported for stats but never fails a run.
func (d *diskStore) put(k Key, v []byte) error {
	buf := make([]byte, 0, 8+32+8+len(v)+8)
	buf = append(buf, diskMagic[:]...)
	buf = append(buf, k[:]...)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(v)))
	buf = append(buf, v...)
	h := fnv.New64a()
	h.Write(v)
	buf = binary.LittleEndian.AppendUint64(buf, h.Sum64())

	tmp, err := os.CreateTemp(d.dir, "put-*.tmp")
	if err != nil {
		return err
	}
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		return errors.Join(werr, cerr)
	}
	if err := os.Rename(tmp.Name(), d.path(k)); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// DiskStats summarizes an on-disk cache directory (see ScanDir).
type DiskStats struct {
	Entries int   // valid entries
	Bytes   int64 // file bytes of valid entries
	Corrupt int   // entries failing validation
}

// ScanDir validates every entry under dir and reports totals. A missing
// directory is an empty cache.
func ScanDir(dir string) (DiskStats, error) {
	var st DiskStats
	names, err := entryNames(dir)
	if err != nil {
		return st, err
	}
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			st.Corrupt++
			continue
		}
		if _, ok := decodeEntry(Key{}, raw); !ok {
			st.Corrupt++
			continue
		}
		st.Entries++
		st.Bytes += int64(len(raw))
	}
	return st, nil
}

// ClearDir removes every cache entry under dir (only *.iwc files; other
// files are untouched) and returns how many were removed.
func ClearDir(dir string) (int, error) {
	names, err := entryNames(dir)
	if err != nil {
		return 0, err
	}
	removed := 0
	var errs []error
	for _, name := range names {
		if err := os.Remove(filepath.Join(dir, name)); err != nil {
			errs = append(errs, err)
			continue
		}
		removed++
	}
	return removed, errors.Join(errs...)
}

// entryNames lists dir's cache-entry file names in directory order. A
// missing dir yields an empty list.
func entryNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), entryExt) {
			names = append(names, e.Name())
		}
	}
	return names, nil
}

package cache

import (
	"fmt"
	"testing"
)

// oneShardLRU builds a single-shard LRU so eviction order is observable
// without shard hashing in the way.
func oneShardLRU(budget int64) *memLRU { return newMemLRU(1, budget) }

func tkey(s string) Key { return NewEnc().Str("k", s).Sum() }

// TestLRUEvictionOrder pins least-recently-used eviction: touching an
// entry protects it, the coldest entry goes first.
func TestLRUEvictionOrder(t *testing.T) {
	t.Parallel()
	m := oneShardLRU(30) // room for three 10-byte values
	v := make([]byte, 10)
	m.put(tkey("a"), v)
	m.put(tkey("b"), v)
	m.put(tkey("c"), v)
	if _, ok := m.get(tkey("a")); !ok { // promote a: b is now coldest
		t.Fatal("a missing before eviction")
	}
	m.put(tkey("d"), v) // over budget: must evict b
	if _, ok := m.get(tkey("b")); ok {
		t.Fatal("b survived eviction despite being least recent")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := m.get(tkey(k)); !ok {
			t.Fatalf("%s evicted out of order", k)
		}
	}
}

// TestLRUByteBudget pins that the resident byte total never exceeds the
// budget, and that eviction counts are reported.
func TestLRUByteBudget(t *testing.T) {
	t.Parallel()
	m := oneShardLRU(100)
	for i := 0; i < 50; i++ {
		m.put(tkey(fmt.Sprintf("k%d", i)), make([]byte, 9))
	}
	var st Stats
	m.stats(&st)
	if st.BytesInMem > 100 {
		t.Fatalf("resident bytes %d exceed budget 100", st.BytesInMem)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions despite 50 puts into a 100-byte budget")
	}
	if st.Entries > 11 {
		t.Fatalf("%d entries resident in a 100-byte budget of 9-byte values", st.Entries)
	}
}

// TestLRUOversizeValueNotCached pins the admission rule: a value larger
// than the shard budget is refused rather than evicting everything.
func TestLRUOversizeValueNotCached(t *testing.T) {
	t.Parallel()
	m := oneShardLRU(64)
	m.put(tkey("small"), make([]byte, 8))
	m.put(tkey("huge"), make([]byte, 65))
	if _, ok := m.get(tkey("huge")); ok {
		t.Fatal("oversize value was cached")
	}
	if _, ok := m.get(tkey("small")); !ok {
		t.Fatal("oversize put evicted resident entries")
	}
}

// TestLRURefresh pins that re-putting a key updates the value and the
// byte accounting instead of duplicating the entry.
func TestLRURefresh(t *testing.T) {
	t.Parallel()
	m := oneShardLRU(100)
	m.put(tkey("a"), make([]byte, 10))
	m.put(tkey("a"), make([]byte, 30))
	var st Stats
	m.stats(&st)
	if st.Entries != 1 {
		t.Fatalf("refresh duplicated the entry: %d entries", st.Entries)
	}
	if st.BytesInMem != 30 {
		t.Fatalf("refresh byte accounting: %d", st.BytesInMem)
	}
	v, ok := m.get(tkey("a"))
	if !ok || len(v) != 30 {
		t.Fatalf("refreshed value not returned: ok=%v len=%d", ok, len(v))
	}
}

// TestLRUShardRounding pins that shard counts round up to a power of
// two (the mask in Key.shard requires it).
func TestLRUShardRounding(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct{ in, want int }{{1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32}} {
		if got := len(newMemLRU(tc.in, 1<<20).shards); got != tc.want {
			t.Errorf("newMemLRU(%d) shards = %d, want %d", tc.in, got, tc.want)
		}
	}
}

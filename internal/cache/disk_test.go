package cache

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func diskT(t *testing.T) *diskStore {
	t.Helper()
	d := newDiskStore(t.TempDir())
	if d == nil {
		t.Fatal("newDiskStore returned nil for a usable dir")
	}
	return d
}

func TestDiskRoundTrip(t *testing.T) {
	t.Parallel()
	d := diskT(t)
	k := tkey("rt")
	want := []byte("the rendered table cells")
	if err := d.put(k, want); err != nil {
		t.Fatalf("put: %v", err)
	}
	got, ok := d.get(k)
	if !ok || !bytes.Equal(got, want) {
		t.Fatalf("get = %q, %v", got, ok)
	}
	if _, ok := d.get(tkey("absent")); ok {
		t.Fatal("absent key hit")
	}
}

// TestDiskCorruptionIsMiss pins the central spill contract: a
// truncated, bit-flipped, renamed, or wrong-format entry is a miss —
// never a panic, never an error, never wrong bytes.
func TestDiskCorruptionIsMiss(t *testing.T) {
	t.Parallel()
	payload := []byte("payload bytes that must never be served corrupted")
	write := func(t *testing.T, d *diskStore, k Key) string {
		t.Helper()
		if err := d.put(k, payload); err != nil {
			t.Fatalf("put: %v", err)
		}
		return d.path(k)
	}
	t.Run("truncated", func(t *testing.T) {
		t.Parallel()
		d := diskT(t)
		k := tkey("trunc")
		p := write(t, d, k)
		raw, _ := os.ReadFile(p)
		for cut := 0; cut < len(raw); cut += 7 {
			if err := os.WriteFile(p, raw[:cut], 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := d.get(k); ok {
				t.Fatalf("truncation at %d bytes still hit", cut)
			}
		}
	})
	t.Run("bit flip", func(t *testing.T) {
		t.Parallel()
		d := diskT(t)
		k := tkey("flip")
		p := write(t, d, k)
		raw, _ := os.ReadFile(p)
		for i := 0; i < len(raw); i += 11 {
			mut := append([]byte(nil), raw...)
			mut[i] ^= 0x40
			if err := os.WriteFile(p, mut, 0o644); err != nil {
				t.Fatal(err)
			}
			if got, ok := d.get(k); ok && !bytes.Equal(got, payload) {
				t.Fatalf("flip at byte %d served corrupted payload", i)
			}
		}
	})
	t.Run("renamed entry", func(t *testing.T) {
		t.Parallel()
		d := diskT(t)
		p := write(t, d, tkey("original"))
		other := tkey("other")
		if err := os.Rename(p, d.path(other)); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.get(other); ok {
			t.Fatal("entry served under a key it was not written for")
		}
	})
	t.Run("wrong magic", func(t *testing.T) {
		t.Parallel()
		d := diskT(t)
		k := tkey("magic")
		p := write(t, d, k)
		raw, _ := os.ReadFile(p)
		raw[0] = 'X'
		if err := os.WriteFile(p, raw, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.get(k); ok {
			t.Fatal("foreign-format entry hit")
		}
	})
	t.Run("empty file", func(t *testing.T) {
		t.Parallel()
		d := diskT(t)
		k := tkey("empty")
		if err := os.WriteFile(d.path(k), nil, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := d.get(k); ok {
			t.Fatal("empty file hit")
		}
	})
}

func TestScanAndClearDir(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	d := newDiskStore(dir)
	d.put(tkey("a"), []byte("aaaa"))
	d.put(tkey("b"), []byte("bbbbbbbb"))
	// One corrupt entry and one foreign file Clear must leave alone.
	if err := os.WriteFile(filepath.Join(dir, "bad"+entryExt), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "README"), []byte("keep me"), 0o644); err != nil {
		t.Fatal(err)
	}
	st, err := ScanDir(dir)
	if err != nil {
		t.Fatalf("ScanDir: %v", err)
	}
	if st.Entries != 2 || st.Corrupt != 1 || st.Bytes == 0 {
		t.Fatalf("ScanDir = %+v", st)
	}
	removed, err := ClearDir(dir)
	if err != nil {
		t.Fatalf("ClearDir: %v", err)
	}
	if removed != 3 {
		t.Fatalf("ClearDir removed %d, want 3", removed)
	}
	if _, err := os.Stat(filepath.Join(dir, "README")); err != nil {
		t.Fatal("ClearDir removed a non-cache file")
	}
	if st, _ := ScanDir(dir); st.Entries != 0 || st.Corrupt != 0 {
		t.Fatalf("dir not empty after ClearDir: %+v", st)
	}
}

func TestScanDirMissing(t *testing.T) {
	t.Parallel()
	st, err := ScanDir(filepath.Join(t.TempDir(), "nope"))
	if err != nil || st.Entries != 0 {
		t.Fatalf("missing dir: %+v, %v", st, err)
	}
	if n, err := ClearDir(filepath.Join(t.TempDir(), "nope")); err != nil || n != 0 {
		t.Fatalf("clear missing dir: %d, %v", n, err)
	}
}

func TestNewDiskStoreDisabled(t *testing.T) {
	t.Parallel()
	if newDiskStore("") != nil {
		t.Fatal("empty dir should disable spill")
	}
	// A path that cannot be created (a file in the way) disables spill.
	f := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(f, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if newDiskStore(filepath.Join(f, "sub")) != nil {
		t.Fatal("uncreatable dir should disable spill")
	}
}

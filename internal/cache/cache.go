package cache

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Source classifies where GetOrComputeCtx found a value: the experiment
// service's per-cell progress events report it, so a client can watch
// cache effectiveness cell by cell.
type Source uint8

const (
	// SourceComputed: this caller was the flight leader and ran compute.
	SourceComputed Source = iota
	// SourceMem: served from the in-memory LRU.
	SourceMem
	// SourceDisk: served from the disk spill (and promoted to memory).
	SourceDisk
	// SourceCoalesced: served by another caller's in-flight compute.
	SourceCoalesced
)

// String renders the source as its event-stream token.
func (s Source) String() string {
	switch s {
	case SourceComputed:
		return "computed"
	case SourceMem:
		return "mem"
	case SourceDisk:
		return "disk"
	case SourceCoalesced:
		return "coalesced"
	}
	return fmt.Sprintf("source(%d)", uint8(s))
}

// Config sizes a Cache. The zero Config is usable: 16 shards, 64 MiB
// in-memory budget, no disk spill.
type Config struct {
	// Shards is the in-memory LRU shard count, rounded up to a power of
	// two. 0 means 16.
	Shards int
	// MemBudget is the total in-memory byte budget across all shards.
	// 0 means 64 MiB.
	MemBudget int64
	// Dir is the disk-spill directory. Empty disables spill. The
	// interweave CLI defaults it from $INTERWEAVE_CACHE_DIR.
	Dir string
}

// Slots is the worker-slot protocol of an admission-controlled pool
// (implemented by *exp.Pool). GetOrCompute uses it two ways: a leader
// that does not already hold a slot acquires one for the duration of
// the compute (admission control — cache traffic cannot oversubscribe
// the pool), and a coalesced waiter that does hold one blocks through
// Block so the slot is returned to the pool while it sleeps (a waiter
// must never occupy a slot another cell could be using to produce the
// very result it is waiting for).
type Slots interface {
	Acquire()
	Release()
	Block(wait func())
}

// Stats is a point-in-time snapshot of cache activity.
type Stats struct {
	Hits       uint64 // in-memory LRU hits
	Misses     uint64 // in-memory LRU misses
	SpillHits  uint64 // misses served from disk (and promoted)
	SpillReads uint64 // disk lookups attempted after a memory miss
	SpillWrite uint64 // entries written to disk
	SpillErr   uint64 // best-effort disk writes that failed
	Puts       uint64 // new entries admitted to memory
	Evictions  uint64 // entries evicted for byte budget
	Computes   uint64 // leader computes run via GetOrCompute
	Coalesced  uint64 // waiters served by another caller's compute
	BytesInMem int64  // resident value bytes
	Entries    int    // resident entries
}

// String renders the snapshot as the -cache-stats report line set.
func (s Stats) String() string {
	return fmt.Sprintf(
		"cache: %d hits, %d misses (%d served from disk), %d computes, %d coalesced\n"+
			"cache: memory %d entries / %d bytes, %d evictions; disk %d writes, %d write errors",
		s.Hits, s.Misses, s.SpillHits, s.Computes, s.Coalesced,
		s.Entries, s.BytesInMem, s.Evictions, s.SpillWrite, s.SpillErr)
}

// Cache composes the three tiers: sharded LRU over disk spill, with a
// singleflight group coalescing duplicate in-flight computes.
type Cache struct {
	mem    *memLRU
	disk   *diskStore
	flight flightGroup

	spillHits, spillReads, spillWrite, spillErr atomic.Uint64
	computes, coalesced                         atomic.Uint64
}

// New builds a cache from cfg (see Config for zero-value defaults).
func New(cfg Config) *Cache {
	shards := cfg.Shards
	if shards <= 0 {
		shards = 16
	}
	budget := cfg.MemBudget
	if budget <= 0 {
		budget = 64 << 20
	}
	return &Cache{
		mem:  newMemLRU(shards, budget),
		disk: newDiskStore(cfg.Dir),
	}
}

// Get looks k up in memory, then on disk; a disk hit is promoted into
// memory. The returned bytes are shared — callers must not mutate them.
func (c *Cache) Get(k Key) ([]byte, bool) {
	v, _, ok := c.getSrc(k)
	return v, ok
}

// getSrc is Get with the tier that served the value.
func (c *Cache) getSrc(k Key) ([]byte, Source, bool) {
	if v, ok := c.mem.get(k); ok {
		return v, SourceMem, true
	}
	if c.disk == nil {
		return nil, SourceMem, false
	}
	c.spillReads.Add(1)
	v, ok := c.disk.get(k)
	if !ok {
		return nil, SourceMem, false
	}
	c.spillHits.Add(1)
	c.mem.put(k, v)
	return v, SourceDisk, true
}

// Put stores k→v in memory and writes it through to disk (best-effort).
func (c *Cache) Put(k Key, v []byte) {
	c.mem.put(k, v)
	if c.disk != nil {
		if err := c.disk.put(k, v); err != nil {
			c.spillErr.Add(1)
		} else {
			c.spillWrite.Add(1)
		}
	}
}

// GetOrCompute returns the cached bytes for k, computing and storing
// them on a miss. Duplicate in-flight keys coalesce: one caller (the
// leader) runs compute, the rest wait for its result.
//
// slots, when non-nil, is the worker pool governing the callers, and
// held says whether this caller already occupies one of its slots (true
// inside a pool cell, false on a submission path). A leader without a
// slot acquires one around the compute; a waiter with a slot releases
// it while blocked (Block). This ordering — join the flight first,
// take a slot only to compute — is what makes N duplicate submissions
// at pool width 1 deadlock-free: the waiters wait slotless, so the
// leader can always acquire the one slot.
//
// A compute error or panic is never cached; the flight entry is retired
// so the next caller retries. A leader's panic propagates on the
// leader's goroutine only; its waiters receive an error wrapping
// ErrLeaderPanic.
func (c *Cache) GetOrCompute(k Key, slots Slots, held bool, compute func() ([]byte, error)) ([]byte, error) {
	v, _, err := c.GetOrComputeCtx(context.Background(), k, slots, held, compute)
	return v, err
}

// GetOrComputeCtx is GetOrCompute with caller-side cancellation and the
// serving tier reported alongside the bytes. ctx governs this caller's
// waiting only — admission and coalesced parking — never a running
// compute: a leader whose compute has started runs it to completion and
// stores the result, so cancellation can never leave a partial entry in
// the cache (complete results are cached, abandoned ones simply are
// not). A leader that observes cancellation *before* computing retires
// the flight with ErrLeaderCancelled; waiters whose own context is
// still live then retry the key instead of inheriting the
// cancellation.
func (c *Cache) GetOrComputeCtx(ctx context.Context, k Key, slots Slots, held bool, compute func() ([]byte, error)) ([]byte, Source, error) {
	for {
		if v, src, ok := c.getSrc(k); ok {
			return v, src, nil
		}
		fc, leader := c.flight.join(k)
		if !leader {
			c.coalesced.Add(1)
			var v []byte
			var err error
			if slots != nil && held {
				slots.Block(func() { v, err = fc.waitCtx(ctx) })
			} else {
				v, err = fc.waitCtx(ctx)
			}
			if errors.Is(err, ErrLeaderCancelled) && ctx.Err() == nil {
				continue // the key is untried, not failed; run our own flight
			}
			return v, SourceCoalesced, err
		}
		return c.lead(ctx, k, fc, slots, held, compute)
	}
}

// lead runs the leader side of one flight: admission, the compute, the
// store, and the flight's retirement (on success, failure, panic, or
// pre-compute cancellation).
func (c *Cache) lead(ctx context.Context, k Key, fc *flightCall, slots Slots, held bool, compute func() ([]byte, error)) ([]byte, Source, error) {
	// Between the caller's miss and its join, another leader may have
	// finished and populated the cache; re-check before computing.
	if v, src, ok := c.getSrc(k); ok {
		c.flight.finish(k, fc, v, nil)
		return v, src, nil
	}
	finished := false
	defer func() {
		if !finished { // compute panicked: release waiters, then unwind
			c.flight.finish(k, fc, nil, ErrLeaderPanic)
		}
	}()
	if slots != nil && !held {
		slots.Acquire()
		defer slots.Release()
	}
	// Cancelled before the compute started (possibly while blocked in
	// admission above): retire the flight without touching the cache.
	if err := ctx.Err(); err != nil {
		finished = true
		c.flight.finish(k, fc, nil, fmt.Errorf("%w: %w", ErrLeaderCancelled, err))
		return nil, SourceComputed, err
	}
	c.computes.Add(1)
	v, err := compute()
	finished = true
	if err == nil {
		c.Put(k, v)
	}
	c.flight.finish(k, fc, v, err)
	return v, SourceComputed, err
}

// Stats snapshots the cache's counters. Taken shard by shard, so under
// concurrent traffic the totals are approximate.
func (c *Cache) Stats() Stats {
	var st Stats
	st.SpillHits = c.spillHits.Load()
	st.SpillReads = c.spillReads.Load()
	st.SpillWrite = c.spillWrite.Load()
	st.SpillErr = c.spillErr.Load()
	st.Computes = c.computes.Load()
	st.Coalesced = c.coalesced.Load()
	c.mem.stats(&st)
	return st
}

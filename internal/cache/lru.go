package cache

import "sync"

// memLRU is the sharded in-memory tier: 2^k shards, each an
// independently locked map + intrusive doubly-linked recency list with
// its own byte budget, so concurrent cells on different shards never
// contend. Values are stored and returned by reference; callers must
// treat the byte slices as immutable.
type memLRU struct {
	shards []lruShard
}

// lruShard is one lock domain of the LRU. The recency list is intrusive
// (entries carry their own prev/next) and circular around the sentinel
// head: head.next is most recent, head.prev least recent.
type lruShard struct {
	mu      sync.Mutex
	entries map[Key]*lruEntry
	head    lruEntry // sentinel
	bytes   int64
	budget  int64

	hits, misses, puts, evictions uint64
}

type lruEntry struct {
	key        Key
	val        []byte
	prev, next *lruEntry
}

// newMemLRU builds an LRU with the given shard count (rounded up to a
// power of two) and total byte budget split evenly across shards.
func newMemLRU(shards int, budget int64) *memLRU {
	n := 1
	for n < shards {
		n <<= 1
	}
	m := &memLRU{shards: make([]lruShard, n)}
	per := budget / int64(n)
	if per < 1 {
		per = 1
	}
	for i := range m.shards {
		s := &m.shards[i]
		s.entries = make(map[Key]*lruEntry)
		s.budget = per
		s.head.prev = &s.head
		s.head.next = &s.head
	}
	return m
}

func (s *lruShard) unlink(e *lruEntry) {
	e.prev.next = e.next
	e.next.prev = e.prev
}

func (s *lruShard) pushFront(e *lruEntry) {
	e.prev = &s.head
	e.next = s.head.next
	e.next.prev = e
	s.head.next = e
}

// get returns the value for k and promotes it to most-recent.
func (m *memLRU) get(k Key) ([]byte, bool) {
	s := &m.shards[k.shard(len(m.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[k]
	if !ok {
		s.misses++
		return nil, false
	}
	s.hits++
	s.unlink(e)
	s.pushFront(e)
	return e.val, true
}

// put inserts (or refreshes) k→v at most-recent and evicts from the
// least-recent end until the shard is back under budget. A value larger
// than the whole shard budget is not cached at all: admitting it would
// evict the entire shard to hold one entry that can never be joined by
// another.
func (m *memLRU) put(k Key, v []byte) {
	s := &m.shards[k.shard(len(m.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	if int64(len(v)) > s.budget {
		return
	}
	if e, ok := s.entries[k]; ok {
		s.bytes += int64(len(v)) - int64(len(e.val))
		e.val = v
		s.unlink(e)
		s.pushFront(e)
	} else {
		e = &lruEntry{key: k, val: v}
		s.entries[k] = e
		s.pushFront(e)
		s.bytes += int64(len(v))
		s.puts++
	}
	for s.bytes > s.budget {
		last := s.head.prev
		s.unlink(last)
		delete(s.entries, last.key)
		s.bytes -= int64(len(last.val))
		s.evictions++
	}
}

// stats accumulates every shard's counters into st.
func (m *memLRU) stats(st *Stats) {
	for i := range m.shards {
		s := &m.shards[i]
		s.mu.Lock()
		st.Hits += s.hits
		st.Misses += s.misses
		st.Puts += s.puts
		st.Evictions += s.evictions
		st.BytesInMem += s.bytes
		st.Entries += len(s.entries)
		s.mu.Unlock()
	}
}

package serve

import (
	"bytes"
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// timeField matches the event timestamp value for scrubbing: the only
// nondeterministic byte range in a stream.
var timeField = regexp.MustCompile(`"time":"[^"]*"`)

// scrubTimes replaces every event timestamp so streams compare
// deterministically. Everything else in a stream — event order, cell
// indices, sources, digests — is pinned by the golden byte-for-byte.
func scrubTimes(stream []byte) []byte {
	return timeField.ReplaceAll(stream, []byte(`"time":"SCRUBBED"`))
}

// golden compares got against testdata/<name>, rewriting under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatalf("update %s: %v", path, err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s: stream differs from golden\n--- got ---\n%s--- want ---\n%s",
			name, got, want)
	}
}

// streamEvents runs one job to completion on a sequential server and
// returns its scrubbed NDJSON event stream. Parallel=1 makes cell
// completion order deterministic (index order), so the whole stream is
// reproducible byte-for-byte after timestamp scrubbing.
func streamEvents(t *testing.T, body string) []byte {
	t.Helper()
	s := New(Options{Parallel: 1, Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postJob(t, ts, body)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("events Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body) // the stream ends at the terminal event
	if err != nil {
		t.Fatalf("read stream: %v", err)
	}
	return scrubTimes(raw)
}

// TestEventStreamGoldens pins the NDJSON progress stream for
// representative jobs: the event vocabulary, per-cell lines with
// driver/index/source, and the terminal line with table count and
// result digest (so a digest drift fails here too). Regenerate with
//
//	go test ./internal/serve/ -run TestEventStreamGoldens -update
func TestEventStreamGoldens(t *testing.T) {
	cases := []struct {
		name string
		body string
	}{
		// carat: cell-structured driver — cells appear in index order.
		{"events_carat.ndjson", `{"experiment": "carat"}`},
		// virtine: a second driver shape (service-load cells).
		{"events_virtine.ndjson", `{"experiment": "virtine"}`},
		// chaos-armed: the chaos config lands in the key, so the job ID
		// and digest differ from the clean carat run above.
		{"events_carat_chaos.ndjson", `{"experiment": "carat", "chaos_seed": 5}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			golden(t, tc.name, streamEvents(t, tc.body))
		})
	}
}

// TestEventStreamWellFormed: every line of a stream is one valid Event
// JSON object, the first is queued, the last is terminal, and cell
// events carry driver, index, bound, and source.
func TestEventStreamWellFormed(t *testing.T) {
	raw := streamEvents(t, `{"experiment": "carat", "seed": 99}`)
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) < 3 {
		t.Fatalf("stream has %d lines, want at least queued/running/done", len(lines))
	}
	var types []string
	for i, line := range lines {
		var ev Event
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %d is not a JSON event: %v\n%s", i, err, line)
		}
		types = append(types, ev.Type)
		if ev.Type == "cell" {
			if ev.Driver == "" || ev.Cell == nil || ev.Of == 0 || ev.Source == "" {
				t.Errorf("line %d: incomplete cell event %s", i, line)
			}
		}
	}
	if types[0] != "queued" || types[1] != "running" {
		t.Errorf("stream opens %v, want queued then running", types[:2])
	}
	if last := types[len(types)-1]; last != "done" {
		t.Errorf("stream ends %q, want done", last)
	}
}

// TestEventStreamFollowsLiveJob: a stream opened while the job is
// still parked delivers events as they happen and terminates with the
// job — the streaming path, not the replay path.
func TestEventStreamFollowsLiveJob(t *testing.T) {
	s := New(Options{Parallel: 1, Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := jamPool(s)
	code, st := postJob(t, ts, `{"experiment": "carat", "seed": 77}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	j, _ := s.Job(st.ID)
	waitRunning(t, j)

	// Open the stream while the job is wedged mid-run.
	resp, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatalf("events: %v", err)
	}
	defer resp.Body.Close()

	release()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read live stream: %v", err)
	}
	if !strings.Contains(string(raw), `"type":"done"`) {
		t.Fatalf("live stream missing terminal event:\n%s", raw)
	}
	// Identical content to a replay of the finished job.
	replay, err := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	replayRaw, _ := io.ReadAll(replay.Body)
	replay.Body.Close()
	if !bytes.Equal(scrubTimes(raw), scrubTimes(replayRaw)) {
		t.Error("live stream and replay differ")
	}
}

// TestMain gives the -update flag a home.
func TestMain(m *testing.M) {
	flag.Parse()
	os.Exit(m.Run())
}

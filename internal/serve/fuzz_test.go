package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/core"
)

// FuzzDecodeJobConfig throws arbitrary bytes at the submission
// decoder. Properties:
//
//   - never panics, whatever the input (the decoder is the service's
//     front door);
//   - a rejected input yields a *core.ConfigError with a non-empty
//     stable code (the HTTP layer serializes it blindly);
//   - an accepted config round-trips: rendered to its canonical wire
//     form (WireConfig) and decoded again, it produces the identical
//     content-address key — the job ID, the dedup identity, and the
//     cache address all survive a wire round trip.
//
// Seed corpus lives in testdata/fuzz/FuzzDecodeJobConfig.
func FuzzDecodeJobConfig(f *testing.F) {
	f.Add([]byte(`{"experiment": "fig3"}`))
	f.Add([]byte(`{"experiment": "nautilus", "cpus": 64, "seed": 7}`))
	f.Add([]byte(`{"experiment": "fig7", "sweep": true, "ablate": true, "small_axes": true}`))
	f.Add([]byte(`{"experiment": "fig3", "chaos_seed": 5, "chaos": {"alloc_fail_prob": 0.5, "ipi_drop_prob": 0.1, "max_steps": 1000}}`))
	f.Add([]byte(`{"experiment": "fig99"}`))
	f.Add([]byte(`{"experiment": "carat", "cpus": -1}`))
	f.Add([]byte(`{"experiment": "fig3", "chaos": {"ipi_drop_prob": 2}}`))
	f.Add([]byte(`{`))
	f.Add([]byte(``))
	f.Add([]byte(`[1, 2, 3]`))
	f.Add([]byte(`{"experiment": "fig3"} garbage`))

	f.Fuzz(func(t *testing.T, data []byte) {
		cfg, err := DecodeJobConfig(bytes.NewReader(data))
		if err != nil {
			var cerr *core.ConfigError
			if !errors.As(err, &cerr) {
				t.Fatalf("rejection is not a ConfigError: %v", err)
			}
			if cerr.Code == "" || cerr.Msg == "" {
				t.Fatalf("rejection without code/msg: %+v", cerr)
			}
			return
		}
		key := cfg.Key()
		id := JobID(cfg)
		if len(id) != 16 {
			t.Fatalf("job ID %q not a 16-hex-digit key prefix", id)
		}

		// Canonical wire round trip preserves the key exactly.
		wire, merr := json.Marshal(WireConfig(cfg))
		if merr != nil {
			t.Fatalf("marshal canonical wire form: %v", merr)
		}
		cfg2, err2 := DecodeJobConfig(bytes.NewReader(wire))
		if err2 != nil {
			t.Fatalf("canonical wire form rejected: %v\n%s", err2, wire)
		}
		if cfg2.Key() != key {
			t.Fatalf("key changed across wire round trip:\n in: %s\nout: %s\nwire: %s",
				key, cfg2.Key(), wire)
		}
	})
}

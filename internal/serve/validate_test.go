package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/cache"
	"repro/internal/core"
)

// TestRequestValidation drives every rejection class through the HTTP
// surface and pins the contract a client programs against: the HTTP
// status, the structured JSON error envelope, and the stable
// machine-readable code.
func TestRequestValidation(t *testing.T) {
	s := New(Options{Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	cases := []struct {
		name     string
		method   string
		path     string
		body     string
		wantHTTP int
		wantCode string
	}{
		{"json syntax error", "POST", "/v1/jobs", `{"experiment": `,
			http.StatusBadRequest, CodeBadJSON},
		{"wrong field type", "POST", "/v1/jobs", `{"experiment": "fig3", "cpus": "many"}`,
			http.StatusBadRequest, CodeBadJSON},
		{"unknown field", "POST", "/v1/jobs", `{"experiment": "fig3", "cpu_count": 4}`,
			http.StatusBadRequest, CodeBadJSON},
		{"trailing document", "POST", "/v1/jobs", `{"experiment": "fig3"} {"experiment": "fig4"}`,
			http.StatusBadRequest, CodeBadJSON},
		{"empty body", "POST", "/v1/jobs", ``,
			http.StatusBadRequest, CodeBadJSON},
		{"unknown experiment", "POST", "/v1/jobs", `{"experiment": "fig99"}`,
			http.StatusBadRequest, core.CodeUnknownExperiment},
		{"missing experiment", "POST", "/v1/jobs", `{"seed": 1}`,
			http.StatusBadRequest, core.CodeUnknownExperiment},
		{"cpus zero", "POST", "/v1/jobs", `{"experiment": "nautilus", "cpus": 0}`,
			http.StatusBadRequest, core.CodeCPUsOutOfRange},
		{"cpus above envelope", "POST", "/v1/jobs", `{"experiment": "nautilus", "cpus": 1025}`,
			http.StatusBadRequest, core.CodeCPUsOutOfRange},
		{"cpus negative", "POST", "/v1/jobs", `{"experiment": "nautilus", "cpus": -4}`,
			http.StatusBadRequest, core.CodeCPUsOutOfRange},
		{"domains negative", "POST", "/v1/jobs", `{"experiment": "fig3", "domains": -1}`,
			http.StatusBadRequest, core.CodeDomainsOutOfRange},
		{"domains above envelope", "POST", "/v1/jobs", `{"experiment": "fig3", "domains": 257}`,
			http.StatusBadRequest, core.CodeDomainsOutOfRange},
		{"chaos rates without seed", "POST", "/v1/jobs",
			`{"experiment": "fig3", "chaos": {"ipi_drop_prob": 0.5}}`,
			http.StatusBadRequest, core.CodeBadChaosPlan},
		{"chaos prob above one", "POST", "/v1/jobs",
			`{"experiment": "fig3", "chaos_seed": 1, "chaos": {"ipi_drop_prob": 1.5}}`,
			http.StatusBadRequest, core.CodeBadChaosPlan},
		{"chaos prob negative", "POST", "/v1/jobs",
			`{"experiment": "fig3", "chaos_seed": 1, "chaos": {"alloc_fail_prob": -0.1}}`,
			http.StatusBadRequest, core.CodeBadChaosPlan},
		{"chaos delay negative", "POST", "/v1/jobs",
			`{"experiment": "fig3", "chaos_seed": 1, "chaos": {"ipi_delay_max": -1}}`,
			http.StatusBadRequest, core.CodeBadChaosPlan},
		{"unknown job status", "GET", "/v1/jobs/deadbeefdeadbeef", "",
			http.StatusNotFound, CodeUnknownJob},
		{"unknown job result", "GET", "/v1/jobs/deadbeefdeadbeef/result", "",
			http.StatusNotFound, CodeUnknownJob},
		{"unknown job events", "GET", "/v1/jobs/deadbeefdeadbeef/events", "",
			http.StatusNotFound, CodeUnknownJob},
		{"unknown job cancel", "DELETE", "/v1/jobs/deadbeefdeadbeef", "",
			http.StatusNotFound, CodeUnknownJob},
		{"wrong verb on jobs", "GET", "/v1/jobs", "",
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"wrong verb on stats", "DELETE", "/v1/stats", "",
			http.StatusMethodNotAllowed, CodeMethodNotAllowed},
		{"unknown route", "GET", "/v2/everything", "",
			http.StatusNotFound, CodeNotFound},
		{"bad batch body", "POST", "/v1/jobs/batch", `{"jobs": "all"}`,
			http.StatusBadRequest, CodeBadJSON},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.wantHTTP {
				t.Errorf("status = %d, want %d", resp.StatusCode, tc.wantHTTP)
			}
			if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
				t.Errorf("Content-Type = %q, want application/json", ct)
			}
			var eb errorBody
			if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil {
				t.Fatalf("error body is not the JSON envelope: %v", err)
			}
			if eb.Error.Code != tc.wantCode {
				t.Errorf("code = %q, want %q (msg: %s)", eb.Error.Code, tc.wantCode, eb.Error.Msg)
			}
			if eb.Error.Msg == "" {
				t.Error("empty error msg")
			}
		})
	}
}

// TestResultBeforeDone: asking for the result of a live job is a 409
// with job_not_done, not a hang or an empty 200.
func TestResultBeforeDone(t *testing.T) {
	s := New(Options{Parallel: 1, Workers: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := jamPool(s)
	defer release()
	code, st := postJob(t, ts, `{"experiment": "carat", "seed": 11}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	rcode, _, _ := getResult(t, ts, st.ID)
	if rcode != http.StatusConflict {
		t.Fatalf("result while running: status %d, want 409", rcode)
	}
	resp, _ := http.Get(ts.URL + "/v1/jobs/" + st.ID + "/result")
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if eb.Error.Code != CodeJobNotDone {
		t.Fatalf("code %q, want %q", eb.Error.Code, CodeJobNotDone)
	}
}

// TestBatchPerItemErrors: a batch mixing valid and invalid configs
// reports each item's own outcome in request order — one bad item
// neither fails the envelope nor its siblings.
func TestBatchPerItemErrors(t *testing.T) {
	s := New(Options{Workers: 2})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	body := `{"jobs": [
		{"experiment": "blending", "seed": 21},
		{"experiment": "fig99"},
		{"experiment": "consistency", "seed": 21},
		{"experiment": "nautilus", "cpus": 4096}
	]}`
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch envelope status %d, want 200", resp.StatusCode)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 4 {
		t.Fatalf("%d items, want 4", len(br.Items))
	}
	wantStatus := []int{http.StatusAccepted, http.StatusBadRequest,
		http.StatusAccepted, http.StatusBadRequest}
	wantCode := []string{"", core.CodeUnknownExperiment, "", core.CodeCPUsOutOfRange}
	for i, item := range br.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status %d, want %d", i, item.Status, wantStatus[i])
		}
		if wantCode[i] == "" {
			if item.Job == nil || item.Error != nil {
				t.Errorf("item %d: want job, got error %+v", i, item.Error)
			}
		} else {
			if item.Error == nil || item.Error.Code != wantCode[i] {
				t.Errorf("item %d: want code %q, got %+v", i, wantCode[i], item.Error)
			}
			if item.Job != nil {
				t.Errorf("item %d: error item carries a job", i)
			}
		}
	}
	// The good items really ran.
	for _, i := range []int{0, 2} {
		j := awaitJob(t, s, br.Items[i].Job.ID)
		if st, _, _, _, _, _ := j.snapshot(); st != StateDone {
			t.Errorf("item %d: state %s, want done", i, st)
		}
	}
}

// TestStatsEndpoint: the counters a deployment monitors exist and
// move: job counts by state, queue capacity, pool width, cache
// counters when caching.
func TestStatsEndpoint(t *testing.T) {
	s := New(Options{Parallel: 2, Workers: 2, QueueDepth: 7,
		Cache: cache.New(cache.Config{})})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	code, st := postJob(t, ts, `{"experiment": "pipeline", "seed": 31}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	awaitJob(t, s, st.ID)

	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap StatsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Jobs[StateDone] != 1 {
		t.Errorf("jobs done = %d, want 1", snap.Jobs[StateDone])
	}
	if snap.Queue.Capacity != 7 {
		t.Errorf("queue capacity = %d, want 7", snap.Queue.Capacity)
	}
	if snap.Pool.Workers != 2 {
		t.Errorf("pool workers = %d, want 2", snap.Pool.Workers)
	}
	if snap.Cache == nil {
		t.Fatal("no cache stats on a caching server")
	}
	if snap.Cache.Computes == 0 {
		t.Error("cache computes = 0 after a completed job")
	}
}

package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cache"
	"repro/internal/chaos"
	"repro/internal/core"
	"repro/internal/exp"
)

// Options sizes a Server. The zero Options is usable: default pool
// width, sequential engine, 4 workers, a 64-deep queue, no cache.
type Options struct {
	// Parallel bounds concurrent experiment cells across ALL jobs — the
	// shared exp.Pool every job's cells go through (0 = exp default).
	// This is the daemon's admission control at the cell tier.
	Parallel int
	// Shards selects the event engine (see core.Stack.Shards).
	Shards int
	// Workers is the number of jobs run concurrently (0 = 4). Cells are
	// still bounded by Parallel: workers contend for the shared pool.
	Workers int
	// QueueDepth bounds the admission queue (0 = 64). A submission
	// arriving with the queue full is rejected with 429 + Retry-After,
	// never blocked — backpressure must not tie up HTTP handlers.
	QueueDepth int
	// Cache, when non-nil, memoizes results at the driver and cell
	// tiers and coalesces duplicate in-flight computes across jobs.
	Cache *cache.Cache
}

// Server runs jobs from a bounded queue against one shared
// core.Runner. It is the HTTP-free core of the daemon; Handler wires
// it to routes, and tests drive either layer.
type Server struct {
	runner *core.Runner
	pool   *exp.Pool
	store  *store
	queue  chan *Job
	qcap   int

	// qmu serializes enqueues against the shutdown close: a Submit
	// holding the read side can never send on a channel Shutdown (write
	// side) has already closed.
	qmu       sync.RWMutex
	draining  atomic.Bool
	closeOnce sync.Once
	wg        sync.WaitGroup

	// now stamps events; tests may fix it before any job is submitted.
	// detvet:ok — a server observes wall-clock time by design; nothing
	// derived from it enters results or cache keys.
	now func() time.Time
}

// New builds a Server and starts its workers. Callers must Shutdown.
func New(o Options) *Server {
	workers := o.Workers
	if workers <= 0 {
		workers = 4
	}
	depth := o.QueueDepth
	if depth <= 0 {
		depth = 64
	}
	pool := exp.New(o.Parallel)
	s := &Server{
		runner: &core.Runner{
			Parallel: o.Parallel,
			Shards:   o.Shards,
			Cache:    o.Cache,
			Pool:     pool,
		},
		pool:  pool,
		store: newStore(),
		queue: make(chan *Job, depth),
		qcap:  depth,
		now:   time.Now, // detvet:ok — event timestamps, not results
	}
	s.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go s.worker()
	}
	return s
}

// Submit validates nothing (the config is already validated by
// DecodeJobConfig); it resolves the job against the registry and the
// queue. Outcomes:
//
//   - an equal submission is live or done: that job is returned
//     (deduplicated = true) — N concurrent clients coalesce onto one
//     compute;
//   - the daemon is draining: ErrShuttingDown;
//   - the queue is full: ErrQueueFull (HTTP 429 + Retry-After);
//   - otherwise the job is enqueued.
func (s *Server) Submit(cfg core.RunConfig) (*Job, bool, error) {
	if s.draining.Load() {
		return nil, false, ErrShuttingDown
	}
	id := JobID(cfg)
	job, fresh := s.store.upsert(id, func() *Job { return newJob(cfg, s.now) })
	if !fresh {
		return job, true, nil
	}
	s.qmu.RLock()
	defer s.qmu.RUnlock()
	if s.draining.Load() {
		job.setCancelled(s.now())
		return nil, false, ErrShuttingDown
	}
	select {
	case s.queue <- job:
		return job, false, nil
	default:
		// Roll the admission back so a later retry can enqueue: a
		// cancelled job does not shadow its ID (see store.upsert).
		job.setCancelled(s.now())
		return nil, false, ErrQueueFull
	}
}

// Submission failures (mapped to HTTP statuses by the handler).
var (
	ErrQueueFull    = errors.New("serve: admission queue full")
	ErrShuttingDown = errors.New("serve: shutting down")
)

// Job returns the job with the given ID.
func (s *Server) Job(id string) (*Job, bool) { return s.store.get(id) }

// Cancel cancels the job with the given ID. Cancellation is a request:
// a queued job dies before running; a running job stops at its next
// cancellation point (cells not yet started, cache admission, coalesced
// waits) — a compute already in flight completes and is cached, so the
// cache is never contaminated by a cancelled job.
func (s *Server) Cancel(id string) (*Job, bool) {
	j, ok := s.store.get(id)
	if !ok {
		return nil, false
	}
	j.cancel()
	return j, true
}

// Shutdown drains the service: no new submissions, queued and running
// jobs finish, workers exit. If ctx expires first, every live job is
// cancelled and Shutdown waits for the workers to observe it. Safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.closeOnce.Do(func() {
		s.qmu.Lock()
		s.draining.Store(true)
		close(s.queue)
		s.qmu.Unlock()
	})
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		for _, j := range s.store.all() {
			j.cancel()
		}
		<-done
		return ctx.Err()
	}
}

// worker pulls jobs until the queue closes at shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.run(job)
	}
}

// run executes one job through the shared Runner, translating the
// registry's outcomes into job states and stable failure codes.
func (s *Server) run(job *Job) {
	if job.ctx.Err() != nil {
		job.setCancelled(s.now())
		return
	}
	job.setRunning(s.now())
	observe := func(ev core.CellEvent) { job.cellEvent(ev, s.now()) }
	tables, src, err := s.runner.Run(job.ctx, job.Config, observe)
	switch {
	case err == nil:
		job.setDone(tables, src, s.now())
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		job.setCancelled(s.now())
	default:
		code := CodeInternal
		if _, isFault := chaos.AsFault(err); isFault {
			code = CodeChaosFault
		} else {
			var cerr *core.ConfigError
			if errors.As(err, &cerr) {
				code = cerr.Code
			}
		}
		job.setFailed(code, err.Error(), s.now())
	}
}

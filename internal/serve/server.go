package serve

import (
	"errors"
	"fmt"
	"net/http"

	"repro/internal/core"
)

// JobStatus is the JSON body of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string    `json:"id"`
	State  State     `json:"state"`
	Config JobConfig `json:"config"`
	// Deduplicated is set on submission responses when the submission
	// coalesced onto an already-live or already-done job.
	Deduplicated bool `json:"deduplicated,omitempty"`
	// Terminal-success fields.
	Tables int    `json:"tables,omitempty"`
	Digest string `json:"digest,omitempty"`
	Source string `json:"source,omitempty"`
	// Terminal-failure fields.
	Code  string `json:"code,omitempty"`
	Error string `json:"error,omitempty"`
}

// status renders a job's current status body.
func status(j *Job, dedup bool) JobStatus {
	st, tables, digest, src, code, errMsg := j.snapshot()
	out := JobStatus{
		ID:           j.ID,
		State:        st,
		Config:       WireConfig(j.Config),
		Deduplicated: dedup,
		Code:         code,
		Error:        errMsg,
	}
	if st == StateDone {
		out.Tables = tables
		out.Digest = digest
		out.Source = src.String()
	}
	return out
}

// Handler returns the service's HTTP routes:
//
//	POST   /v1/jobs           submit one job
//	POST   /v1/jobs/batch     submit many (per-item results)
//	GET    /v1/jobs/{id}      job status
//	GET    /v1/jobs/{id}/result  rendered tables (text; X-Result-Digest)
//	GET    /v1/jobs/{id}/events  NDJSON progress stream
//	DELETE /v1/jobs/{id}      cancel
//	GET    /v1/stats          queue/pool/cache/job counters
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("POST /v1/jobs/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	return maxBytes(muxErrorsAsJSON(mux))
}

// maxBytes caps request bodies before any handler reads them.
func maxBytes(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Body != nil {
			r.Body = http.MaxBytesReader(w, r.Body, maxBodyBytes)
		}
		next.ServeHTTP(w, r)
	})
}

// muxErrorsAsJSON rewrites ServeMux's own plain-text 404 (no route)
// and 405 (path matches under a different verb) into the service's
// JSON error envelope. The service's handlers are left alone: they
// always set application/json before writing, which is the tell.
func muxErrorsAsJSON(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		next.ServeHTTP(&muxErrWriter{ResponseWriter: w, method: r.Method, path: r.URL.Path}, r)
	})
}

type muxErrWriter struct {
	http.ResponseWriter
	method, path string
	rewrote      bool
}

func (w *muxErrWriter) WriteHeader(code int) {
	fromMux := w.Header().Get("Content-Type") != "application/json"
	if fromMux && code == http.StatusMethodNotAllowed {
		w.rewrote = true
		w.Header().Del("Content-Type")
		writeError(w.ResponseWriter, code, CodeMethodNotAllowed,
			fmt.Sprintf("method %s not allowed on %s", w.method, w.path))
		return
	}
	if fromMux && code == http.StatusNotFound {
		w.rewrote = true
		w.Header().Del("Content-Type")
		w.Header().Del("X-Content-Type-Options")
		writeError(w.ResponseWriter, code, CodeNotFound,
			fmt.Sprintf("no route %s %s", w.method, w.path))
		return
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *muxErrWriter) Write(b []byte) (int, error) {
	if w.rewrote {
		return len(b), nil // swallow the mux's plain-text body
	}
	return w.ResponseWriter.Write(b)
}

// Flush forwards to the wrapped writer: the event stream depends on
// per-line flushes reaching the socket through this wrapper.
func (w *muxErrWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer.
func (w *muxErrWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// submitOne resolves one decoded config through Submit, mapping the
// outcomes to (status code, body) for both the single and batch paths.
func (s *Server) submitOne(cfg core.RunConfig) (int, any) {
	job, dedup, err := s.Submit(cfg)
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests, errorBody{errorDetail{
			Code: CodeQueueFull,
			Msg:  fmt.Sprintf("admission queue full (%d deep); retry later", s.qcap)}}
	case errors.Is(err, ErrShuttingDown):
		return http.StatusServiceUnavailable, errorBody{errorDetail{
			Code: CodeShuttingDown, Msg: "daemon is draining; no new jobs"}}
	case err != nil:
		return http.StatusInternalServerError, errorBody{errorDetail{
			Code: CodeInternal, Msg: err.Error()}}
	case dedup:
		return http.StatusOK, status(job, true)
	default:
		return http.StatusAccepted, status(job, false)
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	cfg, err := DecodeJobConfig(r.Body)
	if err != nil {
		var cerr *core.ConfigError
		errors.As(err, &cerr)
		writeError(w, http.StatusBadRequest, cerr.Code, cerr.Msg)
		return
	}
	code, body := s.submitOne(cfg)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code, body)
}

// BatchRequest is the body of POST /v1/jobs/batch: raw configs so each
// item decodes — and fails — independently.
type BatchRequest struct {
	Jobs []JobConfig `json:"jobs"`
}

// BatchItem is one per-item outcome: exactly one of Job or Error set.
type BatchItem struct {
	Status int          `json:"status"` // the item's would-be HTTP status
	Job    *JobStatus   `json:"job,omitempty"`
	Error  *errorDetail `json:"error,omitempty"`
}

// BatchResponse mirrors the request order item by item.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeStrict(r.Body, &req); err != nil {
		writeError(w, http.StatusBadRequest, CodeBadJSON,
			fmt.Sprintf("bad batch request: %v", err))
		return
	}
	resp := BatchResponse{Items: make([]BatchItem, 0, len(req.Jobs))}
	for _, jc := range req.Jobs {
		cfg := jc.RunConfig()
		if err := cfg.Validate(); err != nil {
			var cerr *core.ConfigError
			errors.As(err, &cerr)
			resp.Items = append(resp.Items, BatchItem{
				Status: http.StatusBadRequest,
				Error:  &errorDetail{Code: cerr.Code, Msg: cerr.Msg},
			})
			continue
		}
		code, body := s.submitOne(cfg)
		item := BatchItem{Status: code}
		switch b := body.(type) {
		case JobStatus:
			item.Job = &b
		case errorBody:
			e := b.Error
			item.Error = &e
		}
		resp.Items = append(resp.Items, item)
	}
	// The envelope succeeds even when items fail: per-item status is
	// the contract, so one bad config cannot mask its siblings.
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, status(job, false))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	st, _, digest, src, code, errMsg := job.snapshot()
	switch {
	case st == StateDone:
		job.mu.Lock()
		body := job.result
		job.mu.Unlock()
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		w.Header().Set("X-Result-Digest", digest)
		w.Header().Set("X-Result-Source", src.String())
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	case st.terminal():
		writeError(w, http.StatusConflict, CodeJobFailed,
			fmt.Sprintf("job %s %s (%s): %s", job.ID, st, code, errMsg))
	default:
		writeError(w, http.StatusConflict, CodeJobNotDone,
			fmt.Sprintf("job %s is %s; poll status or follow events", job.ID, st))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Cancel(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusAccepted, status(job, false))
}

package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"repro/internal/chaos"
	"repro/internal/core"
)

// maxBodyBytes caps request bodies. A JobConfig is a few hundred bytes;
// a batch of them is a few KiB. 1 MiB is generous headroom, not a knob.
const maxBodyBytes = 1 << 20

// JobConfig is the wire form of core.RunConfig: the complete
// serializable description of one experiment invocation. Optional
// fields marshal away when zero, so the canonical wire form of a
// default invocation is just {"experiment": "..."}.
//
// CPUs and Seed are pointers because their defaults (16 and 42) are
// nonzero: an omitted field means "the default", an explicit 0 is
// preserved long enough for validation to reject it.
type JobConfig struct {
	Experiment  string     `json:"experiment"`
	CPUs        *int       `json:"cpus,omitempty"`
	Seed        *uint64    `json:"seed,omitempty"`
	ChaosSeed   uint64     `json:"chaos_seed,omitempty"`
	Chaos       *ChaosPlan `json:"chaos,omitempty"`
	Domains     int        `json:"domains,omitempty"`
	Overheads   bool       `json:"overheads,omitempty"`
	Granularity bool       `json:"granularity,omitempty"`
	Mobility    bool       `json:"mobility,omitempty"`
	MemStats    bool       `json:"memstats,omitempty"`
	EPCC        bool       `json:"epcc,omitempty"`
	Sweep       bool       `json:"sweep,omitempty"`
	Ablate      bool       `json:"ablate,omitempty"`
	SmallAxes   bool       `json:"small_axes,omitempty"`
}

// ChaosPlan is the wire form of chaos.Config: the fault rates a
// chaos-armed job runs under. Submitting one without a nonzero
// chaos_seed is a validation error (bad_chaos_plan).
type ChaosPlan struct {
	AllocFailProb   float64 `json:"alloc_fail_prob,omitempty"`
	AllocBudget     uint64  `json:"alloc_budget,omitempty"`
	IPIDropProb     float64 `json:"ipi_drop_prob,omitempty"`
	IPIDelayProb    float64 `json:"ipi_delay_prob,omitempty"`
	IPIDelayMax     int64   `json:"ipi_delay_max,omitempty"`
	TimerJitterProb float64 `json:"timer_jitter_prob,omitempty"`
	TimerJitterMax  int64   `json:"timer_jitter_max,omitempty"`
	WakeDelayProb   float64 `json:"wake_delay_prob,omitempty"`
	WakeDelayMax    int64   `json:"wake_delay_max,omitempty"`
	MaxSteps        int64   `json:"max_steps,omitempty"`
}

// RunConfig lowers the wire form onto the registry's RunConfig,
// applying the registry defaults for omitted fields. It does not
// validate; callers follow with Validate (DecodeJobConfig does both).
func (jc JobConfig) RunConfig() core.RunConfig {
	cfg := core.DefaultRunConfig(jc.Experiment)
	if jc.CPUs != nil {
		cfg.CPUs = *jc.CPUs
	}
	if jc.Seed != nil {
		cfg.Seed = *jc.Seed
	}
	cfg.ChaosSeed = jc.ChaosSeed
	if jc.Chaos != nil {
		cfg.Chaos = &chaos.Config{
			AllocFailProb:   jc.Chaos.AllocFailProb,
			AllocBudget:     jc.Chaos.AllocBudget,
			IPIDropProb:     jc.Chaos.IPIDropProb,
			IPIDelayProb:    jc.Chaos.IPIDelayProb,
			IPIDelayMax:     jc.Chaos.IPIDelayMax,
			TimerJitterProb: jc.Chaos.TimerJitterProb,
			TimerJitterMax:  jc.Chaos.TimerJitterMax,
			WakeDelayProb:   jc.Chaos.WakeDelayProb,
			WakeDelayMax:    jc.Chaos.WakeDelayMax,
			MaxSteps:        jc.Chaos.MaxSteps,
		}
	}
	cfg.Domains = jc.Domains
	cfg.Overheads = jc.Overheads
	cfg.Granularity = jc.Granularity
	cfg.Mobility = jc.Mobility
	cfg.MemStats = jc.MemStats
	cfg.EPCC = jc.EPCC
	cfg.Sweep = jc.Sweep
	cfg.Ablate = jc.Ablate
	cfg.SmallAxes = jc.SmallAxes
	return cfg
}

// WireConfig renders a RunConfig back to its canonical wire form — the
// JobConfig whose RunConfig() is field-identical (and therefore
// Key-identical) to cfg. Job status responses echo this form, and the
// decode fuzzer round-trips through it.
func WireConfig(cfg core.RunConfig) JobConfig {
	jc := JobConfig{
		Experiment: cfg.Experiment,
		CPUs:       &cfg.CPUs,
		Seed:       &cfg.Seed,
		ChaosSeed:  cfg.ChaosSeed,
		Domains:    cfg.Domains,
	}
	if cfg.Chaos != nil {
		jc.Chaos = &ChaosPlan{
			AllocFailProb:   cfg.Chaos.AllocFailProb,
			AllocBudget:     cfg.Chaos.AllocBudget,
			IPIDropProb:     cfg.Chaos.IPIDropProb,
			IPIDelayProb:    cfg.Chaos.IPIDelayProb,
			IPIDelayMax:     cfg.Chaos.IPIDelayMax,
			TimerJitterProb: cfg.Chaos.TimerJitterProb,
			TimerJitterMax:  cfg.Chaos.TimerJitterMax,
			WakeDelayProb:   cfg.Chaos.WakeDelayProb,
			WakeDelayMax:    cfg.Chaos.WakeDelayMax,
			MaxSteps:        cfg.Chaos.MaxSteps,
		}
	}
	jc.Overheads = cfg.Overheads
	jc.Granularity = cfg.Granularity
	jc.Mobility = cfg.Mobility
	jc.MemStats = cfg.MemStats
	jc.EPCC = cfg.EPCC
	jc.Sweep = cfg.Sweep
	jc.Ablate = cfg.Ablate
	jc.SmallAxes = cfg.SmallAxes
	return jc
}

// decodeStrict decodes exactly one JSON document from r into v:
// unknown fields, wrong types, and trailing data all fail.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(io.LimitReader(r, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A second document after the first is a malformed request, not
	// ignorable padding.
	if dec.More() {
		return errors.New("trailing data after JSON document")
	}
	return nil
}

// DecodeJobConfig reads one JobConfig from r (strict: unknown fields
// and trailing garbage are bad_json), lowers it onto the registry, and
// validates. The returned error is always a *core.ConfigError, so its
// Code goes straight into the JSON error body.
func DecodeJobConfig(r io.Reader) (core.RunConfig, error) {
	var jc JobConfig
	if err := decodeStrict(r, &jc); err != nil {
		return core.RunConfig{}, &core.ConfigError{
			Code: CodeBadJSON, Msg: fmt.Sprintf("bad job config: %v", err)}
	}
	cfg := jc.RunConfig()
	if err := cfg.Validate(); err != nil {
		var cerr *core.ConfigError
		if errors.As(err, &cerr) {
			return core.RunConfig{}, cerr
		}
		return core.RunConfig{}, &core.ConfigError{Code: CodeInternal, Msg: err.Error()}
	}
	return cfg, nil
}

// JobID derives the job identifier from a validated config: the first
// 16 hex digits (64 bits) of the config's content-address key. The ID
// is therefore a cache-key prefix — equal IDs mean equal configs mean
// byte-identical results, which is what makes job-level deduplication
// sound.
func JobID(cfg core.RunConfig) string {
	return cfg.Key().String()[:16]
}

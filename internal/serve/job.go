package serve

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// State is a job's lifecycle position. Transitions are linear:
// queued → running → one of {done, failed, cancelled}; a queued job
// may also jump straight to cancelled.
type State string

const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// terminal reports whether s is an end state.
func (s State) terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Event is one line of a job's NDJSON progress stream. Types:
//
//	queued     the job was admitted
//	running    a worker picked it up
//	cell       one experiment cell completed (driver, cell i of n,
//	           and the tier that served it: computed/mem/disk/coalesced)
//	done       terminal success (table count, result digest, source)
//	failed     terminal failure (error code + message)
//	cancelled  terminal cancellation
//
// Time is wall-clock (RFC3339Nano); golden tests scrub it.
type Event struct {
	Type   string `json:"type"`
	Job    string `json:"job"`
	Time   string `json:"time"`
	Driver string `json:"driver,omitempty"`
	Cell   *int   `json:"cell,omitempty"`
	Of     int    `json:"of,omitempty"`
	Source string `json:"source,omitempty"`
	Tables int    `json:"tables,omitempty"`
	Digest string `json:"digest,omitempty"`
	Code   string `json:"code,omitempty"`
	Error  string `json:"error,omitempty"`
}

// Job is one submitted experiment invocation. All mutable fields are
// guarded by mu; event appends and state changes broadcast on cond so
// streaming handlers can follow along, and done closes at the terminal
// transition for select-based waits.
type Job struct {
	ID     string
	Config core.RunConfig

	// ctx governs the job's waiting (queue time, cache admission,
	// coalesced parking) — cancelling it never aborts a running
	// compute, so the cache stays uncontaminated (see internal/cache).
	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond
	state  State
	events []Event
	result []byte // rendered tables, byte-identical to the CLI
	digest string // 16-hex-digit fingerprint over the table digests
	tables int
	source cache.Source
	code   string // terminal failure code
	errMsg string
	done   chan struct{}

	submitted time.Time
}

// newJob builds a queued job and records its first event.
func newJob(cfg core.RunConfig, now func() time.Time) *Job {
	ctx, cancel := context.WithCancel(context.Background())
	j := &Job{
		ID:        JobID(cfg),
		Config:    cfg,
		ctx:       ctx,
		cancel:    cancel,
		state:     StateQueued,
		done:      make(chan struct{}),
		submitted: now(),
	}
	j.cond = sync.NewCond(&j.mu)
	j.append(Event{Type: "queued", Job: j.ID, Time: stamp(now())})
	return j
}

// stamp renders an event timestamp.
func stamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }

// append records ev and wakes streamers. Callers may hold mu (the
// terminal setters do); append only needs it held once.
func (j *Job) append(ev Event) {
	j.mu.Lock()
	j.appendLocked(ev)
	j.mu.Unlock()
}

func (j *Job) appendLocked(ev Event) {
	j.events = append(j.events, ev)
	j.cond.Broadcast()
}

// setRunning transitions queued → running.
func (j *Job) setRunning(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateRunning
	j.appendLocked(Event{Type: "running", Job: j.ID, Time: stamp(now)})
}

// cellEvent records one completed experiment cell.
func (j *Job) cellEvent(ev core.CellEvent, now time.Time) {
	cell := ev.Cell
	j.append(Event{
		Type: "cell", Job: j.ID, Time: stamp(now),
		Driver: ev.Driver, Cell: &cell, Of: ev.Of, Source: ev.Source.String(),
	})
}

// setDone records terminal success: the rendered result (the exact
// bytes the CLI would print — Table.String() + "\n" per table), its
// digest, and the tier that served the table set.
func (j *Job) setDone(tables []*core.Table, src cache.Source, now time.Time) {
	var buf []byte
	e := cache.NewEnc()
	for i, t := range tables {
		buf = append(buf, t.String()...)
		buf = append(buf, '\n')
		e.U64(fmt.Sprintf("table-%d", i), t.Digest())
	}
	digest := fmt.Sprintf("%016x", e.Fingerprint())

	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateDone
	j.result = buf
	j.digest = digest
	j.tables = len(tables)
	j.source = src
	j.appendLocked(Event{
		Type: "done", Job: j.ID, Time: stamp(now),
		Tables: len(tables), Digest: digest, Source: src.String(),
	})
	close(j.done)
}

// setFailed records terminal failure under a stable code.
func (j *Job) setFailed(code, msg string, now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateFailed
	j.code = code
	j.errMsg = msg
	j.appendLocked(Event{Type: "failed", Job: j.ID, Time: stamp(now), Code: code, Error: msg})
	close(j.done)
}

// setCancelled records terminal cancellation.
func (j *Job) setCancelled(now time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.state = StateCancelled
	j.code = CodeCancelled
	j.appendLocked(Event{Type: "cancelled", Job: j.ID, Time: stamp(now), Code: CodeCancelled})
	close(j.done)
}

// snapshot returns the fields a status response needs, consistently.
func (j *Job) snapshot() (state State, tables int, digest string, src cache.Source, code, errMsg string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.tables, j.digest, j.source, j.code, j.errMsg
}

// eventsFrom returns events[i:] once it is non-empty or the job is
// terminal with nothing new; followers call it in a loop. wake lets a
// caller abandon the wait (client disconnect): waitCh closes when the
// caller should stop waiting.
func (j *Job) eventsFrom(i int, waitDone <-chan struct{}) ([]Event, bool) {
	j.mu.Lock()
	defer j.mu.Unlock()
	for {
		if i < len(j.events) {
			evs := make([]Event, len(j.events)-i)
			copy(evs, j.events[i:])
			return evs, true
		}
		if j.state.terminal() {
			return nil, false
		}
		select {
		case <-waitDone:
			return nil, false
		default:
		}
		j.cond.Wait()
	}
}

// wake kicks every cond waiter; streaming handlers arrange a wake when
// their client disconnects.
func (j *Job) wake() {
	j.mu.Lock()
	j.cond.Broadcast()
	j.mu.Unlock()
}

// store is the job registry: ID → job, plus state counts for /v1/stats.
type store struct {
	mu   sync.Mutex
	jobs map[string]*Job
}

func newStore() *store { return &store{jobs: make(map[string]*Job)} }

// get returns the job with the given ID.
func (s *store) get(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// all returns every job (for shutdown cancellation and stats).
func (s *store) all() []*Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs { // detvet:ok — order-free: every job is visited
		jobs = append(jobs, j)
	}
	return jobs
}

// upsert resolves a submission against the registry under one lock:
// an existing job in a live or succeeded state is returned as-is
// (deduplication — the submission coalesces onto it); a failed or
// cancelled predecessor is replaced by a fresh job built with make.
// The bool reports whether the returned job is new (needs enqueueing).
func (s *store) upsert(id string, make func() *Job) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j, ok := s.jobs[id]; ok {
		st, _, _, _, _, _ := j.snapshot()
		if st != StateFailed && st != StateCancelled {
			return j, false
		}
	}
	j := make()
	s.jobs[id] = j
	return j, true
}

// counts tallies jobs by state.
func (s *store) counts() map[State]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := make(map[State]int, 5)
	for _, j := range s.jobs { // detvet:ok — commutative tally, order-free
		st, _, _, _, _, _ := j.snapshot()
		c[st]++
	}
	return c
}

// Package serve is the interweaved experiment service: an HTTP/JSON
// front end over the runnable-job registry (internal/core). A job is a
// validated, canonicalized RunConfig; its ID is a prefix of the
// config's content-address key, so the job namespace inherits the
// cache's guarantee — two submissions with the same ID are the same
// experiment, and their results are byte-identical.
//
// The service adds nothing to the result path: jobs run through the
// same core.Runner (shared exp.Pool, shared cache.Cache) the CLI uses,
// so concurrent duplicate submissions coalesce onto one compute at
// every tier (job, driver, cell), and a daemon-served result is
// byte-identical to the CLI's.
package serve

import (
	"encoding/json"
	"net/http"
)

// Serve-level error codes. Together with the core.ConfigError codes
// (unknown_experiment, cpus_out_of_range, domains_out_of_range,
// bad_chaos_plan) these are API surface: stable, machine-readable,
// added to but never renamed.
const (
	// CodeBadJSON: the request body is not valid JSON for the endpoint's
	// schema (syntax error, wrong type, unknown field, or over the size
	// cap).
	CodeBadJSON = "bad_json"
	// CodeUnknownJob: no job with the requested ID.
	CodeUnknownJob = "unknown_job"
	// CodeQueueFull: admission control rejected the submission; retry
	// after the Retry-After header's delay.
	CodeQueueFull = "queue_full"
	// CodeShuttingDown: the daemon is draining and accepts no new jobs.
	CodeShuttingDown = "shutting_down"
	// CodeJobNotDone: the result was requested before the job reached a
	// terminal state.
	CodeJobNotDone = "job_not_done"
	// CodeJobFailed: the result was requested for a job that failed or
	// was cancelled.
	CodeJobFailed = "job_failed"
	// CodeChaosFault: the job was killed by an injected chaos fault
	// (replayable: resubmit with the same chaos_seed).
	CodeChaosFault = "chaos_fault"
	// CodeCancelled: the job was cancelled by a DELETE or by shutdown.
	CodeCancelled = "cancelled"
	// CodeMethodNotAllowed: the path exists but not for this verb.
	CodeMethodNotAllowed = "method_not_allowed"
	// CodeNotFound: no such route.
	CodeNotFound = "not_found"
	// CodeInternal: an unexpected server-side failure.
	CodeInternal = "internal"
)

// errorBody is the uniform JSON error envelope:
//
//	{"error": {"code": "queue_full", "msg": "..."}}
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code string `json:"code"`
	Msg  string `json:"msg"`
}

// writeError emits the uniform error envelope with the given HTTP
// status and machine-readable code.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// Encoding a flat struct of two strings cannot fail.
	_ = json.NewEncoder(w).Encode(errorBody{errorDetail{Code: code, Msg: msg}})
}

// writeJSON emits v as the response body with the given status.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetEscapeHTML(false)
	_ = enc.Encode(v)
}

package serve

import "net/http"

// StatsSnapshot is the body of GET /v1/stats: job counts by state, the
// admission queue, the shared cell pool, and (when caching) the result
// cache's counters. The mirrors exist to give the wire stable
// snake_case names independent of the internal struct fields.
type StatsSnapshot struct {
	Jobs     map[State]int   `json:"jobs"`
	Queue    QueueStats      `json:"queue"`
	Pool     PoolStatsWire   `json:"pool"`
	Cache    *CacheStatsWire `json:"cache,omitempty"`
	Draining bool            `json:"draining,omitempty"`
}

// QueueStats describes the admission queue.
type QueueStats struct {
	Depth    int `json:"depth"`
	Capacity int `json:"capacity"`
}

// PoolStatsWire mirrors exp.PoolStats.
type PoolStatsWire struct {
	Workers int    `json:"workers"`
	Active  int    `json:"active"`
	Blocked int    `json:"blocked"`
	Cells   uint64 `json:"cells"`
}

// CacheStatsWire mirrors cache.Stats.
type CacheStatsWire struct {
	Hits       uint64 `json:"hits"`
	Misses     uint64 `json:"misses"`
	SpillHits  uint64 `json:"spill_hits"`
	SpillReads uint64 `json:"spill_reads"`
	SpillWrite uint64 `json:"spill_writes"`
	SpillErr   uint64 `json:"spill_errors"`
	Puts       uint64 `json:"puts"`
	Evictions  uint64 `json:"evictions"`
	Computes   uint64 `json:"computes"`
	Coalesced  uint64 `json:"coalesced"`
	BytesInMem int64  `json:"bytes_in_mem"`
	Entries    int    `json:"entries"`
}

// Stats snapshots the service.
func (s *Server) Stats() StatsSnapshot {
	ps := s.pool.Stats()
	snap := StatsSnapshot{
		Jobs:  s.store.counts(),
		Queue: QueueStats{Depth: len(s.queue), Capacity: s.qcap},
		Pool: PoolStatsWire{
			Workers: ps.Workers, Active: ps.Active,
			Blocked: ps.Blocked, Cells: ps.Cells,
		},
		Draining: s.draining.Load(),
	}
	if c := s.runner.Cache; c != nil {
		cs := c.Stats()
		snap.Cache = &CacheStatsWire{
			Hits: cs.Hits, Misses: cs.Misses,
			SpillHits: cs.SpillHits, SpillReads: cs.SpillReads,
			SpillWrite: cs.SpillWrite, SpillErr: cs.SpillErr,
			Puts: cs.Puts, Evictions: cs.Evictions,
			Computes: cs.Computes, Coalesced: cs.Coalesced,
			BytesInMem: cs.BytesInMem, Entries: cs.Entries,
		}
	}
	return snap
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// handleEvents streams a job's progress as NDJSON: every event already
// recorded is replayed from the start, then the stream follows live
// until the job reaches a terminal state (whose event is the last
// line) or the client disconnects. Each line is one Event; lines flush
// individually so a polling client sees cells as they complete.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, CodeUnknownJob,
			fmt.Sprintf("no job %q", r.PathValue("id")))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	if flusher != nil {
		flusher.Flush() // headers out before the first event lands
	}

	// A disconnected client must not strand this handler inside
	// cond.Wait: wake the job's waiters when the request context dies.
	// The goroutine exits with the request either way.
	ctx := r.Context()
	go func() {
		<-ctx.Done()
		job.wake()
	}()

	enc := json.NewEncoder(w)
	next := 0
	for {
		evs, more := job.eventsFrom(next, ctx.Done())
		for _, ev := range evs {
			if err := enc.Encode(ev); err != nil {
				return // client gone
			}
		}
		if flusher != nil && len(evs) > 0 {
			flusher.Flush()
		}
		next += len(evs)
		if !more || ctx.Err() != nil {
			return
		}
	}
}

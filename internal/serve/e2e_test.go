package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cache"
	"repro/internal/core"
)

// directRun renders cfg through a bare registry Runner — the exact
// bytes the interweave CLI prints for the same invocation (the CLI is
// itself pinned byte-identical to its pre-registry output, so equality
// here is equality with the CLI).
func directRun(t *testing.T, cfg core.RunConfig) []byte {
	t.Helper()
	runner := &core.Runner{}
	tables, _, err := runner.Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatalf("direct run %s: %v", cfg.Experiment, err)
	}
	var buf bytes.Buffer
	for _, tb := range tables {
		fmt.Fprintln(&buf, tb)
	}
	return buf.Bytes()
}

// postJob submits body to ts and decodes the response.
func postJob(t *testing.T, ts *httptest.Server, body string) (int, JobStatus) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if resp.StatusCode == http.StatusAccepted || resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
			t.Fatalf("decode job status: %v", err)
		}
	}
	return resp.StatusCode, st
}

// awaitJob blocks until the job with the given ID reaches a terminal
// state (the in-process done channel — tests in this package need no
// polling loop).
func awaitJob(t *testing.T, s *Server, id string) *Job {
	t.Helper()
	j, ok := s.Job(id)
	if !ok {
		t.Fatalf("job %s vanished", id)
	}
	select {
	case <-j.done:
	case <-time.After(10 * time.Minute):
		t.Fatalf("job %s never finished", id)
	}
	return j
}

// getResult fetches a job's rendered result.
func getResult(t *testing.T, ts *httptest.Server, id string) (int, []byte, http.Header) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("GET result: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read result: %v", err)
	}
	return resp.StatusCode, body, resp.Header
}

// shutdown drains s and fails the test on error.
func shutdown(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestResultByteIdentity submits every registered experiment through
// the HTTP API (as one batch — exercising per-item submission for
// real) and checks each daemon-served result byte-for-byte against the
// registry run directly: the daemon must add nothing to the result
// path. -short trims the multi-second experiments.
func TestResultByteIdentity(t *testing.T) {
	slow := map[string]bool{"fig3": true, "fig7": true, "farmem": true}
	var ids []string
	for _, id := range core.ExperimentIDs() {
		if testing.Short() && slow[id] {
			continue
		}
		ids = append(ids, id)
	}

	// Expected bytes, computed concurrently while the daemon works.
	want := make(map[string][]byte, len(ids))
	var wmu sync.Mutex
	var wg sync.WaitGroup
	for _, id := range ids {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			b := directRun(t, core.DefaultRunConfig(id))
			wmu.Lock()
			want[id] = b
			wmu.Unlock()
		}(id)
	}

	s := New(Options{Workers: len(ids), QueueDepth: len(ids), Cache: cache.New(cache.Config{})})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	var batch BatchRequest
	for _, id := range ids {
		batch.Jobs = append(batch.Jobs, JobConfig{Experiment: id})
	}
	raw, _ := json.Marshal(batch)
	resp, err := http.Post(ts.URL+"/v1/jobs/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST batch: %v", err)
	}
	var br BatchResponse
	if err := json.NewDecoder(resp.Body).Decode(&br); err != nil {
		t.Fatalf("decode batch: %v", err)
	}
	resp.Body.Close()
	if len(br.Items) != len(ids) {
		t.Fatalf("batch returned %d items, want %d", len(br.Items), len(ids))
	}
	for i, item := range br.Items {
		if item.Status != http.StatusAccepted || item.Job == nil {
			t.Fatalf("batch item %d (%s): status %d, job %v", i, ids[i], item.Status, item.Job)
		}
	}
	wg.Wait()

	for i, id := range ids {
		jobID := br.Items[i].Job.ID
		j := awaitJob(t, s, jobID)
		if st, _, _, _, code, msg := j.snapshot(); st != StateDone {
			t.Errorf("%s: state %s (%s: %s), want done", id, st, code, msg)
			continue
		}
		code, body, hdr := getResult(t, ts, jobID)
		if code != http.StatusOK {
			t.Errorf("%s: result status %d", id, code)
			continue
		}
		if !bytes.Equal(body, want[id]) {
			t.Errorf("%s: daemon result differs from CLI (%d vs %d bytes)",
				id, len(body), len(want[id]))
		}
		if hdr.Get("X-Result-Digest") == "" {
			t.Errorf("%s: missing X-Result-Digest", id)
		}
	}
}

// TestDuplicateSubmissionsComputeOnce: N concurrent clients submitting
// the same config coalesce onto one job and one compute — exactly one
// 202, the rest 200 with deduplicated=true, identical result bytes,
// and the cache's compute counter advancing by a single run's worth.
func TestDuplicateSubmissionsComputeOnce(t *testing.T) {
	c := cache.New(cache.Config{})
	s := New(Options{Workers: 4, Cache: c})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	const n = 8
	body := `{"experiment": "blending", "seed": 7}`
	statuses := make([]int, n)
	jobs := make([]JobStatus, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			statuses[i], jobs[i] = postJob(t, ts, body)
		}(i)
	}
	wg.Wait()

	var accepted, deduped int
	for i := 0; i < n; i++ {
		switch statuses[i] {
		case http.StatusAccepted:
			accepted++
		case http.StatusOK:
			deduped++
			if !jobs[i].Deduplicated {
				t.Errorf("client %d: 200 without deduplicated flag", i)
			}
		default:
			t.Errorf("client %d: status %d", i, statuses[i])
		}
		if jobs[i].ID != jobs[0].ID {
			t.Errorf("client %d: job ID %s != %s", i, jobs[i].ID, jobs[0].ID)
		}
	}
	if accepted != 1 || deduped != n-1 {
		t.Errorf("accepted %d, deduped %d; want 1 and %d", accepted, deduped, n-1)
	}

	j := awaitJob(t, s, jobs[0].ID)
	if st, _, _, _, _, _ := j.snapshot(); st != StateDone {
		t.Fatalf("job state %s, want done", st)
	}
	// One driver-tier compute total: the whole batch cost one run.
	if got := c.Stats().Computes; got != 1 {
		t.Errorf("cache computes = %d, want 1 (duplicates must coalesce)", got)
	}
	if counts := s.store.counts(); counts[StateDone] != 1 || len(s.store.all()) != 1 {
		t.Errorf("store counts = %v, want exactly one done job", counts)
	}

	// Every client reads the same bytes.
	_, first, _ := getResult(t, ts, jobs[0].ID)
	if want := directRun(t, jobs[0].Config.RunConfig()); !bytes.Equal(first, want) {
		t.Errorf("deduplicated result differs from direct run")
	}
}

// jamPool occupies every slot of the server's shared cell pool, so any
// running job parks deterministically at its first cell. Returns the
// release function.
func jamPool(s *Server) func() {
	n := s.pool.Workers()
	for i := 0; i < n; i++ {
		s.pool.Acquire()
	}
	return func() {
		for i := 0; i < n; i++ {
			s.pool.Release()
		}
	}
}

// waitRunning polls until the job leaves the queue.
func waitRunning(t *testing.T, j *Job) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if st, _, _, _, _, _ := j.snapshot(); st == StateRunning {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("job %s never started running", j.ID)
}

// TestBackpressure429NeverDeadlocks: with a single worker wedged on a
// jammed cell pool and a depth-1 queue, surplus submissions are
// rejected promptly with 429 + Retry-After — and once the jam clears,
// a retry is admitted and everything drains. The rejection path must
// never block an HTTP handler.
func TestBackpressure429NeverDeadlocks(t *testing.T) {
	s := New(Options{Parallel: 1, Workers: 1, QueueDepth: 1})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := jamPool(s)
	released := false
	defer func() {
		if !released {
			release()
		}
	}()

	// A: picked up by the worker, parks at its first cell.
	code, a := postJob(t, ts, `{"experiment": "carat", "seed": 1}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit A: status %d", code)
	}
	ja, _ := s.Job(a.ID)
	waitRunning(t, ja)

	// B: sits in the queue.
	if code, _ := postJob(t, ts, `{"experiment": "carat", "seed": 2}`); code != http.StatusAccepted {
		t.Fatalf("submit B: status %d", code)
	}

	// C and beyond: queue full — 429, Retry-After, queue_full code, and
	// the handler returns immediately (enforced by the client timeout).
	client := &http.Client{Timeout: 10 * time.Second}
	for i := 0; i < 3; i++ {
		resp, err := client.Post(ts.URL+"/v1/jobs", "application/json",
			strings.NewReader(`{"experiment": "carat", "seed": 3}`))
		if err != nil {
			t.Fatalf("submit C[%d]: %v", i, err)
		}
		if resp.StatusCode != http.StatusTooManyRequests {
			t.Fatalf("submit C[%d]: status %d, want 429", i, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Error("429 without Retry-After")
		}
		var eb errorBody
		if err := json.NewDecoder(resp.Body).Decode(&eb); err != nil || eb.Error.Code != CodeQueueFull {
			t.Errorf("429 body code %q err %v, want %q", eb.Error.Code, err, CodeQueueFull)
		}
		resp.Body.Close()
	}

	release()
	released = true

	// The retry loop a well-behaved client runs: C is eventually admitted.
	deadline := time.Now().Add(time.Minute)
	var cID string
	for {
		code, st := postJob(t, ts, `{"experiment": "carat", "seed": 3}`)
		if code == http.StatusAccepted || code == http.StatusOK {
			cID = st.ID
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("C never admitted after jam cleared")
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, id := range []string{a.ID, cID} {
		j := awaitJob(t, s, id)
		if st, _, _, _, code, msg := j.snapshot(); st != StateDone {
			t.Errorf("job %s: state %s (%s: %s)", id, st, code, msg)
		}
	}
}

// TestCancelMidRunReleasesSlotsAndCache: cancelling a running job
// frees its pool slots, and — because cancellation never aborts a
// compute in flight — leaves the cache uncontaminated: resubmitting
// the identical config replaces the cancelled job under the same ID
// and produces the correct result from a clean compute.
func TestCancelMidRunReleasesSlotsAndCache(t *testing.T) {
	c := cache.New(cache.Config{})
	s := New(Options{Parallel: 1, Workers: 1, Cache: c})
	defer shutdown(t, s)
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	release := jamPool(s)
	code, st := postJob(t, ts, `{"experiment": "carat", "seed": 9}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d", code)
	}
	j, _ := s.Job(st.ID)
	waitRunning(t, j)

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil || resp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE: %v status %d", err, resp.StatusCode)
	}
	resp.Body.Close()

	release() // the parked cell wakes, sees the dead context, and bails
	awaitJob(t, s, st.ID)
	if got, _, _, _, code, _ := j.snapshot(); got != StateCancelled || code != CodeCancelled {
		t.Fatalf("state %s code %s, want cancelled", got, code)
	}

	// Slots all returned: the pool admits a full complement again.
	release2 := jamPool(s)
	release2()
	if ps := s.pool.Stats(); ps.Active != 0 || ps.Blocked != 0 {
		t.Fatalf("pool stats after cancel = %+v, want idle", ps)
	}

	// No cell completed, so nothing may have been cached by the
	// cancelled job.
	if cs := c.Stats(); cs.Puts != 0 {
		t.Fatalf("cache has %d entries after cancelled job, want 0", cs.Puts)
	}

	// Resubmit: same ID, fresh job, correct result.
	code2, st2 := postJob(t, ts, `{"experiment": "carat", "seed": 9}`)
	if code2 != http.StatusAccepted {
		t.Fatalf("resubmit: status %d (cancelled job must not shadow its ID)", code2)
	}
	if st2.ID != st.ID {
		t.Fatalf("resubmit ID %s != %s", st2.ID, st.ID)
	}
	j2 := awaitJob(t, s, st2.ID)
	if got, _, _, _, code, msg := j2.snapshot(); got != StateDone {
		t.Fatalf("resubmit state %s (%s: %s), want done", got, code, msg)
	}
	_, body, _ := getResult(t, ts, st2.ID)
	if want := directRun(t, st2.Config.RunConfig()); !bytes.Equal(body, want) {
		t.Error("post-cancel result differs from direct run")
	}
}

// TestGracefulShutdownDrainsAndLeaksNoGoroutines: Shutdown finishes
// queued and running jobs (no cancellations), refuses new submissions
// with 503, and returns the process to its goroutine baseline — the
// workers, streamers, and watchers all exit.
func TestGracefulShutdownDrainsAndLeaksNoGoroutines(t *testing.T) {
	baseline := runtime.NumGoroutine()

	s := New(Options{Workers: 2, Cache: cache.New(cache.Config{})})
	ts := httptest.NewServer(s.Handler())

	var ids []string
	for seed := 1; seed <= 4; seed++ {
		code, st := postJob(t, ts, fmt.Sprintf(`{"experiment": "blending", "seed": %d}`, seed))
		if code != http.StatusAccepted {
			t.Fatalf("seed %d: status %d", seed, code)
		}
		ids = append(ids, st.ID)
	}

	// A client following one job's events while shutdown happens.
	streamDone := make(chan struct{})
	go func() {
		defer close(streamDone)
		resp, err := http.Get(ts.URL + "/v1/jobs/" + ids[0] + "/events")
		if err != nil {
			return
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()

	shutdown(t, s)

	// Drained, not cancelled.
	for _, id := range ids {
		j, _ := s.Job(id)
		if st, _, _, _, code, msg := j.snapshot(); st != StateDone {
			t.Errorf("job %s after drain: %s (%s: %s), want done", id, st, code, msg)
		}
	}

	// New submissions are refused.
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"experiment": "blending"}`))
	if err != nil {
		t.Fatalf("post-shutdown submit: %v", err)
	}
	var eb errorBody
	_ = json.NewDecoder(resp.Body).Decode(&eb)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || eb.Error.Code != CodeShuttingDown {
		t.Errorf("post-shutdown submit: status %d code %q, want 503 %q",
			resp.StatusCode, eb.Error.Code, CodeShuttingDown)
	}

	<-streamDone
	ts.Close()

	// Goroutine count settles back to the baseline (PR 5 pattern: poll
	// with a deadline; the runtime needs a moment to reap).
	deadline := time.Now().Add(10 * time.Second)
	for runtime.NumGoroutine() > baseline+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if n := runtime.NumGoroutine(); n > baseline+2 {
		buf := make([]byte, 1<<16)
		t.Fatalf("goroutines leaked: %d > baseline %d\n%s",
			n, baseline, buf[:runtime.Stack(buf, true)])
	}
}

// TestChaosReplayByteIdentical: a chaos-armed job replays exactly —
// two daemons with independent caches produce the same terminal
// outcome for the same chaos seed: identical bytes and digest on
// success, or the identical fault on failure. Several seeds are tried
// so the test pins both without depending on which seeds fault.
func TestChaosReplayByteIdentical(t *testing.T) {
	type outcome struct {
		state  State
		digest string
		body   []byte
		code   string
		errMsg string
	}
	runOnce := func(body string) outcome {
		s := New(Options{Workers: 1, Cache: cache.New(cache.Config{})})
		defer shutdown(t, s)
		ts := httptest.NewServer(s.Handler())
		defer ts.Close()
		code, st := postJob(t, ts, body)
		if code != http.StatusAccepted {
			t.Fatalf("chaos submit: status %d", code)
		}
		j := awaitJob(t, s, st.ID)
		state, _, digest, _, ecode, errMsg := j.snapshot()
		out := outcome{state: state, digest: digest, code: ecode, errMsg: errMsg}
		if state == StateDone {
			_, out.body, _ = getResult(t, ts, st.ID)
		}
		return out
	}

	for _, seed := range []uint64{1, 2, 3} {
		body := fmt.Sprintf(`{"experiment": "blending", "chaos_seed": %d}`, seed)
		first := runOnce(body)
		second := runOnce(body)
		if first.state != second.state {
			t.Fatalf("seed %d: states %s vs %s — chaos replay diverged", seed, first.state, second.state)
		}
		switch first.state {
		case StateDone:
			if first.digest != second.digest || !bytes.Equal(first.body, second.body) {
				t.Errorf("seed %d: successful chaos runs differ (digests %s vs %s)",
					seed, first.digest, second.digest)
			}
		case StateFailed:
			if first.code != CodeChaosFault || second.code != CodeChaosFault {
				t.Errorf("seed %d: failure codes %q/%q, want %q",
					seed, first.code, second.code, CodeChaosFault)
			}
			if first.errMsg != second.errMsg {
				t.Errorf("seed %d: fault messages differ:\n  %s\n  %s", seed, first.errMsg, second.errMsg)
			}
		default:
			t.Errorf("seed %d: unexpected terminal state %s", seed, first.state)
		}
	}
}

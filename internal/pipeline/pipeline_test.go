package pipeline

import (
	"testing"

	"repro/internal/model"
)

func TestCompareSpeedupInPaperRange(t *testing.T) {
	// §V-D: pipeline delivery is "100-1000x better" than the ~1000
	// cycle dispatch.
	r := Compare(model.Default(), DefaultConfig())
	if r.SpeedupMean < 100 || r.SpeedupMean > 1000 {
		t.Fatalf("speedup = %.0fx, paper range is 100-1000x", r.SpeedupMean)
	}
	if r.IDT.Mean < 800 || r.IDT.Mean > 1400 {
		t.Fatalf("IDT mean = %.0f, want ≈1000 cycles", r.IDT.Mean)
	}
	if r.Pipeline.Mean > 5 {
		t.Fatalf("pipeline mean = %.1f, want branch-like", r.Pipeline.Mean)
	}
}

func TestIDTSamplesHaveVariance(t *testing.T) {
	r := Compare(model.Default(), DefaultConfig())
	if r.IDT.Std <= 0 {
		t.Fatal("IDT path should show microarchitectural variance")
	}
	if r.IDT.N != DefaultConfig().Samples {
		t.Fatalf("samples = %d", r.IDT.N)
	}
}

func TestPipelineMispredictTail(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MispredictRate = 0.5
	r := Compare(model.Default(), cfg)
	// With heavy conflicts, the mean must rise toward the flush cost.
	if r.Pipeline.Mean <= float64(model.Default().HW.PredictedBranch) {
		t.Fatal("mispredictions not reflected")
	}
	if r.Pipeline.Max < float64(model.Default().HW.MispredictedBranch) {
		t.Fatal("no flush-cost samples observed")
	}
}

func TestZeroMispredictIsConstant(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MispredictRate = 0
	r := Compare(model.Default(), cfg)
	if r.Pipeline.Std != 0 {
		t.Fatal("pure predicted-branch delivery should be constant")
	}
}

func TestMinGranularity(t *testing.T) {
	idt, pipe := MinGranularity(model.Default(), 0.05)
	if idt <= pipe {
		t.Fatal("IDT granularity floor must be coarser")
	}
	ratio := float64(idt) / float64(pipe)
	if ratio < 100 {
		t.Fatalf("granularity improvement = %.0fx, want >= 100x", ratio)
	}
	// Bad budget falls back to 5%.
	idt2, _ := MinGranularity(model.Default(), 0)
	if idt2 != idt {
		t.Fatal("budget fallback wrong")
	}
}

func TestUseCases(t *testing.T) {
	if len(UseCases()) != 3 {
		t.Fatal("use cases list wrong")
	}
}

func TestDeterministic(t *testing.T) {
	a := Compare(model.Default(), DefaultConfig())
	b := Compare(model.Default(), DefaultConfig())
	if a.IDT.Mean != b.IDT.Mean || a.Pipeline.Mean != b.Pipeline.Mean {
		t.Fatal("nondeterministic measurement")
	}
}

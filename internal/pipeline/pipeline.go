// Package pipeline models the paper's proposed hardware extension
// (§V-D): delivering simple interrupts through the branch-prediction
// logic, as if the interrupt were a kind of branch instruction injected
// into instruction fetch, with MSR-based return — instead of the
// ~1000-cycle IDT dispatch path.
//
// The package measures delivery latency distributions under both
// mechanisms on the simulated machine and derives the usable preemption
// granularity each mechanism permits — the paper claims a latency
// "similar to that of a correctly predicted branch instruction,
// 100–1000x better".
package pipeline

import (
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Config parameterizes a measurement.
type Config struct {
	// Samples is the number of interrupt deliveries to measure.
	Samples int
	// MispredictRate is the fraction of pipeline-injected interrupts
	// that arrive while the injection slot conflicts with a real branch
	// (costing a pipeline flush instead of a predicted-branch slot).
	MispredictRate float64
	// IDTSigma is the microarchitectural variance of the IDT path
	// (cold IDT lines, microcode, TLB effects).
	IDTSigma float64
	Seed     uint64
}

// DefaultConfig returns the measurement defaults.
func DefaultConfig() Config {
	return Config{Samples: 10_000, MispredictRate: 0.03, IDTSigma: 80, Seed: 3}
}

// Result summarizes one mechanism comparison.
type Result struct {
	IDT      stats.Summary
	Pipeline stats.Summary
	// SpeedupMean is IDT.Mean / Pipeline.Mean.
	SpeedupMean float64
}

// Compare measures deliver-to-handler-entry latency for both mechanisms.
// The IDT path is exercised on the simulated machine (a CPU running
// work, genuinely preempted); the pipeline path samples the injection
// model (predicted-branch latency with occasional flush conflicts).
func Compare(mdl model.Model, cfg Config) Result {
	idt := measureIDT(mdl, cfg)
	pipe := samplePipeline(mdl, cfg)
	r := Result{IDT: stats.Summarize(idt), Pipeline: stats.Summarize(pipe)}
	if r.Pipeline.Mean > 0 {
		r.SpeedupMean = r.IDT.Mean / r.Pipeline.Mean
	}
	return r
}

// measureIDT raises real interrupts on a machine CPU and measures the
// time from raise to handler entry.
func measureIDT(mdl model.Model, cfg Config) []float64 {
	eng := sim.NewEngine()
	m := machine.New(eng, mdl, machine.Topology{Sockets: 1, CoresPerSocket: 1}, cfg.Seed)
	cpu := m.CPU(0)
	rng := sim.NewRNG(cfg.Seed)
	jitter := sim.Normal{Mu: 0, Sigma: cfg.IDTSigma, Min: -float64(mdl.HW.InterruptDispatch) / 2}

	var samples []float64
	var raisedAt sim.Time
	cpu.SetHandler(machine.VecTimer, func(ctx *machine.IntrContext) {
		lat := float64(eng.Now().Sub(raisedAt)) + jitter.Sample(rng)
		if lat < 1 {
			lat = 1
		}
		samples = append(samples, lat)
		ctx.AddCost(10)
	})
	// Keep the CPU busy forever so deliveries always preempt real work.
	var refill func()
	refill = func() { cpu.Run(1_000_000, refill) }
	refill()

	var raise func()
	n := 0
	raise = func() {
		if n >= cfg.Samples {
			eng.Halt()
			return
		}
		n++
		raisedAt = eng.Now()
		cpu.Raise(machine.VecTimer)
		eng.After(sim.Time(5_000+rng.Intn(200)), raise)
	}
	eng.At(100, raise)
	eng.Run()
	return samples
}

// samplePipeline draws deliveries from the branch-injection model:
// normally a correctly predicted branch; occasionally the injection
// conflicts with in-flight speculation and pays a flush.
func samplePipeline(mdl model.Model, cfg Config) []float64 {
	rng := sim.NewRNG(cfg.Seed ^ 0x9999)
	out := make([]float64, 0, cfg.Samples)
	for i := 0; i < cfg.Samples; i++ {
		lat := float64(mdl.HW.PredictedBranch)
		if rng.Float64() < cfg.MispredictRate {
			lat = float64(mdl.HW.MispredictedBranch)
		}
		out = append(out, lat)
	}
	return out
}

// MinGranularity returns the smallest timer period (cycles) each
// mechanism supports while keeping delivery overhead within budget
// (e.g. 0.05 = 5%): period >= roundTripCost / budget.
func MinGranularity(mdl model.Model, budget float64) (idt, pipe int64) {
	if budget <= 0 {
		budget = 0.05
	}
	idtCost := float64(mdl.HW.InterruptDispatch + mdl.HW.InterruptReturn)
	pipeCost := float64(mdl.HW.PredictedBranch*2 + 2)
	return int64(idtCost / budget), int64(pipeCost / budget)
}

// UseCases lists the interrupt/exception types the paper calls out as
// first candidates, with the vector semantics each would accelerate.
func UseCases() []string {
	return []string{
		"LAPIC timer (on-chip, next to the core): heartbeat and preemption",
		"#MF/#XF instruction exceptions: efficient virtualization of the FP ISA",
		"#GP: transparent far memory and CARAT protection faults",
	}
}

package linux

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func newStack(cpus int, m model.Model) (*sim.Engine, *Stack) {
	eng := sim.NewEngine()
	mach := machine.New(eng, m, machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 11)
	return eng, New(mach, 99)
}

func TestContextSwitchCalibration(t *testing.T) {
	// Fig. 4 caption: "Linux non-real-time thread context switches with
	// FP state take about 5000 cycles on this platform [KNL]".
	_, s := newStack(1, model.KNL())
	fp := s.ContextSwitchCost(true)
	if fp < 4800 || fp > 5200 {
		t.Fatalf("Linux FP switch = %d cycles, want ≈5000", fp)
	}
	noFP := s.ContextSwitchCost(false)
	if noFP >= fp {
		t.Fatal("no-FP switch must be cheaper")
	}
	if fp-noFP != s.Model.HW.FPStateSave+s.Model.HW.FPStateRestore {
		t.Fatal("FP delta mismatch")
	}
}

func TestSyscallAndSignalPathCosts(t *testing.T) {
	_, s := newStack(1, model.Default())
	if s.SyscallCost() != s.Model.Linux.SyscallEntry+s.Model.Linux.SyscallExit {
		t.Fatal("syscall cost composition wrong")
	}
	want := s.Model.HW.InterruptDispatch + s.Model.Linux.SignalDeliver +
		s.Model.Linux.SignalReturn + s.Model.HW.InterruptReturn
	if s.SignalPathCost() != want {
		t.Fatal("signal path composition wrong")
	}
	// The paper's premise: signal delivery is far more expensive than a
	// bare interrupt.
	if s.SignalPathCost() < 2*s.Model.HW.InterruptDispatch {
		t.Fatal("signal path implausibly cheap")
	}
}

func TestEffectivePeriodFloor(t *testing.T) {
	_, s := newStack(1, model.Default())
	floor := s.Model.Linux.MinTimerGranularity
	if s.EffectivePeriod(floor/2) != floor {
		t.Fatal("sub-floor period not clamped")
	}
	if s.EffectivePeriod(floor*3) != floor*3 {
		t.Fatal("above-floor period altered")
	}
}

func TestJitterNonNegativeAndVaries(t *testing.T) {
	_, s := newStack(1, model.Default())
	seen := make(map[int64]bool)
	for i := 0; i < 200; i++ {
		j := s.SampleTimerJitter()
		if j < 0 {
			t.Fatalf("negative jitter %d", j)
		}
		seen[j] = true
	}
	if len(seen) < 20 {
		t.Fatal("jitter implausibly discrete")
	}
}

func TestNoiseHeavyTail(t *testing.T) {
	_, s := newStack(1, model.Default())
	big := 0
	for i := 0; i < 5000; i++ {
		if s.SampleNoise() > 100_000 {
			big++
		}
	}
	if big == 0 {
		t.Fatal("noise has no tail")
	}
	if big > 2500 {
		t.Fatal("noise is all tail; not heavy-tailed")
	}
}

func TestNoiseHitsProbability(t *testing.T) {
	_, s := newStack(1, model.Default())
	every := s.Model.Linux.NoiseEveryC
	hits := 0
	n := 10_000
	for i := 0; i < n; i++ {
		if s.NoiseHits(every / 10) {
			hits++
		}
	}
	frac := float64(hits) / float64(n)
	if frac < 0.05 || frac > 0.15 {
		t.Fatalf("hit fraction %.3f, want ≈0.10", frac)
	}
	if !s.NoiseHits(every * 2) {
		t.Fatal("interval longer than the mean gap must always hit")
	}
}

func TestPacerDeliversAtAchievablePeriod(t *testing.T) {
	eng, s := newStack(8, model.Default())
	p := &HeartbeatPacer{
		S:            s,
		Workers:      []int{1, 2, 3, 4, 5, 6, 7},
		PeriodCycles: 200_000, // well above the floor
		HandlerCost:  500,
	}
	p.Start()
	eng.RunUntil(10_000_000)
	p.Stop()
	for i := range p.Workers {
		got := p.Stats.DeliveredPerCPU[i]
		// ~50 rounds expected; allow jitter and noise losses.
		if got < 30 {
			t.Fatalf("worker %d received %d beats, want ≈50", i, got)
		}
	}
}

func TestPacerCollapsesBelowFloor(t *testing.T) {
	eng, s := newStack(16, model.Default())
	var workers []int
	for i := 1; i < 16; i++ {
		workers = append(workers, i)
	}
	p := &HeartbeatPacer{
		S:            s,
		Workers:      workers,
		PeriodCycles: 20_000, // 20 µs: below the 45 µs kernel floor
		HandlerCost:  500,
	}
	p.Start()
	const horizon = 20_000_000
	eng.RunUntil(horizon)
	p.Stop()
	wantIdeal := float64(horizon) / 20_000
	got := float64(p.Stats.DeliveredPerCPU[0])
	if got > wantIdeal*0.7 {
		t.Fatalf("delivered %.0f of ideal %.0f; sub-floor rate should collapse", got, wantIdeal)
	}
}

func TestPacerJitterVisible(t *testing.T) {
	eng, s := newStack(4, model.Default())
	p := &HeartbeatPacer{
		S:            s,
		Workers:      []int{1, 2, 3},
		PeriodCycles: 150_000,
		HandlerCost:  500,
	}
	p.Start()
	eng.RunUntil(30_000_000)
	p.Stop()
	times := p.Stats.DeliveryTimes[0]
	if len(times) < 10 {
		t.Fatalf("too few deliveries: %d", len(times))
	}
	var gaps []float64
	for i := 1; i < len(times); i++ {
		gaps = append(gaps, float64(times[i].Sub(times[i-1])))
	}
	if cv := stats.CoefVar(gaps); cv < 0.01 {
		t.Fatalf("delivery CV = %.4f; Linux timer jitter must be visible", cv)
	}
}

func TestPacerDeterministic(t *testing.T) {
	run := func() int64 {
		eng, s := newStack(4, model.Default())
		p := &HeartbeatPacer{S: s, Workers: []int{1, 2, 3}, PeriodCycles: 100_000, HandlerCost: 100}
		p.Start()
		eng.RunUntil(5_000_000)
		return p.Stats.SignalsSent
	}
	if run() != run() {
		t.Fatal("pacer nondeterministic")
	}
}

// Package linux models the commodity software stack the paper's systems
// are compared against: a general-purpose kernel with a user/kernel
// boundary, POSIX-signal event delivery, high-resolution timers with
// slack and coalescing, heavy-tailed OS noise, and heavyweight context
// switches.
//
// It is deliberately a *model*, not a kernel: the paper's Linux-side
// numbers (5000-cycle context switches, signal rates that collapse below
// ♥ = 100 µs at 16 CPUs, 13–22% heartbeat scheduling overhead) are
// structural consequences of crossing costs, timer floors, and noise —
// which is exactly what this package parameterizes.
package linux

import (
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// Stack is one simulated Linux instance on a machine.
type Stack struct {
	M     *machine.Machine
	Model model.Model
	rng   *sim.RNG

	noise sim.Dist
}

// New creates a Linux model over machine m.
func New(m *machine.Machine, seed uint64) *Stack {
	lc := m.Model.Linux
	return &Stack{
		M:     m,
		Model: m.Model,
		rng:   sim.NewRNG(seed),
		noise: sim.Pareto{Alpha: lc.NoiseAlpha, Lo: lc.NoiseLo, Hi: lc.NoiseHi},
	}
}

// ContextSwitchCost returns the Linux thread context-switch cost (Fig. 4
// baseline): interrupt entry/exit, register and optional FP state,
// scheduler selection, and general-purpose-kernel baggage.
func (s *Stack) ContextSwitchCost(fp bool) int64 {
	hw, lc := s.Model.HW, s.Model.Linux
	c := hw.InterruptDispatch + hw.InterruptReturn + hw.GPRSaveRestore +
		lc.SchedulerPick + lc.ContextSwitchExtra
	if fp {
		c += hw.FPStateSave + hw.FPStateRestore
	}
	return c
}

// SyscallCost returns one user->kernel->user round trip.
func (s *Stack) SyscallCost() int64 {
	return s.Model.Linux.SyscallEntry + s.Model.Linux.SyscallExit
}

// SignalPathCost returns the cycles a worker pays to receive one signal:
// interrupt entry, kernel signal delivery, user frame setup and
// sigreturn.
func (s *Stack) SignalPathCost() int64 {
	hw, lc := s.Model.HW, s.Model.Linux
	return hw.InterruptDispatch + lc.SignalDeliver + lc.SignalReturn + hw.InterruptReturn
}

// SampleTimerJitter draws the delivery slack of one timer expiration.
func (s *Stack) SampleTimerJitter() int64 {
	j := sim.Normal{Mu: s.Model.Linux.TimerJitterMu, Sigma: s.Model.Linux.TimerJitterSigma, Min: 0}
	return int64(j.Sample(s.rng))
}

// SampleNoise draws one OS-noise episode length (heavy-tailed).
func (s *Stack) SampleNoise() int64 { return int64(s.noise.Sample(s.rng)) }

// NoiseHits reports whether a noise episode interrupts an interval of
// the given length, using the configured mean inter-noise gap.
func (s *Stack) NoiseHits(interval int64) bool {
	every := s.Model.Linux.NoiseEveryC
	if every <= 0 {
		return false
	}
	// Probability interval/every, capped at 1.
	p := float64(interval) / float64(every)
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// EffectivePeriod clamps a requested timer period to the kernel's
// effective floor ("existing software mechanisms in Linux are unable to
// achieve predictably low latencies", §IV-B).
func (s *Stack) EffectivePeriod(period int64) int64 {
	if period < s.Model.Linux.MinTimerGranularity {
		return s.Model.Linux.MinTimerGranularity
	}
	return period
}

// PacerStats summarize a heartbeat pacer run.
type PacerStats struct {
	RoundsStarted   int64
	SignalsSent     int64
	Coalesced       int64 // deliveries dropped because the prior one was pending
	NoiseEpisodes   int64
	DeliveredPerCPU []int64
	DeliveryTimes   [][]sim.Time // per worker CPU, delivery timestamps
	// CoalescedPerCPU replaces Coalesced in sharded mode, where the
	// pending bit lives on the worker's shard and coalescing is decided
	// at delivery; index i counts worker i's collapsed signals.
	CoalescedPerCPU []int64
}

// HeartbeatPacer models TPAL's best available Linux mechanism (Fig. 2,
// right): a pacer thread on CPU 0 wakes on a high-resolution timer and
// signals every worker thread with pthread_kill. Each kill is a syscall
// plus a cross-CPU IPI; deliveries pay the full signal path; pending
// signals coalesce (POSIX semantics: one pending bit per signo).
type HeartbeatPacer struct {
	S       *Stack
	Workers []int // CPU ids of worker threads
	// PeriodCycles is the requested heartbeat period ♥.
	PeriodCycles int64
	// HandlerCost is the user handler work per heartbeat (promotion).
	HandlerCost int64
	// OnBeat is invoked at each delivery on a worker (after costs).
	OnBeat func(worker int, at sim.Time)

	// WorkerQueues, when non-nil, puts the pacer in sharded mode:
	// WorkerQueues[i] is worker i's event shard and PacerQueue is the
	// pacer's own (CPU 0's). The pacer then cannot inspect the workers'
	// pending bits — they are owned by the workers' shards — so every
	// kill is sent, and POSIX coalescing is resolved at delivery on the
	// worker's shard, where the bit actually lives. Delivery crosses
	// shards through CrossAfter; the syscall + IPI floor keeps the delay
	// at or above the engine lookahead.
	WorkerQueues []sim.Queue
	PacerQueue   sim.Queue

	Stats   PacerStats
	pending []bool
	stopped bool
}

// Start begins pacing at the engine's current time and runs until Stop.
func (p *HeartbeatPacer) Start() {
	p.pending = make([]bool, len(p.Workers))
	p.Stats.DeliveredPerCPU = make([]int64, len(p.Workers))
	p.Stats.DeliveryTimes = make([][]sim.Time, len(p.Workers))
	if p.WorkerQueues != nil {
		p.Stats.CoalescedPerCPU = make([]int64, len(p.Workers))
	}
	p.round()
}

// Stop ends pacing after the current round.
func (p *HeartbeatPacer) Stop() { p.stopped = true }

func (p *HeartbeatPacer) round() {
	if p.stopped {
		return
	}
	s := p.S
	eng := s.M.Eng
	p.Stats.RoundsStarted++

	// Sequential pthread_kill to each worker: each costs the pacer a
	// syscall and the kernel an IPI; the delivery lands later.
	var pacerBusy int64
	for i, cpu := range p.Workers {
		i, cpu := i, cpu
		pacerBusy += s.SyscallCost()
		if p.WorkerQueues != nil {
			// Sharded: always send; the worker's shard coalesces.
			p.Stats.SignalsSent++
			deliveryDelay := pacerBusy + s.Model.HW.IPILatency + s.SampleTimerJitter()
			p.PacerQueue.CrossAfter(p.WorkerQueues[i], sim.Time(deliveryDelay), func() {
				p.deliverSharded(i)
			})
			continue
		}
		if p.pending[i] {
			// Previous signal still pending on this worker: POSIX
			// collapses them.
			p.Stats.Coalesced++
			continue
		}
		p.pending[i] = true
		p.Stats.SignalsSent++
		deliveryDelay := pacerBusy + s.Model.HW.IPILatency + s.SampleTimerJitter()
		eng.After(sim.Time(deliveryDelay), func() {
			p.deliver(i, cpu)
		})
	}

	// Next round: timer floor + pacer busy time + timer jitter, plus
	// occasional heavy-tailed noise preempting the pacer itself.
	gap := s.EffectivePeriod(p.PeriodCycles)
	if pacerBusy > gap {
		gap = pacerBusy
	}
	gap += s.SampleTimerJitter()
	if s.NoiseHits(gap) {
		gap += s.SampleNoise()
		p.Stats.NoiseEpisodes++
	}
	if p.WorkerQueues != nil {
		p.PacerQueue.After(sim.Time(gap), p.round)
	} else {
		eng.After(sim.Time(gap), p.round)
	}
}

// deliver executes one signal delivery on a worker CPU.
func (p *HeartbeatPacer) deliver(i, cpu int) {
	s := p.S
	cost := s.SignalPathCost() + p.HandlerCost
	// The worker is interrupted for the duration; we model the cost by
	// occupying the engine and recording the delivery at handler entry.
	at := s.M.Eng.Now()
	p.Stats.DeliveredPerCPU[i]++
	p.Stats.DeliveryTimes[i] = append(p.Stats.DeliveryTimes[i], at)
	if p.OnBeat != nil {
		p.OnBeat(i, at)
	}
	s.M.Eng.After(sim.Time(cost), func() {
		p.pending[i] = false
	})
}

// deliverSharded executes one signal delivery on the worker's own shard:
// a still-pending prior signal collapses the new one (the sharded
// equivalent of the pacer-side skip), otherwise the delivery is recorded
// and the pending bit holds until the handler completes.
func (p *HeartbeatPacer) deliverSharded(i int) {
	if p.pending[i] {
		p.Stats.CoalescedPerCPU[i]++
		return
	}
	p.pending[i] = true
	q := p.WorkerQueues[i]
	at := q.Now()
	p.Stats.DeliveredPerCPU[i]++
	p.Stats.DeliveryTimes[i] = append(p.Stats.DeliveryTimes[i], at)
	if p.OnBeat != nil {
		p.OnBeat(i, at)
	}
	cost := p.S.SignalPathCost() + p.HandlerCost
	q.After(sim.Time(cost), func() {
		p.pending[i] = false
	})
}

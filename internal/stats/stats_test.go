package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
	if m := Mean([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Fatalf("mean = %v", m)
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{1, 100}); !approx(g, 10, 1e-9) {
		t.Fatalf("geomean = %v, want 10", g)
	}
	// Non-positive values are skipped.
	if g := GeoMean([]float64{0, -5, 4, 9}); !approx(g, 6, 1e-9) {
		t.Fatalf("geomean with skips = %v, want 6", g)
	}
	if GeoMean([]float64{0, -1}) != 0 {
		t.Fatal("all-nonpositive geomean should be 0")
	}
}

func TestGeoMeanBetweenMinMaxProperty(t *testing.T) {
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v) + 1 // positive
		}
		g := GeoMean(xs)
		return g >= Min(xs)-1e-9 && g <= Max(xs)+1e-9 && g <= Mean(xs)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestVarianceStd(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if v := Variance(xs); !approx(v, 32.0/7.0, 1e-9) {
		t.Fatalf("variance = %v", v)
	}
	if Variance([]float64{5}) != 0 {
		t.Fatal("single-element variance should be 0")
	}
	if s := StdDev(xs); !approx(s*s, 32.0/7.0, 1e-9) {
		t.Fatalf("stddev = %v", s)
	}
}

func TestCoefVar(t *testing.T) {
	if CoefVar([]float64{5, 5, 5}) != 0 {
		t.Fatal("constant series should have zero CV")
	}
	if CoefVar([]float64{0, 0}) != 0 {
		t.Fatal("zero-mean CV should be 0")
	}
	cv := CoefVar([]float64{90, 110})
	if cv <= 0 || cv > 1 {
		t.Fatalf("cv = %v out of expected range", cv)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if p := Percentile(xs, 0); p != 1 {
		t.Fatalf("p0 = %v", p)
	}
	if p := Percentile(xs, 100); p != 4 {
		t.Fatalf("p100 = %v", p)
	}
	if p := Percentile(xs, 50); !approx(p, 2.5, 1e-9) {
		t.Fatalf("p50 = %v, want 2.5", p)
	}
	if Percentile(nil, 50) != 0 {
		t.Fatal("empty percentile should be 0")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated its input")
	}
}

func TestPercentileMonotoneProperty(t *testing.T) {
	check := func(raw []uint8, a, b uint8) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(v)
		}
		pa := float64(a) / 255 * 100
		pb := float64(b) / 255 * 100
		if pa > pb {
			pa, pb = pb, pa
		}
		return Percentile(xs, pa) <= Percentile(xs, pb)+1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.P50 != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.String() == "" {
		t.Fatal("empty String()")
	}
	empty := Summarize(nil)
	if empty.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for i := 0; i < 100; i++ {
		h.Add(float64(i))
	}
	h.Add(-5)  // under
	h.Add(500) // over
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Count != 102 {
		t.Fatalf("count = %d", h.Count)
	}
	for i, b := range h.Buckets {
		if b != 10 {
			t.Fatalf("bucket %d = %d, want 10", i, b)
		}
	}
	med := h.Quantile(0.5)
	if med < 40 || med > 60 {
		t.Fatalf("median estimate %v out of range", med)
	}
}

func TestHistogramMean(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	h.Add(2)
	h.Add(4)
	if !approx(h.Mean(), 3, 1e-9) {
		t.Fatalf("histogram mean = %v", h.Mean())
	}
	h2 := NewHistogram(0, 10, 5)
	if h2.Mean() != 0 {
		t.Fatal("empty histogram mean should be 0")
	}
}

func TestHistogramInvalidShapePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewHistogram(10, 0, 5)
}

func TestRatio(t *testing.T) {
	if Ratio(10, 4) != 2.5 {
		t.Fatal("ratio wrong")
	}
	if Ratio(1, 0) != 0 {
		t.Fatal("div by zero should return 0")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	if Min(xs) != -1 || Max(xs) != 7 {
		t.Fatalf("min=%v max=%v", Min(xs), Max(xs))
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Fatal("empty min/max should be infinities")
	}
}

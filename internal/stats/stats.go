// Package stats provides the summary statistics used throughout the
// experiment harnesses: means, geometric means (the paper reports geomean
// overheads and speedups), percentiles, histograms, and jitter metrics for
// the heartbeat-rate experiments.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// GeoMean returns the geometric mean of xs. All values must be positive;
// non-positive values are skipped (matching common benchmarking practice
// of excluding failed runs). Returns 0 if no positive values exist.
func GeoMean(xs []float64) float64 {
	s, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			s += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(s / float64(n))
}

// Variance returns the unbiased sample variance of xs (0 if len < 2).
func Variance(xs []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	m := Mean(xs)
	s := 0.0
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(n-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// CoefVar returns the coefficient of variation (stddev/mean), the jitter
// metric used for heartbeat-rate stability. Returns 0 when the mean is 0.
func CoefVar(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return StdDev(xs) / m
}

// Min returns the minimum of xs (+Inf for empty input).
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs (-Inf for empty input).
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using
// linear interpolation between closest ranks. It copies and sorts the
// input. Returns 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return sortedPercentile(s, p)
}

func sortedPercentile(s []float64, p float64) float64 {
	if p <= 0 {
		return s[0]
	}
	if p >= 100 {
		return s[len(s)-1]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Summary is a one-shot description of a sample.
type Summary struct {
	N                  int
	Mean, Std          float64
	Min, P50, P95, P99 float64
	Max                float64
}

// Summarize computes a Summary of xs.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return Summary{
		N:    len(s),
		Mean: Mean(s),
		Std:  StdDev(s),
		Min:  s[0],
		P50:  sortedPercentile(s, 50),
		P95:  sortedPercentile(s, 95),
		P99:  sortedPercentile(s, 99),
		Max:  s[len(s)-1],
	}
}

// String renders the summary compactly for experiment output.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f std=%.2f min=%.2f p50=%.2f p95=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Std, s.Min, s.P50, s.P95, s.P99, s.Max)
}

// Histogram is a fixed-width-bucket histogram over [Lo, Hi). Samples
// outside the range are counted in Under/Over.
type Histogram struct {
	Lo, Hi      float64
	Buckets     []int64
	Under, Over int64
	Count       int64
	Sum         float64
}

// NewHistogram creates a histogram with n buckets spanning [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram shape")
	}
	return &Histogram{Lo: lo, Hi: hi, Buckets: make([]int64, n)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	h.Count++
	h.Sum += x
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.Buckets)))
		if i >= len(h.Buckets) {
			i = len(h.Buckets) - 1
		}
		h.Buckets[i]++
	}
}

// Mean returns the running mean of all added samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile returns an approximate quantile (0..1) from bucket boundaries.
// Under/Over samples map to Lo and Hi respectively.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	target := int64(q * float64(h.Count))
	acc := h.Under
	if acc > target {
		return h.Lo
	}
	w := (h.Hi - h.Lo) / float64(len(h.Buckets))
	for i, c := range h.Buckets {
		if acc+c > target {
			// Interpolate within the bucket.
			frac := float64(target-acc) / float64(c)
			return h.Lo + (float64(i)+frac)*w
		}
		acc += c
	}
	return h.Hi
}

// Ratio returns a/b, or 0 if b is 0; a convenience for speedup tables.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

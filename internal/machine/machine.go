// Package machine implements the simulated hardware substrate: a
// multi-CPU, multi-socket machine with per-CPU preemptible execution,
// local APIC timers, inter-processor interrupts, and two interrupt
// delivery mechanisms — classic IDT dispatch and the paper's proposed
// pipeline (branch-injection) delivery (§V-D).
//
// The machine is a discrete-event model: computation is expressed as
// "run N cycles, then call back", and interrupts genuinely preempt
// in-flight runs, exactly the structure the paper's latency arguments
// depend on. All costs come from internal/model.
package machine

import (
	"fmt"

	"repro/internal/model"
	"repro/internal/sim"
)

// Vector identifies an interrupt vector.
type Vector int

// Conventional vectors used by the simulated kernels.
const (
	VecTimer     Vector = 0x20
	VecIPI       Vector = 0x21
	VecHeartbeat Vector = 0x22
	VecDevice    Vector = 0x30
)

// Delivery selects the interrupt delivery mechanism for a vector.
type Delivery int

const (
	// DeliverIDT is the classic interrupt descriptor table dispatch:
	// ~1000 cycles to the first handler instruction (§V-D).
	DeliverIDT Delivery = iota
	// DeliverPipeline is the paper's proposed branch-injection delivery:
	// the interrupt enters the pipeline as if it were a predicted branch.
	// It is only legal in an interwoven (single privilege level) system.
	DeliverPipeline
)

// Topology describes sockets and cores.
type Topology struct {
	Sockets        int
	CoresPerSocket int
}

// NumCPUs returns the total CPU count.
func (t Topology) NumCPUs() int { return t.Sockets * t.CoresPerSocket }

// IntrContext is passed to interrupt handlers. Handlers mutate simulated
// state immediately and report their execution cost through AddCost.
type IntrContext struct {
	CPU    *CPU
	Vector Vector
	// cost accumulates handler execution cycles.
	cost int64
	// resched requests that, after the handler returns, the kernel's
	// resched hook decide what runs next instead of auto-resuming the
	// preempted work.
	resched bool
}

// AddCost accounts cycles of handler work.
func (c *IntrContext) AddCost(cycles int64) { c.cost += cycles }

// RequestResched asks the kernel layer to make a scheduling decision
// when the handler completes.
func (c *IntrContext) RequestResched() { c.resched = true }

// Handler is an interrupt handler body.
type Handler func(*IntrContext)

// PausedRun describes work that an interrupt preempted.
type PausedRun struct {
	// Remaining is the unexecuted portion of the run, in cycles.
	Remaining int64
	// Done is the original completion callback.
	Done func()
}

// ReschedHook lets a kernel take over after a handler that requested a
// reschedule. It receives the preempted work (nil if the CPU was idle)
// and must arrange all future execution on the CPU; the machine will not
// auto-resume.
type ReschedHook func(cpu *CPU, paused *PausedRun)

// CPUStats accumulates per-CPU accounting.
type CPUStats struct {
	BusyCycles     int64 // cycles spent in Run work
	HandlerCycles  int64 // cycles spent in handler bodies
	DispatchCycles int64 // cycles spent in interrupt entry/exit paths
	Interrupts     int64 // interrupts delivered
	IPIsSent       int64
	IPIsDropped    int64 // IPIs suppressed by the fault hook (chaos)
	Preemptions    int64 // runs preempted by interrupts
}

type pendingIntr struct {
	vec Vector
	at  sim.Time
}

// CPU is one simulated hardware thread.
type CPU struct {
	ID     int
	Socket int

	m *Machine
	// q is the CPU's event shard: all of the CPU's own activity runs on
	// it, and cross-CPU effects (IPIs) go through q.CrossAfter so the
	// sharded engine can advance CPU groups concurrently.
	q     sim.Queue
	shard int

	// Execution state: at most one run in flight.
	running      bool
	runEv        *sim.Event
	runResumedAt sim.Time
	runRemaining int64
	runDone      func()

	// Interrupt state.
	maskCount int
	inHandler bool
	pending   []pendingIntr
	handlers  map[Vector]Handler
	delivery  map[Vector]Delivery
	resched   ReschedHook

	apic *LAPIC

	Stats CPUStats
}

// Machine is the full simulated platform.
type Machine struct {
	Eng   sim.Sim
	Model model.Model
	CPUs  []*CPU
	RNG   *sim.RNG

	// topo is fixed at construction: per-CPU structures are sized from
	// it, so it must never change over the machine's lifetime.
	topo Topology

	// Fault hooks, when non-nil, perturb hardware-level delivery; they
	// are installed by the fault-injection harness (internal/chaos) and
	// must be deterministic functions of their inputs plus harness state.
	//
	// IPIFault is consulted once per IPI destination: returning
	// drop=true suppresses delivery entirely (counted in IPIsDropped),
	// otherwise delay is added to the modeled latency.
	IPIFault func(src, dst int, v Vector) (drop bool, delay int64)
	// TimerFault is consulted every time a LAPIC timer expiry is
	// scheduled; the returned extra cycles stretch that one expiry
	// (jitter). Periodic timers re-draw on every re-arm.
	TimerFault func(cpu int, v Vector, delay int64) int64
}

// New constructs a machine with the given topology and cost model. The
// topology is final: per-CPU structures are sized from it here, and it
// is immutable afterwards (read it back with Topo). The seed fixes all
// stochastic behavior.
//
// The engine may be the sequential sim.Engine or a sim.ShardedEngine;
// with S shards, CPU i lives on shard i*S/n (contiguous CPU blocks),
// and the engine's lookahead must not exceed the model's IPI latency —
// the machine's cross-shard latency floor.
func New(eng sim.Sim, m model.Model, topo Topology, seed uint64) *Machine {
	if topo.Sockets <= 0 || topo.CoresPerSocket <= 0 {
		panic("machine: invalid topology")
	}
	shards := eng.Shards()
	if shards > 1 && int64(eng.Lookahead()) > m.HW.IPILatency {
		panic("machine: engine lookahead exceeds the IPI latency floor")
	}
	mach := &Machine{
		Eng:   eng,
		Model: m,
		topo:  topo,
		RNG:   sim.NewRNG(seed),
	}
	n := topo.NumCPUs()
	mach.CPUs = make([]*CPU, n)
	for i := 0; i < n; i++ {
		shard := i * shards / n
		cpu := &CPU{
			ID:       i,
			Socket:   i / topo.CoresPerSocket,
			m:        mach,
			q:        eng.Queue(shard),
			shard:    shard,
			handlers: make(map[Vector]Handler),
			delivery: make(map[Vector]Delivery),
		}
		cpu.apic = newLAPIC(cpu)
		mach.CPUs[i] = cpu
	}
	return mach
}

// Now returns the current simulated time.
func (m *Machine) Now() sim.Time { return m.Eng.Now() }

// Topo returns the machine's (immutable) topology.
func (m *Machine) Topo() Topology { return m.topo }

// CPU returns the CPU with the given id.
func (m *Machine) CPU(id int) *CPU { return m.CPUs[id] }

// ShardOf returns the event shard CPU id lives on.
func (m *Machine) ShardOf(id int) int { return m.CPUs[id].shard }

// Queue returns the CPU's event shard, for runtimes that schedule their
// own events on the CPU (cross-shard sends must use CrossAfter with a
// delay of at least the machine's IPI latency).
func (c *CPU) Queue() sim.Queue { return c.q }

// APIC returns the CPU's local APIC.
func (c *CPU) APIC() *LAPIC { return c.apic }

// Machine returns the owning machine.
func (c *CPU) Machine() *Machine { return c.m }

// SetHandler installs the handler for a vector.
func (c *CPU) SetHandler(v Vector, h Handler) { c.handlers[v] = h }

// SetDelivery selects the delivery mechanism for a vector on this CPU.
func (c *CPU) SetDelivery(v Vector, d Delivery) { c.delivery[v] = d }

// SetReschedHook installs the kernel's scheduling takeover hook.
func (c *CPU) SetReschedHook(h ReschedHook) { c.resched = h }

// Running reports whether the CPU has a run in flight.
func (c *CPU) Running() bool { return c.running }

// DisableInterrupts masks interrupts (counting; nestable).
func (c *CPU) DisableInterrupts() { c.maskCount++ }

// EnableInterrupts unmasks interrupts and drains any pending ones.
func (c *CPU) EnableInterrupts() {
	if c.maskCount == 0 {
		panic("machine: unbalanced EnableInterrupts")
	}
	c.maskCount--
	if c.maskCount == 0 && !c.inHandler {
		c.drainPending()
	}
}

// InterruptsEnabled reports whether the CPU will accept interrupts now.
func (c *CPU) InterruptsEnabled() bool { return c.maskCount == 0 && !c.inHandler }

// Run executes cycles of work on the CPU, then calls done. The CPU must
// be idle (sequencing is the kernel layer's job). Interrupts can preempt
// the run; preempted work resumes automatically after the handler unless
// the handler requested a reschedule and a hook is installed.
func (c *CPU) Run(cycles int64, done func()) {
	if c.running {
		panic(fmt.Sprintf("machine: CPU %d already running", c.ID))
	}
	if cycles < 0 {
		cycles = 0
	}
	c.startRun(cycles, done)
}

func (c *CPU) startRun(cycles int64, done func()) {
	c.running = true
	c.runRemaining = cycles
	c.runDone = done
	c.runResumedAt = c.q.Now()
	c.runEv = c.q.After(sim.Time(cycles), c.finishRun)
}

func (c *CPU) finishRun() {
	c.Stats.BusyCycles += c.q.Now().Sub(c.runResumedAt)
	done := c.runDone
	c.running = false
	c.runEv = nil
	c.runDone = nil
	c.runRemaining = 0
	if done != nil {
		done()
	}
}

// pauseRun suspends the in-flight run and returns its descriptor.
func (c *CPU) pauseRun() *PausedRun {
	if !c.running {
		return nil
	}
	consumed := c.q.Now().Sub(c.runResumedAt)
	c.Stats.BusyCycles += consumed
	remaining := c.runRemaining - consumed
	if remaining < 0 {
		remaining = 0
	}
	c.runEv.Cancel()
	paused := &PausedRun{Remaining: remaining, Done: c.runDone}
	c.running = false
	c.runEv = nil
	c.runDone = nil
	c.runRemaining = 0
	c.Stats.Preemptions++
	return paused
}

// Resume restarts previously paused work on the CPU.
func (c *CPU) Resume(p *PausedRun) {
	if p == nil {
		return
	}
	c.Run(p.Remaining, p.Done)
}

// Raise delivers an interrupt to this CPU at the current simulated time.
// If the CPU is masked or already in a handler the interrupt is pended
// (x86-like: IF is clear during handlers).
func (c *CPU) Raise(v Vector) {
	if c.maskCount > 0 || c.inHandler {
		c.pending = append(c.pending, pendingIntr{vec: v, at: c.q.Now()})
		return
	}
	c.dispatch(v)
}

func (c *CPU) drainPending() {
	if len(c.pending) == 0 {
		return
	}
	p := c.pending[0]
	c.pending = c.pending[1:]
	c.dispatch(p.vec)
}

// dispatch runs the entry path, handler, and exit path for vector v,
// preempting any in-flight run.
func (c *CPU) dispatch(v Vector) {
	h, ok := c.handlers[v]
	if !ok {
		// Unhandled vectors are dropped, like a masked line.
		return
	}
	paused := c.pauseRun()
	c.inHandler = true
	c.Stats.Interrupts++

	var entry, exit int64
	switch c.delivery[v] {
	case DeliverPipeline:
		// Branch-injection delivery: the interrupt costs about as much
		// as a correctly predicted branch; return is an MSR-mediated
		// jump similar to sysret.
		entry = c.m.Model.HW.PredictedBranch
		exit = c.m.Model.HW.PredictedBranch + 2
	default:
		entry = c.m.Model.HW.InterruptDispatch
		exit = c.m.Model.HW.InterruptReturn
	}
	c.Stats.DispatchCycles += entry + exit

	// Entry path, then handler body, then exit path, then resume.
	c.q.After(sim.Time(entry), func() {
		ctx := &IntrContext{CPU: c, Vector: v}
		h(ctx)
		c.Stats.HandlerCycles += ctx.cost
		c.q.After(sim.Time(ctx.cost+exit), func() {
			c.inHandler = false
			// Deliver pended interrupts before resuming, mirroring
			// hardware that re-checks interrupt lines at iret; then
			// either hand off to the kernel's resched hook or resume
			// the preempted work.
			fin := func() { c.Resume(paused) }
			if ctx.resched && c.resched != nil {
				hook := c.resched
				fin = func() { hook(c, paused) }
			}
			if c.maskCount == 0 && len(c.pending) > 0 {
				c.chainPendingThen(fin)
				return
			}
			fin()
		})
	})
}

// chainPendingThen dispatches all pended interrupts back-to-back, then
// calls fin. Each pended dispatch pays full entry/exit costs.
func (c *CPU) chainPendingThen(fin func()) {
	if len(c.pending) == 0 {
		fin()
		return
	}
	p := c.pending[0]
	c.pending = c.pending[1:]
	h, ok := c.handlers[p.vec]
	if !ok {
		c.chainPendingThen(fin)
		return
	}
	c.inHandler = true
	c.Stats.Interrupts++
	var entry, exit int64
	switch c.delivery[p.vec] {
	case DeliverPipeline:
		entry = c.m.Model.HW.PredictedBranch
		exit = c.m.Model.HW.PredictedBranch + 2
	default:
		entry = c.m.Model.HW.InterruptDispatch
		exit = c.m.Model.HW.InterruptReturn
	}
	c.Stats.DispatchCycles += entry + exit
	c.q.After(sim.Time(entry), func() {
		ctx := &IntrContext{CPU: c, Vector: p.vec}
		h(ctx)
		c.Stats.HandlerCycles += ctx.cost
		c.q.After(sim.Time(ctx.cost+exit), func() {
			c.inHandler = false
			c.chainPendingThen(fin)
		})
	})
}

// SendIPI sends an inter-processor interrupt to dst. The wire event
// always travels at the modeled latency; the fault hook (chaos) is
// consulted at arrival, on the destination's shard — its decision
// streams are keyed per destination CPU, so this keeps every consult on
// the shard that owns the stream while preserving the effective
// delivery time (base latency + injected delay).
func (c *CPU) SendIPI(dst *CPU, v Vector) {
	c.Stats.IPIsSent++
	lat := c.m.Model.HW.IPILatency
	if c.Socket != dst.Socket {
		lat += c.m.Model.Coherence.RemoteSocket
	}
	src := c.ID
	c.q.CrossAfter(dst.q, sim.Time(lat), func() { dst.arriveIPI(src, v) })
}

// arriveIPI completes an IPI on the destination CPU: consult the fault
// hook, then deliver now or after the injected delay. Dropped IPIs are
// accounted to the destination (the CPU that lost the interrupt).
func (c *CPU) arriveIPI(src int, v Vector) {
	if f := c.m.IPIFault; f != nil {
		drop, extra := f(src, c.ID, v)
		if drop {
			c.Stats.IPIsDropped++
			return
		}
		if extra > 0 {
			c.q.After(sim.Time(extra), func() { c.Raise(v) })
			return
		}
	}
	c.Raise(v)
}

// BroadcastIPI sends an IPI to every other CPU. The LAPIC broadcast
// mechanism delivers with a small per-destination skew.
func (c *CPU) BroadcastIPI(v Vector) {
	i := int64(0)
	src := c.ID
	for _, dst := range c.m.CPUs {
		if dst == c {
			continue
		}
		c.Stats.IPIsSent++
		lat := c.m.Model.HW.IPILatency + i*c.m.Model.HW.IPIBroadcastPerCPU
		if c.Socket != dst.Socket {
			lat += c.m.Model.Coherence.RemoteSocket
		}
		i++
		d := dst
		c.q.CrossAfter(d.q, sim.Time(lat), func() { d.arriveIPI(src, v) })
	}
}

package machine

import (
	"testing"
	"testing/quick"

	"repro/internal/model"
	"repro/internal/sim"
)

func newTestMachine(cpus int) (*sim.Engine, *Machine) {
	eng := sim.NewEngine()
	m := New(eng, model.Default(), Topology{Sockets: 1, CoresPerSocket: cpus}, 1)
	return eng, m
}

func TestTopology(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, model.Default(), Topology{Sockets: 2, CoresPerSocket: 4}, 1)
	if len(m.CPUs) != 8 {
		t.Fatalf("cpus = %d", len(m.CPUs))
	}
	if m.CPU(0).Socket != 0 || m.CPU(3).Socket != 0 || m.CPU(4).Socket != 1 || m.CPU(7).Socket != 1 {
		t.Fatal("socket assignment wrong")
	}
}

func TestInvalidTopologyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New(sim.NewEngine(), model.Default(), Topology{}, 1)
}

func TestRunCompletes(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	done := false
	cpu.Run(1000, func() { done = true })
	eng.Run()
	if !done {
		t.Fatal("run did not complete")
	}
	if eng.Now() != 1000 {
		t.Fatalf("clock = %d, want 1000", eng.Now())
	}
	if cpu.Stats.BusyCycles != 1000 {
		t.Fatalf("busy = %d", cpu.Stats.BusyCycles)
	}
}

func TestRunWhileRunningPanics(t *testing.T) {
	_, m := newTestMachine(1)
	cpu := m.CPU(0)
	cpu.Run(100, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	cpu.Run(100, nil)
}

func TestInterruptPreemptsAndResumes(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	handlerAt := sim.Time(-1)
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) {
		handlerAt = eng.Now()
		ctx.AddCost(200)
	})
	var doneAt sim.Time
	cpu.Run(10_000, func() { doneAt = eng.Now() })
	eng.At(3000, func() { cpu.Raise(VecTimer) })
	eng.Run()

	hw := m.Model.HW
	// Handler body starts after the dispatch cost.
	if want := sim.Time(3000 + hw.InterruptDispatch); handlerAt != want {
		t.Fatalf("handler at %d, want %d", handlerAt, want)
	}
	// The run is delayed by the full interrupt path.
	intrCost := hw.InterruptDispatch + 200 + hw.InterruptReturn
	if want := sim.Time(10_000 + intrCost); doneAt != want {
		t.Fatalf("done at %d, want %d", doneAt, want)
	}
	if cpu.Stats.Preemptions != 1 || cpu.Stats.Interrupts != 1 {
		t.Fatalf("stats = %+v", cpu.Stats)
	}
	if cpu.Stats.BusyCycles != 10_000 {
		t.Fatalf("busy = %d, want 10000 (handler time separate)", cpu.Stats.BusyCycles)
	}
	if cpu.Stats.HandlerCycles != 200 {
		t.Fatalf("handler cycles = %d", cpu.Stats.HandlerCycles)
	}
}

func TestPipelineDeliveryIsCheap(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) { ctx.AddCost(10) })
	cpu.SetDelivery(VecTimer, DeliverPipeline)
	var doneAt sim.Time
	cpu.Run(1000, func() { doneAt = eng.Now() })
	eng.At(500, func() { cpu.Raise(VecTimer) })
	eng.Run()
	hw := m.Model.HW
	pipeCost := hw.PredictedBranch + 10 + hw.PredictedBranch + 2
	if want := sim.Time(1000 + pipeCost); doneAt != want {
		t.Fatalf("done at %d, want %d (pipeline delivery)", doneAt, want)
	}
	// Sanity: pipeline delivery is orders of magnitude cheaper than IDT.
	if pipeCost*50 > hw.InterruptDispatch {
		t.Fatalf("pipeline cost %d not ≪ IDT dispatch %d", pipeCost, hw.InterruptDispatch)
	}
}

func TestMaskedInterruptPends(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	fired := sim.Time(-1)
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) { fired = eng.Now() })
	cpu.DisableInterrupts()
	eng.At(100, func() { cpu.Raise(VecTimer) })
	eng.At(5000, func() { cpu.EnableInterrupts() })
	eng.Run()
	if fired < 5000 {
		t.Fatalf("handler ran at %d while masked", fired)
	}
}

func TestUnbalancedEnablePanics(t *testing.T) {
	_, m := newTestMachine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.CPU(0).EnableInterrupts()
}

func TestInterruptDuringHandlerPends(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	var times []sim.Time
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) {
		times = append(times, eng.Now())
		ctx.AddCost(1000)
	})
	eng.At(100, func() { cpu.Raise(VecTimer) })
	// Second interrupt arrives while the first handler is running.
	eng.At(1500, func() { cpu.Raise(VecTimer) })
	eng.Run()
	if len(times) != 2 {
		t.Fatalf("handlers ran %d times, want 2", len(times))
	}
	hw := m.Model.HW
	firstEnd := sim.Time(100 + hw.InterruptDispatch + 1000 + hw.InterruptReturn)
	if times[1] < firstEnd {
		t.Fatalf("second handler at %d overlapped first ending at %d", times[1], firstEnd)
	}
}

func TestReschedHook(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	var captured *PausedRun
	cpu.SetReschedHook(func(c *CPU, paused *PausedRun) { captured = paused })
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) { ctx.RequestResched() })
	origDone := false
	cpu.Run(10_000, func() { origDone = true })
	eng.At(4000, func() { cpu.Raise(VecTimer) })
	eng.Run()
	if origDone {
		t.Fatal("preempted run completed despite resched takeover")
	}
	if captured == nil {
		t.Fatal("resched hook not called")
	}
	if captured.Remaining != 6000 {
		t.Fatalf("remaining = %d, want 6000", captured.Remaining)
	}
	// The kernel can later resume the paused work.
	cpu.Resume(captured)
	eng.Run()
	if !origDone {
		t.Fatal("resumed run did not complete")
	}
}

func TestIPILatency(t *testing.T) {
	eng, m := newTestMachine(2)
	src, dst := m.CPU(0), m.CPU(1)
	var arrival sim.Time
	dst.SetHandler(VecIPI, func(ctx *IntrContext) { arrival = eng.Now() })
	eng.At(100, func() { src.SendIPI(dst, VecIPI) })
	eng.Run()
	hw := m.Model.HW
	if want := sim.Time(100 + hw.IPILatency + hw.InterruptDispatch); arrival != want {
		t.Fatalf("IPI handler at %d, want %d", arrival, want)
	}
	if src.Stats.IPIsSent != 1 {
		t.Fatal("IPI not counted")
	}
}

func TestCrossSocketIPISlower(t *testing.T) {
	eng := sim.NewEngine()
	m := New(eng, model.Default(), Topology{Sockets: 2, CoresPerSocket: 2}, 1)
	var local, remote sim.Time
	m.CPU(1).SetHandler(VecIPI, func(ctx *IntrContext) { local = eng.Now() })
	m.CPU(2).SetHandler(VecIPI, func(ctx *IntrContext) { remote = eng.Now() })
	eng.At(0, func() {
		m.CPU(0).SendIPI(m.CPU(1), VecIPI)
		m.CPU(0).SendIPI(m.CPU(2), VecIPI)
	})
	eng.Run()
	if remote <= local {
		t.Fatalf("cross-socket IPI (%d) not slower than same-socket (%d)", remote, local)
	}
}

func TestBroadcastIPIReachesAll(t *testing.T) {
	eng, m := newTestMachine(8)
	count := 0
	for _, cpu := range m.CPUs[1:] {
		cpu.SetHandler(VecHeartbeat, func(ctx *IntrContext) { count++ })
	}
	eng.At(0, func() { m.CPU(0).BroadcastIPI(VecHeartbeat) })
	eng.Run()
	if count != 7 {
		t.Fatalf("broadcast reached %d CPUs, want 7", count)
	}
}

func TestLAPICOneShot(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	var at sim.Time
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) { at = eng.Now() })
	eng.At(0, func() { cpu.APIC().OneShot(5000, VecTimer) })
	eng.Run()
	if want := sim.Time(5000 + m.Model.HW.InterruptDispatch); at != want {
		t.Fatalf("timer handler at %d, want %d", at, want)
	}
	if cpu.APIC().Armed() {
		t.Fatal("one-shot still armed after firing")
	}
}

func TestLAPICPeriodicStablePeriod(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	var times []sim.Time
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) {
		times = append(times, eng.Now())
		ctx.AddCost(500) // handler time must NOT skew the period
		if len(times) == 10 {
			cpu.APIC().Stop()
		}
	})
	eng.At(0, func() { cpu.APIC().Periodic(10_000, VecTimer) })
	eng.Run()
	if len(times) != 10 {
		t.Fatalf("fired %d times", len(times))
	}
	for i := 1; i < len(times); i++ {
		if d := times[i].Sub(times[i-1]); d != 10_000 {
			t.Fatalf("period %d = %d, want 10000", i, d)
		}
	}
}

func TestLAPICStop(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	fired := 0
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) { fired++ })
	eng.At(0, func() { cpu.APIC().Periodic(1000, VecTimer) })
	eng.At(3500, func() { cpu.APIC().Stop() })
	eng.RunUntil(100_000)
	if fired != 3 {
		t.Fatalf("fired %d times after stop, want 3", fired)
	}
}

func TestIdleInterrupt(t *testing.T) {
	// Interrupting an idle CPU must work (no paused run to resume).
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	ran := false
	cpu.SetHandler(VecDevice, func(ctx *IntrContext) { ran = true })
	eng.At(10, func() { cpu.Raise(VecDevice) })
	eng.Run()
	if !ran {
		t.Fatal("idle interrupt not delivered")
	}
}

func TestUnhandledVectorDropped(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	done := false
	cpu.Run(100, func() { done = true })
	eng.At(50, func() { cpu.Raise(VecDevice) })
	eng.Run()
	if !done {
		t.Fatal("run never completed")
	}
	if cpu.Stats.Interrupts != 0 {
		t.Fatal("unhandled vector counted as delivered")
	}
}

// TestWorkConservationUnderRandomInterrupts: no matter how interrupts
// preempt and delay runs, the CPU executes exactly the requested cycles
// of work, and handler time never leaks into BusyCycles.
func TestWorkConservationUnderRandomInterrupts(t *testing.T) {
	check := func(seed uint64) bool {
		eng := sim.NewEngine()
		m := New(eng, model.Default(), Topology{Sockets: 1, CoresPerSocket: 1}, seed)
		cpu := m.CPU(0)
		rng := sim.NewRNG(seed)
		cpu.SetHandler(VecTimer, func(ctx *IntrContext) {
			ctx.AddCost(int64(rng.Intn(500)))
		})
		var totalWork int64
		var completed int64
		var chain func()
		runs := 0
		chain = func() {
			if runs >= 20 {
				return
			}
			runs++
			w := int64(rng.Intn(5000) + 1)
			totalWork += w
			cpu.Run(w, func() {
				completed += w
				chain()
			})
		}
		chain()
		// Random interrupt storm.
		for i := 0; i < 30; i++ {
			at := sim.Time(rng.Intn(60_000))
			eng.At(at, func() { cpu.Raise(VecTimer) })
		}
		eng.Run()
		return completed == totalWork && cpu.Stats.BusyCycles == totalWork
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestInterruptsDelayButNeverLoseWork: elapsed time grows by exactly the
// interrupt path costs.
func TestInterruptsDelayButNeverLoseWork(t *testing.T) {
	eng, m := newTestMachine(1)
	cpu := m.CPU(0)
	const handlerCost = 300
	n := 0
	cpu.SetHandler(VecTimer, func(ctx *IntrContext) {
		n++
		ctx.AddCost(handlerCost)
	})
	var doneAt sim.Time
	cpu.Run(100_000, func() { doneAt = eng.Now() })
	for i := 1; i <= 5; i++ {
		eng.At(sim.Time(i*10_000), func() { cpu.Raise(VecTimer) })
	}
	eng.Run()
	hw := m.Model.HW
	want := sim.Time(100_000 + 5*(hw.InterruptDispatch+handlerCost+hw.InterruptReturn))
	if doneAt != want {
		t.Fatalf("done at %d, want %d", doneAt, want)
	}
	if n != 5 {
		t.Fatalf("handlers = %d", n)
	}
}

package machine

import "repro/internal/sim"

// LAPIC is the per-CPU local APIC timer. The paper's heartbeat mechanism
// (§IV-B, Fig. 2) arms the LAPIC timer on CPU 0 and broadcasts the
// resulting interrupt to all workers by IPI; the compiler-timing work
// (§IV-C) exists precisely to avoid paying this timer's interrupt
// dispatch cost.
type LAPIC struct {
	cpu *CPU

	armed    bool
	periodic bool
	period   int64
	vector   Vector
	ev       *sim.Event

	// Fired counts timer expirations delivered.
	Fired int64
}

func newLAPIC(cpu *CPU) *LAPIC {
	return &LAPIC{cpu: cpu}
}

// OneShot arms the timer to fire vector v once after delay cycles.
// Programming the timer costs Model.HW.TimerProgram cycles, accounted to
// the dispatch bucket (it is kernel-path work, not application work).
func (l *LAPIC) OneShot(delay int64, v Vector) {
	l.program(delay, v, false)
}

// Periodic arms the timer to fire vector v every period cycles.
func (l *LAPIC) Periodic(period int64, v Vector) {
	if period <= 0 {
		panic("machine: non-positive timer period")
	}
	l.program(period, v, true)
}

func (l *LAPIC) program(delay int64, v Vector, periodic bool) {
	l.Stop()
	l.cpu.Stats.DispatchCycles += l.cpu.m.Model.HW.TimerProgram
	l.armed = true
	l.periodic = periodic
	l.period = delay
	l.vector = v
	l.schedule(delay)
}

func (l *LAPIC) schedule(delay int64) {
	if f := l.cpu.m.TimerFault; f != nil {
		delay += f(l.cpu.ID, l.vector, delay)
	}
	l.ev = l.cpu.q.After(sim.Time(delay), l.fire)
}

func (l *LAPIC) fire() {
	if !l.armed {
		return
	}
	l.Fired++
	if l.periodic {
		// Re-arm before delivery so handler-time does not skew the
		// period: hardware periodic timers count down independently of
		// software.
		l.schedule(l.period)
	} else {
		l.armed = false
		l.ev = nil
	}
	l.cpu.Raise(l.vector)
}

// Stop disarms the timer.
func (l *LAPIC) Stop() {
	if l.ev != nil {
		l.ev.Cancel()
		l.ev = nil
	}
	l.armed = false
}

// Armed reports whether the timer is armed.
func (l *LAPIC) Armed() bool { return l.armed }

package mem

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

// allocator is the surface shared by the fast and reference engines;
// the core allocator tests run against both.
type allocator interface {
	Alloc(n uint64) (Addr, error)
	Free(a Addr) error
	SizeOf(a Addr) (uint64, bool)
	BlockSize(n uint64) uint64
	Base() Addr
	Size() uint64
	LiveAllocs() int
	LargestFree() uint64
	Stats() BuddyStats
	CheckInvariants() error
}

// bothEngines runs test against the fast and the reference allocator.
func bothEngines(t *testing.T, base Addr, size uint64, minOrder uint, test func(t *testing.T, b allocator)) {
	t.Helper()
	t.Run("fast", func(t *testing.T) {
		b, err := NewBuddy(base, size, minOrder)
		if err != nil {
			t.Fatal(err)
		}
		test(t, b)
	})
	t.Run("reference", func(t *testing.T) {
		b, err := NewReferenceBuddy(base, size, minOrder)
		if err != nil {
			t.Fatal(err)
		}
		test(t, b)
	})
}

func TestBuddyBasicAllocFree(t *testing.T) {
	bothEngines(t, 0x1000, 1<<20, 6, func(t *testing.T, b allocator) { // 1 MiB, 64 B min
		a, err := b.Alloc(100)
		if err != nil {
			t.Fatal(err)
		}
		if sz, ok := b.SizeOf(a); !ok || sz != 128 {
			t.Fatalf("block size = %d, want 128", sz)
		}
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
		if st := b.Stats(); st.UsedBytes != 0 || st.FreeBytes != 1<<20 {
			t.Fatalf("used=%d free=%d", st.UsedBytes, st.FreeBytes)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBuddyRejectsNonPow2(t *testing.T) {
	if _, err := NewBuddy(0, 1000, 4); err == nil {
		t.Fatal("expected error for non-power-of-two size")
	}
	if _, err := NewReferenceBuddy(0, 1000, 4); err == nil {
		t.Fatal("expected error for non-power-of-two size")
	}
}

func TestBuddyFullCoalesce(t *testing.T) {
	bothEngines(t, 0, 1<<16, 4, func(t *testing.T, b allocator) {
		var addrs []Addr
		for i := 0; i < 64; i++ {
			a, err := b.Alloc(1 << 10)
			if err != nil {
				t.Fatal(err)
			}
			addrs = append(addrs, a)
		}
		if st := b.Stats(); st.FreeBytes != 0 {
			t.Fatalf("free = %d, want 0", st.FreeBytes)
		}
		for _, a := range addrs {
			if err := b.Free(a); err != nil {
				t.Fatal(err)
			}
		}
		// After freeing everything, the region must coalesce back to one
		// maximal block.
		if got := b.LargestFree(); got != 1<<16 {
			t.Fatalf("largest free = %d, want full region", got)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestBuddyOOM(t *testing.T) {
	bothEngines(t, 0, 1<<12, 4, func(t *testing.T, b allocator) {
		if _, err := b.Alloc(1 << 13); err != ErrOutOfMemory {
			t.Fatalf("err = %v, want OOM", err)
		}
		a, _ := b.Alloc(1 << 12)
		if _, err := b.Alloc(16); err != ErrOutOfMemory {
			t.Fatalf("err = %v, want OOM when full", err)
		}
		_ = b.Free(a)
		if _, err := b.Alloc(16); err != nil {
			t.Fatalf("alloc after free failed: %v", err)
		}
		if st := b.Stats(); st.FailedAllocs != 2 {
			t.Fatalf("FailedAllocs = %d, want 2", st.FailedAllocs)
		}
	})
}

func TestBuddyBadFree(t *testing.T) {
	bothEngines(t, 0, 1<<12, 4, func(t *testing.T, b allocator) {
		if err := b.Free(Addr(64)); err != ErrBadFree {
			t.Fatalf("err = %v, want ErrBadFree", err)
		}
		a, _ := b.Alloc(64)
		_ = b.Free(a)
		if err := b.Free(a); err != ErrBadFree {
			t.Fatalf("double free err = %v, want ErrBadFree", err)
		}
	})
}

func TestBuddyDistinctAddresses(t *testing.T) {
	bothEngines(t, 0, 1<<16, 4, func(t *testing.T, b allocator) {
		seen := make(map[Addr]bool)
		for i := 0; i < 100; i++ {
			a, err := b.Alloc(64)
			if err != nil {
				t.Fatal(err)
			}
			if seen[a] {
				t.Fatalf("address %#x returned twice", a)
			}
			seen[a] = true
		}
	})
}

// TestBuddyRandomWorkload is a property test: under a random alloc/free
// sequence the allocator's invariants always hold and no address overlap
// occurs. It runs against both engines.
func TestBuddyRandomWorkload(t *testing.T) {
	for _, engine := range []string{"fast", "reference"} {
		engine := engine
		t.Run(engine, func(t *testing.T) {
			check := func(seed uint64) bool {
				rng := sim.NewRNG(seed)
				var b allocator
				if engine == "fast" {
					b, _ = NewBuddy(0x4000, 1<<18, 5)
				} else {
					b, _ = NewReferenceBuddy(0x4000, 1<<18, 5)
				}
				type live struct {
					addr Addr
					size uint64
				}
				var lives []live
				for step := 0; step < 500; step++ {
					if rng.Intn(2) == 0 || len(lives) == 0 {
						n := uint64(rng.Intn(4000) + 1)
						a, err := b.Alloc(n)
						if err != nil {
							continue // OOM under pressure is fine
						}
						sz, _ := b.SizeOf(a)
						// Overlap check against all live blocks.
						for _, l := range lives {
							if a < l.addr+Addr(l.size) && l.addr < a+Addr(sz) {
								return false
							}
						}
						lives = append(lives, live{a, sz})
					} else {
						i := rng.Intn(len(lives))
						if err := b.Free(lives[i].addr); err != nil {
							return false
						}
						lives = append(lives[:i], lives[i+1:]...)
					}
				}
				return b.CheckInvariants() == nil
			}
			if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestBuddyZeroAllocHotPath pins the tentpole claim: steady-state Alloc
// and Free on the fast engine perform zero heap allocations.
func TestBuddyZeroAllocHotPath(t *testing.T) {
	b, err := NewBuddy(0, 1<<24, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Warm up: touch the metadata pages the workload will use.
	var warm []Addr
	for i := 0; i < 128; i++ {
		a, err := b.Alloc(1 << 10)
		if err != nil {
			t.Fatal(err)
		}
		warm = append(warm, a)
	}
	for _, a := range warm {
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		a, err := b.Alloc(1 << 10)
		if err != nil {
			t.Fatal(err)
		}
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("Alloc/Free hot path allocates %.1f objects/op, want 0", allocs)
	}
}

// corruptInvariant runs corrupt against a prepared allocator and
// requires CheckInvariants to produce a diagnostic containing want.
func requireDiagnostic(t *testing.T, err error, want string) {
	t.Helper()
	if err == nil {
		t.Fatalf("CheckInvariants passed on corrupted state, want diagnostic containing %q", want)
	}
	if !strings.Contains(err.Error(), want) {
		t.Fatalf("diagnostic = %q, want it to contain %q", err, want)
	}
}

// TestBuddyCheckInvariantsDetectsCorruption is the regression test for
// the free-list/metadata blind spot: hand-corrupted state in either
// direction (list entry not marked free; free-marked block missing from
// its list) must produce a diagnostic, as must accounting drift.
func TestBuddyCheckInvariantsDetectsCorruption(t *testing.T) {
	fresh := func(t *testing.T) *Buddy {
		b, err := NewBuddy(0, 1<<16, 4)
		if err != nil {
			t.Fatal(err)
		}
		// A few allocations so there are split free blocks around,
		// including one on the order-4 (minimum) list.
		for _, n := range []uint64{64, 64, 16} {
			if _, err := b.Alloc(n); err != nil {
				t.Fatal(err)
			}
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("fresh state must be consistent: %v", err)
		}
		return b
	}

	t.Run("list entry not marked free", func(t *testing.T) {
		b := fresh(t)
		// Flip a listed free block's state behind the list's back.
		idx := uint64(b.freeHead[4])
		b.metaAt(idx).state = blockAllocated
		requireDiagnostic(t, b.CheckInvariants(), "not marked free")
	})
	t.Run("free block missing from list", func(t *testing.T) {
		b := fresh(t)
		// Pop the head off the list (mask kept consistent) without
		// clearing the block's free marking.
		idx := uint64(b.freeHead[4])
		e := b.metaAt(idx)
		b.freeHead[4] = e.next
		if e.next != noBlock {
			b.metaAt(uint64(e.next)).prev = noBlock
		} else {
			b.freeMask &^= 1 << 4
		}
		requireDiagnostic(t, b.CheckInvariants(), "absent from its free list")
	})
	t.Run("linkage broken", func(t *testing.T) {
		b := fresh(t)
		idx := uint64(b.freeHead[4])
		b.metaAt(idx).prev = int32(idx)
		requireDiagnostic(t, b.CheckInvariants(), "linkage broken")
	})
	t.Run("accounting drift", func(t *testing.T) {
		b := fresh(t)
		b.FreeBytes += 16
		requireDiagnostic(t, b.CheckInvariants(), "free bytes")
	})
}

// TestReferenceBuddyCheckInvariantsDetectsCorruption closes the same
// blind spot on the reference engine: freeLists and blockFree could
// historically disagree silently.
func TestReferenceBuddyCheckInvariantsDetectsCorruption(t *testing.T) {
	fresh := func(t *testing.T) *ReferenceBuddy {
		b, err := NewReferenceBuddy(0, 1<<16, 4)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := b.Alloc(64); err != nil {
			t.Fatal(err)
		}
		if err := b.CheckInvariants(); err != nil {
			t.Fatalf("fresh state must be consistent: %v", err)
		}
		return b
	}

	t.Run("list entry not in blockFree", func(t *testing.T) {
		b := fresh(t)
		off := b.freeLists[6][0]
		delete(b.blockFree, freeKey(off, 6))
		requireDiagnostic(t, b.CheckInvariants(), "not marked free in blockFree")
	})
	t.Run("blockFree entry not listed", func(t *testing.T) {
		b := fresh(t)
		b.blockFree[freeKey(48, 4)] = true
		requireDiagnostic(t, b.CheckInvariants(), "blockFree marks")
	})
	t.Run("allocated and free", func(t *testing.T) {
		b := fresh(t)
		off := b.freeLists[6][0]
		b.allocated[off] = 6
		// Keep byte accounting consistent so the cross-check fires first.
		b.UsedBytes += 64
		b.FreeBytes -= 64
		requireDiagnostic(t, b.CheckInvariants(), "both allocated and on a free list")
	})
}

func TestNUMAPreferredZone(t *testing.T) {
	n, err := NewNUMA(2, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Alloc(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if z := n.ZoneOf(a); z == nil || z.ID != 1 {
		t.Fatalf("allocation landed in zone %v, want 1", z)
	}
	if err := n.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestNUMAFallback(t *testing.T) {
	n, _ := NewNUMA(2, 1<<12, 4)
	// Exhaust zone 0.
	if _, err := n.Alloc(0, 1<<12); err != nil {
		t.Fatal(err)
	}
	a, err := n.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if z := n.ZoneOf(a); z.ID != 1 {
		t.Fatalf("fallback went to zone %d, want 1", z.ID)
	}
}

func TestNUMADistance(t *testing.T) {
	n, _ := NewNUMA(3, 1<<12, 4)
	if n.Distance(0, 0) != 10 || n.Distance(0, 2) != 21 {
		t.Fatal("distance matrix wrong")
	}
}

func TestNUMABadZone(t *testing.T) {
	n, _ := NewNUMA(1, 1<<12, 4)
	if _, err := n.Alloc(5, 64); err == nil {
		t.Fatal("expected error for bad zone")
	}
	if err := n.Free(Addr(1 << 40)); err != ErrBadFree {
		t.Fatal("expected ErrBadFree for foreign address")
	}
	if _, err := n.AllocOn(0, 5, 64); err == nil {
		t.Fatal("expected error for bad zone via AllocOn")
	}
	if err := n.FreeOn(0, Addr(1<<40)); err != ErrBadFree {
		t.Fatal("expected ErrBadFree for foreign address via FreeOn")
	}
}

// TestNUMAAllocOn exercises the cached allocation path: locality to the
// preferred zone, distance-ordered fallback, and FreeOn routing.
func TestNUMAAllocOn(t *testing.T) {
	n, err := NewNUMA(2, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.AttachCaches(4, 8); err != nil {
		t.Fatal(err)
	}
	a, err := n.AllocOn(2, 1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if z := n.ZoneOf(a); z == nil || z.ID != 1 {
		t.Fatalf("allocation landed in zone %v, want 1", z)
	}
	if err := n.FreeOn(2, a); err != nil {
		t.Fatal(err)
	}
	// Exhaust zone 0 through the cache; the next allocation must fall
	// back to zone 1.
	var held []Addr
	for {
		a, err := n.AllocOn(0, 0, 1<<12)
		if err != nil {
			t.Fatal(err)
		}
		if n.ZoneOf(a).ID != 0 {
			held = append(held, a)
			break
		}
		held = append(held, a)
	}
	for _, a := range held {
		if err := n.FreeOn(0, a); err != nil {
			t.Fatal(err)
		}
	}
	for _, z := range n.Zones {
		if err := z.Cache.Drain(); err != nil {
			t.Fatal(err)
		}
		if z.Buddy.LiveAllocs() != 0 {
			t.Fatalf("zone %d leaks %d blocks after drain", z.ID, z.Buddy.LiveAllocs())
		}
		if err := z.Buddy.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(16, 4, 12)
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("cold access hit")
	}
	if !tlb.Access(Addr(0x1008)) {
		t.Fatal("same-page access missed")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4, 2, 12)
	tlb.Access(Addr(0x1000))
	tlb.Flush()
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("hit after flush")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	// 1 set, 2 ways: third distinct page evicts the least recently used.
	tlb := NewTLB(1, 2, 12)
	tlb.Access(Addr(0x0000)) // page 0
	tlb.Access(Addr(0x1000)) // page 1
	tlb.Access(Addr(0x0000)) // touch page 0 (page 1 is now LRU)
	tlb.Access(Addr(0x2000)) // page 2 evicts page 1
	if !tlb.Access(Addr(0x0000)) {
		t.Fatal("page 0 evicted despite being MRU")
	}
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("page 1 should have been evicted")
	}
}

// TestTLBReachProperty encodes the paper's §III claim: with large pages
// whose total reach covers the working set, misses stop entirely after
// warm-up; with 4K pages over the same working set, they do not.
func TestTLBReachProperty(t *testing.T) {
	const workingSet = 64 << 20 // 64 MiB
	// 2 MiB pages, 64 entries -> 128 MiB reach: covers the set.
	large := NewTLB(16, 4, 21)
	if large.Reach() < workingSet {
		t.Fatal("test geometry wrong")
	}
	// 4 KiB pages, 64 entries -> 256 KiB reach: far too small.
	small := NewTLB(16, 4, 12)

	rng := sim.NewRNG(99)
	var addrs []Addr
	for i := 0; i < 50_000; i++ {
		addrs = append(addrs, Addr(rng.Int63n(workingSet)))
	}
	// Warm-up pass.
	for _, a := range addrs {
		large.Access(a)
		small.Access(a)
	}
	largeWarmMisses := large.Misses
	smallWarmMisses := small.Misses
	// Steady-state pass over the same stream.
	for _, a := range addrs {
		large.Access(a)
		small.Access(a)
	}
	if large.Misses != largeWarmMisses {
		t.Fatalf("large-page TLB missed %d times after warm-up; paper property violated",
			large.Misses-largeWarmMisses)
	}
	if small.Misses == smallWarmMisses {
		t.Fatal("4K TLB implausibly stopped missing")
	}
}

func TestPagingCostModes(t *testing.T) {
	walk, fault := int64(220), int64(4000)

	none := NewPagingCost(PagingNone, nil, walk, fault)
	if c := none.Access(Addr(0x123456)); c != 0 {
		t.Fatalf("PagingNone cost = %d", c)
	}

	ident := NewPagingCost(PagingIdentityLarge, NewTLB(16, 4, 30), walk, fault)
	first := ident.Access(Addr(0x1000))
	second := ident.Access(Addr(0x2000)) // same 1 GiB page
	if first != walk || second != 0 {
		t.Fatalf("identity costs = %d,%d", first, second)
	}
	if ident.Faults != 0 {
		t.Fatal("identity mapping must never fault")
	}

	demand := NewPagingCost(PagingDemand4K, NewTLB(16, 4, 12), walk, fault)
	c1 := demand.Access(Addr(0x1000))
	if c1 != walk+fault {
		t.Fatalf("first touch cost = %d, want %d", c1, walk+fault)
	}
	c2 := demand.Access(Addr(0x1000))
	if c2 != 0 {
		t.Fatalf("warm access cost = %d", c2)
	}
	if demand.Faults != 1 {
		t.Fatalf("faults = %d", demand.Faults)
	}
}

func TestTLBInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTLB(0, 1, 12)
}

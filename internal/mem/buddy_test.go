package mem

import (
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestBuddyBasicAllocFree(t *testing.T) {
	b, err := NewBuddy(0x1000, 1<<20, 6) // 1 MiB, 64 B min
	if err != nil {
		t.Fatal(err)
	}
	a, err := b.Alloc(100)
	if err != nil {
		t.Fatal(err)
	}
	if sz, ok := b.SizeOf(a); !ok || sz != 128 {
		t.Fatalf("block size = %d, want 128", sz)
	}
	if err := b.Free(a); err != nil {
		t.Fatal(err)
	}
	if b.UsedBytes != 0 || b.FreeBytes != 1<<20 {
		t.Fatalf("used=%d free=%d", b.UsedBytes, b.FreeBytes)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyRejectsNonPow2(t *testing.T) {
	if _, err := NewBuddy(0, 1000, 4); err == nil {
		t.Fatal("expected error for non-power-of-two size")
	}
}

func TestBuddyFullCoalesce(t *testing.T) {
	b, _ := NewBuddy(0, 1<<16, 4)
	var addrs []Addr
	for i := 0; i < 64; i++ {
		a, err := b.Alloc(1 << 10)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	if b.FreeBytes != 0 {
		t.Fatalf("free = %d, want 0", b.FreeBytes)
	}
	for _, a := range addrs {
		if err := b.Free(a); err != nil {
			t.Fatal(err)
		}
	}
	// After freeing everything, the region must coalesce back to one
	// maximal block.
	if got := b.LargestFree(); got != 1<<16 {
		t.Fatalf("largest free = %d, want full region", got)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBuddyOOM(t *testing.T) {
	b, _ := NewBuddy(0, 1<<12, 4)
	if _, err := b.Alloc(1 << 13); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want OOM", err)
	}
	a, _ := b.Alloc(1 << 12)
	if _, err := b.Alloc(16); err != ErrOutOfMemory {
		t.Fatalf("err = %v, want OOM when full", err)
	}
	_ = b.Free(a)
	if _, err := b.Alloc(16); err != nil {
		t.Fatalf("alloc after free failed: %v", err)
	}
}

func TestBuddyBadFree(t *testing.T) {
	b, _ := NewBuddy(0, 1<<12, 4)
	if err := b.Free(Addr(64)); err != ErrBadFree {
		t.Fatalf("err = %v, want ErrBadFree", err)
	}
	a, _ := b.Alloc(64)
	_ = b.Free(a)
	if err := b.Free(a); err != ErrBadFree {
		t.Fatalf("double free err = %v, want ErrBadFree", err)
	}
}

func TestBuddyDistinctAddresses(t *testing.T) {
	b, _ := NewBuddy(0, 1<<16, 4)
	seen := make(map[Addr]bool)
	for i := 0; i < 100; i++ {
		a, err := b.Alloc(64)
		if err != nil {
			t.Fatal(err)
		}
		if seen[a] {
			t.Fatalf("address %#x returned twice", a)
		}
		seen[a] = true
	}
}

// TestBuddyRandomWorkload is a property test: under a random alloc/free
// sequence the allocator's invariants always hold and no address overlap
// occurs.
func TestBuddyRandomWorkload(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		b, _ := NewBuddy(0x4000, 1<<18, 5)
		type live struct {
			addr Addr
			size uint64
		}
		var lives []live
		for step := 0; step < 500; step++ {
			if rng.Intn(2) == 0 || len(lives) == 0 {
				n := uint64(rng.Intn(4000) + 1)
				a, err := b.Alloc(n)
				if err != nil {
					continue // OOM under pressure is fine
				}
				sz, _ := b.SizeOf(a)
				// Overlap check against all live blocks.
				for _, l := range lives {
					if a < l.addr+Addr(l.size) && l.addr < a+Addr(sz) {
						return false
					}
				}
				lives = append(lives, live{a, sz})
			} else {
				i := rng.Intn(len(lives))
				if err := b.Free(lives[i].addr); err != nil {
					return false
				}
				lives = append(lives[:i], lives[i+1:]...)
			}
		}
		return b.CheckInvariants() == nil
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNUMAPreferredZone(t *testing.T) {
	n, err := NewNUMA(2, 1<<16, 4)
	if err != nil {
		t.Fatal(err)
	}
	a, err := n.Alloc(1, 128)
	if err != nil {
		t.Fatal(err)
	}
	if z := n.ZoneOf(a); z == nil || z.ID != 1 {
		t.Fatalf("allocation landed in zone %v, want 1", z)
	}
	if err := n.Free(a); err != nil {
		t.Fatal(err)
	}
}

func TestNUMAFallback(t *testing.T) {
	n, _ := NewNUMA(2, 1<<12, 4)
	// Exhaust zone 0.
	if _, err := n.Alloc(0, 1<<12); err != nil {
		t.Fatal(err)
	}
	a, err := n.Alloc(0, 64)
	if err != nil {
		t.Fatal(err)
	}
	if z := n.ZoneOf(a); z.ID != 1 {
		t.Fatalf("fallback went to zone %d, want 1", z.ID)
	}
}

func TestNUMADistance(t *testing.T) {
	n, _ := NewNUMA(3, 1<<12, 4)
	if n.Distance(0, 0) != 10 || n.Distance(0, 2) != 21 {
		t.Fatal("distance matrix wrong")
	}
}

func TestNUMABadZone(t *testing.T) {
	n, _ := NewNUMA(1, 1<<12, 4)
	if _, err := n.Alloc(5, 64); err == nil {
		t.Fatal("expected error for bad zone")
	}
	if err := n.Free(Addr(1 << 40)); err != ErrBadFree {
		t.Fatal("expected ErrBadFree for foreign address")
	}
}

func TestTLBHitMiss(t *testing.T) {
	tlb := NewTLB(16, 4, 12)
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("cold access hit")
	}
	if !tlb.Access(Addr(0x1008)) {
		t.Fatal("same-page access missed")
	}
	if tlb.Hits != 1 || tlb.Misses != 1 {
		t.Fatalf("hits=%d misses=%d", tlb.Hits, tlb.Misses)
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4, 2, 12)
	tlb.Access(Addr(0x1000))
	tlb.Flush()
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("hit after flush")
	}
}

func TestTLBLRUEviction(t *testing.T) {
	// 1 set, 2 ways: third distinct page evicts the least recently used.
	tlb := NewTLB(1, 2, 12)
	tlb.Access(Addr(0x0000)) // page 0
	tlb.Access(Addr(0x1000)) // page 1
	tlb.Access(Addr(0x0000)) // touch page 0 (page 1 is now LRU)
	tlb.Access(Addr(0x2000)) // page 2 evicts page 1
	if !tlb.Access(Addr(0x0000)) {
		t.Fatal("page 0 evicted despite being MRU")
	}
	if tlb.Access(Addr(0x1000)) {
		t.Fatal("page 1 should have been evicted")
	}
}

// TestTLBReachProperty encodes the paper's §III claim: with large pages
// whose total reach covers the working set, misses stop entirely after
// warm-up; with 4K pages over the same working set, they do not.
func TestTLBReachProperty(t *testing.T) {
	const workingSet = 64 << 20 // 64 MiB
	// 2 MiB pages, 64 entries -> 128 MiB reach: covers the set.
	large := NewTLB(16, 4, 21)
	if large.Reach() < workingSet {
		t.Fatal("test geometry wrong")
	}
	// 4 KiB pages, 64 entries -> 256 KiB reach: far too small.
	small := NewTLB(16, 4, 12)

	rng := sim.NewRNG(99)
	var addrs []Addr
	for i := 0; i < 50_000; i++ {
		addrs = append(addrs, Addr(rng.Int63n(workingSet)))
	}
	// Warm-up pass.
	for _, a := range addrs {
		large.Access(a)
		small.Access(a)
	}
	largeWarmMisses := large.Misses
	smallWarmMisses := small.Misses
	// Steady-state pass over the same stream.
	for _, a := range addrs {
		large.Access(a)
		small.Access(a)
	}
	if large.Misses != largeWarmMisses {
		t.Fatalf("large-page TLB missed %d times after warm-up; paper property violated",
			large.Misses-largeWarmMisses)
	}
	if small.Misses == smallWarmMisses {
		t.Fatal("4K TLB implausibly stopped missing")
	}
}

func TestPagingCostModes(t *testing.T) {
	walk, fault := int64(220), int64(4000)

	none := NewPagingCost(PagingNone, nil, walk, fault)
	if c := none.Access(Addr(0x123456)); c != 0 {
		t.Fatalf("PagingNone cost = %d", c)
	}

	ident := NewPagingCost(PagingIdentityLarge, NewTLB(16, 4, 30), walk, fault)
	first := ident.Access(Addr(0x1000))
	second := ident.Access(Addr(0x2000)) // same 1 GiB page
	if first != walk || second != 0 {
		t.Fatalf("identity costs = %d,%d", first, second)
	}
	if ident.Faults != 0 {
		t.Fatal("identity mapping must never fault")
	}

	demand := NewPagingCost(PagingDemand4K, NewTLB(16, 4, 12), walk, fault)
	c1 := demand.Access(Addr(0x1000))
	if c1 != walk+fault {
		t.Fatalf("first touch cost = %d, want %d", c1, walk+fault)
	}
	c2 := demand.Access(Addr(0x1000))
	if c2 != 0 {
		t.Fatalf("warm access cost = %d", c2)
	}
	if demand.Faults != 1 {
		t.Fatalf("faults = %d", demand.Faults)
	}
}

func TestTLBInvalidGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewTLB(0, 1, 12)
}

package mem

import (
	"encoding/binary"
	"testing"
)

// FuzzBuddyVsReference drives the fast intrusive Buddy and the map-based
// ReferenceBuddy with the same operation trace decoded from the fuzz
// input, and requires them to be indistinguishable: identical addresses
// and errors from every Alloc, identical errors from every Free
// (including deliberately wild frees), identical SizeOf/LargestFree/
// LiveAllocs answers, identical stats counters, and clean invariants on
// both engines after every operation.
//
// Address-for-address equality is the strong claim: the fast engine's
// free lists must reproduce the reference's swap-with-last slice
// discipline exactly, because the paging experiment feeds buddy
// addresses into the TLB model and expects identical output.
func FuzzBuddyVsReference(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x00, 0x01, 0x00, 0x00, 0x10, 0x02, 0x00})
	// Alternating allocs and frees with varied sizes.
	f.Add([]byte{
		0x00, 0xff, 0x03, 0x00, 0x40, 0x01, 0x00,
		0x00, 0x05, 0x00, 0x00, 0x00, 0x02, 0x03,
		0x01, 0x00, 0x01, 0x01, 0x00, 0x02,
	})
	// Oversized and zero-byte requests.
	f.Add([]byte{0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff})

	f.Fuzz(func(t *testing.T, data []byte) {
		fast, err := NewBuddy(0x4000, 1<<18, 5)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewReferenceBuddy(0x4000, 1<<18, 5)
		if err != nil {
			t.Fatal(err)
		}
		var live []Addr

		step := func(opIdx int) {
			if fe, re := fast.CheckInvariants(), ref.CheckInvariants(); fe != nil || re != nil {
				t.Fatalf("op %d: invariants fast=%v reference=%v", opIdx, fe, re)
			}
			fs, rs := fast.Stats(), ref.Stats()
			if fs != rs {
				t.Fatalf("op %d: stats diverge\nfast      %+v\nreference %+v", opIdx, fs, rs)
			}
			if fast.LargestFree() != ref.LargestFree() {
				t.Fatalf("op %d: LargestFree %d != %d", opIdx, fast.LargestFree(), ref.LargestFree())
			}
			if fast.LiveAllocs() != ref.LiveAllocs() {
				t.Fatalf("op %d: LiveAllocs %d != %d", opIdx, fast.LiveAllocs(), ref.LiveAllocs())
			}
		}

		for op := 0; len(data) > 0; op++ {
			code := data[0]
			data = data[1:]
			switch code % 3 {
			case 0: // alloc: next 1-6 bytes give the request size
				nb := 1 + int(code/3)%6
				if nb > len(data) {
					nb = len(data)
				}
				var buf [8]byte
				copy(buf[:], data[:nb])
				data = data[nb:]
				n := binary.LittleEndian.Uint64(buf[:])
				fa, fe := fast.Alloc(n)
				ra, re := ref.Alloc(n)
				if fe != re {
					t.Fatalf("op %d: Alloc(%d) err fast=%v reference=%v", op, n, fe, re)
				}
				if fe == nil {
					if fa != ra {
						t.Fatalf("op %d: Alloc(%d) addr fast=%#x reference=%#x", op, n, fa, ra)
					}
					fsz, fok := fast.SizeOf(fa)
					rsz, rok := ref.SizeOf(ra)
					if fok != rok || fsz != rsz {
						t.Fatalf("op %d: SizeOf(%#x) fast=(%d,%v) reference=(%d,%v)", op, fa, fsz, fok, rsz, rok)
					}
					live = append(live, fa)
				}
			case 1: // free a live block chosen by the next byte
				if len(live) == 0 || len(data) == 0 {
					continue
				}
				i := int(data[0]) % len(live)
				data = data[1:]
				a := live[i]
				fe := fast.Free(a)
				re := ref.Free(a)
				if fe != re {
					t.Fatalf("op %d: Free(%#x) err fast=%v reference=%v", op, a, fe, re)
				}
				live[i] = live[len(live)-1]
				live = live[:len(live)-1]
			case 2: // wild free: misaligned / out-of-range / double frees
				if len(data) < 2 {
					continue
				}
				a := Addr(binary.LittleEndian.Uint16(data[:2]))
				data = data[2:]
				fe := fast.Free(a)
				re := ref.Free(a)
				if fe != re {
					t.Fatalf("op %d: wild Free(%#x) err fast=%v reference=%v", op, a, fe, re)
				}
				if fe == nil {
					// A wild free that legitimately hit a live block:
					// drop it from the shadow set.
					for i, l := range live {
						if l == a {
							live[i] = live[len(live)-1]
							live = live[:len(live)-1]
							break
						}
					}
				}
			}
			step(op)
		}

		// Tear down through both engines and require full coalescing.
		for _, a := range live {
			fe := fast.Free(a)
			re := ref.Free(a)
			if fe != nil || re != nil {
				t.Fatalf("teardown Free(%#x): fast=%v reference=%v", a, fe, re)
			}
		}
		step(-1)
		if got := fast.LargestFree(); got != 1<<18 {
			t.Fatalf("after teardown largest free = %d, want full region", got)
		}
	})
}

package mem

import (
	"fmt"
	"sync"
)

// Per-allocation order bookkeeping for the cache's unlocked free path
// lives in fixed-size pages under a table sized at NewCPUCache, so the
// table itself is never reallocated and entries are written only under
// the zone lock (at refill/bypass time, before the address escapes).
const (
	orderPageBits = 12
	orderPageLen  = 1 << orderPageBits
	orderPageMask = orderPageLen - 1
)

// CPUCacheStats accounts one CPU's traffic through the magazine layer.
type CPUCacheStats struct {
	Allocs   uint64 // AllocOn calls
	Frees    uint64 // FreeOn calls
	Hits     uint64 // allocations served from the local magazine
	Misses   uint64 // allocations that had to touch the shared zone
	Refills  uint64 // batched magazine refills from the zone
	Flushes  uint64 // batched magazine flushes back to the zone
	Bypasses uint64 // requests too large for magazines (direct zone ops)
}

// Add accumulates o into s.
func (s *CPUCacheStats) Add(o CPUCacheStats) {
	s.Allocs += o.Allocs
	s.Frees += o.Frees
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Refills += o.Refills
	s.Flushes += o.Flushes
	s.Bypasses += o.Bypasses
}

// HitRate returns the fraction of AllocOn calls served without touching
// the shared zone.
func (s CPUCacheStats) HitRate() float64 {
	if s.Allocs == 0 {
		return 0
	}
	return float64(s.Hits) / float64(s.Allocs)
}

// cpuMag is one CPU's private magazine set: a LIFO stack of cached
// blocks per size class. Padding keeps neighboring CPUs' hot state off
// each other's cache lines.
type cpuMag struct {
	mags  [][]Addr
	stats CPUCacheStats
	_     [64]byte
}

// CPUCache is a concurrent per-CPU magazine front-end over one shared
// zone Buddy, the partitioned-caching design kernel allocators use so
// many cores can hammer one NUMA zone: each CPU keeps small per-size
// magazines of blocks it can allocate from and free to with no locking
// at all, refilled from and flushed to the shared buddy in batches under
// the per-zone mutex.
//
// Contract: cpu identifies the caller's CPU, and concurrent callers must
// pass distinct cpu values (per-CPU state is unsynchronized by design,
// exactly like a kernel's per-CPU data). A zone with an attached cache
// must be allocated from and freed to only through the cache. FreeOn
// requires the usual Go happens-before edge between the goroutine that
// obtained the address and the one freeing it — true of any correct
// hand-off. Double frees into a magazine are detected lazily, at the
// flush or Drain that returns the block to the zone.
type CPUCache struct {
	mu   sync.Mutex // guards zone and orderPages writes
	zone *Buddy

	// Inject, when non-nil, is consulted at the top of AllocOn — on the
	// caller's goroutine, with its cpu, before the magazine fast path —
	// so fault injection covers magazine hits as well as refills. A
	// non-nil return fails the allocation with that error. The hook runs
	// outside the zone lock; injectors that inspect the zone must go
	// through ZoneStats or attach at the Buddy instead.
	Inject func(cpu int, n uint64) error

	magCap      int  // per-CPU per-class magazine capacity
	maxMagOrder uint // orders above this bypass the magazines

	orderPages [][]uint8

	cpus []cpuMag
}

// DefaultMagazineCap is the per-CPU per-size-class magazine capacity
// used when NewCPUCache is given magCap <= 0.
const DefaultMagazineCap = 32

// magOrderSpan bounds how many size classes (starting at the zone's min
// order) the magazines cache; larger blocks are rare and go straight to
// the zone under the lock.
const magOrderSpan = 10

// NewCPUCache builds a magazine front-end over zone for cpus CPUs.
// magCap <= 0 selects DefaultMagazineCap.
func NewCPUCache(zone *Buddy, cpus int, magCap int) (*CPUCache, error) {
	if cpus <= 0 {
		return nil, fmt.Errorf("mem: cpu cache needs at least one CPU")
	}
	if magCap <= 0 {
		magCap = DefaultMagazineCap
	}
	maxMag := zone.minOrder + magOrderSpan - 1
	if maxMag > zone.maxOrder {
		maxMag = zone.maxOrder
	}
	nIdx := zone.size >> zone.minOrder
	c := &CPUCache{
		zone:        zone,
		magCap:      magCap,
		maxMagOrder: maxMag,
		orderPages:  make([][]uint8, (nIdx+orderPageLen-1)/orderPageLen),
		cpus:        make([]cpuMag, cpus),
	}
	classes := int(maxMag - zone.minOrder + 1)
	for i := range c.cpus {
		mags := make([][]Addr, classes)
		for j := range mags {
			mags[j] = make([]Addr, 0, magCap)
		}
		c.cpus[i].mags = mags
	}
	return c, nil
}

// Zone returns the shared buddy behind the cache. Callers must hold no
// blocks' fate in their hands: direct zone mutation bypasses the cache's
// bookkeeping and violates its contract.
func (c *CPUCache) Zone() *Buddy { return c.zone }

// setOrder records the order of a live allocation. Caller holds c.mu.
func (c *CPUCache) setOrder(a Addr, order uint) {
	idx := uint64(a-c.zone.base) >> c.zone.minOrder
	pi := idx >> orderPageBits
	pg := c.orderPages[pi]
	if pg == nil {
		pg = make([]uint8, orderPageLen)
		c.orderPages[pi] = pg
	}
	pg[idx&orderPageMask] = uint8(order)
}

// getOrder reads a live allocation's recorded order without the lock;
// returns 0 (an impossible order for a magazine class) when unknown.
func (c *CPUCache) getOrder(idx uint64) uint {
	pg := c.orderPages[idx>>orderPageBits]
	if pg == nil {
		return 0
	}
	return uint(pg[idx&orderPageMask])
}

// AllocOn allocates at least n bytes on behalf of cpu. Magazine hits
// complete with no locking and no shared-state traffic; misses refill
// the magazine with a batch of blocks under the zone lock.
func (c *CPUCache) AllocOn(cpu int, n uint64) (Addr, error) {
	m := &c.cpus[cpu]
	m.stats.Allocs++
	if n == 0 {
		n = 1
	}
	if c.Inject != nil {
		if err := c.Inject(cpu, n); err != nil {
			return 0, err
		}
	}
	order := c.zone.orderFor(n)
	if order > c.maxMagOrder {
		m.stats.Bypasses++
		m.stats.Misses++
		c.mu.Lock()
		a, err := c.zone.Alloc(n)
		if err == nil {
			c.setOrder(a, order)
		}
		c.mu.Unlock()
		return a, err
	}
	class := order - c.zone.minOrder
	mag := m.mags[class]
	if len(mag) > 0 {
		a := mag[len(mag)-1]
		m.mags[class] = mag[:len(mag)-1]
		m.stats.Hits++
		return a, nil
	}
	// Refill: pull a half-magazine batch from the zone in one critical
	// section, keeping one block for the caller.
	m.stats.Misses++
	batch := c.magCap / 2
	if batch < 1 {
		batch = 1
	}
	var err error
	c.mu.Lock()
	for i := 0; i < batch; i++ {
		var a Addr
		a, err = c.zone.Alloc(uint64(1) << order)
		if err != nil {
			break
		}
		c.setOrder(a, order)
		mag = append(mag, a)
	}
	c.mu.Unlock()
	if len(mag) == 0 {
		return 0, err
	}
	m.stats.Refills++
	a := mag[len(mag)-1]
	m.mags[class] = mag[:len(mag)-1]
	return a, nil
}

// FreeOn releases a block previously returned by AllocOn (or the zone's
// bypass path) on behalf of cpu. Magazine pushes complete with no
// locking; a full magazine flushes its older half back to the zone in
// one critical section.
func (c *CPUCache) FreeOn(cpu int, a Addr) error {
	m := &c.cpus[cpu]
	m.stats.Frees++
	if a < c.zone.base {
		return ErrBadFree
	}
	off := uint64(a - c.zone.base)
	if off >= c.zone.size || off&((uint64(1)<<c.zone.minOrder)-1) != 0 {
		return ErrBadFree
	}
	order := c.getOrder(off >> c.zone.minOrder)
	if order < c.zone.minOrder || order > c.maxMagOrder {
		// Bypass-sized block, or an address the cache never handed out:
		// let the zone sort it out (and report bad frees) under the lock.
		m.stats.Bypasses++
		c.mu.Lock()
		err := c.zone.Free(a)
		c.mu.Unlock()
		return err
	}
	class := order - c.zone.minOrder
	mag := m.mags[class]
	if len(mag) >= c.magCap {
		half := c.magCap / 2
		if half < 1 {
			half = 1
		}
		var err error
		c.mu.Lock()
		for _, b := range mag[:half] {
			if e := c.zone.Free(b); e != nil && err == nil {
				err = e
			}
		}
		c.mu.Unlock()
		n := copy(mag, mag[half:])
		mag = mag[:n]
		m.stats.Flushes++
		if err != nil {
			m.mags[class] = mag
			return err
		}
	}
	m.mags[class] = append(mag, a)
	return nil
}

// Drain flushes every CPU's magazines back to the zone. It is not safe
// to race with AllocOn/FreeOn (quiesce first, as with CPU hotplug);
// tests use it to reconcile per-goroutine accounting against the zone.
func (c *CPUCache) Drain() error {
	var firstErr error
	c.mu.Lock()
	for i := range c.cpus {
		for j, mag := range c.cpus[i].mags {
			for _, a := range mag {
				if e := c.zone.Free(a); e != nil && firstErr == nil {
					firstErr = e
				}
			}
			c.cpus[i].mags[j] = mag[:0]
		}
	}
	c.mu.Unlock()
	return firstErr
}

// StatsOn returns cpu's private counters.
func (c *CPUCache) StatsOn(cpu int) CPUCacheStats { return c.cpus[cpu].stats }

// Stats aggregates all CPUs' counters. Like Drain, it expects the cache
// to be quiesced (per-CPU counters are unsynchronized by design).
func (c *CPUCache) Stats() CPUCacheStats {
	var total CPUCacheStats
	for i := range c.cpus {
		total.Add(c.cpus[i].stats)
	}
	return total
}

// ZoneStats snapshots the shared zone's allocator counters under the
// zone lock, so it is safe to call while other CPUs allocate.
func (c *CPUCache) ZoneStats() BuddyStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.zone.Stats()
}

package mem

import (
	"runtime"
	"sync"
	"testing"

	"repro/internal/sim"
)

func newCacheT(t *testing.T, size uint64, cpus, magCap int) *CPUCache {
	t.Helper()
	zone, err := NewBuddy(0x1000, size, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCPUCache(zone, cpus, magCap)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCPUCacheHitAfterFree(t *testing.T) {
	c := newCacheT(t, 1<<20, 2, 8)
	a, err := c.AllocOn(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.StatsOn(0); st.Misses != 1 || st.Refills != 1 || st.Hits != 0 {
		t.Fatalf("first alloc stats = %+v", st)
	}
	// The refill batch leaves blocks in the magazine: the next alloc of
	// the same class must hit without touching the zone.
	zoneAllocs := c.ZoneStats().Allocs
	b, err := c.AllocOn(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if c.ZoneStats().Allocs != zoneAllocs {
		t.Fatal("magazine hit touched the zone")
	}
	if st := c.StatsOn(0); st.Hits != 1 {
		t.Fatalf("stats after hit = %+v", st)
	}
	// Freeing and reallocating stays CPU-local (LIFO reuse).
	if err := c.FreeOn(0, b); err != nil {
		t.Fatal(err)
	}
	b2, err := c.AllocOn(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if b2 != b {
		t.Fatalf("LIFO reuse gave %#x, want %#x", b2, b)
	}
	if err := c.FreeOn(0, b2); err != nil {
		t.Fatal(err)
	}
	if err := c.FreeOn(0, a); err != nil {
		t.Fatal(err)
	}
}

func TestCPUCacheFlushOnFull(t *testing.T) {
	const magCap = 4
	c := newCacheT(t, 1<<20, 1, magCap)
	// Fill one magazine past capacity: allocate magCap+1 blocks, free all.
	var addrs []Addr
	for i := 0; i < magCap+1; i++ {
		a, err := c.AllocOn(0, 64)
		if err != nil {
			t.Fatal(err)
		}
		addrs = append(addrs, a)
	}
	for _, a := range addrs {
		if err := c.FreeOn(0, a); err != nil {
			t.Fatal(err)
		}
	}
	if st := c.StatsOn(0); st.Flushes == 0 {
		t.Fatalf("expected a flush, stats = %+v", st)
	}
	if err := c.Drain(); err != nil {
		t.Fatal(err)
	}
	if live := c.Zone().LiveAllocs(); live != 0 {
		t.Fatalf("%d blocks leak after drain", live)
	}
	if err := c.Zone().CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCPUCacheBypassLargeBlocks(t *testing.T) {
	c := newCacheT(t, 1<<24, 1, 8)
	// magOrderSpan classes start at minOrder 6, so order 16 (64 KiB)
	// exceeds maxMagOrder 15 and must bypass the magazines.
	a, err := c.AllocOn(0, 1<<16)
	if err != nil {
		t.Fatal(err)
	}
	if st := c.StatsOn(0); st.Bypasses != 1 {
		t.Fatalf("alloc bypasses = %d, want 1", st.Bypasses)
	}
	if err := c.FreeOn(0, a); err != nil {
		t.Fatal(err)
	}
	if st := c.StatsOn(0); st.Bypasses != 2 {
		t.Fatalf("free bypasses = %d, want 2", st.Bypasses)
	}
	if live := c.Zone().LiveAllocs(); live != 0 {
		t.Fatalf("bypass free leaked, live = %d", live)
	}
}

func TestCPUCacheBadFree(t *testing.T) {
	c := newCacheT(t, 1<<20, 1, 8)
	if err := c.FreeOn(0, Addr(0x10)); err != ErrBadFree {
		t.Fatalf("below-base free err = %v, want ErrBadFree", err)
	}
	if err := c.FreeOn(0, c.Zone().Base()+1); err != ErrBadFree {
		t.Fatalf("misaligned free err = %v, want ErrBadFree", err)
	}
	if err := c.FreeOn(0, c.Zone().Base()+64); err != ErrBadFree {
		t.Fatalf("never-allocated free err = %v, want ErrBadFree", err)
	}
}

func TestCPUCacheStatsAggregate(t *testing.T) {
	c := newCacheT(t, 1<<20, 4, 8)
	for cpu := 0; cpu < 4; cpu++ {
		a, err := c.AllocOn(cpu, 64)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.FreeOn(cpu, a); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Allocs != 4 || st.Frees != 4 || st.Misses != 4 {
		t.Fatalf("aggregate = %+v", st)
	}
	if st.HitRate() != 0 {
		t.Fatalf("hit rate = %f with no hits", st.HitRate())
	}
}

// TestCPUCacheConcurrent hammers one zone's cache from GOMAXPROCS
// goroutines under the race detector. Every goroutine owns one cpu slot
// and does its own accounting (blocks it holds, ops it completed); at
// the end the magazines are drained and the zone must reconcile exactly:
// zero live blocks, all bytes free, invariants clean, and the aggregate
// cache stats must match the sum of per-goroutine op counts.
func TestCPUCacheConcurrent(t *testing.T) {
	cpus := runtime.GOMAXPROCS(0)
	if cpus < 2 {
		cpus = 2
	}
	zone, err := NewBuddy(0, 64<<20, 6)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCPUCache(zone, cpus, 16)
	if err != nil {
		t.Fatal(err)
	}

	const opsPerCPU = 20_000
	allocCounts := make([]uint64, cpus)
	freeCounts := make([]uint64, cpus)
	var wg sync.WaitGroup
	for cpu := 0; cpu < cpus; cpu++ {
		cpu := cpu
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := sim.NewRNG(uint64(cpu)*7919 + 17)
			var held []Addr
			for op := 0; op < opsPerCPU; op++ {
				if rng.Intn(2) == 0 || len(held) == 0 {
					n := uint64(1) << (6 + uint(rng.Intn(5)))
					a, err := c.AllocOn(cpu, n)
					if err != nil {
						t.Errorf("cpu %d: AllocOn: %v", cpu, err)
						return
					}
					held = append(held, a)
					allocCounts[cpu]++
				} else {
					i := rng.Intn(len(held))
					if err := c.FreeOn(cpu, held[i]); err != nil {
						t.Errorf("cpu %d: FreeOn: %v", cpu, err)
						return
					}
					held[i] = held[len(held)-1]
					held = held[:len(held)-1]
					freeCounts[cpu]++
				}
			}
			for _, a := range held {
				if err := c.FreeOn(cpu, a); err != nil {
					t.Errorf("cpu %d: teardown FreeOn: %v", cpu, err)
					return
				}
				freeCounts[cpu]++
			}
		}()
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	if err := c.Drain(); err != nil {
		t.Fatalf("drain: %v", err)
	}
	if live := zone.LiveAllocs(); live != 0 {
		t.Fatalf("%d blocks still live after drain", live)
	}
	if zone.FreeBytes != zone.Size() {
		t.Fatalf("free bytes %d != zone size %d after drain", zone.FreeBytes, zone.Size())
	}
	if err := zone.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	var wantAllocs, wantFrees uint64
	for cpu := 0; cpu < cpus; cpu++ {
		wantAllocs += allocCounts[cpu]
		wantFrees += freeCounts[cpu]
		st := c.StatsOn(cpu)
		if st.Allocs != allocCounts[cpu] || st.Frees != freeCounts[cpu] {
			t.Fatalf("cpu %d stats %+v, accounted allocs=%d frees=%d",
				cpu, st, allocCounts[cpu], freeCounts[cpu])
		}
	}
	st := c.Stats()
	if st.Allocs != wantAllocs || st.Frees != wantFrees {
		t.Fatalf("aggregate %+v, accounted allocs=%d frees=%d", st, wantAllocs, wantFrees)
	}
	if wantAllocs != wantFrees {
		t.Fatalf("allocs %d != frees %d after teardown", wantAllocs, wantFrees)
	}
	if st.Hits == 0 {
		t.Fatal("magazine layer recorded zero hits under a churn workload")
	}
}

func TestCPUCacheRejectsZeroCPUs(t *testing.T) {
	zone, _ := NewBuddy(0, 1<<12, 4)
	if _, err := NewCPUCache(zone, 0, 8); err == nil {
		t.Fatal("expected error for zero CPUs")
	}
}

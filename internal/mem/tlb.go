package mem

// TLB is a set-associative translation lookaside buffer model with LRU
// replacement. It exists to quantify the paper's motivating limitation:
// "virtual memory in the form of paging ... demands the existence of TLBs
// and other hardware structures [which] have substantial overheads in
// time and energy" (§I) — and conversely why Nautilus's identity-mapped
// largest-page-size design makes misses vanish (§III).
type TLB struct {
	sets      int
	ways      int
	pageShift uint
	// entries[set][way] holds page numbers; lru[set][way] holds ages.
	entries [][]uint64
	valid   [][]bool
	lru     [][]uint64
	tick    uint64

	Hits   uint64
	Misses uint64
}

// NewTLB builds a TLB with the given geometry. pageShift is log2 of the
// page size (12 for 4 KiB, 21 for 2 MiB, 30 for 1 GiB).
func NewTLB(sets, ways int, pageShift uint) *TLB {
	if sets <= 0 || ways <= 0 {
		panic("mem: invalid TLB geometry")
	}
	t := &TLB{
		sets:      sets,
		ways:      ways,
		pageShift: pageShift,
		entries:   make([][]uint64, sets),
		valid:     make([][]bool, sets),
		lru:       make([][]uint64, sets),
	}
	for i := range t.entries {
		t.entries[i] = make([]uint64, ways)
		t.valid[i] = make([]bool, ways)
		t.lru[i] = make([]uint64, ways)
	}
	return t
}

// Capacity returns the number of entries.
func (t *TLB) Capacity() int { return t.sets * t.ways }

// PageSize returns the page size covered per entry.
func (t *TLB) PageSize() uint64 { return 1 << t.pageShift }

// Reach returns the address-space bytes the TLB can map at once. If the
// Reach covers physical memory, misses stop after warm-up — the Nautilus
// property.
func (t *TLB) Reach() uint64 { return uint64(t.Capacity()) << t.pageShift }

// Access translates address a, returning true on hit. Misses install the
// translation (hardware page walk fill).
func (t *TLB) Access(a Addr) bool {
	t.tick++
	page := uint64(a) >> t.pageShift
	set := int(page % uint64(t.sets))
	es, vs, ls := t.entries[set], t.valid[set], t.lru[set]
	for w := 0; w < t.ways; w++ {
		if vs[w] && es[w] == page {
			ls[w] = t.tick
			t.Hits++
			return true
		}
	}
	t.Misses++
	// Fill: pick invalid or LRU way.
	victim := 0
	for w := 0; w < t.ways; w++ {
		if !vs[w] {
			victim = w
			break
		}
		if ls[w] < ls[victim] {
			victim = w
		}
	}
	es[victim] = page
	vs[victim] = true
	ls[victim] = t.tick
	return false
}

// Flush invalidates all entries (e.g. address-space switch without PCID).
func (t *TLB) Flush() {
	for s := range t.valid {
		for w := range t.valid[s] {
			t.valid[s][w] = false
		}
	}
}

// MissRate returns misses / accesses (0 if no accesses).
func (t *TLB) MissRate() float64 {
	total := t.Hits + t.Misses
	if total == 0 {
		return 0
	}
	return float64(t.Misses) / float64(total)
}

// PagingMode describes how a stack maps memory.
type PagingMode int

const (
	// PagingDemand4K is the commodity stack: 4 KiB pages, demand paging,
	// page faults possible.
	PagingDemand4K PagingMode = iota
	// PagingIdentityLarge is the Nautilus design: identity mapping with
	// the largest possible page size, everything mapped at boot.
	PagingIdentityLarge
	// PagingNone is the CARAT design: no translation hardware at all;
	// all code runs on physical addresses and protection comes from the
	// compiler (§IV-A).
	PagingNone
)

// PagingCost models the translation overhead of a memory access stream.
type PagingCost struct {
	Mode     PagingMode
	TLB      *TLB  // nil for PagingNone
	WalkCost int64 // cycles per TLB miss (page table walk)
	// FaultCost is the page-fault cost for first-touch accesses under
	// demand paging.
	FaultCost int64
	touched   map[uint64]bool

	Faults      uint64
	TotalCycles int64
}

// NewPagingCost builds the cost model for a mode. walk and fault are the
// per-event cycle costs.
func NewPagingCost(mode PagingMode, tlb *TLB, walk, fault int64) *PagingCost {
	return &PagingCost{Mode: mode, TLB: tlb, WalkCost: walk, FaultCost: fault,
		touched: make(map[uint64]bool)}
}

// Access accounts one memory access at address a and returns its
// translation overhead in cycles (0 for PagingNone).
func (p *PagingCost) Access(a Addr) int64 {
	switch p.Mode {
	case PagingNone:
		return 0
	case PagingIdentityLarge:
		if p.TLB.Access(a) {
			return 0
		}
		p.TotalCycles += p.WalkCost
		return p.WalkCost
	default: // PagingDemand4K
		var c int64
		page := uint64(a) >> 12
		if !p.touched[page] {
			p.touched[page] = true
			p.Faults++
			c += p.FaultCost
		}
		if !p.TLB.Access(a) {
			c += p.WalkCost
		}
		p.TotalCycles += c
		return c
	}
}

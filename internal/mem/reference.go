package mem

import "fmt"

// ReferenceBuddy is the original map-based buddy allocator, kept as the
// semantic oracle for the intrusive fast path (mirroring
// interp.ReferenceCall): map[offset]order for allocations, slice free
// lists with swap-with-last removal, and a (offset,order)→free map for
// coalescing checks. The differential fuzzer (FuzzBuddyVsReference)
// drives both engines with identical traces and requires identical
// addresses, errors, and stats at every step.
type ReferenceBuddy struct {
	base     Addr
	size     uint64
	minOrder uint // log2 of smallest block
	maxOrder uint // log2 of the whole region

	// freeLists[o] holds the offsets (relative to base) of free blocks
	// of order o.
	freeLists [][]uint64
	// allocated maps offset -> order for live allocations.
	allocated map[uint64]uint
	// blockFree tracks which (offset,order) buddies are free for
	// coalescing checks, keyed by freeKey. The flat key avoids the
	// per-offset inner map (and its allocation on every free) that a
	// two-level map would cost.
	blockFree map[uint64]bool

	// Stats.
	FreeBytes    uint64
	UsedBytes    uint64
	Allocs       uint64
	Frees        uint64
	Splits       uint64
	Coalesces    uint64
	PeakUsed     uint64
	FailedAllocs uint64

	// Inject mirrors Buddy.Inject: consulted at the top of Alloc, before
	// any mutation, so the differential tests can drive both engines
	// under an identical fault schedule and require identical outcomes.
	Inject func(n uint64) error
}

// NewReferenceBuddy creates a reference allocator managing size bytes
// starting at base. size must be a power of two and at least 1<<minOrder.
func NewReferenceBuddy(base Addr, size uint64, minOrder uint) (*ReferenceBuddy, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("mem: buddy size %d not a power of two", size)
	}
	maxOrder := uint(0)
	for 1<<maxOrder < size {
		maxOrder++
	}
	if maxOrder < minOrder {
		return nil, fmt.Errorf("mem: region smaller than min block")
	}
	b := &ReferenceBuddy{
		base:      base,
		size:      size,
		minOrder:  minOrder,
		maxOrder:  maxOrder,
		freeLists: make([][]uint64, maxOrder+1),
		allocated: make(map[uint64]uint),
		blockFree: make(map[uint64]bool),
		FreeBytes: size,
	}
	b.pushFree(0, maxOrder)
	return b, nil
}

// freeKey packs (offset, order) into one map key. Orders are < 64, so
// six low bits suffice; offsets stay well clear of the top six bits for
// any realistic region size.
func freeKey(off uint64, order uint) uint64 {
	return off<<6 | uint64(order)
}

func (b *ReferenceBuddy) pushFree(off uint64, order uint) {
	b.freeLists[order] = append(b.freeLists[order], off)
	b.blockFree[freeKey(off, order)] = true
}

// popFreeAt removes a specific free block (off, order); returns false if
// it is not free at that order.
func (b *ReferenceBuddy) popFreeAt(off uint64, order uint) bool {
	k := freeKey(off, order)
	if !b.blockFree[k] {
		return false
	}
	delete(b.blockFree, k)
	list := b.freeLists[order]
	for i, o := range list {
		if o == off {
			list[i] = list[len(list)-1]
			b.freeLists[order] = list[:len(list)-1]
			return true
		}
	}
	return false
}

func (b *ReferenceBuddy) popAnyFree(order uint) (uint64, bool) {
	list := b.freeLists[order]
	if len(list) == 0 {
		return 0, false
	}
	off := list[len(list)-1]
	b.freeLists[order] = list[:len(list)-1]
	delete(b.blockFree, freeKey(off, order))
	return off, true
}

// orderFor returns the smallest order whose block size fits n bytes.
func (b *ReferenceBuddy) orderFor(n uint64) uint {
	if n > 1<<63 {
		return 64 // unsatisfiable; Alloc turns this into ErrOutOfMemory
	}
	o := b.minOrder
	for uint64(1)<<o < n {
		o++
	}
	return o
}

// BlockSize returns the allocation granularity for a request of n bytes.
func (b *ReferenceBuddy) BlockSize(n uint64) uint64 { return 1 << b.orderFor(n) }

// Alloc allocates at least n bytes and returns the block address.
func (b *ReferenceBuddy) Alloc(n uint64) (Addr, error) {
	if n == 0 {
		n = 1
	}
	if b.Inject != nil {
		if err := b.Inject(n); err != nil {
			b.FailedAllocs++
			return 0, err
		}
	}
	order := b.orderFor(n)
	if order > b.maxOrder {
		b.FailedAllocs++
		return 0, ErrOutOfMemory
	}
	// Find the smallest free block at or above the needed order.
	cur := order
	for cur <= b.maxOrder {
		if len(b.freeLists[cur]) > 0 {
			break
		}
		cur++
	}
	if cur > b.maxOrder {
		b.FailedAllocs++
		return 0, ErrOutOfMemory
	}
	off, _ := b.popAnyFree(cur)
	// Split down to the needed order.
	for cur > order {
		cur--
		b.Splits++
		buddy := off + (1 << cur)
		b.pushFree(buddy, cur)
	}
	b.allocated[off] = order
	sz := uint64(1) << order
	b.FreeBytes -= sz
	b.UsedBytes += sz
	if b.UsedBytes > b.PeakUsed {
		b.PeakUsed = b.UsedBytes
	}
	b.Allocs++
	return b.base + Addr(off), nil
}

// Free releases a previously allocated block, coalescing with its buddy
// chain where possible.
func (b *ReferenceBuddy) Free(a Addr) error {
	off := uint64(a - b.base)
	order, ok := b.allocated[off]
	if !ok {
		return ErrBadFree
	}
	delete(b.allocated, off)
	sz := uint64(1) << order
	b.FreeBytes += sz
	b.UsedBytes -= sz
	b.Frees++
	// Coalesce upward.
	for order < b.maxOrder {
		buddy := off ^ (1 << order)
		if !b.popFreeAt(buddy, order) {
			break
		}
		b.Coalesces++
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.pushFree(off, order)
	return nil
}

// SizeOf returns the block size backing the allocation at a.
func (b *ReferenceBuddy) SizeOf(a Addr) (uint64, bool) {
	order, ok := b.allocated[uint64(a-b.base)]
	if !ok {
		return 0, false
	}
	return 1 << order, true
}

// Base returns the region base address.
func (b *ReferenceBuddy) Base() Addr { return b.base }

// Size returns the managed region size in bytes.
func (b *ReferenceBuddy) Size() uint64 { return b.size }

// LiveAllocs returns the number of outstanding allocations.
func (b *ReferenceBuddy) LiveAllocs() int { return len(b.allocated) }

// LargestFree returns the size of the largest free block.
func (b *ReferenceBuddy) LargestFree() uint64 {
	for o := int(b.maxOrder); o >= int(b.minOrder); o-- {
		if len(b.freeLists[o]) > 0 {
			return 1 << uint(o)
		}
	}
	return 0
}

// Stats returns a snapshot of the allocator's counters.
func (b *ReferenceBuddy) Stats() BuddyStats {
	return BuddyStats{
		FreeBytes: b.FreeBytes, UsedBytes: b.UsedBytes,
		Allocs: b.Allocs, Frees: b.Frees,
		Splits: b.Splits, Coalesces: b.Coalesces,
		PeakUsed: b.PeakUsed, FailedAllocs: b.FailedAllocs,
		Live: len(b.allocated),
	}
}

// CheckInvariants validates internal consistency. In addition to
// alignment and byte accounting, it cross-checks freeLists against
// blockFree in both directions — every list entry must be marked free in
// blockFree and every blockFree key must appear on exactly one list —
// closing the blind spot where the two structures could silently
// disagree.
func (b *ReferenceBuddy) CheckInvariants() error {
	var free uint64
	listed := 0
	for o, list := range b.freeLists {
		for _, off := range list {
			if off%(1<<uint(o)) != 0 {
				return fmt.Errorf("free block 0x%x misaligned for order %d", off, o)
			}
			if !b.blockFree[freeKey(off, uint(o))] {
				return fmt.Errorf("free-list entry 0x%x (order %d) not marked free in blockFree", off, o)
			}
			free += 1 << uint(o)
			listed++
		}
	}
	if listed != len(b.blockFree) {
		return fmt.Errorf("free lists hold %d blocks but blockFree marks %d", listed, len(b.blockFree))
	}
	seen := make(map[uint64]bool, listed)
	for _, list := range b.freeLists {
		for _, off := range list {
			if seen[off] {
				return fmt.Errorf("block 0x%x appears on more than one free list", off)
			}
			seen[off] = true
		}
	}
	var used uint64
	for off, o := range b.allocated {
		if off%(1<<o) != 0 {
			return fmt.Errorf("allocated block 0x%x misaligned for order %d", off, o)
		}
		if seen[off] {
			return fmt.Errorf("block 0x%x both allocated and on a free list", off)
		}
		used += 1 << o
	}
	if free != b.FreeBytes {
		return fmt.Errorf("free bytes %d != accounted %d", free, b.FreeBytes)
	}
	if used != b.UsedBytes {
		return fmt.Errorf("used bytes %d != accounted %d", used, b.UsedBytes)
	}
	if free+used != b.size {
		return fmt.Errorf("free %d + used %d != size %d", free, used, b.size)
	}
	return nil
}

// Package mem implements the memory-management substrate described in the
// paper's Nautilus background (§III): buddy-system allocators selected per
// NUMA zone, identity-mapped paging with the largest possible page size,
// and a TLB model that shows why that design makes TLB misses "extremely
// rare ... and, indeed, if the TLB entries can cover the physical address
// space of the machine, do not occur at all after startup".
package mem

import (
	"errors"
	"fmt"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("mem: out of memory")

// ErrBadFree is returned for frees of addresses that were never allocated.
var ErrBadFree = errors.New("mem: free of unallocated address")

// Addr is a simulated physical address.
type Addr uint64

// Buddy is a binary-buddy allocator over a contiguous region. It is the
// allocator Nautilus uses for each memory zone: power-of-two blocks,
// split on demand, coalesced on free.
type Buddy struct {
	base     Addr
	size     uint64
	minOrder uint // log2 of smallest block
	maxOrder uint // log2 of the whole region

	// freeLists[o] holds the offsets (relative to base) of free blocks
	// of order o.
	freeLists [][]uint64
	// allocated maps offset -> order for live allocations.
	allocated map[uint64]uint
	// blockFree tracks which (offset,order) buddies are free for
	// coalescing checks, keyed by freeKey. The flat key avoids the
	// per-offset inner map (and its allocation on every free) that a
	// two-level map would cost.
	blockFree map[uint64]bool

	// Stats.
	FreeBytes  uint64
	UsedBytes  uint64
	Allocs     uint64
	Frees      uint64
	Splits     uint64
	Coalesces  uint64
	PeakUsed   uint64
	FailedAllo uint64
}

// NewBuddy creates an allocator managing size bytes starting at base.
// size must be a power of two and at least 1<<minOrder.
func NewBuddy(base Addr, size uint64, minOrder uint) (*Buddy, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("mem: buddy size %d not a power of two", size)
	}
	maxOrder := uint(0)
	for 1<<maxOrder < size {
		maxOrder++
	}
	if maxOrder < minOrder {
		return nil, fmt.Errorf("mem: region smaller than min block")
	}
	b := &Buddy{
		base:      base,
		size:      size,
		minOrder:  minOrder,
		maxOrder:  maxOrder,
		freeLists: make([][]uint64, maxOrder+1),
		allocated: make(map[uint64]uint),
		blockFree: make(map[uint64]bool),
		FreeBytes: size,
	}
	b.pushFree(0, maxOrder)
	return b, nil
}

// freeKey packs (offset, order) into one map key. Orders are < 64, so
// six low bits suffice; offsets stay well clear of the top six bits for
// any realistic region size.
func freeKey(off uint64, order uint) uint64 {
	return off<<6 | uint64(order)
}

func (b *Buddy) pushFree(off uint64, order uint) {
	b.freeLists[order] = append(b.freeLists[order], off)
	b.blockFree[freeKey(off, order)] = true
}

// popFreeAt removes a specific free block (off, order); returns false if
// it is not free at that order.
func (b *Buddy) popFreeAt(off uint64, order uint) bool {
	k := freeKey(off, order)
	if !b.blockFree[k] {
		return false
	}
	delete(b.blockFree, k)
	list := b.freeLists[order]
	for i, o := range list {
		if o == off {
			list[i] = list[len(list)-1]
			b.freeLists[order] = list[:len(list)-1]
			return true
		}
	}
	return false
}

func (b *Buddy) popAnyFree(order uint) (uint64, bool) {
	list := b.freeLists[order]
	if len(list) == 0 {
		return 0, false
	}
	off := list[len(list)-1]
	b.freeLists[order] = list[:len(list)-1]
	delete(b.blockFree, freeKey(off, order))
	return off, true
}

// orderFor returns the smallest order whose block size fits n bytes.
func (b *Buddy) orderFor(n uint64) uint {
	o := b.minOrder
	for uint64(1)<<o < n {
		o++
	}
	return o
}

// BlockSize returns the allocation granularity for a request of n bytes.
func (b *Buddy) BlockSize(n uint64) uint64 { return 1 << b.orderFor(n) }

// Alloc allocates at least n bytes and returns the block address.
func (b *Buddy) Alloc(n uint64) (Addr, error) {
	if n == 0 {
		n = 1
	}
	order := b.orderFor(n)
	if order > b.maxOrder {
		b.FailedAllo++
		return 0, ErrOutOfMemory
	}
	// Find the smallest free block at or above the needed order.
	cur := order
	for cur <= b.maxOrder {
		if len(b.freeLists[cur]) > 0 {
			break
		}
		cur++
	}
	if cur > b.maxOrder {
		b.FailedAllo++
		return 0, ErrOutOfMemory
	}
	off, _ := b.popAnyFree(cur)
	// Split down to the needed order.
	for cur > order {
		cur--
		b.Splits++
		buddy := off + (1 << cur)
		b.pushFree(buddy, cur)
	}
	b.allocated[off] = order
	sz := uint64(1) << order
	b.FreeBytes -= sz
	b.UsedBytes += sz
	if b.UsedBytes > b.PeakUsed {
		b.PeakUsed = b.UsedBytes
	}
	b.Allocs++
	return b.base + Addr(off), nil
}

// Free releases a previously allocated block, coalescing with its buddy
// chain where possible.
func (b *Buddy) Free(a Addr) error {
	off := uint64(a - b.base)
	order, ok := b.allocated[off]
	if !ok {
		return ErrBadFree
	}
	delete(b.allocated, off)
	sz := uint64(1) << order
	b.FreeBytes += sz
	b.UsedBytes -= sz
	b.Frees++
	// Coalesce upward.
	for order < b.maxOrder {
		buddy := off ^ (1 << order)
		if !b.popFreeAt(buddy, order) {
			break
		}
		b.Coalesces++
		if buddy < off {
			off = buddy
		}
		order++
	}
	b.pushFree(off, order)
	return nil
}

// SizeOf returns the block size backing the allocation at a.
func (b *Buddy) SizeOf(a Addr) (uint64, bool) {
	order, ok := b.allocated[uint64(a-b.base)]
	if !ok {
		return 0, false
	}
	return 1 << order, true
}

// Base returns the region base address.
func (b *Buddy) Base() Addr { return b.base }

// Size returns the managed region size in bytes.
func (b *Buddy) Size() uint64 { return b.size }

// LiveAllocs returns the number of outstanding allocations.
func (b *Buddy) LiveAllocs() int { return len(b.allocated) }

// LargestFree returns the size of the largest free block — the metric
// that defragmentation (CARAT's memory mobility, §IV-A) improves.
func (b *Buddy) LargestFree() uint64 {
	for o := int(b.maxOrder); o >= int(b.minOrder); o-- {
		if len(b.freeLists[o]) > 0 {
			return 1 << uint(o)
		}
	}
	return 0
}

// CheckInvariants validates internal consistency; used by property tests.
func (b *Buddy) CheckInvariants() error {
	var free uint64
	for o, list := range b.freeLists {
		for _, off := range list {
			if off%(1<<uint(o)) != 0 {
				return fmt.Errorf("free block 0x%x misaligned for order %d", off, o)
			}
			free += 1 << uint(o)
		}
	}
	var used uint64
	for off, o := range b.allocated {
		if off%(1<<o) != 0 {
			return fmt.Errorf("allocated block 0x%x misaligned for order %d", off, o)
		}
		used += 1 << o
	}
	if free != b.FreeBytes {
		return fmt.Errorf("free bytes %d != accounted %d", free, b.FreeBytes)
	}
	if used != b.UsedBytes {
		return fmt.Errorf("used bytes %d != accounted %d", used, b.UsedBytes)
	}
	if free+used != b.size {
		return fmt.Errorf("free %d + used %d != size %d", free, used, b.size)
	}
	return nil
}

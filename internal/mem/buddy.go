// Package mem implements the memory-management substrate described in the
// paper's Nautilus background (§III): buddy-system allocators selected per
// NUMA zone, identity-mapped paging with the largest possible page size,
// and a TLB model that shows why that design makes TLB misses "extremely
// rare ... and, indeed, if the TLB entries can cover the physical address
// space of the machine, do not occur at all after startup".
//
// The allocator has two engines with address-for-address identical
// behavior (mirroring internal/interp's fast/reference split):
//
//   - Buddy (this file) is the fast path: intrusive O(log n) metadata —
//     one flat paged []blockMeta array indexed by offset>>minOrder
//     holding order, a state byte, and doubly-linked free-list links —
//     so Alloc, Free, and coalescing do zero map operations, zero heap
//     allocations steady-state, and no scans.
//   - ReferenceBuddy (reference.go) is the original map-based
//     implementation, kept as the semantic oracle for the differential
//     fuzzer (FuzzBuddyVsReference).
//
// CPUCache (cpucache.go) adds a concurrent per-CPU magazine front-end
// over a shared zone, the partitioned-caching design per-CPU kernel
// allocators use.
package mem

import (
	"errors"
	"fmt"
	"math/bits"
)

// ErrOutOfMemory is returned when an allocation cannot be satisfied.
var ErrOutOfMemory = errors.New("mem: out of memory")

// ErrBadFree is returned for frees of addresses that were never allocated.
var ErrBadFree = errors.New("mem: free of unallocated address")

// Addr is a simulated physical address.
type Addr uint64

// Block metadata lives in fixed-size pages under a table sized at New,
// so a sparsely used region (a fresh 256 MiB interpreter heap with a few
// live blocks) costs a handful of pages, and the page table itself is
// never reallocated — metadata pointers stay stable for the allocator's
// lifetime.
const (
	metaPageBits = 10
	metaPageLen  = 1 << metaPageBits
	metaPageMask = metaPageLen - 1
)

// Block-head states. A meta entry whose offset is not the head of a
// current block stays blockInterior.
const (
	blockInterior uint8 = iota
	blockFree
	blockAllocated
)

// blockMeta is the intrusive per-block metadata: free-list links (meta
// indexes, -1 = none), the block's order, and its state.
type blockMeta struct {
	prev, next int32
	order      uint8
	state      uint8
}

// noBlock is the nil link value.
const noBlock = int32(-1)

// BuddyStats is a copyable snapshot of an allocator's counters, safe to
// read outside any lock that guards the allocator itself.
type BuddyStats struct {
	FreeBytes    uint64
	UsedBytes    uint64
	Allocs       uint64
	Frees        uint64
	Splits       uint64
	Coalesces    uint64
	PeakUsed     uint64
	FailedAllocs uint64
	Live         int
}

// Buddy is a binary-buddy allocator over a contiguous region. It is the
// allocator Nautilus uses for each memory zone: power-of-two blocks,
// split on demand, coalesced on free. This is the fast engine; see the
// package comment for the fast/reference split.
type Buddy struct {
	base     Addr
	size     uint64
	minOrder uint // log2 of smallest block
	maxOrder uint // log2 of the whole region

	// pages is the paged metadata array: entry idx = offset >> minOrder
	// lives at pages[idx>>metaPageBits][idx&metaPageMask]. Pages
	// materialize on first touch; the table itself is fixed-size.
	pages [][]blockMeta
	// freeHead[o] is the meta index of the first free block of order o
	// (noBlock if empty); freeMask bit o mirrors non-emptiness so Alloc
	// finds the smallest adequate order with one TrailingZeros64.
	freeHead []int32
	freeMask uint64
	live     int

	// Stats.
	FreeBytes    uint64
	UsedBytes    uint64
	Allocs       uint64
	Frees        uint64
	Splits       uint64
	Coalesces    uint64
	PeakUsed     uint64
	FailedAllocs uint64

	// Inject, when non-nil, is consulted at the top of Alloc, before
	// any state is mutated; a non-nil return fails the allocation with
	// that error (counted in FailedAllocs, like an organic failure).
	// Fault-injection harnesses (internal/chaos) use it to model
	// transient failure and exhaustion against an allocator whose
	// structure is guaranteed consistent at the injection point, so
	// CheckInvariants may run from inside the hook.
	Inject func(n uint64) error
}

// NewBuddy creates an allocator managing size bytes starting at base.
// size must be a power of two and at least 1<<minOrder.
func NewBuddy(base Addr, size uint64, minOrder uint) (*Buddy, error) {
	if size == 0 || size&(size-1) != 0 {
		return nil, fmt.Errorf("mem: buddy size %d not a power of two", size)
	}
	maxOrder := uint(bits.Len64(size) - 1)
	if maxOrder < minOrder {
		return nil, fmt.Errorf("mem: region smaller than min block")
	}
	nIdx := size >> minOrder
	if nIdx > 1<<31 {
		return nil, fmt.Errorf("mem: region of %d min blocks exceeds intrusive metadata index space", nIdx)
	}
	b := &Buddy{
		base:      base,
		size:      size,
		minOrder:  minOrder,
		maxOrder:  maxOrder,
		pages:     make([][]blockMeta, (nIdx+metaPageLen-1)/metaPageLen),
		freeHead:  make([]int32, maxOrder+1),
		FreeBytes: size,
	}
	for i := range b.freeHead {
		b.freeHead[i] = noBlock
	}
	b.pushFree(0, maxOrder)
	return b, nil
}

// metaAt returns the metadata entry for idx, or nil if its page was
// never materialized (no block head has ever lived there).
func (b *Buddy) metaAt(idx uint64) *blockMeta {
	pg := b.pages[idx>>metaPageBits]
	if pg == nil {
		return nil
	}
	return &pg[idx&metaPageMask]
}

// metaEnsure returns the metadata entry for idx, materializing its page.
func (b *Buddy) metaEnsure(idx uint64) *blockMeta {
	pi := idx >> metaPageBits
	pg := b.pages[pi]
	if pg == nil {
		pg = make([]blockMeta, metaPageLen)
		b.pages[pi] = pg
	}
	return &pg[idx&metaPageMask]
}

// pushFree links the block at idx onto the head of order's free list.
func (b *Buddy) pushFree(idx uint64, order uint) {
	e := b.metaEnsure(idx)
	e.state = blockFree
	e.order = uint8(order)
	e.prev = noBlock
	e.next = b.freeHead[order]
	if e.next != noBlock {
		b.metaAt(uint64(e.next)).prev = int32(idx)
	}
	b.freeHead[order] = int32(idx)
	b.freeMask |= 1 << order
}

// popHead unlinks and returns the head of order's free list, which the
// caller has checked is non-empty.
func (b *Buddy) popHead(order uint) (uint64, *blockMeta) {
	idx := uint64(b.freeHead[order])
	e := b.metaAt(idx)
	b.freeHead[order] = e.next
	if e.next != noBlock {
		b.metaAt(uint64(e.next)).prev = noBlock
	} else {
		b.freeMask &^= 1 << order
	}
	e.state = blockInterior
	return idx, e
}

// removeFreeAt detaches the free block at idx (its meta entry e, on
// order's list) for coalescing. It preserves the reference engine's
// swap-with-last slice discipline — the list head moves into the removed
// block's position — so both engines return identical address sequences
// for any operation trace (the differential fuzzer asserts this).
func (b *Buddy) removeFreeAt(idx uint64, e *blockMeta, order uint) {
	h := b.freeHead[order]
	if uint64(h) == idx {
		b.freeHead[order] = e.next
		if e.next != noBlock {
			b.metaAt(uint64(e.next)).prev = noBlock
		} else {
			b.freeMask &^= 1 << order
		}
		e.state = blockInterior
		return
	}
	// Detach the head, then splice it into idx's position. If idx was
	// directly after the head, detaching updates e.prev to noBlock and
	// the splice below reinstalls the head correctly.
	he := b.metaAt(uint64(h))
	b.freeHead[order] = he.next
	if he.next != noBlock {
		b.metaAt(uint64(he.next)).prev = noBlock
	}
	he.prev = e.prev
	he.next = e.next
	if e.prev != noBlock {
		b.metaAt(uint64(e.prev)).next = h
	} else {
		b.freeHead[order] = h
	}
	if e.next != noBlock {
		b.metaAt(uint64(e.next)).prev = h
	}
	e.state = blockInterior
}

// orderFor returns the smallest order whose block size fits n bytes.
func (b *Buddy) orderFor(n uint64) uint {
	if n <= 1<<b.minOrder {
		return b.minOrder
	}
	if n > 1<<63 {
		return 64 // unsatisfiable; Alloc turns this into ErrOutOfMemory
	}
	return uint(bits.Len64(n - 1))
}

// BlockSize returns the allocation granularity for a request of n bytes.
func (b *Buddy) BlockSize(n uint64) uint64 { return 1 << b.orderFor(n) }

// Alloc allocates at least n bytes and returns the block address.
func (b *Buddy) Alloc(n uint64) (Addr, error) {
	if n == 0 {
		n = 1
	}
	if b.Inject != nil {
		if err := b.Inject(n); err != nil {
			b.FailedAllocs++
			return 0, err
		}
	}
	order := b.orderFor(n)
	if order > b.maxOrder {
		b.FailedAllocs++
		return 0, ErrOutOfMemory
	}
	// Smallest free order at or above the needed one, in one bit scan.
	avail := b.freeMask >> order
	if avail == 0 {
		b.FailedAllocs++
		return 0, ErrOutOfMemory
	}
	cur := order + uint(bits.TrailingZeros64(avail))
	idx, e := b.popHead(cur)
	// Split down to the needed order, freeing each high half.
	for cur > order {
		cur--
		b.Splits++
		b.pushFree(idx+(uint64(1)<<(cur-b.minOrder)), cur)
	}
	e.state = blockAllocated
	e.order = uint8(order)
	sz := uint64(1) << order
	b.FreeBytes -= sz
	b.UsedBytes += sz
	if b.UsedBytes > b.PeakUsed {
		b.PeakUsed = b.UsedBytes
	}
	b.Allocs++
	b.live++
	return b.base + Addr(idx<<b.minOrder), nil
}

// Free releases a previously allocated block, coalescing with its buddy
// chain where possible.
func (b *Buddy) Free(a Addr) error {
	if a < b.base {
		return ErrBadFree
	}
	off := uint64(a - b.base)
	if off >= b.size || off&((1<<b.minOrder)-1) != 0 {
		return ErrBadFree
	}
	idx := off >> b.minOrder
	e := b.metaAt(idx)
	if e == nil || e.state != blockAllocated {
		return ErrBadFree
	}
	order := uint(e.order)
	e.state = blockInterior
	sz := uint64(1) << order
	b.FreeBytes += sz
	b.UsedBytes -= sz
	b.Frees++
	b.live--
	// Coalesce upward: absorb the buddy while it is free at our order.
	for order < b.maxOrder {
		budIdx := idx ^ (uint64(1) << (order - b.minOrder))
		be := b.metaAt(budIdx)
		if be == nil || be.state != blockFree || uint(be.order) != order {
			break
		}
		b.removeFreeAt(budIdx, be, order)
		b.Coalesces++
		if budIdx < idx {
			idx = budIdx
		}
		order++
	}
	b.pushFree(idx, order)
	return nil
}

// SizeOf returns the block size backing the allocation at a.
func (b *Buddy) SizeOf(a Addr) (uint64, bool) {
	if a < b.base {
		return 0, false
	}
	off := uint64(a - b.base)
	if off >= b.size || off&((1<<b.minOrder)-1) != 0 {
		return 0, false
	}
	e := b.metaAt(off >> b.minOrder)
	if e == nil || e.state != blockAllocated {
		return 0, false
	}
	return 1 << uint(e.order), true
}

// Base returns the region base address.
func (b *Buddy) Base() Addr { return b.base }

// Size returns the managed region size in bytes.
func (b *Buddy) Size() uint64 { return b.size }

// LiveAllocs returns the number of outstanding allocations.
func (b *Buddy) LiveAllocs() int { return b.live }

// LargestFree returns the size of the largest free block — the metric
// that defragmentation (CARAT's memory mobility, §IV-A) improves.
func (b *Buddy) LargestFree() uint64 {
	if b.freeMask == 0 {
		return 0
	}
	return 1 << uint(bits.Len64(b.freeMask)-1)
}

// Stats returns a snapshot of the allocator's counters.
func (b *Buddy) Stats() BuddyStats {
	return BuddyStats{
		FreeBytes: b.FreeBytes, UsedBytes: b.UsedBytes,
		Allocs: b.Allocs, Frees: b.Frees,
		Splits: b.Splits, Coalesces: b.Coalesces,
		PeakUsed: b.PeakUsed, FailedAllocs: b.FailedAllocs,
		Live: b.live,
	}
}

// CheckInvariants validates internal consistency; used by property tests
// and the differential fuzzer. Beyond alignment and byte accounting, it
// cross-checks the free lists against the intrusive metadata in both
// directions: every list entry must be a block head marked free at the
// list's order with intact linkage, and every free-marked head reached
// by walking the region's block coverage must be present on its list.
func (b *Buddy) CheckInvariants() error {
	total := b.size >> b.minOrder
	onList := make(map[uint64]uint)
	for o := b.minOrder; o <= b.maxOrder; o++ {
		n := 0
		prev := noBlock
		for cur := b.freeHead[o]; cur != noBlock; {
			if n++; uint64(n) > total {
				return fmt.Errorf("order %d free list does not terminate", o)
			}
			idx := uint64(cur)
			if idx >= total {
				return fmt.Errorf("order %d free list holds out-of-range index %d", o, idx)
			}
			e := b.metaAt(idx)
			if e == nil {
				return fmt.Errorf("order %d free list references unmaterialized block 0x%x", o, idx<<b.minOrder)
			}
			if e.state != blockFree {
				return fmt.Errorf("free-list entry 0x%x (order %d) not marked free in metadata (state %d)", idx<<b.minOrder, o, e.state)
			}
			if uint(e.order) != o {
				return fmt.Errorf("free-list entry 0x%x on order-%d list has metadata order %d", idx<<b.minOrder, o, e.order)
			}
			if e.prev != prev {
				return fmt.Errorf("order %d free list linkage broken at 0x%x (prev %d, want %d)", o, idx<<b.minOrder, e.prev, prev)
			}
			if idx&((uint64(1)<<(o-b.minOrder))-1) != 0 {
				return fmt.Errorf("free block 0x%x misaligned for order %d", idx<<b.minOrder, o)
			}
			if _, dup := onList[idx]; dup {
				return fmt.Errorf("block 0x%x appears on more than one free list", idx<<b.minOrder)
			}
			onList[idx] = o
			prev = cur
			cur = e.next
		}
		if ((b.freeMask>>o)&1 == 1) != (b.freeHead[o] != noBlock) {
			return fmt.Errorf("freeMask bit %d disagrees with free list head", o)
		}
	}
	// Coverage walk: the region must partition exactly into block heads.
	var free, used uint64
	liveCount, freeHeads := 0, 0
	for idx := uint64(0); idx < total; {
		e := b.metaAt(idx)
		if e == nil {
			return fmt.Errorf("no block head at 0x%x", idx<<b.minOrder)
		}
		o := uint(e.order)
		if o < b.minOrder || o > b.maxOrder {
			return fmt.Errorf("block 0x%x has impossible order %d", idx<<b.minOrder, o)
		}
		if idx&((uint64(1)<<(o-b.minOrder))-1) != 0 {
			return fmt.Errorf("block 0x%x misaligned for order %d", idx<<b.minOrder, o)
		}
		switch e.state {
		case blockFree:
			lo, ok := onList[idx]
			if !ok {
				return fmt.Errorf("block 0x%x marked free (order %d) but absent from its free list", idx<<b.minOrder, o)
			}
			if lo != o {
				return fmt.Errorf("block 0x%x free at order %d but listed at order %d", idx<<b.minOrder, o, lo)
			}
			free += 1 << o
			freeHeads++
		case blockAllocated:
			used += 1 << o
			liveCount++
		default:
			return fmt.Errorf("expected a block head at 0x%x, found interior metadata", idx<<b.minOrder)
		}
		idx += uint64(1) << (o - b.minOrder)
	}
	if freeHeads != len(onList) {
		return fmt.Errorf("free lists hold %d blocks, coverage found %d", len(onList), freeHeads)
	}
	if free != b.FreeBytes {
		return fmt.Errorf("free bytes %d != accounted %d", free, b.FreeBytes)
	}
	if used != b.UsedBytes {
		return fmt.Errorf("used bytes %d != accounted %d", used, b.UsedBytes)
	}
	if free+used != b.size {
		return fmt.Errorf("free %d + used %d != size %d", free, used, b.size)
	}
	if liveCount != b.live {
		return fmt.Errorf("live allocations %d != accounted %d", liveCount, b.live)
	}
	return nil
}

package mem

import "fmt"

// Zone is a NUMA memory zone backed by its own buddy allocator, matching
// Nautilus's "allocations are done with buddy system allocators that are
// selected based on the target zone" (§III).
type Zone struct {
	ID    int
	Buddy *Buddy
}

// NUMA models the machine's zones and zone-distance matrix.
type NUMA struct {
	Zones []*Zone
	// distance[i][j] is the relative access cost from zone i to zone j
	// (10 = local, SLIT-style).
	distance [][]int
}

// NewNUMA builds n zones of zoneSize bytes each (power of two), with a
// simple two-level distance matrix: 10 local, 21 remote.
func NewNUMA(n int, zoneSize uint64, minOrder uint) (*NUMA, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: need at least one zone")
	}
	numa := &NUMA{distance: make([][]int, n)}
	var base Addr
	for i := 0; i < n; i++ {
		b, err := NewBuddy(base, zoneSize, minOrder)
		if err != nil {
			return nil, err
		}
		numa.Zones = append(numa.Zones, &Zone{ID: i, Buddy: b})
		base += Addr(zoneSize)
		numa.distance[i] = make([]int, n)
		for j := 0; j < n; j++ {
			if i == j {
				numa.distance[i][j] = 10
			} else {
				numa.distance[i][j] = 21
			}
		}
	}
	return numa, nil
}

// Distance returns the SLIT-style distance between two zones.
func (n *NUMA) Distance(from, to int) int { return n.distance[from][to] }

// ZoneOf returns the zone containing address a, or nil.
func (n *NUMA) ZoneOf(a Addr) *Zone {
	for _, z := range n.Zones {
		if a >= z.Buddy.Base() && uint64(a-z.Buddy.Base()) < z.Buddy.Size() {
			return z
		}
	}
	return nil
}

// Alloc allocates from the preferred zone, falling back to the nearest
// zone with space (Nautilus keeps essential state "in the most desirable
// zone" for bound threads; fallback preserves progress under pressure).
func (n *NUMA) Alloc(preferred int, size uint64) (Addr, error) {
	if preferred < 0 || preferred >= len(n.Zones) {
		return 0, fmt.Errorf("mem: bad zone %d", preferred)
	}
	if a, err := n.Zones[preferred].Buddy.Alloc(size); err == nil {
		return a, nil
	}
	// Fallback in increasing distance order.
	type cand struct {
		zone *Zone
		dist int
	}
	var cands []cand
	for i, z := range n.Zones {
		if i == preferred {
			continue
		}
		cands = append(cands, cand{z, n.distance[preferred][i]})
	}
	for len(cands) > 0 {
		best := 0
		for i := 1; i < len(cands); i++ {
			if cands[i].dist < cands[best].dist {
				best = i
			}
		}
		if a, err := cands[best].zone.Buddy.Alloc(size); err == nil {
			return a, nil
		}
		cands = append(cands[:best], cands[best+1:]...)
	}
	return 0, ErrOutOfMemory
}

// Free releases an allocation made through Alloc.
func (n *NUMA) Free(a Addr) error {
	z := n.ZoneOf(a)
	if z == nil {
		return ErrBadFree
	}
	return z.Buddy.Free(a)
}

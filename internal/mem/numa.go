package mem

import (
	"fmt"
	"sort"
)

// Zone is a NUMA memory zone backed by its own buddy allocator, matching
// Nautilus's "allocations are done with buddy system allocators that are
// selected based on the target zone" (§III). When a cache is attached
// (AttachCaches), Cache is the zone's concurrent per-CPU front-end.
type Zone struct {
	ID    int
	Buddy *Buddy
	Cache *CPUCache
}

// NUMA models the machine's zones and zone-distance matrix.
type NUMA struct {
	Zones []*Zone
	// distance[i][j] is the relative access cost from zone i to zone j
	// (10 = local, SLIT-style).
	distance [][]int
	// fallback[i] lists every zone other than i in increasing distance
	// from i (ties by zone ID), precomputed so the Alloc fallback path
	// does no per-call candidate sorting.
	fallback [][]int
}

// NewNUMA builds n zones of zoneSize bytes each (power of two), with a
// simple two-level distance matrix: 10 local, 21 remote.
func NewNUMA(n int, zoneSize uint64, minOrder uint) (*NUMA, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mem: need at least one zone")
	}
	numa := &NUMA{distance: make([][]int, n)}
	var base Addr
	for i := 0; i < n; i++ {
		b, err := NewBuddy(base, zoneSize, minOrder)
		if err != nil {
			return nil, err
		}
		numa.Zones = append(numa.Zones, &Zone{ID: i, Buddy: b})
		base += Addr(zoneSize)
		numa.distance[i] = make([]int, n)
		for j := 0; j < n; j++ {
			if i == j {
				numa.distance[i][j] = 10
			} else {
				numa.distance[i][j] = 21
			}
		}
	}
	numa.buildFallback()
	return numa, nil
}

// buildFallback precomputes each zone's fallback order: all other zones
// by increasing distance, ties broken by zone ID — the same sequence the
// previous per-call min-scan produced, hoisted out of the hot path.
func (n *NUMA) buildFallback() {
	n.fallback = make([][]int, len(n.Zones))
	for i := range n.Zones {
		order := make([]int, 0, len(n.Zones)-1)
		for j := range n.Zones {
			if j != i {
				order = append(order, j)
			}
		}
		sort.SliceStable(order, func(a, b int) bool {
			return n.distance[i][order[a]] < n.distance[i][order[b]]
		})
		n.fallback[i] = order
	}
}

// AttachCaches gives every zone a concurrent per-CPU magazine front-end
// (CPUCache) for cpus CPUs with the given per-class magazine capacity
// (<= 0 selects DefaultMagazineCap). After attachment, allocation must
// go through AllocOn/FreeOn (or each zone's Cache); the unsynchronized
// Alloc/Free remain valid only for single-threaded use before any cache
// traffic.
func (n *NUMA) AttachCaches(cpus, magCap int) error {
	for _, z := range n.Zones {
		c, err := NewCPUCache(z.Buddy, cpus, magCap)
		if err != nil {
			return err
		}
		z.Cache = c
	}
	return nil
}

// Distance returns the SLIT-style distance between two zones.
func (n *NUMA) Distance(from, to int) int { return n.distance[from][to] }

// ZoneOf returns the zone containing address a, or nil.
func (n *NUMA) ZoneOf(a Addr) *Zone {
	for _, z := range n.Zones {
		if a >= z.Buddy.Base() && uint64(a-z.Buddy.Base()) < z.Buddy.Size() {
			return z
		}
	}
	return nil
}

// Alloc allocates from the preferred zone, falling back to the nearest
// zone with space (Nautilus keeps essential state "in the most desirable
// zone" for bound threads; fallback preserves progress under pressure).
func (n *NUMA) Alloc(preferred int, size uint64) (Addr, error) {
	if preferred < 0 || preferred >= len(n.Zones) {
		return 0, fmt.Errorf("mem: bad zone %d", preferred)
	}
	if a, err := n.Zones[preferred].Buddy.Alloc(size); err == nil {
		return a, nil
	}
	for _, zi := range n.fallback[preferred] {
		if a, err := n.Zones[zi].Buddy.Alloc(size); err == nil {
			return a, nil
		}
	}
	return 0, ErrOutOfMemory
}

// Free releases an allocation made through Alloc.
func (n *NUMA) Free(a Addr) error {
	z := n.ZoneOf(a)
	if z == nil {
		return ErrBadFree
	}
	return z.Buddy.Free(a)
}

// AllocOn allocates size bytes on behalf of cpu, preferring the given
// zone and falling back by distance, through each zone's CPUCache when
// attached (concurrent-safe) and the raw buddy otherwise.
func (n *NUMA) AllocOn(cpu, preferred int, size uint64) (Addr, error) {
	if preferred < 0 || preferred >= len(n.Zones) {
		return 0, fmt.Errorf("mem: bad zone %d", preferred)
	}
	if a, err := n.zoneAllocOn(cpu, preferred, size); err == nil {
		return a, nil
	}
	for _, zi := range n.fallback[preferred] {
		if a, err := n.zoneAllocOn(cpu, zi, size); err == nil {
			return a, nil
		}
	}
	return 0, ErrOutOfMemory
}

func (n *NUMA) zoneAllocOn(cpu, zone int, size uint64) (Addr, error) {
	z := n.Zones[zone]
	if z.Cache != nil {
		return z.Cache.AllocOn(cpu, size)
	}
	return z.Buddy.Alloc(size)
}

// FreeOn releases an allocation made through AllocOn on behalf of cpu.
func (n *NUMA) FreeOn(cpu int, a Addr) error {
	z := n.ZoneOf(a)
	if z == nil {
		return ErrBadFree
	}
	if z.Cache != nil {
		return z.Cache.FreeOn(cpu, a)
	}
	return z.Buddy.Free(a)
}

// Package ir implements a small three-address-code compiler intermediate
// representation with virtual registers, an explicit CFG, dominator
// analysis, and natural-loop detection.
//
// It is the substrate for the paper's compiler-side interweaving: the
// CARAT guard-injection and hoisting passes (§IV-A), the compiler-based
// timing pass (§IV-C), and the device-poll blending pass (§V-C) all
// operate on this IR, and the internal/interp package executes it with
// cycle accounting.
package ir

import "fmt"

// Reg is a virtual register index within a function.
type Reg int

// NoReg marks an absent register operand.
const NoReg Reg = -1

// Op is an instruction opcode.
type Op int

// Opcodes. Arithmetic ops treat registers as int64; the F-prefixed ops
// treat them as float64 bit patterns.
const (
	OpConst  Op = iota // Dst = Imm
	OpFConst           // Dst = FImm (float64 bits)
	OpMov              // Dst = A
	OpAdd              // Dst = A + B
	OpSub
	OpMul
	OpDiv
	OpRem
	OpAnd
	OpOr
	OpXor
	OpShl
	OpShr
	OpFAdd
	OpFSub
	OpFMul
	OpFDiv
	OpICmp  // Dst = Pred(A, B) as 0/1, integer compare
	OpFCmp  // float compare
	OpLoad  // Dst = mem[A + Imm]
	OpStore // mem[A + Imm] = B
	OpAlloc // Dst = allocate(Imm bytes); A optionally overrides size
	OpFree  // free(A)
	OpCall  // Dst = Callee(Args...)
	OpBr    // if A != 0 goto Target else Else (terminator)
	OpJmp   // goto Target (terminator)
	OpRet   // return A (terminator; A may be NoReg)

	// Interweaving intrinsics, inserted by passes.
	OpGuard      // CARAT protection check of address A + Imm
	OpTrackAlloc // CARAT allocation-table insert for Dst of prior OpAlloc (A holds addr)
	OpTrackFree  // CARAT allocation-table remove (A holds addr)
	OpTrackEsc   // CARAT escape tracking for a stored pointer (A holds value)
	OpYieldCheck // compiler-timing check: call into the timer framework if quantum elapsed
	OpPoll       // blended device poll check
)

var opNames = map[Op]string{
	OpConst: "const", OpFConst: "fconst", OpMov: "mov",
	OpAdd: "add", OpSub: "sub", OpMul: "mul", OpDiv: "div", OpRem: "rem",
	OpAnd: "and", OpOr: "or", OpXor: "xor", OpShl: "shl", OpShr: "shr",
	OpFAdd: "fadd", OpFSub: "fsub", OpFMul: "fmul", OpFDiv: "fdiv",
	OpICmp: "icmp", OpFCmp: "fcmp",
	OpLoad: "load", OpStore: "store", OpAlloc: "alloc", OpFree: "free",
	OpCall: "call", OpBr: "br", OpJmp: "jmp", OpRet: "ret",
	OpGuard: "carat.guard", OpTrackAlloc: "carat.track_alloc",
	OpTrackFree: "carat.track_free", OpTrackEsc: "carat.track_escape",
	OpYieldCheck: "nk.yield_check", OpPoll: "nk.poll",
}

// String returns the opcode mnemonic.
func (o Op) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", int(o))
}

// IsTerminator reports whether the op ends a basic block.
func (o Op) IsTerminator() bool { return o == OpBr || o == OpJmp || o == OpRet }

// Pred is a comparison predicate for OpICmp/OpFCmp.
type Pred int

// Comparison predicates.
const (
	PredEQ Pred = iota
	PredNE
	PredLT
	PredLE
	PredGT
	PredGE
)

// Instr is one three-address instruction.
type Instr struct {
	Op     Op
	Dst    Reg
	A, B   Reg
	Imm    int64
	FImm   float64
	Pred   Pred
	Callee string
	Args   []Reg
	Target *Block // branch/jump taken target
	Else   *Block // branch fall-through target
	// Region marks an OpGuard as a whole-region guard: instead of
	// checking one effective address, it validates the entire tracked
	// allocation containing A. The CARAT hoisting pass emits these in
	// loop preheaders to replace per-iteration guards (§IV-A:
	// "aggregate and hoist protection and tracking code").
	Region bool
}

// Defs returns the register the instruction writes, or NoReg.
func (in *Instr) Defs() Reg {
	switch in.Op {
	case OpConst, OpFConst, OpMov, OpAdd, OpSub, OpMul, OpDiv, OpRem,
		OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpICmp, OpFCmp,
		OpLoad, OpAlloc, OpCall:
		return in.Dst
	}
	return NoReg
}

// Uses appends the registers the instruction reads to buf and returns it.
func (in *Instr) Uses(buf []Reg) []Reg {
	add := func(r Reg) {
		if r != NoReg {
			buf = append(buf, r)
		}
	}
	switch in.Op {
	case OpConst, OpFConst:
	case OpMov:
		add(in.A)
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpICmp, OpFCmp:
		add(in.A)
		add(in.B)
	case OpLoad:
		add(in.A)
	case OpStore:
		add(in.A)
		add(in.B)
	case OpAlloc:
		add(in.A)
	case OpFree, OpGuard, OpTrackFree:
		add(in.A)
	case OpTrackAlloc, OpTrackEsc:
		add(in.A)
		add(in.B)
	case OpCall:
		buf = append(buf, in.Args...)
	case OpBr:
		add(in.A)
	case OpRet:
		add(in.A)
	}
	return buf
}

// MapUses rewrites every register the instruction reads through fn
// (mirror of Uses). NoReg fields are left untouched.
func (in *Instr) MapUses(fn func(Reg) Reg) {
	mapA := func() {
		if in.A != NoReg {
			in.A = fn(in.A)
		}
	}
	mapB := func() {
		if in.B != NoReg {
			in.B = fn(in.B)
		}
	}
	switch in.Op {
	case OpConst, OpFConst, OpJmp:
	case OpMov, OpLoad, OpAlloc, OpFree, OpGuard, OpTrackFree, OpBr, OpRet:
		mapA()
	case OpAdd, OpSub, OpMul, OpDiv, OpRem, OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv, OpICmp, OpFCmp,
		OpStore, OpTrackAlloc, OpTrackEsc:
		mapA()
		mapB()
	case OpCall:
		for i, r := range in.Args {
			in.Args[i] = fn(r)
		}
	}
}

// MapRegs rewrites every register field of the instruction — the uses
// and the destination — through fn.
func (in *Instr) MapRegs(fn func(Reg) Reg) {
	in.MapUses(fn)
	if in.Defs() != NoReg {
		in.Dst = fn(in.Dst)
	}
}

// Block is a basic block: a straight-line instruction sequence ending in
// a single terminator.
type Block struct {
	Name   string
	Instrs []*Instr
	fn     *Function
	id     int
}

// ID returns the block's index within its function.
func (b *Block) ID() int { return b.id }

// Func returns the owning function.
func (b *Block) Func() *Function { return b.fn }

// Terminator returns the block's final instruction if it is a terminator.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	last := b.Instrs[len(b.Instrs)-1]
	if !last.Op.IsTerminator() {
		return nil
	}
	return last
}

// Succs returns the block's successor blocks.
func (b *Block) Succs() []*Block {
	t := b.Terminator()
	if t == nil {
		return nil
	}
	switch t.Op {
	case OpJmp:
		return []*Block{t.Target}
	case OpBr:
		if t.Target == t.Else {
			return []*Block{t.Target}
		}
		return []*Block{t.Target, t.Else}
	}
	return nil
}

// Function is a procedure: named, with a fixed number of parameters
// passed in registers 0..NumParams-1.
type Function struct {
	Name      string
	NumParams int
	NumRegs   int
	Blocks    []*Block

	mod *Module // owning module (generation bookkeeping)
}

// Module returns the module the function was created in (nil for a
// free-standing Function literal).
func (f *Function) Module() *Module { return f.mod }

// Touch records a structural mutation of the function, bumping the
// owning module's generation so that derived artifacts (layouts,
// compiled interpreter programs) know to rebuild. The builder and the
// structural mutators below call it automatically; code that splices
// Block.Instrs by hand after execution has started must call it (or
// Module.Touch) itself.
func (f *Function) Touch() {
	if f.mod != nil {
		f.mod.gen++
	}
}

// Entry returns the function's entry block.
func (f *Function) Entry() *Block {
	if len(f.Blocks) == 0 {
		return nil
	}
	return f.Blocks[0]
}

// NewBlock appends a new empty block with the given name, uniquified
// with a numeric suffix if the name is already taken (Verify rejects
// duplicate names — they make diagnostics and dumps ambiguous).
func (f *Function) NewBlock(name string) *Block {
	taken := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		taken[b.Name] = true
	}
	if taken[name] {
		base := name
		for n := 2; ; n++ {
			name = fmt.Sprintf("%s.%d", base, n)
			if !taken[name] {
				break
			}
		}
	}
	b := &Block{Name: name, fn: f, id: len(f.Blocks)}
	f.Blocks = append(f.Blocks, b)
	f.Touch()
	return b
}

// NewReg allocates a fresh virtual register.
func (f *Function) NewReg() Reg {
	r := Reg(f.NumRegs)
	f.NumRegs++
	f.Touch()
	return r
}

// renumber refreshes block ids after structural edits (pass use).
func (f *Function) renumber() {
	for i, b := range f.Blocks {
		b.id = i
	}
	f.Touch()
}

// InstrCount returns the total instruction count (a LoC-like size metric
// used by pass statistics).
func (f *Function) InstrCount() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// CountOp returns how many instructions have the given opcode; pass tests
// use this to verify injection/hoisting behavior.
func (f *Function) CountOp(op Op) int {
	n := 0
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Op == op {
				n++
			}
		}
	}
	return n
}

// Module is a set of functions.
//
// The module carries a structural generation counter: every mutation
// through the ir API (new functions, new blocks, new registers, builder
// emission, pass rewrites via passes.RunAll) bumps it. Consumers that
// cache per-generation artifacts — Function.Layout, the interpreter's
// compiled programs — compare generations to decide whether their cache
// is still valid. Mutation is only safe single-threaded; concurrent
// executors may share a module as long as nobody mutates it.
type Module struct {
	Name  string
	Funcs map[string]*Function
	order []string
	gen   uint64
}

// Gen returns the module's structural generation.
func (m *Module) Gen() uint64 { return m.gen }

// Touch bumps the structural generation, invalidating cached layouts
// and compiled programs. The ir API calls it automatically; call it by
// hand after splicing Block.Instrs directly.
func (m *Module) Touch() { m.gen++ }

// NewModule creates an empty module.
func NewModule(name string) *Module {
	return &Module{Name: name, Funcs: make(map[string]*Function)}
}

// NewFunction creates and registers a function with numParams parameters.
func (m *Module) NewFunction(name string, numParams int) *Function {
	f := &Function{Name: name, NumParams: numParams, NumRegs: numParams, mod: m}
	m.Funcs[name] = f
	m.order = append(m.order, name)
	m.gen++
	return f
}

// Functions returns the module's functions in definition order.
func (m *Module) Functions() []*Function {
	out := make([]*Function, 0, len(m.order))
	for _, n := range m.order {
		out = append(out, m.Funcs[n])
	}
	return out
}

package ir

// Layout is a function's flat code layout: blocks in definition order,
// each occupying a contiguous span of absolute PCs. It is the metadata
// the interpreter's compile step uses to resolve branch targets to PCs
// instead of chasing *Block pointers at run time.
//
// Blocks that do not end in a terminator get one extra reserved PC
// after their last instruction (a "fall-off trap" slot), so an executor
// that flattens the function has a place to put its fell-off-the-block
// diagnostic without perturbing any other block's span.
//
// A Layout is a snapshot: it is valid for the module generation it was
// computed at (Gen). Structural mutation bumps the module generation,
// and consumers holding a Layout whose Gen no longer matches
// Module.Gen() must recompute.
type Layout struct {
	// Gen is the module generation this layout was computed at.
	Gen uint64
	// Blocks lists the function's blocks in layout (definition) order.
	Blocks []*Block
	// Start[i] is the absolute PC of Blocks[i]'s first instruction.
	Start []int
	// N is the total number of PCs, including reserved trap slots.
	N int

	pcOf map[*Block]int
}

// StartOf returns the absolute PC of b's first instruction, or false if
// b is not part of the laid-out function.
func (l *Layout) StartOf(b *Block) (int, bool) {
	pc, ok := l.pcOf[b]
	return pc, ok
}

// TrapPC reports the reserved fall-off slot for Blocks[i], or -1 if the
// block ends in a terminator and has none.
func (l *Layout) TrapPC(i int) int {
	b := l.Blocks[i]
	if b.Terminator() != nil {
		return -1
	}
	return l.Start[i] + len(b.Instrs)
}

// Layout computes the function's flat layout at the current module
// generation. It is a pure read of the IR (no caching, no mutation), so
// concurrent executors may call it on a shared, quiescent module.
func (f *Function) Layout() *Layout {
	l := &Layout{
		Blocks: f.Blocks,
		Start:  make([]int, len(f.Blocks)),
		pcOf:   make(map[*Block]int, len(f.Blocks)),
	}
	if f.mod != nil {
		l.Gen = f.mod.gen
	}
	pc := 0
	for i, b := range f.Blocks {
		l.Start[i] = pc
		l.pcOf[b] = pc
		pc += len(b.Instrs)
		if b.Terminator() == nil {
			pc++ // reserved fall-off trap slot
		}
	}
	l.N = pc
	return l
}

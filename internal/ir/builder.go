package ir

// Builder provides a fluent API for constructing IR, used by the
// workload kernels and by tests.
type Builder struct {
	F   *Function
	Cur *Block
}

// NewBuilder starts building into f at its entry block (creating one if
// the function is empty).
func NewBuilder(f *Function) *Builder {
	b := &Builder{F: f}
	if len(f.Blocks) == 0 {
		b.Cur = f.NewBlock("entry")
	} else {
		b.Cur = f.Blocks[0]
	}
	return b
}

// SetBlock redirects emission to block blk.
func (b *Builder) SetBlock(blk *Block) { b.Cur = blk }

// Block creates a new block without switching to it.
func (b *Builder) Block(name string) *Block { return b.F.NewBlock(name) }

func (b *Builder) emit(in *Instr) *Instr {
	b.Cur.Instrs = append(b.Cur.Instrs, in)
	b.Cur.fn.Touch()
	return in
}

// Const emits Dst = imm and returns Dst.
func (b *Builder) Const(imm int64) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpConst, Dst: d, A: NoReg, B: NoReg, Imm: imm})
	return d
}

// FConst emits Dst = f (float64) and returns Dst.
func (b *Builder) FConst(f float64) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpFConst, Dst: d, A: NoReg, B: NoReg, FImm: f})
	return d
}

// Mov emits Dst = a.
func (b *Builder) Mov(a Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpMov, Dst: d, A: a, B: NoReg})
	return d
}

// MovTo emits dst = a into an existing register (loop variables).
func (b *Builder) MovTo(dst, a Reg) {
	b.emit(&Instr{Op: OpMov, Dst: dst, A: a, B: NoReg})
}

func (b *Builder) bin(op Op, a, c Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: op, Dst: d, A: a, B: c})
	return d
}

// Add emits Dst = a + c.
func (b *Builder) Add(a, c Reg) Reg { return b.bin(OpAdd, a, c) }

// Sub emits Dst = a - c.
func (b *Builder) Sub(a, c Reg) Reg { return b.bin(OpSub, a, c) }

// Mul emits Dst = a * c.
func (b *Builder) Mul(a, c Reg) Reg { return b.bin(OpMul, a, c) }

// Div emits Dst = a / c.
func (b *Builder) Div(a, c Reg) Reg { return b.bin(OpDiv, a, c) }

// Rem emits Dst = a % c.
func (b *Builder) Rem(a, c Reg) Reg { return b.bin(OpRem, a, c) }

// And emits Dst = a & c.
func (b *Builder) And(a, c Reg) Reg { return b.bin(OpAnd, a, c) }

// Or emits Dst = a | c.
func (b *Builder) Or(a, c Reg) Reg { return b.bin(OpOr, a, c) }

// Xor emits Dst = a ^ c.
func (b *Builder) Xor(a, c Reg) Reg { return b.bin(OpXor, a, c) }

// Shl emits Dst = a << c.
func (b *Builder) Shl(a, c Reg) Reg { return b.bin(OpShl, a, c) }

// Shr emits Dst = a >> c.
func (b *Builder) Shr(a, c Reg) Reg { return b.bin(OpShr, a, c) }

// FAdd emits Dst = a + c (float).
func (b *Builder) FAdd(a, c Reg) Reg { return b.bin(OpFAdd, a, c) }

// FSub emits Dst = a - c (float).
func (b *Builder) FSub(a, c Reg) Reg { return b.bin(OpFSub, a, c) }

// FMul emits Dst = a * c (float).
func (b *Builder) FMul(a, c Reg) Reg { return b.bin(OpFMul, a, c) }

// FDiv emits Dst = a / c (float).
func (b *Builder) FDiv(a, c Reg) Reg { return b.bin(OpFDiv, a, c) }

// ICmp emits Dst = pred(a, c) over int64.
func (b *Builder) ICmp(pred Pred, a, c Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpICmp, Dst: d, A: a, B: c, Pred: pred})
	return d
}

// FCmp emits Dst = pred(a, c) over float64.
func (b *Builder) FCmp(pred Pred, a, c Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpFCmp, Dst: d, A: a, B: c, Pred: pred})
	return d
}

// Load emits Dst = mem[a + off].
func (b *Builder) Load(a Reg, off int64) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpLoad, Dst: d, A: a, B: NoReg, Imm: off})
	return d
}

// Store emits mem[a + off] = v.
func (b *Builder) Store(a Reg, off int64, v Reg) {
	b.emit(&Instr{Op: OpStore, A: a, B: v, Imm: off})
}

// Alloc emits Dst = allocate(size bytes).
func (b *Builder) Alloc(size int64) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpAlloc, Dst: d, A: NoReg, B: NoReg, Imm: size})
	return d
}

// AllocReg emits Dst = allocate(sizeReg bytes).
func (b *Builder) AllocReg(size Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpAlloc, Dst: d, A: size, B: NoReg})
	return d
}

// Free emits free(a).
func (b *Builder) Free(a Reg) {
	b.emit(&Instr{Op: OpFree, A: a, B: NoReg})
}

// Call emits Dst = callee(args...).
func (b *Builder) Call(callee string, args ...Reg) Reg {
	d := b.F.NewReg()
	b.emit(&Instr{Op: OpCall, Dst: d, A: NoReg, B: NoReg, Callee: callee, Args: args})
	return d
}

// Br emits a conditional branch: if cond != 0 goto then else els.
func (b *Builder) Br(cond Reg, then, els *Block) {
	b.emit(&Instr{Op: OpBr, A: cond, B: NoReg, Target: then, Else: els})
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(to *Block) {
	b.emit(&Instr{Op: OpJmp, A: NoReg, B: NoReg, Target: to})
}

// Ret emits return a (pass NoReg for void).
func (b *Builder) Ret(a Reg) {
	b.emit(&Instr{Op: OpRet, A: a, B: NoReg})
}

// Param returns the register holding parameter i.
func (b *Builder) Param(i int) Reg {
	if i < 0 || i >= b.F.NumParams {
		panic("ir: parameter index out of range")
	}
	return Reg(i)
}

// CountingLoop is a convenience that builds
//
//	for i = start; i < limit; i += step { body(i) }
//
// and leaves the builder positioned at the exit block. The body callback
// receives the induction variable register.
func (b *Builder) CountingLoop(start, limit, step int64, body func(i Reg)) {
	iv := b.Const(start)
	lim := b.Const(limit)
	st := b.Const(step)

	header := b.Block("loop.header")
	bodyB := b.Block("loop.body")
	exit := b.Block("loop.exit")

	b.Jmp(header)
	b.SetBlock(header)
	cond := b.ICmp(PredLT, iv, lim)
	b.Br(cond, bodyB, exit)

	b.SetBlock(bodyB)
	body(iv)
	next := b.Add(iv, st)
	b.MovTo(iv, next)
	b.Jmp(header)

	b.SetBlock(exit)
}

package ir

// Superinstruction-fusion pattern predicates.
//
// The interpreter's compiled fast path (internal/interp) collapses hot
// adjacent instruction pairs into single pre-decoded superinstructions
// at Compile time, and analysis.LintFusible reports the same pairs as
// opportunity diagnostics. Both consumers share the predicates here so
// the fuser and the linter can never drift: a pair is fused exactly
// when EachFusiblePair visits it.

// NumOps is the number of defined opcodes; engine-private synthetic
// opcodes (fused superinstructions, trap markers) are allocated outside
// [0, NumOps).
const NumOps = int(OpPoll) + 1

// FuseKind identifies one fusible-pair pattern.
type FuseKind int

// Fusible-pair patterns. The first/second constituents are adjacent
// instructions of one basic block. Most patterns require the second to
// consume the first's result (or, for guards, to repeat its effective
// address) — a genuine dependent sequence. The remaining patterns
// (FuseLoadLoad, FuseStoreALU, FuseALUJmp) are dispatch packing for the
// hottest independent adjacencies the pair profile surfaces: back-to-back
// streaming loads and the `store; bump; jump` loop backedge.
const (
	// FuseCmpBr: icmp/fcmp immediately consumed by the block's
	// conditional branch — every counting-loop header.
	FuseCmpBr FuseKind = iota
	// FuseLoadALU: a load whose result feeds the next ALU op.
	FuseLoadALU
	// FuseALULoad: an ALU op computing the address of the next load
	// (the `base + i*8` addressing shape of the kernel suite).
	FuseALULoad
	// FuseALUStore: an ALU op feeding the next store's address or value.
	FuseALUStore
	// FuseGuardLoad / FuseGuardStore: a non-region CARAT guard
	// immediately followed by the access it protects, with the same
	// base register and offset — the CARATInject post-instrument shape.
	FuseGuardLoad
	FuseGuardStore
	// FuseALUALU: an isolated pure-ALU pair (mov+op chains the
	// coalescer leaves behind). Only fused when the pair is not part of
	// a longer straight-line ALU run, which the engine batches better.
	FuseALUALU
	// FuseLoadLoad: two adjacent loads (stencil neighbor reads, pointer
	// chains). Loads are never run-eligible, so this always halves
	// their dispatches.
	FuseLoadLoad
	// FuseStoreALU: a store followed by a pure ALU op — the
	// `a[i] = x; i++` tail of every streaming loop body.
	FuseStoreALU
	// FuseALUJmp: a pure ALU op followed by the block's unconditional
	// jump — the `mov i, t; jmp header` backedge shape.
	FuseALUJmp
)

var fuseKindNames = [...]string{
	FuseCmpBr:      "cmp+br",
	FuseLoadALU:    "load+alu",
	FuseALULoad:    "alu+load",
	FuseALUStore:   "alu+store",
	FuseGuardLoad:  "guard+load",
	FuseGuardStore: "guard+store",
	FuseALUALU:     "alu+alu",
	FuseLoadLoad:   "load+load",
	FuseStoreALU:   "store+alu",
	FuseALUJmp:     "alu+jmp",
}

// String returns the pattern name.
func (k FuseKind) String() string {
	if int(k) < len(fuseKindNames) {
		return fuseKindNames[k]
	}
	return "fuse(?)"
}

// PureALU reports whether op is a pure register-to-register operation:
// it cannot fault, touch memory, invoke hooks, or transfer control.
// Div/Rem are excluded (divide by zero faults). This is the set the
// engine batches into straight-line runs and the set eligible as the
// ALU constituent of a fused pair.
func PureALU(op Op) bool {
	switch op {
	case OpConst, OpFConst, OpMov,
		OpAdd, OpSub, OpMul,
		OpAnd, OpOr, OpXor, OpShl, OpShr,
		OpFAdd, OpFSub, OpFMul, OpFDiv,
		OpICmp, OpFCmp:
		return true
	}
	return false
}

// readsReg reports whether a pure-ALU/load/store/br instruction reads r.
func readsReg(in *Instr, r Reg) bool {
	if r == NoReg {
		return false
	}
	switch in.Op {
	case OpConst, OpFConst:
		return false
	case OpMov, OpLoad, OpBr:
		return in.A == r
	default:
		return in.A == r || in.B == r
	}
}

// FusiblePair reports whether the adjacent instructions (first, second)
// match a fusion pattern, and which one. It is purely structural; the
// profitability policy (run interaction, fusion-table selection) lives
// in EachFusiblePair and its callers.
func FusiblePair(first, second *Instr) (FuseKind, bool) {
	switch {
	case (first.Op == OpICmp || first.Op == OpFCmp) && second.Op == OpBr &&
		second.A == first.Dst:
		return FuseCmpBr, true
	case first.Op == OpGuard && !first.Region && second.Op == OpLoad &&
		second.A == first.A && second.Imm == first.Imm:
		return FuseGuardLoad, true
	case first.Op == OpGuard && !first.Region && second.Op == OpStore &&
		second.A == first.A && second.Imm == first.Imm:
		return FuseGuardStore, true
	case first.Op == OpLoad && second.Op == OpLoad:
		return FuseLoadLoad, true
	case first.Op == OpLoad && PureALU(second.Op) && readsReg(second, first.Dst):
		return FuseLoadALU, true
	case PureALU(first.Op) && second.Op == OpLoad && second.A == first.Dst:
		return FuseALULoad, true
	case PureALU(first.Op) && second.Op == OpStore && readsReg(second, first.Dst):
		return FuseALUStore, true
	case first.Op == OpStore && PureALU(second.Op) &&
		second.Op != OpConst && second.Op != OpFConst:
		// Const/FConst seconds are excluded so the second constituent
		// never needs an immediate (the engine repurposes that encoding
		// slot for the pair's cost split).
		return FuseStoreALU, true
	case PureALU(first.Op) && second.Op == OpJmp:
		return FuseALUJmp, true
	case PureALU(first.Op) && PureALU(second.Op) && readsReg(second, first.Dst):
		return FuseALUALU, true
	}
	return 0, false
}

// FusibleOps reports whether the opcode pair (a, b) can match any
// fusion pattern for some operand assignment. The profile-to-table
// derivation uses it to keep unfusible pairs (call+ret, jmp+anything)
// out of fusion tables.
func FusibleOps(a, b Op) bool {
	switch {
	case (a == OpICmp || a == OpFCmp) && b == OpBr:
		return true
	case a == OpGuard && (b == OpLoad || b == OpStore):
		return true
	case a == OpLoad && (b == OpLoad || PureALU(b)):
		return true
	case a == OpStore && PureALU(b) && b != OpConst && b != OpFConst:
		return true
	case PureALU(a) && (b == OpLoad || b == OpStore || b == OpJmp || PureALU(b)):
		return true
	}
	return false
}

// aluInline is the pure-ALU subset whose fused ALU+ALU pairs measure
// as a win over two single-op dispatches (the engine evaluates them
// inline, in interp's aluHot). The selection policy only picks a
// pure-ALU pair when both constituents are in this set; admitting the
// wider inline set (aluHot2's sub/mul/xor/shr) measured net negative —
// the single-op arms for those are already one direct switch case.
func aluInline(op Op) bool {
	switch op {
	case OpAdd, OpMov, OpFAdd, OpFMul:
		return true
	}
	return false
}

// EachFusiblePair visits the pairs of blk that the fusion stage
// collapses, greedily left to right without overlap (an instruction
// consumed as the second constituent of one pair cannot start another).
// allow filters by opcode pair (nil allows everything — the static
// default heuristic); visit receives the index of the pair's first
// instruction within blk.Instrs and the matched pattern.
//
// Policy: fusion must never compete with the engine's batched run
// dispatch, which already executes any consecutive pure-ALU sequence
// (length >= 2) in a single dispatch with inline operations. A pattern
// is only selected when it genuinely removes a dispatch:
//
//   - FuseCmpBr, FuseGuardLoad, FuseGuardStore, FuseLoadLoad,
//     FuseALUJmp: always. None of them splits a run it shouldn't: a
//     compare ending a run still saves the branch dispatch, guards and
//     loads are never run-eligible, and an ALU+jmp pair at a run tail
//     trades the jump dispatch for the run's last element one-for-one.
//   - FuseLoadALU, FuseStoreALU: only when the instruction after the
//     pair is not pure ALU — otherwise the ALU constituent is the head
//     of a run and fusing it trades run(n)+mem for run(n-1)+fused,
//     dispatch neutral. Exception: when the run the pair would behead
//     is exactly one ALU op followed by the block's jmp, the follow-up
//     FuseALUJmp consumes that remainder, so both pairs fuse — this is
//     the `store x; bump i; mov; jmp` backedge, 4 dispatches down to 2.
//   - FuseALULoad, FuseALUStore: only when the preceding (unconsumed)
//     instruction is not pure ALU — the ALU constituent would be a run
//     tail, and the split run piece is behind us, beyond rescue.
//   - FuseALUALU: only when isolated on both sides (a longer ALU
//     sequence is exactly what the run batcher dispatches best) and
//     both ops are in the engine's inline-evaluated set, so the fused
//     arm is never slower than the run it replaces.
func EachFusiblePair(blk *Block, allow func(first, second Op) bool, visit func(i int, k FuseKind)) {
	ins := blk.Instrs
	prevLive := false // previous instruction is pure ALU and not consumed by a fusion
	for i := 0; i+1 < len(ins); {
		first, second := ins[i], ins[i+1]
		k, ok := FusiblePair(first, second)
		if ok && allow != nil && !allow(first.Op, second.Op) {
			ok = false
		}
		nextALU := i+2 < len(ins) && PureALU(ins[i+2].Op)
		// The one-ALU-then-jmp remainder that FuseALUJmp will absorb.
		jmpRescue := nextALU && i+3 < len(ins) && ins[i+3].Op == OpJmp
		switch {
		case !ok:
		case (k == FuseLoadALU || k == FuseStoreALU) && nextALU && !jmpRescue:
			ok = false
		case (k == FuseALULoad || k == FuseALUStore) && prevLive:
			ok = false
		case k == FuseALUALU && (prevLive || nextALU ||
			!aluInline(first.Op) || !aluInline(second.Op)):
			ok = false
		}
		if ok {
			visit(i, k)
			prevLive = false
			i += 2
			continue
		}
		prevLive = PureALU(first.Op)
		i++
	}
}

// opByName resolves opcode mnemonics (the inverse of Op.String), built
// once from the name table.
var opByName = func() map[string]Op {
	m := make(map[string]Op, len(opNames))
	for op, name := range opNames {
		m[name] = op
	}
	return m
}()

// ParseOp resolves an opcode mnemonic as printed by Op.String
// (fusion-table JSON uses mnemonics so the files are inspectable).
func ParseOp(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}

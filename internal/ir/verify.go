package ir

import (
	"fmt"
	"strings"
)

// Verify checks a function's structural invariants: every block ends in
// exactly one terminator (the last instruction), branch targets belong to
// the function, block names are unique, every non-entry block is
// referenced by some edge, register operands (including call arguments)
// are in range, and the entry block exists. Passes run Verify after
// transforming.
func Verify(f *Function) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("ir: function %s has no blocks", f.Name)
	}
	blockSet := make(map[*Block]bool, len(f.Blocks))
	names := make(map[string]bool, len(f.Blocks))
	for _, b := range f.Blocks {
		blockSet[b] = true
		if names[b.Name] {
			return fmt.Errorf("ir: function %s has duplicate block name %q", f.Name, b.Name)
		}
		names[b.Name] = true
	}
	referenced := make(map[*Block]bool, len(f.Blocks))
	checkReg := func(b *Block, in *Instr, r Reg, what string) error {
		if r == NoReg {
			return nil
		}
		if r < 0 || int(r) >= f.NumRegs {
			return fmt.Errorf("ir: %s.%s: %s register %d out of range [0,%d)",
				f.Name, b.Name, what, r, f.NumRegs)
		}
		return nil
	}
	var uses []Reg
	for _, b := range f.Blocks {
		if len(b.Instrs) == 0 {
			return fmt.Errorf("ir: %s.%s is empty", f.Name, b.Name)
		}
		for i, in := range b.Instrs {
			isLast := i == len(b.Instrs)-1
			if in.Op.IsTerminator() != isLast {
				if isLast {
					return fmt.Errorf("ir: %s.%s does not end in a terminator", f.Name, b.Name)
				}
				return fmt.Errorf("ir: %s.%s has terminator %s mid-block at %d",
					f.Name, b.Name, in.Op, i)
			}
			if d := in.Defs(); d != NoReg {
				if err := checkReg(b, in, d, "def"); err != nil {
					return err
				}
			}
			uses = in.Uses(uses[:0])
			for _, u := range uses {
				if err := checkReg(b, in, u, "use"); err != nil {
					return err
				}
			}
			switch in.Op {
			case OpJmp:
				if in.Target == nil || !blockSet[in.Target] {
					return fmt.Errorf("ir: %s.%s: jmp to foreign block", f.Name, b.Name)
				}
				referenced[in.Target] = true
			case OpBr:
				if in.Target == nil || !blockSet[in.Target] || in.Else == nil || !blockSet[in.Else] {
					return fmt.Errorf("ir: %s.%s: br to foreign block", f.Name, b.Name)
				}
				referenced[in.Target] = true
				referenced[in.Else] = true
			case OpCall:
				if in.Callee == "" {
					return fmt.Errorf("ir: %s.%s: call with empty callee", f.Name, b.Name)
				}
				for ai, arg := range in.Args {
					if arg == NoReg || arg < 0 || int(arg) >= f.NumRegs {
						return fmt.Errorf("ir: %s.%s: call %s argument %d register %d out of range [0,%d)",
							f.Name, b.Name, in.Callee, ai, arg, f.NumRegs)
					}
				}
			}
		}
	}
	// Dead blocks: a non-entry block no edge references is dropped or
	// stranded by a buggy transform. (A dead *cycle* still self-references
	// and passes; the lint layer's CFG walk catches that.)
	for _, b := range f.Blocks[1:] {
		if !referenced[b] {
			return fmt.Errorf("ir: %s.%s is referenced by no edge", f.Name, b.Name)
		}
	}
	return nil
}

// VerifyModule verifies every function and that calls resolve to defined
// functions or registered intrinsic names.
func VerifyModule(m *Module, extern map[string]bool) error {
	for _, f := range m.Functions() {
		if err := Verify(f); err != nil {
			return err
		}
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != OpCall {
					continue
				}
				if _, ok := m.Funcs[in.Callee]; ok {
					callee := m.Funcs[in.Callee]
					if len(in.Args) != callee.NumParams {
						return fmt.Errorf("ir: %s calls %s with %d args, want %d",
							f.Name, in.Callee, len(in.Args), callee.NumParams)
					}
					continue
				}
				if extern != nil && extern[in.Callee] {
					continue
				}
				return fmt.Errorf("ir: %s calls undefined %s", f.Name, in.Callee)
			}
		}
	}
	return nil
}

// Format renders a function as readable text (for debugging and golden
// tests).
func Format(f *Function) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "func %s(%d params, %d regs) {\n", f.Name, f.NumParams, f.NumRegs)
	for _, b := range f.Blocks {
		fmt.Fprintf(&sb, "%s:\n", b.Name)
		for _, in := range b.Instrs {
			sb.WriteString("  ")
			sb.WriteString(formatInstr(in))
			sb.WriteByte('\n')
		}
	}
	sb.WriteString("}\n")
	return sb.String()
}

func formatInstr(in *Instr) string {
	switch in.Op {
	case OpConst:
		return fmt.Sprintf("v%d = const %d", in.Dst, in.Imm)
	case OpFConst:
		return fmt.Sprintf("v%d = fconst %g", in.Dst, in.FImm)
	case OpMov:
		return fmt.Sprintf("v%d = v%d", in.Dst, in.A)
	case OpLoad:
		return fmt.Sprintf("v%d = load [v%d+%d]", in.Dst, in.A, in.Imm)
	case OpStore:
		return fmt.Sprintf("store [v%d+%d] = v%d", in.A, in.Imm, in.B)
	case OpAlloc:
		if in.A != NoReg {
			return fmt.Sprintf("v%d = alloc v%d", in.Dst, in.A)
		}
		return fmt.Sprintf("v%d = alloc %d", in.Dst, in.Imm)
	case OpFree:
		return fmt.Sprintf("free v%d", in.A)
	case OpCall:
		return fmt.Sprintf("v%d = call %s%v", in.Dst, in.Callee, in.Args)
	case OpBr:
		return fmt.Sprintf("br v%d ? %s : %s", in.A, in.Target.Name, in.Else.Name)
	case OpJmp:
		return fmt.Sprintf("jmp %s", in.Target.Name)
	case OpRet:
		if in.A == NoReg {
			return "ret"
		}
		return fmt.Sprintf("ret v%d", in.A)
	case OpICmp, OpFCmp:
		return fmt.Sprintf("v%d = %s.%d v%d, v%d", in.Dst, in.Op, in.Pred, in.A, in.B)
	case OpGuard:
		if in.Region {
			return fmt.Sprintf("carat.guard.region v%d", in.A)
		}
		return fmt.Sprintf("carat.guard [v%d+%d]", in.A, in.Imm)
	case OpTrackAlloc, OpTrackFree, OpTrackEsc, OpYieldCheck, OpPoll:
		if in.A != NoReg {
			return fmt.Sprintf("%s v%d", in.Op, in.A)
		}
		return in.Op.String()
	default:
		return fmt.Sprintf("v%d = %s v%d, v%d", in.Dst, in.Op, in.A, in.B)
	}
}

package ir

import (
	"strings"
	"testing"
)

// buildSumLoop builds: func sum(n) { s=0; for i=0;i<n;i++ { s+=i }; ret s }
func buildSumLoop() *Function {
	m := NewModule("t")
	f := m.NewFunction("sum", 1)
	b := NewBuilder(f)
	n := b.Param(0)
	s := b.Const(0)
	i := b.Const(0)
	one := b.Const(1)

	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")

	b.Jmp(header)
	b.SetBlock(header)
	cond := b.ICmp(PredLT, i, n)
	b.Br(cond, body, exit)

	b.SetBlock(body)
	ns := b.Add(s, i)
	b.MovTo(s, ns)
	ni := b.Add(i, one)
	b.MovTo(i, ni)
	b.Jmp(header)

	b.SetBlock(exit)
	b.Ret(s)
	return f
}

func TestVerifyValidFunction(t *testing.T) {
	f := buildSumLoop()
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyCatchesMissingTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("bad", 0)
	b := NewBuilder(f)
	b.Const(1) // no terminator
	if err := Verify(f); err == nil {
		t.Fatal("expected verification failure")
	}
}

func TestVerifyCatchesMidBlockTerminator(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("bad", 0)
	b := NewBuilder(f)
	b.Ret(NoReg)
	b.Const(1)
	b.Ret(NoReg)
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "mid-block") {
		t.Fatalf("err = %v", err)
	}
}

func TestVerifyCatchesForeignBlock(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("bad", 0)
	g := m.NewFunction("other", 0)
	gb := g.NewBlock("gentry")
	gb.Instrs = append(gb.Instrs, &Instr{Op: OpRet, A: NoReg, B: NoReg})
	b := NewBuilder(f)
	b.Jmp(gb)
	if err := Verify(f); err == nil {
		t.Fatal("expected foreign-block failure")
	}
}

func TestVerifyCatchesBadRegister(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("bad", 0)
	b := NewBuilder(f)
	b.Cur.Instrs = append(b.Cur.Instrs, &Instr{Op: OpMov, Dst: 0, A: 57, B: NoReg})
	f.NumRegs = 1
	b.Ret(NoReg)
	if err := Verify(f); err == nil {
		t.Fatal("expected register range failure")
	}
}

func TestVerifyModuleCallResolution(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("caller", 0)
	b := NewBuilder(f)
	b.Call("missing")
	b.Ret(NoReg)
	if err := VerifyModule(m, nil); err == nil {
		t.Fatal("expected undefined-callee failure")
	}
	if err := VerifyModule(m, map[string]bool{"missing": true}); err != nil {
		t.Fatalf("extern should resolve: %v", err)
	}
}

func TestVerifyModuleArity(t *testing.T) {
	m := NewModule("t")
	callee := m.NewFunction("f", 2)
	cb := NewBuilder(callee)
	cb.Ret(NoReg)
	caller := m.NewFunction("g", 0)
	b := NewBuilder(caller)
	x := b.Const(1)
	b.Call("f", x) // wrong arity
	b.Ret(NoReg)
	if err := VerifyModule(m, nil); err == nil || !strings.Contains(err.Error(), "args") {
		t.Fatalf("err = %v", err)
	}
}

func TestCFGPredsAndRPO(t *testing.T) {
	f := buildSumLoop()
	info := AnalyzeCFG(f)
	entry := f.Blocks[0]
	header := f.Blocks[1]
	body := f.Blocks[2]
	exit := f.Blocks[3]

	if info.RPO[0] != entry {
		t.Fatal("RPO must start at entry")
	}
	preds := info.Preds[header]
	if len(preds) != 2 {
		t.Fatalf("header preds = %d, want 2 (entry + latch)", len(preds))
	}
	if len(info.Preds[exit]) != 1 || info.Preds[exit][0] != header {
		t.Fatal("exit pred wrong")
	}
	_ = body
}

func TestDominators(t *testing.T) {
	f := buildSumLoop()
	info := AnalyzeCFG(f)
	entry, header, body, exit := f.Blocks[0], f.Blocks[1], f.Blocks[2], f.Blocks[3]
	if !info.Dominates(entry, exit) || !info.Dominates(header, body) ||
		!info.Dominates(header, exit) {
		t.Fatal("dominance facts wrong")
	}
	if info.Dominates(body, exit) {
		t.Fatal("body must not dominate exit")
	}
	if info.IDom[body] != header || info.IDom[exit] != header || info.IDom[header] != entry {
		t.Fatal("idom tree wrong")
	}
}

func TestLoopDetection(t *testing.T) {
	f := buildSumLoop()
	info := AnalyzeCFG(f)
	if len(info.Loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(info.Loops))
	}
	l := info.Loops[0]
	header, body := f.Blocks[1], f.Blocks[2]
	if l.Header != header {
		t.Fatal("wrong loop header")
	}
	if !l.Contains(body) || !l.Contains(header) {
		t.Fatal("loop body wrong")
	}
	if l.Contains(f.Blocks[0]) || l.Contains(f.Blocks[3]) {
		t.Fatal("loop includes non-loop blocks")
	}
	if l.Depth != 1 {
		t.Fatalf("depth = %d", l.Depth)
	}
	if len(l.Latches) != 1 || l.Latches[0] != body {
		t.Fatal("latch wrong")
	}
}

func TestNestedLoops(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("nested", 1)
	b := NewBuilder(f)
	b.CountingLoop(0, 10, 1, func(i Reg) {
		b.CountingLoop(0, 10, 1, func(j Reg) {
			b.Add(i, j)
		})
	})
	b.Ret(NoReg)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	info := AnalyzeCFG(f)
	if len(info.Loops) != 2 {
		t.Fatalf("found %d loops, want 2", len(info.Loops))
	}
	var inner, outer *Loop
	for _, l := range info.Loops {
		if l.Depth == 2 {
			inner = l
		} else if l.Depth == 1 {
			outer = l
		}
	}
	if inner == nil || outer == nil {
		t.Fatalf("depths wrong: %+v", info.Loops)
	}
	if inner.Parent != outer {
		t.Fatal("nesting wrong")
	}
	if !outer.Blocks[inner.Header] {
		t.Fatal("outer loop must contain inner header")
	}
}

func TestLoopOf(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("nested", 0)
	b := NewBuilder(f)
	var innerBody *Block
	b.CountingLoop(0, 4, 1, func(i Reg) {
		b.CountingLoop(0, 4, 1, func(j Reg) {
			innerBody = b.Cur
			b.Add(i, j)
		})
	})
	b.Ret(NoReg)
	info := AnalyzeCFG(f)
	l := info.LoopOf(innerBody)
	if l == nil || l.Depth != 2 {
		t.Fatalf("LoopOf(inner body) = %+v", l)
	}
	if info.LoopOf(f.Entry()) != nil {
		t.Fatal("entry should be in no loop")
	}
}

func TestPreheaderExisting(t *testing.T) {
	f := buildSumLoop()
	info := AnalyzeCFG(f)
	l := info.Loops[0]
	nBefore := len(f.Blocks)
	ph := info.Preheader(l)
	if ph != f.Blocks[0] {
		t.Fatal("entry should already serve as preheader")
	}
	if len(f.Blocks) != nBefore {
		t.Fatal("no block should have been inserted")
	}
}

func TestPreheaderInsertion(t *testing.T) {
	// Build a CFG where the loop header has an outside predecessor whose
	// terminator also goes elsewhere — forcing preheader insertion.
	m := NewModule("t")
	f := m.NewFunction("g", 1)
	b := NewBuilder(f)
	cond := b.Param(0)
	header := b.Block("header")
	other := b.Block("other")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Br(cond, header, other)
	b.SetBlock(other)
	b.Jmp(exit)
	b.SetBlock(header)
	c2 := b.ICmp(PredLT, cond, cond)
	b.Br(c2, body, exit)
	b.SetBlock(body)
	b.Jmp(header)
	b.SetBlock(exit)
	b.Ret(NoReg)

	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	info := AnalyzeCFG(f)
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d", len(info.Loops))
	}
	nBefore := len(f.Blocks)
	ph := info.Preheader(info.Loops[0])
	if len(f.Blocks) != nBefore+1 {
		t.Fatal("preheader not inserted")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("function invalid after preheader insertion: %v", err)
	}
	// The entry branch must now route through the preheader.
	entryT := f.Entry().Terminator()
	if entryT.Target != ph {
		t.Fatal("entry edge not redirected to preheader")
	}
	// Re-analysis must still find the loop, preheader outside it.
	info2 := AnalyzeCFG(f)
	if len(info2.Loops) != 1 || info2.Loops[0].Contains(ph) {
		t.Fatal("preheader wrongly inside loop")
	}
}

func TestRegsWrittenIn(t *testing.T) {
	f := buildSumLoop()
	info := AnalyzeCFG(f)
	w := info.Loops[0].RegsWrittenIn()
	// s and i (regs 1 and 2) are written in the loop; n (param, reg 0)
	// and the constant one (reg 3) are not.
	if !w[Reg(1)] || !w[Reg(2)] {
		t.Fatalf("loop-written set missing accumulators: %v", w)
	}
	if w[Reg(0)] || w[Reg(3)] {
		t.Fatalf("loop-written set includes invariants: %v", w)
	}
}

func TestCountingLoopShape(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("cl", 0)
	b := NewBuilder(f)
	iters := 0
	b.CountingLoop(0, 100, 2, func(i Reg) { iters++ })
	b.Ret(NoReg)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	if iters != 1 {
		t.Fatal("body builder should run exactly once at build time")
	}
	info := AnalyzeCFG(f)
	if len(info.Loops) != 1 {
		t.Fatal("CountingLoop produced wrong loop count")
	}
}

func TestFormatAndOpString(t *testing.T) {
	f := buildSumLoop()
	s := Format(f)
	for _, want := range []string{"func sum", "icmp", "br", "ret"} {
		if !strings.Contains(s, want) {
			t.Fatalf("formatted output missing %q:\n%s", want, s)
		}
	}
	if OpGuard.String() != "carat.guard" {
		t.Fatal("op name wrong")
	}
	if Op(999).String() == "" {
		t.Fatal("unknown op should still format")
	}
}

func TestUsesDefs(t *testing.T) {
	in := &Instr{Op: OpStore, A: 1, B: 2, Imm: 8}
	if in.Defs() != NoReg {
		t.Fatal("store defines nothing")
	}
	uses := in.Uses(nil)
	if len(uses) != 2 {
		t.Fatalf("store uses = %v", uses)
	}
	call := &Instr{Op: OpCall, Dst: 3, Callee: "f", Args: []Reg{4, 5}}
	if call.Defs() != 3 {
		t.Fatal("call def wrong")
	}
	if u := call.Uses(nil); len(u) != 2 {
		t.Fatalf("call uses = %v", u)
	}
}

func TestCountOpAndInstrCount(t *testing.T) {
	f := buildSumLoop()
	if f.CountOp(OpAdd) != 2 {
		t.Fatalf("adds = %d", f.CountOp(OpAdd))
	}
	if f.InstrCount() == 0 {
		t.Fatal("instr count zero")
	}
}

func TestModuleFunctionsOrder(t *testing.T) {
	m := NewModule("t")
	m.NewFunction("a", 0)
	m.NewFunction("b", 0)
	m.NewFunction("c", 0)
	fs := m.Functions()
	if len(fs) != 3 || fs[0].Name != "a" || fs[2].Name != "c" {
		t.Fatal("definition order not preserved")
	}
}

func TestParamOutOfRangePanics(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("f", 1)
	b := NewBuilder(f)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	b.Param(3)
}

func TestVerifyCatchesDuplicateBlockNames(t *testing.T) {
	f := buildSumLoop()
	// NewBlock uniquifies, so force the collision directly.
	f.Blocks[1].Name = f.Blocks[0].Name
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "duplicate block name") {
		t.Fatalf("want duplicate-block-name error, got %v", err)
	}
}

func TestVerifyCatchesUnreferencedBlock(t *testing.T) {
	f := buildSumLoop()
	dead := f.NewBlock("dead")
	dead.Instrs = append(dead.Instrs, &Instr{Op: OpRet, A: NoReg, B: NoReg})
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "referenced by no edge") {
		t.Fatalf("want unreferenced-block error, got %v", err)
	}
}

func TestVerifyCatchesBadCallArg(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("caller", 0)
	b := NewBuilder(f)
	x := b.Const(1)
	b.Call("ext", x)
	b.Ret(NoReg)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}
	// A NoReg argument previously slipped through operand checking
	// (Uses passes Args verbatim and the checker skips NoReg).
	f.Blocks[0].Instrs[1].Args[0] = NoReg
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("want call-argument error, got %v", err)
	}
	// Out-of-range args were already rejected via the generic operand
	// check; keep that covered too.
	f.Blocks[0].Instrs[1].Args[0] = Reg(f.NumRegs)
	if err := Verify(f); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("want out-of-range error, got %v", err)
	}
}

func TestNewBlockUniquifiesNames(t *testing.T) {
	m := NewModule("t")
	f := m.NewFunction("g", 0)
	b := NewBuilder(f)
	b1 := b.Block("loop")
	b2 := b.Block("loop")
	b3 := b.Block("loop")
	if b1.Name == b2.Name || b2.Name == b3.Name || b1.Name == b3.Name {
		t.Fatalf("names not uniquified: %q %q %q", b1.Name, b2.Name, b3.Name)
	}
}

func TestPreheaderWhenHeaderIsEntry(t *testing.T) {
	// A self-loop on the entry block: every predecessor of the header is
	// a latch, so the inserted preheader has no incoming edge to steal —
	// it must become the new entry block.
	m := NewModule("t")
	f := m.NewFunction("g", 1)
	b := NewBuilder(f)
	exit := b.Block("exit")
	n := b.Param(0)
	c := b.ICmp(PredLT, n, n)
	b.Br(c, f.Entry(), exit)
	b.SetBlock(exit)
	b.Ret(NoReg)
	if err := Verify(f); err != nil {
		t.Fatal(err)
	}

	info := AnalyzeCFG(f)
	if len(info.Loops) != 1 {
		t.Fatalf("loops = %d", len(info.Loops))
	}
	header := info.Loops[0].Header
	ph := info.Preheader(info.Loops[0])
	if f.Blocks[0] != ph {
		t.Fatalf("preheader %s is not the new entry (entry is %s)", ph.Name, f.Blocks[0].Name)
	}
	if got := ph.Terminator(); got.Op != OpJmp || got.Target != header {
		t.Fatal("preheader must jump straight to the old header")
	}
	if err := Verify(f); err != nil {
		t.Fatalf("function invalid after preheader insertion: %v", err)
	}
	// Re-analysis: preheader reachable, outside the loop, and the loop
	// is still found.
	info2 := AnalyzeCFG(f)
	if len(info2.Loops) != 1 || info2.Loops[0].Contains(ph) {
		t.Fatal("preheader wrongly inside loop after reanalysis")
	}
	if info2.RPO[0] != ph {
		t.Fatal("preheader not first in RPO")
	}
}

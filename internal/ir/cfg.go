package ir

// CFGInfo caches control-flow analyses for a function: predecessors,
// reverse postorder, immediate dominators, and natural loops. Passes
// recompute it after structural edits.
type CFGInfo struct {
	F     *Function
	Preds map[*Block][]*Block
	// RPO is the reverse postorder over reachable blocks.
	RPO []*Block
	// rpoIndex maps block -> position in RPO; unreachable blocks absent.
	rpoIndex map[*Block]int
	// IDom maps block -> immediate dominator (entry maps to itself).
	IDom map[*Block]*Block
	// Loops are the natural loops, innermost-last.
	Loops []*Loop
}

// Loop is a natural loop: header plus body blocks.
type Loop struct {
	Header *Block
	// Blocks includes the header.
	Blocks map[*Block]bool
	// Latches are the blocks with back edges to the header.
	Latches []*Block
	// Parent is the enclosing loop, nil for top-level.
	Parent *Loop
	// Depth is 1 for top-level loops.
	Depth int
}

// Contains reports whether b is inside the loop.
func (l *Loop) Contains(b *Block) bool { return l.Blocks[b] }

// AnalyzeCFG computes CFG facts for f.
func AnalyzeCFG(f *Function) *CFGInfo {
	f.renumber()
	info := &CFGInfo{
		F:        f,
		Preds:    make(map[*Block][]*Block),
		rpoIndex: make(map[*Block]int),
		IDom:     make(map[*Block]*Block),
	}
	entry := f.Entry()
	if entry == nil {
		return info
	}

	// DFS postorder over reachable blocks.
	visited := make(map[*Block]bool)
	var postorder []*Block
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b] = true
		for _, s := range b.Succs() {
			info.Preds[s] = append(info.Preds[s], b)
			if !visited[s] {
				dfs(s)
			}
		}
		postorder = append(postorder, b)
	}
	dfs(entry)

	info.RPO = make([]*Block, len(postorder))
	for i, b := range postorder {
		info.RPO[len(postorder)-1-i] = b
	}
	for i, b := range info.RPO {
		info.rpoIndex[b] = i
	}

	info.computeDominators()
	info.findLoops()
	return info
}

// computeDominators is the Cooper–Harvey–Kennedy iterative algorithm.
func (c *CFGInfo) computeDominators() {
	if len(c.RPO) == 0 {
		return
	}
	entry := c.RPO[0]
	c.IDom[entry] = entry
	changed := true
	for changed {
		changed = false
		for _, b := range c.RPO[1:] {
			var newIDom *Block
			for _, p := range c.Preds[b] {
				if _, ok := c.IDom[p]; !ok {
					continue // pred not yet processed
				}
				if newIDom == nil {
					newIDom = p
				} else {
					newIDom = c.intersect(p, newIDom)
				}
			}
			if newIDom == nil {
				continue
			}
			if c.IDom[b] != newIDom {
				c.IDom[b] = newIDom
				changed = true
			}
		}
	}
}

func (c *CFGInfo) intersect(a, b *Block) *Block {
	for a != b {
		for c.rpoIndex[a] > c.rpoIndex[b] {
			a = c.IDom[a]
		}
		for c.rpoIndex[b] > c.rpoIndex[a] {
			b = c.IDom[b]
		}
	}
	return a
}

// Dominates reports whether a dominates b.
func (c *CFGInfo) Dominates(a, b *Block) bool {
	if _, ok := c.rpoIndex[b]; !ok {
		return false // unreachable
	}
	for {
		if a == b {
			return true
		}
		idom := c.IDom[b]
		if idom == b || idom == nil {
			return false
		}
		b = idom
	}
}

// findLoops locates back edges (edge t->h where h dominates t) and grows
// each natural loop body.
func (c *CFGInfo) findLoops() {
	loopsByHeader := make(map[*Block]*Loop)
	var headers []*Block
	for _, b := range c.RPO {
		for _, s := range b.Succs() {
			if c.Dominates(s, b) {
				// b -> s is a back edge; s is the header.
				l, ok := loopsByHeader[s]
				if !ok {
					l = &Loop{Header: s, Blocks: map[*Block]bool{s: true}}
					loopsByHeader[s] = l
					headers = append(headers, s)
				}
				l.Latches = append(l.Latches, b)
				// Grow loop body: all blocks that reach the latch
				// without passing through the header.
				var stack []*Block
				if !l.Blocks[b] {
					l.Blocks[b] = true
					stack = append(stack, b)
				}
				for len(stack) > 0 {
					x := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					for _, p := range c.Preds[x] {
						if !l.Blocks[p] {
							l.Blocks[p] = true
							stack = append(stack, p)
						}
					}
				}
			}
		}
	}
	// Nesting: loop A is a parent of loop B if A contains B's header and
	// A != B. Choose the smallest such container as the parent.
	for _, h := range headers {
		l := loopsByHeader[h]
		var parent *Loop
		for _, h2 := range headers {
			l2 := loopsByHeader[h2]
			if l2 == l || !l2.Blocks[l.Header] {
				continue
			}
			if parent == nil || len(l2.Blocks) < len(parent.Blocks) {
				parent = l2
			}
		}
		l.Parent = parent
	}
	for _, h := range headers {
		l := loopsByHeader[h]
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
		c.Loops = append(c.Loops, l)
	}
}

// LoopOf returns the innermost loop containing b, or nil.
func (c *CFGInfo) LoopOf(b *Block) *Loop {
	var best *Loop
	for _, l := range c.Loops {
		if l.Blocks[b] && (best == nil || l.Depth > best.Depth) {
			best = l
		}
	}
	return best
}

// Preheader returns the unique predecessor of the loop header that is
// outside the loop, inserting a fresh preheader block if needed. The
// CFGInfo becomes stale after an insertion; callers must re-analyze if
// they need further queries.
func (c *CFGInfo) Preheader(l *Loop) *Block {
	var outside []*Block
	for _, p := range c.Preds[l.Header] {
		if !l.Blocks[p] {
			outside = append(outside, p)
		}
	}
	if len(outside) == 1 {
		// A usable preheader must have the header as its only successor;
		// otherwise code placed there would execute on other paths too.
		if succ := outside[0].Succs(); len(succ) == 1 && succ[0] == l.Header {
			return outside[0]
		}
	}
	// Insert a dedicated preheader.
	ph := c.F.NewBlock(l.Header.Name + ".preheader")
	ph.Instrs = append(ph.Instrs, &Instr{Op: OpJmp, A: NoReg, B: NoReg, Target: l.Header})
	if len(outside) == 0 {
		// The header is the function entry (every predecessor is a latch
		// inside the loop). No edge can be redirected at the new block, so
		// it must become the new entry — left at the tail it would be
		// unreachable and code placed in it would silently never execute.
		last := len(c.F.Blocks) - 1
		copy(c.F.Blocks[1:], c.F.Blocks[:last])
		c.F.Blocks[0] = ph
	}
	for _, p := range outside {
		t := p.Terminator()
		if t.Target == l.Header {
			t.Target = ph
		}
		if t.Op == OpBr && t.Else == l.Header {
			t.Else = ph
		}
	}
	c.F.renumber()
	return ph
}

// RegsWrittenIn returns the set of registers defined anywhere in the loop
// body — the basis of the loop-invariance approximation the hoisting pass
// uses (a register unwritten in the loop is invariant across iterations).
func (l *Loop) RegsWrittenIn() map[Reg]bool {
	w := make(map[Reg]bool)
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != NoReg {
				w[d] = true
			}
			// Calls may clobber nothing in our IR (no globals), but an
			// Alloc's Dst is a def handled above.
		}
	}
	return w
}

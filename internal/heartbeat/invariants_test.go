package heartbeat

import (
	"strings"
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

// TestDequeCheckInvariantsTable corrupts a deque in each of the ways
// the checker must catch (plus healthy controls): the failure cases are
// exactly the states a broken steal/pop path would leave behind.
func TestDequeCheckInvariantsTable(t *testing.T) {
	t.Parallel()
	frame := func() *Frame { return &Frame{Lo: 0, Hi: 10, Grain: 1} }
	cases := []struct {
		name    string
		mutate  func(d *Deque)
		wantErr string // substring of the invariant error; "" = healthy
	}{
		{
			name:   "empty-is-healthy",
			mutate: func(d *Deque) {},
		},
		{
			name: "push-pop-steal-is-healthy",
			mutate: func(d *Deque) {
				d.PushBottom(frame())
				d.PushBottom(frame())
				d.PushBottom(frame())
				d.PopBottom()
				d.StealTop()
			},
		},
		{
			name:    "top-past-end",
			mutate:  func(d *Deque) { d.PushBottom(frame()); d.top = 2 },
			wantErr: "outside",
		},
		{
			name:    "negative-top",
			mutate:  func(d *Deque) { d.top = -1 },
			wantErr: "outside",
		},
		{
			name: "nil-live-slot",
			mutate: func(d *Deque) {
				d.PushBottom(frame())
				d.PushBottom(frame())
				d.items[1] = nil // a pop that forgot to shrink
			},
			wantErr: "nil frame",
		},
		{
			name: "leaked-stolen-slot",
			mutate: func(d *Deque) {
				d.PushBottom(frame())
				d.PushBottom(frame())
				d.items = append([]*Frame(nil), d.items...)
				d.top = 1 // steal that forgot to release items[0]
				d.Steals++
			},
			wantErr: "still holds",
		},
		{
			name: "counter-drift",
			mutate: func(d *Deque) {
				d.PushBottom(frame())
				d.Pops++ // a pop was counted that never happened
			},
			wantErr: "counters",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			d := NewDeque()
			tc.mutate(d)
			err := d.CheckInvariants()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("healthy deque flagged: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckInvariants() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestRuntimeCheckInvariantsTable drives the cross-worker checker
// through healthy and corrupted runtime states: double frame ownership,
// negative ranges, and item-conservation drift.
func TestRuntimeCheckInvariantsTable(t *testing.T) {
	t.Parallel()
	build := func() *Runtime {
		eng := sim.NewEngine()
		m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: 2}, 7)
		return New(m, DefaultConfig())
	}
	cases := []struct {
		name    string
		mutate  func(rt *Runtime)
		wantErr string
	}{
		{
			name: "distributed-frames-healthy",
			mutate: func(rt *Runtime) {
				rt.running = true
				rt.remaining = 30
				rt.workers[0].deque.PushBottom(&Frame{Lo: 0, Hi: 20, Grain: 1})
				rt.workers[1].cur = &Frame{Lo: 20, Hi: 30, Grain: 1}
			},
		},
		{
			name: "double-owned-frame",
			mutate: func(rt *Runtime) {
				f := &Frame{Lo: 0, Hi: 10, Grain: 1}
				rt.workers[0].deque.PushBottom(f)
				rt.workers[1].cur = f
			},
			wantErr: "owned by workers",
		},
		{
			name: "negative-range",
			mutate: func(rt *Runtime) {
				rt.workers[0].cur = &Frame{Lo: 10, Hi: 3, Grain: 1}
			},
			wantErr: "negative range",
		},
		{
			name: "lost-items",
			mutate: func(rt *Runtime) {
				rt.running = true
				rt.remaining = 50 // but only 20 items are held by frames
				rt.workers[0].deque.PushBottom(&Frame{Lo: 0, Hi: 20, Grain: 1})
			},
			wantErr: "remain outstanding",
		},
		{
			name: "corrupt-worker-deque-surfaces",
			mutate: func(rt *Runtime) {
				rt.workers[1].deque.top = 7
			},
			wantErr: "worker 1",
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			rt := build()
			tc.mutate(rt)
			err := rt.CheckInvariants()
			if tc.wantErr == "" {
				if err != nil {
					t.Fatalf("healthy runtime flagged: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("CheckInvariants() = %v, want error containing %q", err, tc.wantErr)
			}
		})
	}
}

// TestFrameSplitAboveTable pins SplitAbove across floors: no floor,
// floor inside the range, floor leaving too little room (the failure
// path returning nil), and floor past the end.
func TestFrameSplitAboveTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name      string
		frame     Frame
		floor     int64
		wantSplit bool
		wantLo    int64 // upper.Lo when split
	}{
		{name: "floor-below-lo", frame: Frame{Lo: 10, Hi: 110, Grain: 4}, floor: 0, wantSplit: true, wantLo: 60},
		{name: "floor-inside", frame: Frame{Lo: 0, Hi: 100, Grain: 4}, floor: 60, wantSplit: true, wantLo: 80},
		{name: "floor-too-high", frame: Frame{Lo: 0, Hi: 100, Grain: 30}, floor: 50, wantSplit: false},
		{name: "floor-past-end", frame: Frame{Lo: 0, Hi: 100, Grain: 4}, floor: 200, wantSplit: false},
		{name: "below-grain", frame: Frame{Lo: 0, Hi: 7, Grain: 4}, floor: 0, wantSplit: false},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			f := tc.frame
			total := f.Remaining()
			u := f.SplitAbove(tc.floor)
			if (u != nil) != tc.wantSplit {
				t.Fatalf("SplitAbove(%d) = %v, wantSplit=%v", tc.floor, u, tc.wantSplit)
			}
			if u == nil {
				if f.Remaining() != total {
					t.Fatalf("failed split still shrank the frame: %+v", f)
				}
				return
			}
			if u.Lo != tc.wantLo || f.Hi != u.Lo {
				t.Fatalf("split ranges wrong: f=%+v u=%+v, want upper.Lo=%d", f, u, tc.wantLo)
			}
			if f.Remaining()+u.Remaining() != total {
				t.Fatalf("split lost items: f=%+v u=%+v total=%d", f, u, total)
			}
		})
	}
}

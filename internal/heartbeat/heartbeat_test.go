package heartbeat

import (
	"testing"
	"testing/quick"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestFrameSplit(t *testing.T) {
	t.Parallel()
	f := &Frame{Lo: 0, Hi: 100, CyclesPerItem: 10, Grain: 8}
	if !f.Splittable() {
		t.Fatal("should be splittable")
	}
	u := f.Split()
	if f.Lo != 0 || f.Hi != 50 || u.Lo != 50 || u.Hi != 100 {
		t.Fatalf("split wrong: f=%+v u=%+v", f, u)
	}
	small := &Frame{Lo: 0, Hi: 10, Grain: 8}
	if small.Splittable() {
		t.Fatal("too small to split")
	}
}

func TestSplitAboveRespectsFloor(t *testing.T) {
	t.Parallel()
	f := &Frame{Lo: 0, Hi: 100, Grain: 4}
	u := f.SplitAbove(60)
	if u == nil {
		t.Fatal("expected split")
	}
	if u.Lo < 60 {
		t.Fatalf("split cut into in-flight slice: upper.Lo = %d", u.Lo)
	}
	if f.Hi != u.Lo || u.Hi != 100 {
		t.Fatalf("ranges wrong: f=%+v u=%+v", f, u)
	}
	// Floor leaves less than 2*grain above: no split.
	g := &Frame{Lo: 0, Hi: 100, Grain: 30}
	if g.SplitAbove(50) != nil {
		t.Fatal("split despite insufficient room above floor")
	}
}

func TestSplitConservesItemsProperty(t *testing.T) {
	t.Parallel()
	check := func(hi uint16, floorRaw uint16, grain uint8) bool {
		h := int64(hi)%1000 + 2
		g := int64(grain)%20 + 1
		f := &Frame{Lo: 0, Hi: h, Grain: g}
		floor := int64(floorRaw) % (h + 10)
		total := f.Remaining()
		u := f.SplitAbove(floor)
		if u == nil {
			return f.Remaining() == total
		}
		return f.Remaining()+u.Remaining() == total && u.Lo >= floor && f.Hi == u.Lo
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDequeOrdering(t *testing.T) {
	t.Parallel()
	d := NewDeque()
	f1 := &Frame{Lo: 1}
	f2 := &Frame{Lo: 2}
	f3 := &Frame{Lo: 3}
	d.PushBottom(f1)
	d.PushBottom(f2)
	d.PushBottom(f3)
	if d.Len() != 3 {
		t.Fatalf("len = %d", d.Len())
	}
	// Owner pops LIFO.
	if d.PopBottom() != f3 {
		t.Fatal("pop should be LIFO")
	}
	// Thief steals FIFO.
	if d.StealTop() != f1 {
		t.Fatal("steal should be FIFO")
	}
	if d.PopBottom() != f2 {
		t.Fatal("remaining element wrong")
	}
	if d.PopBottom() != nil || d.StealTop() != nil {
		t.Fatal("empty deque should return nil")
	}
}

func TestDequeCompaction(t *testing.T) {
	t.Parallel()
	d := NewDeque()
	for i := 0; i < 200; i++ {
		d.PushBottom(&Frame{Lo: int64(i)})
	}
	for i := 0; i < 150; i++ {
		if f := d.StealTop(); f.Lo != int64(i) {
			t.Fatalf("steal order broken at %d", i)
		}
	}
	if d.Len() != 50 {
		t.Fatalf("len = %d", d.Len())
	}
	if d.String() == "" {
		t.Fatal("empty String")
	}
}

func newRuntime(cpus int, cfg Config) *Runtime {
	eng := sim.NewEngine()
	m := machine.New(eng, model.Default(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 42)
	return New(m, cfg)
}

func TestRunCompletesAllWork(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	rt := newRuntime(4, cfg)
	rt.Run(100_000, 50, 32)
	if rt.DoneAt() == 0 {
		t.Fatal("never finished")
	}
	var items int64
	for i := 0; i < rt.NumWorkers(); i++ {
		items += rt.WorkerStats(i).Items
	}
	if items != 100_000 {
		t.Fatalf("items executed = %d, want 100000", items)
	}
}

func TestHeartbeatPromotesParallelism(t *testing.T) {
	t.Parallel()
	cfg := DefaultConfig()
	cfg.PeriodCycles = 20_000
	rt := newRuntime(8, cfg)
	rt.Run(400_000, 40, 64)
	var promos, stealHits int64
	workersWithWork := 0
	for i := 0; i < rt.NumWorkers(); i++ {
		ws := rt.WorkerStats(i)
		promos += ws.Promotions
		stealHits += ws.StealHits
		if ws.Items > 0 {
			workersWithWork++
		}
	}
	if promos == 0 {
		t.Fatal("heartbeats never promoted")
	}
	if stealHits == 0 {
		t.Fatal("no steals: parallelism never spread")
	}
	if workersWithWork < 6 {
		t.Fatalf("only %d workers did work", workersWithWork)
	}
}

func TestParallelSpeedup(t *testing.T) {
	t.Parallel()
	run := func(cpus int) int64 {
		cfg := DefaultConfig()
		cfg.PeriodCycles = 20_000
		rt := newRuntime(cpus, cfg)
		rt.Run(400_000, 40, 64)
		return int64(rt.DoneAt())
	}
	t1 := run(1)
	t8 := run(8)
	speedup := float64(t1) / float64(t8)
	if speedup < 4 {
		t.Fatalf("8-CPU speedup = %.2f, want >= 4", speedup)
	}
}

func TestNautilusHitsTargetRate(t *testing.T) {
	t.Parallel()
	// §IV-B / Fig. 3: Nautilus hits the target heartbeat rate with a
	// consistent, stable period even at ♥ = 20 µs and 16 CPUs.
	cfg := DefaultConfig()
	cfg.PeriodCycles = 20_000 // 20 µs at 1 GHz
	rt := newRuntime(16, cfg)
	rt.Run(3_000_000, 40, 64)

	gaps := rt.InterBeatGaps()
	if len(gaps) == 0 {
		t.Fatal("no beats observed")
	}
	mean := stats.Mean(gaps)
	if rel := mean/float64(cfg.PeriodCycles) - 1; rel > 0.02 || rel < -0.02 {
		t.Fatalf("mean gap %.0f vs target %d (off by %.1f%%)", mean, cfg.PeriodCycles, rel*100)
	}
	if cv := stats.CoefVar(gaps); cv > 0.05 {
		t.Fatalf("gap CV = %.3f; Nautilus heartbeat must be stable", cv)
	}
}

func TestLinuxSignalsCollapseAt20us(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skipping 16-CPU signal-collapse run in -short mode")
	}
	// Fig. 3: the best Linux signal mechanism cannot sustain ♥ = 20 µs
	// at 16 CPUs — the achieved rate falls far below target.
	mk := func(substrate Substrate) float64 {
		cfg := DefaultConfig()
		cfg.Substrate = substrate
		cfg.PeriodCycles = 20_000
		rt := newRuntime(16, cfg)
		rt.Run(3_000_000, 40, 64)
		rates := rt.AchievedRates()
		return stats.Mean(rates) // beats per 1e6 cycles
	}
	target := 1e6 / 20_000.0 // 50 beats per Mcycle
	nk := mk(SubstrateNautilusIPI)
	lx := mk(SubstrateLinuxSignals)
	if nk < target*0.97 {
		t.Fatalf("nautilus rate %.1f below target %.1f", nk, target)
	}
	if lx > target*0.7 {
		t.Fatalf("linux signals achieved %.1f of target %.1f; should collapse", lx, target)
	}
}

func TestLinuxSignalsUnstableAt100us(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("skipping long-horizon signal-jitter run in -short mode")
	}
	// Fig. 3 right panel: even at ♥ = 100 µs Linux cannot deliver a
	// consistent rate (high inter-beat variance), while Nautilus can.
	mk := func(substrate Substrate) float64 {
		cfg := DefaultConfig()
		cfg.Substrate = substrate
		cfg.PeriodCycles = 100_000
		rt := newRuntime(16, cfg)
		rt.Run(6_000_000, 40, 64)
		return stats.CoefVar(rt.InterBeatGaps())
	}
	nkCV := mk(SubstrateNautilusIPI)
	lxCV := mk(SubstrateLinuxSignals)
	if nkCV > 0.05 {
		t.Fatalf("nautilus CV = %.3f, want ~0", nkCV)
	}
	if lxCV < 3*nkCV || lxCV < 0.05 {
		t.Fatalf("linux CV = %.3f vs nautilus %.3f; Linux must be visibly unstable", lxCV, nkCV)
	}
}

func TestOverheadNautilusVsLinuxPolling(t *testing.T) {
	t.Parallel()
	// §IV-B: scheduling overheads are 13–22% on Linux and at most 4.9%
	// in Nautilus (at ♥ = 100 µs).
	mk := func(substrate Substrate) float64 {
		cfg := DefaultConfig()
		cfg.Substrate = substrate
		cfg.PeriodCycles = 100_000
		rt := newRuntime(16, cfg)
		rt.Run(3_000_000, 40, 64)
		return rt.OverheadFraction()
	}
	nk := mk(SubstrateNautilusIPI)
	lx := mk(SubstrateLinuxPolling)
	if nk > 0.049 {
		t.Fatalf("nautilus overhead = %.1f%%, paper bound is 4.9%%", nk*100)
	}
	if lx < 0.10 || lx > 0.30 {
		t.Fatalf("linux polling overhead = %.1f%%, paper range is 13-22%%", lx*100)
	}
	if lx < 2*nk {
		t.Fatalf("linux (%.3f) must be well above nautilus (%.3f)", lx, nk)
	}
}

func TestDeterministicRuns(t *testing.T) {
	t.Parallel()
	run := func() (int64, int64) {
		cfg := DefaultConfig()
		cfg.PeriodCycles = 30_000
		rt := newRuntime(8, cfg)
		rt.Run(200_000, 40, 64)
		var promos int64
		for i := 0; i < rt.NumWorkers(); i++ {
			promos += rt.WorkerStats(i).Promotions
		}
		return int64(rt.DoneAt()), promos
	}
	a1, p1 := run()
	a2, p2 := run()
	if a1 != a2 || p1 != p2 {
		t.Fatalf("nondeterministic: (%d,%d) vs (%d,%d)", a1, p1, a2, p2)
	}
}

func TestSubstrateString(t *testing.T) {
	t.Parallel()
	if SubstrateNautilusIPI.String() != "nautilus-ipi" ||
		SubstrateLinuxSignals.String() != "linux-signals" ||
		SubstrateLinuxPolling.String() != "linux-polling" {
		t.Fatal("substrate names wrong")
	}
}

func TestPopBottomReleasesSlot(t *testing.T) {
	t.Parallel()
	d := NewDeque()
	d.PushBottom(&Frame{Lo: 1})
	d.PushBottom(&Frame{Lo: 2})
	if d.PopBottom() == nil {
		t.Fatal("pop failed")
	}
	// The vacated backing-array slot must be nil so the popped *Frame is
	// collectable (StealTop already does this at the thief end).
	if got := d.items[:2][1]; got != nil {
		t.Fatalf("PopBottom retained pointer in vacated slot: %+v", got)
	}
}

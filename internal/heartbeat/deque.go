// Package heartbeat implements TPAL-style heartbeat scheduling (§IV-B):
// a work-stealing runtime whose workers expose all latent parallelism
// but only *promote* it to actual parallel tasks when a periodic
// heartbeat arrives — bounding scheduling overhead while guaranteeing
// parallelism is surfaced at rate ♥.
//
// Three signaling substrates drive the heartbeat, mirroring Fig. 2:
//
//   - Nautilus: LAPIC timer on CPU 0 broadcast by IPI to all workers,
//     promoted directly in the interrupt handler;
//   - Linux signals: a pacer thread pthread_kills workers (timer floors,
//     jitter, coalescing, heavy-tailed noise apply);
//   - Linux polling: compiler-inserted heartbeat polls at loop
//     boundaries (the software fallback whose overhead the paper reports
//     as 13–22%).
package heartbeat

import "fmt"

// Frame is a promotable unit of latent parallelism: a range of loop
// iterations executing sequentially until a heartbeat splits it.
type Frame struct {
	Lo, Hi        int64 // remaining iteration range [Lo, Hi)
	CyclesPerItem int64 // work per iteration
	Grain         int64 // minimum items worth splitting off
}

// Remaining returns the number of iterations left.
func (f *Frame) Remaining() int64 { return f.Hi - f.Lo }

// Splittable reports whether promotion can usefully divide the frame.
func (f *Frame) Splittable() bool { return f.Remaining() >= 2*f.Grain }

// Split divides the frame in half, returning the new upper half.
func (f *Frame) Split() *Frame {
	return f.SplitAbove(f.Lo)
}

// SplitAbove divides the part of the frame above floor in half and
// returns the new upper half, or nil if that part is too small to be
// worth splitting. Promotion uses the floor to avoid cutting into the
// iteration slice a worker is executing right now.
func (f *Frame) SplitAbove(floor int64) *Frame {
	lo := f.Lo
	if floor > lo {
		lo = floor
	}
	if f.Hi-lo < 2*f.Grain {
		return nil
	}
	mid := lo + (f.Hi-lo)/2
	upper := &Frame{Lo: mid, Hi: f.Hi, CyclesPerItem: f.CyclesPerItem, Grain: f.Grain}
	f.Hi = mid
	return upper
}

// Deque is a work-stealing deque with Chase–Lev semantics: the owner
// pushes and pops at the bottom; thieves steal from the top. The
// simulation is single-threaded, so no atomics are needed, but the
// access discipline (owner bottom, thief top) is preserved because it
// determines *which* task moves — the locality property work stealing
// depends on.
type Deque struct {
	items []*Frame
	top   int // steal end index into items
	// Stats.
	Pushes, Pops, Steals int64
}

// NewDeque returns an empty deque.
func NewDeque() *Deque { return &Deque{} }

// Len returns the number of queued frames.
func (d *Deque) Len() int { return len(d.items) - d.top }

// PushBottom adds a frame at the owner end.
func (d *Deque) PushBottom(f *Frame) {
	d.items = append(d.items, f)
	d.Pushes++
}

// PopBottom removes the most recently pushed frame (owner end).
func (d *Deque) PopBottom() *Frame {
	if d.Len() == 0 {
		return nil
	}
	last := len(d.items) - 1
	f := d.items[last]
	d.items[last] = nil // release the slot so popped frames are collectable
	d.items = d.items[:last]
	d.Pops++
	d.compact()
	return f
}

// StealTop removes the oldest frame (thief end) — the largest, most
// cache-cold work, which is why stealing from the top is right.
func (d *Deque) StealTop() *Frame {
	if d.Len() == 0 {
		return nil
	}
	f := d.items[d.top]
	d.items[d.top] = nil
	d.top++
	d.Steals++
	d.compact()
	return f
}

func (d *Deque) compact() {
	if d.top > 32 && d.top*2 > len(d.items) {
		d.items = append([]*Frame(nil), d.items[d.top:]...)
		d.top = 0
	}
}

// CheckInvariants validates the deque's structural invariants: the
// steal index stays inside the backing slice, every live slot holds a
// frame, every dead slot (already popped or stolen) was released for
// collection, and the operation counters account exactly for the
// current length. The chaos harness runs this at every injection
// firing; property tests use it directly.
func (d *Deque) CheckInvariants() error {
	if d.top < 0 || d.top > len(d.items) {
		return fmt.Errorf("heartbeat: deque top %d outside [0, %d]", d.top, len(d.items))
	}
	for i := d.top; i < len(d.items); i++ {
		if d.items[i] == nil {
			return fmt.Errorf("heartbeat: nil frame at live slot %d (top %d, len %d)", i, d.top, len(d.items))
		}
	}
	for i := 0; i < d.top; i++ {
		if d.items[i] != nil {
			return fmt.Errorf("heartbeat: stolen slot %d still holds a frame", i)
		}
	}
	if held := d.Pushes - d.Pops - d.Steals; held != int64(d.Len()) {
		return fmt.Errorf("heartbeat: counters say %d frames held, deque has %d", held, d.Len())
	}
	return nil
}

// String renders the deque state for debugging.
func (d *Deque) String() string {
	return fmt.Sprintf("deque{len=%d pushes=%d pops=%d steals=%d}", d.Len(), d.Pushes, d.Pops, d.Steals)
}

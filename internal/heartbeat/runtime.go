package heartbeat

import (
	"fmt"

	"repro/internal/linux"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Substrate selects the heartbeat signaling mechanism (Fig. 2).
type Substrate int

const (
	// SubstrateNautilusIPI: LAPIC timer on CPU 0, IPI broadcast,
	// promotion directly in the interrupt handler.
	SubstrateNautilusIPI Substrate = iota
	// SubstrateLinuxSignals: pacer thread + pthread_kill + POSIX signal
	// delivery, with the kernel's timer floors, jitter and coalescing.
	SubstrateLinuxSignals
	// SubstrateLinuxPolling: compiler-inserted heartbeat polls at loop
	// boundaries; no asynchronous events at all.
	SubstrateLinuxPolling
)

// String names the substrate for reports.
func (s Substrate) String() string {
	switch s {
	case SubstrateNautilusIPI:
		return "nautilus-ipi"
	case SubstrateLinuxSignals:
		return "linux-signals"
	default:
		return "linux-polling"
	}
}

// Config parameterizes one heartbeat runtime instance.
type Config struct {
	Substrate Substrate
	// PeriodCycles is the heartbeat period ♥ in cycles.
	PeriodCycles int64
	// PromoteCost is the cycles to split a frame and publish it.
	PromoteCost int64
	// StealCost is the cycles per steal attempt (CAS + line transfer).
	StealCost int64
	// IdleBackoff is the re-poll gap for an idle worker.
	IdleBackoff int64
	// PollCost is the per-poll check cost (polling substrate).
	PollCost int64
	// PollEveryItems is how many loop iterations between compiler-
	// inserted polls (polling substrate).
	PollEveryItems int64
	// SliceItems bounds how many iterations a worker executes between
	// runtime events (execution granularity of the simulation).
	SliceItems int64
	// Seed fixes victim selection.
	Seed uint64
	// Domains partitions the workers into independent steal domains
	// (0 or 1 keeps the single global domain, the legacy behavior).
	// Each domain owns a contiguous worker range and a proportional
	// share of the items, and steals never cross domains, so every
	// domain's scheduler state is confined to its workers' CPUs. When
	// the machine runs on a sharded engine, Domains must equal the
	// engine's shard count: domain = shard is exactly the shard-safety
	// contract that lets the windows run concurrently.
	Domains int
}

// DefaultConfig returns a TPAL-like configuration at ♥ = 100 µs (in
// cycles of a 1 GHz clock).
func DefaultConfig() Config {
	return Config{
		Substrate:    SubstrateNautilusIPI,
		PeriodCycles: 100_000,
		PromoteCost:  450,
		StealCost:    220,
		IdleBackoff:  400,
		// Polling substrate: TPAL's compiler-inserted software polls
		// check every couple of iterations and spill registers around
		// the check, which is what drives Linux's 13–22% overhead.
		PollCost:       12,
		PollEveryItems: 2,
		SliceItems:     64,
		Seed:           1,
	}
}

// WorkerStats accumulates per-worker accounting.
type WorkerStats struct {
	Items         int64
	WorkCycles    int64
	Promotions    int64
	PromoteCycles int64
	StealAttempts int64
	StealHits     int64
	StealCycles   int64
	PollCycles    int64
	Beats         []sim.Time // heartbeat arrival timestamps
}

// domain is one steal domain: a contiguous worker range with its own
// share of the items and its own termination counter. All of its state
// is only ever touched from its workers' CPUs (one shard, when sharded).
type domain struct {
	id        int
	lo, hi    int // worker index range [lo, hi)
	remaining int64
	doneAt    sim.Time
}

// worker is one TPAL worker bound to a CPU.
type worker struct {
	rt    *Runtime
	id    int
	cpu   *machine.CPU
	dom   *domain // nil in the legacy single-domain mode
	deque *Deque
	cur   *Frame
	rng   *sim.RNG

	// sliceEnd is the first iteration index NOT covered by the slice in
	// flight; promotion may only split above it.
	sliceEnd int64
	lastPoll sim.Time
	stats    WorkerStats
}

// Runtime is one heartbeat-scheduling instance across the machine.
type Runtime struct {
	M   *machine.Machine
	Cfg Config
	L   *linux.Stack // present for the Linux substrates

	workers   []*worker
	domains   []*domain
	remaining int64 // items not yet executed, for termination (legacy mode)
	reported  int   // domains whose completion reached the coordinator
	doneAt    sim.Time
	running   bool
	pacer     *linux.HeartbeatPacer

	// TotalItems is the workload size (set by Run).
	TotalItems int64
}

// New creates a runtime with one worker per machine CPU.
func New(m *machine.Machine, cfg Config) *Runtime {
	rt := &Runtime{M: m, Cfg: cfg}
	if cfg.Substrate != SubstrateNautilusIPI {
		rt.L = linux.New(m, cfg.Seed^0x5eed)
	}
	rng := sim.NewRNG(cfg.Seed)
	for i, cpu := range m.CPUs {
		w := &worker{rt: rt, id: i, cpu: cpu, deque: NewDeque(), rng: rng.Split()}
		rt.workers = append(rt.workers, w)
	}
	if sh := m.Eng.Shards(); sh > 1 && cfg.Domains != sh {
		// Legacy global stealing (Domains <= 1) freely crosses CPUs and
		// is only shard-safe on the sequential engine.
		panic("heartbeat: domain count must equal the engine's shard count")
	}
	if d := cfg.Domains; d > 1 {
		n := len(rt.workers)
		if d > n {
			panic("heartbeat: more domains than workers")
		}
		rt.domains = make([]*domain, d)
		for i := range rt.domains {
			rt.domains[i] = &domain{id: i, lo: n, hi: 0}
		}
		// Worker i's domain uses the same i*D/n partition the machine
		// uses for CPU->shard assignment, so domain d is exactly shard d.
		for i, w := range rt.workers {
			dom := rt.domains[i*d/n]
			w.dom = dom
			if i < dom.lo {
				dom.lo = i
			}
			if i+1 > dom.hi {
				dom.hi = i + 1
			}
		}
	}
	return rt
}

// Run executes a parallel range of totalItems iterations, each costing
// cyclesPerItem, with the given minimum grain. It installs the heartbeat
// substrate, seeds worker 0 with the whole range, and returns when the
// work is complete (the engine is run to completion internally).
func (rt *Runtime) Run(totalItems, cyclesPerItem, grain int64) {
	rt.TotalItems = totalItems
	rt.running = true
	if len(rt.domains) > 0 {
		// Domain mode: each domain is seeded with its proportional item
		// range on its first worker; termination is counted per domain.
		nd := int64(len(rt.domains))
		for _, d := range rt.domains {
			lo := totalItems * int64(d.id) / nd
			hi := totalItems * int64(d.id+1) / nd
			d.remaining = hi - lo
			if hi > lo {
				rt.workers[d.lo].deque.PushBottom(&Frame{Lo: lo, Hi: hi, CyclesPerItem: cyclesPerItem, Grain: grain})
			} else {
				rt.reported++ // empty domain: nothing will ever report
			}
		}
	} else {
		rt.remaining = totalItems
		root := &Frame{Lo: 0, Hi: totalItems, CyclesPerItem: cyclesPerItem, Grain: grain}
		rt.workers[0].deque.PushBottom(root)
	}

	if len(rt.domains) > 0 && rt.reported == len(rt.domains) {
		// Nothing to do in any domain; don't start a substrate nobody
		// will stop.
		rt.running = false
		return
	}
	rt.installSubstrate()
	for _, w := range rt.workers {
		w.step()
	}
	rt.M.Eng.Run()
}

// DoneAt returns the completion timestamp.
func (rt *Runtime) DoneAt() sim.Time { return rt.doneAt }

// WorkerStats returns worker i's accounting.
func (rt *Runtime) WorkerStats(i int) *WorkerStats { return &rt.workers[i].stats }

// NumWorkers returns the worker count.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

func (rt *Runtime) installSubstrate() {
	switch rt.Cfg.Substrate {
	case SubstrateNautilusIPI:
		// Workers: promotion in the IPI handler.
		for _, w := range rt.workers {
			w := w
			w.cpu.SetHandler(machine.VecHeartbeat, func(ctx *machine.IntrContext) {
				w.onBeat(ctx)
			})
		}
		// CPU 0: LAPIC timer handler broadcasts; CPU 0 is also a worker
		// and promotes itself.
		cpu0 := rt.M.CPU(0)
		cpu0.SetHandler(machine.VecTimer, func(ctx *machine.IntrContext) {
			ctx.AddCost(40) // timer ack + broadcast setup
			cpu0.BroadcastIPI(machine.VecHeartbeat)
			rt.workers[0].onBeat(ctx)
		})
		cpu0.APIC().Periodic(rt.Cfg.PeriodCycles, machine.VecTimer)

	case SubstrateLinuxSignals:
		// A pacer on CPU 0 signals workers 1..N-1 (CPU 0 hosts the
		// pacer thread itself, as TPAL does on Linux); deliveries raise
		// a "signal" interrupt whose handler pays the kernel's signal
		// path on top of dispatch.
		var workerCPUs []int
		for i := 1; i < len(rt.workers); i++ {
			workerCPUs = append(workerCPUs, i)
		}
		extra := rt.L.Model.Linux.SignalDeliver + rt.L.Model.Linux.SignalReturn
		for _, i := range workerCPUs {
			w := rt.workers[i]
			w.cpu.SetHandler(machine.VecHeartbeat, func(ctx *machine.IntrContext) {
				ctx.AddCost(extra)
				w.onBeat(ctx)
			})
		}
		rt.pacer = &linux.HeartbeatPacer{
			S:            rt.L,
			Workers:      workerCPUs,
			PeriodCycles: rt.Cfg.PeriodCycles,
			HandlerCost:  rt.Cfg.PromoteCost,
			OnBeat: func(idx int, _ sim.Time) {
				rt.workers[workerCPUs[idx]].cpu.Raise(machine.VecHeartbeat)
			},
		}
		if len(rt.domains) > 0 {
			// Domain mode: deliveries must land on each worker's own
			// shard, and the pending/coalescing state with them.
			qs := make([]sim.Queue, len(workerCPUs))
			for i, c := range workerCPUs {
				qs[i] = rt.workers[c].cpu.Queue()
			}
			rt.pacer.WorkerQueues = qs
			rt.pacer.PacerQueue = rt.M.CPU(0).Queue()
		}
		rt.pacer.Start()

	case SubstrateLinuxPolling:
		// Nothing to install: polls are folded into worker execution.
	}
}

// q returns the worker's event queue: its CPU's shard, which on the
// sequential engine is the engine itself.
func (w *worker) q() sim.Queue { return w.cpu.Queue() }

// now returns the worker's shard-local clock.
func (w *worker) now() sim.Time { return w.q().Now() }

// onBeat is the promotion executed when a heartbeat reaches a worker.
func (w *worker) onBeat(ctx *machine.IntrContext) {
	w.stats.Beats = append(w.stats.Beats, w.now())
	if w.cur != nil {
		if upper := w.cur.SplitAbove(w.sliceEnd); upper != nil {
			w.deque.PushBottom(upper)
			w.stats.Promotions++
			w.stats.PromoteCycles += w.rt.Cfg.PromoteCost
			ctx.AddCost(w.rt.Cfg.PromoteCost)
			return
		}
	}
	// Nothing to promote: the check itself is nearly free.
	ctx.AddCost(20)
}

// step advances the worker's state machine: find work, execute a slice,
// repeat. All blocking is via engine events.
func (w *worker) step() {
	rt := w.rt
	if w.dom != nil {
		// Domain mode: the stop condition is domain-local (rt.running is
		// coordinator state on CPU 0's shard and may not be read here).
		if w.dom.remaining <= 0 {
			return
		}
	} else if !rt.running {
		return
	}
	if w.cur == nil {
		if f := w.deque.PopBottom(); f != nil {
			w.cur = f
			w.sliceEnd = 0
		} else if f := w.steal(); f != nil {
			w.cur = f
			w.sliceEnd = 0
		} else {
			// Idle: back off and retry.
			w.q().After(sim.Time(rt.Cfg.IdleBackoff), w.step)
			return
		}
	}
	w.execSlice()
}

// steal picks a random victim inside the worker's steal domain (the
// whole machine in legacy mode) and tries to take the top of its deque.
func (w *worker) steal() *Frame {
	rt := w.rt
	lo, hi := 0, len(rt.workers)
	if w.dom != nil {
		lo, hi = w.dom.lo, w.dom.hi
	}
	n := hi - lo
	if n == 1 {
		return nil
	}
	w.stats.StealAttempts++
	w.stats.StealCycles += rt.Cfg.StealCost
	victim := rt.workers[lo+((w.id-lo)+1+w.rng.Intn(n-1))%n]
	if f := victim.deque.StealTop(); f != nil {
		w.stats.StealHits++
		return f
	}
	return nil
}

// execSlice runs up to SliceItems iterations of the current frame.
func (w *worker) execSlice() {
	rt := w.rt
	f := w.cur
	items := rt.Cfg.SliceItems
	if items > f.Remaining() {
		items = f.Remaining()
	}
	w.sliceEnd = f.Lo + items
	cost := items * f.CyclesPerItem
	// Polling substrate: compiler-inserted poll checks at loop
	// boundaries, plus promotion when the period elapsed.
	if rt.Cfg.Substrate == SubstrateLinuxPolling && rt.Cfg.PollEveryItems > 0 {
		polls := items / rt.Cfg.PollEveryItems
		pc := polls * rt.Cfg.PollCost
		cost += pc
		w.stats.PollCycles += pc
	}
	w.cpu.Run(cost, func() {
		f.Lo += items
		w.stats.Items += items
		w.stats.WorkCycles += items * f.CyclesPerItem
		if w.dom != nil {
			w.dom.remaining -= items
		} else {
			rt.remaining -= items
		}
		if rt.Cfg.Substrate == SubstrateLinuxPolling {
			now := w.now()
			if now.Sub(w.lastPoll) >= rt.Cfg.PeriodCycles {
				w.lastPoll = now
				w.pollBeat()
			}
		}
		if f.Remaining() == 0 {
			w.cur = nil
		}
		if w.dom != nil {
			if w.dom.remaining <= 0 {
				rt.domainDone(w)
				return
			}
		} else if rt.remaining <= 0 {
			rt.finish()
			return
		}
		w.step()
	})
}

// domainDone runs on the finishing domain's shard: stamp the domain's
// completion time and notify the coordinator CPU with a cross-shard
// message at IPI latency. The notification is reliable — termination is
// protocol, not workload, so it is not routed through the machine's
// injectable IPI path.
func (rt *Runtime) domainDone(w *worker) {
	w.dom.doneAt = w.now()
	lat := sim.Time(rt.M.Model.HW.IPILatency)
	w.q().CrossAfter(rt.M.CPU(0).Queue(), lat, rt.domainReported)
}

// domainReported runs on the coordinator's shard, once per finished
// domain. When the last report lands, the substrate is stopped and the
// engine drains naturally — no Halt: a sharded engine's shards sit at
// arbitrary points mid-window, so quenching the event sources is the
// only deterministic way to stop.
func (rt *Runtime) domainReported() {
	rt.reported++
	if rt.reported < len(rt.domains) {
		return
	}
	rt.running = false
	for _, d := range rt.domains {
		if d.doneAt > rt.doneAt {
			rt.doneAt = d.doneAt
		}
	}
	rt.stopSubstrate()
}

// pollBeat is the polling substrate's promotion point.
func (w *worker) pollBeat() {
	w.stats.Beats = append(w.stats.Beats, w.now())
	if w.cur != nil {
		upper := w.cur.SplitAbove(w.sliceEnd)
		if upper == nil {
			return
		}
		w.deque.PushBottom(upper)
		w.stats.Promotions++
		w.stats.PromoteCycles += w.rt.Cfg.PromoteCost
		// Promotion cost is paid inline on the worker.
		w.stats.PollCycles += w.rt.Cfg.PromoteCost
	}
}

// CheckInvariants validates the runtime's cross-worker invariants:
// every deque is structurally sound, no frame is owned by two places
// at once (a deque slot or a worker's current frame), and — while a
// run is in flight — the iterations remaining inside frames equal the
// runtime's termination counter. The conservation check is exact at
// engine-event boundaries, which is the vantage point of every chaos
// hook: a slice's Lo advance and the remaining decrement happen in the
// same callback, and promotion/steal moves conserve items.
func (rt *Runtime) CheckInvariants() error {
	if len(rt.domains) > 0 {
		// Domain mode: every domain's check is self-contained; walking
		// them all is only safe when the engine is quiescent (use
		// CheckDomainInvariants from per-shard hooks during a run).
		for _, d := range rt.domains {
			if err := rt.CheckDomainInvariants(d.id); err != nil {
				return err
			}
		}
		return nil
	}
	pending, err := rt.checkWorkerRange(0, len(rt.workers))
	if err != nil {
		return err
	}
	if rt.running && pending != rt.remaining {
		return fmt.Errorf("heartbeat: frames hold %d items but %d remain outstanding", pending, rt.remaining)
	}
	return nil
}

// CheckDomainInvariants validates one steal domain: deque structure,
// unique frame ownership, and item conservation against the domain's
// own termination counter. It touches only domain d's workers, so in a
// sharded run it may be called from any event on domain d's shard —
// which is how chaos invariant hooks are scoped per shard.
func (rt *Runtime) CheckDomainInvariants(d int) error {
	dom := rt.domains[d]
	pending, err := rt.checkWorkerRange(dom.lo, dom.hi)
	if err != nil {
		return err
	}
	if dom.remaining > 0 && pending != dom.remaining {
		return fmt.Errorf("heartbeat: domain %d frames hold %d items but %d remain outstanding", d, pending, dom.remaining)
	}
	return nil
}

// checkWorkerRange applies the structural and ownership checks to
// workers [lo, hi) and returns the items their frames still hold.
func (rt *Runtime) checkWorkerRange(lo, hi int) (int64, error) {
	owner := make(map[*Frame]int)
	var pending int64
	claim := func(f *Frame, w int) error {
		if prev, dup := owner[f]; dup {
			return fmt.Errorf("heartbeat: frame [%d,%d) owned by workers %d and %d", f.Lo, f.Hi, prev, w)
		}
		owner[f] = w
		if f.Remaining() < 0 {
			return fmt.Errorf("heartbeat: frame with negative range [%d,%d)", f.Lo, f.Hi)
		}
		pending += f.Remaining()
		return nil
	}
	for _, w := range rt.workers[lo:hi] {
		if err := w.deque.CheckInvariants(); err != nil {
			return 0, fmt.Errorf("worker %d: %w", w.id, err)
		}
		for i := w.deque.top; i < len(w.deque.items); i++ {
			if err := claim(w.deque.items[i], w.id); err != nil {
				return 0, err
			}
		}
		if w.cur != nil {
			if err := claim(w.cur, w.id); err != nil {
				return 0, err
			}
		}
	}
	return pending, nil
}

// stopSubstrate quenches the heartbeat sources: the coordinator CPU's
// LAPIC timer and the Linux pacer. Runs on CPU 0's shard.
func (rt *Runtime) stopSubstrate() {
	rt.M.CPU(0).APIC().Stop()
	if rt.pacer != nil {
		rt.pacer.Stop()
	}
}

// finish stops the substrate and halts the engine (legacy single-domain
// termination).
func (rt *Runtime) finish() {
	if !rt.running {
		return
	}
	rt.running = false
	rt.doneAt = rt.M.Eng.Now()
	rt.stopSubstrate()
	rt.M.Eng.Halt()
}

// OverheadFraction returns scheduling overhead as a fraction of total
// consumed cycles: everything that is not useful item work (promotion,
// polls, steals, interrupt dispatch, handler bookkeeping).
func (rt *Runtime) OverheadFraction() float64 {
	var useful, overhead int64
	for _, w := range rt.workers {
		useful += w.stats.WorkCycles
		overhead += w.stats.PromoteCycles + w.stats.StealCycles + w.stats.PollCycles
		overhead += w.cpu.Stats.DispatchCycles + w.cpu.Stats.HandlerCycles
	}
	if useful == 0 {
		return 0
	}
	return float64(overhead) / float64(useful+overhead)
}

// AchievedRates returns, per worker that observed beats, the achieved
// heartbeat rate in beats per million cycles.
func (rt *Runtime) AchievedRates() []float64 {
	var out []float64
	for _, w := range rt.workers {
		b := w.stats.Beats
		if len(b) < 2 {
			continue
		}
		span := b[len(b)-1].Sub(b[0])
		if span <= 0 {
			continue
		}
		out = append(out, float64(len(b)-1)/float64(span)*1e6)
	}
	return out
}

// InterBeatGaps returns all inter-heartbeat gaps (cycles) across workers,
// the raw data behind Fig. 3's stability claim.
func (rt *Runtime) InterBeatGaps() []float64 {
	var gaps []float64
	for _, w := range rt.workers {
		b := w.stats.Beats
		for i := 1; i < len(b); i++ {
			gaps = append(gaps, float64(b[i].Sub(b[i-1])))
		}
	}
	return gaps
}

// Package farmem implements §V-C's candidate blending application:
// sub-page-granularity transparent far memory. "Current far memory
// systems either operate at page granularity for transparent swapping to
// remote nodes or require programmer annotations tagging data structures
// as remotable. Compiler blending can automatically make these decisions
// and evacuate objects to remote memory transparently."
//
// Two managers are implemented over the same local/remote cost model:
//
//   - PageSwapper: the page-granularity baseline (Infiniswap/Fastswap
//     shape): 4 KiB pages, LRU, whole-page faults and writebacks.
//   - ObjectBlender: the interwoven design: the compiler's allocation
//     tracking (the CARAT machinery) gives the runtime exact object
//     boundaries; temperatures decide placement; only objects move.
//
// The headline effect is transfer amplification: with small objects and
// a skewed working set, pages drag kilobytes of cold neighbors across
// the network per hot access, while the blender moves only what is used.
package farmem

import (
	"sort"

	"repro/internal/mem"
)

// Config is the shared tier cost model.
type Config struct {
	// LocalCapacity is the local-tier size in bytes.
	LocalCapacity uint64
	// LocalAccess is the local access cost in cycles.
	LocalAccess int64
	// RemoteRTT is the far-memory round-trip in cycles (RDMA-class).
	RemoteRTT int64
	// PerKB is the transfer cost per KiB moved, in cycles.
	PerKB int64
	// PageSize is the baseline's granularity.
	PageSize uint64
}

// DefaultConfig returns an RDMA-class far-memory configuration on the
// 1 GHz reference clock: 3 µs RTT, ~12.5 GB/s.
func DefaultConfig() Config {
	return Config{
		LocalCapacity: 1 << 20, // 1 MiB local
		LocalAccess:   80,
		RemoteRTT:     3000,
		PerKB:         80,
		PageSize:      4096,
	}
}

// Stats aggregate a run.
type Stats struct {
	Accesses     int64
	LocalHits    int64
	Faults       int64 // remote fetches
	Evictions    int64
	BytesIn      uint64 // bytes fetched from far memory
	BytesOut     uint64 // bytes written back to far memory
	StallCycles  int64  // cycles spent waiting on the far tier
	AccessCycles int64  // total access cycles including stalls
}

// MeanLatency returns average cycles per access.
func (s *Stats) MeanLatency() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.AccessCycles) / float64(s.Accesses)
}

// Manager is a far-memory placement policy.
type Manager interface {
	// Register declares an allocated object.
	Register(base mem.Addr, size uint64)
	// Access touches one address (the object containing it) and
	// returns the access cost in cycles.
	Access(addr mem.Addr) int64
	// Stats returns the accumulated counters.
	Stats() *Stats
}

// ---------------------------------------------------------------------
// Page-granularity baseline.

type page struct {
	num   uint64
	local bool
	dirty bool
	lru   int64
}

// PageSwapper is the page-granularity transparent-swapping baseline.
type PageSwapper struct {
	cfg   Config
	pages map[uint64]*page
	// localPages tracks residency for LRU eviction.
	localBytes uint64
	tick       int64
	st         Stats
}

// NewPageSwapper creates the baseline manager.
func NewPageSwapper(cfg Config) *PageSwapper {
	return &PageSwapper{cfg: cfg, pages: make(map[uint64]*page)}
}

// Register is a no-op for pages: the first touch faults the page in
// (demand paging).
func (p *PageSwapper) Register(base mem.Addr, size uint64) {}

// Stats implements Manager.
func (p *PageSwapper) Stats() *Stats { return &p.st }

// Access implements Manager.
func (p *PageSwapper) Access(addr mem.Addr) int64 {
	p.tick++
	p.st.Accesses++
	num := uint64(addr) / p.cfg.PageSize
	pg := p.pages[num]
	if pg == nil {
		pg = &page{num: num}
		p.pages[num] = pg
	}
	if pg.local {
		pg.lru = p.tick
		pg.dirty = true // conservative: treat touches as potential writes
		p.st.LocalHits++
		p.st.AccessCycles += p.cfg.LocalAccess
		return p.cfg.LocalAccess
	}
	// Fault: make room, then fetch the whole page.
	cost := p.cfg.RemoteRTT + int64(p.cfg.PageSize/1024+1)*p.cfg.PerKB
	p.st.Faults++
	p.st.BytesIn += p.cfg.PageSize
	for p.localBytes+p.cfg.PageSize > p.cfg.LocalCapacity {
		cost += p.evictLRU()
	}
	pg.local = true
	pg.lru = p.tick
	p.localBytes += p.cfg.PageSize
	p.st.StallCycles += cost
	total := cost + p.cfg.LocalAccess
	p.st.AccessCycles += total
	return total
}

func (p *PageSwapper) evictLRU() int64 {
	var victim *page
	for _, pg := range p.pages {
		if !pg.local {
			continue
		}
		if victim == nil || pg.lru < victim.lru {
			victim = pg
		}
	}
	if victim == nil {
		return 0
	}
	victim.local = false
	p.localBytes -= p.cfg.PageSize
	p.st.Evictions++
	if victim.dirty {
		victim.dirty = false
		p.st.BytesOut += p.cfg.PageSize
		// Writeback overlaps poorly with the fault in the swap path.
		return int64(p.cfg.PageSize/1024+1) * p.cfg.PerKB
	}
	return 0
}

// ---------------------------------------------------------------------
// Object-granularity blender.

type object struct {
	base  mem.Addr
	size  uint64
	local bool
	heat  int64
	lru   int64
}

// ObjectBlender is the compiler-blended manager: exact object
// boundaries from allocation tracking, temperature-driven placement,
// object-sized transfers.
type ObjectBlender struct {
	cfg        Config
	objects    []*object // sorted by base
	localBytes uint64
	tick       int64
	st         Stats
}

// NewObjectBlender creates the blended manager.
func NewObjectBlender(cfg Config) *ObjectBlender {
	return &ObjectBlender{cfg: cfg}
}

// Stats implements Manager.
func (o *ObjectBlender) Stats() *Stats { return &o.st }

// Register implements Manager: new objects start local (they were just
// allocated and written).
func (o *ObjectBlender) Register(base mem.Addr, size uint64) {
	i := sort.Search(len(o.objects), func(i int) bool { return o.objects[i].base > base })
	obj := &object{base: base, size: size, local: true, lru: o.tick}
	o.objects = append(o.objects, nil)
	copy(o.objects[i+1:], o.objects[i:])
	o.objects[i] = obj
	o.localBytes += size
	for o.localBytes > o.cfg.LocalCapacity {
		o.evictColdest()
	}
}

func (o *ObjectBlender) find(addr mem.Addr) *object {
	i := sort.Search(len(o.objects), func(i int) bool { return o.objects[i].base > addr })
	if i == 0 {
		return nil
	}
	obj := o.objects[i-1]
	if addr >= obj.base && uint64(addr-obj.base) < obj.size {
		return obj
	}
	return nil
}

// Access implements Manager.
func (o *ObjectBlender) Access(addr mem.Addr) int64 {
	o.tick++
	o.st.Accesses++
	obj := o.find(addr)
	if obj == nil {
		// Untracked: treat as local scratch.
		o.st.LocalHits++
		o.st.AccessCycles += o.cfg.LocalAccess
		return o.cfg.LocalAccess
	}
	obj.heat++
	obj.lru = o.tick
	if obj.local {
		o.st.LocalHits++
		o.st.AccessCycles += o.cfg.LocalAccess
		return o.cfg.LocalAccess
	}
	// Object fault: fetch exactly the object.
	cost := o.cfg.RemoteRTT + int64(obj.size/1024+1)*o.cfg.PerKB
	o.st.Faults++
	o.st.BytesIn += obj.size
	obj.local = true
	o.localBytes += obj.size
	for o.localBytes > o.cfg.LocalCapacity {
		cost += o.evictColdest()
	}
	o.st.StallCycles += cost
	total := cost + o.cfg.LocalAccess
	o.st.AccessCycles += total
	return total
}

// evictColdest pushes the coldest local object to the far tier. The
// temperature combines recency and frequency (heat decays by halving at
// each eviction scan, so stale heat fades).
func (o *ObjectBlender) evictColdest() int64 {
	var victim *object
	for _, obj := range o.objects {
		if !obj.local {
			continue
		}
		obj.heat /= 2
		if victim == nil || obj.heat < victim.heat ||
			(obj.heat == victim.heat && obj.lru < victim.lru) {
			victim = obj
		}
	}
	if victim == nil {
		return 0
	}
	victim.local = false
	o.localBytes -= victim.size
	o.st.Evictions++
	o.st.BytesOut += victim.size
	return int64(victim.size/1024+1) * o.cfg.PerKB
}

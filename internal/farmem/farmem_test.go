package farmem

import (
	"testing"

	"repro/internal/mem"
	"repro/internal/sim"
)

// skewedWorkload registers count objects of objSize bytes spread one per
// page, then issues accesses with a hot set (80% of accesses to 10% of
// objects).
func skewedWorkload(m Manager, count int, objSize, pageStride uint64, accesses int, seed uint64) {
	rng := sim.NewRNG(seed)
	bases := make([]mem.Addr, count)
	for i := 0; i < count; i++ {
		bases[i] = mem.Addr(uint64(i) * pageStride)
		m.Register(bases[i], objSize)
	}
	hot := count / 10
	if hot == 0 {
		hot = 1
	}
	for i := 0; i < accesses; i++ {
		var idx int
		if rng.Float64() < 0.8 {
			idx = rng.Intn(hot)
		} else {
			idx = rng.Intn(count)
		}
		m.Access(bases[idx] + mem.Addr(rng.Int63n(int64(objSize))))
	}
}

func TestPageSwapperBasics(t *testing.T) {
	cfg := DefaultConfig()
	p := NewPageSwapper(cfg)
	c1 := p.Access(0x1000) // cold fault
	c2 := p.Access(0x1008) // same page: hit
	if c1 <= c2 {
		t.Fatalf("fault %d not more expensive than hit %d", c1, c2)
	}
	if p.Stats().Faults != 1 || p.Stats().LocalHits != 1 {
		t.Fatalf("stats = %+v", p.Stats())
	}
	if p.Stats().BytesIn != cfg.PageSize {
		t.Fatalf("bytes in = %d", p.Stats().BytesIn)
	}
}

func TestPageSwapperEvictsLRUUnderPressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalCapacity = 2 * cfg.PageSize
	p := NewPageSwapper(cfg)
	p.Access(0x0000)
	p.Access(0x1000)
	p.Access(0x0000) // page 0 is MRU
	p.Access(0x2000) // must evict page 1
	if p.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", p.Stats().Evictions)
	}
	before := p.Stats().Faults
	p.Access(0x0008) // page 0 still resident
	if p.Stats().Faults != before {
		t.Fatal("MRU page was wrongly evicted")
	}
	p.Access(0x1008) // page 1 must re-fault
	if p.Stats().Faults != before+1 {
		t.Fatal("evicted page did not fault")
	}
}

func TestObjectBlenderBasics(t *testing.T) {
	cfg := DefaultConfig()
	o := NewObjectBlender(cfg)
	o.Register(0x1000, 256)
	c := o.Access(0x1080)
	if c != cfg.LocalAccess {
		t.Fatalf("fresh object should be local: cost %d", c)
	}
	if o.Stats().LocalHits != 1 {
		t.Fatalf("stats = %+v", o.Stats())
	}
}

func TestObjectBlenderEvictsColdFirst(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LocalCapacity = 1024
	o := NewObjectBlender(cfg)
	o.Register(0x0000, 512)
	o.Register(0x10000, 512)
	// Heat up object 0.
	for i := 0; i < 50; i++ {
		o.Access(0x0000)
	}
	// A third object forces an eviction: object 1 (cold) must go.
	o.Register(0x20000, 512)
	if o.Stats().Evictions != 1 {
		t.Fatalf("evictions = %d", o.Stats().Evictions)
	}
	before := o.Stats().Faults
	o.Access(0x0000) // hot object must still be local
	if o.Stats().Faults != before {
		t.Fatal("hot object evicted")
	}
	o.Access(0x10000) // cold object must fault back
	if o.Stats().Faults != before+1 {
		t.Fatal("cold object did not fault")
	}
	// Only object bytes moved, not pages.
	if o.Stats().BytesIn != 512 {
		t.Fatalf("bytes in = %d, want 512", o.Stats().BytesIn)
	}
}

func TestBlenderBeatsPagesOnSmallObjects(t *testing.T) {
	// The §V-C claim: with small objects scattered across pages and a
	// skewed working set larger than local memory, object-granularity
	// placement beats page swapping on both latency and traffic.
	cfg := DefaultConfig()
	cfg.LocalCapacity = 256 << 10 // 256 KiB local

	pg := NewPageSwapper(cfg)
	skewedWorkload(pg, 1024, 256, 4096, 60_000, 7)
	ob := NewObjectBlender(cfg)
	skewedWorkload(ob, 1024, 256, 4096, 60_000, 7)

	if ob.Stats().MeanLatency() >= pg.Stats().MeanLatency() {
		t.Fatalf("blender latency %.0f >= pages %.0f",
			ob.Stats().MeanLatency(), pg.Stats().MeanLatency())
	}
	obBytes := ob.Stats().BytesIn + ob.Stats().BytesOut
	pgBytes := pg.Stats().BytesIn + pg.Stats().BytesOut
	if obBytes*4 > pgBytes {
		t.Fatalf("traffic amplification not reproduced: objects %d vs pages %d bytes",
			obBytes, pgBytes)
	}
}

func TestPagesCompetitiveOnDenseObjects(t *testing.T) {
	// Honest baseline: when objects fill whole pages densely (pageSize
	// objects, contiguous), page granularity is not much worse — the
	// blender's win is specifically about sparse/small objects.
	cfg := DefaultConfig()
	cfg.LocalCapacity = 256 << 10

	pg := NewPageSwapper(cfg)
	skewedWorkload(pg, 256, 4096, 4096, 30_000, 9)
	ob := NewObjectBlender(cfg)
	skewedWorkload(ob, 256, 4096, 4096, 30_000, 9)

	ratio := pg.Stats().MeanLatency() / ob.Stats().MeanLatency()
	if ratio > 1.6 {
		t.Fatalf("dense-object case should be close; pages/blender latency = %.2f", ratio)
	}
}

func TestStatsMeanLatencyEmpty(t *testing.T) {
	var s Stats
	if s.MeanLatency() != 0 {
		t.Fatal("empty stats latency")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		cfg := DefaultConfig()
		cfg.LocalCapacity = 128 << 10
		ob := NewObjectBlender(cfg)
		skewedWorkload(ob, 512, 256, 4096, 20_000, 3)
		return ob.Stats().MeanLatency()
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}

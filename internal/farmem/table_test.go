package farmem

import (
	"testing"

	"repro/internal/mem"
)

// smallCfg is a tiny far-memory tier so tables can force the fault and
// eviction (failure) paths with a handful of accesses.
func smallCfg() Config {
	return Config{
		LocalCapacity: 8 << 10, // two 4 KiB pages
		LocalAccess:   100,
		RemoteRTT:     3000,
		PerKB:         80,
		PageSize:      4096,
	}
}

// TestAccessCostTable pins the per-access cost and counter outcomes of
// both managers across the hit, fault, and eviction paths.
func TestAccessCostTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		mk   func() Manager
		// warm accesses run first (their cost is not asserted), then
		// the probe access is asserted.
		warm       []mem.Addr
		probe      mem.Addr
		wantCost   int64
		wantFaults int64
		wantEvict  int64
	}{
		{
			name: "page-cold-miss-faults",
			mk:   func() Manager { return NewPageSwapper(smallCfg()) },
			// First touch of a page is a remote fault: RTT + the
			// KiB-rounded 4 KiB transfer + the local access.
			probe:      0x0,
			wantCost:   3000 + 5*80 + 100,
			wantFaults: 1,
		},
		{
			name:     "page-warm-hit-is-local",
			mk:       func() Manager { return NewPageSwapper(smallCfg()) },
			warm:     []mem.Addr{0x0},
			probe:    0x8, // same page
			wantCost: 100,
			// The warm access already faulted once.
			wantFaults: 1,
		},
		{
			name: "page-capacity-pressure-evicts",
			mk:   func() Manager { return NewPageSwapper(smallCfg()) },
			// Two pages fill the 8 KiB tier (page 0 touched again so
			// it is dirty); the third page must evict the LRU page 0,
			// paying its writeback on top of the fetch.
			warm:       []mem.Addr{0x0000, 0x0008, 0x1000},
			probe:      0x2000,
			wantCost:   (3000 + 5*80) + 5*80 + 100, // fetch + writeback + access
			wantFaults: 3,
			wantEvict:  1,
		},
		{
			name: "object-registered-hit-is-local",
			mk: func() Manager {
				o := NewObjectBlender(smallCfg())
				o.Register(0x100, 256)
				return o
			},
			probe:    0x120,
			wantCost: 100,
		},
		{
			name: "object-unregistered-treated-local",
			mk:   func() Manager { return NewObjectBlender(smallCfg()) },
			// Untracked scratch never pays a remote fault.
			probe:    0xdead_0000,
			wantCost: 100,
		},
		{
			name: "object-evicted-refetches-object-only",
			mk: func() Manager {
				o := NewObjectBlender(smallCfg())
				o.Register(0x100, 512)
				o.Register(0x10000, 8<<10) // overflows the tier, evicts the cold 512 B object
				return o
			},
			// Refetching the 512 B object moves 512 B (KiB-rounded),
			// not a page, but must push the 8 KiB object back out:
			// RTT + 1 KiB transfer + 9 KiB-rounded writeback + access.
			probe:      0x120,
			wantCost:   3000 + 1*80 + 9*80 + 100,
			wantFaults: 1,
			wantEvict:  2, // registration eviction, then refetch evicts the big object
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			m := tc.mk()
			for _, a := range tc.warm {
				m.Access(a)
			}
			if got := m.Access(tc.probe); got != tc.wantCost {
				t.Fatalf("Access(%#x) cost = %d, want %d", tc.probe, got, tc.wantCost)
			}
			st := m.Stats()
			if st.Faults != tc.wantFaults {
				t.Fatalf("faults = %d, want %d", st.Faults, tc.wantFaults)
			}
			if st.Evictions != tc.wantEvict {
				t.Fatalf("evictions = %d, want %d", st.Evictions, tc.wantEvict)
			}
			if st.Accesses != int64(len(tc.warm))+1 {
				t.Fatalf("accesses = %d, want %d", st.Accesses, len(tc.warm)+1)
			}
		})
	}
}

// TestStatsAccounting pins the byte counters across a fault/evict
// cycle: what came in over the wire and what was written back.
func TestStatsAccounting(t *testing.T) {
	t.Parallel()
	p := NewPageSwapper(smallCfg())
	p.Access(0x0000) // fault in page 0
	p.Access(0x0008) // local hit, dirties page 0
	p.Access(0x1000) // fault in page 1
	p.Access(0x2000) // evicts page 0 (dirty: writes back), faults page 2
	st := p.Stats()
	if st.BytesIn != 3*4096 {
		t.Fatalf("bytes in = %d, want %d", st.BytesIn, 3*4096)
	}
	if st.BytesOut != 4096 {
		t.Fatalf("bytes out = %d, want %d", st.BytesOut, 4096)
	}
	if st.LocalHits != 1 {
		t.Fatalf("local hits = %d, want 1", st.LocalHits)
	}
	if st.MeanLatency() <= float64(smallCfg().LocalAccess) {
		t.Fatalf("mean latency %f should exceed the local access cost", st.MeanLatency())
	}
}

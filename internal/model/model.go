// Package model centralizes the cycle-cost parameters of the simulated
// hardware/software stacks. Every magnitude that the paper (or the prior
// work it cites) reports is encoded here once, so experiments share a
// single calibration and ablations can perturb it coherently.
//
// Calibration sources, all from the paper text:
//
//   - Interrupt/exception dispatch ≈ 1000 cycles (§V-D, citing [29], [36]).
//   - Linux non-RT user-level thread context switch with FP state ≈ 5000
//     cycles on Phi KNL (§IV-C, Fig. 4 caption).
//   - Nautilus kernel thread switch ≈ half of Linux; compiler-timed fibers
//     slightly more than half again (§IV-C): 4x lower without FP state,
//     2.3x lower with FP state.
//   - Preemption granularity limit < 600 cycles with compiler timing.
//   - Virtine start-up overheads as low as 100 µs (§IV-D).
//   - Heartbeat targets ♥ = 20–100 µs at 16 CPUs (§IV-B).
//   - Pipeline interrupts deliver at roughly predicted-branch latency,
//     100–1000x better than dispatch (§V-D).
package model

// CyclesPerMicrosecond converts between the two time units the paper uses.
// The simulated reference clock runs at 1 GHz unless a Machine overrides
// it; KNL-like configs use 1.3-1.5 GHz, server configs 3.3 GHz (Fig. 7
// caption: 2 x 3.3 GHz 12-core CPUs).
const CyclesPerMicrosecond = 1000

// HardwareCosts are machine-level latencies independent of the OS stack.
type HardwareCosts struct {
	// InterruptDispatch is the cost in cycles from interrupt occurrence
	// to the first instruction of the handler (IDT path).
	InterruptDispatch int64
	// InterruptReturn is the iret-path cost back to the interrupted code.
	InterruptReturn int64
	// IPILatency is the cross-CPU interrupt delivery latency.
	IPILatency int64
	// IPIBroadcastPerCPU is the incremental cost per destination for a
	// broadcast IPI (LAPIC broadcast amortizes most of it).
	IPIBroadcastPerCPU int64
	// PredictedBranch is the cost of a correctly predicted branch; the
	// pipeline-interrupt proposal delivers simple interrupts at roughly
	// this latency.
	PredictedBranch int64
	// MispredictedBranch is the pipeline-flush cost of a misprediction.
	MispredictedBranch int64
	// CallInstruction is the cost of a direct call (the compiler-timing
	// replacement for a timer interrupt).
	CallInstruction int64
	// TimerProgram is the cost of programming the LAPIC timer.
	TimerProgram int64
	// FPStateSave / FPStateRestore cost of XSAVE/XRSTOR-class operations.
	FPStateSave    int64
	FPStateRestore int64
	// GPRSaveRestore is the integer register file save+restore cost.
	GPRSaveRestore int64
	// CacheLineTransfer is the cost to move one line between cores on
	// the same socket.
	CacheLineTransfer int64
	// TLBMiss is the page-walk cost on a TLB miss.
	TLBMiss int64
}

// DefaultHardware returns x64-like costs calibrated to the paper.
func DefaultHardware() HardwareCosts {
	return HardwareCosts{
		InterruptDispatch:  1000,
		InterruptReturn:    350,
		IPILatency:         600,
		IPIBroadcastPerCPU: 12,
		PredictedBranch:    2,
		MispredictedBranch: 18,
		CallInstruction:    4,
		TimerProgram:       120,
		FPStateSave:        550,
		FPStateRestore:     550,
		GPRSaveRestore:     140,
		CacheLineTransfer:  110,
		TLBMiss:            220,
	}
}

// LinuxCosts model the commodity-stack overheads a parallel runtime pays
// when it lives in user space above a general-purpose kernel.
type LinuxCosts struct {
	// SyscallEntry/Exit: user->kernel->user crossing costs, including
	// Spectre/Meltdown era mitigations.
	SyscallEntry int64
	SyscallExit  int64
	// SignalDeliver is the kernel work to deliver a POSIX signal to a
	// user thread (dequeue, frame setup) beyond the crossing itself.
	SignalDeliver int64
	// SignalReturn is the sigreturn path.
	SignalReturn int64
	// TimerSlackJitterMu/Sigma parameterize high-resolution timer expiry
	// jitter (cycles) under load.
	TimerJitterMu    float64
	TimerJitterSigma float64
	// NoiseAlpha/Lo/Hi parameterize heavy-tailed OS noise (bounded
	// Pareto): preemptions by kernel threads, RCU, SMIs.
	NoiseAlpha  float64
	NoiseLo     float64
	NoiseHi     float64
	NoiseEveryC int64 // average cycles between noise episodes per CPU
	// SchedulerPick is the runqueue selection cost in the kernel
	// scheduler (per context switch).
	SchedulerPick int64
	// MinTimerGranularity is the finest usable timer period (cycles);
	// below this the kernel coalesces or drops expirations.
	MinTimerGranularity int64
	// ForkExec is the cost of spinning up a fresh process (for the
	// virtine comparison baselines), in cycles.
	ForkExec int64
	// ContainerStart is a container-like sandbox start cost, in cycles.
	ContainerStart int64
	// ContextSwitchExtra is the general-purpose-kernel baggage per
	// context switch beyond dispatch, scheduling, and state save:
	// vruntime/cgroup accounting, lock traffic, mitigations. Calibrated
	// so a Linux non-RT FP switch totals ≈5000 cycles on KNL (Fig. 4).
	ContextSwitchExtra int64
}

// DefaultLinux returns Linux-like costs calibrated so that a non-RT
// user-level thread context switch with FP state totals about 5000 cycles
// and signal-based eventing shows the instability of Fig. 3.
func DefaultLinux() LinuxCosts {
	return LinuxCosts{
		SyscallEntry:        700,
		SyscallExit:         500,
		SignalDeliver:       1900,
		SignalReturn:        900,
		TimerJitterMu:       2500,
		TimerJitterSigma:    1400,
		NoiseAlpha:          1.3,
		NoiseLo:             2000,
		NoiseHi:             2.0e6,
		NoiseEveryC:         900_000,
		SchedulerPick:       900,
		MinTimerGranularity: 45_000, // ~45 µs effective floor under load
		ForkExec:            900_000,
		ContainerStart:      125_000_000,
		ContextSwitchExtra:  1_544,
	}
}

// NautilusCosts model the streamlined kernel-framework primitives (§III).
type NautilusCosts struct {
	// ThreadSwitch is the scheduler + context switch fixed cost,
	// excluding FP state (added from HardwareCosts when enabled).
	ThreadSwitch int64
	// FiberYield is the cooperative fiber switch cost: no interrupt
	// context, minimal state.
	FiberYield int64
	// TimingFrameworkCheck is the injected compiler-timing check cost
	// when the check does not fire (a load, compare, predicted branch).
	TimingFrameworkCheck int64
	// TimingFrameworkFire is the cost when the check fires and calls
	// into the timer framework (excluding any resulting switch).
	TimingFrameworkFire int64
	// EventWakeup is the kernel event signal/wakeup fast path.
	EventWakeup int64
	// ThreadCreate is thread creation+enqueue on a bound CPU.
	ThreadCreate int64
	// RTOverhead is the additional per-switch cost of the hard
	// real-time (EDF admission/accounting) scheduler class.
	RTOverhead int64
}

// DefaultNautilus returns Nautilus-like costs calibrated to Fig. 4:
// kernel (non-RT) thread switch ≈ half of Linux's 5000 cycles, and
// compiler-timed fibers slightly more than half again.
func DefaultNautilus() NautilusCosts {
	return NautilusCosts{
		ThreadSwitch:         1100,
		FiberYield:           180,
		TimingFrameworkCheck: 6,
		TimingFrameworkFire:  90,
		EventWakeup:          250,
		ThreadCreate:         800,
		RTOverhead:           650,
	}
}

// VirtineCosts model the Wasp microhypervisor lifecycle (§IV-D).
type VirtineCosts struct {
	// VMCreate is the hypervisor-side cost to create a VM container
	// (KVM ioctls, memory regions), in cycles.
	VMCreate int64
	// Boot16, BootProtected, BootLong are the per-stage costs of
	// bringing a virtine from reset through 16-bit, protected, and long
	// mode. Bespoke contexts can stop early (§V-E).
	Boot16        int64
	BootProtected int64
	BootLong      int64
	// RuntimeShimInit is the minimal runtime/unikernel shim setup.
	RuntimeShimInit int64
	// SnapshotRestore is the cost to restore a pre-booted snapshot.
	SnapshotRestore int64
	// PoolHandoff is the cost to hand a warm, pooled VM to a caller.
	PoolHandoff int64
	// VMExitEntry is the world-switch cost of a VM exit + entry.
	VMExitEntry int64
	// HypercallMarshal is the per-argument marshalling cost.
	HypercallMarshal int64
}

// DefaultVirtine calibrates to "start-up overheads as low as 100 µs":
// cold boot to long mode plus shim lands near 100 µs at 1 GHz, with
// snapshot and pooled paths far below it.
func DefaultVirtine() VirtineCosts {
	return VirtineCosts{
		VMCreate:         55_000,
		Boot16:           6_000,
		BootProtected:    9_000,
		BootLong:         17_000,
		RuntimeShimInit:  13_000,
		SnapshotRestore:  21_000,
		PoolHandoff:      2_500,
		VMExitEntry:      1_400,
		HypercallMarshal: 60,
	}
}

// CoherenceCosts model the memory-system magnitudes for the Fig. 7
// experiment (dual-socket 3.3 GHz server, 32K/256K/2.5M L1/L2/L3).
type CoherenceCosts struct {
	L1Hit        int64
	L2Hit        int64
	L3Hit        int64
	MemAccess    int64
	DirLookup    int64 // directory access on the home node
	HopLatency   int64 // per-interconnect-hop latency
	RemoteSocket int64 // extra latency for cross-socket traversal
	// Energy, in picojoules, per event; used for the interconnect
	// energy reduction result (~53%).
	EnergyPerHopPJ  float64
	EnergyPerDirPJ  float64
	EnergyPerMemPJ  float64
	EnergyPerLinePJ float64 // per cache-line flit payload
}

// DefaultCoherence returns server-class memory-system costs.
func DefaultCoherence() CoherenceCosts {
	return CoherenceCosts{
		L1Hit:           4,
		L2Hit:           12,
		L3Hit:           38,
		MemAccess:       220,
		DirLookup:       16,
		HopLatency:      5,
		RemoteSocket:    110,
		EnergyPerHopPJ:  3.2,
		EnergyPerDirPJ:  4.1,
		EnergyPerMemPJ:  18.5,
		EnergyPerLinePJ: 6.4,
	}
}

// Model bundles all cost domains for one simulated platform.
type Model struct {
	HW        HardwareCosts
	Linux     LinuxCosts
	Nautilus  NautilusCosts
	Virtine   VirtineCosts
	Coherence CoherenceCosts
	// FreqGHz is the simulated clock frequency, used to convert cycles
	// to microseconds in reports.
	FreqGHz float64
}

// Default returns the calibrated default platform model (1 GHz reference
// clock; use KNL or Server for the platform-specific figures).
func Default() Model {
	return Model{
		HW:        DefaultHardware(),
		Linux:     DefaultLinux(),
		Nautilus:  DefaultNautilus(),
		Virtine:   DefaultVirtine(),
		Coherence: DefaultCoherence(),
		FreqGHz:   1.0,
	}
}

// KNL returns a Xeon-Phi-KNL-like model: slow cores, expensive FP state,
// many hardware threads. Fig. 4 and Fig. 6 run on this platform.
//
// The Fig. 4 calibration solves the paper's stated ratios exactly:
// Linux non-RT FP switch ≈ 5000 cycles; Nautilus HW-timer thread FP
// switch ≈ 2500 ("about half"); compiler-timed fiber switch 4.0x below
// the thread path without FP state and 2.3x below with it; and the
// no-FP compiler-timed switch lands under the 600-cycle granularity
// limit the paper reports.
func KNL() Model {
	m := Default()
	m.FreqGHz = 1.3
	m.HW.InterruptDispatch = 1100
	m.HW.InterruptReturn = 300
	m.HW.GPRSaveRestore = 140
	m.HW.FPStateSave = 308 // x2 = 616 cycles of FP state per switch
	m.HW.FPStateRestore = 308
	m.Linux.SchedulerPick = 1300
	m.Nautilus.ThreadSwitch = 344
	m.Nautilus.FiberYield = 261
	m.Nautilus.TimingFrameworkFire = 70
	return m
}

// Server returns a dual-socket 3.3 GHz server model (Fig. 7 platform).
func Server() Model {
	m := Default()
	m.FreqGHz = 3.3
	return m
}

// RISCV returns an OpenPiton-class RV64 open-hardware model (§V-F: "we
// are currently exploring a port of Nautilus and other components to
// RISC-V ... By working on open hardware, we anticipate being able to
// more deeply explore hardware changes prompted by the interweaving
// model"). The trap path is lean (direct mtvec dispatch, mret return,
// no microcoded IDT walk), FP state is just the F/D register file, and
// IPIs go through the CLINT; the clock is modest.
func RISCV() Model {
	m := Default()
	m.FreqGHz = 0.8
	m.HW.InterruptDispatch = 300
	m.HW.InterruptReturn = 90
	m.HW.IPILatency = 900
	m.HW.FPStateSave = 130
	m.HW.FPStateRestore = 130
	m.HW.GPRSaveRestore = 110
	m.HW.PredictedBranch = 1 // short in-order pipeline
	m.HW.MispredictedBranch = 6
	m.Nautilus.ThreadSwitch = 280
	m.Nautilus.FiberYield = 140
	m.Linux.SchedulerPick = 1100
	return m
}

// CyclesToMicros converts cycles to microseconds under the model's clock.
func (m Model) CyclesToMicros(c int64) float64 {
	return float64(c) / (m.FreqGHz * 1000)
}

// MicrosToCycles converts microseconds to cycles under the model's clock.
func (m Model) MicrosToCycles(us float64) int64 {
	return int64(us * m.FreqGHz * 1000)
}

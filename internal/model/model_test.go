package model

import "testing"

func TestDefaultsPositive(t *testing.T) {
	m := Default()
	for name, v := range map[string]int64{
		"InterruptDispatch": m.HW.InterruptDispatch,
		"IPILatency":        m.HW.IPILatency,
		"PredictedBranch":   m.HW.PredictedBranch,
		"SyscallEntry":      m.Linux.SyscallEntry,
		"SignalDeliver":     m.Linux.SignalDeliver,
		"ThreadSwitch":      m.Nautilus.ThreadSwitch,
		"FiberYield":        m.Nautilus.FiberYield,
		"VMCreate":          m.Virtine.VMCreate,
		"L1Hit":             m.Coherence.L1Hit,
	} {
		if v <= 0 {
			t.Fatalf("%s = %d", name, v)
		}
	}
	if m.FreqGHz != 1.0 {
		t.Fatalf("default freq = %v", m.FreqGHz)
	}
}

func TestPaperCalibrations(t *testing.T) {
	m := Default()
	// §V-D: interrupt dispatch ≈ 1000 cycles.
	if m.HW.InterruptDispatch != 1000 {
		t.Fatalf("dispatch = %d", m.HW.InterruptDispatch)
	}
	// Pipeline delivery ≈ predicted branch: 100-1000x better.
	ratio := float64(m.HW.InterruptDispatch) / float64(m.HW.PredictedBranch)
	if ratio < 100 || ratio > 1000 {
		t.Fatalf("dispatch/branch ratio = %v", ratio)
	}
}

func TestKNLFig4Calibration(t *testing.T) {
	m := KNL()
	lxFP := m.HW.InterruptDispatch + m.HW.InterruptReturn + m.HW.GPRSaveRestore +
		m.Linux.SchedulerPick + m.Linux.ContextSwitchExtra +
		m.HW.FPStateSave + m.HW.FPStateRestore
	if lxFP < 4900 || lxFP > 5100 {
		t.Fatalf("Linux FP switch = %d, want ≈5000", lxFP)
	}
	nkFP := m.HW.InterruptDispatch + m.HW.InterruptReturn + m.HW.GPRSaveRestore +
		m.Nautilus.ThreadSwitch + m.HW.FPStateSave + m.HW.FPStateRestore
	if r := float64(lxFP) / float64(nkFP); r < 1.8 || r > 2.2 {
		t.Fatalf("Nautilus thread should be about half of Linux: ratio %v", r)
	}
	fiberCT := m.Nautilus.TimingFrameworkFire + m.Nautilus.FiberYield + m.HW.GPRSaveRestore
	if fiberCT >= 600 {
		t.Fatalf("compiler-timed fiber switch = %d, paper says < 600", fiberCT)
	}
}

func TestServerPlatform(t *testing.T) {
	m := Server()
	if m.FreqGHz != 3.3 {
		t.Fatalf("server freq = %v", m.FreqGHz)
	}
}

func TestCycleConversions(t *testing.T) {
	m := Default()
	if m.CyclesToMicros(1000) != 1.0 {
		t.Fatal("1000 cycles at 1GHz must be 1µs")
	}
	if m.MicrosToCycles(20) != 20_000 {
		t.Fatal("20µs at 1GHz must be 20000 cycles")
	}
	knl := KNL()
	if knl.MicrosToCycles(100) != 130_000 {
		t.Fatalf("100µs at 1.3GHz = %d", knl.MicrosToCycles(100))
	}
}

func TestVirtineColdBudget(t *testing.T) {
	v := DefaultVirtine()
	cold := v.VMCreate + v.Boot16 + v.BootProtected + v.BootLong + v.RuntimeShimInit
	m := Default()
	us := m.CyclesToMicros(cold)
	if us < 80 || us > 120 {
		t.Fatalf("cold virtine boot = %v µs, want ≈100", us)
	}
	if v.PoolHandoff >= v.SnapshotRestore || v.SnapshotRestore >= cold {
		t.Fatal("start path ordering wrong")
	}
}

package virtine

import (
	"strings"
	"testing"

	"repro/internal/ir"
	"repro/internal/model"
)

// fibModule builds the paper's Fig. 5 example: virtine int fib(int n).
func fibModule() *ir.Module {
	m := ir.NewModule("fib")
	f := m.NewFunction("fib", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	two := b.Const(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))
	return m
}

func fibSpec() *Spec {
	return &Spec{Mod: fibModule(), Entry: "fib", Boot: Boot64}
}

func TestInvokeComputesCorrectly(t *testing.T) {
	w := NewWasp(model.Default())
	got, lat, err := w.Invoke(fibSpec(), StartCold, 15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
	if lat.StartupCycles <= 0 || lat.ExecCycles <= 0 || lat.Total() <= lat.ExecCycles {
		t.Fatalf("latency decomposition wrong: %+v", lat)
	}
}

func TestColdBootNear100us(t *testing.T) {
	// §IV-D: "start-up overheads as low as 100µs". At the default
	// 1 GHz model, 100 µs = 100k cycles.
	w := NewWasp(model.Default())
	s := fibSpec()
	s.NeedFP = true
	s.NeedIO = true
	cost := w.Model.Virtine.VMCreate + w.BootCycles(s)
	us := w.Model.CyclesToMicros(cost)
	if us < 80 || us > 130 {
		t.Fatalf("cold full boot = %.1f µs, want ≈100", us)
	}
}

func TestBespokeContextsCheaper(t *testing.T) {
	// §V-E: contexts that need less boot less.
	w := NewWasp(model.Default())
	full := &Spec{Mod: fibModule(), Entry: "fib", Boot: Boot64, NeedFP: true, NeedIO: true}
	mini := &Spec{Mod: fibModule(), Entry: "fib", Boot: Boot16}
	bFull := w.BootCycles(full)
	bMini := w.BootCycles(mini)
	if bMini >= bFull {
		t.Fatalf("16-bit bespoke boot %d >= full boot %d", bMini, bFull)
	}
	if float64(bMini) > 0.5*float64(bFull) {
		t.Fatalf("bespoke saving too small: %d vs %d", bMini, bFull)
	}
	mid := &Spec{Mod: fibModule(), Entry: "fib", Boot: Boot32}
	if b := w.BootCycles(mid); b <= bMini || b >= bFull {
		t.Fatalf("protected-mode boot %d not between %d and %d", b, bMini, bFull)
	}
}

func TestSnapshotFasterAfterFirstUse(t *testing.T) {
	w := NewWasp(model.Default())
	s := fibSpec()
	_, first, err := w.Invoke(s, StartSnapshot, 5)
	if err != nil {
		t.Fatal(err)
	}
	_, second, err := w.Invoke(s, StartSnapshot, 5)
	if err != nil {
		t.Fatal(err)
	}
	if second.StartupCycles >= first.StartupCycles {
		t.Fatalf("snapshot restart %d >= first boot %d", second.StartupCycles, first.StartupCycles)
	}
	if w.Stats.SnapCreated != 1 || w.Stats.SnapRestores != 1 {
		t.Fatalf("stats = %+v", w.Stats)
	}
}

func TestPooledStartCheapest(t *testing.T) {
	w := NewWasp(model.Default())
	s := fibSpec()
	w.WarmPool(s, 2)
	_, pooled, err := w.Invoke(s, StartPooled, 5)
	if err != nil {
		t.Fatal(err)
	}
	w2 := NewWasp(model.Default())
	_, cold, _ := w2.Invoke(fibSpec(), StartCold, 5)
	w3 := NewWasp(model.Default())
	sn := fibSpec()
	w3.Invoke(sn, StartSnapshot, 5)
	_, snap, _ := w3.Invoke(sn, StartSnapshot, 5)

	if !(pooled.StartupCycles < snap.StartupCycles && snap.StartupCycles < cold.StartupCycles) {
		t.Fatalf("ordering wrong: pooled=%d snap=%d cold=%d",
			pooled.StartupCycles, snap.StartupCycles, cold.StartupCycles)
	}
}

func TestPoolFallsBackAndRefills(t *testing.T) {
	w := NewWasp(model.Default())
	s := fibSpec()
	if w.PoolSize(s) != 0 {
		t.Fatal("pool should start empty")
	}
	_, lat, err := w.Invoke(s, StartPooled, 3)
	if err != nil {
		t.Fatal(err)
	}
	// First pooled call cold-boots and warms the pool.
	if w.Stats.ColdBoots != 1 {
		t.Fatalf("cold boots = %d", w.Stats.ColdBoots)
	}
	if w.PoolSize(s) != w.PoolTarget {
		t.Fatalf("pool = %d, want %d", w.PoolSize(s), w.PoolTarget)
	}
	_, lat2, _ := w.Invoke(s, StartPooled, 3)
	if lat2.StartupCycles >= lat.StartupCycles {
		t.Fatal("second pooled call should hit the warm pool")
	}
	if w.Stats.PoolHits != 1 {
		t.Fatalf("pool hits = %d", w.Stats.PoolHits)
	}
}

func TestIsolation(t *testing.T) {
	// Two invocations of a stateful function must not share memory:
	// each virtine gets a fresh heap.
	m := ir.NewModule("counter")
	f := m.NewFunction("bump", 0)
	b := ir.NewBuilder(f)
	// Allocate a cell, increment what is there, return it. If state
	// leaked across invocations the second call would return 2.
	cell := b.Alloc(8)
	v := b.Load(cell, 0)
	one := b.Const(1)
	nv := b.Add(v, one)
	b.Store(cell, 0, nv)
	b.Ret(nv)
	s := &Spec{Mod: m, Entry: "bump", Boot: Boot64}

	w := NewWasp(model.Default())
	r1, _, err := w.Invoke(s, StartCold)
	if err != nil {
		t.Fatal(err)
	}
	r2, _, err := w.Invoke(s, StartCold)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != 1 || r2 != 1 {
		t.Fatalf("isolation broken: r1=%d r2=%d (state leaked)", r1, r2)
	}
}

func TestBaselineComparison(t *testing.T) {
	// The virtine pitch: far cheaper than process- or container-grade
	// isolation.
	w := NewWasp(model.Default())
	s := fibSpec()
	cold := w.Model.Virtine.VMCreate + w.BootCycles(s)
	if cold >= w.ProcessBaselineCycles() {
		t.Fatalf("virtine cold boot %d >= fork/exec %d", cold, w.ProcessBaselineCycles())
	}
	if w.ProcessBaselineCycles() >= w.ContainerBaselineCycles() {
		t.Fatal("baseline ordering wrong")
	}
}

func TestMarshallingCharged(t *testing.T) {
	w := NewWasp(model.Default())
	s := fibSpec()
	_, lat1, _ := w.Invoke(s, StartCold, 1)
	w2 := NewWasp(model.Default())
	m := fibModule()
	f := m.NewFunction("fib3", 3)
	fb := ir.NewBuilder(f)
	fb.Ret(fb.Param(0))
	s3 := &Spec{Mod: m, Entry: "fib3", Boot: Boot64}
	_, lat3, err := w2.Invoke(s3, StartCold, 1, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	perArg := w.Model.Virtine.HypercallMarshal
	if lat3.StartupCycles != lat1.StartupCycles+2*perArg {
		t.Fatalf("marshal cost wrong: %d vs %d", lat3.StartupCycles, lat1.StartupCycles)
	}
}

func TestInvokeErrorPropagates(t *testing.T) {
	m := ir.NewModule("bad")
	f := m.NewFunction("boom", 0)
	b := ir.NewBuilder(f)
	b.Ret(b.Div(b.Const(1), b.Const(0)))
	w := NewWasp(model.Default())
	_, _, err := w.Invoke(&Spec{Mod: m, Entry: "boom", Boot: Boot64}, StartCold)
	if err == nil || !strings.Contains(err.Error(), "virtine boom") {
		t.Fatalf("err = %v", err)
	}
}

func TestStringers(t *testing.T) {
	if Boot16.String() != "16-bit" || Boot32.String() != "protected" || Boot64.String() != "long" {
		t.Fatal("boot level names")
	}
	if StartCold.String() != "cold" || StartSnapshot.String() != "snapshot" || StartPooled.String() != "pooled" {
		t.Fatal("start path names")
	}
}

func TestServiceVirtinesSustainLoadForkCannot(t *testing.T) {
	// At 1 request per 150µs with ~10µs of work: pooled virtines
	// (≈4µs startup) are far below saturation; fork/exec (900µs) is
	// over capacity and its queue explodes.
	mdl := model.Default()
	w := NewWasp(mdl)
	base := ServiceConfig{
		ArrivalMeanCycles: 150_000,
		Requests:          4000,
		ExecCycles:        10_000,
		Seed:              3,
	}
	pooled := base
	pooled.StartupCycles = mdl.Virtine.PoolHandoff
	fork := base
	fork.StartupCycles = w.ProcessBaselineCycles()

	rp := SimulateService(pooled)
	rf := SimulateService(fork)
	if rp.Utilization >= 0.5 {
		t.Fatalf("virtine utilization = %.2f, should be far below saturation", rp.Utilization)
	}
	if rf.Utilization < 0.99 {
		t.Fatalf("fork utilization = %.2f, should saturate", rf.Utilization)
	}
	// Tail latency: virtines bounded near service time; fork queue grows.
	if rp.Latency.P99 > 100_000 {
		t.Fatalf("virtine p99 = %.0f cycles, should stay near service time", rp.Latency.P99)
	}
	if rf.Latency.P99 < 10*rp.Latency.P99 {
		t.Fatalf("fork p99 (%.0f) should dwarf virtine p99 (%.0f)", rf.Latency.P99, rp.Latency.P99)
	}
}

func TestServiceDeterministic(t *testing.T) {
	cfg := ServiceConfig{ArrivalMeanCycles: 50_000, Requests: 500, ExecCycles: 5000,
		StartupCycles: 2500, Seed: 9}
	a := SimulateService(cfg)
	b := SimulateService(cfg)
	if a.Latency.Mean != b.Latency.Mean || a.Throughput != b.Throughput {
		t.Fatal("nondeterministic")
	}
	if a.Utilization <= 0 || a.Utilization > 1 {
		t.Fatalf("utilization = %v", a.Utilization)
	}
}

// Package virtine implements function-granularity virtualization
// (§IV-D): virtines — functions executing in isolated, virtualized
// execution contexts — and Wasp, the microhypervisor that creates,
// snapshots, pools, and runs them.
//
// A virtine's code is an internal/ir function; each invocation executes
// in its own interpreter with its own heap, which *is* the isolation
// property (no state is shared unless explicitly passed). Start-up paths
// reproduce the paper's cost structure: a cold boot walks the real mode →
// protected → long-mode stages and lands near 100 µs, snapshots and
// pools land far below, and bespoke contexts (§V-E) stop booting as
// early as the function's needs allow ("we may even leave the machine in
// 16-bit mode ... for certain simple services").
package virtine

import (
	"errors"
	"fmt"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/model"
)

// ErrNoPool is returned when a pooled start finds no warm VM.
var ErrNoPool = errors.New("virtine: pool empty")

// BootLevel is how far the context boots before running user code.
type BootLevel int

// Boot levels (bespoke contexts can stop early).
const (
	Boot16 BootLevel = iota // real mode only: simplest services
	Boot32                  // protected mode
	Boot64                  // long mode: full environment
)

// String names the level.
func (b BootLevel) String() string {
	switch b {
	case Boot16:
		return "16-bit"
	case Boot32:
		return "protected"
	default:
		return "long"
	}
}

// StartPath selects how the virtine context is obtained.
type StartPath int

// Start paths.
const (
	StartCold StartPath = iota
	StartSnapshot
	StartPooled
)

// String names the path.
func (s StartPath) String() string {
	switch s {
	case StartCold:
		return "cold"
	case StartSnapshot:
		return "snapshot"
	default:
		return "pooled"
	}
}

// Spec declares a virtine: its code, entry point, and the bespoke
// context it needs. This is the compiler's output for the `virtine`
// keyword of Fig. 5.
type Spec struct {
	Mod   *ir.Module
	Entry string
	// Boot is the minimum environment the code needs.
	Boot BootLevel
	// NeedFP: the context must initialize the FPU ("a piece of code
	// which leverages only integer math need not have the OS layer set
	// up the floating point unit").
	NeedFP bool
	// NeedIO: the context needs device I/O support in its shim.
	NeedIO bool
	// HeapBytes sizes the isolated heap (default 16 MiB).
	HeapBytes uint64
}

// Latency decomposes one invocation.
type Latency struct {
	StartupCycles int64
	ExecCycles    int64
	ExitCycles    int64
}

// Total returns the end-to-end latency.
func (l Latency) Total() int64 { return l.StartupCycles + l.ExecCycles + l.ExitCycles }

// Stats aggregate over a Wasp instance.
type Stats struct {
	Invocations  int64
	ColdBoots    int64
	SnapRestores int64
	PoolHits     int64
	PoolRefills  int64
	SnapCreated  int64
}

// Wasp is the microhypervisor: it runs as an ordinary process (its
// state here) and multiplexes virtine contexts.
type Wasp struct {
	Model model.Model
	Stats Stats

	// snapshots holds post-boot images keyed by spec identity.
	snapshots map[string]bool
	// pool holds counts of warm contexts keyed by spec identity.
	pool map[string]int
	// PoolTarget is the warm-pool size Wasp maintains per spec.
	PoolTarget int
}

// NewWasp creates a microhypervisor with the given platform model.
func NewWasp(m model.Model) *Wasp {
	return &Wasp{
		Model:      m,
		snapshots:  make(map[string]bool),
		pool:       make(map[string]int),
		PoolTarget: 4,
	}
}

func specKey(s *Spec) string {
	return fmt.Sprintf("%s/%s/b%d/fp%v/io%v", s.Mod.Name, s.Entry, s.Boot, s.NeedFP, s.NeedIO)
}

// BootCycles returns the bespoke boot cost for a spec: stages up to the
// requested level, plus shim setup scaled by what the code needs.
func (w *Wasp) BootCycles(s *Spec) int64 {
	v := w.Model.Virtine
	c := v.Boot16
	if s.Boot >= Boot32 {
		c += v.BootProtected
	}
	if s.Boot >= Boot64 {
		c += v.BootLong
	}
	shim := v.RuntimeShimInit
	if !s.NeedIO {
		shim -= shim / 3 // no driver layer to set up
	}
	if !s.NeedFP {
		shim -= shim / 4 // no FPU/XSAVE area initialization
	}
	c += shim
	if s.NeedFP {
		c += w.Model.HW.FPStateRestore
	}
	return c
}

// StartupCycles returns the start-path cost for a spec. Snapshot starts
// create the snapshot on first use (charged SnapCreated, returned as a
// cold boot); pooled starts fall back to cold when the pool is empty.
func (w *Wasp) startupCycles(s *Spec, path StartPath) int64 {
	v := w.Model.Virtine
	key := specKey(s)
	switch path {
	case StartSnapshot:
		if w.snapshots[key] {
			w.Stats.SnapRestores++
			return v.SnapshotRestore
		}
		// First use: boot cold and capture the image.
		w.snapshots[key] = true
		w.Stats.SnapCreated++
		w.Stats.ColdBoots++
		return v.VMCreate + w.BootCycles(s) + v.SnapshotRestore/4
	case StartPooled:
		if w.pool[key] > 0 {
			w.pool[key]--
			w.Stats.PoolHits++
			// Wasp refills the pool asynchronously; the refill cost is
			// off the critical path and only counted.
			w.Stats.PoolRefills++
			return v.PoolHandoff
		}
		w.Stats.ColdBoots++
		w.pool[key] = w.PoolTarget // warm the pool for future calls
		w.Stats.PoolRefills += int64(w.PoolTarget)
		return v.VMCreate + w.BootCycles(s)
	default:
		w.Stats.ColdBoots++
		return v.VMCreate + w.BootCycles(s)
	}
}

// Invoke runs a virtine: isolated interpreter, isolated heap, arguments
// marshalled through hypercall-style copies. Returns the function result
// and the latency decomposition.
func (w *Wasp) Invoke(s *Spec, path StartPath, args ...uint64) (uint64, Latency, error) {
	w.Stats.Invocations++
	var lat Latency
	lat.StartupCycles = w.startupCycles(s, path)

	heapBytes := s.HeapBytes
	if heapBytes == 0 {
		heapBytes = 16 << 20
	}
	h, err := interp.NewHeap(0x10000, heapBytes)
	if err != nil {
		return 0, lat, err
	}
	// Virtines get a tighter step budget than interp.DefaultMaxSteps
	// (they are short-lived functions) but deeper call nesting.
	// Concurrent Invokes may share s.Mod: each holds its own Interp,
	// and the module is only read.
	ip := &interp.Interp{
		Mod:      s.Mod,
		Heap:     h,
		Cost:     interp.DefaultCosts(),
		MaxSteps: 100_000_000,
		MaxDepth: 512,
	}
	// Argument marshalling is a hypercall each way.
	v := w.Model.Virtine
	lat.StartupCycles += v.VMExitEntry + int64(len(args))*v.HypercallMarshal

	ret, err := ip.Call(s.Entry, args...)
	lat.ExecCycles = ip.Stats.Cycles
	lat.ExitCycles = v.VMExitEntry + v.HypercallMarshal
	if err != nil {
		return 0, lat, fmt.Errorf("virtine %s: %w", s.Entry, err)
	}
	return ret, lat, nil
}

// WarmPool pre-creates n contexts for a spec (Wasp does this at
// registration time in the real system).
func (w *Wasp) WarmPool(s *Spec, n int) {
	w.pool[specKey(s)] += n
	w.Stats.PoolRefills += int64(n)
}

// PoolSize reports the current warm count for a spec.
func (w *Wasp) PoolSize(s *Spec) int { return w.pool[specKey(s)] }

// ProcessBaselineCycles returns the fork+exec cost of the conventional
// isolation alternative.
func (w *Wasp) ProcessBaselineCycles() int64 { return w.Model.Linux.ForkExec }

// ContainerBaselineCycles returns the container-start alternative.
func (w *Wasp) ContainerBaselineCycles() int64 { return w.Model.Linux.ContainerStart }

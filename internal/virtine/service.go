package virtine

import (
	"repro/internal/sim"
	"repro/internal/stats"
)

// ServiceConfig describes a FaaS service simulation: requests arrive as
// a Poisson process and each executes in its own isolated context —
// either a pooled virtine or a forked process (the baseline). The
// virtines paper's service benchmarks measure exactly this shape.
type ServiceConfig struct {
	// ArrivalMeanCycles is the mean inter-arrival gap.
	ArrivalMeanCycles float64
	// Requests is the number of requests to simulate.
	Requests int
	// ExecCycles is the per-request function execution time.
	ExecCycles int64
	// StartupCycles is the per-request isolation start-up cost.
	StartupCycles int64
	Seed          uint64
	// RNG, when non-nil, supplies the arrival randomness directly and
	// Seed is ignored. A parallel runner pre-splits one generator per
	// simulation (exp.MapRNG) so results are independent of goroutine
	// scheduling.
	RNG *sim.RNG
}

// ServiceResult summarizes a run.
type ServiceResult struct {
	Latency     stats.Summary // end-to-end latency per request (cycles)
	Throughput  float64       // completed requests per Mcycle
	Utilization float64       // busy fraction of the server
}

// SimulateService runs an M/D/1-style simulation of the service: one
// execution context at a time (Wasp serializes per core), FIFO queue.
func SimulateService(cfg ServiceConfig) ServiceResult {
	rng := cfg.RNG
	if rng == nil {
		rng = sim.NewRNG(cfg.Seed)
	}
	arrival := sim.Exponential{Offset: 0, MeanExp: cfg.ArrivalMeanCycles}

	service := cfg.StartupCycles + cfg.ExecCycles
	var now, serverFree, busy float64
	var lats []float64
	for i := 0; i < cfg.Requests; i++ {
		now += arrival.Sample(rng)
		start := now
		if serverFree > start {
			start = serverFree
		}
		end := start + float64(service)
		serverFree = end
		busy += float64(service)
		lats = append(lats, end-now)
	}
	res := ServiceResult{Latency: stats.Summarize(lats)}
	if serverFree > 0 {
		res.Throughput = float64(cfg.Requests) / serverFree * 1e6
		res.Utilization = busy / serverFree
	}
	return res
}

package coherence

import (
	"sort"

	"repro/internal/mem"
	"repro/internal/model"
)

// SharingClass is the region annotation that flows "from the higher
// levels of the stack" (§V-B): the language/runtime tells the hardware
// what sharing pattern a region has, and the protocol specializes.
type SharingClass uint8

// Sharing classes.
const (
	// ClassDefault: full reactive MESI with directory.
	ClassDefault SharingClass = iota
	// ClassPrivate: thread-private data; coherence deactivated entirely
	// (no directory state, no invalidations — the [21] observation that
	// "thread-private data are tracked in the coherence protocol, even
	// though there are no other sharers").
	ClassPrivate
	// ClassReadOnly: immutable after initialization; replicas live in
	// any cache without tracking.
	ClassReadOnly
	// ClassProducerConsumer: data flows one way between known cores;
	// transfers are steered directly producer→consumer without the
	// "third node (the directory) that is often located far away".
	ClassProducerConsumer
)

// String names the class.
func (c SharingClass) String() string {
	switch c {
	case ClassPrivate:
		return "private"
	case ClassReadOnly:
		return "read-only"
	case ClassProducerConsumer:
		return "producer-consumer"
	default:
		return "default"
	}
}

// Region is a classified address range.
type Region struct {
	Base  mem.Addr
	Size  uint64
	Class SharingClass
	// Producer is the producing core for ClassProducerConsumer.
	Producer int
}

// dirState is the directory's view of one line.
type dirState struct {
	sharers map[int]bool
	owner   int // core with M copy; -1 if none
}

// Stats aggregates the measurable outcomes: Fig. 7 plots speedup (from
// cycles) and reports interconnect energy reduction.
type Stats struct {
	Accesses   uint64
	L1Hits     uint64
	L2Hits     uint64
	L3Hits     uint64
	MemFetches uint64

	DirLookups     uint64
	Invalidations  uint64
	WritebacksDir  uint64
	OwnerForwards  uint64 // 3-hop M-copy fetches via directory
	DirectSteers   uint64 // producer→consumer direct transfers
	UpgradeMisses  uint64 // S->M upgrades requiring invalidations
	DeactivatedAcc uint64 // accesses served with coherence deactivated

	Hops          uint64
	LineTransfers uint64

	// Cycles is the per-core cycle accounting.
	Cycles []int64
	// EnergyPJ is total memory-system energy (interconnect +
	// directory + memory).
	EnergyPJ float64
	// InterconnectPJ is the interconnect-only energy (hops, line
	// flits, directory accesses) — the quantity whose ~53%% reduction
	// the paper reports.
	InterconnectPJ float64
}

// TotalCycles returns the maximum per-core cycle count (BSP completion).
func (s *Stats) TotalCycles() int64 {
	var m int64
	for _, c := range s.Cycles {
		if c > m {
			m = c
		}
	}
	return m
}

// SumCycles returns the sum over cores.
func (s *Stats) SumCycles() int64 {
	var t int64
	for _, c := range s.Cycles {
		t += c
	}
	return t
}

// Config describes the simulated memory system (Fig. 7 platform default:
// dual-socket, 12 cores per socket, 32K/256K/2.5M caches).
type Config struct {
	Sockets        int
	CoresPerSocket int
	LineSize       int
	L1Size, L1Ways int
	L2Size, L2Ways int
	// L3SlicePerCore is the shared L3 slice size per core.
	L3SlicePerCore, L3Ways int
	// MeshWidth is the on-die mesh width in tiles (0 = auto).
	MeshWidth int
	// Deactivation enables selective coherence deactivation.
	Deactivation bool
	Costs        model.CoherenceCosts
}

// DefaultConfig returns the Fig. 7 platform.
func DefaultConfig() Config {
	return Config{
		Sockets:        2,
		CoresPerSocket: 12,
		LineSize:       64,
		L1Size:         32 << 10, L1Ways: 8,
		L2Size: 256 << 10, L2Ways: 8,
		L3SlicePerCore: 2560 << 10, L3Ways: 16,
		Costs: model.DefaultCoherence(),
	}
}

// System is one simulated coherent memory hierarchy.
type System struct {
	Cfg   Config
	cores int

	// FilterClass, when not ClassDefault, demotes every classification
	// that is not this class to ClassDefault — the per-class ablation
	// hook.
	FilterClass SharingClass

	l1, l2 []*Cache
	l3     []*Cache // one slice per core (NUCA); home by line hash
	dir    map[uint64]*dirState

	regions []Region // sorted by base

	Stats Stats
}

// New builds a system from cfg.
func New(cfg Config) *System {
	cores := cfg.Sockets * cfg.CoresPerSocket
	s := &System{Cfg: cfg, cores: cores, dir: make(map[uint64]*dirState)}
	for i := 0; i < cores; i++ {
		s.l1 = append(s.l1, NewCache(cfg.L1Size, cfg.L1Ways, cfg.LineSize))
		s.l2 = append(s.l2, NewCache(cfg.L2Size, cfg.L2Ways, cfg.LineSize))
		s.l3 = append(s.l3, NewCache(cfg.L3SlicePerCore, cfg.L3Ways, cfg.LineSize))
	}
	s.Stats.Cycles = make([]int64, cores)
	return s
}

// Cores returns the core count.
func (s *System) Cores() int { return s.cores }

// Classify registers (or reclassifies) a region. Classification comes
// from the language runtime's knowledge (MPL disentanglement, §V-B).
func (s *System) Classify(base mem.Addr, size uint64, class SharingClass, producer int) {
	if s.FilterClass != ClassDefault && class != s.FilterClass {
		class = ClassDefault
	}
	r := Region{Base: base, Size: size, Class: class, Producer: producer}
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > base })
	s.regions = append(s.regions, Region{})
	copy(s.regions[i+1:], s.regions[i:])
	s.regions[i] = r
}

// classOf returns the sharing class of an address.
func (s *System) classOf(a mem.Addr) (SharingClass, int) {
	i := sort.Search(len(s.regions), func(i int) bool { return s.regions[i].Base > a })
	if i > 0 {
		r := s.regions[i-1]
		if a >= r.Base && uint64(a-r.Base) < r.Size {
			return r.Class, r.Producer
		}
	}
	return ClassDefault, -1
}

// home returns the home core (L3 slice / directory tile) of a line.
func (s *System) home(line uint64) int {
	return int(line % uint64(s.cores))
}

// meshCoord returns a core's tile coordinates within its socket.
func (s *System) meshCoord(core int) (sock, x, y int) {
	sock = core / s.Cfg.CoresPerSocket
	local := core % s.Cfg.CoresPerSocket
	w := s.Cfg.MeshWidth
	if w == 0 {
		w = 4
		for w*w < s.Cfg.CoresPerSocket {
			w++
		}
	}
	return sock, local % w, local / w
}

// hops returns the interconnect distance between two cores, counting
// mesh hops plus the socket interconnect when crossing.
func (s *System) hops(a, b int) (hops uint64, crossSocket bool) {
	sa, xa, ya := s.meshCoord(a)
	sb, xb, yb := s.meshCoord(b)
	dx, dy := xa-xb, ya-yb
	if dx < 0 {
		dx = -dx
	}
	if dy < 0 {
		dy = -dy
	}
	h := uint64(dx + dy)
	if sa != sb {
		return h + 2, true // to edge, across, from edge (abstracted)
	}
	return h, false
}

// chargeHops accounts latency and energy for n hops (+ socket crossing)
// carrying a line payload if xfer is true.
func (s *System) chargeHops(core int, n uint64, cross bool, xfer bool) int64 {
	c := s.Cfg.Costs
	lat := int64(n) * c.HopLatency
	if cross {
		lat += c.RemoteSocket
	}
	s.Stats.Hops += n
	s.Stats.EnergyPJ += float64(n) * c.EnergyPerHopPJ
	s.Stats.InterconnectPJ += float64(n) * c.EnergyPerHopPJ
	if xfer {
		s.Stats.LineTransfers++
		s.Stats.EnergyPJ += c.EnergyPerLinePJ * float64(n)
		s.Stats.InterconnectPJ += c.EnergyPerLinePJ * float64(n)
	}
	return lat
}

// Access performs one memory access by core at addr and returns its
// latency in cycles. Latency is also accumulated into Stats.Cycles[core].
func (s *System) Access(core int, addr mem.Addr, write bool) int64 {
	s.Stats.Accesses++
	line := s.l1[core].LineAddr(addr)
	class, producer := s.classOf(addr)
	deact := s.Cfg.Deactivation && class != ClassDefault

	var lat int64
	switch {
	case deact && class == ClassPrivate:
		lat = s.accessPrivate(core, line, write)
	case deact && class == ClassReadOnly:
		lat = s.accessReadOnly(core, line, write)
	case deact && class == ClassProducerConsumer:
		lat = s.accessSteered(core, line, write, producer)
	default:
		lat = s.accessMESI(core, line, write)
	}
	s.Stats.Cycles[core] += lat
	return lat
}

// accessMESI is the full reactive protocol.
func (s *System) accessMESI(core int, line uint64, write bool) int64 {
	c := s.Cfg.Costs
	st := s.l1[core].Lookup(line)
	if st != Invalid {
		if !write || st == Modified || st == Exclusive {
			if write {
				s.setPrivState(core, line, Modified)
				s.setDirOwner(line, core)
			}
			s.Stats.L1Hits++
			return c.L1Hit
		}
		// S->M upgrade: invalidate other sharers via directory.
		s.Stats.L1Hits++
		s.Stats.UpgradeMisses++
		lat := c.L1Hit + s.dirInvalidateOthers(core, line)
		s.setPrivState(core, line, Modified)
		s.setDirOwner(line, core)
		return lat
	}
	// L1 miss -> private L2.
	if st2 := s.l2[core].Lookup(line); st2 != Invalid {
		if write && st2 == Shared {
			s.Stats.L2Hits++
			lat := c.L2Hit + s.dirInvalidateOthers(core, line)
			s.fillPrivate(core, line, Modified)
			s.setDirOwner(line, core)
			return lat
		}
		s.Stats.L2Hits++
		ns := st2
		if write {
			ns = Modified
			s.setDirOwner(line, core)
		}
		s.fillPrivate(core, line, ns)
		return c.L2Hit
	}
	// Miss to the home tile: directory + L3 slice.
	home := s.home(line)
	h, cross := s.hops(core, home)
	lat := s.chargeHops(core, h, cross, false) + c.DirLookup
	s.Stats.DirLookups++
	s.Stats.EnergyPJ += c.EnergyPerDirPJ
	s.Stats.InterconnectPJ += c.EnergyPerDirPJ

	d := s.dir[line]
	if d == nil {
		d = &dirState{sharers: make(map[int]bool), owner: -1}
		s.dir[line] = d
	}

	if write {
		// Invalidate every other copy; fetch data.
		lat += s.invalidateAll(core, line, d)
		lat += s.fetchData(core, home, line)
		d.sharers = map[int]bool{core: true}
		d.owner = core
		s.fillPrivate(core, line, Modified)
		return lat
	}

	// Read: if another core holds the line M or E, forward from the
	// owner (3-hop path: requester -> home -> owner -> requester) and
	// downgrade it to S. Dirty (M) forwards also write back to the home.
	if d.owner >= 0 && d.owner != core {
		ownSt := s.l1[d.owner].Peek(line)
		if ownSt == Invalid {
			ownSt = s.l2[d.owner].Peek(line)
		}
		if ownSt == Modified || ownSt == Exclusive {
			oh, ocross := s.hops(home, d.owner)
			lat += s.chargeHops(core, oh, ocross, false) // home -> owner request
			rh, rcross := s.hops(d.owner, core)
			lat += s.chargeHops(core, rh, rcross, true) // owner -> requester data
			s.Stats.OwnerForwards++
			s.setPrivState(d.owner, line, Shared)
			if ownSt == Modified {
				s.l3[home].Fill(line, Modified)
				s.Stats.WritebacksDir++
			}
			d.sharers[d.owner] = true // downgraded owner stays a sharer
			d.owner = -1
			d.sharers[core] = true
			s.fillPrivate(core, line, Shared)
			return lat
		}
		// Owner evicted silently: fall through to the home fetch.
		d.owner = -1
	}
	lat += s.fetchData(core, home, line)
	d.sharers[core] = true
	state := Shared
	if len(d.sharers) == 1 {
		state = Exclusive
		d.owner = core
	}
	s.fillPrivate(core, line, state)
	return lat
}

// accessPrivate: coherence deactivated — no directory at all, and the
// paper's "mapping primitives for on-chip data placement" apply: private
// data homes in the owner's own L3 slice, so misses never cross the
// interconnect.
func (s *System) accessPrivate(core int, line uint64, write bool) int64 {
	c := s.Cfg.Costs
	s.Stats.DeactivatedAcc++
	if st := s.l1[core].Lookup(line); st != Invalid {
		if write {
			s.setPrivState(core, line, Modified)
		}
		s.Stats.L1Hits++
		return c.L1Hit
	}
	if st := s.l2[core].Lookup(line); st != Invalid {
		ns := st
		if write {
			ns = Modified
		}
		s.fillPrivate(core, line, ns)
		s.Stats.L2Hits++
		return c.L2Hit
	}
	// Local placement: home = the owning core's slice.
	lat := s.fetchData(core, core, line)
	st := Exclusive
	if write {
		st = Modified
	}
	s.fillPrivate(core, line, st)
	return lat
}

// accessReadOnly: replicas everywhere, never tracked, never invalidated.
// Writes to a read-only region are a runtime bug; they fall back to the
// full protocol (and are visible in stats as default accesses).
func (s *System) accessReadOnly(core int, line uint64, write bool) int64 {
	if write {
		return s.accessMESI(core, line, write)
	}
	c := s.Cfg.Costs
	s.Stats.DeactivatedAcc++
	if s.l1[core].Lookup(line) != Invalid {
		s.Stats.L1Hits++
		return c.L1Hit
	}
	if s.l2[core].Lookup(line) != Invalid {
		s.fillPrivate(core, line, Shared)
		s.Stats.L2Hits++
		return c.L2Hit
	}
	// Immutable data may replicate in the local slice: untracked
	// replicas are safe by construction.
	lat := s.fetchData(core, core, line)
	s.fillPrivate(core, line, Shared)
	return lat
}

// accessSteered: producer→consumer direct transfer. Consumer reads pull
// the line straight from the producer's cache (2-hop), skipping the
// directory; producer writes stay local (it owns the data by contract).
func (s *System) accessSteered(core int, line uint64, write bool, producer int) int64 {
	c := s.Cfg.Costs
	s.Stats.DeactivatedAcc++
	if st := s.l1[core].Lookup(line); st != Invalid {
		if write {
			s.setPrivState(core, line, Modified)
		}
		s.Stats.L1Hits++
		return c.L1Hit
	}
	if st := s.l2[core].Lookup(line); st != Invalid {
		ns := st
		if write {
			ns = Modified
		}
		s.fillPrivate(core, line, ns)
		s.Stats.L2Hits++
		return c.L2Hit
	}
	if core != producer && producer >= 0 {
		// Direct steer from the producer's cache if it has the line.
		if s.l1[producer].Peek(line) != Invalid || s.l2[producer].Peek(line) != Invalid {
			h, cross := s.hops(core, producer)
			lat := s.chargeHops(core, h, cross, true)
			s.Stats.DirectSteers++
			s.fillPrivate(core, line, Shared)
			return lat + c.L1Hit
		}
	}
	home := s.home(line)
	lat := s.fetchData(core, home, line)
	st := Exclusive
	if write {
		st = Modified
	}
	s.fillPrivate(core, line, st)
	return lat
}

// fetchData reads the line at its home: L3 slice hit or memory.
func (s *System) fetchData(core, home int, line uint64) int64 {
	c := s.Cfg.Costs
	h, cross := s.hops(home, core)
	lat := s.chargeHops(core, h, cross, true) // data return path
	if s.l3[home].Lookup(line) != Invalid {
		s.Stats.L3Hits++
		return lat + c.L3Hit
	}
	s.Stats.MemFetches++
	s.Stats.EnergyPJ += c.EnergyPerMemPJ
	s.l3[home].Fill(line, Shared)
	return lat + c.MemAccess
}

// setPrivState updates a line's state in both private levels, keeping
// them consistent.
func (s *System) setPrivState(core int, line uint64, st LineState) {
	s.l1[core].SetState(line, st)
	s.l2[core].SetState(line, st)
}

// fillPrivate installs the line in L1 and L2 with a consistent state,
// handling evictions: a line leaves the core's private hierarchy only
// when it is gone from both levels (L2 evictions purge L1 — inclusive
// policy), at which point dirty data writes back and the directory
// forgets the core.
func (s *System) fillPrivate(core int, line uint64, st LineState) {
	if ev, evs := s.l1[core].Fill(line, st); evs != Invalid {
		if s.l2[core].Peek(ev) == Invalid {
			// Left the hierarchy entirely.
			if evs == Modified {
				s.writeback(core, ev)
			} else {
				s.dropDir(core, ev)
			}
		}
		// Otherwise L2 retains it (same state; levels are kept
		// consistent), so the directory still rightly tracks the core.
	}
	if ev, evs := s.l2[core].Fill(line, st); evs != Invalid {
		// Inclusive: L2 eviction forces the L1 copy out too.
		l1St := s.l1[core].Invalidate(ev)
		if l1St == Modified || evs == Modified {
			s.writeback(core, ev)
		} else {
			s.dropDir(core, ev)
		}
	}
}

// dropDir removes a core from a line's directory entry after a clean
// eviction.
func (s *System) dropDir(core int, line uint64) {
	if d := s.dir[line]; d != nil {
		delete(d.sharers, core)
		if d.owner == core {
			d.owner = -1
		}
	}
}

func (s *System) writeback(core int, line uint64) {
	home := s.home(line)
	h, cross := s.hops(core, home)
	s.chargeHops(core, h, cross, true)
	s.l3[home].Fill(line, Modified)
	s.Stats.WritebacksDir++
	if d := s.dir[line]; d != nil {
		delete(d.sharers, core)
		if d.owner == core {
			d.owner = -1
		}
	}
}

// dirInvalidateOthers handles an S->M upgrade: ask the home to
// invalidate all other sharers.
func (s *System) dirInvalidateOthers(core int, line uint64) int64 {
	home := s.home(line)
	h, cross := s.hops(core, home)
	lat := s.chargeHops(core, h, cross, false) + s.Cfg.Costs.DirLookup
	s.Stats.DirLookups++
	s.Stats.EnergyPJ += s.Cfg.Costs.EnergyPerDirPJ
	s.Stats.InterconnectPJ += s.Cfg.Costs.EnergyPerDirPJ
	d := s.dir[line]
	if d == nil {
		d = &dirState{sharers: map[int]bool{core: true}, owner: -1}
		s.dir[line] = d
	}
	lat += s.invalidateAll(core, line, d)
	d.sharers = map[int]bool{core: true}
	d.owner = core
	return lat
}

// invalidateAll sends invalidations to every sharer except keeper.
func (s *System) invalidateAll(keeper int, line uint64, d *dirState) int64 {
	home := s.home(line)
	var lat int64
	// Deterministic order.
	var targets []int
	for sh := range d.sharers {
		if sh != keeper {
			targets = append(targets, sh)
		}
	}
	if d.owner >= 0 && d.owner != keeper && !d.sharers[d.owner] {
		targets = append(targets, d.owner)
	}
	sort.Ints(targets)
	for _, sh := range targets {
		h, cross := s.hops(home, sh)
		lat += s.chargeHops(keeper, h, cross, false)
		s.l1[sh].Invalidate(line)
		s.l2[sh].Invalidate(line)
		s.Stats.Invalidations++
	}
	return lat
}

// setDirOwner updates the directory owner on silent local upgrades.
func (s *System) setDirOwner(line uint64, core int) {
	d := s.dir[line]
	if d == nil {
		d = &dirState{sharers: map[int]bool{core: true}, owner: core}
		s.dir[line] = d
		return
	}
	d.owner = core
}

package coherence

import "testing"

func TestStoreBufferPushAndPending(t *testing.T) {
	sb := NewStoreBuffer()
	sb.Push(1, true)
	sb.Push(2, false)
	if sb.Pending() != 2 {
		t.Fatalf("pending = %d", sb.Pending())
	}
}

func TestStoreBufferCapacityRetiresOldest(t *testing.T) {
	sb := NewStoreBuffer()
	sb.Capacity = 4
	for i := 0; i < 10; i++ {
		sb.Push(uint64(i), false)
	}
	if sb.Pending() != 4 {
		t.Fatalf("pending = %d, want capacity", sb.Pending())
	}
}

func TestFullFenceDrainsEverything(t *testing.T) {
	sb := NewStoreBuffer()
	sb.Push(1, true)
	sb.Push(2, false)
	sb.Push(3, false)
	stall := sb.FullFence()
	if stall != 3*sb.DrainPerEntry {
		t.Fatalf("stall = %d", stall)
	}
	if sb.Pending() != 0 {
		t.Fatal("buffer not empty after full fence")
	}
}

func TestSelectiveFenceDrainsOnlyTagged(t *testing.T) {
	sb := NewStoreBuffer()
	sb.Push(1, true)
	sb.Push(2, false)
	sb.Push(3, true)
	sb.Push(4, false)
	stall := sb.SelectiveFence()
	if stall != 2*sb.DrainPerEntry {
		t.Fatalf("stall = %d, want tagged-only drain", stall)
	}
	if sb.Pending() != 2 {
		t.Fatalf("pending = %d; unrelated stores must stay buffered", sb.Pending())
	}
}

func TestFenceComparisonShape(t *testing.T) {
	// The §V-B claim in miniature: with mostly-unrelated stores in
	// flight, selective fencing slashes synchronization stalls.
	full, sel := FenceComparison(1000, 4, 28)
	if sel >= full {
		t.Fatalf("selective (%d) must beat full (%d)", sel, full)
	}
	ratio := float64(full) / float64(sel)
	// 32 entries drained vs 4: expect ≈8x.
	if ratio < 6 || ratio > 10 {
		t.Fatalf("stall ratio = %.1f, want ≈8", ratio)
	}
	// With nothing unrelated, the two fences cost the same.
	f2, s2 := FenceComparison(100, 8, 0)
	if f2 != s2 {
		t.Fatalf("no-unrelated case differs: %d vs %d", f2, s2)
	}
}

package coherence

// This file models the memory-consistency half of §V-B's motivation:
// "Ordering constraints in consistency models serialize all accesses of
// a particular type, without selectivity. A fence orders writes that
// produce data before setting the done flag, but it also orders all
// other writes the thread issued, even if they are unrelated to the
// intended use of the fence. Individual writes within a producer's data
// production subroutine could semantically proceed in any order, yet
// x86-TSO unnecessarily enforces a total order."
//
// StoreBuffer models a TSO store buffer; fences either drain everything
// (x86-TSO) or only the stores tagged as belonging to the synchronized
// data set (the selective ordering that language-level semantics enable).

// StoreEntry is one buffered store.
type StoreEntry struct {
	Line uint64
	// Tagged marks the store as part of the synchronized data set (the
	// data the flag protects).
	Tagged bool
}

// StoreBuffer is a simple in-order TSO store buffer.
type StoreBuffer struct {
	// DrainPerEntry is the cycles to retire one buffered store at a
	// fence (write it through to the coherent level).
	DrainPerEntry int64
	// Capacity bounds buffered entries; when full, the oldest entry
	// retires in the background for free (it had time to drain).
	Capacity int

	entries []StoreEntry

	// Stats.
	StoresBuffered int64
	FullDrains     int64
	SelDrains      int64
	StallCycles    int64
}

// NewStoreBuffer creates a buffer with x64-like parameters (56-entry
// buffer, a few cycles to retire an entry at a fence).
func NewStoreBuffer() *StoreBuffer {
	return &StoreBuffer{DrainPerEntry: 4, Capacity: 56}
}

// Push buffers a store.
func (sb *StoreBuffer) Push(line uint64, tagged bool) {
	if len(sb.entries) >= sb.Capacity {
		sb.entries = sb.entries[1:]
	}
	sb.entries = append(sb.entries, StoreEntry{Line: line, Tagged: tagged})
	sb.StoresBuffered++
}

// Pending returns the number of buffered stores.
func (sb *StoreBuffer) Pending() int { return len(sb.entries) }

// FullFence is the x86-TSO fence: every buffered store drains, related
// or not. Returns the stall cycles.
func (sb *StoreBuffer) FullFence() int64 {
	stall := int64(len(sb.entries)) * sb.DrainPerEntry
	sb.entries = sb.entries[:0]
	sb.FullDrains++
	sb.StallCycles += stall
	return stall
}

// SelectiveFence drains only the tagged stores — the ordering the
// program actually needs ("steer their behavior proactively by
// instructing the hardware to apply specialized memory ordering rules").
// Untagged stores stay buffered and retire in the background. Returns
// the stall cycles.
func (sb *StoreBuffer) SelectiveFence() int64 {
	var kept []StoreEntry
	var drained int64
	for _, e := range sb.entries {
		if e.Tagged {
			drained++
		} else {
			kept = append(kept, e)
		}
	}
	sb.entries = kept
	stall := drained * sb.DrainPerEntry
	sb.SelDrains++
	sb.StallCycles += stall
	return stall
}

// FenceComparison runs the producer/flag protocol: each round buffers
// dataStores tagged stores and unrelatedStores untagged ones, then
// fences before publishing the flag. It returns total stall cycles under
// full and selective fencing.
func FenceComparison(rounds, dataStores, unrelatedStores int) (full, selective int64) {
	fb := NewStoreBuffer()
	sb := NewStoreBuffer()
	for r := 0; r < rounds; r++ {
		for i := 0; i < dataStores; i++ {
			fb.Push(uint64(r*100+i), true)
			sb.Push(uint64(r*100+i), true)
		}
		for i := 0; i < unrelatedStores; i++ {
			fb.Push(uint64(1_000_000+r*100+i), false)
			sb.Push(uint64(1_000_000+r*100+i), false)
		}
		full += fb.FullFence()
		selective += sb.SelectiveFence()
	}
	return full, selective
}

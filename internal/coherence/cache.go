// Package coherence implements a directory-based MESI cache-coherence
// simulator for a multi-socket mesh CMP, extended with the paper's
// *selective coherence deactivation* (§V-B): regions whose sharing
// semantics are known from the high-level language (private, read-only,
// producer→consumer) opt out of the reactive protocol, eliminating
// directory indirection, invalidation traffic, and interconnect energy.
//
// The paper evaluated this in Sniper with PBBS benchmarks compiled by a
// modified MPL Parallel ML; here the same protocol logic runs on
// deterministic access traces from internal/workloads.
package coherence

import "repro/internal/mem"

// LineState is the MESI state of a line in a private cache.
type LineState uint8

// MESI states.
const (
	Invalid LineState = iota
	Shared
	Exclusive
	Modified
)

// String names the state.
func (s LineState) String() string {
	switch s {
	case Modified:
		return "M"
	case Exclusive:
		return "E"
	case Shared:
		return "S"
	default:
		return "I"
	}
}

type cacheLine struct {
	tag   uint64
	state LineState
	lru   uint64
}

// Cache is one set-associative cache level with LRU replacement.
type Cache struct {
	sets      int
	ways      int
	lineShift uint
	lines     [][]cacheLine
	tick      uint64

	Hits, Misses uint64
}

// NewCache builds a cache of the given total size (bytes), associativity
// and line size.
func NewCache(sizeBytes, ways, lineSize int) *Cache {
	if sizeBytes <= 0 || ways <= 0 || lineSize <= 0 {
		panic("coherence: bad cache geometry")
	}
	lineShift := uint(0)
	for 1<<lineShift < lineSize {
		lineShift++
	}
	sets := sizeBytes / (ways * lineSize)
	if sets == 0 {
		sets = 1
	}
	c := &Cache{sets: sets, ways: ways, lineShift: lineShift}
	c.lines = make([][]cacheLine, sets)
	for i := range c.lines {
		c.lines[i] = make([]cacheLine, ways)
	}
	return c
}

// LineAddr returns the line-aligned address for a.
func (c *Cache) LineAddr(a mem.Addr) uint64 { return uint64(a) >> c.lineShift }

func (c *Cache) set(line uint64) []cacheLine {
	return c.lines[line%uint64(c.sets)]
}

// Lookup returns the line's state (Invalid if absent), touching LRU.
func (c *Cache) Lookup(line uint64) LineState {
	c.tick++
	for i := range c.set(line) {
		l := &c.set(line)[i]
		if l.state != Invalid && l.tag == line {
			l.lru = c.tick
			c.Hits++
			return l.state
		}
	}
	c.Misses++
	return Invalid
}

// Peek returns the state without touching LRU or counters.
func (c *Cache) Peek(line uint64) LineState {
	for i := range c.set(line) {
		l := &c.set(line)[i]
		if l.state != Invalid && l.tag == line {
			return l.state
		}
	}
	return Invalid
}

// SetState updates or removes a present line's state (no fill).
func (c *Cache) SetState(line uint64, s LineState) {
	for i := range c.set(line) {
		l := &c.set(line)[i]
		if l.state != Invalid && l.tag == line {
			l.state = s
			return
		}
	}
}

// Fill installs a line, evicting LRU if needed. It returns the evicted
// line number and its state (state Invalid if no eviction occurred).
func (c *Cache) Fill(line uint64, s LineState) (evicted uint64, evictedState LineState) {
	c.tick++
	set := c.set(line)
	// Already present: update.
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			set[i].state = s
			set[i].lru = c.tick
			return 0, Invalid
		}
	}
	victim := 0
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			break
		}
		if set[i].lru < set[victim].lru {
			victim = i
		}
	}
	ev, evs := set[victim].tag, set[victim].state
	set[victim] = cacheLine{tag: line, state: s, lru: c.tick}
	if evs == Invalid {
		return 0, Invalid
	}
	return ev, evs
}

// Invalidate removes a line, returning its prior state.
func (c *Cache) Invalidate(line uint64) LineState {
	for i := range c.set(line) {
		l := &c.set(line)[i]
		if l.state != Invalid && l.tag == line {
			s := l.state
			l.state = Invalid
			return s
		}
	}
	return Invalid
}

package coherence

import (
	"testing"

	"repro/internal/mem"
)

func smallConfig(deact bool) Config {
	cfg := DefaultConfig()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.Deactivation = deact
	return cfg
}

func TestCacheBasics(t *testing.T) {
	c := NewCache(1024, 2, 64) // 8 sets x 2 ways
	line := c.LineAddr(mem.Addr(0x1000))
	if c.Lookup(line) != Invalid {
		t.Fatal("cold lookup should miss")
	}
	c.Fill(line, Exclusive)
	if c.Lookup(line) != Exclusive {
		t.Fatal("fill not visible")
	}
	if c.Peek(line) != Exclusive {
		t.Fatal("peek wrong")
	}
	c.SetState(line, Modified)
	if c.Peek(line) != Modified {
		t.Fatal("SetState failed")
	}
	if got := c.Invalidate(line); got != Modified {
		t.Fatalf("invalidate returned %v", got)
	}
	if c.Peek(line) != Invalid {
		t.Fatal("line still present")
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache(128, 2, 64) // 1 set, 2 ways
	c.Fill(1, Shared)
	c.Fill(2, Shared)
	c.Lookup(1) // make 2 the LRU
	ev, evs := c.Fill(3, Shared)
	if evs == Invalid {
		t.Fatal("expected eviction")
	}
	if ev != 2 {
		t.Fatalf("evicted line %d, want 2 (LRU)", ev)
	}
	if c.Peek(1) == Invalid || c.Peek(3) == Invalid {
		t.Fatal("resident set wrong")
	}
}

func TestCacheBadGeometryPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewCache(0, 1, 64)
}

func TestStateString(t *testing.T) {
	if Modified.String() != "M" || Shared.String() != "S" ||
		Exclusive.String() != "E" || Invalid.String() != "I" {
		t.Fatal("state names wrong")
	}
}

func TestMESIExclusiveOnFirstRead(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, false)
	line := s.l1[0].LineAddr(0x1000)
	if st := s.l1[0].Peek(line); st != Exclusive {
		t.Fatalf("first reader state = %v, want E", st)
	}
}

func TestMESISharedOnSecondRead(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, false)
	s.Access(1, 0x1000, false)
	line := s.l1[0].LineAddr(0x1000)
	if st := s.l1[1].Peek(line); st != Shared {
		t.Fatalf("second reader state = %v, want S", st)
	}
}

func TestMESIWriteInvalidatesSharers(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, false)
	s.Access(1, 0x1000, false)
	s.Access(2, 0x1000, true) // write: must invalidate 0 and 1
	line := s.l1[0].LineAddr(0x1000)
	if s.l1[0].Peek(line) != Invalid || s.l1[1].Peek(line) != Invalid {
		t.Fatal("sharers not invalidated")
	}
	if s.l1[2].Peek(line) != Modified {
		t.Fatal("writer not M")
	}
	if s.Stats.Invalidations < 2 {
		t.Fatalf("invalidations = %d", s.Stats.Invalidations)
	}
}

func TestMESIUpgradeFromShared(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, false)
	s.Access(1, 0x1000, false)
	s.Access(0, 0x1000, true) // S->M upgrade in core 0's own cache
	line := s.l1[0].LineAddr(0x1000)
	if s.l1[0].Peek(line) != Modified {
		t.Fatal("upgrade failed")
	}
	if s.l1[1].Peek(line) != Invalid {
		t.Fatal("other sharer survived upgrade")
	}
	if s.Stats.UpgradeMisses != 1 {
		t.Fatalf("upgrade misses = %d", s.Stats.UpgradeMisses)
	}
}

func TestMESIOwnerForwardOnRead(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, true) // core 0 has M
	s.Access(1, 0x1000, false)
	line := s.l1[0].LineAddr(0x1000)
	if s.Stats.OwnerForwards != 1 {
		t.Fatalf("owner forwards = %d, want 1", s.Stats.OwnerForwards)
	}
	if s.l1[0].Peek(line) != Shared || s.l1[1].Peek(line) != Shared {
		t.Fatal("both copies should be S after forward")
	}
}

func TestMESIL1HitFast(t *testing.T) {
	s := New(smallConfig(false))
	cold := s.Access(0, 0x1000, false)
	warm := s.Access(0, 0x1000, false)
	if warm >= cold {
		t.Fatalf("warm %d >= cold %d", warm, cold)
	}
	if warm != s.Cfg.Costs.L1Hit {
		t.Fatalf("L1 hit latency = %d", warm)
	}
}

func TestPrivateDeactivationSkipsDirectory(t *testing.T) {
	s := New(smallConfig(true))
	s.Classify(0x1000, 4096, ClassPrivate, -1)
	s.Access(0, 0x1000, true)
	s.Access(0, 0x1040, true)
	if s.Stats.DirLookups != 0 {
		t.Fatalf("directory touched %d times for private data", s.Stats.DirLookups)
	}
	if s.Stats.DeactivatedAcc != 2 {
		t.Fatalf("deactivated accesses = %d", s.Stats.DeactivatedAcc)
	}
	if len(s.dir) != 0 {
		t.Fatal("directory state allocated for private lines")
	}
}

func TestPrivateWithoutDeactivationUsesDirectory(t *testing.T) {
	s := New(smallConfig(false))
	s.Classify(0x1000, 4096, ClassPrivate, -1) // classified but feature off
	s.Access(0, 0x1000, true)
	if s.Stats.DirLookups == 0 {
		t.Fatal("with deactivation off, even private data must use the directory")
	}
}

func TestReadOnlyReplication(t *testing.T) {
	s := New(smallConfig(true))
	s.Classify(0x2000, 4096, ClassReadOnly, -1)
	for core := 0; core < 4; core++ {
		s.Access(core, 0x2000, false)
	}
	// All four cores replicate with zero invalidations and zero
	// directory state.
	line := s.l1[0].LineAddr(0x2000)
	for core := 0; core < 4; core++ {
		if s.l1[core].Peek(line) == Invalid {
			t.Fatalf("core %d lost its replica", core)
		}
	}
	if s.Stats.Invalidations != 0 || s.Stats.DirLookups != 0 {
		t.Fatal("read-only replication caused coherence traffic")
	}
}

func TestProducerConsumerSteering(t *testing.T) {
	s := New(smallConfig(true))
	s.Classify(0x3000, 4096, ClassProducerConsumer, 0)
	s.Access(0, 0x3000, true)  // producer writes
	s.Access(2, 0x3000, false) // consumer reads: direct steer
	if s.Stats.DirectSteers != 1 {
		t.Fatalf("direct steers = %d, want 1", s.Stats.DirectSteers)
	}
	if s.Stats.OwnerForwards != 0 {
		t.Fatal("steered read went through the directory owner-forward path")
	}
}

func TestPingPongDeactivationSpeedsUp(t *testing.T) {
	// The Fig. 7 mechanism in miniature: a producer/consumer line
	// bouncing between cores is much cheaper with steering than with
	// reactive MESI's 3-hop forwards.
	run := func(deact bool) (int64, float64) {
		s := New(smallConfig(deact))
		s.Classify(0x3000, 64, ClassProducerConsumer, 0)
		for i := 0; i < 1000; i++ {
			s.Access(0, 0x3000, true)
			s.Access(3, 0x3000, false)
		}
		return s.Stats.SumCycles(), s.Stats.EnergyPJ
	}
	base, baseE := run(false)
	fast, fastE := run(true)
	if fast >= base {
		t.Fatalf("deactivated %d >= baseline %d cycles", fast, base)
	}
	if fastE >= baseE {
		t.Fatalf("deactivated energy %f >= baseline %f", fastE, baseE)
	}
}

func TestPrivateDataEnergySavings(t *testing.T) {
	run := func(deact bool) float64 {
		s := New(smallConfig(deact))
		s.Classify(0x10000, 1<<20, ClassPrivate, -1)
		for core := 0; core < 4; core++ {
			base := mem.Addr(0x10000 + core*65536)
			for i := 0; i < 2000; i++ {
				s.Access(core, base+mem.Addr(i*64%4096), i%3 == 0)
			}
		}
		return s.Stats.EnergyPJ
	}
	baseE := run(false)
	fastE := run(true)
	if fastE >= baseE {
		t.Fatalf("private-data energy %f >= baseline %f", fastE, baseE)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	cfg := smallConfig(false)
	cfg.L1Size = 128 // 2 lines: force evictions
	cfg.L1Ways = 2
	cfg.L2Size = 128
	cfg.L2Ways = 2
	s := New(cfg)
	s.Access(0, 0x0000, true)
	s.Access(0, 0x4000, true)
	s.Access(0, 0x8000, true) // evicts a dirty line from the 1-set caches
	if s.Stats.WritebacksDir == 0 {
		t.Fatal("dirty eviction produced no writeback")
	}
}

func TestCrossSocketCostsMore(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Deactivation = false
	s := New(cfg)
	// Warm the line into core 0 (socket 0) as M.
	s.Access(0, 0x5000, true)
	sameSock := s.Access(1, 0x5000, false)
	// Re-establish M on core 0.
	s.Access(0, 0x5000, true)
	crossSock := s.Access(13, 0x5000, false) // socket 1
	if crossSock <= sameSock {
		t.Fatalf("cross-socket read %d <= same-socket %d", crossSock, sameSock)
	}
}

func TestClassOfUnclassifiedIsDefault(t *testing.T) {
	s := New(smallConfig(true))
	s.Classify(0x1000, 64, ClassPrivate, -1)
	if cl, _ := s.classOf(0x900); cl != ClassDefault {
		t.Fatal("address before region misclassified")
	}
	if cl, _ := s.classOf(0x1040); cl != ClassDefault {
		t.Fatal("address after region misclassified")
	}
	if cl, _ := s.classOf(0x1020); cl != ClassPrivate {
		t.Fatal("address inside region misclassified")
	}
}

func TestSharingClassString(t *testing.T) {
	for cl, want := range map[SharingClass]string{
		ClassDefault: "default", ClassPrivate: "private",
		ClassReadOnly: "read-only", ClassProducerConsumer: "producer-consumer",
	} {
		if cl.String() != want {
			t.Fatalf("%d -> %s", cl, cl.String())
		}
	}
}

func TestStatsTotals(t *testing.T) {
	s := New(smallConfig(false))
	s.Access(0, 0x1000, false)
	s.Access(1, 0x2000, false)
	if s.Stats.TotalCycles() <= 0 || s.Stats.SumCycles() < s.Stats.TotalCycles() {
		t.Fatal("cycle accounting inconsistent")
	}
	if s.Cores() != 4 {
		t.Fatal("core count wrong")
	}
}

package coherence

import (
	"testing"
	"testing/quick"

	"repro/internal/mem"
	"repro/internal/sim"
)

// checkSWMR validates the single-writer/multiple-reader invariant for
// every line present in any private cache: at most one M or E copy
// system-wide, and an M/E copy excludes any other copy of the line.
func checkSWMR(t *testing.T, s *System, lines []uint64) {
	t.Helper()
	for _, line := range lines {
		owners := 0
		sharers := 0
		for c := 0; c < s.cores; c++ {
			st := s.l1[c].Peek(line)
			if st == Invalid {
				st = s.l2[c].Peek(line)
			}
			switch st {
			case Modified, Exclusive:
				owners++
			case Shared:
				sharers++
			}
		}
		if owners > 1 {
			t.Fatalf("line %#x has %d M/E owners", line, owners)
		}
		if owners == 1 && sharers > 0 {
			t.Fatalf("line %#x has an owner and %d sharers", line, sharers)
		}
	}
}

// TestMESISWMRInvariant drives the full protocol with random access
// streams and validates SWMR after every access.
func TestMESISWMRInvariant(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		cfg := DefaultConfig()
		cfg.Sockets = 2
		cfg.CoresPerSocket = 4
		s := New(cfg)
		// A small pool of lines maximizes contention.
		pool := []mem.Addr{0x1000, 0x1040, 0x2000, 0x8000, 0x8040}
		var lines []uint64
		for _, a := range pool {
			lines = append(lines, s.l1[0].LineAddr(a))
		}
		for i := 0; i < 400; i++ {
			core := rng.Intn(s.cores)
			addr := pool[rng.Intn(len(pool))]
			write := rng.Intn(3) == 0
			s.Access(core, addr, write)
			for _, line := range lines {
				owners, sharers := 0, 0
				for c := 0; c < s.cores; c++ {
					st := s.l1[c].Peek(line)
					if st == Invalid {
						st = s.l2[c].Peek(line)
					}
					switch st {
					case Modified, Exclusive:
						owners++
					case Shared:
						sharers++
					}
				}
				if owners > 1 || (owners == 1 && sharers > 0) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestMESISWMRWithEvictions repeats the invariant check with tiny caches
// so evictions and writebacks interleave with the protocol.
func TestMESISWMRWithEvictions(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.L1Size = 256 // 4 lines
	cfg.L1Ways = 2
	cfg.L2Size = 512
	cfg.L2Ways = 2
	s := New(cfg)
	rng := sim.NewRNG(77)
	var pool []mem.Addr
	for i := 0; i < 32; i++ {
		pool = append(pool, mem.Addr(i*64))
	}
	var lines []uint64
	for _, a := range pool {
		lines = append(lines, s.l1[0].LineAddr(a))
	}
	for i := 0; i < 3000; i++ {
		s.Access(rng.Intn(4), pool[rng.Intn(len(pool))], rng.Intn(2) == 0)
	}
	checkSWMR(t, s, lines)
	if s.Stats.WritebacksDir == 0 {
		t.Fatal("tiny caches should have produced writebacks")
	}
}

// TestDeactivatedPrivateSWMRNotRequired documents the semantics: private
// lines have no cross-core invariant because the language guarantees a
// single accessor; the protocol must still never corrupt default lines.
func TestDeactivatedMixedTraffic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Sockets = 1
	cfg.CoresPerSocket = 4
	cfg.Deactivation = true
	s := New(cfg)
	s.Classify(0x100000, 1<<16, ClassPrivate, -1)
	rng := sim.NewRNG(5)
	sharedPool := []mem.Addr{0x1000, 0x1040, 0x2000}
	for i := 0; i < 2000; i++ {
		core := rng.Intn(4)
		if rng.Intn(2) == 0 {
			// Private traffic: each core in its own sub-range.
			s.Access(core, 0x100000+mem.Addr(core*4096+rng.Intn(16)*64), true)
		} else {
			s.Access(core, sharedPool[rng.Intn(3)], rng.Intn(3) == 0)
		}
	}
	var lines []uint64
	for _, a := range sharedPool {
		lines = append(lines, s.l1[0].LineAddr(a))
	}
	checkSWMR(t, s, lines)
}

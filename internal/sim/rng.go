// Package sim provides the deterministic discrete-event simulation kernel
// that underpins every simulated substrate in this repository: a seeded
// random number generator, common sampling distributions, a monotonic
// cycle clock, and a priority event queue.
//
// All simulation in the repository is driven through this package so that
// every experiment is reproducible bit-for-bit from its seed. No wall-clock
// time ever enters a simulated result.
package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator based
// on splitmix64. It is not safe for concurrent use; give each simulated
// entity its own RNG (use Split) to keep results independent of goroutine
// scheduling.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Split derives a new, statistically independent generator from r. The
// derived generator's stream is a pure function of r's current state, so
// splitting is itself deterministic.
func (r *RNG) Split() *RNG {
	return &RNG{state: r.Uint64() ^ 0x9e3779b97f4a7c15}
}

// SplitLabel derives an independent generator identified by a stable
// string label, without advancing r: the derived stream is a pure
// function of r's current state and the label, so streams for distinct
// labels can be created in any order (or lazily) and still match a run
// that created them in another order. The chaos harness uses this to
// give every fault-injection site its own replayable stream from one
// plan seed.
func (r *RNG) SplitLabel(label string) *RNG {
	// FNV-1a over the label, folded into the state and scrambled once
	// so labels differing in one byte land in unrelated streams.
	h := uint64(14695981039346656037)
	for i := 0; i < len(label); i++ {
		h ^= uint64(label[i])
		h *= 1099511628211
	}
	d := &RNG{state: r.state ^ h ^ 0x9e3779b97f4a7c15}
	d.state = d.Uint64()
	return d
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.bounded(uint64(n)))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.bounded(uint64(n)))
}

// bounded returns a uniform value in [0, n) by bounded retry: the top
// 2^64 mod n values of the draw space would over-weight the low residue
// classes under plain v % n, so draws landing there are rejected and
// retried. Accepted draws keep the v % n mapping, so for small n (where
// the rejection band is vanishingly thin) the output stream is the
// unbiased common case of the old modulo reduction.
func (r *RNG) bounded(n uint64) uint64 {
	thresh := -n % n // 2^64 mod n
	max := ^uint64(0) - thresh
	v := r.Uint64()
	for v > max {
		v = r.Uint64()
	}
	return v % n
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// ExpFloat64 returns an exponentially distributed float64 with rate 1
// (mean 1).
func (r *RNG) ExpFloat64() float64 {
	u := r.Float64()
	if u < 1e-300 {
		u = 1e-300
	}
	return -math.Log(u)
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle permutes a slice of length n in place using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

package sim

import (
	"fmt"
	"strings"
	"testing"
)

// TestCancelReleasesEagerly is the retention regression for the Cancel
// bugfix: a cancelled event must leave the queue (and drop its Fn
// closure) immediately, not at its fire time — a long-horizon timer that
// is cancelled and re-armed every period would otherwise accumulate one
// closure per period until the horizon.
func TestCancelReleasesEagerly(t *testing.T) {
	e := NewEngine()
	const n = 1000
	evs := make([]*Event, n)
	for i := range evs {
		big := make([]byte, 1<<10)
		evs[i] = e.At(1_000_000_000, func() { _ = big })
	}
	if e.Pending() != n {
		t.Fatalf("pending = %d, want %d", e.Pending(), n)
	}
	for _, ev := range evs {
		ev.Cancel()
	}
	if e.Pending() != 0 {
		t.Fatalf("pending = %d after cancelling all events, want 0 (heap retained dead events)", e.Pending())
	}
	for _, ev := range evs {
		if ev.Fn != nil {
			t.Fatal("cancelled event still pins its Fn closure")
		}
	}
	// Double-cancel and cancel-after-fire stay no-ops.
	ev := e.At(1_000_000_001, func() {})
	ev.Cancel()
	ev.Cancel()
	e.Run()
	if got := e.Now(); got != 0 {
		t.Fatalf("clock moved to %d with every event cancelled", got)
	}
}

const fuzzLookahead = Time(600)

// fuzzHarness drives an identical pseudo-random event workload over nCPU
// simulated CPUs on any Sim, respecting the shard-safety contract: each
// CPU's handler touches only that CPU's state and reaches other CPUs
// only via CrossAfter with delay >= lookahead. It returns the canonical
// per-CPU trace of every handler execution.
type fuzzHarness struct {
	eng    Sim
	queues []Queue
	rngs   []*RNG
	steps  []int
	hold   []*Event // last locally scheduled event, cancellation target
	trace  []strings.Builder
	limit  int
}

func newFuzzHarness(eng Sim, nCPU int, seed uint64, limit int) *fuzzHarness {
	h := &fuzzHarness{eng: eng, limit: limit}
	h.queues = make([]Queue, nCPU)
	h.rngs = make([]*RNG, nCPU)
	h.steps = make([]int, nCPU)
	h.hold = make([]*Event, nCPU)
	h.trace = make([]strings.Builder, nCPU)
	root := NewRNG(seed)
	for i := 0; i < nCPU; i++ {
		h.queues[i] = eng.Queue(i * eng.Shards() / nCPU)
		h.rngs[i] = root.SplitLabel(fmt.Sprintf("cpu%d", i))
	}
	for i := 0; i < nCPU; i++ {
		i := i
		h.queues[i].At(Time(10+i), func() { h.tick(i, 0) })
	}
	return h
}

func (h *fuzzHarness) tick(cpu, gen int) {
	q := h.queues[cpu]
	r := h.rngs[cpu]
	fmt.Fprintf(&h.trace[cpu], "c%d g%d @%d\n", cpu, gen, q.Now())
	h.steps[cpu]++
	if h.steps[cpu] >= h.limit {
		return
	}
	switch r.Intn(6) {
	case 0, 1:
		// Plain local chain.
		h.hold[cpu] = q.After(Time(r.Intn(900)), func() { h.tick(cpu, gen+1) })
	case 2:
		// Two children at the same instant: exercises same-tick sibling
		// ordering by minor index.
		d := Time(r.Intn(500))
		q.After(d, func() { h.tick(cpu, gen+1) })
		h.hold[cpu] = q.After(d, func() { h.tick(cpu, gen+2) })
	case 3:
		// Cross-CPU send at the latency floor plus jitter; lands on
		// another shard when the engine is sharded.
		dst := r.Intn(len(h.queues))
		d := fuzzLookahead + Time(r.Intn(700))
		q.CrossAfter(h.queues[dst], d, func() { h.tick(dst, gen+1) })
		h.hold[cpu] = q.After(Time(r.Intn(300)), func() { h.tick(cpu, gen+1) })
	case 4:
		// Cancel the previously held event (may already have fired — a
		// no-op then) and reschedule a replacement.
		if ev := h.hold[cpu]; ev != nil {
			ev.Cancel()
			fmt.Fprintf(&h.trace[cpu], "c%d cancel\n", cpu)
		}
		h.hold[cpu] = q.After(Time(r.Intn(400)), func() { h.tick(cpu, gen+1) })
	case 5:
		// Cancel-after-migrate: send a cross-shard event, then cancel it
		// from the source shard before the window barrier delivers it.
		dst := r.Intn(len(h.queues))
		ev := q.CrossAfter(h.queues[dst], fuzzLookahead+Time(r.Intn(200)), func() {
			h.tick(dst, gen+1)
		})
		if r.Intn(2) == 0 {
			ev.Cancel()
			fmt.Fprintf(&h.trace[cpu], "c%d cancel-migrated\n", cpu)
		}
		h.hold[cpu] = q.After(Time(r.Intn(400)), func() { h.tick(cpu, gen+1) })
	}
}

func (h *fuzzHarness) result() string {
	var sb strings.Builder
	for i := range h.trace {
		sb.WriteString(h.trace[i].String())
	}
	fmt.Fprintf(&sb, "fired=%d\n", h.eng.Fired())
	return sb.String()
}

// TestShardedMatchesSequential is the engine-level equivalence oracle:
// the same workload on the sequential Engine and on ShardedEngine at
// several shard and worker counts must produce byte-identical traces.
func TestShardedMatchesSequential(t *testing.T) {
	const nCPU = 16
	const limit = 400
	for _, seed := range []uint64{1, 7, 42, 12345} {
		seq := newFuzzHarness(NewEngine(), nCPU, seed, limit)
		seq.eng.Run()
		want := seq.result()
		for _, shards := range []int{1, 2, 4, 16} {
			for _, workers := range []int{1, 4} {
				se := NewSharded(shards, fuzzLookahead)
				se.SetWorkers(workers)
				h := newFuzzHarness(se, nCPU, seed, limit)
				se.Run()
				if got := h.result(); got != want {
					t.Fatalf("seed %d shards=%d workers=%d: trace diverges from sequential\nsharded:\n%.400s\nsequential:\n%.400s",
						seed, shards, workers, got, want)
				}
			}
		}
	}
}

// TestShardedSameTickCrossShardTies pins the deterministic resolution of
// simultaneous cross-shard arrivals: two sources on different shards
// deliver to one destination at the same instant, and the firing order
// must match the sequential engine's canonical order on every run.
func TestShardedSameTickCrossShardTies(t *testing.T) {
	build := func(eng Sim) (*[]string, []Queue) {
		order := &[]string{}
		n := 3
		qs := make([]Queue, n)
		for i := range qs {
			qs[i] = eng.Queue(i * eng.Shards() / n)
		}
		// Sources on shards 0 and 1 arrange arrivals on shard 2 at the
		// identical timestamp 10 + 700.
		qs[0].At(10, func() {
			qs[0].CrossAfter(qs[2], 700, func() { *order = append(*order, "from0") })
		})
		qs[1].At(10, func() {
			qs[1].CrossAfter(qs[2], 700, func() { *order = append(*order, "from1") })
		})
		return order, qs
	}
	seqEng := NewEngine()
	seqOrder, _ := build(seqEng)
	seqEng.Run()
	if len(*seqOrder) != 2 {
		t.Fatalf("sequential fired %d events, want 2", len(*seqOrder))
	}
	for run := 0; run < 20; run++ {
		se := NewSharded(3, 600)
		order, _ := build(se)
		se.Run()
		if fmt.Sprint(*order) != fmt.Sprint(*seqOrder) {
			t.Fatalf("run %d: same-tick cross-shard tie order %v, sequential order %v",
				run, *order, *seqOrder)
		}
	}
}

// TestShardedCancelInsideHandler covers cancellation from within a
// firing handler at a shard boundary tick: a handler cancels a pending
// same-tick event (must not fire) and a just-fired one (no-op), on both
// engines identically.
func TestShardedCancelInsideHandler(t *testing.T) {
	for _, mk := range []func() Sim{
		func() Sim { return NewEngine() },
		func() Sim { se := NewSharded(2, 600); se.SetWorkers(1); return se },
	} {
		eng := mk()
		q := eng.Queue(0)
		var fired []string
		var second *Event
		var first *Event
		first = q.At(100, func() {
			fired = append(fired, "first")
			second.Cancel() // pending same-tick sibling: must not fire
			first.Cancel()  // self, already firing: no-op
		})
		second = q.At(100, func() { fired = append(fired, "second") })
		q.At(200, func() { fired = append(fired, "tail") })
		eng.Run()
		got := strings.Join(fired, ",")
		if got != "first,tail" {
			t.Fatalf("%T: fired %q, want %q", eng, got, "first,tail")
		}
	}
}

// TestShardedLookaheadEnforced verifies that a cross-shard send below
// the lookahead panics instead of silently breaking window safety.
func TestShardedLookaheadEnforced(t *testing.T) {
	se := NewSharded(2, 600)
	se.SetWorkers(1)
	q0, q1 := se.Queue(0), se.Queue(1)
	q0.At(10, func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-shard send below lookahead did not panic")
			}
		}()
		q0.CrossAfter(q1, 100, func() {})
	})
	se.Run()
}

// TestShardedRunUntil checks the deadline semantics match the
// sequential engine: events at the deadline fire, later ones stay, and
// every clock advances to the deadline.
func TestShardedRunUntil(t *testing.T) {
	se := NewSharded(2, 600)
	se.SetWorkers(1)
	var fired []Time
	for _, ts := range []Time{10, 20, 25, 30, 40} {
		ts := ts
		se.Queue(int(ts)%2).At(ts, func() { fired = append(fired, ts) })
	}
	se.RunUntil(25)
	if len(fired) != 3 {
		t.Fatalf("fired %v, want events at 10, 20, 25", fired)
	}
	if se.Now() != 25 || se.Queue(0).Now() != 25 || se.Queue(1).Now() != 25 {
		t.Fatalf("clocks = %d/%d/%d, want 25", se.Now(), se.Queue(0).Now(), se.Queue(1).Now())
	}
	se.RunUntil(100)
	if len(fired) != 5 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
	if se.Pending() != 0 {
		t.Fatalf("pending = %d, want 0", se.Pending())
	}
}

// TestShardedHalt: Halt stops at the next barrier and Pending reports
// the leftovers.
func TestShardedHalt(t *testing.T) {
	se := NewSharded(1, 600)
	count := 0
	var chain func()
	chain = func() {
		count++
		if count == 3 {
			se.Halt()
		}
		se.Queue(0).After(1000, chain) // beyond the lookahead: next window
	}
	se.Queue(0).At(0, chain)
	se.Run()
	if count != 3 {
		t.Fatalf("halt did not stop the loop: count=%d", count)
	}
	if se.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", se.Pending())
	}
}

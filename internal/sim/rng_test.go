package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical values", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	r := NewRNG(7)
	c1 := r.Split()
	c2 := r.Split()
	if c1.Uint64() == c2.Uint64() {
		t.Fatal("split children produced identical first values")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64MeanNearHalf(t *testing.T) {
	r := NewRNG(11)
	s := 0.0
	n := 200000
	for i := 0; i < n; i++ {
		s += r.Float64()
	}
	mean := s / float64(n)
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(5)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) covered only %d values", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(9)
	n := 200000
	s, s2 := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		s += v
		s2 += v * v
	}
	mean := s / float64(n)
	variance := s2/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v, want ~1", variance)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := NewRNG(13)
	n := 200000
	s := 0.0
	for i := 0; i < n; i++ {
		s += r.ExpFloat64()
	}
	mean := s / float64(n)
	if math.Abs(mean-1) > 0.03 {
		t.Fatalf("exp mean = %v, want ~1", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n uint8) bool {
		r := NewRNG(seed)
		m := int(n%64) + 1
		p := r.Perm(m)
		if len(p) != m {
			return false
		}
		seen := make([]bool, m)
		for _, v := range p {
			if v < 0 || v >= m || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := NewRNG(21)
	xs := []int{1, 2, 3, 4, 5, 6, 7, 8}
	sum := 0
	for _, x := range xs {
		sum += x
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	sum2 := 0
	for _, x := range xs {
		sum2 += x
	}
	if sum != sum2 {
		t.Fatalf("shuffle changed contents: %v", xs)
	}
}

func TestIntnDeterministicGolden(t *testing.T) {
	// The bounded-retry fix preserves the v % n mapping of accepted
	// draws, so for small n the stream matches the pre-fix generator.
	r := NewRNG(42)
	got := make([]int, 8)
	for i := range got {
		got[i] = r.Intn(100)
	}
	want := []int{13, 91, 58, 64, 50, 62, 25, 8}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Intn stream[%d] = %d, want %d (full: %v)", i, got[i], want[i], got)
		}
	}
}

func TestInt63nNoModuloBias(t *testing.T) {
	// n = 3<<61 makes the rejection region a quarter of the 64-bit draw
	// space: plain v % n would land in [0, 1<<61) with probability 3/8
	// instead of the uniform 1/3. The bounded retry must restore 1/3.
	const n = int64(3) << 61
	r := NewRNG(17)
	const samples = 200000
	low := 0
	for i := 0; i < samples; i++ {
		v := r.Int63n(n)
		if v < 0 || v >= n {
			t.Fatalf("Int63n out of range: %d", v)
		}
		if v < 1<<61 {
			low++
		}
	}
	frac := float64(low) / samples
	// Uniform: 1/3 ≈ 0.3333 (sd ≈ 0.0011). Biased modulo: 3/8 = 0.375.
	if math.Abs(frac-1.0/3) > 0.01 {
		t.Fatalf("P(v < n/3) = %.4f, want ~0.3333 (0.375 means modulo bias)", frac)
	}
}

func TestIntnLargeNMeanUnbiased(t *testing.T) {
	// Same bias check through Intn on a large half-open range: the
	// biased reduction drags the mean below n/2.
	const n = int(3) << 61
	r := NewRNG(23)
	const samples = 200000
	var sum float64
	for i := 0; i < samples; i++ {
		sum += float64(r.Intn(n)) / float64(n)
	}
	mean := sum / samples
	// Uniform mean 0.5; biased modulo gives ~0.4583.
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("normalized mean = %.4f, want ~0.5", mean)
	}
}

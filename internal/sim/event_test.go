package sim

import (
	"sort"
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.At(30, func() { order = append(order, 3) })
	e.At(10, func() { order = append(order, 1) })
	e.At(20, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order: %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("clock = %d, want 30", e.Now())
	}
}

func TestEngineTieBreakFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events fired out of scheduling order: %v", order)
		}
	}
}

func TestEngineAfter(t *testing.T) {
	e := NewEngine()
	var at Time
	e.At(100, func() {
		e.After(50, func() { at = e.Now() })
	})
	e.Run()
	if at != 150 {
		t.Fatalf("After fired at %d, want 150", at)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev := e.At(10, func() { fired = true })
	ev.Cancel()
	e.Run()
	if fired {
		t.Fatal("cancelled event fired")
	}
	if !ev.Cancelled() {
		t.Fatal("Cancelled() false after Cancel")
	}
}

func TestEnginePastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic scheduling in the past")
		}
	}()
	e.At(5, func() {})
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	for i := 1; i <= 10; i++ {
		e.At(Time(i), func() {
			count++
			if count == 3 {
				e.Halt()
			}
		})
	}
	e.Run()
	if count != 3 {
		t.Fatalf("halt did not stop loop: count=%d", count)
	}
	if e.Pending() != 7 {
		t.Fatalf("pending = %d, want 7", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var fired []Time
	for _, ts := range []Time{10, 20, 30, 40} {
		ts := ts
		e.At(ts, func() { fired = append(fired, ts) })
	}
	e.RunUntil(25)
	if len(fired) != 2 {
		t.Fatalf("fired %v, want exactly events at 10 and 20", fired)
	}
	if e.Now() != 25 {
		t.Fatalf("clock = %d, want 25", e.Now())
	}
	e.RunUntil(100)
	if len(fired) != 4 {
		t.Fatalf("fired %v after second RunUntil", fired)
	}
	if e.Now() != 100 {
		t.Fatalf("clock = %d, want 100", e.Now())
	}
}

func TestEngineRunUntilSkipsCancelled(t *testing.T) {
	e := NewEngine()
	ev := e.At(5, func() { t.Error("cancelled event ran") })
	ev.Cancel()
	ran := false
	e.At(6, func() { ran = true })
	e.RunUntil(10)
	if !ran {
		t.Fatal("live event did not run")
	}
}

func TestEngineMonotoneClockProperty(t *testing.T) {
	// Property: for any set of event times, events fire in sorted order
	// and the clock never moves backwards.
	check := func(raw []uint16) bool {
		e := NewEngine()
		var fired []Time
		for _, ts := range raw {
			ts := Time(ts)
			e.At(ts, func() { fired = append(fired, ts) })
		}
		e.Run()
		if len(fired) != len(raw) {
			return false
		}
		want := make([]Time, len(raw))
		for i, ts := range raw {
			want[i] = Time(ts)
		}
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for i := range fired {
			if fired[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEngineFiredCount(t *testing.T) {
	e := NewEngine()
	for i := 0; i < 5; i++ {
		e.At(Time(i), func() {})
	}
	e.Run()
	if e.Fired() != 5 {
		t.Fatalf("Fired = %d, want 5", e.Fired())
	}
}

func TestEngineCascade(t *testing.T) {
	// Events that schedule further events simulate a periodic timer.
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		if ticks < 100 {
			e.After(10, tick)
		}
	}
	e.At(0, tick)
	e.Run()
	if ticks != 100 {
		t.Fatalf("ticks = %d, want 100", ticks)
	}
	if e.Now() != 990 {
		t.Fatalf("clock = %d, want 990", e.Now())
	}
}

package sim

import (
	"math"
	"testing"
)

func sampleMean(d Dist, r *RNG, n int) float64 {
	s := 0.0
	for i := 0; i < n; i++ {
		s += d.Sample(r)
	}
	return s / float64(n)
}

func TestConstant(t *testing.T) {
	d := Constant{V: 42}
	r := NewRNG(1)
	for i := 0; i < 10; i++ {
		if d.Sample(r) != 42 {
			t.Fatal("constant varied")
		}
	}
	if d.Mean() != 42 {
		t.Fatal("constant mean wrong")
	}
}

func TestNormalMeanAndTruncation(t *testing.T) {
	d := Normal{Mu: 100, Sigma: 10, Min: 0}
	r := NewRNG(2)
	m := sampleMean(d, r, 100000)
	if math.Abs(m-100) > 0.5 {
		t.Fatalf("normal sample mean = %v, want ~100", m)
	}
	// Heavy truncation: all samples clamped at Min.
	d2 := Normal{Mu: -1000, Sigma: 1, Min: 5}
	for i := 0; i < 100; i++ {
		if v := d2.Sample(r); v != 5 {
			t.Fatalf("truncation failed: %v", v)
		}
	}
}

func TestExponentialMean(t *testing.T) {
	d := Exponential{Offset: 50, MeanExp: 25}
	r := NewRNG(3)
	m := sampleMean(d, r, 200000)
	if math.Abs(m-d.Mean()) > 1.0 {
		t.Fatalf("exp sample mean = %v, want ~%v", m, d.Mean())
	}
	if d.Mean() != 75 {
		t.Fatalf("analytic mean = %v, want 75", d.Mean())
	}
}

func TestParetoBoundsAndMean(t *testing.T) {
	d := Pareto{Alpha: 1.5, Lo: 10, Hi: 10000}
	r := NewRNG(4)
	for i := 0; i < 10000; i++ {
		v := d.Sample(r)
		if v < d.Lo || v > d.Hi {
			t.Fatalf("pareto sample out of bounds: %v", v)
		}
	}
	m := sampleMean(d, NewRNG(5), 400000)
	if rel := math.Abs(m-d.Mean()) / d.Mean(); rel > 0.05 {
		t.Fatalf("pareto sample mean %v vs analytic %v (rel err %v)", m, d.Mean(), rel)
	}
}

func TestParetoHeavyTail(t *testing.T) {
	// A heavy-tailed distribution should occasionally produce samples far
	// above the median — the OS-noise property the Linux model relies on.
	d := Pareto{Alpha: 1.2, Lo: 100, Hi: 1e6}
	r := NewRNG(6)
	big := 0
	for i := 0; i < 100000; i++ {
		if d.Sample(r) > 10000 {
			big++
		}
	}
	if big == 0 {
		t.Fatal("no tail samples observed")
	}
	if big > 20000 {
		t.Fatalf("too many tail samples (%d); not Pareto-like", big)
	}
}

func TestMixture(t *testing.T) {
	d := Mixture{
		Weights:    []float64{0.9, 0.1},
		Components: []Dist{Constant{V: 10}, Constant{V: 1000}},
	}
	want := 0.9*10 + 0.1*1000
	if math.Abs(d.Mean()-want) > 1e-9 {
		t.Fatalf("mixture mean = %v, want %v", d.Mean(), want)
	}
	r := NewRNG(7)
	m := sampleMean(d, r, 200000)
	if math.Abs(m-want) > 2 {
		t.Fatalf("mixture sample mean = %v, want ~%v", m, want)
	}
}

func TestMixtureZeroWeightMean(t *testing.T) {
	d := Mixture{Weights: []float64{0, 0}, Components: []Dist{Constant{V: 1}, Constant{V: 2}}}
	if d.Mean() != 0 {
		t.Fatal("zero-weight mixture mean should be 0")
	}
}

package sim

import "container/heap"

// Time is a point in simulated time, measured in CPU cycles of the
// simulated machine's reference clock. All subsystems share this unit; a
// machine's frequency converts cycles to nanoseconds where needed.
type Time int64

// Sub returns t - u as an int64 cycle count.
func (t Time) Sub(u Time) int64 { return int64(t) - int64(u) }

// Event is a scheduled callback in the simulation.
//
// Same-time events are totally ordered by a canonical key (slot, minor)
// that is a pure function of the simulation's causal structure rather
// than of scheduling call order across the whole engine: an event
// scheduled while event p (the parent) is firing gets slot 2*exec(p)+1
// and a per-parent minor index, while an event scheduled outside any
// handler (a root) gets slot 2*F (F = events fired so far) and a global
// root index. exec(p) is p's global execution rank. Because children of
// earlier-executed parents are always scheduled earlier, this order is
// identical to the classic global-sequence tie-break on a sequential
// engine — but unlike a global sequence it can be computed shard-locally
// and merged, which is what lets ShardedEngine replay the exact same
// total order.
type Event struct {
	// At is the simulated time the event fires.
	At Time
	// Fn is invoked when the event fires. It may schedule further events.
	Fn func()

	// slot/minor are the canonical tie-break key (see above). While
	// parent is non-nil the slot is provisional: it resolves to
	// 2*parent.exec+1 once the parent's global execution rank is known
	// (immediately on the sequential engine; at the window barrier on the
	// sharded engine).
	slot   int64
	minor  int64
	parent *Event
	// exec is the event's global execution rank. On a shard it first
	// carries the shard-local execution stamp and is rewritten to the
	// global rank at the merge barrier; the remap is monotone per shard,
	// so comparisons through it never change.
	exec int64

	index int        // heap index; -1 when not queued
	owner *eventHeap // queue currently holding the event, nil otherwise
	dead  bool
}

// Cancel removes the event from its queue immediately, releasing the
// queue's references to it (and its Fn closure) rather than waiting for
// its fire time — long-horizon timers would otherwise pin their closures
// for the whole horizon. Cancelling an already-fired or already-cancelled
// event is a no-op. Cancel must be called from the event's own shard.
func (e *Event) Cancel() {
	e.dead = true
	e.Fn = nil
	if e.owner != nil && e.index >= 0 {
		heap.Remove(e.owner, e.index)
		e.owner = nil
	}
}

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.dead }

// before reports whether e fires before f under the canonical order.
// Events with unresolved (provisional) keys always belong to the window
// currently executing, so their eventual slots exceed every resolved
// slot at the same timestamp; two unresolved events are on the same
// shard and compare by their parents' execution stamps.
func (e *Event) before(f *Event) bool {
	if e.At != f.At {
		return e.At < f.At
	}
	er, fr := e.parent == nil, f.parent == nil
	if er != fr {
		return er
	}
	if !er {
		if e.parent.exec != f.parent.exec {
			return e.parent.exec < f.parent.exec
		}
		return e.minor < f.minor
	}
	if e.slot != f.slot {
		return e.slot < f.slot
	}
	return e.minor < f.minor
}

// resolve finalizes a provisional key once the parent's execution rank
// is known.
func (e *Event) resolve() {
	if e.parent != nil {
		e.slot = 2*e.parent.exec + 1
		e.parent = nil
	}
}

type eventHeap []*Event

func (h eventHeap) Len() int           { return len(h) }
func (h eventHeap) Less(i, j int) bool { return h[i].before(h[j]) }
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Queue is the scheduling interface of one event shard. On the
// sequential Engine every CPU shares the single queue (the engine
// itself); on a ShardedEngine each shard is its own queue and
// cross-shard scheduling must go through CrossAfter with a delay of at
// least the engine's lookahead.
type Queue interface {
	// Now returns the queue's current simulated time.
	Now() Time
	// At schedules fn at absolute time t on this queue.
	At(t Time, fn func()) *Event
	// After schedules fn d cycles from now on this queue.
	After(d Time, fn func()) *Event
	// CrossAfter schedules fn d cycles from now on dst. When dst is a
	// different shard, d must be at least the engine's lookahead (the
	// modeled cross-CPU latency floor that makes conservative windows
	// safe); same-queue calls are equivalent to After.
	CrossAfter(dst Queue, d Time, fn func()) *Event
	// Shard returns the queue's shard index.
	Shard() int
}

// Sim is the discrete-event engine interface shared by the sequential
// Engine and the conservative-window ShardedEngine. Both drive the same
// canonical event order, so a workload that respects the shard-safety
// contract (events touch only their own shard's state; cross-shard
// effects only via CrossAfter) produces bit-identical results on either.
type Sim interface {
	Now() Time
	// At/After schedule on shard 0 — the natural home of kernel-level
	// activity for single-shard workloads (on the sequential engine they
	// are the only queue). Shard-aware code uses Queue(i) instead.
	At(t Time, fn func()) *Event
	After(d Time, fn func()) *Event
	Run()
	RunUntil(deadline Time)
	Halt()
	Fired() uint64
	Pending() int
	// Shards returns the number of event shards (1 for Engine).
	Shards() int
	// Queue returns shard i's scheduling interface.
	Queue(i int) Queue
	// Lookahead returns the conservative window width (0 for Engine).
	Lookahead() Time
}

// Engine is a single-queue discrete-event simulation loop: a clock plus
// a priority queue of events. It is single-threaded by design;
// determinism comes from the canonical (time, slot, minor) total order.
// Engine implements both Sim (as a 1-shard engine) and Queue (as its
// own only shard).
type Engine struct {
	now    Time
	queue  eventHeap
	fired  uint64
	rootn  int64
	cur    *Event // event currently firing, for child attribution
	childn int64  // children scheduled by cur so far
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of live events still queued.
func (e *Engine) Pending() int { return len(e.queue) }

// Shards returns 1: the sequential engine is its own single shard.
func (e *Engine) Shards() int { return 1 }

// Queue returns the engine itself; every CPU shares the one queue.
func (e *Engine) Queue(i int) Queue { return e }

// Shard returns 0.
func (e *Engine) Shard() int { return 0 }

// Lookahead returns 0: a single queue needs no conservative window.
func (e *Engine) Lookahead() Time { return 0 }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would make the simulation acausal.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: t, Fn: fn}
	if e.cur != nil {
		// Child: keyed to the firing event's execution rank, which is
		// already final on the sequential engine.
		ev.slot = 2*e.cur.exec + 1
		ev.minor = e.childn
		e.childn++
	} else {
		ev.slot = 2 * int64(e.fired)
		ev.minor = e.rootn
		e.rootn++
	}
	ev.owner = &e.queue
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// CrossAfter schedules fn on dst d cycles from now. On the sequential
// engine every queue is the engine itself, so this is After.
func (e *Engine) CrossAfter(dst Queue, d Time, fn func()) *Event {
	return e.After(d, fn)
}

// Halt stops the run loop after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock to its timestamp. It
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		ev.owner = nil
		if ev.dead {
			continue
		}
		e.now = ev.At
		ev.exec = int64(e.fired)
		e.fired++
		e.cur, e.childn = ev, 0
		ev.Fn()
		e.cur = nil
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to deadline (if it has not already passed it). Events after the deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

package sim

import "container/heap"

// Time is a point in simulated time, measured in CPU cycles of the
// simulated machine's reference clock. All subsystems share this unit; a
// machine's frequency converts cycles to nanoseconds where needed.
type Time int64

// Sub returns t - u as an int64 cycle count.
func (t Time) Sub(u Time) int64 { return int64(t) - int64(u) }

// Event is a scheduled callback in the simulation.
type Event struct {
	// At is the simulated time the event fires.
	At Time
	// Fn is invoked when the event fires. It may schedule further events.
	Fn func()
	// seq breaks ties so that events scheduled earlier at the same time
	// fire first, keeping the simulation deterministic.
	seq   uint64
	index int // heap index; -1 when not queued
	dead  bool
}

// Cancel marks an event so it will be skipped when it reaches the head of
// the queue. Cancelling an already-fired event is a no-op.
func (e *Event) Cancel() { e.dead = true }

// Cancelled reports whether Cancel has been called on the event.
func (e *Event) Cancelled() bool { return e.dead }

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	e := x.(*Event)
	e.index = len(*h)
	*h = append(*h, e)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*h = old[:n-1]
	return e
}

// Engine is a discrete-event simulation loop: a clock plus a priority
// queue of events. It is single-threaded by design; determinism comes from
// total ordering of (time, sequence) pairs.
type Engine struct {
	now    Time
	seq    uint64
	queue  eventHeap
	fired  uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events that have fired so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued (including cancelled
// events that have not yet been skipped).
func (e *Engine) Pending() int { return len(e.queue) }

// At schedules fn to run at absolute time t. Scheduling in the past (t <
// Now) panics: it would make the simulation acausal.
func (e *Engine) At(t Time, fn func()) *Event {
	if t < e.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: t, Fn: fn, seq: e.seq}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Halt stops the run loop after the current event completes.
func (e *Engine) Halt() { e.halted = true }

// Step fires the next event, advancing the clock to its timestamp. It
// returns false if the queue is empty.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.dead {
			continue
		}
		e.now = ev.At
		e.fired++
		ev.Fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty or Halt is called.
func (e *Engine) Run() {
	e.halted = false
	for !e.halted && e.Step() {
	}
}

// RunUntil fires events with timestamps <= deadline, then sets the clock
// to deadline (if it has not already passed it). Events after the deadline
// remain queued.
func (e *Engine) RunUntil(deadline Time) {
	e.halted = false
	for !e.halted && len(e.queue) > 0 {
		// Peek.
		next := e.queue[0]
		if next.dead {
			heap.Pop(&e.queue)
			continue
		}
		if next.At > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

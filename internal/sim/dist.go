package sim

import "math"

// Dist is a sampling distribution over non-negative cycle counts or
// latencies. Implementations must be deterministic given the RNG stream.
type Dist interface {
	// Sample draws one value using r.
	Sample(r *RNG) float64
	// Mean returns the distribution's analytic mean.
	Mean() float64
}

// Constant is a degenerate distribution that always returns V. It models
// deterministic-path-length costs (e.g. Nautilus interrupt handlers with
// deterministic path lengths, per §III of the paper).
type Constant struct{ V float64 }

// Sample returns c.V regardless of r.
func (c Constant) Sample(_ *RNG) float64 { return c.V }

// Mean returns c.V.
func (c Constant) Mean() float64 { return c.V }

// Normal is a normal distribution truncated at Min (samples below Min are
// clamped). It models moderately noisy costs such as cache-dependent
// handler paths.
type Normal struct {
	Mu, Sigma float64
	Min       float64
}

// Sample draws a truncated normal deviate.
func (n Normal) Sample(r *RNG) float64 {
	v := n.Mu + n.Sigma*r.NormFloat64()
	if v < n.Min {
		return n.Min
	}
	return v
}

// Mean returns the untruncated mean; for the small truncation levels used
// in the cost models the bias is negligible.
func (n Normal) Mean() float64 { return n.Mu }

// Exponential is a shifted exponential distribution: Offset plus an
// exponential with the given Mean (of the exponential part). It models
// queueing-style delays such as run-queue wakeups.
type Exponential struct {
	Offset  float64
	MeanExp float64
}

// Sample draws Offset + Exp(MeanExp).
func (e Exponential) Sample(r *RNG) float64 {
	return e.Offset + e.MeanExp*r.ExpFloat64()
}

// Mean returns Offset + MeanExp.
func (e Exponential) Mean() float64 { return e.Offset + e.MeanExp }

// Pareto is a bounded Pareto distribution with shape Alpha on [Lo, Hi].
// It models heavy-tailed OS noise: most samples near Lo, rare samples
// orders of magnitude larger (e.g. Linux scheduler interference, SMIs).
type Pareto struct {
	Alpha  float64
	Lo, Hi float64
}

// Sample draws a bounded Pareto deviate via inverse transform sampling.
func (p Pareto) Sample(r *RNG) float64 {
	u := r.Float64()
	la := math.Pow(p.Lo, p.Alpha)
	ha := math.Pow(p.Hi, p.Alpha)
	x := math.Pow(-(u*ha-u*la-ha)/(ha*la), -1/p.Alpha)
	if x < p.Lo {
		x = p.Lo
	}
	if x > p.Hi {
		x = p.Hi
	}
	return x
}

// Mean returns the analytic mean of the bounded Pareto distribution.
func (p Pareto) Mean() float64 {
	if p.Alpha == 1 {
		return p.Lo * p.Hi / (p.Hi - p.Lo) * math.Log(p.Hi/p.Lo)
	}
	la := math.Pow(p.Lo, p.Alpha)
	return la / (1 - math.Pow(p.Lo/p.Hi, p.Alpha)) * (p.Alpha / (p.Alpha - 1)) *
		(1/math.Pow(p.Lo, p.Alpha-1) - 1/math.Pow(p.Hi, p.Alpha-1))
}

// Mixture samples from Components[i] with probability Weights[i]. It models
// bimodal costs such as "usually fast path, occasionally slow path".
type Mixture struct {
	Weights    []float64
	Components []Dist
}

// Sample picks a component by weight and samples it.
func (m Mixture) Sample(r *RNG) float64 {
	total := 0.0
	for _, w := range m.Weights {
		total += w
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range m.Weights {
		acc += w
		if u < acc {
			return m.Components[i].Sample(r)
		}
	}
	return m.Components[len(m.Components)-1].Sample(r)
}

// Mean returns the weighted mean of the component means.
func (m Mixture) Mean() float64 {
	total, acc := 0.0, 0.0
	for i, w := range m.Weights {
		total += w
		acc += w * m.Components[i].Mean()
	}
	if total == 0 {
		return 0
	}
	return acc / total
}

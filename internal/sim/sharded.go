package sim

import (
	"container/heap"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// ShardedEngine is a conservative-window parallel discrete-event engine:
// the event population is partitioned into S shards, each with its own
// clock and priority queue, and shards advance concurrently inside a
// window bounded by the horizon
//
//	H = min over shards of next-event time + lookahead
//
// Every event with At < H is safe to execute without seeing any not-yet-
// sent cross-shard event, because cross-shard scheduling (CrossAfter)
// carries a delay of at least the lookahead — in the simulated machine,
// the IPI latency floor. This is the classic Chandy–Misra–Bryant
// conservative discipline specialized to a shared-memory barrier design:
// run a window in parallel, then merge.
//
// Determinism is bit-exact with the sequential Engine. Both engines
// execute events in the same canonical (At, slot, minor) order (see
// Event); the barrier performs a serial k-way merge of the per-shard
// execution lists to assign global execution ranks, resolves the keys of
// every event scheduled during the window, and only then delivers
// cross-shard events. The merge order — and therefore everything derived
// from it — is independent of the number of OS workers driving the
// shards, so results are identical at any worker count, including 1.
//
// The workload contract ("shard safety"): an event's Fn may touch only
// state owned by its shard, and may affect other shards only by
// CrossAfter with delay >= Lookahead(). Within that contract, a run on
// the ShardedEngine is byte-identical to the same run on Engine.
type ShardedEngine struct {
	shards    []*Shard
	lookahead Time
	now       Time
	execn     int64
	rootn     int64
	running   bool
	halted    atomic.Bool

	// Window barrier: the coordinator (the Run caller) publishes the
	// horizon and an epoch, workers run their shard stripes and arrive;
	// both sides spin briefly and then fall back to a condvar so nested
	// use under an oversubscribed scheduler cannot burn cores.
	nworkers int
	winH     Time
	epoch    atomic.Int64
	arrived  atomic.Int64
	quit     atomic.Bool
	relMu    sync.Mutex
	relCond  *sync.Cond
	arrMu    sync.Mutex
	arrCond  *sync.Cond
	wg       sync.WaitGroup
}

// Shard is one shard's clock and event queue. It implements Queue.
type Shard struct {
	eng *ShardedEngine
	id  int

	now    Time
	queue  eventHeap
	cur    *Event
	childn int64
	lxn    int64 // shard-local execution stamp counter

	executed []*Event  // events run this window, in execution order
	fresh    []*Event  // events scheduled this window (keys resolve at the barrier)
	outbox   []crossEv // cross-shard events to deliver at the barrier
}

type crossEv struct {
	dst *Shard
	ev  *Event
}

// NewSharded returns an engine with n shards and the given lookahead.
// The lookahead must be positive: it is the cross-shard latency floor
// that makes concurrent windows safe (for the simulated machine, the
// IPI latency).
func NewSharded(n int, lookahead Time) *ShardedEngine {
	if n <= 0 {
		panic("sim: non-positive shard count")
	}
	if lookahead <= 0 {
		panic("sim: sharded engine needs a positive lookahead")
	}
	se := &ShardedEngine{lookahead: lookahead}
	se.relCond = sync.NewCond(&se.relMu)
	se.arrCond = sync.NewCond(&se.arrMu)
	for i := 0; i < n; i++ {
		se.shards = append(se.shards, &Shard{eng: se, id: i})
	}
	se.nworkers = n
	if p := runtime.GOMAXPROCS(0); se.nworkers > p {
		se.nworkers = p
	}
	return se
}

// SetWorkers bounds how many OS workers drive the shards (clamped to
// [1, shards]). Results are identical at every setting; this is purely a
// resource knob for nesting engines inside an already-parallel harness.
func (se *ShardedEngine) SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	if n > len(se.shards) {
		n = len(se.shards)
	}
	se.nworkers = n
}

// Now returns the engine's completed horizon: the latest timestamp of
// any executed event (or a RunUntil deadline). During a window it
// reflects the previous barrier; per-shard clocks are on Queue.Now.
func (se *ShardedEngine) Now() Time { return se.now }

// Fired returns the number of events executed so far.
func (se *ShardedEngine) Fired() uint64 { return uint64(se.execn) }

// Pending returns the number of live events queued across all shards.
func (se *ShardedEngine) Pending() int {
	n := 0
	for _, s := range se.shards {
		n += len(s.queue)
		for _, c := range s.outbox {
			if !c.ev.dead {
				n++
			}
		}
	}
	return n
}

// Shards returns the shard count.
func (se *ShardedEngine) Shards() int { return len(se.shards) }

// Queue returns shard i.
func (se *ShardedEngine) Queue(i int) Queue { return se.shards[i] }

// Lookahead returns the conservative window width.
func (se *ShardedEngine) Lookahead() Time { return se.lookahead }

// Halt stops the run loop at the next window barrier. Note that unlike
// the sequential engine the remainder of the current window still
// executes; workloads needing deterministic termination should quench
// their event sources instead (see internal/heartbeat's domain mode).
func (se *ShardedEngine) Halt() { se.halted.Store(true) }

// At schedules fn at absolute time t on shard 0; pre-run setup
// convenience mirroring Engine.At. Use Queue(i) to place events on a
// specific shard.
func (se *ShardedEngine) At(t Time, fn func()) *Event { return se.shards[0].At(t, fn) }

// After schedules fn d cycles from now on shard 0.
func (se *ShardedEngine) After(d Time, fn func()) *Event { return se.shards[0].After(d, fn) }

// Shard returns the shard's index.
func (s *Shard) Shard() int { return s.id }

// Now returns the shard's clock: the timestamp of its latest event.
func (s *Shard) Now() Time { return s.now }

// At schedules fn at absolute time t on this shard.
func (s *Shard) At(t Time, fn func()) *Event {
	if t < s.now {
		panic("sim: scheduling event in the past")
	}
	ev := &Event{At: t, Fn: fn}
	s.stamp(ev)
	ev.owner = &s.queue
	heap.Push(&s.queue, ev)
	return ev
}

// After schedules fn d cycles from now on this shard.
func (s *Shard) After(d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	return s.At(s.now+d, fn)
}

// CrossAfter schedules fn d cycles from now on dst. Cross-shard sends
// are held in an outbox and delivered at the window barrier, after key
// resolution; d must be at least the engine's lookahead, which is what
// makes the window preceding the delivery safe to run concurrently.
func (s *Shard) CrossAfter(dst Queue, d Time, fn func()) *Event {
	if d < 0 {
		d = 0
	}
	dq, ok := dst.(*Shard)
	if !ok || dq == s {
		return s.After(d, fn)
	}
	if dq.eng != s.eng {
		panic("sim: CrossAfter across engines")
	}
	if d < s.eng.lookahead {
		panic(fmt.Sprintf("sim: cross-shard delay %d below lookahead %d", d, s.eng.lookahead))
	}
	ev := &Event{At: s.now + d, Fn: fn}
	s.stamp(ev)
	if !s.eng.running {
		// Setup time is single-threaded: deliver directly.
		ev.owner = &dq.queue
		heap.Push(&dq.queue, ev)
		return ev
	}
	s.outbox = append(s.outbox, crossEv{dst: dq, ev: ev})
	return ev
}

// stamp assigns the canonical key. Children of the firing event carry a
// provisional key resolved at the barrier; roots (setup-time scheduling,
// when no event is firing anywhere) take a final key immediately.
func (s *Shard) stamp(ev *Event) {
	if s.cur != nil {
		ev.parent = s.cur
		ev.minor = s.childn
		s.childn++
		s.fresh = append(s.fresh, ev)
		return
	}
	if s.eng.running {
		panic("sim: root event scheduled on a running sharded engine")
	}
	ev.slot = 2 * s.eng.execn
	ev.minor = s.eng.rootn
	s.eng.rootn++
}

// runWindow executes this shard's events with At < h, in canonical
// order, stamping each with a shard-local execution rank.
func (s *Shard) runWindow(h Time) {
	for len(s.queue) > 0 && s.queue[0].At < h {
		ev := heap.Pop(&s.queue).(*Event)
		ev.owner = nil
		if ev.dead {
			continue
		}
		s.now = ev.At
		ev.exec = s.lxn
		s.lxn++
		s.cur, s.childn = ev, 0
		ev.Fn()
		s.cur = nil
		s.executed = append(s.executed, ev)
	}
}

// Run fires events until every shard's queue is empty or Halt is called.
func (se *ShardedEngine) Run() {
	se.runLoop(Time(1<<62 - 1))
}

// RunUntil fires events with timestamps <= deadline, then advances every
// clock to deadline.
func (se *ShardedEngine) RunUntil(deadline Time) {
	se.runLoop(deadline)
	if se.now < deadline {
		se.now = deadline
	}
	for _, s := range se.shards {
		if s.now < deadline {
			s.now = deadline
		}
	}
}

func (se *ShardedEngine) runLoop(deadline Time) {
	se.halted.Store(false)
	se.running = true
	se.startWorkers()
	for !se.halted.Load() {
		t0, ok := se.nextTime()
		if !ok || t0 > deadline {
			break
		}
		h := t0 + se.lookahead
		if h > deadline+1 || h < t0 { // h < t0 guards overflow at the open deadline
			h = deadline + 1
		}
		se.window(h)
		se.barrier()
	}
	se.stopWorkers()
	se.running = false
}

// nextTime returns the earliest queued event time across shards.
func (se *ShardedEngine) nextTime() (Time, bool) {
	var t Time
	ok := false
	for _, s := range se.shards {
		if len(s.queue) == 0 {
			continue
		}
		if !ok || s.queue[0].At < t {
			t = s.queue[0].At
			ok = true
		}
	}
	return t, ok
}

// window runs every shard's sub-horizon events, striped across the
// workers, and waits for all of them.
func (se *ShardedEngine) window(h Time) {
	if se.nworkers == 1 {
		for _, s := range se.shards {
			s.runWindow(h)
		}
		return
	}
	se.arrived.Store(0)
	se.winH = h
	se.epoch.Add(1)
	se.relMu.Lock()
	se.relCond.Broadcast()
	se.relMu.Unlock()
	// The coordinator doubles as worker 0.
	for i := 0; i < len(se.shards); i += se.nworkers {
		se.shards[i].runWindow(h)
	}
	se.arrive()
	want := int64(se.nworkers)
	if !spinUntil(func() bool { return se.arrived.Load() == want }) {
		se.arrMu.Lock()
		for se.arrived.Load() != want {
			se.arrCond.Wait()
		}
		se.arrMu.Unlock()
	}
}

func (se *ShardedEngine) arrive() {
	if se.arrived.Add(1) == int64(se.nworkers) {
		se.arrMu.Lock()
		se.arrCond.Broadcast()
		se.arrMu.Unlock()
	}
}

func (se *ShardedEngine) startWorkers() {
	if se.nworkers == 1 {
		return
	}
	se.quit.Store(false)
	se.epoch.Store(0)
	for w := 1; w < se.nworkers; w++ {
		w := w
		se.wg.Add(1)
		go func() {
			defer se.wg.Done()
			last := int64(0)
			for {
				target := last + 1
				ready := func() bool { return se.epoch.Load() >= target || se.quit.Load() }
				if !spinUntil(ready) {
					se.relMu.Lock()
					for !ready() {
						se.relCond.Wait()
					}
					se.relMu.Unlock()
				}
				if se.quit.Load() {
					return
				}
				last = target
				h := se.winH
				for i := w; i < len(se.shards); i += se.nworkers {
					se.shards[i].runWindow(h)
				}
				se.arrive()
			}
		}()
	}
}

func (se *ShardedEngine) stopWorkers() {
	if se.nworkers == 1 {
		return
	}
	se.quit.Store(true)
	se.relMu.Lock()
	se.relCond.Broadcast()
	se.relMu.Unlock()
	se.wg.Wait()
}

// spinUntil polls cond briefly, yielding periodically, and reports
// whether it became true; callers fall back to blocking on false.
func spinUntil(cond func() bool) bool {
	for i := 0; i < 1024; i++ {
		if cond() {
			return true
		}
		if i&15 == 15 {
			runtime.Gosched()
		}
	}
	return cond()
}

// barrier is the serial phase between windows: merge the per-shard
// execution lists into the canonical global order (assigning execution
// ranks), resolve the keys of everything scheduled this window, deliver
// the outboxes, and advance the engine clock.
func (se *ShardedEngine) barrier() {
	// k-way merge by canonical order. A list head's key is always
	// resolvable: an unresolved head's parent executed earlier on the
	// same shard (children cannot precede their parents), so its global
	// rank is already assigned.
	cursors := make([]int, len(se.shards))
	for {
		var best *Shard
		var bestEv *Event
		for _, s := range se.shards {
			i := cursors[s.id]
			if i >= len(s.executed) {
				continue
			}
			ev := s.executed[i]
			ev.resolve()
			if bestEv == nil || ev.before(bestEv) {
				best, bestEv = s, ev
			}
		}
		if bestEv == nil {
			break
		}
		bestEv.exec = se.execn
		se.execn++
		cursors[best.id]++
	}
	for _, s := range se.shards {
		// Resolve everything scheduled this window; events already
		// merged above resolved to their final keys first, so this is a
		// no-op for them. Relative order within the heaps is unchanged
		// by resolution (the provisional order equals the final order),
		// so the heap invariant is preserved.
		for i, ev := range s.fresh {
			ev.resolve()
			s.fresh[i] = nil
		}
		s.fresh = s.fresh[:0]
		for i, ev := range s.executed {
			if s.now < ev.At {
				s.now = ev.At
			}
			if se.now < ev.At {
				se.now = ev.At
			}
			s.executed[i] = nil
		}
		s.executed = s.executed[:0]
	}
	for _, s := range se.shards {
		for i, c := range s.outbox {
			if !c.ev.dead {
				c.ev.owner = &c.dst.queue
				heap.Push(&c.dst.queue, c.ev)
			}
			s.outbox[i] = crossEv{}
		}
		s.outbox = s.outbox[:0]
	}
}

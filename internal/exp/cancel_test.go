package exp

import (
	"context"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// TestBlockReacquireUnderCancelledWait pins the Block/Acquire ordering
// contract under cancellation — the interleaving the PR 9 deadlock
// tests never drove: a coalesced waiter holds a slot, Blocks (returning
// the slot), a slotless leader takes it, and then the *waiter* is
// cancelled while the leader still holds the slot.
//
// The contract: the waiter's wait closure may return early (its
// context died), but Block must still reacquire a slot before
// returning — the caller's balancing Release fires unconditionally, so
// skipping the reacquire would either underflow the semaphore or steal
// the leader's token. Consequences pinned here:
//
//   - the cancelled waiter's Block returns only after the leader
//     releases (ordering: reacquire waits its turn, never jumps it);
//   - afterwards the pool still admits exactly Workers() concurrent
//     holders (no token leaked, none minted);
//   - Blocked drops back to zero once the waiter is out.
func TestBlockReacquireUnderCancelledWait(t *testing.T) {
	t.Parallel()
	p := New(1)

	// Waiter: takes the only slot (it is a cell), then parks in Block
	// on a wait that ends when its context is cancelled, not when the
	// leader finishes — the cancelled-waiter path.
	ctx, cancel := context.WithCancel(context.Background())
	leaderDone := make(chan struct{})
	leaderHasSlot := make(chan struct{})
	waiterOut := make(chan struct{})
	var leaderReleased atomic.Bool

	p.Acquire()
	go func() {
		p.Block(func() {
			select {
			case <-ctx.Done():
			case <-leaderDone:
			}
		})
		// Block returned: the reacquire must have waited for the
		// leader's release, never preempted it.
		if !leaderReleased.Load() {
			t.Error("Block returned while the leader still held the slot")
		}
		p.Release()
		close(waiterOut)
	}()

	// Leader: slotless caller admitted by the waiter's Block.
	go func() {
		p.Acquire()
		close(leaderHasSlot)
		// Hold the slot long enough that the cancelled waiter's
		// reacquire is genuinely concurrent with the hold.
		time.Sleep(50 * time.Millisecond)
		leaderReleased.Store(true)
		p.Release()
		close(leaderDone)
	}()

	<-leaderHasSlot
	if got := p.Stats(); got.Blocked != 1 || got.Active != 1 {
		t.Fatalf("mid-flight stats = %+v, want Blocked 1, Active 1", got)
	}
	cancel() // cancel the waiter while the leader holds the slot

	select {
	case <-waiterOut:
	case <-time.After(5 * time.Second):
		t.Fatal("cancelled waiter never got back out of Block")
	}

	// The pool must be exactly balanced: one Acquire proceeds, a second
	// would block.
	p.Acquire()
	select {
	case p.sem <- struct{}{}:
		t.Fatal("pool admitted a second holder at width 1: token minted by cancellation path")
	default:
	}
	p.Release()
	if got := p.Stats(); got.Blocked != 0 || got.Active != 0 {
		t.Fatalf("final stats = %+v, want Blocked 0, Active 0", got)
	}
}

// TestBlockCancelledWaiterRacesQueuedAcquirer adds a third caller: the
// waiter is cancelled while the leader holds the slot AND another
// acquirer is already queued. Both the waiter's reacquire and the
// queued acquirer must eventually proceed, and the pool must never
// admit two holders at once.
func TestBlockCancelledWaiterRacesQueuedAcquirer(t *testing.T) {
	t.Parallel()
	p := New(1)
	var active, maxActive atomic.Int64
	hold := func(d time.Duration) {
		if a := active.Add(1); a > maxActive.Load() {
			maxActive.Store(a)
		}
		if active.Load() > 1 {
			t.Error("two holders admitted at width 1")
		}
		time.Sleep(d)
		active.Add(-1)
	}

	ctx, cancel := context.WithCancel(context.Background())
	leaderIn := make(chan struct{})
	done := make(chan struct{}, 3)

	p.Acquire() // waiter's cell slot
	go func() { // waiter
		p.Block(func() { <-ctx.Done() })
		hold(5 * time.Millisecond)
		p.Release()
		done <- struct{}{}
	}()
	go func() { // leader
		p.Acquire()
		close(leaderIn)
		hold(30 * time.Millisecond)
		p.Release()
		done <- struct{}{}
	}()
	<-leaderIn
	go func() { // third caller, queued behind the leader
		p.Acquire()
		hold(5 * time.Millisecond)
		p.Release()
		done <- struct{}{}
	}()
	time.Sleep(10 * time.Millisecond) // let the third caller queue up
	cancel()

	for i := 0; i < 3; i++ {
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatalf("caller %d never finished: cancellation broke the slot handoff", i)
		}
	}
	if got := p.Stats(); got.Active != 0 || got.Blocked != 0 {
		t.Fatalf("final stats = %+v, want all zero", got)
	}
}

// TestStatsCells: the lifetime cell counter counts cells across both
// the inline (width 1) and goroutine Run paths.
func TestStatsCells(t *testing.T) {
	t.Parallel()
	for _, w := range []int{1, 4} {
		p := New(w)
		if err := p.Run(9, func(int) error { return nil }); err != nil {
			t.Fatalf("width %d: %v", w, err)
		}
		if got := p.Stats(); got.Cells != 9 || got.Workers != w {
			t.Fatalf("width %d: stats = %+v, want Cells 9", w, got)
		}
	}
	// Counter survives goroutine churn.
	deadline := time.Now().Add(time.Second)
	for runtime.NumGoroutine() > 50 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
}

package exp

import (
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"repro/internal/chaos"
)

// TestShutdownUnderChaosInjection pins the pool's shutdown contract
// under seeded fault injection: cells panic and error according to a
// deterministic chaos plan (including the last cell, the one whose
// completion races shutdown), and for every seed the pool must
//
//   - collect exactly the expected *CellError set, in index order,
//   - never double-close the result channel or deadlock the collector,
//   - leak no worker goroutines once Run returns.
func TestShutdownUnderChaosInjection(t *testing.T) {
	errBoom := errors.New("injected cell failure")
	baseline := runtime.NumGoroutine()

	for seed := uint64(1); seed <= 60; seed++ {
		n := 1 + int(seed%33)
		// Pre-consult the injector sequentially so the fail set is a
		// pure function of the seed (a shared site consulted from
		// concurrent workers would be schedule-dependent).
		plan := chaos.NewPlan(seed, chaos.Config{AllocFailProb: 0.35})
		inj := plan.AllocInjector("exp/cell", errBoom)
		failing := make([]error, n)
		for i := range failing {
			failing[i] = inj(uint64(i))
		}
		// The last cell always fails: its result is the one in flight
		// when the index channel drains and shutdown begins.
		if failing[n-1] == nil {
			failing[n-1] = &chaos.FaultError{
				Fault: chaos.Fault{Site: "exp/cell", Seq: -1, Kind: chaos.AllocFail},
				Err:   errBoom,
			}
		}

		err := New(4).Run(n, func(i int) error {
			if fe := failing[i]; fe != nil {
				if i%2 == 0 {
					panic(fe) // worker-side panic path
				}
				return fe // plain error path
			}
			return nil
		})

		want := 0
		for _, fe := range failing {
			if fe != nil {
				want++
			}
		}
		if want == 0 {
			if err != nil {
				t.Fatalf("seed %d: unexpected error: %v", seed, err)
			}
			continue
		}
		if err == nil {
			t.Fatalf("seed %d: %d cells failed but Run returned nil", seed, want)
		}
		joined, ok := err.(interface{ Unwrap() []error })
		if !ok {
			t.Fatalf("seed %d: Run error is not a join: %T %v", seed, err, err)
		}
		parts := joined.Unwrap()
		if len(parts) != want {
			t.Fatalf("seed %d: got %d cell errors, want %d: %v", seed, len(parts), want, err)
		}
		last := -1
		for _, p := range parts {
			var ce *CellError
			if !errors.As(p, &ce) {
				t.Fatalf("seed %d: non-CellError in join: %v", seed, p)
			}
			if ce.Index <= last {
				t.Fatalf("seed %d: cell errors out of index order: %d after %d", seed, ce.Index, last)
			}
			last = ce.Index
			if failing[ce.Index] == nil {
				t.Fatalf("seed %d: healthy cell %d reported failure: %v", seed, ce.Index, ce)
			}
			// The injected fault must survive the pool's wrapping —
			// both the error return and the recovered-panic path —
			// so callers can still classify failures as injected.
			if fe, found := chaos.AsFault(ce); !found || !errors.Is(fe, errBoom) {
				t.Fatalf("seed %d: fault type lost through cell %d: %v", seed, ce.Index, ce)
			}
			if ce.Index%2 == 0 && ce.Stack == nil {
				t.Fatalf("seed %d: panicking cell %d lost its stack", seed, ce.Index)
			}
		}
	}

	// Every Run above has returned; worker goroutines must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > baseline+2 {
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			t.Fatalf("leaked pool goroutines: %d running, baseline %d\n%s",
				runtime.NumGoroutine(), baseline, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestRunPanicValuePreserved: a cell panicking with a non-error value
// still surfaces as a CellError with a diagnosable message.
func TestRunPanicValuePreserved(t *testing.T) {
	t.Parallel()
	err := New(2).Run(3, func(i int) error {
		if i == 1 {
			panic(fmt.Sprintf("bad state %d", i))
		}
		return nil
	})
	var ce *CellError
	if !errors.As(err, &ce) || ce.Index != 1 || ce.Stack == nil {
		t.Fatalf("panic not captured as CellError: %v", err)
	}
}

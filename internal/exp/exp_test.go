package exp

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sim"
)

func TestRunExecutesEveryCell(t *testing.T) {
	t.Parallel()
	for _, workers := range []int{1, 2, 8, 64} {
		var done [100]int32
		err := New(workers).Run(len(done), func(i int) error {
			atomic.AddInt32(&done[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range done {
			if c != 1 {
				t.Fatalf("workers=%d: cell %d ran %d times", workers, i, c)
			}
		}
	}
}

func TestRunEmpty(t *testing.T) {
	t.Parallel()
	if err := New(4).Run(0, func(int) error { t.Fatal("cell ran"); return nil }); err != nil {
		t.Fatal(err)
	}
}

func TestBoundedConcurrency(t *testing.T) {
	t.Parallel()
	const workers = 3
	var inFlight, peak int32
	var mu sync.Mutex
	err := New(workers).Run(50, func(i int) error {
		n := atomic.AddInt32(&inFlight, 1)
		mu.Lock()
		if n > peak {
			peak = n
		}
		mu.Unlock()
		defer atomic.AddInt32(&inFlight, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Fatalf("peak concurrency %d exceeds bound %d", peak, workers)
	}
}

func TestPanicIsolation(t *testing.T) {
	t.Parallel()
	var ran int32
	err := New(4).Run(10, func(i int) error {
		if i == 3 {
			panic("cell blew up")
		}
		atomic.AddInt32(&ran, 1)
		return nil
	})
	if err == nil {
		t.Fatal("panic not surfaced as error")
	}
	var ce *CellError
	if !errors.As(err, &ce) {
		t.Fatalf("error %T is not a *CellError", err)
	}
	if ce.Index != 3 || ce.Stack == nil {
		t.Fatalf("wrong cell error: index=%d stack=%v", ce.Index, ce.Stack != nil)
	}
	if !strings.Contains(err.Error(), "cell blew up") {
		t.Fatalf("panic value lost: %v", err)
	}
	if ran != 9 {
		t.Fatalf("only %d healthy cells ran, want 9", ran)
	}
}

func TestErrorsJoinedInIndexOrder(t *testing.T) {
	t.Parallel()
	err := New(8).Run(20, func(i int) error {
		if i%7 == 0 {
			return fmt.Errorf("bad-%d", i)
		}
		return nil
	})
	if err == nil {
		t.Fatal("errors lost")
	}
	s := err.Error()
	prev := -1
	for _, want := range []string{"bad-0", "bad-7", "bad-14"} {
		at := strings.Index(s, want)
		if at < 0 {
			t.Fatalf("missing %q in %q", want, s)
		}
		if at < prev {
			t.Fatalf("errors out of index order: %q", s)
		}
		prev = at
	}
}

func TestMapReturnsIndexOrder(t *testing.T) {
	t.Parallel()
	got, err := Map(New(8), 64, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("got[%d] = %d", i, v)
		}
	}
}

// TestMapRNGDeterministic is the core determinism property: the same
// root seed must yield bit-identical results at any worker count,
// because every cell's RNG is pre-split in index order.
func TestMapRNGDeterministic(t *testing.T) {
	t.Parallel()
	sample := func(workers int) []uint64 {
		out, err := MapRNG(New(workers), sim.NewRNG(42), 200, func(i int, rng *sim.RNG) (uint64, error) {
			// Draw a variable number of values so any cross-cell
			// stream sharing would desynchronize immediately.
			var v uint64
			for j := 0; j <= i%5; j++ {
				v = rng.Uint64()
			}
			return v, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := sample(1)
	for _, workers := range []int{2, 4, 16} {
		par := sample(workers)
		for i := range seq {
			if par[i] != seq[i] {
				t.Fatalf("workers=%d: cell %d diverged: %d vs %d", workers, i, par[i], seq[i])
			}
		}
	}
}

func TestMapRNGAdvancesRootDeterministically(t *testing.T) {
	t.Parallel()
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	if _, err := MapRNG(New(4), a, 17, func(int, *sim.RNG) (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 17; i++ {
		b.Split()
	}
	if a.Uint64() != b.Uint64() {
		t.Fatal("root RNG not advanced by exactly n splits")
	}
}

func TestDefaultWorkersEnv(t *testing.T) {
	t.Setenv(EnvParallel, "3")
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers = %d with %s=3", got, EnvParallel)
	}
	t.Setenv(EnvParallel, "garbage")
	if got := DefaultWorkers(); got < 1 {
		t.Fatalf("DefaultWorkers = %d with garbage env", got)
	}
	if got := New(0).Workers(); got < 1 {
		t.Fatalf("New(0).Workers() = %d", got)
	}
	if got := New(5).Workers(); got != 5 {
		t.Fatalf("New(5).Workers() = %d", got)
	}
}

// TestBlockReleasesSlot pins the slot-accounting contract behind cache
// coalescing: a cell parked in Block must free its worker slot so other
// cells can run, and must get a slot back before resuming. At width 1
// this is exactly the no-deadlock property — without the release, the
// second Run below could never be admitted and the first could never be
// woken.
func TestBlockReleasesSlot(t *testing.T) {
	p := New(1)
	woken := make(chan struct{})
	first := make(chan error, 1)
	go func() {
		first <- p.Run(1, func(int) error {
			p.Block(func() { <-woken })
			return nil
		})
	}()
	// This Run needs the pool's only slot; it is available only while
	// the first cell is parked in Block.
	if err := p.Run(1, func(int) error { close(woken); return nil }); err != nil {
		t.Fatalf("second Run: %v", err)
	}
	select {
	case err := <-first:
		if err != nil {
			t.Fatalf("first Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("deadlock: blocked cell never resumed")
	}
}

// TestAcquireReleaseBounds checks the exposed slot protocol counts
// against the same semaphore Run uses: with the single slot held
// externally, a Run cannot start a cell until Release.
func TestAcquireReleaseBounds(t *testing.T) {
	p := New(1)
	p.Acquire()
	started := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- p.Run(1, func(int) error { close(started); return nil })
	}()
	select {
	case <-started:
		t.Fatal("cell ran while the only slot was held externally")
	case <-time.After(50 * time.Millisecond):
	}
	p.Release()
	if err := <-done; err != nil {
		t.Fatalf("Run after Release: %v", err)
	}
	select {
	case <-started:
	default:
		t.Fatal("cell never ran")
	}
}

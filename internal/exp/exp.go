// Package exp is the deterministic parallel experiment-execution engine:
// a bounded, panic-safe worker pool that runs independent experiment
// cells (sweep points, seeds, substrates, benchmarks) concurrently while
// guaranteeing results identical to a sequential run.
//
// Determinism rests on two rules the helpers here enforce:
//
//   - every cell's randomness is pre-split from a root sim.RNG in index
//     order *before* any cell starts (MapRNG), so the stream a cell sees
//     is a pure function of its index, never of goroutine scheduling;
//   - results land in an index-addressed slice and are consumed in
//     canonical (submission) order, so output ordering is scheduling-
//     independent too.
//
// A panicking cell fails only its own cell: the panic is captured as a
// *CellError (with stack) and surfaced from Run/Map, never re-raised on
// the pool's goroutines.
package exp

import (
	"errors"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

// EnvParallel is the environment variable consulted by DefaultWorkers;
// it mirrors the interweave CLI's -parallel flag.
const EnvParallel = "INTERWEAVE_PARALLEL"

// DefaultWorkers returns the pool width used when none is specified:
// $INTERWEAVE_PARALLEL if set to a positive integer, else GOMAXPROCS.
func DefaultWorkers() int {
	if v := os.Getenv(EnvParallel); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return runtime.GOMAXPROCS(0)
}

// EngineWorkers bounds the OS workers a nested parallel engine (e.g.
// sim.ShardedEngine) should use when its experiment cell runs inside a
// pool of the given width: the machine's cores are shared evenly across
// the concurrently-running cells, never below one worker and never more
// than the engine has shards. poolWorkers <= 0 means DefaultWorkers(),
// mirroring New. Worker counts never affect results — only wall-clock —
// so this is purely an oversubscription guard.
func EngineWorkers(poolWorkers, shards int) int {
	p := poolWorkers
	if p <= 0 {
		p = DefaultWorkers()
	}
	n := runtime.GOMAXPROCS(0) / p
	if n < 1 {
		n = 1
	}
	if n > shards {
		n = shards
	}
	return n
}

// Pool is a bounded worker pool for independent experiment cells,
// built on a token semaphore: a cell runs only while it holds one of
// Workers() slots. The slots are exposed (Acquire/Release/Block) so
// cooperating layers — the result cache's request coalescing in
// particular — can participate in admission control: a caller waiting
// on another cell's in-flight result returns its slot to the pool while
// it sleeps instead of occupying capacity it cannot use.
//
// The zero Pool is not valid; use New.
type Pool struct {
	workers int
	sem     chan struct{}
	blocked atomic.Int64  // callers currently parked in Block
	cells   atomic.Uint64 // cells started over the pool's lifetime
}

// PoolStats is a point-in-time snapshot of pool activity — the
// admission-control counters a long-running service reports. Taken
// field by field, so concurrent traffic makes it approximate.
type PoolStats struct {
	Workers int    // concurrency bound
	Active  int    // worker slots currently held
	Blocked int    // callers parked in Block (slot returned to the pool)
	Cells   uint64 // cells started since the pool was created
}

// Stats snapshots the pool's counters.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers: p.workers,
		Active:  len(p.sem),
		Blocked: int(p.blocked.Load()),
		Cells:   p.cells.Load(),
	}
}

// New returns a pool running at most workers cells concurrently.
// workers <= 0 selects DefaultWorkers(); workers == 1 is fully
// sequential (cells run inline on the caller's goroutine).
func New(workers int) *Pool {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	return &Pool{workers: workers, sem: make(chan struct{}, workers)}
}

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

// Acquire blocks until a worker slot is free and takes it. Every
// Acquire must be balanced by exactly one Release.
func (p *Pool) Acquire() { p.sem <- struct{}{} }

// Release returns a worker slot taken by Acquire.
func (p *Pool) Release() { <-p.sem }

// Block runs wait with the caller's worker slot released, reacquiring
// it before returning. The caller must hold a slot (be inside a pool
// cell or a balanced Acquire). This is the backpressure escape hatch
// for coalesced cache waiters: at pool width 1, a waiter parked inside
// Block frees the only slot, so the leader computing its result can
// always be admitted — N duplicate submissions can never deadlock.
func (p *Pool) Block(wait func()) {
	p.blocked.Add(1)
	defer p.blocked.Add(-1)
	p.Release()
	defer p.Acquire()
	wait()
}

// CellError reports the failure of one cell: a returned error, or a
// recovered panic (Stack non-nil in that case).
type CellError struct {
	Index int
	Err   error
	Stack []byte
}

// Error renders the failure with the cell index and, for panics, the
// captured stack.
func (e *CellError) Error() string {
	if e.Stack != nil {
		return fmt.Sprintf("exp: cell %d panicked: %v\n%s", e.Index, e.Err, e.Stack)
	}
	return fmt.Sprintf("exp: cell %d: %v", e.Index, e.Err)
}

// Unwrap exposes the underlying error.
func (e *CellError) Unwrap() error { return e.Err }

// Run executes fn(i) for every i in [0, n), at most Workers() cells at a
// time, and blocks until all cells finish. Cell failures (errors and
// recovered panics) are collected and joined in index order; a failure
// in one cell never prevents the others from running.
func (p *Pool) Run(n int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	errs := make([]error, n)
	if p.workers == 1 {
		// Cells run inline on the caller's goroutine, but still under
		// the semaphore: a cell that Blocks (coalesced cache waiter)
		// frees the slot for whoever computes its result, and a
		// concurrent Run on the same pool stays bounded at one cell.
		for i := 0; i < n; i++ {
			p.Acquire()
			p.cells.Add(1)
			errs[i] = runCell(i, fn)
			p.Release()
		}
		return joinCells(errs)
	}
	// One goroutine per cell, each admitted by the semaphore: at most
	// Workers() cells execute at a time, results land index-addressed,
	// and shutdown is just wg.Wait — there is no result channel to
	// close, so a panic escaping a cell (runCell confines cell panics,
	// but the pool does not bet its own integrity on that) still
	// reaches wg.Done and Release via the defers. The chaos-injected
	// regression test (TestShutdownUnderChaosInjection) pins this
	// contract.
	var wg sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			p.Acquire()
			defer p.Release()
			p.cells.Add(1)
			errs[i] = runCell(i, fn)
		}(i)
	}
	wg.Wait()
	return joinCells(errs)
}

// runCell invokes one cell, converting an error return or a panic into
// a *CellError.
func runCell(i int, fn func(int) error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			rerr, ok := r.(error)
			if !ok {
				rerr = fmt.Errorf("%v", r)
			}
			err = &CellError{Index: i, Err: rerr, Stack: debug.Stack()}
		}
	}()
	if e := fn(i); e != nil {
		return &CellError{Index: i, Err: e}
	}
	return nil
}

// joinCells joins non-nil cell errors in index order.
func joinCells(errs []error) error {
	var nonNil []error
	for _, e := range errs {
		if e != nil {
			nonNil = append(nonNil, e)
		}
	}
	return errors.Join(nonNil...)
}

// Map runs fn over [0, n) on p and returns the results in index order.
// On error the slice still holds every successful cell's value.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.Run(n, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	return out, err
}

// MapRNG is Map for randomized cells: it pre-splits one generator per
// cell from root, in index order, before any cell starts, so cell i's
// stream depends only on root's state and i — results are bit-identical
// regardless of worker count or goroutine scheduling. root is advanced
// exactly n splits.
func MapRNG[T any](p *Pool, root *sim.RNG, n int, fn func(i int, rng *sim.RNG) (T, error)) ([]T, error) {
	rngs := make([]*sim.RNG, n)
	for i := range rngs {
		rngs[i] = root.Split()
	}
	return Map(p, n, func(i int) (T, error) { return fn(i, rngs[i]) })
}

package workloads

import (
	"testing"

	"repro/internal/coherence"
	"repro/internal/interp"
	"repro/internal/ir"
)

func runKernelIR(t *testing.T, k IRKernel) uint64 {
	t.Helper()
	m := k.Build()
	for _, f := range m.Functions() {
		if err := ir.Verify(f); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
	}
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call(k.Entry)
	if err != nil {
		t.Fatalf("%s: %v", k.Name, err)
	}
	return got
}

func TestStreamTriadChecksum(t *testing.T) {
	k := streamTriad(256)
	got := runKernelIR(t, k)
	if got != k.Want {
		t.Fatalf("checksum = %d, want %d", got, k.Want)
	}
}

func TestReductionChecksum(t *testing.T) {
	k := reduction(500)
	got := runKernelIR(t, k)
	if got != k.Want {
		t.Fatalf("checksum = %d, want %d", got, k.Want)
	}
}

func TestAllKernelsRunAndAreDeterministic(t *testing.T) {
	for _, k := range CARATSuite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			a := runKernelIR(t, k)
			b := runKernelIR(t, k)
			if a != b {
				t.Fatalf("nondeterministic checksum: %d vs %d", a, b)
			}
			if k.Want != 0 && a != k.Want {
				t.Fatalf("checksum = %d, want %d", a, k.Want)
			}
		})
	}
}

func TestKernelsAreLoopDense(t *testing.T) {
	// The CARAT experiment depends on kernels whose work lives in
	// loops; verify every kernel has loops.
	for _, k := range CARATSuite() {
		m := k.Build()
		f := m.Funcs[k.Entry]
		info := ir.AnalyzeCFG(f)
		if len(info.Loops) == 0 {
			t.Fatalf("%s has no loops", k.Name)
		}
	}
}

func TestNASKernels(t *testing.T) {
	bt, sp := BT(), SP()
	if bt.SerialCycles() <= 0 || sp.SerialCycles() <= 0 {
		t.Fatal("serial cycles")
	}
	if !bt.FPHeavy || !sp.FPHeavy {
		t.Fatal("NAS kernels are FP-heavy")
	}
	if sp.RegionsPerStep <= bt.RegionsPerStep && sp.CyclesPerItem >= bt.CyclesPerItem {
		t.Fatal("SP must be more sync-sensitive than BT")
	}
}

func TestEPCCSuite(t *testing.T) {
	suite := EPCC()
	if len(suite) != 3 {
		t.Fatal("EPCC suite size")
	}
	if suite[0].Items != 0 {
		t.Fatal("first bench must be the empty parallel region")
	}
}

func TestPBBSBenchesProduceTraffic(t *testing.T) {
	for _, b := range PBBS() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			cfg := coherence.DefaultConfig()
			cfg.Sockets = 1
			cfg.CoresPerSocket = 4
			s := coherence.New(cfg)
			b.Run(s, 1, 7)
			if s.Stats.Accesses == 0 {
				t.Fatal("no accesses generated")
			}
			if s.Stats.TotalCycles() <= 0 {
				t.Fatal("no cycles accumulated")
			}
		})
	}
}

func TestPBBSDeactivationWins(t *testing.T) {
	// Every PBBS benchmark must get at least some benefit; the private/
	// read-only heavy ones must get a lot.
	for _, b := range PBBS() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			run := func(deact bool) (int64, float64) {
				cfg := coherence.DefaultConfig()
				cfg.Sockets = 1
				cfg.CoresPerSocket = 8
				cfg.Deactivation = deact
				s := coherence.New(cfg)
				b.Run(s, 1, 7)
				return s.Stats.SumCycles(), s.Stats.EnergyPJ
			}
			base, baseE := run(false)
			fast, fastE := run(true)
			if fast > base {
				t.Fatalf("deactivation slowed %s: %d -> %d", b.Name, base, fast)
			}
			if fastE > baseE {
				t.Fatalf("deactivation raised energy for %s", b.Name)
			}
		})
	}
}

func TestPBBSDeterministicTraces(t *testing.T) {
	b := PBBS()[0]
	run := func() uint64 {
		cfg := coherence.DefaultConfig()
		cfg.Sockets = 1
		cfg.CoresPerSocket = 4
		s := coherence.New(cfg)
		b.Run(s, 1, 99)
		return s.Stats.Accesses + uint64(s.Stats.SumCycles())
	}
	if run() != run() {
		t.Fatal("trace nondeterministic")
	}
}

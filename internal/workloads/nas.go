package workloads

// NASKernel describes the parallel structure of a NAS-class iterative
// solver as the kernel-OpenMP experiment needs it: time steps, each
// consisting of several parallel regions separated by barriers, each
// region a parallel loop of uniform-cost iterations.
//
// BT (block tridiagonal) does heavy per-cell work in three directional
// sweeps plus RHS computation; SP (scalar pentadiagonal) has lighter
// per-cell work and correspondingly higher sensitivity to fork/barrier
// overheads — which is why Fig. 6 shows SP gaining more from the kernel
// OpenMP paths at scale.
type NASKernel struct {
	Name           string
	Steps          int
	RegionsPerStep int
	// Items is the loop trip count per region (grid cells).
	Items int64
	// CyclesPerItem is the per-cell computation cost.
	CyclesPerItem int64
	// FPHeavy marks kernels dominated by floating-point state.
	FPHeavy bool
}

// SerialCycles returns the single-threaded pure-compute time.
func (k NASKernel) SerialCycles() int64 {
	return int64(k.Steps) * int64(k.RegionsPerStep) * k.Items * k.CyclesPerItem
}

// BT returns a block-tridiagonal-solver-shaped kernel.
func BT() NASKernel {
	return NASKernel{
		Name:           "BT",
		Steps:          24,
		RegionsPerStep: 8, // rhs + x/y/z solve + add, etc.
		Items:          60_000,
		CyclesPerItem:  95,
		FPHeavy:        true,
	}
}

// SP returns a scalar-pentadiagonal-solver-shaped kernel: lighter cells,
// more synchronization per unit of work.
func SP() NASKernel {
	return NASKernel{
		Name:           "SP",
		Steps:          36,
		RegionsPerStep: 10,
		Items:          60_000,
		CyclesPerItem:  45,
		FPHeavy:        true,
	}
}

// EPCCSyncBench describes an EPCC-style synchronization microbenchmark:
// an empty (or tiny) parallel region repeated many times, measuring pure
// runtime overhead.
type EPCCSyncBench struct {
	Name          string
	Repeats       int
	Items         int64
	CyclesPerItem int64
}

// EPCC returns the microbenchmark suite (parallel overhead, barrier
// overhead via empty regions, and a small-loop case).
func EPCC() []EPCCSyncBench {
	return []EPCCSyncBench{
		{Name: "parallel", Repeats: 200, Items: 0, CyclesPerItem: 0},
		{Name: "parallel-for-small", Repeats: 200, Items: 256, CyclesPerItem: 8},
		{Name: "parallel-for-large", Repeats: 50, Items: 65_536, CyclesPerItem: 8},
	}
}

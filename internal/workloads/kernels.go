package workloads

import "repro/internal/ir"

// IRKernel is a compiled-to-IR benchmark kernel for the CARAT experiment
// (§IV-A evaluated NAS, Mantevo, and PARSEC; these kernels reproduce the
// loop structures that dominate those suites). Each kernel's entry
// function takes no parameters and returns a checksum, so tests can
// verify that instrumentation preserves semantics exactly.
type IRKernel struct {
	Name  string
	Entry string
	Want  uint64 // expected checksum
	Build func() *ir.Module
}

// streamTriad: a[i] = b[i] + 3*c[i] over n elements — the classic
// bandwidth kernel (Mantevo/STREAM shape). Dense, perfectly hoistable.
func streamTriad(n int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("stream")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		size := b.Const(n * 8)
		av := b.AllocReg(size)
		bv := b.AllocReg(size)
		cv := b.AllocReg(size)
		three := b.Const(3)
		// Init b and c.
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			off := b.Mul(i, eight)
			b.Store(b.Add(bv, off), 0, i)
			v := b.Mul(i, three)
			b.Store(b.Add(cv, off), 0, v)
		})
		// Triad.
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			off := b.Mul(i, eight)
			x := b.Load(b.Add(bv, off), 0)
			y := b.Load(b.Add(cv, off), 0)
			s := b.Add(x, b.Mul(three, y))
			b.Store(b.Add(av, off), 0, s)
		})
		// Checksum.
		sum := b.Const(0)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			off := b.Mul(i, eight)
			b.MovTo(sum, b.Add(sum, b.Load(b.Add(av, off), 0)))
		})
		b.Free(av)
		b.Free(bv)
		b.Free(cv)
		b.Ret(sum)
		return m
	}
	// sum over i of (i + 9i) = 10 * n(n-1)/2
	want := uint64(10 * n * (n - 1) / 2)
	return IRKernel{Name: "stream-triad", Entry: "main", Want: want, Build: build}
}

// stencil3: 1D 3-point stencil sweep (miniFE/NAS shape): dense loop with
// three loads from one base — hoistable, plus in-block guard dedupe.
func stencil3(n, iters int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("stencil")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		size := b.Const((n + 2) * 8)
		grid := b.AllocReg(size)
		next := b.AllocReg(size)
		b.CountingLoop(0, n+2, 1, func(i ir.Reg) {
			b.Store(b.Add(grid, b.Mul(i, eight)), 0, i)
		})
		b.CountingLoop(0, iters, 1, func(it ir.Reg) {
			b.CountingLoop(1, n+1, 1, func(i ir.Reg) {
				off := b.Mul(i, eight)
				base := b.Add(grid, off)
				l := b.Load(base, -8)
				c := b.Load(base, 0)
				r := b.Load(base, 8)
				s := b.Add(b.Add(l, c), r)
				third := b.Const(3)
				b.Store(b.Add(next, off), 0, b.Div(s, third))
			})
			// Copy back.
			b.CountingLoop(1, n+1, 1, func(i ir.Reg) {
				off := b.Mul(i, eight)
				b.Store(b.Add(grid, off), 0, b.Load(b.Add(next, off), 0))
			})
		})
		sum := b.Const(0)
		b.CountingLoop(0, n+2, 1, func(i ir.Reg) {
			b.MovTo(sum, b.Add(sum, b.Load(b.Add(grid, b.Mul(i, eight)), 0)))
		})
		b.Free(grid)
		b.Free(next)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "stencil3", Entry: "main", Want: 0, Build: build}
}

// reduction: sum of f(i) with a branch in the body (PARSEC-ish control
// flow inside a hot loop).
func reduction(n int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("reduce")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		size := b.Const(n * 8)
		arr := b.AllocReg(size)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			v := b.Mul(i, i)
			b.Store(b.Add(arr, b.Mul(i, eight)), 0, v)
		})
		sum := b.Const(0)
		two := b.Const(2)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			v := b.Load(b.Add(arr, b.Mul(i, eight)), 0)
			even := b.ICmp(ir.PredEQ, b.Rem(i, two), b.Const(0))
			addB := b.Block("add.even")
			subB := b.Block("add.odd")
			done := b.Block("add.done")
			b.Br(even, addB, subB)
			b.SetBlock(addB)
			b.MovTo(sum, b.Add(sum, v))
			b.Jmp(done)
			b.SetBlock(subB)
			b.MovTo(sum, b.Sub(sum, v))
			b.Jmp(done)
			b.SetBlock(done)
		})
		b.Free(arr)
		b.Ret(sum)
		return m
	}
	// sum_{i even} i^2 - sum_{i odd} i^2 for i in [0,n)
	var want int64
	for i := int64(0); i < n; i++ {
		if i%2 == 0 {
			want += i * i
		} else {
			want -= i * i
		}
	}
	return IRKernel{Name: "reduction", Entry: "main", Want: uint64(want), Build: build}
}

// spmv: sparse matrix-vector-like gather — indices loaded from an index
// array, then an indirect load. The indirect access does not hoist (its
// base chases a loaded value), leaving residual per-iteration guards —
// the CARAT cost that cannot be removed.
func spmv(rows, nnzPerRow int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("spmv")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		nnz := rows * nnzPerRow
		idx := b.AllocReg(b.Const(nnz * 8))
		val := b.AllocReg(b.Const(nnz * 8))
		x := b.AllocReg(b.Const(rows * 8))
		y := b.AllocReg(b.Const(rows * 8))
		// Deterministic "random" pattern: idx[k] = (k*7) mod rows.
		seven := b.Const(7)
		rws := b.Const(rows)
		b.CountingLoop(0, nnz, 1, func(k ir.Reg) {
			col := b.Rem(b.Mul(k, seven), rws)
			b.Store(b.Add(idx, b.Mul(k, eight)), 0, col)
			b.Store(b.Add(val, b.Mul(k, eight)), 0, k)
		})
		b.CountingLoop(0, rows, 1, func(i ir.Reg) {
			b.Store(b.Add(x, b.Mul(i, eight)), 0, i)
		})
		nz := b.Const(nnzPerRow)
		b.CountingLoop(0, rows, 1, func(i ir.Reg) {
			acc := b.Const(0)
			start := b.Mul(i, nz)
			b.CountingLoop(0, nnzPerRow, 1, func(j ir.Reg) {
				k := b.Add(start, j)
				koff := b.Mul(k, eight)
				col := b.Load(b.Add(idx, koff), 0)
				v := b.Load(b.Add(val, koff), 0)
				// Indirect gather: base x + col*8, col is data-dependent.
				xv := b.Load(b.Add(x, b.Mul(col, eight)), 0)
				b.MovTo(acc, b.Add(acc, b.Mul(v, xv)))
			})
			b.Store(b.Add(y, b.Mul(i, eight)), 0, acc)
		})
		sum := b.Const(0)
		b.CountingLoop(0, rows, 1, func(i ir.Reg) {
			b.MovTo(sum, b.Add(sum, b.Load(b.Add(y, b.Mul(i, eight)), 0)))
		})
		b.Free(idx)
		b.Free(val)
		b.Free(x)
		b.Free(y)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "spmv", Entry: "main", Want: 0, Build: build}
}

// pointerChase: a linked-list walk (PARSEC dedup/canneal shape): every
// address is loaded from memory, so NO guard can be hoisted — the
// worst case for CARAT.
func pointerChase(nodes, steps int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("chase")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		// Node layout: [next(8) | value(8)], in one arena.
		arena := b.AllocReg(b.Const(nodes * 16))
		sixteen := b.Const(16)
		// Link node i -> node (i*31+7) mod nodes.
		n31 := b.Const(31)
		n7 := b.Const(7)
		nn := b.Const(nodes)
		b.CountingLoop(0, nodes, 1, func(i ir.Reg) {
			tgt := b.Rem(b.Add(b.Mul(i, n31), n7), nn)
			addr := b.Add(arena, b.Mul(i, sixteen))
			tgtAddr := b.Add(arena, b.Mul(tgt, sixteen))
			b.Store(addr, 0, tgtAddr)
			b.Store(addr, 8, i)
		})
		cur := b.Mov(arena)
		sum := b.Const(0)
		n13 := b.Const(13)
		n17 := b.Const(17)
		b.CountingLoop(0, steps, 1, func(i ir.Reg) {
			v := b.Load(cur, 8)
			// Per-node work (hashing/compare, as PARSEC's pointer
			// chasers do real work per node).
			hv := b.Xor(b.Mul(v, n13), b.Add(i, n17))
			hv = b.Add(hv, b.Mul(hv, n13))
			hv = b.Xor(hv, b.Shr(hv, b.Const(7)))
			b.MovTo(sum, b.Add(sum, hv))
			nxt := b.Load(cur, 0)
			b.MovTo(cur, nxt)
		})
		b.Free(arena)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "pointer-chase", Entry: "main", Want: 0, Build: build}
}

// matmulSmall: dense n x n matrix multiply (NAS kernel shape), integer.
func matmulSmall(n int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("matmul")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		sz := b.Const(n * n * 8)
		A := b.AllocReg(sz)
		B := b.AllocReg(sz)
		C := b.AllocReg(sz)
		nn := b.Const(n)
		b.CountingLoop(0, n*n, 1, func(k ir.Reg) {
			b.Store(b.Add(A, b.Mul(k, eight)), 0, k)
			two := b.Const(2)
			b.Store(b.Add(B, b.Mul(k, eight)), 0, b.Mul(k, two))
		})
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			b.CountingLoop(0, n, 1, func(j ir.Reg) {
				acc := b.Const(0)
				b.CountingLoop(0, n, 1, func(k ir.Reg) {
					aoff := b.Mul(b.Add(b.Mul(i, nn), k), eight)
					boff := b.Mul(b.Add(b.Mul(k, nn), j), eight)
					av := b.Load(b.Add(A, aoff), 0)
					bv := b.Load(b.Add(B, boff), 0)
					b.MovTo(acc, b.Add(acc, b.Mul(av, bv)))
				})
				coff := b.Mul(b.Add(b.Mul(i, nn), j), eight)
				b.Store(b.Add(C, coff), 0, acc)
			})
		})
		sum := b.Const(0)
		b.CountingLoop(0, n*n, 1, func(k ir.Reg) {
			b.MovTo(sum, b.Add(sum, b.Load(b.Add(C, b.Mul(k, eight)), 0)))
		})
		b.Free(A)
		b.Free(B)
		b.Free(C)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "matmul", Entry: "main", Want: 0, Build: build}
}

// histogramK: random writes through a computed bucket index (NAS IS /
// PBBS histogram shape). The store address derives from a loaded value,
// but the *base* is loop-invariant, so the region guard hoists.
func histogramK(n, buckets int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("hist")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		keys := b.AllocReg(b.Const(n * 8))
		hist := b.AllocReg(b.Const(buckets * 8))
		// Deterministic key stream: k*2654435761 mod 2^31.
		mul := b.Const(2654435761)
		mask31 := b.Const((1 << 31) - 1)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			k := b.And(b.Mul(i, mul), mask31)
			b.Store(b.Add(keys, b.Mul(i, eight)), 0, k)
		})
		bm := b.Const(buckets - 1)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			k := b.Load(b.Add(keys, b.Mul(i, eight)), 0)
			idx := b.And(k, bm)
			slot := b.Add(hist, b.Mul(idx, eight))
			cur := b.Load(slot, 0)
			one := b.Const(1)
			b.Store(slot, 0, b.Add(cur, one))
		})
		sum := b.Const(0)
		b.CountingLoop(0, buckets, 1, func(i ir.Reg) {
			v := b.Load(b.Add(hist, b.Mul(i, eight)), 0)
			b.MovTo(sum, b.Add(sum, b.Mul(v, v)))
		})
		b.Free(keys)
		b.Free(hist)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "histogram", Entry: "main", Want: 0, Build: build}
}

// nbodyK: an O(n²) float force loop (PARSEC/Mantevo physics shape) —
// FP-heavy with dense, hoistable array accesses.
func nbodyK(n, steps int64) IRKernel {
	build := func() *ir.Module {
		m := ir.NewModule("nbody")
		f := m.NewFunction("main", 0)
		b := ir.NewBuilder(f)
		eight := b.Const(8)
		pos := b.AllocReg(b.Const(n * 8))
		force := b.AllocReg(b.Const(n * 8))
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			x := b.Mul(i, b.Const(3))
			b.Store(b.Add(pos, b.Mul(i, eight)), 0, x)
		})
		b.CountingLoop(0, steps, 1, func(s ir.Reg) {
			b.CountingLoop(0, n, 1, func(i ir.Reg) {
				fi := b.FConst(0)
				pi := b.Load(b.Add(pos, b.Mul(i, eight)), 0)
				b.CountingLoop(0, n, 1, func(j ir.Reg) {
					pj := b.Load(b.Add(pos, b.Mul(j, eight)), 0)
					// Pseudo-force on integer positions reinterpreted
					// through float ops: d = pi - pj; f += d * 0.5.
					d := b.Sub(pi, pj)
					// Convert-ish: treat small int as float via FConst
					// scaling is not expressible; use float constants
					// and integer mix to keep FP units busy.
					fd := b.FMul(b.FConst(0.5), b.FConst(1.25))
					b.MovTo(fi, b.FAdd(fi, fd))
					_ = d
				})
				b.Store(b.Add(force, b.Mul(i, eight)), 0, fi)
			})
		})
		sum := b.Const(0)
		b.CountingLoop(0, n, 1, func(i ir.Reg) {
			v := b.Load(b.Add(force, b.Mul(i, eight)), 0)
			b.MovTo(sum, b.Xor(sum, v))
		})
		b.Free(pos)
		b.Free(force)
		b.Ret(sum)
		return m
	}
	return IRKernel{Name: "nbody", Entry: "main", Want: 0, Build: build}
}

// CARATSuite returns the kernel suite for the CARAT overhead experiment.
// Sizes are chosen so the suite runs in seconds under the interpreter
// while keeping loop trip counts high enough that per-iteration guard
// costs dominate naive instrumentation.
func CARATSuite() []IRKernel {
	return []IRKernel{
		streamTriad(4096),
		stencil3(2048, 8),
		reduction(8192),
		spmv(512, 16),
		pointerChase(1024, 16_384),
		matmulSmall(48),
		histogramK(8192, 512),
		nbodyK(96, 4),
	}
}

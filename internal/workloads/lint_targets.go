package workloads

import "repro/internal/ir"

// NamedModule is one target of the `interweave lint` subcommand: an
// uninstrumented IR module plus the extern call set it assumes and the
// entry function to run for differential (static vs dynamic) checks.
type NamedModule struct {
	Name   string
	Mod    *ir.Module
	Extern map[string]bool
	Entry  string
}

// SumsqDemo builds the array-sum kernel the carat-compiler example
// transforms: store i*i into a 2048-element array, then sum it.
func SumsqDemo() *ir.Module {
	m := ir.NewModule("demo")
	f := m.NewFunction("sumsq", 0)
	b := ir.NewBuilder(f)
	const n = 2048
	eight := b.Const(8)
	arr := b.Alloc(n * 8)
	b.CountingLoop(0, n, 1, func(i ir.Reg) {
		v := b.Mul(i, i)
		b.Store(b.Add(arr, b.Mul(i, eight)), 0, v)
	})
	sum := b.Const(0)
	b.CountingLoop(0, n, 1, func(i ir.Reg) {
		v := b.Load(b.Add(arr, b.Mul(i, eight)), 0)
		b.MovTo(sum, b.Add(sum, v))
	})
	b.Free(arr)
	b.Ret(sum)
	return m
}

// LintTargets returns the shipped modules `interweave lint` checks by
// default: the example compiler demo and the CARAT kernel suite. All
// must lint clean.
func LintTargets() []NamedModule {
	out := []NamedModule{
		{Name: "examples/carat-compiler", Mod: SumsqDemo(), Entry: "sumsq"},
	}
	for _, k := range CARATSuite() {
		out = append(out, NamedModule{Name: "kernels/" + k.Name, Mod: k.Build(), Entry: k.Entry})
	}
	return out
}

// BuggySuite returns seeded memory-bug modules — one per bug class the
// CARAT runtime detects dynamically — used by the differential test
// (static diagnostics must cover every dynamic detection) and
// selectable as `interweave lint buggy/...` for demonstration.
func BuggySuite() []NamedModule {
	return []NamedModule{
		{Name: "buggy/use-after-free", Entry: "main", Mod: buggyUseAfterFree()},
		{Name: "buggy/double-free", Entry: "main", Mod: buggyDoubleFree()},
		{Name: "buggy/leak", Entry: "main", Mod: buggyLeak()},
		{Name: "buggy/leak-conditional", Entry: "main", Mod: buggyLeakConditional()},
		{Name: "buggy/dead-store", Entry: "main", Mod: buggyDeadStore()},
		{Name: "buggy/use-before-def", Entry: "main", Mod: buggyUseBeforeDef()},
	}
}

// buggyUseAfterFree reads a buffer after releasing it; the CARAT guard
// on the load records a protection violation at run time.
func buggyUseAfterFree() *ir.Module {
	m := ir.NewModule("uaf")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	b.Store(p, 0, b.Const(7))
	b.Free(p)
	v := b.Load(p, 0)
	b.Ret(v)
	return m
}

// buggyDoubleFree releases the same buffer twice; the CARAT runtime
// records the second as an untracked free.
func buggyDoubleFree() *ir.Module {
	m := ir.NewModule("df")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	b.Store(p, 0, b.Const(1))
	b.Free(p)
	b.Free(p)
	b.Ret(b.Const(0))
	return m
}

// buggyLeak never frees its buffer; the allocation table is non-empty
// when the program exits.
func buggyLeak() *ir.Module {
	m := ir.NewModule("leak")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(128)
	b.Store(p, 0, b.Const(3))
	v := b.Load(p, 0)
	b.Ret(v)
	return m
}

// buggyLeakConditional frees only on one arm of a branch.
func buggyLeakConditional() *ir.Module {
	m := ir.NewModule("leak-cond")
	f := m.NewFunction("main", 1)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	b.Store(p, 0, b.Param(0))
	freeB := b.Block("do.free")
	done := b.Block("done")
	b.Br(b.Param(0), freeB, done)
	b.SetBlock(freeB)
	b.Free(p)
	b.Jmp(done)
	b.SetBlock(done)
	b.Ret(b.Const(0))
	return m
}

// buggyDeadStore overwrites a slot before anything reads it.
func buggyDeadStore() *ir.Module {
	m := ir.NewModule("deadstore")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	b.Store(p, 8, b.Const(1))
	b.Store(p, 8, b.Const(2))
	v := b.Load(p, 8)
	b.Free(p)
	b.Ret(v)
	return m
}

// buggyUseBeforeDef reads a register that is only assigned on one arm
// of a branch (the interpreter silently supplies zero).
func buggyUseBeforeDef() *ir.Module {
	m := ir.NewModule("ubd")
	f := m.NewFunction("main", 1)
	b := ir.NewBuilder(f)
	x := b.F.NewReg()
	setB := b.Block("set")
	done := b.Block("done")
	b.Br(b.Param(0), setB, done)
	b.SetBlock(setB)
	b.MovTo(x, b.Const(41))
	b.Jmp(done)
	b.SetBlock(done)
	one := b.Const(1)
	b.Ret(b.Add(x, one))
	return m
}

// Package workloads provides the benchmark kernels the experiments run:
// PBBS-style parallel kernels that generate classified memory-access
// traces for the coherence simulator (Fig. 7), NAS-style BT/SP iterative
// solver shapes for the kernel-OpenMP experiment (Fig. 6), and
// EPCC-style synchronization microbenchmarks.
//
// The kernels are synthetic but structurally faithful: each reproduces
// the sharing pattern (private partials, read-only inputs,
// producer→consumer exchanges, irregular shared frontiers) that the real
// benchmark exhibits, because that pattern is what the evaluated
// mechanisms exploit.
package workloads

import (
	"repro/internal/coherence"
	"repro/internal/mem"
	"repro/internal/sim"
)

// Layout constants for the synthetic address space (64-byte lines).
const (
	inputBase   mem.Addr = 0x1000_0000
	privateBase mem.Addr = 0x4000_0000
	sharedBase  mem.Addr = 0x8000_0000
	exchgBase   mem.Addr = 0xC000_0000
	line                 = 64
)

// PBBSBench is one benchmark: it classifies its regions on a system and
// replays its access trace.
type PBBSBench struct {
	Name string
	// Scale is the per-core access count multiplier.
	Scale int
	Run   func(s *coherence.System, scale int, seed uint64)
}

// privateSlice returns core c's private region base.
func privateSlice(c int) mem.Addr {
	return privateBase + mem.Addr(c)*(1<<20)
}

// classifyCommon registers the standard regions on a system.
func classifyCommon(s *coherence.System) {
	s.Classify(inputBase, 1<<24, coherence.ClassReadOnly, -1)
	for c := 0; c < s.Cores(); c++ {
		s.Classify(privateSlice(c), 1<<20, coherence.ClassPrivate, -1)
	}
}

// schedulerNoise models the runtime metadata every parallel program
// keeps coherent regardless of deactivation — work-stealing deque tops,
// join counters, the scheduler's shared state. MPL's disentanglement
// cannot classify these, so they stay in the default (reactive MESI)
// class and bound the achievable benefit.
func schedulerNoise(s *coherence.System, core int, rng *sim.RNG) {
	a := sharedBase + (1 << 22) + mem.Addr(rng.Intn(64)*line)
	s.Access(core, a, false)
	if rng.Intn(4) == 0 {
		s.Access(core, a, true)
	}
}

// Histogram: every core reads a slab of the read-only input and bumps
// counters in a private partial array; partials are then combined
// pairwise producer→consumer.
func histogramRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	// Count phase.
	for i := 0; i < scale*512; i++ {
		for c := 0; c < n; c++ {
			in := inputBase + mem.Addr((i*n+c)*line)
			s.Access(c, in, false)
			bucket := privateSlice(c) + mem.Addr(rng.Intn(256)*line)
			s.Access(c, bucket, false)
			s.Access(c, bucket, true)
			if i%3 == 0 {
				schedulerNoise(s, c, rng)
			}
		}
	}
	// Combine phase: tree reduction; at each level the left child
	// consumes the right child's partial (producer→consumer).
	for stride := 1; stride < n; stride *= 2 {
		for c := 0; c+stride < n; c += 2 * stride {
			prod := c + stride
			regBase := exchgBase + mem.Addr(prod)*(1<<16)
			s.Classify(regBase, 256*line, coherence.ClassProducerConsumer, prod)
			for b := 0; b < 256; b++ {
				a := regBase + mem.Addr(b*line)
				s.Access(prod, a, true) // producer publishes its partial
				s.Access(c, a, false)   // consumer reads it
				own := privateSlice(c) + mem.Addr(b*line)
				s.Access(c, own, true)
			}
		}
	}
}

// SampleSort: read sample keys (read-only), write records to private
// buckets, then exchange buckets producer→consumer and merge privately.
func sortRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	// Partition phase.
	for i := 0; i < scale*640; i++ {
		for c := 0; c < n; c++ {
			s.Access(c, inputBase+mem.Addr((i*n+c)*line), false)
			s.Access(c, privateSlice(c)+mem.Addr(rng.Intn(2048)*line/8*8), true)
			if i%3 == 0 {
				schedulerNoise(s, c, rng)
			}
		}
	}
	// Exchange: each core consumes a bucket produced by its neighbor.
	for c := 0; c < n; c++ {
		prod := (c + 1) % n
		regBase := exchgBase + mem.Addr(c)*(1<<16)
		s.Classify(regBase, 512*line, coherence.ClassProducerConsumer, prod)
		for b := 0; b < 512; b++ {
			a := regBase + mem.Addr(b*line)
			s.Access(prod, a, true)
			s.Access(c, a, false)
			s.Access(c, privateSlice(c)+mem.Addr(b*line), true)
		}
	}
}

// BFS: read-only graph structure, a genuinely shared frontier (default
// MESI), and private visited flags. The irregular shared accesses keep a
// large default-class component, so its deactivation gains are smaller —
// matching Fig. 7's spread across benchmarks.
func bfsRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	for round := 0; round < scale*6; round++ {
		for i := 0; i < 160; i++ {
			for c := 0; c < n; c++ {
				// Read graph edges (read-only).
				s.Access(c, inputBase+mem.Addr(rng.Intn(1<<16)*line), false)
				// Check/update the shared frontier (default class).
				f := sharedBase + mem.Addr(rng.Intn(1024)*line)
				s.Access(c, f, false)
				if rng.Intn(4) == 0 {
					s.Access(c, f, true)
				}
				// Mark private visited bitmap.
				s.Access(c, privateSlice(c)+mem.Addr(rng.Intn(512)*line), true)
			}
		}
	}
}

// WordCounts (map-reduce): read-only text, private hash maps, pairwise
// producer→consumer merge.
func wcRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	for i := 0; i < scale*768; i++ {
		for c := 0; c < n; c++ {
			s.Access(c, inputBase+mem.Addr((i*n+c)*line), false)
			h := privateSlice(c) + mem.Addr(rng.Intn(1024)*line)
			s.Access(c, h, false)
			s.Access(c, h, true)
			if i%3 == 0 {
				schedulerNoise(s, c, rng)
			}
		}
	}
	for stride := 1; stride < n; stride *= 2 {
		for c := 0; c+stride < n; c += 2 * stride {
			prod := c + stride
			regBase := exchgBase + mem.Addr(prod)*(1<<16) + (1 << 14)
			s.Classify(regBase, 128*line, coherence.ClassProducerConsumer, prod)
			for b := 0; b < 128; b++ {
				a := regBase + mem.Addr(b*line)
				s.Access(prod, a, true)
				s.Access(c, a, false)
			}
		}
	}
}

// MIS (maximal independent set): mostly irregular shared state; the
// benchmark where deactivation helps least.
func misRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	for round := 0; round < scale*8; round++ {
		for i := 0; i < 128; i++ {
			for c := 0; c < n; c++ {
				s.Access(c, inputBase+mem.Addr(rng.Intn(1<<15)*line), false)
				v := sharedBase + mem.Addr(rng.Intn(4096)*line)
				s.Access(c, v, false)
				if rng.Intn(3) == 0 {
					s.Access(c, v, true)
				}
			}
		}
	}
}

// Scan (prefix sums): read-only input, private partials, log-depth
// producer→consumer combine — the benchmark where deactivation helps
// most.
func scanRun(s *coherence.System, scale int, seed uint64) {
	classifyCommon(s)
	n := s.Cores()
	rng := sim.NewRNG(seed)
	for i := 0; i < scale*896; i++ {
		for c := 0; c < n; c++ {
			s.Access(c, inputBase+mem.Addr((i*n+c)*line), false)
			p := privateSlice(c) + mem.Addr((i%2048)*line/8*8)
			s.Access(c, p, false)
			s.Access(c, p, true)
			if i%3 == 0 {
				schedulerNoise(s, c, rng)
			}
		}
	}
	for stride := 1; stride < n; stride *= 2 {
		for c := 0; c+stride < n; c += 2 * stride {
			prod := c + stride
			regBase := exchgBase + mem.Addr(prod)*(1<<16) + (1 << 15)
			s.Classify(regBase, 64*line, coherence.ClassProducerConsumer, prod)
			for b := 0; b < 64; b++ {
				a := regBase + mem.Addr(b*line)
				s.Access(prod, a, true)
				s.Access(c, a, false)
			}
		}
	}
}

// PBBS returns the benchmark suite used for the Fig. 7 reproduction.
func PBBS() []PBBSBench {
	return []PBBSBench{
		{Name: "histogram", Scale: 2, Run: histogramRun},
		{Name: "samplesort", Scale: 2, Run: sortRun},
		{Name: "bfs", Scale: 2, Run: bfsRun},
		{Name: "wordcounts", Scale: 2, Run: wcRun},
		{Name: "mis", Scale: 2, Run: misRun},
		{Name: "scan", Scale: 2, Run: scanRun},
	}
}

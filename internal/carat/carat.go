// Package carat implements the runtime half of CARAT — Compiler- And
// Runtime-based Address Translation (§IV-A): an allocation table, escape
// tracking, protection guards, and data mobility (region relocation and
// whole-heap compaction) — all operating on physical addresses with no
// paging hardware.
//
// The compiler half lives in internal/passes (guard/tracking injection
// and hoisting); the two halves meet through the internal/interp hooks.
package carat

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/mem"
)

// ErrUntracked is returned when relocating an address that is not a
// tracked allocation base.
var ErrUntracked = errors.New("carat: address is not a tracked allocation")

// Perm is a protection permission bitmask.
type Perm uint8

// Permission bits.
const (
	PermRead Perm = 1 << iota
	PermWrite
	PermRW = PermRead | PermWrite
)

// Region is one tracked allocation.
type Region struct {
	Base mem.Addr
	Size uint64
	Perm Perm
}

// Contains reports whether addr falls inside the region.
func (r Region) Contains(addr mem.Addr) bool {
	return addr >= r.Base && uint64(addr-r.Base) < r.Size
}

// Costs parameterize the cycle cost of each runtime operation. The
// paper's result is that the *aggregate* of these costs is <6% geomean
// after compiler hoisting.
type Costs struct {
	Guard       int64 // per-address protection check (compare chain)
	GuardRegion int64 // hoisted whole-region check
	Track       int64 // allocation-table insert/remove
	// EscapeCheck is the inline "is this value a heap pointer?" range
	// compare executed at every may-pointer store.
	EscapeCheck int64
	// Escape is the escape-set insert paid only when the value really
	// points into a tracked region.
	Escape      int64
	MovePerWord int64 // relocation copy cost per 8 bytes
	Patch       int64 // per patched escape on relocation
}

// DefaultCosts returns the calibrated runtime costs. Guards compile to
// an inline compare chain against a cached region descriptor (§IV-A's
// "modern code analysis ... can massively reduce the potentially high
// costs"), so the per-check cost is a few cycles, not a table walk.
func DefaultCosts() Costs {
	return Costs{Guard: 3, GuardRegion: 10, Track: 28, EscapeCheck: 2, Escape: 10,
		MovePerWord: 2, Patch: 6}
}

// Memory is the minimal heap interface the runtime needs for mobility.
// interp.Heap satisfies it.
type Memory interface {
	Load(a mem.Addr) uint64
	Store(a mem.Addr, v uint64)
	Move(src, dst mem.Addr, n uint64)
}

// Table is the CARAT allocation map: all live allocations, ordered by
// base address, plus the escape set used to patch pointers on moves.
type Table struct {
	Costs Costs

	regions []Region // sorted by Base
	// escapes maps a memory location to true when a pointer-typed value
	// was stored there (conservatively).
	escapes map[mem.Addr]bool

	// Statistics.
	GuardsChecked  int64
	RegionGuards   int64
	Violations     int64
	Tracked        int64
	Untracked      int64
	EscapesTracked int64
	Moves          int64
	WordsMoved     int64
	PointersFixed  int64
}

// NewTable creates an empty allocation table with default costs.
func NewTable() *Table {
	return &Table{Costs: DefaultCosts(), escapes: make(map[mem.Addr]bool)}
}

// Len returns the number of tracked regions.
func (t *Table) Len() int { return len(t.regions) }

// find returns the index of the region containing addr, or -1.
func (t *Table) find(addr mem.Addr) int {
	i := sort.Search(len(t.regions), func(i int) bool {
		return t.regions[i].Base > addr
	})
	if i == 0 {
		return -1
	}
	if t.regions[i-1].Contains(addr) {
		return i - 1
	}
	return -1
}

// Lookup returns the region containing addr.
func (t *Table) Lookup(addr mem.Addr) (Region, bool) {
	if i := t.find(addr); i >= 0 {
		return t.regions[i], true
	}
	return Region{}, false
}

// TrackAlloc registers a new allocation with RW permission and returns
// the operation's cycle cost. Overlapping registrations panic: they
// indicate allocator corruption.
func (t *Table) TrackAlloc(base mem.Addr, size uint64) int64 {
	if size == 0 {
		size = 1
	}
	i := sort.Search(len(t.regions), func(i int) bool {
		return t.regions[i].Base > base
	})
	if i > 0 && t.regions[i-1].Contains(base) {
		panic(fmt.Sprintf("carat: overlapping allocation at %#x", base))
	}
	if i < len(t.regions) && t.regions[i].Base < base+mem.Addr(size) {
		panic(fmt.Sprintf("carat: allocation at %#x overlaps next region", base))
	}
	t.regions = append(t.regions, Region{})
	copy(t.regions[i+1:], t.regions[i:])
	t.regions[i] = Region{Base: base, Size: size, Perm: PermRW}
	t.Tracked++
	return t.Costs.Track
}

// TrackFree removes an allocation and its escapes, returning the cost.
func (t *Table) TrackFree(base mem.Addr) int64 {
	i := t.find(base)
	if i < 0 || t.regions[i].Base != base {
		// Tolerated: free of untracked memory is the application's bug;
		// the runtime just ignores it (and the guard would catch uses).
		t.Untracked++
		return t.Costs.Track
	}
	r := t.regions[i]
	t.regions = append(t.regions[:i], t.regions[i+1:]...)
	for loc := range t.escapes {
		if r.Contains(loc) {
			delete(t.escapes, loc)
		}
	}
	return t.Costs.Track
}

// SetPerm changes a region's protection, enabling per-"process"
// protection domains (the PIK-based enhanced CARAT, §IV-A).
func (t *Table) SetPerm(base mem.Addr, p Perm) error {
	i := t.find(base)
	if i < 0 || t.regions[i].Base != base {
		return ErrUntracked
	}
	t.regions[i].Perm = p
	return nil
}

// Guard validates one effective address for the given access kind and
// returns the check's cycle cost. Violations are counted, mirroring a
// protection fault delivered to the runtime.
func (t *Table) Guard(addr mem.Addr, write bool) int64 {
	t.GuardsChecked++
	i := t.find(addr)
	if i < 0 {
		t.Violations++
		return t.Costs.Guard
	}
	need := PermRead
	if write {
		need = PermWrite
	}
	if t.regions[i].Perm&need == 0 {
		t.Violations++
	}
	return t.Costs.Guard
}

// GuardRegion validates the entire allocation containing base — the
// hoisted form emitted by the compiler for base+induction access
// patterns. One check covers a whole loop's accesses to the region.
func (t *Table) GuardRegion(base mem.Addr) int64 {
	t.RegionGuards++
	if t.find(base) < 0 {
		t.Violations++
	}
	return t.Costs.GuardRegion
}

// TrackEscape records that a pointer value was stored at loc, if the
// value points into a tracked region. A compile-time may-pointer that
// turns out not to point at the heap costs only the inline range check.
func (t *Table) TrackEscape(loc mem.Addr, val uint64) int64 {
	if t.find(mem.Addr(val)) >= 0 {
		t.escapes[loc] = true
		t.EscapesTracked++
		return t.Costs.EscapeCheck + t.Costs.Escape
	}
	return t.Costs.EscapeCheck
}

// Relocate moves the allocation based at oldBase to newBase: copies the
// content, patches every tracked escaped pointer that pointed into the
// region (including escape locations that themselves lived inside it),
// and updates the table. This is the "data movements operate similarly
// to a garbage collector" machinery. Returns the cycle cost.
func (t *Table) Relocate(m Memory, oldBase, newBase mem.Addr) (int64, error) {
	i := t.find(oldBase)
	if i < 0 || t.regions[i].Base != oldBase {
		return 0, ErrUntracked
	}
	r := t.regions[i]
	delta := int64(newBase) - int64(oldBase)

	// Copy content.
	m.Move(oldBase, newBase, r.Size)
	words := int64((r.Size + 7) / 8)
	cost := words * t.Costs.MovePerWord
	t.Moves++
	t.WordsMoved += words

	// Patch escaped pointers into the moved region, relocating escape
	// locations that themselves moved.
	newEscapes := make(map[mem.Addr]bool, len(t.escapes))
	for loc := range t.escapes {
		newLoc := loc
		if r.Contains(loc) {
			newLoc = mem.Addr(int64(loc) + delta)
		}
		v := m.Load(newLoc)
		if r.Contains(mem.Addr(v)) {
			m.Store(newLoc, uint64(int64(v)+delta))
			t.PointersFixed++
			cost += t.Costs.Patch
		}
		newEscapes[newLoc] = true
	}
	t.escapes = newEscapes

	// Update table ordering.
	t.regions = append(t.regions[:i], t.regions[i+1:]...)
	j := sort.Search(len(t.regions), func(k int) bool {
		return t.regions[k].Base > newBase
	})
	t.regions = append(t.regions, Region{})
	copy(t.regions[j+1:], t.regions[j:])
	t.regions[j] = Region{Base: newBase, Size: r.Size, Perm: r.Perm}
	return cost, nil
}

// Regions returns a snapshot of the tracked regions in address order.
func (t *Table) Regions() []Region {
	return append([]Region(nil), t.regions...)
}

// Escapes returns the current number of tracked escape locations.
func (t *Table) Escapes() int { return len(t.escapes) }

// Compact slides every region as low as possible into the address range
// starting at floor, in address order — whole-heap defragmentation at
// arbitrary granularity ("memory can be managed at arbitrary granularity,
// instead of being restricted to page sizes"). align must be a power of
// two. Returns total cycle cost.
//
// The caller owns the address range; Compact only performs the moves and
// patching. It never overlaps source and destination because regions are
// processed low-to-high and only ever move downward.
func (t *Table) Compact(m Memory, floor mem.Addr, align uint64) (int64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("carat: bad alignment %d", align)
	}
	var total int64
	cursor := floor
	// Snapshot bases: relocation mutates t.regions.
	bases := make([]mem.Addr, len(t.regions))
	for i, r := range t.regions {
		bases[i] = r.Base
	}
	for _, base := range bases {
		i := t.find(base)
		if i < 0 {
			return total, ErrUntracked
		}
		r := t.regions[i]
		dst := (cursor + mem.Addr(align-1)) &^ mem.Addr(align-1)
		if dst < r.Base {
			c, err := t.Relocate(m, r.Base, dst)
			total += c
			if err != nil {
				return total, err
			}
			cursor = dst + mem.Addr(r.Size)
		} else {
			cursor = r.Base + mem.Addr(r.Size)
		}
	}
	return total, nil
}

// Evacuate moves every tracked region, in address order, into a fresh
// arena starting at dst — a copying-collector-style migration. The
// destination range must be disjoint from every current region (it is
// checked), so sources and destinations never overlap. Returns total
// cycle cost.
func (t *Table) Evacuate(m Memory, dst mem.Addr, align uint64) (int64, error) {
	if align == 0 || align&(align-1) != 0 {
		return 0, fmt.Errorf("carat: bad alignment %d", align)
	}
	// Compute the arena extent.
	var need uint64
	for _, r := range t.regions {
		need = (need + align - 1) &^ (align - 1)
		need += r.Size
	}
	end := dst + mem.Addr(need)
	for _, r := range t.regions {
		if r.Base < end && dst < r.Base+mem.Addr(r.Size) {
			return 0, fmt.Errorf("carat: evacuation arena overlaps live region at %#x", r.Base)
		}
	}
	var total int64
	cursor := dst
	bases := make([]mem.Addr, len(t.regions))
	for i, r := range t.regions {
		bases[i] = r.Base
	}
	for _, base := range bases {
		i := t.find(base)
		if i < 0 {
			return total, ErrUntracked
		}
		r := t.regions[i]
		d := (cursor + mem.Addr(align-1)) &^ mem.Addr(align-1)
		c, err := t.Relocate(m, r.Base, d)
		total += c
		if err != nil {
			return total, err
		}
		cursor = d + mem.Addr(r.Size)
	}
	return total, nil
}

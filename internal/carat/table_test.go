package carat

import (
	"errors"
	"testing"

	"repro/internal/mem"
)

// TestSetPermTable drives permission changes through tracked, freed,
// and never-tracked bases, including the ErrUntracked failure paths.
func TestSetPermTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		track   []mem.Addr // regions of 64 bytes tracked before the call
		free    []mem.Addr // then freed
		base    mem.Addr
		perm    Perm
		wantErr error
	}{
		{name: "tracked-base", track: []mem.Addr{0x1000}, base: 0x1000, perm: PermRead},
		{name: "tracked-to-none", track: []mem.Addr{0x1000}, base: 0x1000, perm: Perm(0)},
		{name: "never-tracked", base: 0x1000, perm: PermRead, wantErr: ErrUntracked},
		{name: "interior-pointer", track: []mem.Addr{0x1000}, base: 0x1008, perm: PermRead, wantErr: ErrUntracked},
		{name: "freed-base", track: []mem.Addr{0x1000}, free: []mem.Addr{0x1000}, base: 0x1000, perm: PermRead, wantErr: ErrUntracked},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tab := NewTable()
			for _, a := range tc.track {
				tab.TrackAlloc(a, 64)
			}
			for _, a := range tc.free {
				tab.TrackFree(a)
			}
			if err := tab.SetPerm(tc.base, tc.perm); !errors.Is(err, tc.wantErr) {
				t.Fatalf("SetPerm(%#x) = %v, want %v", tc.base, err, tc.wantErr)
			}
			if tc.wantErr == nil {
				r, ok := tab.Lookup(tc.base)
				if !ok || r.Perm != tc.perm {
					t.Fatalf("perm not applied: %+v ok=%v", r, ok)
				}
			}
		})
	}
}

// TestGuardViolationTable enumerates the guard outcomes: permitted
// accesses, permission violations, and wild (untracked) accesses.
func TestGuardViolationTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name     string
		perm     Perm // permission on the 64-byte region at 0x2000
		addr     mem.Addr
		write    bool
		wantViol int64
	}{
		{name: "read-allowed", perm: PermRW, addr: 0x2010, write: false, wantViol: 0},
		{name: "write-allowed", perm: PermRW, addr: 0x2010, write: true, wantViol: 0},
		{name: "write-to-readonly", perm: PermRead, addr: 0x2010, write: true, wantViol: 1},
		{name: "read-from-none", perm: Perm(0), addr: 0x2010, write: false, wantViol: 1},
		{name: "wild-read", perm: PermRW, addr: 0x9999, write: false, wantViol: 1},
		{name: "one-past-end", perm: PermRW, addr: 0x2040, write: false, wantViol: 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			tab := NewTable()
			tab.TrackAlloc(0x2000, 64)
			if err := tab.SetPerm(0x2000, tc.perm); err != nil {
				t.Fatal(err)
			}
			cost := tab.Guard(tc.addr, tc.write)
			if cost != tab.Costs.Guard {
				t.Fatalf("guard cost = %d, want %d", cost, tab.Costs.Guard)
			}
			if tab.Violations != tc.wantViol {
				t.Fatalf("violations = %d, want %d", tab.Violations, tc.wantViol)
			}
			if tab.GuardsChecked != 1 {
				t.Fatalf("guards checked = %d, want 1", tab.GuardsChecked)
			}
		})
	}
}

// TestRelocateErrorTable covers the relocation failure paths next to a
// working move, using the interpreter heap as the Memory.
func TestRelocateErrorTable(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name    string
		oldBase mem.Addr
		wantErr error
	}{
		{name: "tracked-moves", oldBase: 0x1000},
		{name: "untracked-base", oldBase: 0x5000, wantErr: ErrUntracked},
		{name: "interior-base", oldBase: 0x1008, wantErr: ErrUntracked},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			h := newHeap(t)
			tab := NewTable()
			tab.TrackAlloc(0x1000, 64)
			h.Store(0x1000, 0xdead)
			_, err := tab.Relocate(h, tc.oldBase, 0x3000)
			if !errors.Is(err, tc.wantErr) {
				t.Fatalf("Relocate(%#x) error = %v, want %v", tc.oldBase, err, tc.wantErr)
			}
			if tc.wantErr == nil {
				if got := h.Load(0x3000); got != 0xdead {
					t.Fatalf("content not moved: %#x", got)
				}
				if _, ok := tab.Lookup(0x1000); ok {
					t.Fatal("old region still tracked after relocation")
				}
			}
		})
	}
}

// TestTrackFreeUntrackedTolerated: freeing unknown memory is counted,
// not fatal — the guard machinery, not the tracker, reports the bug.
func TestTrackFreeUntrackedTolerated(t *testing.T) {
	t.Parallel()
	tab := NewTable()
	tab.TrackAlloc(0x1000, 64)
	tab.TrackFree(0x4000) // never tracked
	tab.TrackFree(0x1008) // interior pointer, not a base
	if tab.Untracked != 2 {
		t.Fatalf("untracked frees = %d, want 2", tab.Untracked)
	}
	if tab.Len() != 1 {
		t.Fatalf("table length = %d, want 1 (real region untouched)", tab.Len())
	}
}

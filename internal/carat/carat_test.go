package carat

import (
	"testing"
	"testing/quick"

	"repro/internal/interp"
	"repro/internal/mem"
	"repro/internal/sim"
)

func newHeap(t *testing.T) *interp.Heap {
	t.Helper()
	h, err := interp.NewHeap(0x1000, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestTrackAndLookup(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 256)
	tb.TrackAlloc(0x2000, 64)
	if tb.Len() != 2 {
		t.Fatalf("len = %d", tb.Len())
	}
	r, ok := tb.Lookup(0x10ff)
	if !ok || r.Base != 0x1000 {
		t.Fatalf("lookup = %+v, %v", r, ok)
	}
	if _, ok := tb.Lookup(0x1100); ok {
		t.Fatal("lookup past region end should miss")
	}
	if _, ok := tb.Lookup(0x500); ok {
		t.Fatal("lookup before all regions should miss")
	}
}

func TestTrackFreeRemoves(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 128)
	tb.TrackFree(0x1000)
	if tb.Len() != 0 {
		t.Fatal("region not removed")
	}
	if _, ok := tb.Lookup(0x1000); ok {
		t.Fatal("freed region still found")
	}
	// Untracked free is tolerated and counted.
	tb.TrackFree(0x9999)
	if tb.Untracked != 1 {
		t.Fatal("untracked free not counted")
	}
}

func TestOverlapPanics(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlap")
		}
	}()
	tb.TrackAlloc(0x1080, 16)
}

func TestOverlapNextPanics(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 256)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on overlap with next")
		}
	}()
	tb.TrackAlloc(0xf80, 256)
}

func TestGuardValidAndViolation(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 64)
	c := tb.Guard(0x1010, false)
	if c != tb.Costs.Guard {
		t.Fatalf("cost = %d", c)
	}
	if tb.Violations != 0 {
		t.Fatal("valid access flagged")
	}
	tb.Guard(0x5000, false)
	if tb.Violations != 1 {
		t.Fatal("out-of-bounds access not flagged")
	}
}

func TestGuardPermissions(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 64)
	if err := tb.SetPerm(0x1000, PermRead); err != nil {
		t.Fatal(err)
	}
	tb.Guard(0x1000, false)
	if tb.Violations != 0 {
		t.Fatal("read of read-only region flagged")
	}
	tb.Guard(0x1000, true)
	if tb.Violations != 1 {
		t.Fatal("write to read-only region not flagged")
	}
	if err := tb.SetPerm(0x9000, PermRW); err != ErrUntracked {
		t.Fatalf("err = %v", err)
	}
}

func TestGuardRegion(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 64)
	tb.GuardRegion(0x1000)
	if tb.Violations != 0 || tb.RegionGuards != 1 {
		t.Fatalf("stats: %+v", tb)
	}
	tb.GuardRegion(0x8000)
	if tb.Violations != 1 {
		t.Fatal("region guard on untracked base not flagged")
	}
}

func TestEscapeOnlyTracksHeapPointers(t *testing.T) {
	tb := NewTable()
	tb.TrackAlloc(0x1000, 64)
	tb.TrackEscape(0x1000, 0x1020) // points into region
	tb.TrackEscape(0x1008, 12345)  // plain integer
	if tb.Escapes() != 1 {
		t.Fatalf("escapes = %d", tb.Escapes())
	}
}

func TestRelocatePatchesPointers(t *testing.T) {
	h := newHeap(t)
	tb := NewTable()

	src, _ := h.Alloc(64)
	other, _ := h.Alloc(64)
	tb.TrackAlloc(src, 64)
	tb.TrackAlloc(other, 64)

	// other[0] points into src; src[8] points into src itself.
	h.Store(other, uint64(src)+16)
	tb.TrackEscape(other, uint64(src)+16)
	h.Store(src+8, uint64(src)+32)
	tb.TrackEscape(src+8, uint64(src)+32)
	h.Store(src+16, 0x777) // payload data

	dst, _ := h.Alloc(64)
	cost, err := tb.Relocate(h, src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("relocation cost not accounted")
	}
	// External pointer patched.
	if got := h.Load(other); got != uint64(dst)+16 {
		t.Fatalf("external pointer = %#x, want %#x", got, uint64(dst)+16)
	}
	// Internal pointer moved with the region AND patched.
	if got := h.Load(dst + 8); got != uint64(dst)+32 {
		t.Fatalf("internal pointer = %#x, want %#x", got, uint64(dst)+32)
	}
	// Payload moved.
	if got := h.Load(dst + 16); got != 0x777 {
		t.Fatalf("payload = %#x", got)
	}
	// Table updated.
	if r, ok := tb.Lookup(dst); !ok || r.Base != dst {
		t.Fatal("table not updated")
	}
	if _, ok := tb.Lookup(src); ok {
		t.Fatal("old region still tracked")
	}
	if tb.PointersFixed != 2 {
		t.Fatalf("pointers fixed = %d, want 2", tb.PointersFixed)
	}
}

func TestRelocateUntracked(t *testing.T) {
	h := newHeap(t)
	tb := NewTable()
	if _, err := tb.Relocate(h, 0x4242, 0x9000); err != ErrUntracked {
		t.Fatalf("err = %v", err)
	}
}

func TestCompactDefragments(t *testing.T) {
	h := newHeap(t)
	tb := NewTable()

	// Allocate scattered regions directly into the table at spread-out
	// addresses (simulating a fragmented heap).
	bases := []mem.Addr{0x100000, 0x180000, 0x240000, 0x300000}
	for i, b := range bases {
		tb.TrackAlloc(b, 64)
		h.Store(b, uint64(i+1)) // payload marks identity
	}
	// A cross-region pointer: region 0 points at region 3.
	h.Store(bases[0]+8, uint64(bases[3])+8)
	tb.TrackEscape(bases[0]+8, uint64(bases[3])+8)

	cost, err := tb.Compact(h, 0x10000, 64)
	if err != nil {
		t.Fatal(err)
	}
	if cost <= 0 {
		t.Fatal("compaction cost not accounted")
	}
	rs := tb.Regions()
	if len(rs) != 4 {
		t.Fatalf("regions = %d", len(rs))
	}
	// Contiguous placement from the floor.
	want := mem.Addr(0x10000)
	for i, r := range rs {
		if r.Base != want {
			t.Fatalf("region %d at %#x, want %#x", i, r.Base, want)
		}
		if h.Load(r.Base) != uint64(i+1) {
			t.Fatalf("region %d payload lost", i)
		}
		want += mem.Addr(64)
	}
	// The cross-region pointer must now point at the moved region 3.
	if got := h.Load(rs[0].Base + 8); got != uint64(rs[3].Base)+8 {
		t.Fatalf("cross pointer = %#x, want %#x", got, uint64(rs[3].Base)+8)
	}
}

func TestCompactBadAlign(t *testing.T) {
	tb := NewTable()
	if _, err := tb.Compact(newHeap(t), 0, 3); err == nil {
		t.Fatal("expected alignment error")
	}
}

// TestTableRandomConsistency: after random tracked alloc/free sequences,
// every live base is found by Lookup, every freed one is not, and the
// region list stays sorted and non-overlapping.
func TestTableRandomConsistency(t *testing.T) {
	check := func(seed uint64) bool {
		rng := sim.NewRNG(seed)
		tb := NewTable()
		live := make(map[mem.Addr]uint64)
		next := mem.Addr(0x1000)
		for step := 0; step < 300; step++ {
			if rng.Intn(3) != 0 || len(live) == 0 {
				size := uint64(rng.Intn(500) + 1)
				tb.TrackAlloc(next, size)
				live[next] = size
				next += mem.Addr(size + uint64(rng.Intn(64)))
			} else {
				for b := range live {
					tb.TrackFree(b)
					delete(live, b)
					break
				}
			}
		}
		for b, sz := range live {
			if r, ok := tb.Lookup(b + mem.Addr(sz/2)); !ok || r.Base != b {
				return false
			}
		}
		rs := tb.Regions()
		if len(rs) != len(live) {
			return false
		}
		for i := 1; i < len(rs); i++ {
			if rs[i-1].Base+mem.Addr(rs[i-1].Size) > rs[i].Base {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

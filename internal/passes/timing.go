package passes

import (
	"repro/internal/interp"
	"repro/internal/ir"
)

// TimingInject implements compiler-based timing (§IV-C): it statically
// places calls into the timer framework (OpYieldCheck) so that, at run
// time, a check executes at least every TargetCycles of computation along
// any path through the code — replacing the hardware timer interrupt.
//
// Placement rules ("the compiler transform needs to introduce timing
// calls statically, so that they occur dynamically at some desired rate
// regardless of the code path taken"):
//
//  1. One check at function entry (covers call paths).
//  2. One check in every loop latch (covers every iteration of every
//     loop; back edges are the only way execution revisits code).
//  3. Additional checks inside any straight-line block whose static cost
//     estimate exceeds TargetCycles, every TargetCycles of estimated
//     cost.
//
// The check itself is cheap (a counter compare; cost comes from the
// Nautilus timing-framework model), so rule 2's per-iteration placement
// bounds granularity by the loop body cost.
type TimingInject struct {
	// TargetCycles is the desired maximum dynamic gap between checks.
	TargetCycles int64
	// Costs estimates instruction costs; zero value uses DefaultCosts.
	Costs interp.CostTable
	// Op lets the same placement engine inject OpPoll for blended
	// device drivers (§V-C); default OpYieldCheck.
	Op ir.Op
	// ChunkLoops enables counter-based amortization: a loop whose
	// per-iteration cost is far below TargetCycles gets a decrementing
	// counter so the check executes once every ~TargetCycles of work
	// instead of every iteration. This is the transform that makes the
	// checks "occur dynamically at some desired rate regardless of the
	// code path taken" at bounded overhead.
	ChunkLoops bool

	Inserted     int
	LoopsChunked int
}

// Name implements Pass.
func (t *TimingInject) Name() string {
	if t.Op == ir.OpPoll {
		return "poll-blend"
	}
	return "timing-inject"
}

// Run implements Pass.
func (t *TimingInject) Run(f *ir.Function) error {
	if t.TargetCycles <= 0 {
		t.TargetCycles = 2000
	}
	op := t.Op
	if op == 0 || (op != ir.OpYieldCheck && op != ir.OpPoll) {
		op = ir.OpYieldCheck
	}
	costs := t.Costs
	if costs == (interp.CostTable{}) {
		costs = interp.DefaultCosts()
	}

	mk := func() *ir.Instr {
		t.Inserted++
		return &ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg}
	}

	info := ir.AnalyzeCFG(f)
	latches := make(map[*ir.Block]bool)
	var chunked []*ir.Loop
	for _, l := range info.Loops {
		if t.ChunkLoops {
			if c := loopIterCost(l, costs); c > 0 && c*2 < t.TargetCycles {
				chunked = append(chunked, l)
				continue
			}
		}
		for _, latch := range l.Latches {
			latches[latch] = true
		}
	}

	for bi, b := range f.Blocks {
		var out []*ir.Instr
		// Rule 1: function entry.
		if bi == 0 {
			out = append(out, mk())
		}
		var acc int64
		for i, in := range b.Instrs {
			isTerm := i == len(b.Instrs)-1
			// Rule 3: split long straight-line stretches.
			if acc >= t.TargetCycles && !isTerm {
				out = append(out, mk())
				acc = 0
			}
			// Rule 2: check on every back edge, just before the
			// terminator of each latch.
			if isTerm && latches[b] {
				out = append(out, mk())
			}
			out = append(out, in)
			acc += InstrCost(in, costs)
		}
		b.Instrs = out
	}

	// Counter-based chunking for the small-body loops, after the plain
	// placement. Each chunking edits the CFG (preheaders, split
	// latches), so re-analyze between loops and re-find each loop by
	// its header block.
	for _, target := range chunked {
		cur := ir.AnalyzeCFG(f)
		for _, l := range cur.Loops {
			if l.Header == target.Header {
				t.chunkLoop(f, cur, l, costs, op)
				break
			}
		}
	}
	return nil
}

// loopIterCost estimates one iteration's cost: the sum of the loop's
// block costs (conservative for branchy bodies — both arms counted, so
// checks are at least as dense as required).
func loopIterCost(l *ir.Loop, costs interp.CostTable) int64 {
	var sum int64
	for b := range l.Blocks {
		sum += BlockCost(b, costs)
	}
	return sum
}

// chunkLoop rewrites a loop so the injected check runs once every ~K
// iterations, K = TargetCycles / iterCost:
//
//	preheader:  cnt = K
//	latch:      cnt = cnt - 1
//	            if cnt <= 0 goto check else cont
//	check:      <op>; cnt = K; goto cont
//	cont:       <original latch terminator>
func (t *TimingInject) chunkLoop(f *ir.Function, info *ir.CFGInfo, l *ir.Loop, costs interp.CostTable, op ir.Op) {
	iter := loopIterCost(l, costs)
	k := t.TargetCycles / iter
	if k < 1 {
		k = 1
	}
	cnt := f.NewReg()
	kReg := f.NewReg()
	zero := f.NewReg()
	one := f.NewReg()

	ph := info.Preheader(l)
	phTerm := ph.Instrs[len(ph.Instrs)-1]
	ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1],
		&ir.Instr{Op: ir.OpConst, Dst: kReg, A: ir.NoReg, B: ir.NoReg, Imm: k},
		&ir.Instr{Op: ir.OpConst, Dst: zero, A: ir.NoReg, B: ir.NoReg, Imm: 0},
		&ir.Instr{Op: ir.OpConst, Dst: one, A: ir.NoReg, B: ir.NoReg, Imm: 1},
		&ir.Instr{Op: ir.OpMov, Dst: cnt, A: kReg, B: ir.NoReg},
		phTerm,
	)

	for _, latch := range l.Latches {
		term := latch.Instrs[len(latch.Instrs)-1]
		cond := f.NewReg()
		check := f.NewBlock(latch.Name + ".check")
		cont := f.NewBlock(latch.Name + ".cont")
		// Latch now decrements and branches.
		latch.Instrs = append(latch.Instrs[:len(latch.Instrs)-1],
			&ir.Instr{Op: ir.OpSub, Dst: cnt, A: cnt, B: one},
			&ir.Instr{Op: ir.OpICmp, Dst: cond, A: cnt, B: zero, Pred: ir.PredLE},
			&ir.Instr{Op: ir.OpBr, A: cond, B: ir.NoReg, Target: check, Else: cont},
		)
		check.Instrs = append(check.Instrs,
			&ir.Instr{Op: op, Dst: ir.NoReg, A: ir.NoReg, B: ir.NoReg},
			&ir.Instr{Op: ir.OpMov, Dst: cnt, A: kReg, B: ir.NoReg},
			&ir.Instr{Op: ir.OpJmp, A: ir.NoReg, B: ir.NoReg, Target: cont},
		)
		cont.Instrs = append(cont.Instrs, term)
		t.Inserted++
	}
	t.LoopsChunked++
}

// InstrCost returns the static cycle estimate for one instruction under
// a cost table; exported for the pass's cost-estimation tests and for
// workload sizing.
func InstrCost(in *ir.Instr, c interp.CostTable) int64 {
	switch in.Op {
	case ir.OpConst, ir.OpFConst, ir.OpMov, ir.OpAdd, ir.OpSub,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpICmp:
		return c.IntALU
	case ir.OpMul:
		return c.IntMul
	case ir.OpDiv, ir.OpRem:
		return c.IntDiv
	case ir.OpFAdd, ir.OpFSub, ir.OpFCmp:
		return c.FPALU
	case ir.OpFMul:
		return c.FPMul
	case ir.OpFDiv:
		return c.FPDiv
	case ir.OpLoad:
		return c.Load
	case ir.OpStore:
		return c.Store
	case ir.OpAlloc:
		return c.Alloc
	case ir.OpFree:
		return c.Free
	case ir.OpCall:
		return c.Call
	case ir.OpBr:
		return c.Branch
	case ir.OpJmp:
		return c.Jump
	case ir.OpRet:
		return c.Ret
	default:
		// Intrinsics' dynamic cost comes from hooks; static estimate
		// is the cheap not-fired path.
		return 2
	}
}

// BlockCost estimates the static cost of a block.
func BlockCost(b *ir.Block, c interp.CostTable) int64 {
	var sum int64
	for _, in := range b.Instrs {
		sum += InstrCost(in, c)
	}
	return sum
}

package passes

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// CopyCoalesce shrinks compiled frames. It runs three stages, all fed
// by the analysis layer:
//
//  1. Copy propagation: with the available-copies must-analysis
//     (analysis.AvailCopies) solved over the CFG, every operand is
//     rewritten to the representative source of its copy chain, and
//     movs that are provably no-ops at their own program point are
//     deleted.
//  2. Dead-copy elimination: movs whose destination is dead (liveness)
//     are deleted, iterating because removing one copy can kill the
//     one feeding it.
//  3. Register coalescing: an interference graph is built from
//     liveness (a definition interferes with every register live
//     after it), virtual registers are greedily packed into the
//     lowest non-conflicting slot, and the function's registers are
//     renumbered to the packed slots. Function.NumRegs is the frame
//     size both engines allocate per call, so the packing directly
//     shrinks the compiled engine's pooled frames; movs whose two
//     sides landed in the same slot become self-copies and are
//     deleted.
//
// Parameters keep their ABI slots 0..NumParams-1. Registers that are
// live into the entry block without being parameters are read before
// any write — the interpreter defines such reads as zero, so they are
// pinned to private slots nothing else may share (any cohabitant's
// write would corrupt the guaranteed zero). Stage 3 is skipped while
// unreachable blocks exist (their liveness is unknowable; GlobalDCE
// removes them, and the standard pipeline orders it first).
type CopyCoalesce struct {
	// Rewritten counts operand uses redirected to a copy source;
	// CopiesRemoved counts deleted movs (redundant, dead, or
	// self-copies after packing); RegsSaved accumulates the NumRegs
	// reduction.
	Rewritten     int
	CopiesRemoved int
	RegsSaved     int
}

// Name implements Pass.
func (c *CopyCoalesce) Name() string { return "copy-coalesce" }

// Run implements Pass.
func (c *CopyCoalesce) Run(f *ir.Function) error {
	c.propagate(f)
	c.removeDeadCopies(f)
	c.pack(f)
	return nil
}

// propagate rewrites operands to their copy-chain representatives and
// deletes movs that are no-ops at their own point.
func (c *CopyCoalesce) propagate(f *ir.Function) {
	info := ir.AnalyzeCFG(f)
	ac := analysis.NewAvailCopies(f)
	if len(ac.Copies) == 0 {
		// Still normalize trivial self-copies.
		c.dropMovs(f, func(in *ir.Instr) bool { return in.Op == ir.OpMov && in.Dst == in.A })
		return
	}
	res := analysis.Solve(info, ac)
	dead := make(map[*ir.Instr]bool)
	for _, b := range info.RPO {
		res.Replay(b, func(_ int, in *ir.Instr, facts *analysis.BitSet) {
			if ac.IsRedundant(in, facts) {
				dead[in] = true
				return
			}
			// The facts were computed over the original copy relation;
			// each rewrite replaces a register with one provably equal
			// at this point, so values — and with them the validity of
			// every fact — are preserved.
			in.MapUses(func(r ir.Reg) ir.Reg {
				nr := ac.Resolve(r, facts)
				if nr != r {
					c.Rewritten++
				}
				return nr
			})
		})
	}
	if len(dead) > 0 {
		c.dropMovs(f, func(in *ir.Instr) bool { return dead[in] })
	}
}

// removeDeadCopies deletes movs whose destination is dead at the copy,
// iterating to a fixpoint (a deleted copy can kill its feeder).
func (c *CopyCoalesce) removeDeadCopies(f *ir.Function) {
	for {
		info := ir.AnalyzeCFG(f)
		live := analysis.Solve(info, analysis.NewLiveness(f))
		dead := make(map[*ir.Instr]bool)
		for _, b := range info.RPO {
			live.Replay(b, func(_ int, in *ir.Instr, after *analysis.BitSet) {
				if in.Op == ir.OpMov && !after.Has(int(in.Dst)) {
					dead[in] = true
				}
			})
		}
		if len(dead) == 0 {
			return
		}
		c.dropMovs(f, func(in *ir.Instr) bool { return dead[in] })
	}
}

// pack renumbers registers into interference-free shared slots.
func (c *CopyCoalesce) pack(f *ir.Function) {
	info := ir.AnalyzeCFG(f)
	if len(info.RPO) != len(f.Blocks) || len(info.RPO) == 0 {
		return // unreachable blocks: liveness cannot cover them
	}
	n := f.NumRegs
	p := f.NumParams
	live := analysis.Solve(info, analysis.NewLiveness(f))

	// Which registers appear at all, and the interference graph.
	appears := make([]bool, n)
	for r := 0; r < p; r++ {
		appears[r] = true // params own their ABI slot even when unused
	}
	adj := make([]*analysis.BitSet, n)
	edge := func(a, b ir.Reg) {
		if adj[a] == nil {
			adj[a] = analysis.NewBitSet(n)
		}
		if adj[b] == nil {
			adj[b] = analysis.NewBitSet(n)
		}
		adj[a].Set(int(b))
		adj[b].Set(int(a))
	}
	var buf []ir.Reg
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if d := in.Defs(); d != ir.NoReg {
				appears[d] = true
			}
			buf = in.Uses(buf[:0])
			for _, u := range buf {
				appears[u] = true
			}
		}
	}
	for _, b := range info.RPO {
		live.Replay(b, func(_ int, in *ir.Instr, after *analysis.BitSet) {
			d := in.Defs()
			if d == ir.NoReg {
				return
			}
			after.ForEach(func(r int) {
				if ir.Reg(r) != d {
					edge(d, ir.Reg(r))
				}
			})
		})
	}

	// Non-parameter registers live into the entry read as zero; pin
	// them to private slots.
	pinned := make([]bool, n)
	if entryIn := live.In[info.RPO[0]]; entryIn != nil {
		entryIn.ForEach(func(r int) {
			if r >= p {
				pinned[r] = true
			}
		})
	}

	slotOf := make([]int, n)
	for i := range slotOf {
		slotOf[i] = -1
	}
	private := make([]bool, n+1) // per-slot: owned by a pinned register
	for r := 0; r < p; r++ {
		slotOf[r] = r
	}
	// Pinned registers first, so their slots are reserved before any
	// sharing decision is made.
	nextPrivate := p
	for r := p; r < n; r++ {
		if appears[r] && pinned[r] {
			slotOf[r] = nextPrivate
			private[nextPrivate] = true
			nextPrivate++
		}
	}
	taken := make([]bool, n+1) // scratch: slots conflicting with r
	for r := p; r < n; r++ {
		if !appears[r] || pinned[r] {
			continue
		}
		for i := range taken {
			taken[i] = false
		}
		if adj[r] != nil {
			adj[r].ForEach(func(q int) {
				if slotOf[q] >= 0 {
					taken[slotOf[q]] = true
				}
			})
		}
		s := 0
		for private[s] || taken[s] {
			s++
		}
		slotOf[r] = s
	}

	newNum := p
	identity := true
	for r := 0; r < n; r++ {
		if slotOf[r] < 0 {
			continue // register no longer appears; its number is freed
		}
		if slotOf[r]+1 > newNum {
			newNum = slotOf[r] + 1
		}
		if slotOf[r] != r {
			identity = false
		}
	}
	if identity && newNum == n {
		return
	}
	remap := func(r ir.Reg) ir.Reg { return ir.Reg(slotOf[r]) }
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			in.MapRegs(remap)
		}
	}
	c.RegsSaved += n - newNum
	f.NumRegs = newNum
	f.Touch()

	// Coalesced copies are now self-copies; drop them.
	c.dropMovs(f, func(in *ir.Instr) bool { return in.Op == ir.OpMov && in.Dst == in.A })
}

// dropMovs filters every block with keep-complement sel, counting the
// removals and touching the function when anything changed.
func (c *CopyCoalesce) dropMovs(f *ir.Function, sel func(*ir.Instr) bool) {
	removed := 0
	for _, b := range f.Blocks {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if sel(in) {
				removed++
			} else {
				kept = append(kept, in)
			}
		}
		b.Instrs = kept
	}
	if removed > 0 {
		c.CopiesRemoved += removed
		f.Touch()
	}
}

package passes

import (
	"math"

	"repro/internal/ir"
)

// ConstFold performs block-local constant folding: within each basic
// block, registers whose most recent definition is a constant are
// propagated into arithmetic, comparisons, and moves, which then become
// constants themselves. (Block-local is sound without SSA: a register's
// constness holds from its definition to its next redefinition.)
type ConstFold struct {
	Folded int
}

// Name implements Pass.
func (c *ConstFold) Name() string { return "const-fold" }

// Run implements Pass.
func (c *ConstFold) Run(f *ir.Function) error {
	for _, b := range f.Blocks {
		known := make(map[ir.Reg]uint64)
		for _, in := range b.Instrs {
			c.foldInstr(in, known)
			// Update constness after the instruction executes.
			switch in.Op {
			case ir.OpConst:
				known[in.Dst] = uint64(in.Imm)
			case ir.OpFConst:
				known[in.Dst] = math.Float64bits(in.FImm)
			default:
				if d := in.Defs(); d != ir.NoReg {
					delete(known, d)
				}
			}
		}
	}
	return nil
}

// foldInstr rewrites in to a constant if its operands are known.
func (c *ConstFold) foldInstr(in *ir.Instr, known map[ir.Reg]uint64) {
	k := func(r ir.Reg) (uint64, bool) {
		v, ok := known[r]
		return v, ok
	}
	setConst := func(v uint64) {
		in.Op = ir.OpConst
		in.Imm = int64(v)
		in.A, in.B = ir.NoReg, ir.NoReg
		c.Folded++
	}
	switch in.Op {
	case ir.OpMov:
		if v, ok := k(in.A); ok {
			setConst(v)
		}
	case ir.OpAdd, ir.OpSub, ir.OpMul, ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr:
		a, okA := k(in.A)
		b, okB := k(in.B)
		if !okA || !okB {
			return
		}
		var v uint64
		switch in.Op {
		case ir.OpAdd:
			v = uint64(int64(a) + int64(b))
		case ir.OpSub:
			v = uint64(int64(a) - int64(b))
		case ir.OpMul:
			v = uint64(int64(a) * int64(b))
		case ir.OpAnd:
			v = a & b
		case ir.OpOr:
			v = a | b
		case ir.OpXor:
			v = a ^ b
		case ir.OpShl:
			v = a << (b & 63)
		case ir.OpShr:
			v = a >> (b & 63)
		}
		setConst(v)
	case ir.OpDiv, ir.OpRem:
		a, okA := k(in.A)
		b, okB := k(in.B)
		if !okA || !okB || int64(b) == 0 {
			return // preserve the runtime division-by-zero fault
		}
		if in.Op == ir.OpDiv {
			setConst(uint64(int64(a) / int64(b)))
		} else {
			setConst(uint64(int64(a) % int64(b)))
		}
	case ir.OpICmp:
		a, okA := k(in.A)
		b, okB := k(in.B)
		if !okA || !okB {
			return
		}
		var r bool
		ai, bi := int64(a), int64(b)
		switch in.Pred {
		case ir.PredEQ:
			r = ai == bi
		case ir.PredNE:
			r = ai != bi
		case ir.PredLT:
			r = ai < bi
		case ir.PredLE:
			r = ai <= bi
		case ir.PredGT:
			r = ai > bi
		case ir.PredGE:
			r = ai >= bi
		}
		if r {
			setConst(1)
		} else {
			setConst(0)
		}
	}
}

// DCE removes pure instructions whose results are never used anywhere in
// the function, iterating to a fixpoint. Memory operations, calls,
// intrinsics, and terminators are never removed.
//
// Deprecated: DCE is the local, syntactic baseline. GlobalDCE subsumes
// it — liveness-based, so it also deletes partially-dead definitions,
// unreachable blocks, and (given a module handle) dead calls to pure
// bounded functions — and has replaced it in every shipped pipeline.
// DCE is retained only as the oracle for the subsumption regression
// test.
type DCE struct {
	Removed int
}

// Name implements Pass.
func (d *DCE) Name() string { return "dce" }

// pure reports whether the instruction has no side effects.
func pure(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpFConst, ir.OpMov, ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpICmp, ir.OpFCmp:
		return true
	}
	// Div/Rem can fault (divide by zero); loads are kept because CARAT
	// instrumentation may observe them.
	return false
}

// Run implements Pass.
func (d *DCE) Run(f *ir.Function) error {
	for {
		used := make(map[ir.Reg]bool)
		var buf []ir.Reg
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				buf = in.Uses(buf[:0])
				for _, r := range buf {
					used[r] = true
				}
			}
		}
		removed := 0
		for _, b := range f.Blocks {
			var out []*ir.Instr
			for _, in := range b.Instrs {
				if pure(in.Op) && in.Dst != ir.NoReg && !used[in.Dst] {
					removed++
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		d.Removed += removed
		if removed == 0 {
			return nil
		}
	}
}

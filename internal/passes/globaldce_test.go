package passes

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// runMain executes m's entry function and returns the result.
func runMain(t *testing.T, m *ir.Module, entry string, args ...uint64) uint64 {
	t.Helper()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call(entry, args...)
	if err != nil {
		t.Fatalf("%v\n%s", err, ir.Format(m.Funcs[entry]))
	}
	return got
}

// TestGlobalDCESubsumesLocalDCE: on every shipped CARAT kernel and a
// sample of fuzz programs, the liveness-based GlobalDCE removes at
// least as many instructions as the local syntactic DCE (which is
// retained only as the baseline for this test), and both preserve the
// kernel checksum.
func TestGlobalDCESubsumesLocalDCE(t *testing.T) {
	type prog struct {
		name  string
		build func() *ir.Module
		entry string
	}
	var progs []prog
	for _, k := range workloads.CARATSuite() {
		progs = append(progs, prog{name: k.Name, build: k.Build, entry: k.Entry})
	}
	for seed := uint64(0); seed < 10; seed++ {
		s := seed
		progs = append(progs, prog{
			name:  "fuzz",
			build: func() *ir.Module { return genProgram(s) },
			entry: "main",
		})
	}
	for _, p := range progs {
		want := runMain(t, p.build(), p.entry)

		local := p.build()
		ld := &DCE{}
		if err := RunAll(local, ld); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		global := p.build()
		gd := &GlobalDCE{Mod: global}
		if err := RunAll(global, gd); err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if gd.Removed < ld.Removed {
			t.Errorf("%s: GlobalDCE removed %d < local DCE's %d", p.name, gd.Removed, ld.Removed)
		}
		if got := runMain(t, global, p.entry); got != want {
			t.Errorf("%s: GlobalDCE changed checksum: %d != %d", p.name, got, want)
		}
	}
}

// TestGlobalDCEPartiallyDead: a side-effect-free write that every path
// overwrites before reading is invisible to the syntactic sweep (the
// register is used elsewhere) but removed by liveness.
func TestGlobalDCEPartiallyDead(t *testing.T) {
	build := func() (*ir.Module, *ir.Function) {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 1)
		b := ir.NewBuilder(f)
		v := b.Add(b.Param(0), b.Const(5)) // dead: v is rewritten below before its read
		b.MovTo(v, b.Mul(b.Param(0), b.Const(3)))
		b.Ret(v)
		return m, f
	}

	m, f := build()
	want := runMain(t, m, "f", 7)

	ld := &DCE{}
	if err := RunAll(m, ld); err != nil {
		t.Fatal(err)
	}
	if ld.Removed != 0 {
		t.Fatalf("local DCE removed %d partially-dead instructions (should see none)", ld.Removed)
	}

	m2, f2 := build()
	gd := &GlobalDCE{}
	if err := RunAll(m2, gd); err != nil {
		t.Fatal(err)
	}
	// The add and its const operand both die.
	if gd.Removed < 2 {
		t.Fatalf("GlobalDCE removed %d, want >= 2 (partially-dead add + const)", gd.Removed)
	}
	if f2.InstrCount() >= f.InstrCount() {
		t.Fatal("GlobalDCE did not shrink the function past local DCE")
	}
	if got := runMain(t, m2, "f", 7); got != want {
		t.Fatalf("semantics changed: %d != %d", got, want)
	}
}

// TestGlobalDCERemovesUnreachableBlocks: blocks severed from the entry
// — including mutually-referencing dead cycles — are deleted.
func TestGlobalDCERemovesUnreachableBlocks(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	deadA := b.Block("deadA")
	deadB := b.Block("deadB")
	b.Ret(b.Const(42))
	b.SetBlock(deadA)
	b.Jmp(deadB)
	b.SetBlock(deadB)
	b.Jmp(deadA) // cycle: both blocks reference each other

	gd := &GlobalDCE{}
	if err := RunAll(m, gd); err != nil {
		t.Fatal(err)
	}
	if gd.BlocksRemoved != 2 {
		t.Fatalf("removed %d blocks, want 2", gd.BlocksRemoved)
	}
	if len(f.Blocks) != 1 {
		t.Fatalf("%d blocks remain, want 1", len(f.Blocks))
	}
	if got := runMain(t, m, "f"); got != 42 {
		t.Fatalf("got %d", got)
	}
}

// TestGlobalDCEDeadCalls: a call whose result is unused is deleted
// exactly when the purity summary proves the callee DCE-safe.
func TestGlobalDCEDeadCalls(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		pure := m.NewFunction("pure_fn", 1)
		b := ir.NewBuilder(pure)
		b.Ret(b.Mul(b.Param(0), b.Const(2)))

		impure := m.NewFunction("impure_fn", 0)
		b = ir.NewBuilder(impure)
		buf := b.Alloc(8)
		b.Free(buf)
		b.Ret(ir.NoReg)

		f := m.NewFunction("main", 0)
		b = ir.NewBuilder(f)
		b.Call("pure_fn", b.Const(3)) // result dead, callee DCE-safe
		b.Call("impure_fn")           // result dead, callee allocates: must stay
		b.Ret(b.Const(7))
		return m
	}

	m := build()
	gd := &GlobalDCE{Mod: m}
	if err := RunAll(m, gd); err != nil {
		t.Fatal(err)
	}
	if gd.CallsRemoved != 1 {
		t.Fatalf("removed %d calls, want 1 (the pure one)", gd.CallsRemoved)
	}
	main := m.Funcs["main"]
	if main.CountOp(ir.OpCall) != 1 {
		t.Fatalf("main has %d calls, want 1", main.CountOp(ir.OpCall))
	}
	if got := runMain(t, m, "main"); got != 7 {
		t.Fatalf("got %d", got)
	}

	// Without the module handle there are no purity facts: every call
	// stays.
	m2 := build()
	gd2 := &GlobalDCE{}
	if err := RunAll(m2, gd2); err != nil {
		t.Fatal(err)
	}
	if gd2.CallsRemoved != 0 || m2.Funcs["main"].CountOp(ir.OpCall) != 2 {
		t.Fatal("calls removed without purity facts")
	}
}

// TestGlobalDCEKeepsSideEffects mirrors the local-DCE guarantee: heap
// traffic survives even when results are dead.
func TestGlobalDCEKeepsSideEffects(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(8)
	b.Store(buf, 0, b.Const(7))
	b.Load(buf, 0) // dead result, load kept (memory hooks observe it)
	b.Free(buf)
	b.Ret(ir.NoReg)

	if err := RunAll(m, &GlobalDCE{Mod: m}); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpStore) != 1 || f.CountOp(ir.OpAlloc) != 1 ||
		f.CountOp(ir.OpLoad) != 1 || f.CountOp(ir.OpFree) != 1 {
		t.Fatal("side-effecting ops removed")
	}
}

package passes

import (
	"testing"

	"repro/internal/ir"
)

// fuzzPipelines enumerates the pass pipelines the differential fuzzer
// compares against pristine execution. The inline pipeline is built per
// module (Inline needs the module handle), so it is index 0 here and
// constructed in the driver.
var fuzzPipelines = []struct {
	name string
	mk   func() []Pass
}{
	{"inline", nil}, // special-cased: &Inline{Mod: m} then opt
	{"opt", func() []Pass { return []Pass{&ConstFold{}, &DCE{}} }},
	{"carat", func() []Pass { return []Pass{&CARATInject{}, &CARATHoist{}} }},
	{"carat-elim", func() []Pass { return []Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}} }},
	{"carat-elim-nohoist", func() []Pass { return []Pass{&CARATInject{}, &CARATElim{}} }},
	{"timing", func() []Pass { return []Pass{&TimingInject{TargetCycles: 500, ChunkLoops: true}} }},
	{"poll", func() []Pass { return []Pass{&TimingInject{TargetCycles: 800, Op: ir.OpPoll}} }},
	{"everything", func() []Pass {
		return []Pass{
			&ConstFold{}, &DCE{}, &CARATInject{}, &CARATHoist{},
			&TimingInject{TargetCycles: 700, ChunkLoops: true},
		}
	}},
}

// FuzzDifferentialPipelines is the coverage-guided form of the
// quick.Check differential test above: the fuzzer picks a program seed
// and a pipeline, and the transformed program must produce exactly the
// pristine program's checksum under the full CARAT runtime (with zero
// protection violations, enforced inside runFuzz). The checked-in
// corpus (testdata/fuzz/FuzzDifferentialPipelines) pins one seed per
// pipeline so the differential runs on every plain `go test` too.
func FuzzDifferentialPipelines(f *testing.F) {
	for i := range fuzzPipelines {
		f.Add(uint64(i)*7+1, uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed uint64, pipe uint8) {
		p := fuzzPipelines[int(pipe)%len(fuzzPipelines)]
		want := runFuzz(t, genProgram(seed))
		m := genProgram(seed)
		var passes []Pass
		if p.mk == nil {
			passes = []Pass{&Inline{Mod: m}, &ConstFold{}, &DCE{}}
		} else {
			passes = p.mk()
		}
		if err := RunAll(m, passes...); err != nil {
			t.Fatalf("seed %d pipeline %s: %v", seed, p.name, err)
		}
		if got := runFuzz(t, m); got != want {
			t.Fatalf("seed %d pipeline %s: checksum %d != %d", seed, p.name, got, want)
		}
	})
}

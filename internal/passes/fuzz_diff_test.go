package passes

import (
	"testing"

	"repro/internal/ir"
)

// fuzzPipelines enumerates the pass pipelines the differential fuzzer
// compares against pristine execution. Each constructor receives the
// module handle (Inline and GlobalDCE need it). New pipelines must be
// appended at the end: the fuzzer selects by index modulo the table
// length, so inserting in the middle would silently re-point checked-in
// corpus entries at different pipelines.
var fuzzPipelines = []struct {
	name string
	mk   func(m *ir.Module) []Pass
	// fullDiff additionally runs the transformed module on the fused
	// compiled engine AND the tree-walking reference engine under the
	// full CARAT runtime, comparing ret, error, Stats, and the final
	// heap snapshot bit for bit (the superinstruction differential).
	fullDiff bool
}{
	{name: "inline", mk: func(m *ir.Module) []Pass {
		return []Pass{&Inline{Mod: m}, &ConstFold{}, &GlobalDCE{Mod: m}}
	}},
	{name: "opt", mk: func(m *ir.Module) []Pass { return []Pass{&ConstFold{}, &GlobalDCE{Mod: m}} }},
	{name: "carat", mk: func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}} }},
	{name: "carat-elim", mk: func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}} }},
	{name: "carat-elim-nohoist", mk: func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATElim{}} }},
	{name: "timing", mk: func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 500, ChunkLoops: true}} }},
	{name: "poll", mk: func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 800, Op: ir.OpPoll}} }},
	{name: "everything", mk: func(m *ir.Module) []Pass {
		return []Pass{
			&ConstFold{}, &GlobalDCE{Mod: m}, &CARATInject{}, &CARATHoist{},
			&TimingInject{TargetCycles: 700, ChunkLoops: true},
		}
	}},
	// Appended by the analysis-driven optimizer work (keep order).
	{name: "global-opt", mk: StdOptimization},
	{name: "licm", mk: func(m *ir.Module) []Pass { return []Pass{&LICM{}} }},
	{name: "coalesce", mk: func(m *ir.Module) []Pass { return []Pass{&CopyCoalesce{}} }},
	{name: "opt-carat", mk: func(m *ir.Module) []Pass {
		return append(StdOptimization(m),
			&CARATInject{}, &CARATHoist{}, &CARATElim{})
	}},
	// The reverse composition: optimize the already-instrumented module,
	// so guards and tracking calls are roots the optimizer must preserve
	// (this is the carat experiment's "opt" configuration).
	{name: "carat-opt", mk: func(m *ir.Module) []Pass {
		return append([]Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}},
			StdOptimization(m)...)
	}},
	// Appended by the superinstruction-fusion work (keep order). These
	// pipelines pin the fused engine against the reference engine on
	// full observable state, over the shapes the fuser targets: raw
	// generator output, the optimized form (mov chains coalesced, so
	// different pairs survive to fuse), and the fully CARAT-instrumented
	// form (every access guarded → guard+load / guard+store pairs).
	{name: "fused", mk: func(m *ir.Module) []Pass { return nil }, fullDiff: true},
	{name: "opt-fused", mk: func(m *ir.Module) []Pass { return StdOptimization(m) }, fullDiff: true},
	{name: "fused-carat", mk: func(m *ir.Module) []Pass { return []Pass{&CARATInject{}} }, fullDiff: true},
}

// FuzzDifferentialPipelines is the coverage-guided form of the
// quick.Check differential test above: the fuzzer picks a program seed
// and a pipeline, and the transformed program must produce exactly the
// pristine program's checksum under the full CARAT runtime (with zero
// protection violations, enforced inside runFuzz). The checked-in
// corpus (testdata/fuzz/FuzzDifferentialPipelines) pins one seed per
// pipeline so the differential runs on every plain `go test` too.
func FuzzDifferentialPipelines(f *testing.F) {
	for i := range fuzzPipelines {
		f.Add(uint64(i)*7+1, uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed uint64, pipe uint8) {
		p := fuzzPipelines[int(pipe)%len(fuzzPipelines)]
		want := runFuzz(t, genProgram(seed))
		m := genProgram(seed)
		if err := RunAll(m, p.mk(m)...); err != nil {
			t.Fatalf("seed %d pipeline %s: %v", seed, p.name, err)
		}
		if got := runFuzz(t, m); got != want {
			t.Fatalf("seed %d pipeline %s: checksum %d != %d", seed, p.name, got, want)
		}
		if p.fullDiff {
			runFuzzEngineDiff(t, p.name, seed, m)
		}
	})
}

package passes

import (
	"testing"

	"repro/internal/ir"
)

// fuzzPipelines enumerates the pass pipelines the differential fuzzer
// compares against pristine execution. Each constructor receives the
// module handle (Inline and GlobalDCE need it). New pipelines must be
// appended at the end: the fuzzer selects by index modulo the table
// length, so inserting in the middle would silently re-point checked-in
// corpus entries at different pipelines.
var fuzzPipelines = []struct {
	name string
	mk   func(m *ir.Module) []Pass
}{
	{"inline", func(m *ir.Module) []Pass {
		return []Pass{&Inline{Mod: m}, &ConstFold{}, &GlobalDCE{Mod: m}}
	}},
	{"opt", func(m *ir.Module) []Pass { return []Pass{&ConstFold{}, &GlobalDCE{Mod: m}} }},
	{"carat", func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}} }},
	{"carat-elim", func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}} }},
	{"carat-elim-nohoist", func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATElim{}} }},
	{"timing", func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 500, ChunkLoops: true}} }},
	{"poll", func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 800, Op: ir.OpPoll}} }},
	{"everything", func(m *ir.Module) []Pass {
		return []Pass{
			&ConstFold{}, &GlobalDCE{Mod: m}, &CARATInject{}, &CARATHoist{},
			&TimingInject{TargetCycles: 700, ChunkLoops: true},
		}
	}},
	// Appended by the analysis-driven optimizer work (keep order).
	{"global-opt", StdOptimization},
	{"licm", func(m *ir.Module) []Pass { return []Pass{&LICM{}} }},
	{"coalesce", func(m *ir.Module) []Pass { return []Pass{&CopyCoalesce{}} }},
	{"opt-carat", func(m *ir.Module) []Pass {
		return append(StdOptimization(m),
			&CARATInject{}, &CARATHoist{}, &CARATElim{})
	}},
	// The reverse composition: optimize the already-instrumented module,
	// so guards and tracking calls are roots the optimizer must preserve
	// (this is the carat experiment's "opt" configuration).
	{"carat-opt", func(m *ir.Module) []Pass {
		return append([]Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}},
			StdOptimization(m)...)
	}},
}

// FuzzDifferentialPipelines is the coverage-guided form of the
// quick.Check differential test above: the fuzzer picks a program seed
// and a pipeline, and the transformed program must produce exactly the
// pristine program's checksum under the full CARAT runtime (with zero
// protection violations, enforced inside runFuzz). The checked-in
// corpus (testdata/fuzz/FuzzDifferentialPipelines) pins one seed per
// pipeline so the differential runs on every plain `go test` too.
func FuzzDifferentialPipelines(f *testing.F) {
	for i := range fuzzPipelines {
		f.Add(uint64(i)*7+1, uint8(i))
	}
	f.Fuzz(func(t *testing.T, seed uint64, pipe uint8) {
		p := fuzzPipelines[int(pipe)%len(fuzzPipelines)]
		want := runFuzz(t, genProgram(seed))
		m := genProgram(seed)
		if err := RunAll(m, p.mk(m)...); err != nil {
			t.Fatalf("seed %d pipeline %s: %v", seed, p.name, err)
		}
		if got := runFuzz(t, m); got != want {
			t.Fatalf("seed %d pipeline %s: checksum %d != %d", seed, p.name, got, want)
		}
	})
}

package passes

import (
	"reflect"
	"testing"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
)

// attachRuntime wires the full CARAT runtime (plus timing/poll hooks)
// to an interpreter, exactly as runFuzz does, and returns the table so
// the caller can check for violations.
func attachRuntime(ip *interp.Interp) *carat.Table {
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	ip.Hooks.YieldCheck = func(int64) int64 { return 6 }
	ip.Hooks.Poll = func() int64 { return 3 }
	return tb
}

// TestDifferentialFastVsReference runs fuzz-generated modules — both
// pristine and through the instrumentation pipelines — on the compiled
// fast path and on the reference tree-walking engine, and requires
// bit-identical results: return value, complete Stats, and final heap
// contents.
func TestDifferentialFastVsReference(t *testing.T) {
	pipelines := []struct {
		name string
		mk   func(m *ir.Module) []Pass
	}{
		{"pristine", nil},
		{"opt", func(m *ir.Module) []Pass { return []Pass{&ConstFold{}, &GlobalDCE{Mod: m}} }},
		{"global-opt", StdOptimization},
		{"coalesce", func(m *ir.Module) []Pass { return []Pass{&CopyCoalesce{}} }},
		{"licm", func(m *ir.Module) []Pass { return []Pass{&LICM{}} }},
		{"carat", func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}} }},
		{"carat-elim", func(m *ir.Module) []Pass { return []Pass{&CARATInject{}, &CARATHoist{}, &CARATElim{}} }},
		{"timing", func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 500, ChunkLoops: true}} }},
		{"poll", func(m *ir.Module) []Pass { return []Pass{&TimingInject{TargetCycles: 800, Op: ir.OpPoll}} }},
	}
	seeds := 12
	if testing.Short() {
		seeds = 4
	}
	for seed := uint64(0); seed < uint64(seeds); seed++ {
		for _, p := range pipelines {
			m := genProgram(seed)
			if p.mk != nil {
				if err := RunAll(m, p.mk(m)...); err != nil {
					t.Fatalf("seed %d %s: %v", seed, p.name, err)
				}
			}

			run := func(reference bool) (uint64, error, interp.Stats, map[mem.Addr]uint64) {
				ip, err := interp.New(m)
				if err != nil {
					t.Fatal(err)
				}
				attachRuntime(ip)
				var ret uint64
				if reference {
					ret, err = ip.ReferenceCall("main")
				} else {
					ret, err = ip.Call("main")
				}
				return ret, err, ip.Stats, ip.Heap.Snapshot()
			}

			fRet, fErr, fStats, fHeap := run(false)
			rRet, rErr, rStats, rHeap := run(true)

			if (fErr == nil) != (rErr == nil) ||
				(fErr != nil && fErr.Error() != rErr.Error()) {
				t.Fatalf("seed %d %s: errors diverge: fast=%v ref=%v", seed, p.name, fErr, rErr)
			}
			if fRet != rRet {
				t.Fatalf("seed %d %s: return %d != %d", seed, p.name, fRet, rRet)
			}
			if fStats != rStats {
				t.Fatalf("seed %d %s: stats diverge\nfast: %+v\nref:  %+v", seed, p.name, fStats, rStats)
			}
			if !reflect.DeepEqual(fHeap, rHeap) {
				t.Fatalf("seed %d %s: final heaps diverge (%d vs %d live words)",
					seed, p.name, len(fHeap), len(rHeap))
			}
		}
	}
}

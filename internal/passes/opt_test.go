package passes

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

func TestConstFoldArithmetic(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	x := b.Const(6)
	y := b.Const(7)
	z := b.Mul(x, y)          // foldable -> 42
	w := b.Add(z, b.Const(0)) // foldable -> 42
	b.Ret(w)
	cf := &ConstFold{}
	if err := RunAll(m, cf); err != nil {
		t.Fatal(err)
	}
	if cf.Folded < 2 {
		t.Fatalf("folded = %d", cf.Folded)
	}
	ip, _ := interp.New(m)
	got, err := ip.Call("f")
	if err != nil || got != 42 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestConstFoldPreservesDivByZeroFault(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	b.Ret(b.Div(b.Const(5), b.Const(0)))
	if err := RunAll(m, &ConstFold{}); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	if _, err := ip.Call("f"); err == nil {
		t.Fatal("fold must not hide the division fault")
	}
}

func TestConstFoldStopsAtRedefinition(t *testing.T) {
	// v = 5; v = param-derived; w = v+1 must NOT fold to 6.
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	v := b.Const(5)
	b.MovTo(v, b.Param(0)) // v now unknown
	one := b.Const(1)
	b.Ret(b.Add(v, one))
	if err := RunAll(m, &ConstFold{}); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	got, _ := ip.Call("f", 100)
	if got != 101 {
		t.Fatalf("got %d; fold used stale constant", got)
	}
}

func TestConstFoldICmp(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	c := b.ICmp(ir.PredLT, b.Const(3), b.Const(9))
	b.Ret(c)
	cf := &ConstFold{}
	if err := RunAll(m, cf); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpICmp) != 0 {
		t.Fatal("icmp not folded")
	}
	ip, _ := interp.New(m)
	if got, _ := ip.Call("f"); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestDCERemovesDeadCode(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	live := b.Const(1)
	dead1 := b.Const(99)
	dead2 := b.Add(dead1, dead1) // chain: removing dead2 kills dead1 too
	_ = dead2
	b.Ret(live)
	before := f.InstrCount()
	d := &DCE{}
	if err := RunAll(m, d); err != nil {
		t.Fatal(err)
	}
	if d.Removed != 2 {
		t.Fatalf("removed = %d, want 2 (transitive)", d.Removed)
	}
	if f.InstrCount() != before-2 {
		t.Fatal("instruction count wrong")
	}
	ip, _ := interp.New(m)
	if got, _ := ip.Call("f"); got != 1 {
		t.Fatalf("got %d", got)
	}
}

func TestDCEKeepsSideEffects(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(8) // result used by store
	v := b.Const(7)
	b.Store(buf, 0, v)
	dead := b.Load(buf, 0) // load result unused, but loads are kept
	_ = dead
	b.Ret(ir.NoReg)
	d := &DCE{}
	if err := RunAll(m, d); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpStore) != 1 || f.CountOp(ir.OpAlloc) != 1 || f.CountOp(ir.OpLoad) != 1 {
		t.Fatal("side-effecting ops removed")
	}
}

func TestOptimizePipelinePreservesKernelSemantics(t *testing.T) {
	// Full pipeline over the walk kernel: fold + global DCE + coalesce +
	// LICM + CARAT + timing, identical result.
	m := arrayWalk()
	if err := RunAll(m, append(StdOptimization(m), &CARATInject{}, &CARATHoist{},
		&TimingInject{TargetCycles: 2000, ChunkLoops: true})...); err != nil {
		t.Fatal(err)
	}
	got, _, tb := runWalk(t, m)
	if got != walkWant {
		t.Fatalf("got %d, want %d", got, walkWant)
	}
	if tb.Violations != 0 {
		t.Fatal("violations")
	}
}

package passes

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
)

// callerCalleeModule: square(x) = x*x; main() = square(6) + square(7).
func callerCalleeModule() *ir.Module {
	m := ir.NewModule("t")
	sq := m.NewFunction("square", 1)
	sb := ir.NewBuilder(sq)
	x := sb.Param(0)
	sb.Ret(sb.Mul(x, x))

	main := m.NewFunction("main", 0)
	b := ir.NewBuilder(main)
	a := b.Call("square", b.Const(6))
	c := b.Call("square", b.Const(7))
	b.Ret(b.Add(a, c))
	return m
}

func TestInlineReplacesCalls(t *testing.T) {
	m := callerCalleeModule()
	inl := &Inline{Mod: m}
	if err := RunAll(m, inl); err != nil {
		t.Fatal(err)
	}
	if inl.Inlined != 2 {
		t.Fatalf("inlined = %d, want 2", inl.Inlined)
	}
	if m.Funcs["main"].CountOp(ir.OpCall) != 0 {
		t.Fatal("calls remain in main")
	}
	ip, _ := interp.New(m)
	got, err := ip.Call("main")
	if err != nil {
		t.Fatal(err)
	}
	if got != 36+49 {
		t.Fatalf("got %d, want 85", got)
	}
	if ip.Stats.Calls != 0 {
		t.Fatalf("dynamic calls = %d after inlining", ip.Stats.Calls)
	}
}

func TestInlineRefusesRecursion(t *testing.T) {
	m := ir.NewModule("t")
	fib := m.NewFunction("fib", 1)
	b := ir.NewBuilder(fib)
	n := b.Param(0)
	two := b.Const(2)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))

	inl := &Inline{Mod: m}
	if err := RunAll(m, inl); err != nil {
		t.Fatal(err)
	}
	if inl.Inlined != 0 {
		t.Fatal("recursive function was inlined")
	}
	ip, _ := interp.New(m)
	if got, _ := ip.Call("fib", 10); got != 55 {
		t.Fatalf("fib(10) = %d", got)
	}
}

func TestInlineRespectsSizeBound(t *testing.T) {
	m := callerCalleeModule()
	inl := &Inline{Mod: m, MaxCalleeInstrs: 1} // square has 2+ instrs
	if err := RunAll(m, inl); err != nil {
		t.Fatal(err)
	}
	if inl.Inlined != 0 {
		t.Fatal("oversized callee inlined")
	}
}

func TestInlineTransitive(t *testing.T) {
	// main -> f -> g: repeated rounds flatten the whole chain.
	m := ir.NewModule("t")
	g := m.NewFunction("g", 1)
	gb := ir.NewBuilder(g)
	gb.Ret(gb.Add(gb.Param(0), gb.Const(10)))
	f := m.NewFunction("f", 1)
	fb := ir.NewBuilder(f)
	fb.Ret(fb.Call("g", fb.Mul(fb.Param(0), fb.Const(2))))
	main := m.NewFunction("main", 0)
	b := ir.NewBuilder(main)
	b.Ret(b.Call("f", b.Const(5)))

	inl := &Inline{Mod: m}
	if err := RunAll(m, inl); err != nil {
		t.Fatal(err)
	}
	if m.Funcs["main"].CountOp(ir.OpCall) != 0 {
		t.Fatal("chain not fully inlined in main")
	}
	ip, _ := interp.New(m)
	if got, _ := ip.Call("main"); got != 20 {
		t.Fatalf("got %d, want 20", got)
	}
}

func TestInlineVoidCallee(t *testing.T) {
	m := ir.NewModule("t")
	sink := m.NewFunction("sink", 1)
	sb := ir.NewBuilder(sink)
	buf := sb.Alloc(8)
	sb.Store(buf, 0, sb.Param(0))
	sb.Free(buf)
	sb.Ret(ir.NoReg)
	main := m.NewFunction("main", 0)
	b := ir.NewBuilder(main)
	b.Call("sink", b.Const(9))
	b.Ret(b.Const(1))

	inl := &Inline{Mod: m}
	if err := RunAll(m, inl); err != nil {
		t.Fatal(err)
	}
	if inl.Inlined != 1 {
		t.Fatal("void callee not inlined")
	}
	ip, _ := interp.New(m)
	if got, err := ip.Call("main"); err != nil || got != 1 {
		t.Fatalf("got %d, %v", got, err)
	}
}

func TestInlineComposesWithCARAT(t *testing.T) {
	m := callerCalleeModule()
	if err := RunAll(m, &Inline{Mod: m}, &ConstFold{}, &GlobalDCE{Mod: m},
		&CARATInject{}, &CARATHoist{}); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	if got, err := ip.Call("main"); err != nil || got != 85 {
		t.Fatalf("got %d, %v", got, err)
	}
}

package passes

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// GlobalDCE is liveness-based dead-code elimination across the whole
// CFG. It subsumes the local syntactic DCE sweep in three ways:
//
//   - a side-effect-free definition is deleted when the register is
//     dead at that point even if other parts of the function still read
//     the register through a later definition (partially-dead stores);
//   - unreachable blocks — including dead cycles that reference each
//     other and so survive ir.Verify — are removed outright;
//   - with a module handle, calls whose result is unused are deleted
//     when the interprocedural purity summary proves the callee
//     DCE-safe (pure, cannot fault, provably terminates).
//
// Deleting instructions changes cycle/step counts relative to the
// unoptimized program (that is the point) but never the computed
// values, the heap, or the CARAT runtime's observations; the
// differential fuzzer holds both engines to bit-identical behavior on
// the transformed module and to the pristine module's checksum.
type GlobalDCE struct {
	// Mod, when set, enables purity-based dead-call elimination.
	Mod *ir.Module

	// Removed counts deleted instructions; BlocksRemoved counts deleted
	// unreachable blocks; CallsRemoved is the subset of Removed that
	// were calls to DCE-safe functions.
	Removed       int
	BlocksRemoved int
	CallsRemoved  int

	purity *analysis.Purity
}

// Name implements Pass.
func (d *GlobalDCE) Name() string { return "global-dce" }

// Run implements Pass.
func (d *GlobalDCE) Run(f *ir.Function) error {
	if d.Mod != nil && d.purity == nil {
		// Purity summaries stay conservative under this pass's own
		// edits (it only ever deletes effect-free code), so computing
		// them once per module is sound.
		d.purity = analysis.AnalyzePurity(d.Mod)
	}
	for {
		info := ir.AnalyzeCFG(f)

		// Drop unreachable blocks first: they contribute nothing to
		// liveness and keeping them would force conservative answers.
		if len(info.RPO) < len(f.Blocks) {
			reachable := make(map[*ir.Block]bool, len(info.RPO))
			for _, b := range info.RPO {
				reachable[b] = true
			}
			kept := f.Blocks[:0]
			for _, b := range f.Blocks {
				if reachable[b] {
					kept = append(kept, b)
				} else {
					d.BlocksRemoved++
				}
			}
			f.Blocks = kept
			f.Touch()
			info = ir.AnalyzeCFG(f)
		}

		live := analysis.Solve(info, analysis.NewLiveness(f))
		removed := 0
		for _, b := range info.RPO {
			dead := make(map[*ir.Instr]bool)
			live.Replay(b, func(_ int, in *ir.Instr, after *analysis.BitSet) {
				dst := in.Defs()
				if dst == ir.NoReg || after.Has(int(dst)) {
					return
				}
				switch {
				case analysis.SideEffectFree(in.Op):
					dead[in] = true
				case in.Op == ir.OpCall && d.purity != nil && d.purity.Summary(in.Callee).DCESafe():
					dead[in] = true
					d.CallsRemoved++
				}
			})
			if len(dead) == 0 {
				continue
			}
			kept := b.Instrs[:0]
			for _, in := range b.Instrs {
				if dead[in] {
					removed++
				} else {
					kept = append(kept, in)
				}
			}
			b.Instrs = kept
		}
		d.Removed += removed
		if removed == 0 {
			return nil
		}
		// Deleting a use can kill the definitions feeding it; iterate
		// until liveness finds nothing more.
		f.Touch()
	}
}

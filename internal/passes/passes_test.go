package passes

import (
	"testing"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
)

// arrayWalk builds: func walk(n) { a = alloc(8n); for i<n {a[i]=i};
// s=0; for i<n {s+=a[i]}; free a; ret s }
func arrayWalk() *ir.Module {
	m := ir.NewModule("t")
	f := m.NewFunction("walk", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	eight := b.Const(8)
	bytes := b.Mul(n, eight)
	arr := b.AllocReg(bytes)

	s := b.Const(0)
	b.CountingLoop(0, 64, 1, func(i ir.Reg) {
		off := b.Mul(i, eight)
		addr := b.Add(arr, off)
		b.Store(addr, 0, i)
	})
	b.CountingLoop(0, 64, 1, func(i ir.Reg) {
		off := b.Mul(i, eight)
		addr := b.Add(arr, off)
		v := b.Load(addr, 0)
		b.MovTo(s, b.Add(s, v))
	})
	b.Free(arr)
	b.Ret(s)
	return m
}

func runWalk(t *testing.T, m *ir.Module) (uint64, *interp.Interp, *carat.Table) {
	t.Helper()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	got, err := ip.Call("walk", 64)
	if err != nil {
		t.Fatal(err)
	}
	return got, ip, tb
}

const walkWant = 64 * 63 / 2

func TestInjectPreservesSemantics(t *testing.T) {
	m := arrayWalk()
	inj := &CARATInject{}
	if err := RunAll(m, inj); err != nil {
		t.Fatal(err)
	}
	got, ip, tb := runWalk(t, m)
	if got != walkWant {
		t.Fatalf("walk = %d, want %d", got, walkWant)
	}
	// One guard per executed load/store.
	if ip.Stats.Guards != ip.Stats.Loads+ip.Stats.Stores {
		t.Fatalf("guards = %d, loads+stores = %d", ip.Stats.Guards, ip.Stats.Loads+ip.Stats.Stores)
	}
	if tb.Violations != 0 {
		t.Fatalf("spurious violations: %d", tb.Violations)
	}
	if inj.GuardsInserted != 2 { // one load site, one store site
		t.Fatalf("static guards = %d", inj.GuardsInserted)
	}
}

func TestInjectTracksAllocFree(t *testing.T) {
	m := arrayWalk()
	if err := RunAll(m, &CARATInject{}); err != nil {
		t.Fatal(err)
	}
	_, _, tb := runWalk(t, m)
	if tb.Tracked != 1 {
		t.Fatalf("tracked allocs = %d", tb.Tracked)
	}
	if tb.Len() != 0 {
		t.Fatal("region not removed after free")
	}
}

// TestInjectAllocClobbersSizeReg: copy coalescing may pack an alloc's
// base into the slot of its size register (the size dies at the alloc,
// and operand reads precede the dst write). Injection must snapshot the
// size before the alloc instead of reading the clobbered register —
// otherwise the tracked region spans from the base to base+base and the
// next allocation reports a spurious overlap.
func TestInjectAllocClobbersSizeReg(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	sz := b.Const(64)
	arr := b.AllocReg(sz)
	second := b.Alloc(64)
	b.Store(arr, 0, b.Const(7))
	b.Store(second, 0, b.Const(8))
	v := b.Add(b.Load(arr, 0), b.Load(second, 0))
	b.Free(second)
	b.Free(arr)
	b.Ret(v)
	// Force the coalesced shape: the first alloc writes its own size
	// register, and every later use of the old base reads that register.
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpAlloc && in.A == sz {
				in.Dst = sz
			}
		}
	}
	for _, blk := range f.Blocks {
		for _, in := range blk.Instrs {
			in.MapUses(func(r ir.Reg) ir.Reg {
				if r == arr {
					return sz
				}
				return r
			})
		}
	}
	if err := ir.Verify(f); err != nil {
		t.Fatalf("test setup invalid: %v", err)
	}

	if err := RunAll(m, &CARATInject{}); err != nil {
		t.Fatal(err)
	}
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	got, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 15 {
		t.Fatalf("f() = %d, want 15", got)
	}
	if tb.Violations != 0 {
		t.Fatalf("spurious violations: %d", tb.Violations)
	}
	if tb.Len() != 0 {
		t.Fatalf("%d regions still tracked after frees", tb.Len())
	}
}

func TestHoistReplacesPerIterationGuards(t *testing.T) {
	m := arrayWalk()
	inj := &CARATInject{}
	hoist := &CARATHoist{}
	if err := RunAll(m, inj, hoist); err != nil {
		t.Fatal(err)
	}
	got, ip, tb := runWalk(t, m)
	if got != walkWant {
		t.Fatalf("walk = %d, want %d", got, walkWant)
	}
	if hoist.HoistedRegion != 2 {
		t.Fatalf("hoisted region guards = %d, want 2 (one per loop)", hoist.HoistedRegion)
	}
	// Dynamic guards collapse from 128 (one per access) to 2 (one per
	// loop entry).
	if ip.Stats.Guards > 4 {
		t.Fatalf("dynamic guards = %d after hoisting", ip.Stats.Guards)
	}
	if tb.Violations != 0 {
		t.Fatalf("violations = %d", tb.Violations)
	}
	if tb.RegionGuards == 0 {
		t.Fatal("region guard never executed")
	}
}

func TestHoistCutsOverhead(t *testing.T) {
	// The §IV-A claim in miniature: hoisting must massively reduce
	// guard cycles versus naive injection.
	naive := arrayWalk()
	if err := RunAll(naive, &CARATInject{}); err != nil {
		t.Fatal(err)
	}
	_, ipNaive, _ := runWalk(t, naive)

	hoisted := arrayWalk()
	if err := RunAll(hoisted, &CARATInject{}, &CARATHoist{}); err != nil {
		t.Fatal(err)
	}
	_, ipHoist, _ := runWalk(t, hoisted)

	if ipHoist.Stats.GuardCycles*10 > ipNaive.Stats.GuardCycles {
		t.Fatalf("hoisting saved too little: naive=%d hoisted=%d",
			ipNaive.Stats.GuardCycles, ipHoist.Stats.GuardCycles)
	}
}

func TestHoistInvariantAddress(t *testing.T) {
	// A loop that repeatedly stores to a fixed address: the guard's
	// register is loop-invariant, so rule 2 hoists it directly.
	m := ir.NewModule("t")
	f := m.NewFunction("walk", 1)
	b := ir.NewBuilder(f)
	buf := b.Alloc(8)
	b.CountingLoop(0, 50, 1, func(i ir.Reg) {
		b.Store(buf, 0, i)
	})
	v := b.Load(buf, 0)
	b.Free(buf)
	b.Ret(v)

	inj := &CARATInject{}
	hoist := &CARATHoist{}
	if err := RunAll(m, inj, hoist); err != nil {
		t.Fatal(err)
	}
	if hoist.HoistedInvariant != 1 {
		t.Fatalf("invariant hoists = %d, want 1", hoist.HoistedInvariant)
	}
	got, ip, tb := runWalk(t, m)
	if got != 49 {
		t.Fatalf("result = %d", got)
	}
	// 1 hoisted guard + 1 guard for the post-loop load.
	if ip.Stats.Guards != 2 {
		t.Fatalf("dynamic guards = %d", ip.Stats.Guards)
	}
	if tb.Violations != 0 {
		t.Fatal("violations")
	}
}

func TestDedupeWithinBlock(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("walk", 1)
	b := ir.NewBuilder(f)
	buf := b.Alloc(16)
	v1 := b.Load(buf, 0)
	v2 := b.Load(buf, 0) // same address: second guard redundant
	b.Ret(b.Add(v1, v2))

	inj := &CARATInject{}
	hoist := &CARATHoist{}
	if err := RunAll(m, inj, hoist); err != nil {
		t.Fatal(err)
	}
	if hoist.DedupedInBlock != 1 {
		t.Fatalf("deduped = %d, want 1", hoist.DedupedInBlock)
	}
	if f.CountOp(ir.OpGuard) != 1 {
		t.Fatalf("remaining guards = %d", f.CountOp(ir.OpGuard))
	}
}

func TestDedupeInvalidatedByRedefinition(t *testing.T) {
	// If the address register is redefined between two identical-looking
	// guards, the second must survive.
	m := ir.NewModule("t")
	f := m.NewFunction("walk", 1)
	b := ir.NewBuilder(f)
	buf := b.Alloc(16)
	v1 := b.Load(buf, 0)
	b.MovTo(buf, b.Add(buf, b.Const(8))) // buf now points elsewhere
	v2 := b.Load(buf, 0)
	b.Ret(b.Add(v1, v2))

	if err := RunAll(m, &CARATInject{}, &CARATHoist{}); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpGuard) != 2 {
		t.Fatalf("guards = %d, want 2 (redefinition blocks dedupe)", f.CountOp(ir.OpGuard))
	}
}

func TestEscapeTrackingDetectsStoredPointers(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("walk", 1)
	b := ir.NewBuilder(f)
	a1 := b.Alloc(16)
	a2 := b.Alloc(16)
	b.Store(a1, 0, a2) // store pointer a2 into a1
	x := b.Const(5)
	b.Store(a1, 8, x) // store plain int (but may-pointer analysis is conservative)
	b.Ret(ir.NoReg)

	inj := &CARATInject{}
	if err := RunAll(m, inj); err != nil {
		t.Fatal(err)
	}
	_, _, tb := runWalk(t, m)
	// The runtime filters: only the value that actually points into a
	// tracked region becomes an escape.
	if tb.Escapes() != 1 {
		t.Fatalf("escapes = %d, want 1", tb.Escapes())
	}
}

func TestSkipGuardsMode(t *testing.T) {
	m := arrayWalk()
	inj := &CARATInject{SkipGuards: true}
	if err := RunAll(m, inj); err != nil {
		t.Fatal(err)
	}
	if inj.GuardsInserted != 0 {
		t.Fatal("guards inserted despite SkipGuards")
	}
	f := m.Funcs["walk"]
	if f.CountOp(ir.OpGuard) != 0 {
		t.Fatal("guard ops present")
	}
	if f.CountOp(ir.OpTrackAlloc) != 1 {
		t.Fatal("tracking missing")
	}
}

func TestTimingInjectPlacement(t *testing.T) {
	m := arrayWalk()
	ti := &TimingInject{TargetCycles: 1000}
	if err := RunAll(m, ti); err != nil {
		t.Fatal(err)
	}
	f := m.Funcs["walk"]
	n := f.CountOp(ir.OpYieldCheck)
	// Entry + 2 loop latches = at least 3.
	if n < 3 {
		t.Fatalf("yield checks = %d, want >= 3", n)
	}
	if ti.Inserted != n {
		t.Fatal("inserted count mismatch")
	}
	// Entry block starts with a check.
	if f.Entry().Instrs[0].Op != ir.OpYieldCheck {
		t.Fatal("no entry check")
	}
}

func TestTimingChecksFireEveryIteration(t *testing.T) {
	m := arrayWalk()
	if err := RunAll(m, &TimingInject{TargetCycles: 1000}); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	checks := 0
	ip.Hooks.YieldCheck = func(elapsed int64) int64 { checks++; return 6 }
	if _, err := ip.Call("walk", 64); err != nil {
		t.Fatal(err)
	}
	// 64 iterations x 2 loops + entry = 129.
	if checks != 129 {
		t.Fatalf("dynamic checks = %d, want 129", checks)
	}
}

func TestTimingSplitsLongBlocks(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("long", 0)
	b := ir.NewBuilder(f)
	acc := b.Const(0)
	for i := 0; i < 500; i++ {
		b.MovTo(acc, b.Add(acc, acc))
	}
	b.Ret(acc)
	ti := &TimingInject{TargetCycles: 100}
	if err := RunAll(m, ti); err != nil {
		t.Fatal(err)
	}
	// ~1000 ALU-cycles of straight-line code at 100-cycle target needs
	// roughly 10 checks (plus the entry check).
	n := f.CountOp(ir.OpYieldCheck)
	if n < 8 || n > 16 {
		t.Fatalf("checks in long block = %d, want ~10", n)
	}
}

func TestTimingMaxGapBound(t *testing.T) {
	// Dynamic property: gaps between consecutive check firings must be
	// bounded by target + max straight-line stretch.
	m := arrayWalk()
	target := int64(300)
	if err := RunAll(m, &TimingInject{TargetCycles: target}); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	var last int64
	var maxGap int64
	ip.Hooks.YieldCheck = func(elapsed int64) int64 {
		if gap := elapsed - last; gap > maxGap {
			maxGap = gap
		}
		last = elapsed
		return 0
	}
	if _, err := ip.Call("walk", 64); err != nil {
		t.Fatal(err)
	}
	if maxGap > 2*target {
		t.Fatalf("max dynamic gap %d exceeds 2x target %d", maxGap, target)
	}
}

func TestPollBlendUsesOpPoll(t *testing.T) {
	m := arrayWalk()
	ti := &TimingInject{TargetCycles: 500, Op: ir.OpPoll}
	if ti.Name() != "poll-blend" {
		t.Fatal("pass name wrong")
	}
	if err := RunAll(m, ti); err != nil {
		t.Fatal(err)
	}
	f := m.Funcs["walk"]
	if f.CountOp(ir.OpPoll) == 0 {
		t.Fatal("no poll checks inserted")
	}
	if f.CountOp(ir.OpYieldCheck) != 0 {
		t.Fatal("wrong op inserted")
	}
	ip, _ := interp.New(m)
	polls := 0
	ip.Hooks.Poll = func() int64 { polls++; return 3 }
	if _, err := ip.Call("walk", 64); err != nil {
		t.Fatal(err)
	}
	if polls == 0 {
		t.Fatal("polls never executed")
	}
}

func TestRunAllVerifiesAfterEachPass(t *testing.T) {
	m := arrayWalk()
	bad := passFunc{name: "breaker", run: func(f *ir.Function) error {
		// Remove the terminator of the entry block.
		e := f.Entry()
		e.Instrs = e.Instrs[:len(e.Instrs)-1]
		return nil
	}}
	if err := RunAll(m, bad); err == nil {
		t.Fatal("expected verification failure")
	}
}

type passFunc struct {
	name string
	run  func(*ir.Function) error
}

func (p passFunc) Name() string             { return p.name }
func (p passFunc) Run(f *ir.Function) error { return p.run(f) }

func TestInstrCostCoversAllOps(t *testing.T) {
	c := interp.DefaultCosts()
	ops := []ir.Op{
		ir.OpConst, ir.OpMov, ir.OpAdd, ir.OpMul, ir.OpDiv, ir.OpFAdd,
		ir.OpFMul, ir.OpFDiv, ir.OpLoad, ir.OpStore, ir.OpAlloc, ir.OpFree,
		ir.OpCall, ir.OpBr, ir.OpJmp, ir.OpRet, ir.OpGuard, ir.OpYieldCheck,
	}
	for _, op := range ops {
		if InstrCost(&ir.Instr{Op: op}, c) <= 0 {
			t.Fatalf("op %s has non-positive cost", op)
		}
	}
}

func TestChunkedTimingReducesCheckDensity(t *testing.T) {
	// With chunking, a small-body loop fires a check every ~K
	// iterations instead of every iteration.
	run := func(chunk bool) (checks int, maxGap int64, result uint64) {
		m := arrayWalk()
		ti := &TimingInject{TargetCycles: 1000, ChunkLoops: chunk}
		if err := RunAll(m, ti); err != nil {
			t.Fatal(err)
		}
		ip, _ := interp.New(m)
		var last int64
		ip.Hooks.YieldCheck = func(elapsed int64) int64 {
			checks++
			if g := elapsed - last; g > maxGap {
				maxGap = g
			}
			last = elapsed
			return 6
		}
		result, err := ip.Call("walk", 64)
		if err != nil {
			t.Fatal(err)
		}
		return checks, maxGap, result
	}
	densChecks, _, densResult := run(false)
	chunkChecks, chunkGap, chunkResult := run(true)
	if densResult != walkWant || chunkResult != walkWant {
		t.Fatalf("semantics broken: %d / %d", densResult, chunkResult)
	}
	if chunkChecks >= densChecks/3 {
		t.Fatalf("chunking saved too little: %d vs %d checks", chunkChecks, densChecks)
	}
	if chunkChecks == 0 {
		t.Fatal("chunked checks never fired")
	}
	// Gap stays bounded: worst case is one loop's residual budget plus
	// the next loop's fresh budget (~2x target) plus static-estimate
	// error.
	if chunkGap > 3000 {
		t.Fatalf("chunked max gap %d exceeds 3x target", chunkGap)
	}
}

func TestChunkedTimingCountsLoops(t *testing.T) {
	m := arrayWalk()
	ti := &TimingInject{TargetCycles: 5000, ChunkLoops: true}
	if err := RunAll(m, ti); err != nil {
		t.Fatal(err)
	}
	if ti.LoopsChunked != 2 {
		t.Fatalf("loops chunked = %d, want 2", ti.LoopsChunked)
	}
	// The function must still verify and contain counter arithmetic.
	f := m.Funcs["walk"]
	if err := ir.Verify(f); err != nil {
		t.Fatal(err)
	}
}

func TestChunkedPollBlending(t *testing.T) {
	m := arrayWalk()
	ti := &TimingInject{TargetCycles: 2000, Op: ir.OpPoll, ChunkLoops: true}
	if err := RunAll(m, ti); err != nil {
		t.Fatal(err)
	}
	ip, _ := interp.New(m)
	polls := 0
	ip.Hooks.Poll = func() int64 { polls++; return 3 }
	if got, err := ip.Call("walk", 64); err != nil || got != walkWant {
		t.Fatalf("got %d err %v", got, err)
	}
	if polls == 0 {
		t.Fatal("no polls")
	}
}

package passes

import (
	"repro/internal/ir"
)

// Inline replaces calls to small, non-recursive functions with the
// callee's body — the classic enabler for the other interweaving passes
// ("blend the code of the application and the code of Nautilus at a low
// level, including below the level of individual functions", Fig. 1).
//
// A call is inlined when the callee is defined in the module, does not
// (transitively) call the caller or itself, and its instruction count is
// at most MaxCalleeInstrs.
type Inline struct {
	// MaxCalleeInstrs bounds the callee size (default 40).
	MaxCalleeInstrs int
	// MaxRounds bounds repeated inlining (default 4).
	MaxRounds int
	// Mod must be set: inlining needs callee bodies.
	Mod *ir.Module

	Inlined int
}

// Name implements Pass.
func (p *Inline) Name() string { return "inline" }

// Run implements Pass.
func (p *Inline) Run(f *ir.Function) error {
	if p.Mod == nil {
		return nil
	}
	maxSize := p.MaxCalleeInstrs
	if maxSize == 0 {
		maxSize = 40
	}
	rounds := p.MaxRounds
	if rounds == 0 {
		rounds = 4
	}
	for r := 0; r < rounds; r++ {
		if !p.inlineOnce(f, maxSize) {
			return nil
		}
	}
	return nil
}

// reachable reports whether, in the module call graph, a call chain
// starting from `from`'s call sites can reach `to` (so from == to only
// counts when from actually calls itself, directly or transitively).
func (p *Inline) reachable(from, to string) bool {
	seen := map[string]bool{}
	var walk func(name string) bool
	walk = func(name string) bool {
		if seen[name] {
			return false
		}
		seen[name] = true
		fn, ok := p.Mod.Funcs[name]
		if !ok {
			return false
		}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				if in.Callee == to || walk(in.Callee) {
					return true
				}
			}
		}
		return false
	}
	return walk(from)
}

// inlineOnce inlines at most one call site; returns true if it did.
func (p *Inline) inlineOnce(f *ir.Function, maxSize int) bool {
	for bi, b := range f.Blocks {
		for ii, in := range b.Instrs {
			if in.Op != ir.OpCall {
				continue
			}
			callee, ok := p.Mod.Funcs[in.Callee]
			if !ok || callee == f || callee.InstrCount() > maxSize {
				continue
			}
			// Refuse recursion: callee must not reach the caller or
			// itself.
			if p.reachable(callee.Name, f.Name) || p.reachable(callee.Name, callee.Name) {
				continue
			}
			// Refuse callees with no return: splicing one in would leave
			// the continuation block with no incoming edge.
			if !hasRet(callee) {
				continue
			}
			p.doInline(f, bi, ii, in, callee)
			p.Inlined++
			return true
		}
	}
	return false
}

// hasRet reports whether any block of f ends in a return.
func hasRet(f *ir.Function) bool {
	for _, b := range f.Blocks {
		if len(b.Instrs) > 0 && b.Instrs[len(b.Instrs)-1].Op == ir.OpRet {
			return true
		}
	}
	return false
}

// doInline splices callee's body in place of the call instruction at
// f.Blocks[bi].Instrs[ii].
func (p *Inline) doInline(f *ir.Function, bi, ii int, call *ir.Instr, callee *ir.Function) {
	base := ir.Reg(f.NumRegs)
	f.NumRegs += callee.NumRegs
	remap := func(r ir.Reg) ir.Reg {
		if r == ir.NoReg {
			return ir.NoReg
		}
		return r + base
	}

	// Continuation block: everything after the call.
	caller := f.Blocks[bi]
	cont := f.NewBlock(caller.Name + ".inl.cont")
	cont.Instrs = append(cont.Instrs, caller.Instrs[ii+1:]...)

	// Clone callee blocks.
	clones := make(map[*ir.Block]*ir.Block, len(callee.Blocks))
	for _, cb := range callee.Blocks {
		clones[cb] = f.NewBlock(callee.Name + ".inl." + cb.Name)
	}
	for _, cb := range callee.Blocks {
		nb := clones[cb]
		for _, cin := range cb.Instrs {
			ci := *cin // copy
			ci.Dst = remap(ci.Dst)
			ci.A = remap(ci.A)
			ci.B = remap(ci.B)
			if len(ci.Args) > 0 {
				args := make([]ir.Reg, len(ci.Args))
				for i, a := range ci.Args {
					args[i] = remap(a)
				}
				ci.Args = args
			}
			if ci.Target != nil {
				ci.Target = clones[ci.Target]
			}
			if ci.Else != nil {
				ci.Else = clones[ci.Else]
			}
			if ci.Op == ir.OpRet {
				// Return becomes: dst = retval; jmp cont.
				if call.Dst != ir.NoReg {
					if ci.A != ir.NoReg {
						nb.Instrs = append(nb.Instrs, &ir.Instr{
							Op: ir.OpMov, Dst: call.Dst, A: ci.A, B: ir.NoReg,
						})
					} else {
						nb.Instrs = append(nb.Instrs, &ir.Instr{
							Op: ir.OpConst, Dst: call.Dst, A: ir.NoReg, B: ir.NoReg, Imm: 0,
						})
					}
				}
				nb.Instrs = append(nb.Instrs, &ir.Instr{
					Op: ir.OpJmp, A: ir.NoReg, B: ir.NoReg, Target: cont,
				})
				continue
			}
			nb.Instrs = append(nb.Instrs, &ci)
		}
	}

	// Caller block: keep the prefix, marshal arguments, jump to entry.
	prefix := caller.Instrs[:ii]
	caller.Instrs = append([]*ir.Instr(nil), prefix...)
	for i, arg := range call.Args {
		caller.Instrs = append(caller.Instrs, &ir.Instr{
			Op: ir.OpMov, Dst: base + ir.Reg(i), A: arg, B: ir.NoReg,
		})
	}
	caller.Instrs = append(caller.Instrs, &ir.Instr{
		Op: ir.OpJmp, A: ir.NoReg, B: ir.NoReg, Target: clones[callee.Entry()],
	})
}

package passes

import "repro/internal/ir"

// OptStats reports what one Optimize call did.
type OptStats struct {
	Rounds        int
	Folded        int // ConstFold rewrites
	Removed       int // GlobalDCE instruction deletions
	BlocksRemoved int
	CallsRemoved  int
	Rewritten     int // CopyCoalesce operand redirects
	CopiesRemoved int
	RegsSaved     int // NumRegs reduction across all functions
	Hoisted       int // LICM moves
}

func (s *OptStats) changed() bool {
	return s.Folded+s.Removed+s.BlocksRemoved+s.Rewritten+
		s.CopiesRemoved+s.RegsSaved+s.Hoisted > 0
}

func (s *OptStats) add(o OptStats) {
	s.Folded += o.Folded
	s.Removed += o.Removed
	s.BlocksRemoved += o.BlocksRemoved
	s.CallsRemoved += o.CallsRemoved
	s.Rewritten += o.Rewritten
	s.CopiesRemoved += o.CopiesRemoved
	s.RegsSaved += o.RegsSaved
	s.Hoisted += o.Hoisted
}

// StdOptimization returns one round of the standard analysis-driven
// optimization pipeline for m: constant folding, liveness-based global
// DCE (with purity-driven dead-call elimination), copy coalescing with
// frame packing, and loop-invariant code motion.
func StdOptimization(m *ir.Module) []Pass {
	return []Pass{&ConstFold{}, &GlobalDCE{Mod: m}, &CopyCoalesce{}, &LICM{}}
}

// Optimize runs the standard pipeline to a fixpoint: passes enable one
// another (a hoisted constant becomes foldable, a propagated copy
// becomes dead, a packed frame exposes a redundant copy), so rounds
// repeat until a full round reports no change. Instruction counts and
// register counts strictly decrease between rounds except for LICM's
// bounded moves, so the cap is a safety net, not a budget.
func Optimize(m *ir.Module) (OptStats, error) {
	var total OptStats
	for round := 0; round < 16; round++ {
		cf := &ConstFold{}
		dce := &GlobalDCE{Mod: m}
		cc := &CopyCoalesce{}
		licm := &LICM{}
		if err := RunAll(m, cf, dce, cc, licm); err != nil {
			return total, err
		}
		r := OptStats{
			Folded: cf.Folded, Removed: dce.Removed,
			BlocksRemoved: dce.BlocksRemoved, CallsRemoved: dce.CallsRemoved,
			Rewritten: cc.Rewritten, CopiesRemoved: cc.CopiesRemoved,
			RegsSaved: cc.RegsSaved, Hoisted: licm.Hoisted,
		}
		total.add(r)
		total.Rounds = round + 1
		if !r.changed() {
			return total, nil
		}
	}
	return total, nil
}

package passes

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// LICM hoists speculatable loop-invariant instructions to loop
// preheaders, generalizing the guard-only hoisting CARATHoist does:
// constants, moves, and ALU/FP computations whose operands do not
// change across iterations are computed once before the loop instead
// of every trip.
//
// Candidate selection lives in the analysis layer
// (analysis.LoopNest.HoistCandidates, shared with the
// loop-invariant-recompute lint diagnostic): the opcode must be
// speculatable, every operand loop-invariant, the destination defined
// exactly once in the loop and not live into the header — which makes
// the preheader execution produce exactly the value every iteration
// would have, and makes the extra execution on zero-trip paths
// unobservable. Hoisting proceeds innermost-loop-first and re-analyzes
// after every preheader edit, so an instruction freed from an inner
// loop can move again out of the enclosing one on a later round.
type LICM struct {
	// Hoisted counts instructions moved to a preheader.
	Hoisted int
}

// Name implements Pass.
func (p *LICM) Name() string { return "licm" }

// Run implements Pass.
func (p *LICM) Run(f *ir.Function) error {
	// Each round hoists every candidate of one loop and restarts (the
	// preheader edit stales the CFG). Every instruction moves at most
	// loop-depth times, so the cap is generous; hitting it would mean a
	// candidate oscillation, which re-running cannot fix.
	for rounds := 0; rounds < 64+len(f.Blocks)*8; rounds++ {
		if !p.hoistOnce(f) {
			return nil
		}
	}
	return nil
}

// hoistOnce moves every candidate of the first (innermost-first) loop
// that has any, returning false when nothing is left to hoist.
func (p *LICM) hoistOnce(f *ir.Function) bool {
	info := ir.AnalyzeCFG(f)
	if len(info.Loops) == 0 {
		return false
	}
	dom := analysis.NewDomTree(info)
	ln := analysis.AnalyzeLoops(info, dom)
	live := analysis.Solve(info, analysis.NewLiveness(f))
	cands := ln.HoistCandidates(live)
	if len(cands) == 0 {
		return false
	}
	target := cands[0].Loop
	moved := make(map[*ir.Instr]bool)
	var hoisted []*ir.Instr
	for _, c := range cands {
		if c.Loop == target {
			moved[c.In] = true
			hoisted = append(hoisted, c.In)
		}
	}
	// Preheader may insert a block (and becomes the place the hoisted
	// code runs once, dominating the header).
	ph := info.Preheader(target.Loop)
	for _, b := range target.Body {
		kept := b.Instrs[:0]
		for _, in := range b.Instrs {
			if moved[in] {
				continue
			}
			kept = append(kept, in)
		}
		b.Instrs = kept
	}
	// Insert before the preheader's terminator, preserving candidate
	// order. (Candidates hoisted together have no in-loop operand
	// definitions at all, so they cannot depend on each other; the
	// order only keeps the output deterministic.)
	term := len(ph.Instrs) - 1
	ph.Instrs = append(ph.Instrs[:term], append(hoisted, ph.Instrs[term])...)
	p.Hoisted += len(hoisted)
	f.Touch()
	return true
}

package passes

import (
	"repro/internal/analysis"
	"repro/internal/ir"
)

// CARATElim deletes CARAT instrumentation the dataflow layer proves
// redundant — the step beyond CARATHoist's syntactic motion that the
// paper's <6% geomean overhead depends on ("modern code analysis ...
// can massively reduce the potentially high costs", §IV-A). Run it
// after CARATInject and (optionally) CARATHoist.
//
// Three elimination rules, each justified by a must-analysis:
//
//  1. Available guard: an identical guard (base, offset, region flag)
//     executed on every path since the last free/call/redefinition.
//     Re-checking cannot change the outcome — any violation was already
//     recorded by the first check.
//  2. Provable guard: the guard's base register still holds the base of
//     an allocation that cannot have been freed (and, for an exact
//     guard, the offset is inside the allocation's static size). The
//     check must pass, so the runtime work is pure overhead.
//  3. Available escape: an identical escape record (location base,
//     offset, value register) executed on every path with no
//     intervening free/call/redefinition. The escape set is idempotent,
//     so re-recording is redundant.
//
// Soundness: rules 1 and 3 only remove re-executions whose observable
// effect (violation detection, escape-set contents) is subsumed by a
// dominating-in-the-dataflow-sense copy; rule 2 removes checks whose
// success is a theorem. Program output is untouched — guards and
// escape records never alter register or memory state.
type CARATElim struct {
	GuardsRemoved  int // rule 1+2 static count
	RegionRemoved  int // subset of GuardsRemoved that were region guards
	EscapesRemoved int // rule 3 static count
}

// Name implements Pass.
func (c *CARATElim) Name() string { return "carat-elim" }

// Run implements Pass.
func (c *CARATElim) Run(f *ir.Function) error {
	info := ir.AnalyzeCFG(f)
	if len(info.RPO) == 0 {
		return nil
	}
	rd := analysis.NewReachingDefs(f)
	rdRes := analysis.Solve(info, rd)
	alias := analysis.AnalyzeAlias(f, rd, rdRes)
	av := analysis.NewAvailFacts(f, alias)
	res := analysis.Solve(info, av)

	for _, b := range info.RPO {
		remove := make(map[int]bool)
		res.Replay(b, func(idx int, in *ir.Instr, facts *analysis.BitSet) {
			switch in.Op {
			case ir.OpGuard:
				if av.GuardAvailable(in, facts) || av.GuardProvable(in, facts) {
					remove[idx] = true
					c.GuardsRemoved++
					if in.Region {
						c.RegionRemoved++
					}
				}
			case ir.OpTrackEsc:
				if av.EscAvailable(in, facts) {
					remove[idx] = true
					c.EscapesRemoved++
				}
			}
		})
		if len(remove) == 0 {
			continue
		}
		out := b.Instrs[:0]
		for i, in := range b.Instrs {
			if !remove[i] {
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	return nil
}

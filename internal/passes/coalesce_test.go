package passes

import (
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// TestCoalesceShrinksKernelFrames: the acceptance bar for the pass —
// after the standard pipeline, the entry frame (Function.NumRegs, the
// per-call allocation of both engines) shrinks on most CARAT kernels,
// with checksums intact.
func TestCoalesceShrinksKernelFrames(t *testing.T) {
	shrunk, total := 0, 0
	for _, k := range workloads.CARATSuite() {
		total++
		pristine := k.Build()
		want := runMain(t, pristine, k.Entry)
		before := pristine.Funcs[k.Entry].NumRegs

		m := k.Build()
		cc := &CopyCoalesce{}
		if err := RunAll(m, &ConstFold{}, &GlobalDCE{Mod: m}, cc); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		after := m.Funcs[k.Entry].NumRegs
		if after < before {
			shrunk++
		}
		if after > before {
			t.Errorf("%s: frame grew %d -> %d", k.Name, before, after)
		}
		if got := runMain(t, m, k.Entry); got != want {
			t.Errorf("%s: checksum changed: %d != %d", k.Name, got, want)
		}
		t.Logf("%s: frame %d -> %d regs", k.Name, before, after)
	}
	if shrunk < 5 {
		t.Fatalf("frames shrank on only %d/%d kernels, want >= 5", shrunk, total)
	}
}

// TestCoalesceRemovesCopyChains: a chain of movs collapses and the
// frame packs down to the live values.
func TestCoalesceRemovesCopyChains(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	a := b.Mov(b.Param(0))
	c := b.Mov(a)
	d := b.Mov(c)
	b.Ret(b.Add(d, d))

	want := runMain(t, m, "f", 21)

	cc := &CopyCoalesce{}
	if err := RunAll(m, cc); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpMov) != 0 {
		t.Fatalf("%d movs survive a pure copy chain", f.CountOp(ir.OpMov))
	}
	// param slot + the add result.
	if f.NumRegs > 2 {
		t.Fatalf("frame still %d regs, want <= 2", f.NumRegs)
	}
	if cc.CopiesRemoved == 0 || cc.RegsSaved == 0 {
		t.Fatalf("stats not accounted: %+v", cc)
	}
	if got := runMain(t, m, "f", 21); got != want {
		t.Fatalf("semantics changed: %d != %d", got, want)
	}
}

// TestCoalesceBranchCopies: copies that are only redundant along one
// path must survive; values must match on both paths afterward.
func TestCoalesceBranchCopies(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		then := b.Block("then")
		els := b.Block("else")
		join := b.Block("join")
		x := b.Mov(b.Param(0))
		b.Br(b.Param(1), then, els)
		b.SetBlock(then)
		b.MovTo(x, b.Const(7)) // x diverges from p0 on this path
		b.Jmp(join)
		b.SetBlock(els)
		b.MovTo(x, b.Param(0)) // redundant only on this path
		b.Jmp(join)
		b.SetBlock(join)
		b.Ret(b.Add(x, x))
		return m
	}

	m := build()
	want0 := runMain(t, m, "f", 5, 0)
	want1 := runMain(t, m, "f", 5, 1)

	m2 := build()
	if err := RunAll(m2, &CopyCoalesce{}); err != nil {
		t.Fatal(err)
	}
	if got := runMain(t, m2, "f", 5, 0); got != want0 {
		t.Fatalf("else path changed: %d != %d", got, want0)
	}
	if got := runMain(t, m2, "f", 5, 1); got != want1 {
		t.Fatalf("then path changed: %d != %d", got, want1)
	}
}

// TestCoalesceUseBeforeDefPinned: a register read before any write is
// defined to read zero; packing must never let another register share
// (and clobber) its slot.
func TestCoalesceUseBeforeDefPinned(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 1)
		b := ir.NewBuilder(f)
		then := b.Block("then")
		join := b.Block("join")
		// u is written only on the then-path; on the fall-through it is
		// read before any def and must yield 0.
		u := f.NewReg()
		busy := b.Add(b.Param(0), b.Const(3)) // another live value that could share a slot
		b.Br(b.Param(0), then, join)
		b.SetBlock(then)
		b.MovTo(u, b.Const(50))
		b.Jmp(join)
		b.SetBlock(join)
		b.Ret(b.Add(u, busy))
		return m
	}

	m := build()
	wantZero := runMain(t, m, "f", 0) // u reads 0: 0 + (0+3)
	wantOne := runMain(t, m, "f", 1)  // u = 50: 50 + (1+3)
	if wantZero != 3 || wantOne != 54 {
		t.Fatalf("test setup wrong: got %d/%d", wantZero, wantOne)
	}

	m2 := build()
	if err := RunAll(m2, &CopyCoalesce{}); err != nil {
		t.Fatal(err)
	}
	if got := runMain(t, m2, "f", 0); got != wantZero {
		t.Fatalf("use-before-def zero clobbered: got %d, want %d", got, wantZero)
	}
	if got := runMain(t, m2, "f", 1); got != wantOne {
		t.Fatalf("defined path changed: got %d, want %d", got, wantOne)
	}
}

// TestCoalesceSelfCopies: mov r <- r disappears even with no other
// copies around.
func TestCoalesceSelfCopies(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	v := b.Add(b.Param(0), b.Const(1))
	b.MovTo(v, v) // explicit self-copy
	b.Ret(v)

	cc := &CopyCoalesce{}
	if err := RunAll(m, cc); err != nil {
		t.Fatal(err)
	}
	if f.CountOp(ir.OpMov) != 0 {
		t.Fatal("self-copy survived")
	}
	if got := runMain(t, m, "f", 9); got != 10 {
		t.Fatalf("got %d", got)
	}
}

// TestCoalesceShrinksCompiledFrameStats: the packed NumRegs is what the
// engines actually allocate — MaxFrameRegs drops accordingly.
func TestCoalesceShrinksCompiledFrameStats(t *testing.T) {
	k := workloads.CARATSuite()[0] // stream-triad

	run := func(m *ir.Module) (uint64, interp.Stats) {
		ip, err := interp.New(m)
		if err != nil {
			t.Fatal(err)
		}
		got, err := ip.Call(k.Entry)
		if err != nil {
			t.Fatal(err)
		}
		return got, ip.Stats
	}

	pristine := k.Build()
	wantRet, preStats := run(pristine)

	m := k.Build()
	if err := RunAll(m, &ConstFold{}, &GlobalDCE{Mod: m}, &CopyCoalesce{}); err != nil {
		t.Fatal(err)
	}
	gotRet, postStats := run(m)
	if gotRet != wantRet {
		t.Fatalf("checksum changed: %d != %d", gotRet, wantRet)
	}
	if postStats.MaxFrameRegs >= preStats.MaxFrameRegs {
		t.Fatalf("MaxFrameRegs did not shrink: %d -> %d",
			preStats.MaxFrameRegs, postStats.MaxFrameRegs)
	}
	if postStats.FrameWords >= preStats.FrameWords {
		t.Fatalf("FrameWords did not shrink: %d -> %d",
			preStats.FrameWords, postStats.FrameWords)
	}
}

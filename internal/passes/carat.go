// Package passes implements the compiler transformations that interweave
// the layers of the stack:
//
//   - CARAT guard/tracking injection and guard hoisting (§IV-A): compiler-
//     and runtime-based address translation without paging hardware.
//   - Compiler-based timing injection (§IV-C): statically placed calls
//     into the timer framework replacing hardware timer interrupts.
//   - Device-poll blending (§V-C): compiler-injected constant-time poll
//     checks that make devices behave as if interrupt-driven with no
//     interrupts.
//
// All passes operate on internal/ir and preserve Verify-validity.
package passes

import (
	"fmt"

	"repro/internal/ir"
)

// Pass is a function-level transformation.
type Pass interface {
	Name() string
	Run(f *ir.Function) error
}

// RunAll applies each pass to every function of m, verifying after each.
// It bumps the module's structural generation after every pass, so any
// compiled interpreter program derived from m is invalidated even when a
// pass splices Block.Instrs directly.
func RunAll(m *ir.Module, ps ...Pass) error {
	for _, p := range ps {
		for _, f := range m.Functions() {
			if err := p.Run(f); err != nil {
				return fmt.Errorf("pass %s on %s: %w", p.Name(), f.Name, err)
			}
			if err := ir.Verify(f); err != nil {
				return fmt.Errorf("pass %s broke %s: %w", p.Name(), f.Name, err)
			}
		}
		m.Touch()
	}
	return nil
}

// CARATInject inserts the CARAT runtime interface into a function:
// allocation tracking after every alloc, free tracking before every free,
// escape tracking for stored may-pointer values, and a protection guard
// before every load and store ("protection check code is introduced at
// each read or write", §IV-A).
type CARATInject struct {
	// SkipGuards disables guard insertion (tracking only), matching
	// CARAT's mobility-without-protection configuration.
	SkipGuards bool
	// Stats, populated per run.
	GuardsInserted int
	TracksInserted int
}

// Name implements Pass.
func (c *CARATInject) Name() string { return "carat-inject" }

// Run implements Pass.
func (c *CARATInject) Run(f *ir.Function) error {
	mayPtr := mayPointerRegs(f)
	for _, b := range f.Blocks {
		var out []*ir.Instr
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpLoad:
				if !c.SkipGuards {
					out = append(out, &ir.Instr{Op: ir.OpGuard, Dst: ir.NoReg, A: in.A, B: ir.NoReg, Imm: in.Imm})
					c.GuardsInserted++
				}
				out = append(out, in)
			case ir.OpStore:
				if !c.SkipGuards {
					out = append(out, &ir.Instr{Op: ir.OpGuard, Dst: ir.NoReg, A: in.A, B: ir.NoReg, Imm: in.Imm})
					c.GuardsInserted++
				}
				out = append(out, in)
				// A stored pointer escapes into memory: the runtime
				// must be able to find and patch it when it moves the
				// allocation (the "garbage collector"-like mobility).
				// A carries the location base, Imm the offset, B the
				// stored value.
				if mayPtr[in.B] {
					out = append(out, &ir.Instr{Op: ir.OpTrackEsc, Dst: ir.NoReg, A: in.A, B: in.B, Imm: in.Imm})
					c.TracksInserted++
				}
			case ir.OpAlloc:
				// A carries the allocated base; the size comes from the
				// alloc's immediate, or from its size register (B) when
				// the allocation is dynamically sized. An alloc may write
				// its base over its own size register (legal IR — operand
				// reads precede the dst write; copy coalescing produces
				// this shape), so snapshot the size first in that case.
				szReg := in.A
				if szReg != ir.NoReg && szReg == in.Dst {
					tmp := f.NewReg()
					out = append(out, &ir.Instr{Op: ir.OpMov, Dst: tmp, A: szReg, B: ir.NoReg})
					szReg = tmp
				}
				out = append(out, in)
				out = append(out, &ir.Instr{Op: ir.OpTrackAlloc, Dst: ir.NoReg, A: in.Dst, B: szReg, Imm: in.Imm})
				c.TracksInserted++
			case ir.OpFree:
				out = append(out, &ir.Instr{Op: ir.OpTrackFree, Dst: ir.NoReg, A: in.A, B: ir.NoReg})
				c.TracksInserted++
				out = append(out, in)
			default:
				out = append(out, in)
			}
		}
		b.Instrs = out
	}
	return nil
}

// mayPointerRegs computes the set of registers that may hold pointers:
// results of allocs, and anything derived from them through mov/add/sub.
// This is the conservative compiler analysis CARAT uses to find escapes.
func mayPointerRegs(f *ir.Function) map[ir.Reg]bool {
	may := make(map[ir.Reg]bool)
	// Parameters may carry pointers from callers.
	for i := 0; i < f.NumParams; i++ {
		may[ir.Reg(i)] = true
	}
	changed := true
	for changed {
		changed = false
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				var derived bool
				switch in.Op {
				case ir.OpAlloc, ir.OpCall, ir.OpLoad:
					// Allocation results, call results, and loaded
					// words may be pointers.
					derived = true
				case ir.OpMov:
					derived = may[in.A]
				case ir.OpAdd, ir.OpSub:
					derived = may[in.A] || may[in.B]
				}
				if derived && !may[in.Dst] {
					may[in.Dst] = true
					changed = true
				}
			}
		}
	}
	return may
}

// CARATHoist performs the guard aggregation and hoisting that takes the
// protection code "out of the critical path in most instances" (§IV-A):
//
//  1. Within a basic block, duplicate guards of the same (base, offset)
//     are removed (the first check covers the rest).
//  2. A guard whose address register is loop-invariant and whose block
//     dominates all loop latches is hoisted into the loop preheader.
//  3. A guard whose address derives from a loop-invariant base through
//     induction arithmetic (base + f(i)) is replaced by a single
//     whole-region guard on the base in the preheader.
type CARATHoist struct {
	HoistedInvariant int // rule 2 count
	HoistedRegion    int // rule 3 count
	DedupedInBlock   int // rule 1 count
	// MaxRounds bounds the innermost-to-outermost iteration.
	MaxRounds int
}

// Name implements Pass.
func (c *CARATHoist) Name() string { return "carat-hoist" }

// Run implements Pass.
func (c *CARATHoist) Run(f *ir.Function) error {
	c.dedupeBlocks(f)
	rounds := c.MaxRounds
	if rounds == 0 {
		rounds = 64
	}
	for round := 0; round < rounds; round++ {
		if !c.hoistOnce(f) {
			break
		}
		// Hoisting into a parent loop's body enables further hoisting
		// on the next round.
	}
	c.dedupeBlocks(f)
	return nil
}

// mergeWindow is the offset distance within which two guards on the same
// base register collapse into one ranged check (CARAT's aggregation of
// adjacent accesses — a single compare covers a small neighborhood).
const mergeWindow = 64

// dedupeBlocks removes redundant guards within each block: exact
// duplicates, and near-offset guards on the same unmodified base.
func (c *CARATHoist) dedupeBlocks(f *ir.Function) {
	type key struct {
		a      ir.Reg
		imm    int64
		region bool
	}
	for _, b := range f.Blocks {
		seen := make(map[key]bool)
		var out []*ir.Instr
		for _, in := range b.Instrs {
			if in.Op == ir.OpGuard {
				k := key{in.A, in.Imm, in.Region}
				if seen[k] {
					c.DedupedInBlock++
					continue
				}
				if !in.Region {
					merged := false
					for prev := range seen {
						if prev.region || prev.a != in.A {
							continue
						}
						d := in.Imm - prev.imm
						if d < 0 {
							d = -d
						}
						if d <= mergeWindow {
							merged = true
							break
						}
					}
					if merged {
						c.DedupedInBlock++
						continue
					}
				}
				seen[k] = true
				out = append(out, in)
				continue
			}
			// A write to the guarded register invalidates its dedupe
			// entries (the address changed).
			if d := in.Defs(); d != ir.NoReg {
				for k := range seen {
					if k.a == d {
						delete(seen, k)
					}
				}
			}
			out = append(out, in)
		}
		b.Instrs = out
	}
}

// hoistOnce performs one innermost-first hoisting sweep; returns true if
// anything moved.
func (c *CARATHoist) hoistOnce(f *ir.Function) bool {
	info := ir.AnalyzeCFG(f)
	if len(info.Loops) == 0 {
		return false
	}
	// Innermost (deepest) first.
	loops := append([]*ir.Loop(nil), info.Loops...)
	for i := 0; i < len(loops); i++ {
		for j := i + 1; j < len(loops); j++ {
			if loops[j].Depth > loops[i].Depth {
				loops[i], loops[j] = loops[j], loops[i]
			}
		}
	}
	moved := false
	for _, l := range loops {
		written := l.RegsWrittenIn()
		defsIn := singleDefsIn(l)
		var hoisted []*ir.Instr
		// Walk the loop's blocks in function order, not map order: the
		// hoisted guards land in the preheader in the order collected, and
		// pass output must be deterministic.
		for _, b := range f.Blocks {
			if !l.Blocks[b] {
				continue
			}
			if !dominatesAllLatches(info, b, l) {
				continue
			}
			var out []*ir.Instr
			for _, in := range b.Instrs {
				if in.Op != ir.OpGuard {
					out = append(out, in)
					continue
				}
				if !written[in.A] {
					// Rule 2: address invariant across iterations.
					hoisted = append(hoisted, in)
					c.HoistedInvariant++
					moved = true
					continue
				}
				if base, ok := invariantBase(in.A, written, defsIn, 8); ok {
					// Rule 3: base + induction pattern; whole-region
					// guard on the invariant base.
					hoisted = append(hoisted, &ir.Instr{
						Op: ir.OpGuard, Dst: ir.NoReg, A: base, B: ir.NoReg, Region: true,
					})
					c.HoistedRegion++
					moved = true
					continue
				}
				out = append(out, in)
			}
			b.Instrs = out
		}
		if len(hoisted) > 0 {
			ph := info.Preheader(l)
			// Insert before the preheader's terminator.
			term := ph.Instrs[len(ph.Instrs)-1]
			ph.Instrs = append(ph.Instrs[:len(ph.Instrs)-1], append(hoisted, term)...)
			// CFG may have changed (preheader insertion); restart.
			return true
		}
	}
	return moved
}

func dominatesAllLatches(info *ir.CFGInfo, b *ir.Block, l *ir.Loop) bool {
	for _, latch := range l.Latches {
		if !info.Dominates(b, latch) {
			return false
		}
	}
	return true
}

// singleDefsIn maps each register to its unique defining instruction
// within the loop, or nil if it has zero or multiple defs there.
func singleDefsIn(l *ir.Loop) map[ir.Reg]*ir.Instr {
	defs := make(map[ir.Reg]*ir.Instr)
	multi := make(map[ir.Reg]bool)
	for b := range l.Blocks {
		for _, in := range b.Instrs {
			d := in.Defs()
			if d == ir.NoReg {
				continue
			}
			if _, ok := defs[d]; ok {
				multi[d] = true
			}
			defs[d] = in
		}
	}
	for r := range multi {
		delete(defs, r)
	}
	return defs
}

// invariantBase chases the def chain of r inside the loop looking for a
// loop-invariant base register combined with induction arithmetic
// (add/sub/mov/mul/shl). Returns the base and true on success.
func invariantBase(r ir.Reg, written map[ir.Reg]bool, defs map[ir.Reg]*ir.Instr, fuel int) (ir.Reg, bool) {
	if fuel == 0 {
		return 0, false
	}
	if !written[r] {
		return r, true
	}
	in, ok := defs[r]
	if !ok {
		return 0, false
	}
	switch in.Op {
	case ir.OpMov:
		return invariantBase(in.A, written, defs, fuel-1)
	case ir.OpAdd, ir.OpSub:
		// One side must chase to an invariant base; the other is the
		// induction offset (any value: the region guard covers the
		// whole allocation).
		if base, ok := invariantBaseSide(in.A, written, defs, fuel); ok {
			return base, true
		}
		if in.Op == ir.OpAdd { // base must be the left operand of sub
			if base, ok := invariantBaseSide(in.B, written, defs, fuel); ok {
				return base, true
			}
		}
	}
	return 0, false
}

// invariantBaseSide accepts either a directly invariant register or one
// whose single def chains to an invariant base through pointer-shaped
// arithmetic.
func invariantBaseSide(r ir.Reg, written map[ir.Reg]bool, defs map[ir.Reg]*ir.Instr, fuel int) (ir.Reg, bool) {
	if !written[r] {
		return r, true
	}
	in, ok := defs[r]
	if !ok {
		return 0, false
	}
	// Only chase through pointer-preserving ops for the base side: mov
	// and add/sub (mul/shl produce scaled offsets, not bases).
	if in.Op == ir.OpMov || in.Op == ir.OpAdd || in.Op == ir.OpSub {
		return invariantBase(r, written, defs, fuel-1)
	}
	return 0, false
}

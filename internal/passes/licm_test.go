package passes

import (
	"testing"

	"repro/internal/ir"
)

// loopOpCount counts op occurrences inside natural-loop bodies of f.
func loopOpCount(f *ir.Function, op ir.Op) int {
	info := ir.AnalyzeCFG(f)
	n := 0
	for _, l := range info.Loops {
		for blk := range l.Blocks {
			for _, in := range blk.Instrs {
				if in.Op == op {
					n++
				}
			}
		}
	}
	return n
}

// TestLICMHoistsInvariantALU: an add of two loop-invariant values moves
// to the preheader and runs once.
func TestLICMHoistsInvariantALU(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		sum := b.Const(0)
		b.CountingLoop(0, 8, 1, func(i ir.Reg) {
			inv := b.Mul(b.Param(0), b.Param(1)) // invariant: recomputed every trip
			b.MovTo(sum, b.Add(sum, b.Add(inv, i)))
		})
		b.Ret(sum)
		return m
	}

	m := build()
	want := runMain(t, m, "f", 3, 5)

	m2 := build()
	f2 := m2.Funcs["f"]
	before := loopOpCount(f2, ir.OpMul)
	if before != 1 {
		t.Fatalf("test setup: %d in-loop muls, want 1", before)
	}
	licm := &LICM{}
	if err := RunAll(m2, licm); err != nil {
		t.Fatal(err)
	}
	if licm.Hoisted == 0 {
		t.Fatal("nothing hoisted")
	}
	if after := loopOpCount(f2, ir.OpMul); after != 0 {
		t.Fatalf("%d muls still in the loop", after)
	}
	if f2.CountOp(ir.OpMul) != 1 {
		t.Fatal("the mul should survive outside the loop")
	}
	if got := runMain(t, m2, "f", 3, 5); got != want {
		t.Fatalf("semantics changed: %d != %d", got, want)
	}
}

// TestLICMRefusals: loads, faulting ops, multiply-defined destinations,
// and destinations live into the header must not move.
func TestLICMRefusals(t *testing.T) {
	t.Run("load", func(t *testing.T) {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 0)
		b := ir.NewBuilder(f)
		buf := b.Alloc(8)
		b.Store(buf, 0, b.Const(11))
		sum := b.Const(0)
		b.CountingLoop(0, 4, 1, func(i ir.Reg) {
			v := b.Load(buf, 0) // invariant address, but loads are observable
			b.MovTo(sum, b.Add(sum, v))
		})
		b.Free(buf)
		b.Ret(sum)

		licm := &LICM{}
		if err := RunAll(m, licm); err != nil {
			t.Fatal(err)
		}
		if loopOpCount(f, ir.OpLoad) != 1 {
			t.Fatal("load hoisted out of the loop")
		}
	})

	t.Run("div", func(t *testing.T) {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		sum := b.Const(0)
		b.CountingLoop(0, 4, 1, func(i ir.Reg) {
			q := b.Div(b.Param(0), b.Param(1)) // may fault; must stay guarded by the trip count
			b.MovTo(sum, b.Add(sum, q))
		})
		b.Ret(sum)

		licm := &LICM{}
		if err := RunAll(m, licm); err != nil {
			t.Fatal(err)
		}
		if loopOpCount(f, ir.OpDiv) != 1 {
			t.Fatal("faultable div hoisted")
		}
	})

	t.Run("multi-def", func(t *testing.T) {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		sum := b.Const(0)
		b.CountingLoop(0, 4, 1, func(i ir.Reg) {
			v := b.Mul(b.Param(0), b.Param(1)) // invariant operands...
			b.MovTo(v, b.Add(v, i))            // ...but v has a second in-loop def
			b.MovTo(sum, b.Add(sum, v))
		})
		b.Ret(sum)

		want := loopOpCount(f, ir.OpMul)
		licm := &LICM{}
		if err := RunAll(m, licm); err != nil {
			t.Fatal(err)
		}
		if loopOpCount(f, ir.OpMul) != want {
			t.Fatal("multiply-defined destination hoisted")
		}
	})

	t.Run("live-into-header", func(t *testing.T) {
		// v is read at the top of each iteration before being rewritten:
		// hoisting the rewrite would clobber the value the first
		// iteration must see.
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		v := b.Const(100)
		sum := b.Const(0)
		b.CountingLoop(0, 4, 1, func(i ir.Reg) {
			b.MovTo(sum, b.Add(sum, v))               // reads v from the previous trip
			b.MovTo(v, b.Mul(b.Param(0), b.Param(1))) // invariant value, live-in dst
		})
		b.Ret(sum)

		want := runMain(t, m, "f", 3, 5) // 100 + 3*15 = 145

		m2 := ir.NewModule("t2")
		f2 := m2.NewFunction("f", 2)
		b = ir.NewBuilder(f2)
		v = b.Const(100)
		sum = b.Const(0)
		b.CountingLoop(0, 4, 1, func(i ir.Reg) {
			b.MovTo(sum, b.Add(sum, v))
			b.MovTo(v, b.Mul(b.Param(0), b.Param(1)))
		})
		b.Ret(sum)

		licm := &LICM{}
		if err := RunAll(m2, licm); err != nil {
			t.Fatal(err)
		}
		if got := runMain(t, m2, "f", 3, 5); got != want {
			t.Fatalf("live-into-header hoist changed semantics: %d != %d", got, want)
		}
		// The mul itself may hoist (its temp is loop-local), but the
		// write to v — live into the header — must stay in the loop.
		info := ir.AnalyzeCFG(f2)
		inLoopWrites := 0
		for _, l := range info.Loops {
			for blk := range l.Blocks {
				for _, in := range blk.Instrs {
					if in.Defs() == v {
						inLoopWrites++
					}
				}
			}
		}
		if inLoopWrites == 0 {
			t.Fatal("write to a header-live register was hoisted")
		}
	})
}

// TestLICMZeroTrip: a loop whose body never executes must still see the
// correct (unclobbered) values after LICM, and hoisted speculatable
// code must not change anything observable.
func TestLICMZeroTrip(t *testing.T) {
	build := func() *ir.Module {
		// for (i = p0; i > 0; i--) { v = p1 * 7; sum += v } — with
		// p0 == 0 the body never runs; the hoisted mul still executes in
		// the preheader, which must be unobservable.
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		head := b.Block("head")
		body := b.Block("body")
		exit := b.Block("exit")
		sum := b.Const(0)
		one := b.Const(1)
		i := b.Mov(b.Param(0))
		b.Jmp(head)
		b.SetBlock(head)
		cond := b.ICmp(ir.PredGT, i, b.Const(0))
		b.Br(cond, body, exit)
		b.SetBlock(body)
		v := b.Mul(b.Param(1), b.Const(7))
		b.MovTo(sum, b.Add(sum, v))
		b.MovTo(i, b.Sub(i, one))
		b.Jmp(head)
		b.SetBlock(exit)
		b.Ret(sum)
		return m
	}

	m := build()
	wantZero := runMain(t, m, "f", 0, 9)
	wantTwo := runMain(t, m, "f", 2, 9)

	m2 := build()
	licm := &LICM{}
	if err := RunAll(m2, licm); err != nil {
		t.Fatal(err)
	}
	if licm.Hoisted == 0 {
		t.Fatal("nothing hoisted; the zero-trip case is vacuous")
	}
	if n := loopOpCount(m2.Funcs["f"], ir.OpMul); n != 0 {
		t.Fatalf("%d muls still in the loop", n)
	}
	if got := runMain(t, m2, "f", 0, 9); got != wantZero {
		t.Fatalf("zero-trip semantics changed: %d != %d", got, wantZero)
	}
	if got := runMain(t, m2, "f", 2, 9); got != wantTwo {
		t.Fatalf("two-trip semantics changed: %d != %d", got, wantTwo)
	}
}

// TestLICMNestedLoops: an invariant moved out of the inner loop keeps
// moving to the outermost preheader over successive rounds.
func TestLICMNestedLoops(t *testing.T) {
	build := func() *ir.Module {
		m := ir.NewModule("t")
		f := m.NewFunction("f", 2)
		b := ir.NewBuilder(f)
		sum := b.Const(0)
		b.CountingLoop(0, 3, 1, func(i ir.Reg) {
			b.CountingLoop(0, 3, 1, func(j ir.Reg) {
				inv := b.Mul(b.Param(0), b.Param(1)) // invariant to both loops
				b.MovTo(sum, b.Add(sum, b.Add(inv, b.Add(i, j))))
			})
		})
		b.Ret(sum)
		return m
	}

	m := build()
	want := runMain(t, m, "f", 4, 6)

	m2 := build()
	f2 := m2.Funcs["f"]
	if err := RunAll(m2, &LICM{}); err != nil {
		t.Fatal(err)
	}
	if n := loopOpCount(f2, ir.OpMul); n != 0 {
		t.Fatalf("%d muls still inside a loop (should reach the outermost preheader)", n)
	}
	if got := runMain(t, m2, "f", 4, 6); got != want {
		t.Fatalf("semantics changed: %d != %d", got, want)
	}
}

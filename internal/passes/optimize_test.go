package passes

import (
	"testing"

	"repro/internal/analysis"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// TestOptimizeFixpointAndLintLockstep: the opportunity linter and the
// optimizer consume the same analyses, so on any module Optimize has
// finished with, LintOpt must report nothing — on the full CARAT suite
// and a sample of fuzz programs, with semantics and Verify intact.
func TestOptimizeFixpointAndLintLockstep(t *testing.T) {
	type prog struct {
		name  string
		m     *ir.Module
		entry string
		want  uint64
	}
	var progs []prog
	for _, k := range workloads.CARATSuite() {
		pristine := k.Build()
		progs = append(progs, prog{k.Name, k.Build(), k.Entry, runMain(t, pristine, k.Entry)})
	}
	for seed := uint64(0); seed < 8; seed++ {
		progs = append(progs, prog{"fuzz", genProgram(seed), "main",
			runMain(t, genProgram(seed), "main")})
	}

	sawOpportunities := false
	for _, p := range progs {
		pre := len(analysis.LintOpt(p.m))
		if pre > 0 {
			sawOpportunities = true
		}
		stats, err := Optimize(p.m)
		if err != nil {
			t.Fatalf("%s: %v", p.name, err)
		}
		if stats.Rounds >= 16 {
			t.Errorf("%s: no fixpoint within the round cap", p.name)
		}
		if err := ir.VerifyModule(p.m, nil); err != nil {
			t.Errorf("%s: invalid after Optimize: %v", p.name, err)
		}
		if post := analysis.LintOpt(p.m); len(post) != 0 {
			t.Errorf("%s: %d opportunity diagnostics survive Optimize (pre: %d); first: %+v",
				p.name, len(post), pre, post[0])
		}
		if got := runMain(t, p.m, p.entry); got != p.want {
			t.Errorf("%s: checksum changed: %d != %d", p.name, got, p.want)
		}
	}
	if !sawOpportunities {
		t.Fatal("no program showed any pre-optimization opportunity; lockstep test is vacuous")
	}
}

// TestOptimizeIdempotent: a second Optimize call on an already-optimized
// module reports no work.
func TestOptimizeIdempotent(t *testing.T) {
	for _, k := range workloads.CARATSuite()[:3] {
		m := k.Build()
		if _, err := Optimize(m); err != nil {
			t.Fatal(err)
		}
		stats, err := Optimize(m)
		if err != nil {
			t.Fatal(err)
		}
		if stats.Rounds != 1 || stats.Folded+stats.Removed+stats.Hoisted+
			stats.CopiesRemoved+stats.RegsSaved+stats.Rewritten > 0 {
			t.Fatalf("%s: second Optimize still worked: %+v", k.Name, stats)
		}
	}
}

// TestLintOptFlagsKnownShapes: each diagnostic kind fires on its
// textbook trigger.
func TestLintOptFlagsKnownShapes(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	x := b.Mov(b.Param(0))
	b.MovTo(x, b.Param(0)) // redundant copy
	dead := b.Add(b.Param(0), b.Const(2))
	b.MovTo(dead, b.Param(1)) // makes the add partially dead
	sum := b.Const(0)
	b.CountingLoop(0, 4, 1, func(i ir.Reg) {
		inv := b.Mul(b.Param(0), b.Param(1)) // loop-invariant recompute
		b.MovTo(sum, b.Add(sum, b.Add(inv, b.Add(x, dead))))
	})
	b.Ret(sum)

	kinds := make(map[analysis.Kind]int)
	for _, d := range analysis.LintOpt(m) {
		kinds[d.Kind]++
	}
	for _, k := range []analysis.Kind{
		analysis.KindRedundantCopy, analysis.KindLoopInvariant, analysis.KindPartialDeadStore,
	} {
		if kinds[k] == 0 {
			t.Errorf("kind %s not reported (got %v)", k, kinds)
		}
	}
}

package passes

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sim"
)

// genProgram builds a random but well-formed, terminating, memory-safe
// IR program from a seed: power-of-two arrays indexed through masks,
// bounded (possibly nested) loops, random arithmetic chains, register
// copy chains (CopyCoalesce fodder), calls to pure and impure helpers
// (purity-analysis fodder), the adjacency shapes the superinstruction
// fuser targets (cmp-then-branch diamonds, loads feeding ALU ops,
// explicit guard+load pairs), and a checksum return. It is the input
// source for differential testing of every pass pipeline and of the
// fused engine against the reference engine.
func genProgram(seed uint64) *ir.Module {
	rng := sim.NewRNG(seed)
	m := ir.NewModule("fuzz")

	// Small pure helper functions for the inliner to chew on.
	nHelpers := rng.Intn(3)
	for h := 0; h < nHelpers; h++ {
		hf := m.NewFunction(helperName(h), 2)
		hb := ir.NewBuilder(hf)
		v := hb.Add(hb.Param(0), hb.Param(1))
		switch rng.Intn(3) {
		case 0:
			v = hb.Mul(v, hb.Const(int64(rng.Intn(5)+1)))
		case 1:
			v = hb.Xor(v, hb.Const(int64(rng.Intn(100))))
		case 2:
			v = hb.Sub(v, hb.Param(0))
		}
		hb.Ret(v)
	}

	// An impure helper: allocates scratch, stores/loads through it, and
	// frees it. Calls to it must never be removed (not DCE-safe: it
	// allocates and may fault) even when their results are dead, which
	// exercises the conservative side of the purity summaries under
	// every pipeline.
	{
		hf := m.NewFunction(impureHelper, 1)
		hb := ir.NewBuilder(hf)
		buf := hb.Alloc(8)
		hb.Store(buf, 0, hb.Param(0))
		v := hb.Add(hb.Load(buf, 0), hb.Const(1))
		hb.Free(buf)
		hb.Ret(v)
	}

	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)

	// Arrays: 1-3, power-of-two lengths 64..512.
	type arr struct {
		base ir.Reg
		mask int64
	}
	var arrays []arr
	nArr := 1 + rng.Intn(3)
	for i := 0; i < nArr; i++ {
		n := int64(64 << rng.Intn(4))
		base := b.Alloc(n * 8)
		arrays = append(arrays, arr{base: base, mask: n - 1})
	}
	eight := b.Const(8)

	// Value pool the generator draws operands from.
	pool := []ir.Reg{b.Const(1), b.Const(3), b.Const(17)}
	pick := func() ir.Reg { return pool[rng.Intn(len(pool))] }
	push := func(r ir.Reg) {
		pool = append(pool, r)
		if len(pool) > 24 {
			pool = pool[1:]
		}
	}

	// index computes a safe element address of array a from value v.
	index := func(a arr, v ir.Reg) ir.Reg {
		idx := b.And(v, b.Const(a.mask))
		return b.Add(a.base, b.Mul(idx, eight))
	}

	diamonds := 0 // unique block names for case-10 diamonds
	var emitOps func(depth, count int)
	emitOps = func(depth, count int) {
		for i := 0; i < count; i++ {
			if nHelpers > 0 && rng.Intn(10) == 0 {
				push(b.Call(helperName(rng.Intn(nHelpers)), pick(), pick()))
				continue
			}
			switch rng.Intn(12) {
			case 0:
				push(b.Add(pick(), pick()))
			case 1:
				push(b.Sub(pick(), pick()))
			case 2:
				push(b.Mul(pick(), pick()))
			case 3:
				push(b.Xor(pick(), pick()))
			case 4: // division by a non-zero constant
				push(b.Div(pick(), b.Const(int64(rng.Intn(7)+1))))
			case 5: // store
				a := arrays[rng.Intn(len(arrays))]
				b.Store(index(a, pick()), 0, pick())
			case 6: // load
				a := arrays[rng.Intn(len(arrays))]
				push(b.Load(index(a, pick()), 0))
			case 7: // bounded loop (max nesting 2)
				if depth >= 2 {
					push(b.ICmp(ir.PredLT, pick(), pick()))
					continue
				}
				iters := int64(4 + rng.Intn(30))
				inner := 1 + rng.Intn(4)
				// Registers defined inside the loop body are only usable
				// there: on the (statically possible) zero-trip path they
				// are never written, so leaking them into the outer pool
				// would generate use-before-def programs.
				saved := append([]ir.Reg(nil), pool...)
				b.CountingLoop(0, iters, 1, func(iv ir.Reg) {
					push(iv)
					emitOps(depth+1, inner)
				})
				pool = saved
			case 8: // copy chain (coalescing / copy-propagation fodder)
				v := b.Mov(pick())
				for n := rng.Intn(3); n > 0; n-- {
					v = b.Mov(v)
				}
				push(v)
			case 9: // impure call; result sometimes deliberately dropped
				v := b.Call(impureHelper, pick())
				if rng.Intn(2) == 0 {
					push(v)
				}
			case 10: // cmp-then-branch diamond (fuser's cmp+br shape)
				// Branch-local registers never reach the pool: on the other
				// path they are unwritten, so leaking them would generate
				// use-before-def programs.
				cond := b.ICmp(ir.PredLT, pick(), pick())
				diamonds++
				tag := fmt.Sprintf("%d", diamonds)
				thn := b.Block("dt" + tag)
				els := b.Block("df" + tag)
				join := b.Block("dj" + tag)
				b.Br(cond, thn, els)
				at := arrays[rng.Intn(len(arrays))]
				ae := arrays[rng.Intn(len(arrays))]
				b.SetBlock(thn)
				b.Store(index(at, pick()), 0, pick())
				b.Jmp(join)
				b.SetBlock(els)
				b.Store(index(ae, pick()), 0, pick())
				b.Jmp(join)
				b.SetBlock(join)
			case 11: // load feeding an ALU op, sometimes behind an explicit
				// guard (the fuser's load+alu and guard+load shapes)
				a := arrays[rng.Intn(len(arrays))]
				addr := index(a, pick())
				if rng.Intn(2) == 0 {
					b.Cur.Instrs = append(b.Cur.Instrs, &ir.Instr{
						Op: ir.OpGuard, Dst: ir.NoReg, A: addr, B: ir.NoReg,
					})
				}
				v := b.Load(addr, 0)
				push(b.Add(v, pick()))
			}
		}
	}
	emitOps(0, 10+rng.Intn(15))

	// Checksum: fold the pool and one array.
	sum := b.Const(0)
	for _, r := range pool {
		sum = b.Add(sum, r)
	}
	a := arrays[0]
	b.CountingLoop(0, a.mask+1, 1, func(iv ir.Reg) {
		addr := b.Add(a.base, b.Mul(iv, eight))
		sum2 := b.Add(sum, b.Load(addr, 0))
		b.MovTo(sum, sum2)
	})
	for _, a := range arrays {
		b.Free(a.base)
	}
	b.Ret(sum)
	return m
}

// hasTracking reports whether m carries CARAT allocation tracking
// (OpTrackAlloc): only then is the allocation table populated at run
// time, so only then can guards be expected to pass. The generator
// emits bare guard+load pairs (fusion fodder) without tracking; their
// guards consult an empty table by design.
func hasTracking(m *ir.Module) bool {
	for _, f := range m.Functions() {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op == ir.OpTrackAlloc {
					return true
				}
			}
		}
	}
	return false
}

// runFuzz executes a module with the full CARAT runtime attached and
// returns the checksum; any error fails the test, as does a protection
// violation on a module with allocation tracking (in-bounds programs
// must guard clean once the table is populated — untracked modules'
// guards consult an empty table, so their violation count is checked
// by the engine differential instead).
func runFuzz(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	ip.Hooks.YieldCheck = func(int64) int64 { return 6 }
	ip.Hooks.Poll = func() int64 { return 3 }
	got, err := ip.Call("main")
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, ir.Format(m.Funcs["main"]))
	}
	if tb.Violations != 0 && hasTracking(m) {
		t.Fatalf("%d protection violations on in-bounds tracked program", tb.Violations)
	}
	return got
}

// runFuzzEngineDiff executes m twice from fresh heaps — once on the
// fused compiled engine, once on the tree-walking reference engine —
// under the full CARAT runtime, and compares every observable: return
// value, error, Stats, protection-violation count, and the final heap
// snapshot. It also requires that fusion actually engaged (every
// generated program ends in a counting checksum loop, whose icmp+br
// header always fuses), so the differential genuinely exercises the
// fused dispatch arms.
func runFuzzEngineDiff(t *testing.T, name string, seed uint64, m *ir.Module) {
	t.Helper()
	run := func(reference bool) (uint64, error, interp.Stats, map[mem.Addr]uint64, int64) {
		ip, err := interp.New(m)
		if err != nil {
			t.Fatal(err)
		}
		tb := carat.NewTable()
		ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
		ip.Hooks.GuardRegion = tb.GuardRegion
		ip.Hooks.TrackAlloc = tb.TrackAlloc
		ip.Hooks.TrackFree = tb.TrackFree
		ip.Hooks.TrackEsc = tb.TrackEscape
		ip.Hooks.YieldCheck = func(int64) int64 { return 6 }
		ip.Hooks.Poll = func() int64 { return 3 }
		var ret uint64
		var cerr error
		if reference {
			ret, cerr = ip.ReferenceCall("main")
		} else {
			if ip.Program().FusedPairs() == 0 {
				t.Fatalf("seed %d pipeline %s: fused engine formed no superinstructions", seed, name)
			}
			ret, cerr = ip.Call("main")
		}
		return ret, cerr, ip.Stats, ip.Heap.Snapshot(), tb.Violations
	}
	fr, ferr, fstats, fheap, fviol := run(false)
	rr, rerr, rstats, rheap, rviol := run(true)
	if ferr != nil || rerr != nil {
		t.Fatalf("seed %d pipeline %s: fused err=%v reference err=%v", seed, name, ferr, rerr)
	}
	if fr != rr {
		t.Fatalf("seed %d pipeline %s: ret %d != %d", seed, name, fr, rr)
	}
	if fstats != rstats {
		t.Fatalf("seed %d pipeline %s: stats diverge\nfused: %+v\nref:   %+v", seed, name, fstats, rstats)
	}
	if fviol != rviol {
		t.Fatalf("seed %d pipeline %s: violations fused=%d ref=%d", seed, name, fviol, rviol)
	}
	if rviol != 0 && hasTracking(m) {
		t.Fatalf("seed %d pipeline %s: %d violations on tracked program", seed, name, rviol)
	}
	if !reflect.DeepEqual(fheap, rheap) {
		t.Fatalf("seed %d pipeline %s: final heaps diverge", seed, name)
	}
}

// TestDifferentialPassPipelines: for random programs, every pass
// pipeline must preserve the checksum exactly.
func TestDifferentialPassPipelines(t *testing.T) {
	check := func(seed uint64) bool {
		want := runFuzz(t, genProgram(seed))
		// Reuse the fuzzer's pipeline table (fuzz_diff_test.go) so the
		// quick.Check leg and the coverage-guided leg stay in sync.
		for _, p := range fuzzPipelines {
			m := genProgram(seed)
			if err := RunAll(m, p.mk(m)...); err != nil {
				t.Fatalf("seed %d pipeline %s: %v", seed, p.name, err)
			}
			if got := runFuzz(t, m); got != want {
				t.Fatalf("seed %d pipeline %s: checksum %d != %d",
					seed, p.name, got, want)
			}
			if p.fullDiff {
				runFuzzEngineDiff(t, p.name, seed, m)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func helperName(i int) string {
	return string(rune('a'+i)) + "_helper"
}

// impureHelper is the generator's non-DCE-safe callee.
const impureHelper = "scratch_helper"

// TestFuzzProgramsAreValid: the generator only produces Verify-valid
// modules.
func TestFuzzProgramsAreValid(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		m := genProgram(seed)
		if err := ir.VerifyModule(m, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzAnalysesConverge: on random programs (both pristine and
// CARAT-instrumented), every dataflow problem must reach its fixpoint
// well under the solver's safety cap, and the lint layer must stay
// consistent with definite assignment: the generator never produces
// use-before-def, so no such diagnostic may appear.
func TestFuzzAnalysesConverge(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		m := genProgram(seed)
		if seed%2 == 1 {
			if err := RunAll(m, &CARATInject{}, &CARATHoist{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for _, f := range m.Functions() {
			info := ir.AnalyzeCFG(f)
			rd := analysis.NewReachingDefs(f)
			rdRes := analysis.Solve(info, rd)
			alias := analysis.AnalyzeAlias(f, rd, rdRes)
			for name, p := range map[string]analysis.Problem{
				"reaching":    rd,
				"liveness":    analysis.NewLiveness(f),
				"defassign":   analysis.NewDefiniteAssign(f),
				"avail":       analysis.NewAvailFacts(f, alias),
				"mustfreed":   analysis.NewMustFreed(f, alias),
				"liveheap":    analysis.NewLiveUnfreed(f, alias),
				"availcopies": analysis.NewAvailCopies(f),
			} {
				res := analysis.Solve(info, p)
				if !res.Converged {
					t.Fatalf("seed %d %s/%s: no convergence", seed, f.Name, name)
				}
				if res.Rounds > len(info.RPO)+2 {
					t.Fatalf("seed %d %s/%s: %d rounds for %d blocks",
						seed, f.Name, name, res.Rounds, len(info.RPO))
				}
			}
			for _, d := range analysis.LintFunc(f) {
				if d.Kind == analysis.KindUseBeforeDef {
					t.Fatalf("seed %d: spurious %v", seed, d)
				}
			}
		}
	}
}

// TestFuzzElimKeepsModulesValid: inject+hoist+elim on random programs
// must leave Verify-valid modules with a statically smaller (or equal)
// guard count, and elimination must be deterministic.
func TestFuzzElimKeepsModulesValid(t *testing.T) {
	countOps := func(m *ir.Module, op ir.Op) int {
		n := 0
		for _, f := range m.Functions() {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == op {
						n++
					}
				}
			}
		}
		return n
	}
	for seed := uint64(0); seed < 20; seed++ {
		hoisted := genProgram(seed)
		if err := RunAll(hoisted, &CARATInject{}, &CARATHoist{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run := func() (*ir.Module, *CARATElim) {
			m := genProgram(seed)
			e := &CARATElim{}
			if err := RunAll(m, &CARATInject{}, &CARATHoist{}, e); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return m, e
		}
		m1, e1 := run()
		if err := ir.VerifyModule(m1, nil); err != nil {
			t.Fatalf("seed %d: module invalid after elim: %v", seed, err)
		}
		if g := countOps(m1, ir.OpGuard); g > countOps(hoisted, ir.OpGuard) {
			t.Fatalf("seed %d: elim grew the static guard count", seed)
		}
		m2, e2 := run()
		if e1.GuardsRemoved != e2.GuardsRemoved || e1.EscapesRemoved != e2.EscapesRemoved {
			t.Fatalf("seed %d: elimination not deterministic (%d/%d vs %d/%d)",
				seed, e1.GuardsRemoved, e1.EscapesRemoved, e2.GuardsRemoved, e2.EscapesRemoved)
		}
		if ir.Format(m1.Funcs["main"]) != ir.Format(m2.Funcs["main"]) {
			t.Fatalf("seed %d: eliminated IR differs between runs", seed)
		}
	}
}

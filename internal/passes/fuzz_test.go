package passes

import (
	"testing"
	"testing/quick"

	"repro/internal/analysis"
	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/sim"
)

// genProgram builds a random but well-formed, terminating, memory-safe
// IR program from a seed: power-of-two arrays indexed through masks,
// bounded (possibly nested) loops, random arithmetic chains, register
// copy chains (CopyCoalesce fodder), calls to pure and impure helpers
// (purity-analysis fodder), and a checksum return. It is the input
// source for differential testing of every pass pipeline.
func genProgram(seed uint64) *ir.Module {
	rng := sim.NewRNG(seed)
	m := ir.NewModule("fuzz")

	// Small pure helper functions for the inliner to chew on.
	nHelpers := rng.Intn(3)
	for h := 0; h < nHelpers; h++ {
		hf := m.NewFunction(helperName(h), 2)
		hb := ir.NewBuilder(hf)
		v := hb.Add(hb.Param(0), hb.Param(1))
		switch rng.Intn(3) {
		case 0:
			v = hb.Mul(v, hb.Const(int64(rng.Intn(5)+1)))
		case 1:
			v = hb.Xor(v, hb.Const(int64(rng.Intn(100))))
		case 2:
			v = hb.Sub(v, hb.Param(0))
		}
		hb.Ret(v)
	}

	// An impure helper: allocates scratch, stores/loads through it, and
	// frees it. Calls to it must never be removed (not DCE-safe: it
	// allocates and may fault) even when their results are dead, which
	// exercises the conservative side of the purity summaries under
	// every pipeline.
	{
		hf := m.NewFunction(impureHelper, 1)
		hb := ir.NewBuilder(hf)
		buf := hb.Alloc(8)
		hb.Store(buf, 0, hb.Param(0))
		v := hb.Add(hb.Load(buf, 0), hb.Const(1))
		hb.Free(buf)
		hb.Ret(v)
	}

	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)

	// Arrays: 1-3, power-of-two lengths 64..512.
	type arr struct {
		base ir.Reg
		mask int64
	}
	var arrays []arr
	nArr := 1 + rng.Intn(3)
	for i := 0; i < nArr; i++ {
		n := int64(64 << rng.Intn(4))
		base := b.Alloc(n * 8)
		arrays = append(arrays, arr{base: base, mask: n - 1})
	}
	eight := b.Const(8)

	// Value pool the generator draws operands from.
	pool := []ir.Reg{b.Const(1), b.Const(3), b.Const(17)}
	pick := func() ir.Reg { return pool[rng.Intn(len(pool))] }
	push := func(r ir.Reg) {
		pool = append(pool, r)
		if len(pool) > 24 {
			pool = pool[1:]
		}
	}

	// index computes a safe element address of array a from value v.
	index := func(a arr, v ir.Reg) ir.Reg {
		idx := b.And(v, b.Const(a.mask))
		return b.Add(a.base, b.Mul(idx, eight))
	}

	var emitOps func(depth, count int)
	emitOps = func(depth, count int) {
		for i := 0; i < count; i++ {
			if nHelpers > 0 && rng.Intn(10) == 0 {
				push(b.Call(helperName(rng.Intn(nHelpers)), pick(), pick()))
				continue
			}
			switch rng.Intn(10) {
			case 0:
				push(b.Add(pick(), pick()))
			case 1:
				push(b.Sub(pick(), pick()))
			case 2:
				push(b.Mul(pick(), pick()))
			case 3:
				push(b.Xor(pick(), pick()))
			case 4: // division by a non-zero constant
				push(b.Div(pick(), b.Const(int64(rng.Intn(7)+1))))
			case 5: // store
				a := arrays[rng.Intn(len(arrays))]
				b.Store(index(a, pick()), 0, pick())
			case 6: // load
				a := arrays[rng.Intn(len(arrays))]
				push(b.Load(index(a, pick()), 0))
			case 7: // bounded loop (max nesting 2)
				if depth >= 2 {
					push(b.ICmp(ir.PredLT, pick(), pick()))
					continue
				}
				iters := int64(4 + rng.Intn(30))
				inner := 1 + rng.Intn(4)
				// Registers defined inside the loop body are only usable
				// there: on the (statically possible) zero-trip path they
				// are never written, so leaking them into the outer pool
				// would generate use-before-def programs.
				saved := append([]ir.Reg(nil), pool...)
				b.CountingLoop(0, iters, 1, func(iv ir.Reg) {
					push(iv)
					emitOps(depth+1, inner)
				})
				pool = saved
			case 8: // copy chain (coalescing / copy-propagation fodder)
				v := b.Mov(pick())
				for n := rng.Intn(3); n > 0; n-- {
					v = b.Mov(v)
				}
				push(v)
			case 9: // impure call; result sometimes deliberately dropped
				v := b.Call(impureHelper, pick())
				if rng.Intn(2) == 0 {
					push(v)
				}
			}
		}
	}
	emitOps(0, 10+rng.Intn(15))

	// Checksum: fold the pool and one array.
	sum := b.Const(0)
	for _, r := range pool {
		sum = b.Add(sum, r)
	}
	a := arrays[0]
	b.CountingLoop(0, a.mask+1, 1, func(iv ir.Reg) {
		addr := b.Add(a.base, b.Mul(iv, eight))
		sum2 := b.Add(sum, b.Load(addr, 0))
		b.MovTo(sum, sum2)
	})
	for _, a := range arrays {
		b.Free(a.base)
	}
	b.Ret(sum)
	return m
}

// runFuzz executes a module with the full CARAT runtime attached and
// returns the checksum; any violation or error fails the test.
func runFuzz(t *testing.T, m *ir.Module) uint64 {
	t.Helper()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	ip.Hooks.YieldCheck = func(int64) int64 { return 6 }
	ip.Hooks.Poll = func() int64 { return 3 }
	got, err := ip.Call("main")
	if err != nil {
		t.Fatalf("execution failed: %v\n%s", err, ir.Format(m.Funcs["main"]))
	}
	if tb.Violations != 0 {
		t.Fatalf("%d protection violations on in-bounds program", tb.Violations)
	}
	return got
}

// TestDifferentialPassPipelines: for random programs, every pass
// pipeline must preserve the checksum exactly.
func TestDifferentialPassPipelines(t *testing.T) {
	check := func(seed uint64) bool {
		want := runFuzz(t, genProgram(seed))
		// Reuse the fuzzer's pipeline table (fuzz_diff_test.go) so the
		// quick.Check leg and the coverage-guided leg stay in sync.
		for _, p := range fuzzPipelines {
			m := genProgram(seed)
			if err := RunAll(m, p.mk(m)...); err != nil {
				t.Fatalf("seed %d pipeline %s: %v", seed, p.name, err)
			}
			if got := runFuzz(t, m); got != want {
				t.Fatalf("seed %d pipeline %s: checksum %d != %d",
					seed, p.name, got, want)
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func helperName(i int) string {
	return string(rune('a'+i)) + "_helper"
}

// impureHelper is the generator's non-DCE-safe callee.
const impureHelper = "scratch_helper"

// TestFuzzProgramsAreValid: the generator only produces Verify-valid
// modules.
func TestFuzzProgramsAreValid(t *testing.T) {
	for seed := uint64(0); seed < 50; seed++ {
		m := genProgram(seed)
		if err := ir.VerifyModule(m, nil); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestFuzzAnalysesConverge: on random programs (both pristine and
// CARAT-instrumented), every dataflow problem must reach its fixpoint
// well under the solver's safety cap, and the lint layer must stay
// consistent with definite assignment: the generator never produces
// use-before-def, so no such diagnostic may appear.
func TestFuzzAnalysesConverge(t *testing.T) {
	for seed := uint64(0); seed < 30; seed++ {
		m := genProgram(seed)
		if seed%2 == 1 {
			if err := RunAll(m, &CARATInject{}, &CARATHoist{}); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
		}
		for _, f := range m.Functions() {
			info := ir.AnalyzeCFG(f)
			rd := analysis.NewReachingDefs(f)
			rdRes := analysis.Solve(info, rd)
			alias := analysis.AnalyzeAlias(f, rd, rdRes)
			for name, p := range map[string]analysis.Problem{
				"reaching":    rd,
				"liveness":    analysis.NewLiveness(f),
				"defassign":   analysis.NewDefiniteAssign(f),
				"avail":       analysis.NewAvailFacts(f, alias),
				"mustfreed":   analysis.NewMustFreed(f, alias),
				"liveheap":    analysis.NewLiveUnfreed(f, alias),
				"availcopies": analysis.NewAvailCopies(f),
			} {
				res := analysis.Solve(info, p)
				if !res.Converged {
					t.Fatalf("seed %d %s/%s: no convergence", seed, f.Name, name)
				}
				if res.Rounds > len(info.RPO)+2 {
					t.Fatalf("seed %d %s/%s: %d rounds for %d blocks",
						seed, f.Name, name, res.Rounds, len(info.RPO))
				}
			}
			for _, d := range analysis.LintFunc(f) {
				if d.Kind == analysis.KindUseBeforeDef {
					t.Fatalf("seed %d: spurious %v", seed, d)
				}
			}
		}
	}
}

// TestFuzzElimKeepsModulesValid: inject+hoist+elim on random programs
// must leave Verify-valid modules with a statically smaller (or equal)
// guard count, and elimination must be deterministic.
func TestFuzzElimKeepsModulesValid(t *testing.T) {
	countOps := func(m *ir.Module, op ir.Op) int {
		n := 0
		for _, f := range m.Functions() {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					if in.Op == op {
						n++
					}
				}
			}
		}
		return n
	}
	for seed := uint64(0); seed < 20; seed++ {
		hoisted := genProgram(seed)
		if err := RunAll(hoisted, &CARATInject{}, &CARATHoist{}); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		run := func() (*ir.Module, *CARATElim) {
			m := genProgram(seed)
			e := &CARATElim{}
			if err := RunAll(m, &CARATInject{}, &CARATHoist{}, e); err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			return m, e
		}
		m1, e1 := run()
		if err := ir.VerifyModule(m1, nil); err != nil {
			t.Fatalf("seed %d: module invalid after elim: %v", seed, err)
		}
		if g := countOps(m1, ir.OpGuard); g > countOps(hoisted, ir.OpGuard) {
			t.Fatalf("seed %d: elim grew the static guard count", seed)
		}
		m2, e2 := run()
		if e1.GuardsRemoved != e2.GuardsRemoved || e1.EscapesRemoved != e2.EscapesRemoved {
			t.Fatalf("seed %d: elimination not deterministic (%d/%d vs %d/%d)",
				seed, e1.GuardsRemoved, e1.EscapesRemoved, e2.GuardsRemoved, e2.EscapesRemoved)
		}
		if ir.Format(m1.Funcs["main"]) != ir.Format(m2.Funcs["main"]) {
			t.Fatalf("seed %d: eliminated IR differs between runs", seed)
		}
	}
}

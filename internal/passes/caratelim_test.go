package passes

import (
	"testing"

	"repro/internal/carat"
	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/mem"
	"repro/internal/workloads"
)

func TestElimCutsDynamicGuards(t *testing.T) {
	// Hoisted configuration.
	hoisted := arrayWalk()
	if err := RunAll(hoisted, &CARATInject{}, &CARATHoist{}); err != nil {
		t.Fatal(err)
	}
	hv, hip, _ := runWalk(t, hoisted)

	// Hoist + dataflow elimination.
	elim := arrayWalk()
	e := &CARATElim{}
	if err := RunAll(elim, &CARATInject{}, &CARATHoist{}, e); err != nil {
		t.Fatal(err)
	}
	ev, eip, etb := runWalk(t, elim)

	if hv != ev || hv != walkWant {
		t.Fatalf("output changed: hoisted=%d elim=%d want=%d", hv, ev, walkWant)
	}
	if e.GuardsRemoved == 0 {
		t.Fatal("elimination removed nothing")
	}
	hg := hip.Stats.Guards
	eg := eip.Stats.Guards
	if eg > hg {
		t.Fatalf("elim executed more guards (%d) than hoisted (%d)", eg, hg)
	}
	// The acceptance bar: at least 10% of the dynamic guard executions
	// that hoisting left behind are gone.
	if hg > 0 && float64(eg) > 0.9*float64(hg) {
		t.Fatalf("only %d -> %d dynamic guards removed (<10%%)", hg, eg)
	}
	if etb.Violations != 0 {
		t.Fatal("spurious violations after elimination")
	}
}

func TestElimSoundOnEverySuiteKernel(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		hoisted := k.Build()
		if err := RunAll(hoisted, &CARATInject{}, &CARATHoist{}); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		elim := k.Build()
		if err := RunAll(elim, &CARATInject{}, &CARATHoist{}, &CARATElim{}); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		hv, _, _ := runKernel(t, hoisted, k.Entry)
		ev, eStats, etb := runKernel(t, elim, k.Entry)
		if hv != ev {
			t.Fatalf("%s: output changed %d -> %d", k.Name, hv, ev)
		}
		if etb.Violations != 0 {
			t.Fatalf("%s: %d spurious violations", k.Name, etb.Violations)
		}
		_ = eStats
	}
}

func TestElimKeepsGuardOnLoadedPointer(t *testing.T) {
	// pointer-chase follows pointers loaded from memory: those guards
	// cannot be proven and must survive elimination (one removable
	// preheader region guard aside).
	var pc workloads.IRKernel
	for _, k := range workloads.CARATSuite() {
		if k.Name == "pointer-chase" {
			pc = k
		}
	}
	m := pc.Build()
	if err := RunAll(m, &CARATInject{}, &CARATHoist{}, &CARATElim{}); err != nil {
		t.Fatal(err)
	}
	_, stats, _ := runKernel(t, m, pc.Entry)
	if stats.Guards == 0 {
		t.Fatal("per-step guards on loaded pointers must survive")
	}
}

func TestElimRemovesDuplicateEscapes(t *testing.T) {
	// Two identical stores of the same pointer to the same location:
	// inject emits two identical track_escape records; the second is
	// redundant (escape sets are idempotent) and must go.
	m := ir.NewModule("t")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	q := b.Alloc(64)
	b.Store(p, 0, q)
	b.Store(p, 0, q)
	b.Free(q)
	b.Free(p)
	b.Ret(ir.NoReg)
	e := &CARATElim{}
	if err := RunAll(m, &CARATInject{}, e); err != nil {
		t.Fatal(err)
	}
	if e.EscapesRemoved != 1 {
		t.Fatalf("EscapesRemoved = %d, want 1", e.EscapesRemoved)
	}
}

func TestElimGuardNotRemovedAfterFree(t *testing.T) {
	// guard p; free p; guard p — the second guard's outcome differs
	// (violation), so neither availability nor base validity may erase it.
	m := ir.NewModule("t")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	p := b.Alloc(64)
	b.Store(p, 0, b.Const(1))
	b.Free(p)
	b.Store(p, 0, b.Const(2)) // use-after-free: guard must stay and fire
	b.Ret(ir.NoReg)
	e := &CARATElim{}
	if err := RunAll(m, &CARATInject{}, e); err != nil {
		t.Fatal(err)
	}
	guards := 0
	for _, blk := range m.Funcs["main"].Blocks {
		for _, in := range blk.Instrs {
			if in.Op == ir.OpGuard {
				guards++
			}
		}
	}
	// The first store's guard is provable (fresh allocation) and may be
	// removed; the post-free guard must remain.
	if guards == 0 {
		t.Fatal("guard after free was eliminated")
	}
}

// entryHeaderModule builds a module whose worker function is a self-loop
// on its own entry block, storing through a parameter (so the injected
// guard has a loop-invariant base and is hoistable). A boot function
// allocates the buffer and calls the worker.
func entryHeaderModule() *ir.Module {
	m := ir.NewModule("t")
	w := m.NewFunction("work", 1)
	b := ir.NewBuilder(w)
	entry := w.Entry()
	exit := b.Block("exit")
	a := b.Param(0)
	// entry (= header): store [a] = 7; v = load [a]; br v<7 ? entry : exit
	b.Store(a, 0, b.Const(7))
	v := b.Load(a, 0)
	c := b.ICmp(ir.PredLT, v, b.Const(7))
	b.Br(c, entry, exit)
	b.SetBlock(exit)
	b.Ret(v)

	boot := m.NewFunction("main", 0)
	bb := ir.NewBuilder(boot)
	q := bb.Alloc(64)
	r := bb.Call("work", q)
	bb.Free(q)
	bb.Ret(r)
	return m
}

func TestHoistIntoEntryHeaderLoop(t *testing.T) {
	// A loop whose header is the function entry: hoisting needs a
	// preheader, and with no outside edge to redirect the new block must
	// become the entry — previously it was left unreachable at the tail,
	// so hoisted guards silently never executed (and Verify now rejects
	// that shape outright).
	base, _, _ := runKernel(t, entryHeaderModule(), "main")

	m := entryHeaderModule()
	oldEntry := m.Funcs["work"].Entry()
	h := &CARATHoist{}
	if err := RunAll(m, &CARATInject{}, h); err != nil {
		t.Fatal(err)
	}
	if h.HoistedInvariant == 0 {
		t.Fatal("the param-based guard should have been hoisted")
	}
	w := m.Funcs["work"]
	if w.Entry() == oldEntry {
		t.Fatal("preheader did not become the new entry")
	}
	if term := w.Entry().Terminator(); term.Op != ir.OpJmp || term.Target != oldEntry {
		t.Fatal("new entry must jump to the old header")
	}
	got, stats, tb := runKernel(t, m, "main")
	if got != base {
		t.Fatalf("output changed %d -> %d", base, got)
	}
	if stats.Guards == 0 {
		t.Fatal("hoisted guard never executed")
	}
	if tb.Violations != 0 {
		t.Fatalf("%d spurious violations", tb.Violations)
	}

	// The full pipeline including elimination stays sound on this shape.
	m2 := entryHeaderModule()
	if err := RunAll(m2, &CARATInject{}, &CARATHoist{}, &CARATElim{}); err != nil {
		t.Fatal(err)
	}
	got2, _, tb2 := runKernel(t, m2, "main")
	if got2 != base || tb2.Violations != 0 {
		t.Fatalf("elim pipeline broke the kernel: got %d want %d (%d violations)",
			got2, base, tb2.Violations)
	}
}

// runKernel executes entry with CARAT hooks attached and returns the
// result, the interpreter stats, and the runtime table.
func runKernel(t *testing.T, m *ir.Module, entry string) (uint64, *interp.Stats, *carat.Table) {
	t.Helper()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	tb := carat.NewTable()
	ip.Hooks.Guard = func(a mem.Addr) int64 { return tb.Guard(a, false) }
	ip.Hooks.GuardRegion = tb.GuardRegion
	ip.Hooks.TrackAlloc = tb.TrackAlloc
	ip.Hooks.TrackFree = tb.TrackFree
	ip.Hooks.TrackEsc = tb.TrackEscape
	got, err := ip.Call(entry)
	if err != nil {
		t.Fatal(err)
	}
	return got, &ip.Stats, tb
}

package omp

import "container/heap"

// TaskNode is one OpenMP task in a dependency graph (omp task with
// depend clauses): fine-grained parallelism of the kind the paper's
// granularity argument targets (§IV-C cites OpenMP tasking [5]).
type TaskNode struct {
	// Cycles is the task's execution cost.
	Cycles int64
	// Deps are indices of tasks that must complete first.
	Deps []int
}

// TaskGraphStats accumulate a RunTaskGraph execution.
type TaskGraphStats struct {
	Tasks          int64
	CriticalCycles int64 // longest dependency chain (work only)
	OverheadCycles int64
}

// RunTaskGraph executes a task DAG on the runtime's CPUs using list
// scheduling: a task becomes ready when its dependencies complete; the
// earliest-free worker runs the earliest-ready task. Per-task creation
// and dispatch overhead comes from the runtime mode (the kernel paths
// dispense tasks far more cheaply than user-level Linux, which is what
// makes fine granularity viable). Returns the completion time.
func (rt *Runtime) RunTaskGraph(nodes []TaskNode) (int64, TaskGraphStats) {
	n := len(rt.M.CPUs)
	st := TaskGraphStats{Tasks: int64(len(nodes))}
	if len(nodes) == 0 {
		return 0, st
	}
	perTask := rt.taskDispatchCost()

	// Dependency bookkeeping.
	remaining := make([]int, len(nodes))
	dependents := make([][]int, len(nodes))
	for i, t := range nodes {
		remaining[i] = len(t.Deps)
		for _, d := range t.Deps {
			dependents[d] = append(dependents[d], i)
		}
	}
	// readyAt[i]: time the task became ready (for FIFO ordering).
	finish := make([]int64, len(nodes))
	var ready []int
	for i, r := range remaining {
		if r == 0 {
			ready = append(ready, i)
		}
	}

	// Workers as an earliest-free heap.
	h := make(freeHeap, n)
	for w := 0; w < n; w++ {
		h[w] = workerFree{id: w, free: 0}
	}
	heap.Init(&h)

	completed := 0
	// pending tasks become ready as predecessors finish; we process in
	// rounds: pop the earliest-free worker, give it the first ready
	// task whose dependencies' finish times have passed... since the
	// worker can only start a task after both its own free time and the
	// task's ready time, track readyTime per task.
	readyTime := make([]int64, len(nodes))
	for len(ready) > 0 {
		// Pick the ready task with the smallest ready time (FIFO-ish,
		// deterministic by index on ties).
		best := 0
		for i := 1; i < len(ready); i++ {
			ti, tb := ready[i], ready[best]
			if readyTime[ti] < readyTime[tb] || (readyTime[ti] == readyTime[tb] && ti < tb) {
				best = i
			}
		}
		task := ready[best]
		ready = append(ready[:best], ready[best+1:]...)

		wf := heap.Pop(&h).(workerFree)
		start := wf.free
		if readyTime[task] > start {
			start = readyTime[task]
		}
		end := start + perTask + nodes[task].Cycles
		st.OverheadCycles += perTask
		finish[task] = end
		wf.free = end
		heap.Push(&h, wf)
		completed++

		for _, dep := range dependents[task] {
			remaining[dep]--
			if end > readyTime[dep] {
				readyTime[dep] = end
			}
			if remaining[dep] == 0 {
				ready = append(ready, dep)
			}
		}
	}
	if completed != len(nodes) {
		panic("omp: task graph has a dependency cycle")
	}

	var makespan int64
	for _, f := range finish {
		if f > makespan {
			makespan = f
		}
	}
	// Critical path (work only) for reference.
	st.CriticalCycles = criticalPath(nodes)
	return makespan, st
}

// taskDispatchCost is the per-task create+dispatch overhead by mode.
func (rt *Runtime) taskDispatchCost() int64 {
	switch rt.Mode {
	case ModeLinux:
		// libomp task allocation, queue locking, possible futex wake.
		return 350
	case ModeCCK:
		// Compiler-generated tasks drop straight into the kernel task
		// framework.
		return rt.M.Model.Nautilus.EventWakeup / 2
	default:
		return rt.M.Model.Nautilus.EventWakeup
	}
}

// criticalPath returns the longest work-only chain through the DAG.
func criticalPath(nodes []TaskNode) int64 {
	memo := make([]int64, len(nodes))
	seen := make([]bool, len(nodes))
	var depth func(i int) int64
	depth = func(i int) int64 {
		if seen[i] {
			return memo[i]
		}
		seen[i] = true
		var best int64
		for _, d := range nodes[i].Deps {
			if v := depth(d); v > best {
				best = v
			}
		}
		memo[i] = best + nodes[i].Cycles
		return memo[i]
	}
	var m int64
	for i := range nodes {
		if v := depth(i); v > m {
			m = v
		}
	}
	return m
}

// FibTaskGraph builds the classic recursive-fib task DAG down to the
// given depth: each node spawns two children; leaves carry leafCycles of
// work, interior nodes combineCycles.
func FibTaskGraph(depth int, leafCycles, combineCycles int64) []TaskNode {
	var nodes []TaskNode
	var build func(d int) int
	build = func(d int) int {
		if d <= 1 {
			nodes = append(nodes, TaskNode{Cycles: leafCycles})
			return len(nodes) - 1
		}
		a := build(d - 1)
		b := build(d - 2)
		nodes = append(nodes, TaskNode{Cycles: combineCycles, Deps: []int{a, b}})
		return len(nodes) - 1
	}
	build(depth)
	return nodes
}

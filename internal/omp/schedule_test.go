package omp

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/sim"
)

func newRT(mode Mode, cpus int) *Runtime {
	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 5)
	return New(m, mode, 5)
}

func TestScheduleString(t *testing.T) {
	if SchedStatic.String() != "static" || SchedDynamic.String() != "dynamic" ||
		SchedGuided.String() != "guided" {
		t.Fatal("names wrong")
	}
}

func TestStaticBeatsDynamicOnUniformLoops(t *testing.T) {
	// Uniform iterations: static has zero dispensing cost, so it wins.
	rt := newRT(ModeRTK, 16)
	st := rt.RunLoop(16_384, UniformCost(50), SchedStatic, 16)
	rt2 := newRT(ModeRTK, 16)
	dy := rt2.RunLoop(16_384, UniformCost(50), SchedDynamic, 16)
	if st >= dy {
		t.Fatalf("static %d >= dynamic %d on uniform work", st, dy)
	}
}

func TestDynamicBeatsStaticUnderImbalance(t *testing.T) {
	// Triangular cost: static gives the last worker the most expensive
	// block; dynamic balances.
	cost := TriangularCost(10, 1, 4)
	rt := newRT(ModeRTK, 16)
	st := rt.RunLoop(16_384, cost, SchedStatic, 16)
	rt2 := newRT(ModeRTK, 16)
	dy := rt2.RunLoop(16_384, cost, SchedDynamic, 16)
	if dy >= st {
		t.Fatalf("dynamic %d >= static %d under imbalance", dy, st)
	}
	// The static penalty is structural: the hottest block is nearly 2x
	// the mean for a triangular profile.
	if float64(st)/float64(dy) < 1.3 {
		t.Fatalf("imbalance advantage too small: %.2f", float64(st)/float64(dy))
	}
}

func TestGuidedBetweenStaticAndDynamicOverheads(t *testing.T) {
	// Guided issues fewer, larger chunks than dynamic: fewer grabs.
	cost := TriangularCost(10, 1, 4)
	rtD := newRT(ModeRTK, 16)
	rtD.RunLoop(16_384, cost, SchedDynamic, 16)
	grabsD := rtD.Stats.OverheadCycles
	rtG := newRT(ModeRTK, 16)
	rtG.RunLoop(16_384, cost, SchedGuided, 16)
	grabsG := rtG.Stats.OverheadCycles
	if grabsG >= grabsD {
		t.Fatalf("guided overhead %d >= dynamic %d", grabsG, grabsD)
	}
	// And guided still balances competitively.
	rtS := newRT(ModeRTK, 16)
	st := rtS.RunLoop(16_384, cost, SchedStatic, 16)
	rtG2 := newRT(ModeRTK, 16)
	gd := rtG2.RunLoop(16_384, cost, SchedGuided, 16)
	if gd >= st {
		t.Fatalf("guided %d >= static %d under imbalance", gd, st)
	}
}

func TestKernelModeCheapensDynamicScheduling(t *testing.T) {
	// The kernel runtime keeps the loop descriptor hot: its grab cost
	// is lower, so dynamic scheduling costs less than under Linux.
	lx := newRT(ModeLinux, 16)
	rtk := newRT(ModeRTK, 16)
	if rtk.GrabCost() >= lx.GrabCost() {
		t.Fatalf("RTK grab %d >= Linux grab %d", rtk.GrabCost(), lx.GrabCost())
	}
	cost := UniformCost(30)
	tl := lx.RunLoop(8192, cost, SchedDynamic, 8)
	tk := rtk.RunLoop(8192, cost, SchedDynamic, 8)
	if tk >= tl {
		t.Fatalf("kernel dynamic %d >= linux dynamic %d", tk, tl)
	}
}

func TestRunLoopCompletesAllIterations(t *testing.T) {
	// Work conservation: sum of per-iteration costs is fully executed
	// regardless of schedule (checked via a counting cost function).
	for _, sched := range []Schedule{SchedStatic, SchedDynamic, SchedGuided} {
		executed := make(map[int64]int)
		rt := newRT(ModeRTK, 8)
		rt.RunLoop(1000, func(i int64) int64 {
			executed[i]++
			return 10
		}, sched, 7)
		if len(executed) != 1000 {
			t.Fatalf("%v: executed %d distinct iterations", sched, len(executed))
		}
		for i, n := range executed {
			if n != 1 {
				t.Fatalf("%v: iteration %d executed %d times", sched, i, n)
			}
		}
	}
}

func TestChunkClamping(t *testing.T) {
	rt := newRT(ModeRTK, 4)
	// chunk <= 0 must not loop forever.
	if c := rt.RunLoop(100, UniformCost(5), SchedDynamic, 0); c <= 0 {
		t.Fatal("bad completion")
	}
}

func TestDeterministicSchedules(t *testing.T) {
	run := func() int64 {
		rt := newRT(ModeLinux, 12)
		return rt.RunLoop(10_000, TriangularCost(5, 1, 8), SchedDynamic, 16)
	}
	if run() != run() {
		t.Fatal("nondeterministic")
	}
}

package omp

import "testing"

func TestTaskGraphChainIsSerial(t *testing.T) {
	rt := newRT(ModeRTK, 8)
	var nodes []TaskNode
	for i := 0; i < 10; i++ {
		n := TaskNode{Cycles: 1000}
		if i > 0 {
			n.Deps = []int{i - 1}
		}
		nodes = append(nodes, n)
	}
	makespan, st := rt.RunTaskGraph(nodes)
	perTask := rt.taskDispatchCost()
	want := 10 * (1000 + perTask)
	if makespan != want {
		t.Fatalf("chain makespan = %d, want %d", makespan, want)
	}
	if st.CriticalCycles != 10_000 {
		t.Fatalf("critical path = %d", st.CriticalCycles)
	}
}

func TestTaskGraphIndependentTasksParallelize(t *testing.T) {
	rt := newRT(ModeRTK, 8)
	nodes := make([]TaskNode, 64)
	for i := range nodes {
		nodes[i] = TaskNode{Cycles: 1000}
	}
	makespan, _ := rt.RunTaskGraph(nodes)
	perTask := rt.taskDispatchCost()
	// 64 tasks on 8 workers: 8 rounds.
	want := 8 * (1000 + perTask)
	if makespan != want {
		t.Fatalf("makespan = %d, want %d", makespan, want)
	}
}

func TestTaskGraphDiamond(t *testing.T) {
	rt := newRT(ModeRTK, 4)
	nodes := []TaskNode{
		{Cycles: 100},                    // 0: source
		{Cycles: 500, Deps: []int{0}},    // 1
		{Cycles: 700, Deps: []int{0}},    // 2
		{Cycles: 100, Deps: []int{1, 2}}, // 3: sink
	}
	makespan, st := rt.RunTaskGraph(nodes)
	perTask := rt.taskDispatchCost()
	// Critical chain: 0 -> 2 -> 3.
	want := (100 + perTask) + (700 + perTask) + (100 + perTask)
	if makespan != want {
		t.Fatalf("diamond makespan = %d, want %d", makespan, want)
	}
	if st.CriticalCycles != 900 {
		t.Fatalf("critical = %d", st.CriticalCycles)
	}
}

func TestTaskGraphCycleDetection(t *testing.T) {
	rt := newRT(ModeRTK, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on cyclic graph")
		}
	}()
	rt.RunTaskGraph([]TaskNode{
		{Cycles: 10, Deps: []int{1}},
		{Cycles: 10, Deps: []int{0}},
	})
}

func TestFibTaskGraphShape(t *testing.T) {
	nodes := FibTaskGraph(10, 100, 20)
	// fib call tree size: 2*fib(n+1)-1 nodes for leaves=fib-ish; just
	// validate structure: exactly one node (the root) has no dependents.
	dependents := make([]int, len(nodes))
	for _, n := range nodes {
		for _, d := range n.Deps {
			dependents[d]++
		}
	}
	roots := 0
	for i := range nodes {
		if dependents[i] == 0 {
			roots++
		}
	}
	if roots != 1 {
		t.Fatalf("roots = %d", roots)
	}
}

func TestFineGrainTasksNeedKernelDispatch(t *testing.T) {
	// The granularity argument: with 100-cycle leaf tasks, Linux's
	// per-task overhead swamps the work; the kernel paths keep the
	// overhead fraction tolerable and finish sooner.
	nodes := FibTaskGraph(14, 100, 30)
	lx := newRT(ModeLinux, 16)
	mkLx, stLx := lx.RunTaskGraph(nodes)
	kk := newRT(ModeCCK, 16)
	mkCCK, stCCK := kk.RunTaskGraph(nodes)
	if mkCCK >= mkLx {
		t.Fatalf("CCK %d >= Linux %d on fine-grain tasks", mkCCK, mkLx)
	}
	if stCCK.OverheadCycles >= stLx.OverheadCycles {
		t.Fatal("CCK per-task overhead should be lower")
	}
	// With such tiny tasks Linux overhead exceeds the work itself.
	work := int64(0)
	for _, n := range nodes {
		work += n.Cycles
	}
	if stLx.OverheadCycles < work {
		t.Fatalf("linux overhead %d should exceed work %d at this granularity",
			stLx.OverheadCycles, work)
	}
}

func TestTaskGraphSpeedupWithWorkers(t *testing.T) {
	nodes := FibTaskGraph(16, 400, 50)
	t1, _ := newRT(ModeRTK, 1).RunTaskGraph(nodes)
	t16, _ := newRT(ModeRTK, 16).RunTaskGraph(nodes)
	if sp := float64(t1) / float64(t16); sp < 6 {
		t.Fatalf("16-worker speedup = %.1f", sp)
	}
}

func TestTaskGraphEmpty(t *testing.T) {
	rt := newRT(ModeRTK, 2)
	if mk, st := rt.RunTaskGraph(nil); mk != 0 || st.Tasks != 0 {
		t.Fatal("empty graph")
	}
}

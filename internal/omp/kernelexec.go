package omp

import (
	"repro/internal/nautilus"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// RunOnKernel executes a NAS-shaped kernel *for real* on a Nautilus
// kernel instance: a persistent team of one worker thread per CPU,
// statically scheduled loops, and a real barrier between regions — the
// RTK execution model (§V-A) built from the kernel's own primitives
// rather than the cost model. It returns the completion time in cycles.
//
// This exists to cross-validate the analytic Runtime: the two must agree
// on the shape (serial work / N + per-region synchronization).
func RunOnKernel(k *nautilus.Kernel, kern workloads.NASKernel) sim.Time {
	n := len(k.M.CPUs)
	bar := nautilus.NewBarrier(k, n)
	regions := kern.Steps * kern.RegionsPerStep
	chunk := kern.Items / int64(n)
	rem := kern.Items % int64(n)

	done := 0
	start := k.M.Eng.Now()
	for w := 0; w < n; w++ {
		myItems := chunk
		if int64(w) < rem {
			myItems++
		}
		my := myItems
		k.Spawn(w, nautilus.ClassThread, nautilus.ThreadOpts{FP: kern.FPHeavy},
			func(tc *nautilus.ThreadCtx) {
				for r := 0; r < regions; r++ {
					tc.Compute(my * kern.CyclesPerItem)
					tc.Arrive(bar)
				}
				done++
			})
	}
	k.M.Eng.Run()
	if done != n {
		panic("omp: kernel execution did not complete")
	}
	return k.M.Eng.Now() - start
}

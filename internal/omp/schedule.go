package omp

import "container/heap"

// Schedule selects the OpenMP loop schedule. The EPCC suite (which all
// three kernel paths run, §V-A) measures exactly these: schedule
// overhead vs load balance.
type Schedule int

// Schedules.
const (
	SchedStatic Schedule = iota
	SchedDynamic
	SchedGuided
)

// String names the schedule.
func (s Schedule) String() string {
	switch s {
	case SchedDynamic:
		return "dynamic"
	case SchedGuided:
		return "guided"
	default:
		return "static"
	}
}

// GrabCost returns the per-chunk dispensing cost for this runtime mode:
// an atomic fetch-add on the shared loop descriptor plus the mode's
// cache/synchronization baggage.
func (rt *Runtime) GrabCost() int64 {
	base := rt.M.Model.HW.CacheLineTransfer // the descriptor line bounces
	switch rt.Mode {
	case ModeLinux:
		return base + 60 // user-space libomp descriptor + TLS indirection
	default:
		return base + 15 // kernel runtime keeps the descriptor hot
	}
}

type workerFree struct {
	id   int
	free int64
}

type freeHeap []workerFree

func (h freeHeap) Len() int { return len(h) }
func (h freeHeap) Less(i, j int) bool {
	if h[i].free != h[j].free {
		return h[i].free < h[j].free
	}
	return h[i].id < h[j].id
}
func (h freeHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *freeHeap) Push(x any)   { *h = append(*h, x.(workerFree)) }
func (h *freeHeap) Pop() any {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}

// RunLoop executes one parallel loop whose iteration i costs costOf(i)
// cycles, under the given schedule, and returns the loop's completion
// time (max worker finish, including fork/barrier). The execution is a
// deterministic list-scheduling simulation: whichever worker frees first
// grabs the next chunk.
func (rt *Runtime) RunLoop(items int64, costOf func(int64) int64, sched Schedule, chunk int64) int64 {
	n := len(rt.M.CPUs)
	if chunk <= 0 {
		chunk = 1
	}
	c := rt.Costs
	levels := log2ceil(n)
	forkCost := levels*c.ForkHop + c.RegionConst
	rt.Stats.Regions++
	rt.Stats.ForkCycles += forkCost
	rt.Stats.OverheadCycles += forkCost

	finish := make([]int64, n)
	for w := range finish {
		finish[w] = forkCost + c.WakeLatency
	}

	switch sched {
	case SchedStatic:
		// Contiguous blocks, one per worker, zero dispensing cost.
		per := items / int64(n)
		rem := items % int64(n)
		var lo int64
		for w := 0; w < n; w++ {
			cnt := per
			if int64(w) < rem {
				cnt++
			}
			for i := lo; i < lo+cnt; i++ {
				finish[w] += costOf(i)
			}
			lo += cnt
		}
	case SchedDynamic, SchedGuided:
		grab := rt.GrabCost()
		h := make(freeHeap, n)
		for w := 0; w < n; w++ {
			h[w] = workerFree{id: w, free: finish[w]}
		}
		heap.Init(&h)
		var next int64
		remaining := items
		for next < items {
			wf := heap.Pop(&h).(workerFree)
			sz := chunk
			if sched == SchedGuided {
				sz = remaining / int64(2*n)
				if sz < chunk {
					sz = chunk
				}
			}
			if sz > items-next {
				sz = items - next
			}
			var cost int64 = grab
			rt.Stats.OverheadCycles += grab
			for i := next; i < next+sz; i++ {
				cost += costOf(i)
			}
			next += sz
			remaining -= sz
			wf.free += cost
			finish[wf.id] = wf.free
			heap.Push(&h, wf)
		}
	}

	var maxF int64
	for _, f := range finish {
		if f > maxF {
			maxF = f
		}
	}
	barrier := levels * c.BarrierHop
	rt.Stats.BarrierCycles += barrier
	rt.Stats.OverheadCycles += barrier
	return maxF + barrier
}

// UniformCost returns a costOf for uniform iterations.
func UniformCost(c int64) func(int64) int64 {
	return func(int64) int64 { return c }
}

// TriangularCost returns a costOf with linearly growing iteration cost
// (LU-solver-like imbalance): cost(i) = base + i*slopeNum/slopeDen.
func TriangularCost(base, slopeNum, slopeDen int64) func(int64) int64 {
	if slopeDen <= 0 {
		slopeDen = 1
	}
	return func(i int64) int64 { return base + i*slopeNum/slopeDen }
}

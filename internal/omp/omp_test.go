package omp

import (
	"testing"

	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/nautilus"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func runKernel(mode Mode, cpus int, k workloads.NASKernel) int64 {
	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 5)
	rt := New(m, mode, 5)
	return rt.RunKernel(k)
}

func smallBT() workloads.NASKernel {
	k := workloads.BT()
	k.Steps = 4
	return k
}

func TestModeString(t *testing.T) {
	if ModeLinux.String() != "linux" || ModeRTK.String() != "rtk" ||
		ModePIK.String() != "pik" || ModeCCK.String() != "cck" {
		t.Fatal("mode names wrong")
	}
}

func TestKernelCompletes(t *testing.T) {
	for _, mode := range []Mode{ModeLinux, ModeRTK, ModePIK, ModeCCK} {
		if c := runKernel(mode, 8, smallBT()); c <= 0 {
			t.Fatalf("%s: completion %d", mode, c)
		}
	}
}

func TestParallelScaling(t *testing.T) {
	k := smallBT()
	t1 := runKernel(ModeRTK, 1, k)
	t16 := runKernel(ModeRTK, 16, k)
	sp := float64(t1) / float64(t16)
	if sp < 8 {
		t.Fatalf("16-CPU speedup = %.1f, want >= 8", sp)
	}
}

func TestRTKBeatsLinux(t *testing.T) {
	// Fig. 6: RTK outperforms Linux OpenMP, with ~22% average gain on
	// KNL across scales.
	k := smallBT()
	var ratios []float64
	for _, cpus := range []int{8, 16, 32, 64} {
		lx := runKernel(ModeLinux, cpus, k)
		rtk := runKernel(ModeRTK, cpus, k)
		r := float64(lx) / float64(rtk)
		if r <= 1.0 {
			t.Fatalf("RTK not faster at %d CPUs: ratio %.3f", cpus, r)
		}
		ratios = append(ratios, r)
	}
	g := stats.GeoMean(ratios)
	if g < 1.10 || g > 1.40 {
		t.Fatalf("RTK/Linux geomean = %.3f, want ≈1.22", g)
	}
}

func TestPIKPerformsSimilarlyToRTK(t *testing.T) {
	k := smallBT()
	rtk := runKernel(ModeRTK, 16, k)
	pik := runKernel(ModePIK, 16, k)
	diff := float64(pik-rtk) / float64(rtk)
	if diff < 0 || diff > 0.05 {
		t.Fatalf("PIK vs RTK diff = %.3f, want small positive", diff)
	}
}

func TestCCKCompletesAllWork(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: 8}, 5)
	rt := New(m, ModeCCK, 5)
	k := smallBT()
	rt.RunKernel(k)
	if rt.Stats.Tasks == 0 {
		t.Fatal("CCK ran no tasks")
	}
	wantCompute := k.SerialCycles()
	// CCK compute includes task overheads; must be >= pure work.
	if rt.Stats.ComputeCycles < wantCompute {
		t.Fatalf("compute %d < serial work %d", rt.Stats.ComputeCycles, wantCompute)
	}
}

func TestLinuxOverheadGrowsWithCPUs(t *testing.T) {
	k := smallBT()
	gain := func(cpus int) float64 {
		lx := runKernel(ModeLinux, cpus, k)
		rtk := runKernel(ModeRTK, cpus, k)
		return float64(lx) / float64(rtk)
	}
	if g64, g8 := gain(64), gain(8); g64 <= g8 {
		t.Fatalf("gain at 64 CPUs (%.3f) should exceed gain at 8 (%.3f)", g64, g8)
	}
}

func TestSPMoreSensitiveThanBT(t *testing.T) {
	// SP has lighter cells and more regions: kernel paths help it more.
	bt, sp := workloads.BT(), workloads.SP()
	bt.Steps, sp.Steps = 4, 4
	gain := func(k workloads.NASKernel) float64 {
		return float64(runKernel(ModeLinux, 32, k)) / float64(runKernel(ModeRTK, 32, k))
	}
	if gain(sp) <= gain(bt) {
		t.Fatalf("SP gain %.3f should exceed BT gain %.3f", gain(sp), gain(bt))
	}
}

func TestEPCCOverheadOrdering(t *testing.T) {
	// Pure sync overhead: RTK's primitives must beat Linux's futex path.
	mk := func(mode Mode) float64 {
		eng := sim.NewEngine()
		m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: 16}, 5)
		rt := New(m, mode, 5)
		return rt.RunEPCC(workloads.EPCC()[0]) // empty parallel region
	}
	lx, rtk := mk(ModeLinux), mk(ModeRTK)
	if rtk >= lx {
		t.Fatalf("RTK region overhead %f >= Linux %f", rtk, lx)
	}
	if lx < 2*rtk {
		t.Fatalf("Linux overhead (%.0f) should be at least 2x RTK (%.0f)", lx, rtk)
	}
}

func TestStatsAccounting(t *testing.T) {
	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: 8}, 5)
	rt := New(m, ModeLinux, 5)
	k := smallBT()
	rt.RunKernel(k)
	if rt.Stats.Regions != int64(k.Steps*k.RegionsPerStep) {
		t.Fatalf("regions = %d", rt.Stats.Regions)
	}
	if rt.Stats.ForkCycles == 0 || rt.Stats.BarrierCycles == 0 {
		t.Fatal("fork/barrier not accounted")
	}
	if rt.Stats.ComputeCycles != k.SerialCycles() {
		t.Fatalf("compute = %d, want %d", rt.Stats.ComputeCycles, k.SerialCycles())
	}
}

func TestDeterminism(t *testing.T) {
	a := runKernel(ModeLinux, 16, smallBT())
	b := runKernel(ModeLinux, 16, smallBT())
	if a != b {
		t.Fatalf("nondeterministic: %d vs %d", a, b)
	}
}

func TestSerialCycles(t *testing.T) {
	k := workloads.BT()
	want := int64(k.Steps) * int64(k.RegionsPerStep) * k.Items * k.CyclesPerItem
	if k.SerialCycles() != want {
		t.Fatal("serial cycles wrong")
	}
}

func TestRunOnKernelCrossValidatesRTK(t *testing.T) {
	// The real nautilus-thread execution and the analytic RTK model
	// must agree on completion time within a modest factor: both are
	// serial-work/N plus per-region synchronization.
	k := workloads.BT()
	k.Steps = 2
	const cpus = 8

	analytic := runKernel(ModeRTK, cpus, k)

	eng := sim.NewEngine()
	m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 5)
	nk := nautilus.New(m, nautilus.Config{Timing: nautilus.TimingCooperative, QuantumCycles: 1 << 40})
	defer nk.Shutdown()
	real := int64(RunOnKernel(nk, k))

	ratio := float64(real) / float64(analytic)
	if ratio < 0.8 || ratio > 1.3 {
		t.Fatalf("kernel execution %d vs analytic %d: ratio %.2f outside [0.8,1.3]",
			real, analytic, ratio)
	}
	// Both must be close to the ideal serial/N lower bound but above it.
	ideal := k.SerialCycles() / cpus
	if real <= ideal {
		t.Fatalf("real execution %d at or below ideal %d", real, ideal)
	}
	if float64(real) > 1.4*float64(ideal) {
		t.Fatalf("real execution %d too far above ideal %d", real, ideal)
	}
}

func TestRunOnKernelScales(t *testing.T) {
	k := workloads.SP()
	k.Steps = 2
	run := func(cpus int) int64 {
		eng := sim.NewEngine()
		m := machine.New(eng, model.KNL(), machine.Topology{Sockets: 1, CoresPerSocket: cpus}, 5)
		nk := nautilus.New(m, nautilus.Config{Timing: nautilus.TimingCooperative, QuantumCycles: 1 << 40})
		defer nk.Shutdown()
		return int64(RunOnKernel(nk, k))
	}
	t2, t16 := run(2), run(16)
	if sp := float64(t2) / float64(t16); sp < 5 {
		t.Fatalf("2->16 CPU speedup = %.1f, want >= 5", sp)
	}
}

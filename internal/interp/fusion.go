package interp

import (
	"encoding/json"
	"fmt"
	"sort"

	"repro/internal/ir"
)

// FusionTable selects which adjacent opcode pairs the compile-time
// fusion stage may collapse into superinstructions (compile.go). The
// structural pattern match (ir.FusiblePair) still applies; the table
// only narrows it.
//
// A nil *FusionTable is the static default heuristic: every structural
// pattern is allowed, so fusion works without a profile. An empty table
// (NoFusion) disables fusion entirely — benchmark baselines use it.
// Profile-derived tables (PairProfile.Table) allow only the hot pairs.
type FusionTable struct {
	set  map[[2]ir.Op]bool
	list [][2]ir.Op // sorted, deduplicated
	sig  uint64
}

// defaultFusionSig is the cache signature of the nil table. It cannot
// collide with a computed signature: NewFusionTable seeds the FNV hash
// with the pair count, whose contribution never yields ^0.
const defaultFusionSig = ^uint64(0)

// NewFusionTable builds a table allowing exactly the given opcode
// pairs. Order and duplicates do not matter; two tables with the same
// pair set have the same signature.
func NewFusionTable(pairs [][2]ir.Op) *FusionTable {
	t := &FusionTable{set: make(map[[2]ir.Op]bool, len(pairs))}
	for _, p := range pairs {
		if !t.set[p] {
			t.set[p] = true
			t.list = append(t.list, p)
		}
	}
	sort.Slice(t.list, func(i, j int) bool {
		if t.list[i][0] != t.list[j][0] {
			return t.list[i][0] < t.list[j][0]
		}
		return t.list[i][1] < t.list[j][1]
	})
	// FNV-1a over the sorted pair set.
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	sig := uint64(offset64)
	mix := func(v uint64) {
		sig ^= v
		sig *= prime64
	}
	mix(uint64(len(t.list)))
	for _, p := range t.list {
		mix(uint64(p[0]))
		mix(uint64(p[1]))
	}
	if sig == defaultFusionSig {
		sig--
	}
	t.sig = sig
	return t
}

// NoFusion returns an empty table: fusion disabled.
func NoFusion() *FusionTable { return NewFusionTable(nil) }

// Allows reports whether the pair (first, second) may fuse. The nil
// table allows everything (static default heuristic).
func (t *FusionTable) Allows(first, second ir.Op) bool {
	if t == nil {
		return true
	}
	return t.set[[2]ir.Op{first, second}]
}

// Sig returns the table's cache signature; Interp.ensureProg recompiles
// when it changes, like the module generation and the cost table.
func (t *FusionTable) Sig() uint64 {
	if t == nil {
		return defaultFusionSig
	}
	return t.sig
}

// Pairs returns the allowed pairs, sorted (nil for the nil table).
func (t *FusionTable) Pairs() [][2]ir.Op {
	if t == nil {
		return nil
	}
	out := make([][2]ir.Op, len(t.list))
	copy(out, t.list)
	return out
}

// MarshalJSON encodes the table as {"pairs": [["icmp","br"], ...]}
// using opcode mnemonics, sorted, so profile dumps are stable and
// reviewable.
func (t *FusionTable) MarshalJSON() ([]byte, error) {
	pairs := make([][2]string, 0, len(t.list))
	for _, p := range t.list {
		pairs = append(pairs, [2]string{p[0].String(), p[1].String()})
	}
	return json.Marshal(struct {
		Pairs [][2]string `json:"pairs"`
	}{pairs})
}

// UnmarshalJSON decodes a table written by MarshalJSON.
func (t *FusionTable) UnmarshalJSON(data []byte) error {
	var raw struct {
		Pairs [][2]string `json:"pairs"`
	}
	if err := json.Unmarshal(data, &raw); err != nil {
		return err
	}
	pairs := make([][2]ir.Op, 0, len(raw.Pairs))
	for _, p := range raw.Pairs {
		a, okA := ir.ParseOp(p[0])
		b, okB := ir.ParseOp(p[1])
		if !okA || !okB {
			return fmt.Errorf("interp: unknown opcode pair %q+%q in fusion table", p[0], p[1])
		}
		pairs = append(pairs, [2]ir.Op{a, b})
	}
	*t = *NewFusionTable(pairs)
	return nil
}

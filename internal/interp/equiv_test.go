// Equivalence tests between the compiled fast path and the reference
// tree-walking engine. These live in an external test package so they
// can drive the real kernel suite (internal/workloads imports interp).
package interp_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// runBoth executes entry on two fresh interpreters — fast path and
// reference — and requires identical results, Stats, and final heaps.
func runBoth(t *testing.T, m *ir.Module, entry string, args ...uint64) (uint64, error) {
	t.Helper()
	fast, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	fr, ferr := fast.Call(entry, args...)
	rr, rerr := ref.ReferenceCall(entry, args...)
	if fr != rr {
		t.Fatalf("%s: fast ret %d, reference ret %d", entry, fr, rr)
	}
	if (ferr == nil) != (rerr == nil) || (ferr != nil && ferr.Error() != rerr.Error()) {
		t.Fatalf("%s: fast err %v, reference err %v", entry, ferr, rerr)
	}
	if fast.Stats != ref.Stats {
		t.Fatalf("%s: stats diverge\nfast: %+v\nref:  %+v", entry, fast.Stats, ref.Stats)
	}
	if !reflect.DeepEqual(fast.Heap.Snapshot(), ref.Heap.Snapshot()) {
		t.Fatalf("%s: final heaps diverge", entry)
	}
	return fr, ferr
}

func TestFastMatchesReferenceOnKernels(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			got, err := runBoth(t, k.Build(), k.Entry)
			if err != nil {
				t.Fatal(err)
			}
			if k.Want != 0 && got != k.Want {
				t.Fatalf("checksum = %d, want %d", got, k.Want)
			}
		})
	}
}

func TestFastStepLimitParity(t *testing.T) {
	// Sweep MaxSteps across a window so the limit fires at every point
	// of a batched ALU run, in the loop header, and mid-terminator —
	// the fast path must fall back to single stepping and report
	// ErrStepLimit with exactly the reference's Stats every time.
	k := workloads.CARATSuite()[0] // stream-triad: dense batched body
	for limit := int64(1); limit <= 160; limit++ {
		m := k.Build()
		fast, _ := interp.New(m)
		ref, _ := interp.New(m)
		fast.MaxSteps, ref.MaxSteps = limit, limit
		fr, ferr := fast.Call(k.Entry)
		rr, rerr := ref.ReferenceCall(k.Entry)
		if !errors.Is(ferr, interp.ErrStepLimit) || !errors.Is(rerr, interp.ErrStepLimit) {
			t.Fatalf("limit %d: expected step-limit errors, got fast=%v ref=%v", limit, ferr, rerr)
		}
		if fr != rr || fast.Stats != ref.Stats {
			t.Fatalf("limit %d: divergence fast=(%d,%+v) ref=(%d,%+v)", limit, fr, fast.Stats, rr, ref.Stats)
		}
		// The over-limit step is counted before the check fires, so
		// both engines end at exactly limit+1.
		if fast.Stats.Steps != limit+1 {
			t.Fatalf("limit %d: stopped after %d steps", limit, fast.Stats.Steps)
		}
	}
}

func TestZeroValueLimitsUseDefaults(t *testing.T) {
	// An Interp literal that never mentions MaxSteps/MaxDepth gets the
	// package defaults instead of "no steps allowed".
	m := workloads.CARATSuite()[0].Build()
	h, err := interp.NewHeap(0x10000, 1<<24)
	if err != nil {
		t.Fatal(err)
	}
	ip := &interp.Interp{Mod: m, Heap: h, Cost: interp.DefaultCosts()}
	if _, err := ip.Call(workloads.CARATSuite()[0].Entry); err != nil {
		t.Fatalf("zero-value limits rejected execution: %v", err)
	}

	// Depth default: a recursion 300 deep must exceed DefaultMaxDepth.
	rm := ir.NewModule("r")
	f := rm.NewFunction("down", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	zero := b.Const(0)
	one := b.Const(1)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLE, n, zero), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	b.Ret(b.Call("down", b.Sub(n, one)))

	h2, _ := interp.NewHeap(0x10000, 1<<20)
	rip := &interp.Interp{Mod: rm, Heap: h2, Cost: interp.DefaultCosts()}
	if _, err := rip.Call("down", 300); !errors.Is(err, interp.ErrDepth) {
		t.Fatalf("default depth limit not applied: %v", err)
	}
	h3, _ := interp.NewHeap(0x10000, 1<<20)
	rip2 := &interp.Interp{Mod: rm, Heap: h3, Cost: interp.DefaultCosts()}
	if got, err := rip2.Call("down", 100); err != nil || got != 0 {
		t.Fatalf("recursion under default depth failed: %d, %v", got, err)
	}
}

func TestAbortHookRoutesToReference(t *testing.T) {
	// With Abort set, execution stops at the exact instruction the hook
	// first reports an error after — per-instruction polling semantics.
	m := workloads.CARATSuite()[0].Build()
	ip, err := interp.New(m)
	if err != nil {
		t.Fatal(err)
	}
	bomb := errors.New("teardown")
	polls := 0
	ip.Hooks.Abort = func() error {
		polls++
		if polls >= 50 {
			return bomb
		}
		return nil
	}
	_, callErr := ip.Call(workloads.CARATSuite()[0].Entry)
	if !errors.Is(callErr, bomb) {
		t.Fatalf("abort error not propagated: %v", callErr)
	}
	if polls != 50 {
		t.Fatalf("abort polled %d times, want 50 (per instruction)", polls)
	}
	if ip.Stats.Steps != 50 {
		t.Fatalf("steps = %d, want 50 (one poll per step)", ip.Stats.Steps)
	}
}

func TestExternParity(t *testing.T) {
	m := ir.NewModule("x")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	a := b.Const(5)
	c := b.Call("host_double", a)
	b.Ret(c)

	mk := func() *interp.Interp {
		ip, err := interp.New(m)
		if err != nil {
			t.Fatal(err)
		}
		ip.Hooks.Extern = func(name string, args []uint64) (uint64, int64, error) {
			if name != "host_double" || len(args) != 1 {
				t.Fatalf("extern got %s(%v)", name, args)
			}
			return args[0] * 2, 17, nil
		}
		return ip
	}
	fast, ref := mk(), mk()
	fr, ferr := fast.Call("main")
	rr, rerr := ref.ReferenceCall("main")
	if ferr != nil || rerr != nil || fr != 10 || rr != 10 {
		t.Fatalf("extern call: fast=(%d,%v) ref=(%d,%v)", fr, ferr, rr, rerr)
	}
	if fast.Stats != ref.Stats {
		t.Fatalf("extern stats diverge\nfast: %+v\nref:  %+v", fast.Stats, ref.Stats)
	}

	// Undefined function without an extern hook: identical error text.
	m2 := ir.NewModule("u")
	f2 := m2.NewFunction("main", 0)
	b2 := ir.NewBuilder(f2)
	b2.Ret(b2.Call("missing"))
	fu, _ := interp.New(m2)
	ru, _ := interp.New(m2)
	_, fe := fu.Call("main")
	_, re := ru.ReferenceCall("main")
	if fe == nil || re == nil || fe.Error() != re.Error() || !errors.Is(fe, interp.ErrUndefined) {
		t.Fatalf("undefined-call errors differ: fast=%v ref=%v", fe, re)
	}
	if fu.Stats != ru.Stats {
		t.Fatalf("undefined-call stats diverge\nfast: %+v\nref:  %+v", fu.Stats, ru.Stats)
	}
}

func TestPooledFramesSurviveDeepCalls(t *testing.T) {
	// Fibonacci exercises re-entrant frames at many depths with live
	// registers across nested calls — a frame pool that clobbered or
	// failed to zero frames would corrupt the result.
	m := ir.NewModule("fib")
	f := m.NewFunction("fib", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	two := b.Const(2)
	one := b.Const(1)
	base := b.Block("base")
	rec := b.Block("rec")
	b.Br(b.ICmp(ir.PredLT, n, two), base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	x := b.Call("fib", b.Sub(n, one))
	y := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(x, y))

	got, err := runBoth(t, m, "fib", 18)
	if err != nil {
		t.Fatal(err)
	}
	if got != 2584 {
		t.Fatalf("fib(18) = %d, want 2584", got)
	}
}

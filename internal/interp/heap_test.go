package interp

import (
	"testing"

	"repro/internal/mem"
)

func newTestHeap(t *testing.T) *Heap {
	t.Helper()
	h, err := NewHeap(0x10000, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapMoveOverlapForward(t *testing.T) {
	// dst overlaps the tail of src (dst > src): a naive front-to-back
	// copy-and-clear corrupts the overlapping words.
	h := newTestHeap(t)
	src := mem.Addr(0x20000)
	for i := 0; i < 8; i++ {
		h.Store(src+mem.Addr(i*8), uint64(100+i))
	}
	dst := src + 16 // overlap by 6 words
	h.Move(src, dst, 64)
	for i := 0; i < 8; i++ {
		if got := h.Load(dst + mem.Addr(i*8)); got != uint64(100+i) {
			t.Fatalf("dst word %d = %d, want %d", i, got, 100+i)
		}
	}
	// Source words outside the destination range are cleared.
	for i := 0; i < 2; i++ {
		if got := h.Load(src + mem.Addr(i*8)); got != 0 {
			t.Fatalf("src word %d = %d, want 0", i, got)
		}
	}
}

func TestHeapMoveOverlapBackward(t *testing.T) {
	// dst overlaps the head of src (dst < src).
	h := newTestHeap(t)
	src := mem.Addr(0x20040)
	for i := 0; i < 8; i++ {
		h.Store(src+mem.Addr(i*8), uint64(200+i))
	}
	dst := src - 24 // overlap by 5 words
	h.Move(src, dst, 64)
	for i := 0; i < 8; i++ {
		if got := h.Load(dst + mem.Addr(i*8)); got != uint64(200+i) {
			t.Fatalf("dst word %d = %d, want %d", i, got, 200+i)
		}
	}
	for i := 5; i < 8; i++ {
		if got := h.Load(src + mem.Addr(i*8)); got != 0 {
			t.Fatalf("src tail word %d = %d, want 0", i, got)
		}
	}
}

func TestHeapMoveSelf(t *testing.T) {
	h := newTestHeap(t)
	a := mem.Addr(0x20000)
	h.Store(a, 7)
	h.Store(a+8, 9)
	h.Move(a, a, 16)
	if h.Load(a) != 7 || h.Load(a+8) != 9 {
		t.Fatalf("self-move clobbered contents: %d %d", h.Load(a), h.Load(a+8))
	}
}

func TestHeapMovePartialWord(t *testing.T) {
	// n not a multiple of 8: the trailing partial word still moves
	// (word-granularity store). The old implementation's off < n loop
	// happened to cover this; keep the behavior pinned.
	h := newTestHeap(t)
	src, dst := mem.Addr(0x20000), mem.Addr(0x30000)
	h.Store(src, 11)
	h.Store(src+8, 22)
	h.Move(src, dst, 12) // 1.5 words -> 2 words
	if h.Load(dst) != 11 || h.Load(dst+8) != 22 {
		t.Fatalf("partial-word move lost data: %d %d", h.Load(dst), h.Load(dst+8))
	}
	if h.Load(src) != 0 || h.Load(src+8) != 0 {
		t.Fatalf("partial-word move left source: %d %d", h.Load(src), h.Load(src+8))
	}
	h.Move(dst, src, 0) // zero-length move is a no-op
	if h.Load(dst) != 11 {
		t.Fatalf("zero-length move moved data")
	}
}

func TestHeapSparseAndOverflowPages(t *testing.T) {
	h := newTestHeap(t)
	// Far beyond the pre-sized direct table but under the direct limit.
	far := mem.Addr(1 << 30)
	if h.Load(far) != 0 {
		t.Fatalf("untouched far word not zero")
	}
	h.Store(far, 42)
	if h.Load(far) != 42 {
		t.Fatalf("far word lost")
	}
	// Beyond the direct page table entirely: overflow map territory.
	huge := mem.Addr(1 << 40)
	if h.Load(huge) != 0 {
		t.Fatalf("untouched overflow word not zero")
	}
	h.Store(huge, 43)
	if h.Load(huge) != 43 {
		t.Fatalf("overflow word lost")
	}
	// Unaligned addresses hit the containing word, as before.
	h.Store(far+3, 99)
	if h.Load(far) != 99 {
		t.Fatalf("unaligned store did not align down")
	}
}

func TestHeapSnapshot(t *testing.T) {
	h := newTestHeap(t)
	h.Store(0x20000, 1)
	h.Store(1<<40, 2)
	h.Store(0x20008, 0) // explicit zero is indistinguishable from untouched
	snap := h.Snapshot()
	want := map[mem.Addr]uint64{0x20000: 1, 1 << 40: 2}
	if len(snap) != len(want) {
		t.Fatalf("snapshot has %d words, want %d: %v", len(snap), len(want), snap)
	}
	for a, v := range want {
		if snap[a] != v {
			t.Fatalf("snapshot[%#x] = %d, want %d", a, snap[a], v)
		}
	}
}

package interp

import (
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/mem"
)

// refCall is the reference tree-walking engine: it executes the IR
// directly, block pointer by block pointer, with every per-instruction
// obligation (step accounting, abort polling, hook dispatch) performed
// inline in program order. It is deliberately unclever — it defines the
// observable semantics the compiled fast path (exec.go) must reproduce
// bit-for-bit, and it is the engine used when Hooks.Abort is set.
//
// Callers must have run setLimits first (Call and ReferenceCall do).
func (ip *Interp) refCall(name string, args []uint64, depth int) (uint64, error) {
	if depth > ip.curMaxDepth {
		return 0, ErrDepth
	}
	f, ok := ip.Mod.Funcs[name]
	if !ok {
		if ip.Hooks.Extern != nil {
			ret, cost, err := ip.Hooks.Extern(name, args)
			ip.Stats.Cycles += cost
			return ret, err
		}
		return 0, fmt.Errorf("%w: %s", ErrUndefined, name)
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", name, f.NumParams, len(args))
	}
	regs := make([]uint64, f.NumRegs)
	ip.Stats.FrameWords += int64(f.NumRegs)
	if int64(f.NumRegs) > ip.Stats.MaxFrameRegs {
		ip.Stats.MaxFrameRegs = int64(f.NumRegs)
	}
	copy(regs, args)

	blk := f.Entry()
	idx := 0
	// Pair profiling (PairProfile): prevOp is the opcode executed just
	// before the current one within the same basic block; block
	// transfers reset it, matching the fusion stage's intra-block scope.
	prof := ip.PairProf
	prevOp := ir.Op(-1)
	for {
		if idx >= len(blk.Instrs) {
			return 0, fmt.Errorf("interp: fell off block %s.%s", f.Name, blk.Name)
		}
		in := blk.Instrs[idx]
		if prof != nil && prevOp >= 0 {
			prof.Note(prevOp, in.Op)
		}
		prevOp = in.Op
		ip.Stats.Steps++
		if ip.Stats.Steps > ip.curMaxSteps {
			return 0, ip.stepLimitErr()
		}
		if ip.Hooks.Abort != nil {
			if err := ip.Hooks.Abort(); err != nil {
				return 0, err
			}
		}
		switch in.Op {
		case ir.OpConst:
			regs[in.Dst] = uint64(in.Imm)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFConst:
			regs[in.Dst] = math.Float64bits(in.FImm)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpAdd:
			regs[in.Dst] = uint64(int64(regs[in.A]) + int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpSub:
			regs[in.Dst] = uint64(int64(regs[in.A]) - int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpMul:
			regs[in.Dst] = uint64(int64(regs[in.A]) * int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntMul
		case ir.OpDiv:
			b := int64(regs[in.B])
			if b == 0 {
				return 0, fmt.Errorf("interp: division by zero in %s.%s", f.Name, blk.Name)
			}
			regs[in.Dst] = uint64(int64(regs[in.A]) / b)
			ip.Stats.Cycles += ip.Cost.IntDiv
		case ir.OpRem:
			b := int64(regs[in.B])
			if b == 0 {
				return 0, fmt.Errorf("interp: modulo by zero in %s.%s", f.Name, blk.Name)
			}
			regs[in.Dst] = uint64(int64(regs[in.A]) % b)
			ip.Stats.Cycles += ip.Cost.IntDiv
		case ir.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpShl:
			regs[in.Dst] = regs[in.A] << (regs[in.B] & 63)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpShr:
			regs[in.Dst] = regs[in.A] >> (regs[in.B] & 63)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFAdd:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) + math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpFSub:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) - math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpFMul:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) * math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPMul
		case ir.OpFDiv:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) / math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPDiv
		case ir.OpICmp:
			regs[in.Dst] = boolToU64(icmp(in.Pred, int64(regs[in.A]), int64(regs[in.B])))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFCmp:
			regs[in.Dst] = boolToU64(fcmp(in.Pred, math.Float64frombits(regs[in.A]), math.Float64frombits(regs[in.B])))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpLoad:
			addr := mem.Addr(int64(regs[in.A]) + in.Imm)
			ip.Stats.Loads++
			ip.Stats.Cycles += ip.Cost.Load
			if ip.Hooks.MemAccess != nil {
				ip.Stats.Cycles += ip.Hooks.MemAccess(addr, false)
			}
			regs[in.Dst] = ip.Heap.Load(addr)
		case ir.OpStore:
			addr := mem.Addr(int64(regs[in.A]) + in.Imm)
			ip.Stats.Stores++
			ip.Stats.Cycles += ip.Cost.Store
			if ip.Hooks.MemAccess != nil {
				ip.Stats.Cycles += ip.Hooks.MemAccess(addr, true)
			}
			ip.Heap.Store(addr, regs[in.B])
		case ir.OpAlloc:
			size := uint64(in.Imm)
			if in.A != ir.NoReg {
				size = regs[in.A]
			}
			a, err := ip.Heap.Alloc(size)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = uint64(a)
			ip.Stats.Allocs++
			ip.Stats.Cycles += ip.Cost.Alloc
		case ir.OpFree:
			if err := ip.Heap.Free(mem.Addr(regs[in.A])); err != nil {
				return 0, err
			}
			ip.Stats.Frees++
			ip.Stats.Cycles += ip.Cost.Free
		case ir.OpCall:
			callArgs := make([]uint64, len(in.Args))
			for i, r := range in.Args {
				callArgs[i] = regs[r]
			}
			ip.Stats.Calls++
			ip.Stats.Cycles += ip.Cost.Call
			ret, err := ip.refCall(in.Callee, callArgs, depth+1)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = ret
		case ir.OpGuard:
			ip.Stats.Guards++
			if in.Region {
				if ip.Hooks.GuardRegion != nil {
					c := ip.Hooks.GuardRegion(mem.Addr(regs[in.A]))
					ip.Stats.Cycles += c
					ip.Stats.GuardCycles += c
				}
			} else if ip.Hooks.Guard != nil {
				c := ip.Hooks.Guard(mem.Addr(int64(regs[in.A]) + in.Imm))
				ip.Stats.Cycles += c
				ip.Stats.GuardCycles += c
			}
		case ir.OpTrackAlloc:
			if ip.Hooks.TrackAlloc != nil {
				sz := uint64(in.Imm)
				if in.B != ir.NoReg {
					sz = regs[in.B]
				}
				c := ip.Hooks.TrackAlloc(mem.Addr(regs[in.A]), sz)
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpTrackFree:
			if ip.Hooks.TrackFree != nil {
				c := ip.Hooks.TrackFree(mem.Addr(regs[in.A]))
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpTrackEsc:
			if ip.Hooks.TrackEsc != nil {
				loc := mem.Addr(int64(regs[in.A]) + in.Imm)
				c := ip.Hooks.TrackEsc(loc, regs[in.B])
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpYieldCheck:
			ip.Stats.YieldChecks++
			if ip.Hooks.YieldCheck != nil {
				c := ip.Hooks.YieldCheck(ip.Stats.Cycles)
				ip.Stats.Cycles += c
				ip.Stats.YieldCycles += c
			}
		case ir.OpPoll:
			ip.Stats.Polls++
			if ip.Hooks.Poll != nil {
				c := ip.Hooks.Poll()
				ip.Stats.Cycles += c
				ip.Stats.PollCycles += c
			}
		case ir.OpBr:
			ip.Stats.Cycles += ip.Cost.Branch
			if regs[in.A] != 0 {
				blk, idx = in.Target, 0
			} else {
				blk, idx = in.Else, 0
			}
			prevOp = ir.Op(-1)
			continue
		case ir.OpJmp:
			ip.Stats.Cycles += ip.Cost.Jump
			blk, idx = in.Target, 0
			prevOp = ir.Op(-1)
			continue
		case ir.OpRet:
			ip.Stats.Cycles += ip.Cost.Ret
			if in.A == ir.NoReg {
				return 0, nil
			}
			return regs[in.A], nil
		default:
			return 0, fmt.Errorf("interp: unimplemented op %s", in.Op)
		}
		idx++
	}
}

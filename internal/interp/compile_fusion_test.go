package interp

import (
	"testing"

	"repro/internal/ir"
)

// findFused returns the pc of the first slot carrying the given fused
// opcode, or -1.
func findFused(cf *cfunc, op int32) int {
	for pc := range cf.code {
		if cf.code[pc].op == op {
			return pc
		}
	}
	return -1
}

// TestFuseEncoding pins the superinstruction slot layout: the fused
// opcode replaces the first constituent's slot, the second
// constituent's operands ride in the spare fields (target/els as
// a2/b2, runCost as imm2, dst2, aux), the folded cost covers both
// constituents, and the slot at pc+1 keeps the original second
// instruction for the step-budget fallback.
func TestFuseEncoding(t *testing.T) {
	m := ir.NewModule("enc")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	c7 := b.Const(7)
	b.Store(buf, 0, c7) // const+store → alu+store
	x := b.Load(buf, 0)
	y := b.Load(buf, 8) // load+load
	_ = y
	b.Ret(x)

	cost := DefaultCosts()
	cf := Compile(m, cost, nil).Func("main")
	if cf.fused != 2 {
		t.Fatalf("fused %d pairs, want 2 (alu+store, load+load)", cf.fused)
	}

	pc := findFused(cf, opFusedALUStore)
	if pc < 0 {
		t.Fatal("no opFusedALUStore slot")
	}
	s1, s2 := &cf.code[pc], &cf.code[pc+1]
	if ir.Op(s1.aux) != ir.OpConst || s1.imm != 7 {
		t.Errorf("alu+store: aux=%v imm=%d, want const/7", ir.Op(s1.aux), s1.imm)
	}
	if s1.a2() != s2.a || s1.b2() != s2.b || s1.imm2() != s2.imm {
		t.Errorf("alu+store: a2/b2/imm2 = %d/%d/%d, want store operands %d/%d/%d",
			s1.a2(), s1.b2(), s1.imm2(), s2.a, s2.b, s2.imm)
	}
	if s1.cost != cost.IntALU+cost.Store {
		t.Errorf("alu+store: cost %d, want %d", s1.cost, cost.IntALU+cost.Store)
	}
	if ir.Op(s2.op) != ir.OpStore {
		t.Errorf("alu+store: second slot rewritten to %v; fallback needs it intact", ir.Op(s2.op))
	}

	pc = findFused(cf, opFusedLoadLoad)
	if pc < 0 {
		t.Fatal("no opFusedLoadLoad slot")
	}
	s1, s2 = &cf.code[pc], &cf.code[pc+1]
	if s1.dst2 != s2.dst || s1.a2() != s2.a || s1.imm2() != 8 {
		t.Errorf("load+load: dst2/a2/imm2 = %d/%d/%d, want %d/%d/8",
			s1.dst2, s1.a2(), s1.imm2(), s2.dst, s2.a)
	}
	if s1.cost != 2*cost.Load {
		t.Errorf("load+load: cost %d, want %d", s1.cost, 2*cost.Load)
	}
	if ir.Op(s2.op) != ir.OpLoad {
		t.Errorf("load+load: second slot rewritten to %v", ir.Op(s2.op))
	}
}

// TestFuseEncodingCmpBr pins that a fused compare-and-branch inherits
// the branch's resolved absolute targets and keeps the compare's
// predicate.
func TestFuseEncodingCmpBr(t *testing.T) {
	m := ir.NewModule("encbr")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	c1 := b.Const(1)
	c2 := b.Const(2)
	cond := b.ICmp(ir.PredLT, c1, c2)
	then := b.Block("then")
	els := b.Block("els")
	b.Br(cond, then, els)
	b.SetBlock(then)
	b.Ret(c1)
	b.SetBlock(els)
	b.Ret(c2)

	cost := DefaultCosts()
	cf := Compile(m, cost, nil).Func("main")
	pc := findFused(cf, opFusedICmpBr)
	if pc < 0 {
		t.Fatal("no opFusedICmpBr slot")
	}
	s1, s2 := &cf.code[pc], &cf.code[pc+1]
	if ir.Op(s2.op) != ir.OpBr {
		t.Fatalf("second slot is %v, want intact br", ir.Op(s2.op))
	}
	if s1.target != s2.target || s1.els != s2.els {
		t.Errorf("fused targets %d/%d, branch slot has %d/%d", s1.target, s1.els, s2.target, s2.els)
	}
	if ir.Pred(s1.pred) != ir.PredLT {
		t.Errorf("predicate %v, want lt", ir.Pred(s1.pred))
	}
	if s1.cost != cost.IntALU+cost.Branch {
		t.Errorf("cost %d, want %d", s1.cost, cost.IntALU+cost.Branch)
	}
}

// TestFuseGreedyNonOverlap pins left-to-right greedy matching: three
// consecutive loads form exactly one fused pair, and the third load
// stays a plain dispatch.
func TestFuseGreedyNonOverlap(t *testing.T) {
	m := ir.NewModule("greedy")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	a := b.Load(buf, 0)
	_ = b.Load(buf, 8)
	_ = b.Load(buf, 16)
	b.Ret(a)

	cf := Compile(m, DefaultCosts(), nil).Func("main")
	if cf.fused != 1 {
		t.Fatalf("fused %d pairs from three loads, want 1 (greedy non-overlap)", cf.fused)
	}
	plain := 0
	for pc := range cf.code {
		if ir.Op(cf.code[pc].op) == ir.OpLoad && cf.code[pc].cost == DefaultCosts().Load {
			plain++
		}
	}
	// pc+1 of the fused pair keeps an intact load slot (fallback only);
	// the third load is the one normal dispatch still reaches.
	if plain != 2 {
		t.Fatalf("%d un-fused load slots, want 2 (fallback shadow + trailing load)", plain)
	}
}

// TestFuseRespectsRunBatcher pins the selection policy's core rule:
// fusion never breaks up a pure-ALU chain the run batcher already
// dispatches as one unit, but an isolated inline-ALU pair does fuse.
func TestFuseRespectsRunBatcher(t *testing.T) {
	m := ir.NewModule("runs")
	chain := m.NewFunction("chain", 2)
	b := ir.NewBuilder(chain)
	p0, p1 := b.Param(0), b.Param(1)
	x := b.Add(p0, p1)
	y := b.Add(x, p1)
	z := b.Add(y, p1)
	b.Ret(z)

	iso := m.NewFunction("iso", 2)
	b = ir.NewBuilder(iso)
	p0, p1 = b.Param(0), b.Param(1)
	buf := b.Alloc(64)
	b.Store(buf, 0, p0)
	mv := b.Mov(p0)
	s := b.Add(mv, p1)
	b.Store(buf, 8, s)
	b.Ret(s)

	p := Compile(m, DefaultCosts(), nil)
	if n := p.FusedPairsIn("chain"); n != 0 {
		t.Errorf("ALU chain fused %d pairs; the run batcher owns it", n)
	}
	if n := p.FusedPairsIn("iso"); n != 1 {
		t.Errorf("isolated mov+add fused %d pairs, want 1", n)
	}
}

package interp

import (
	"testing"

	"repro/internal/ir"
)

func TestCompilePCResolution(t *testing.T) {
	m := sumModule()
	p := Compile(m, DefaultCosts(), nil)
	cf := p.funcs["sum"]
	if cf == nil {
		t.Fatal("sum not compiled")
	}
	f := m.Funcs["sum"]
	l := f.Layout()
	// Every branch/jump in the compiled code points at the PC of the
	// block the IR instruction names.
	pc := 0
	for bi, b := range l.Blocks {
		for ii, in := range b.Instrs {
			ci := cf.code[l.Start[bi]+ii]
			switch in.Op {
			case ir.OpJmp:
				want, _ := l.StartOf(in.Target)
				if int(ci.target) != want {
					t.Errorf("jmp at pc %d targets %d, want %d", pc, ci.target, want)
				}
			case ir.OpBr:
				wt, _ := l.StartOf(in.Target)
				we, _ := l.StartOf(in.Else)
				if int(ci.target) != wt || int(ci.els) != we {
					t.Errorf("br at pc %d targets (%d,%d), want (%d,%d)", pc, ci.target, ci.els, wt, we)
				}
			}
			pc++
		}
	}
	if cf.numRegs != f.NumRegs || cf.numParams != f.NumParams {
		t.Errorf("compiled shape %d/%d, want %d/%d", cf.numParams, cf.numRegs, f.NumParams, f.NumRegs)
	}
}

func TestCompileRunAnnotation(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("runs", 0)
	b := ir.NewBuilder(f)
	// Block layout: const, const, add (3-op run), store (not runnable),
	// ret. Suffix run lengths should be 3,2,1,0,0.
	c1 := b.Const(1)
	c2 := b.Const(2)
	s := b.Add(c1, c2)
	b.Store(c1, 0, s)
	b.Ret(s)

	cost := DefaultCosts()
	// NoFusion: this test pins the run annotation itself (the default
	// heuristic would fuse the add+store pair and shorten the run).
	p := Compile(m, cost, NoFusion())
	cf := p.funcs["runs"]
	wantLen := []int32{3, 2, 1, 0, 0}
	for i, w := range wantLen {
		if cf.code[i].runLen != w {
			t.Errorf("pc %d runLen = %d, want %d", i, cf.code[i].runLen, w)
		}
	}
	// Run cost of the head = 2 consts + 1 add, all IntALU.
	if got, want := cf.code[0].runCost, 3*cost.IntALU; got != want {
		t.Errorf("head runCost = %d, want %d", got, want)
	}
	// Terminators and memory ops carry their folded class cost.
	if cf.code[3].cost != cost.Store || cf.code[4].cost != cost.Ret {
		t.Errorf("folded costs store=%d ret=%d, want %d %d",
			cf.code[3].cost, cf.code[4].cost, cost.Store, cost.Ret)
	}
}

func TestCompileTrapSlot(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("falls", 0)
	b := ir.NewBuilder(f)
	b.Const(1) // no terminator: block falls off the end

	ip, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	_, errFast := ip.Call("falls")
	ref, _ := New(m)
	_, errRef := ref.ReferenceCall("falls")
	if errFast == nil || errRef == nil {
		t.Fatalf("fell-off execution succeeded: fast=%v ref=%v", errFast, errRef)
	}
	if errFast.Error() != errRef.Error() {
		t.Fatalf("fell-off diagnostics differ: fast=%q ref=%q", errFast, errRef)
	}
	if ip.Stats != ref.Stats {
		t.Fatalf("fell-off stats differ: fast=%+v ref=%+v", ip.Stats, ref.Stats)
	}
}

func TestRecompileOnMutation(t *testing.T) {
	m := sumModule()
	ip, err := New(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ip.Call("sum", 10); err != nil {
		t.Fatal(err)
	}
	prog1 := ip.prog
	if prog1 == nil {
		t.Fatal("no cached program after Call")
	}
	// Unmutated module, same costs: cache hit.
	if _, err := ip.Call("sum", 10); err != nil {
		t.Fatal(err)
	}
	if ip.prog != prog1 {
		t.Fatal("program recompiled without mutation")
	}
	// Structural mutation through the ir API bumps the generation and
	// forces a recompile that sees the new code.
	f := m.NewFunction("two", 0)
	b := ir.NewBuilder(f)
	b.Ret(b.Const(2))
	got, err := ip.Call("two")
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Fatalf("two() = %d, want 2", got)
	}
	if ip.prog == prog1 {
		t.Fatal("program not recompiled after module mutation")
	}
	// Cost-table change also invalidates.
	prog2 := ip.prog
	ip.Cost.IntALU = 5
	if _, err := ip.Call("two"); err != nil {
		t.Fatal(err)
	}
	if ip.prog == prog2 {
		t.Fatal("program not recompiled after cost change")
	}
}

package interp

import (
	"repro/internal/mem"
)

// The word store is a sparse paged flat array: a top-level page table
// of lazily allocated fixed-size pages. A load or store is two array
// indexes (page table, then page) instead of the map probe the old
// map[mem.Addr]uint64 store paid on every memory instruction — the same
// pointer-chasing-vs-flat-layout argument the paper's Nautilus memory
// design makes, applied to our own simulated hardware.
const (
	heapPageBits  = 12                // 4096 words = 32 KiB per page
	heapPageWords = 1 << heapPageBits // words per page
	heapPageMask  = heapPageWords - 1
	// maxDirectPage bounds the direct page table: word addresses below
	// maxDirectPage<<heapPageBits (64 GiB of address space) index the
	// table directly; anything above spills into the overflow map so a
	// stray store to a huge address cannot balloon the table.
	maxDirectPage = 1 << 21
)

// Heap is the interpreter's memory: a buddy allocator for addresses plus
// word-granularity content storage in a sparse paged flat store. The
// allocator is mem.Buddy's intrusive fast engine, so every IR alloc/free
// is O(log n) with zero map operations and zero Go heap allocations.
type Heap struct {
	Buddy *mem.Buddy

	pages    [][]uint64          // direct page table, grown on demand
	overflow map[uint64][]uint64 // pages at indexes >= maxDirectPage
	scratch  []uint64            // Move staging buffer (grow-only)
}

// NewHeap creates a heap of size bytes (power of two) based at base.
func NewHeap(base mem.Addr, size uint64) (*Heap, error) {
	b, err := mem.NewBuddy(base, size, 6)
	if err != nil {
		return nil, err
	}
	// Pre-size the page table to cover the buddy-managed range so the
	// hot path never grows it.
	top := (uint64(base) + size) >> 3 >> heapPageBits
	if top >= maxDirectPage {
		top = maxDirectPage - 1
	}
	return &Heap{Buddy: b, pages: make([][]uint64, top+1)}, nil
}

// Alloc allocates n bytes.
func (h *Heap) Alloc(n uint64) (mem.Addr, error) { return h.Buddy.Alloc(n) }

// Free releases an allocation.
func (h *Heap) Free(a mem.Addr) error { return h.Buddy.Free(a) }

// Load reads the 8-byte word at a (aligned down). Untouched memory
// reads as zero. The in-table hit path is small enough to inline into
// the interpreter loops; misses go through loadSlow.
func (h *Heap) Load(a mem.Addr) uint64 {
	w := uint64(a) >> 3
	pi := w >> heapPageBits
	if pi < uint64(len(h.pages)) {
		if pg := h.pages[pi]; pg != nil {
			return pg[w&heapPageMask]
		}
		return 0
	}
	return h.loadSlow(pi, w)
}

func (h *Heap) loadSlow(pi, w uint64) uint64 {
	if pi < maxDirectPage {
		return 0
	}
	if pg := h.overflow[pi]; pg != nil {
		return pg[w&heapPageMask]
	}
	return 0
}

// Store writes the 8-byte word at a (aligned down), allocating the
// containing page on first touch. Like Load, the hit path inlines and
// first-touch/overflow handling lives in storeSlow.
func (h *Heap) Store(a mem.Addr, v uint64) {
	w := uint64(a) >> 3
	pi := w >> heapPageBits
	if pi < uint64(len(h.pages)) {
		if pg := h.pages[pi]; pg != nil {
			pg[w&heapPageMask] = v
			return
		}
	}
	h.storeSlow(pi, w, v)
}

func (h *Heap) storeSlow(pi, w uint64, v uint64) {
	if pi < uint64(len(h.pages)) {
		pg := make([]uint64, heapPageWords)
		h.pages[pi] = pg
		pg[w&heapPageMask] = v
		return
	}
	if pi < maxDirectPage {
		np := make([][]uint64, pi+1)
		copy(np, h.pages)
		h.pages = np
		pg := make([]uint64, heapPageWords)
		h.pages[pi] = pg
		pg[w&heapPageMask] = v
		return
	}
	if h.overflow == nil {
		h.overflow = make(map[uint64][]uint64)
	}
	pg := h.overflow[pi]
	if pg == nil {
		pg = make([]uint64, heapPageWords)
		h.overflow[pi] = pg
	}
	pg[w&heapPageMask] = v
}

// Move copies n bytes of content from src to dst (CARAT region motion)
// and clears the source words. n is rounded up to whole 8-byte words (a
// trailing partial word moves as a full word, matching the
// word-granularity store). Overlapping regions are safe: the copy is
// staged through a scratch buffer, so dst always receives src's
// original content, and only source words outside the destination range
// end up cleared. Move(src, src, n) is therefore a no-op.
func (h *Heap) Move(src, dst mem.Addr, n uint64) {
	words := int((n + 7) / 8)
	if words == 0 || src == dst {
		return
	}
	if cap(h.scratch) < words {
		h.scratch = make([]uint64, words)
	}
	s := h.scratch[:words]
	for i := 0; i < words; i++ {
		s[i] = h.Load(src + mem.Addr(i*8))
	}
	for i := 0; i < words; i++ {
		h.Store(src+mem.Addr(i*8), 0)
	}
	for i := 0; i < words; i++ {
		h.Store(dst+mem.Addr(i*8), s[i])
	}
}

// Snapshot returns every non-zero word keyed by its (aligned) address.
// Zero words are indistinguishable from untouched memory, so two heaps
// with equal snapshots are observationally identical. Differential
// tests use this to compare final heap states across interpreter paths.
func (h *Heap) Snapshot() map[mem.Addr]uint64 {
	out := make(map[mem.Addr]uint64)
	collect := func(pi uint64, pg []uint64) {
		base := pi << heapPageBits
		for i, v := range pg {
			if v != 0 {
				out[mem.Addr((base+uint64(i))<<3)] = v
			}
		}
	}
	for pi, pg := range h.pages {
		if pg != nil {
			collect(uint64(pi), pg)
		}
	}
	for pi, pg := range h.overflow { // detvet:ok — fills a keyed map, order-independent
		collect(pi, pg)
	}
	return out
}

// Package interp executes internal/ir programs with cycle accounting.
//
// It is the "hardware" the compiler passes target: every instruction has
// a cycle cost, memory accesses can be routed through paging/TLB or
// coherence models, and the interweaving intrinsics (CARAT guards and
// tracking, compiler-timing yield checks, blended device polls) call out
// through Hooks so the runtime layers can charge their real costs and
// effect their real semantics.
//
// Execution has two engines with bit-identical observable behavior
// (return values, Stats, final heap contents, errors):
//
//   - The fast path (compile.go, exec.go) pre-decodes each function into
//     a contiguous instruction array with branch targets resolved to
//     absolute PCs and per-op cycle costs folded in at compile time,
//     fuses hot adjacent pairs into superinstructions, batches
//     straight-line ALU runs, and runs register frames out of a pooled
//     stack so the steady-state call loop does not allocate.
//   - The reference path (reference.go) is the original tree-walking
//     loop. It is the semantic oracle for differential tests, and it is
//     also the engine used whenever Hooks.Abort is set (abort polling is
//     specified per instruction) or PairProf is set (pair profiling
//     observes every executed adjacency).
//
// Call picks the engine; compiled programs are cached per Interp and
// invalidated by the module generation counter (ir.Module.Gen), by
// CostTable changes, and by FusionTable changes.
package interp

import (
	"errors"
	"math"

	"repro/internal/ir"
	"repro/internal/mem"
)

// Common execution errors.
var (
	ErrStepLimit = errors.New("interp: step limit exceeded")
	ErrDepth     = errors.New("interp: call depth exceeded")
	ErrUndefined = errors.New("interp: call to undefined function")
)

// Default execution limits, used when the corresponding Interp field is
// left at its zero value.
const (
	DefaultMaxSteps = 200_000_000
	DefaultMaxDepth = 256
)

// CostTable assigns cycle costs to instruction classes.
type CostTable struct {
	IntALU int64 // add/sub/logic/shift/cmp/mov/const
	IntMul int64
	IntDiv int64
	FPALU  int64 // fadd/fsub/fcmp
	FPMul  int64
	FPDiv  int64
	Load   int64 // base cost; memory model hooks add more
	Store  int64
	Alloc  int64
	Free   int64
	Call   int64
	Branch int64
	Jump   int64
	Ret    int64
}

// DefaultCosts returns x64-like latencies (throughput-ish costs).
func DefaultCosts() CostTable {
	return CostTable{
		IntALU: 1, IntMul: 3, IntDiv: 21,
		FPALU: 3, FPMul: 4, FPDiv: 13,
		Load: 4, Store: 4,
		Alloc: 40, Free: 30,
		Call: 6, Branch: 2, Jump: 1, Ret: 2,
	}
}

// Hooks connect intrinsics and memory traffic to the runtime layers.
// Each hook returns the cycles its work costs; nil hooks cost zero and
// do nothing.
type Hooks struct {
	// Guard is the CARAT protection check for an effective address.
	Guard func(addr mem.Addr) int64
	// GuardRegion is the hoisted whole-region CARAT check (one check
	// validates the entire allocation containing base).
	GuardRegion func(base mem.Addr) int64
	// TrackAlloc/TrackFree/TrackEsc are CARAT allocation-table updates.
	TrackAlloc func(addr mem.Addr, size uint64) int64
	TrackFree  func(addr mem.Addr) int64
	// TrackEsc records that a (possible) pointer value val was stored
	// at location loc, so the runtime can patch it if the pointee moves.
	TrackEsc func(loc mem.Addr, val uint64) int64
	// YieldCheck is the compiler-timing check; elapsed is the cycle
	// count consumed by this Interp so far.
	YieldCheck func(elapsed int64) int64
	// Poll is the blended device poll check.
	Poll func() int64
	// MemAccess is charged for every load/store effective address
	// (paging/TLB/coherence models).
	MemAccess func(addr mem.Addr, write bool) int64
	// Extern handles calls to functions not defined in the module.
	Extern func(name string, args []uint64) (uint64, int64, error)
	// Abort, when non-nil, is polled after every instruction; a non-nil
	// return stops execution with that error (protection-fault
	// teardown, deadline enforcement). Setting Abort routes execution
	// through the reference engine, which implements the per-step
	// polling contract exactly.
	Abort func() error
	// StepLimit, when non-nil, supplies the error returned when the
	// step budget (MaxSteps) is exhausted, substituting for the bare
	// ErrStepLimit sentinel. The fault-injection harness uses it to
	// surface budget exhaustion as a typed chaos fault; the returned
	// error should wrap ErrStepLimit so errors.Is still matches. Both
	// execution engines call it at the same instruction, preserving the
	// bit-identical-behavior contract.
	StepLimit func() error
}

// Stats aggregates execution counters.
type Stats struct {
	Steps       int64
	Cycles      int64
	Loads       int64
	Stores      int64
	Allocs      int64
	Frees       int64
	Guards      int64
	YieldChecks int64
	Polls       int64
	Calls       int64
	GuardCycles int64 // cycles attributable to guards (overhead accounting)
	YieldCycles int64
	PollCycles  int64
	TrackCycles int64
	// FrameWords is the total register-frame words acquired across
	// calls, and MaxFrameRegs the widest single frame — the frame-pool
	// footprint the CopyCoalesce pass shrinks. Both engines account
	// them at frame setup, so they stay bit-identical like every other
	// counter.
	FrameWords   int64
	MaxFrameRegs int64
}

// Interp executes functions of one module against one heap.
//
// An Interp is single-threaded; concurrent executors should each hold
// their own Interp (they may share a quiescent module).
type Interp struct {
	Mod   *ir.Module
	Heap  *Heap
	Cost  CostTable
	Hooks Hooks
	Stats Stats

	// Fusion selects which adjacent opcode pairs the compiled fast path
	// fuses into superinstructions. nil is the static default heuristic
	// (every structural pattern); NoFusion() disables fusion;
	// profile-derived tables (PairProfile.Table) fuse only hot pairs.
	// Changing it invalidates the compiled-program cache like a cost
	// table change.
	Fusion *FusionTable

	// PairProf, when non-nil, gathers dynamic adjacent-opcode-pair
	// frequencies during execution — the profile that drives fusion-table
	// selection. Profiling routes Call through the reference engine
	// (like Hooks.Abort), so the fast path never carries the counters.
	PairProf *PairProfile

	// MaxSteps bounds total executed instructions, cumulatively across
	// every Call on this Interp (Stats.Steps never resets on its own).
	// The zero value means DefaultMaxSteps, so struct-literal Interps
	// get a sane bound without spelling it out.
	MaxSteps int64
	// MaxDepth bounds call nesting. The zero value means
	// DefaultMaxDepth.
	MaxDepth int

	// Compiled-program cache (fast path). Rebuilt when the module
	// generation or the cost table changes.
	prog *Program

	// Pooled register frames and call-argument scratch: grow-only
	// stacks reused across calls so the steady-state call loop does
	// not allocate.
	regBuf []uint64
	regTop int
	argBuf []uint64
	argTop int

	// Effective limits for the Call in progress (zero-value defaults
	// applied).
	curMaxSteps int64
	curMaxDepth int
}

// New creates an interpreter over mod with a fresh 256 MiB heap.
func New(mod *ir.Module) (*Interp, error) {
	h, err := NewHeap(0x10000, 256<<20)
	if err != nil {
		return nil, err
	}
	return &Interp{
		Mod:      mod,
		Heap:     h,
		Cost:     DefaultCosts(),
		MaxSteps: DefaultMaxSteps,
		MaxDepth: DefaultMaxDepth,
	}, nil
}

// Call runs the named function with the given arguments and returns its
// result. Cycle and event counts accumulate in Stats across calls.
func (ip *Interp) Call(name string, args ...uint64) (uint64, error) {
	ip.setLimits()
	if ip.Hooks.Abort != nil || ip.PairProf != nil {
		// Abort is polled between consecutive instructions, and pair
		// profiling observes every executed adjacency; the reference
		// engine implements both contracts literally.
		return ip.refCall(name, args, 0)
	}
	ip.ensureProg()
	return ip.fastCall(name, args, 0)
}

// ReferenceCall runs the named function through the reference
// tree-walking engine regardless of hook configuration. Differential
// tests use it as the semantic oracle for the compiled fast path.
func (ip *Interp) ReferenceCall(name string, args ...uint64) (uint64, error) {
	ip.setLimits()
	return ip.refCall(name, args, 0)
}

// setLimits computes the effective limits for one Call, applying the
// zero-value defaults.
func (ip *Interp) setLimits() {
	ip.curMaxSteps = ip.MaxSteps
	if ip.curMaxSteps <= 0 {
		ip.curMaxSteps = DefaultMaxSteps
	}
	ip.curMaxDepth = ip.MaxDepth
	if ip.curMaxDepth <= 0 {
		ip.curMaxDepth = DefaultMaxDepth
	}
}

// stepLimitErr is the error both engines return on step-budget
// exhaustion: the Hooks.StepLimit substitute when installed (and
// non-nil), else the ErrStepLimit sentinel.
func (ip *Interp) stepLimitErr() error {
	if ip.Hooks.StepLimit != nil {
		if err := ip.Hooks.StepLimit(); err != nil {
			return err
		}
	}
	return ErrStepLimit
}

// Program returns the compiled program for the current module, cost
// table, and fusion table, compiling if the cache is stale — the same
// program a Call would execute (fusion reporting, tooling).
func (ip *Interp) Program() *Program {
	ip.ensureProg()
	return ip.prog
}

// ensureProg (re)compiles the module if the cached program is missing
// or stale (module mutated, cost table changed, or fusion table
// changed).
func (ip *Interp) ensureProg() {
	if ip.prog == nil || ip.prog.gen != ip.Mod.Gen() || ip.prog.cost != ip.Cost ||
		ip.prog.fsig != ip.Fusion.Sig() {
		ip.prog = Compile(ip.Mod, ip.Cost, ip.Fusion)
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func icmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

// F64 converts a raw register value to float64 (test convenience).
func F64(v uint64) float64 { return math.Float64frombits(v) }

// U64 converts a float64 to its raw register encoding.
func U64(f float64) uint64 { return math.Float64bits(f) }

// Package interp executes internal/ir programs with cycle accounting.
//
// It is the "hardware" the compiler passes target: every instruction has
// a cycle cost, memory accesses can be routed through paging/TLB or
// coherence models, and the interweaving intrinsics (CARAT guards and
// tracking, compiler-timing yield checks, blended device polls) call out
// through Hooks so the runtime layers can charge their real costs and
// effect their real semantics.
package interp

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/ir"
	"repro/internal/mem"
)

// Common execution errors.
var (
	ErrStepLimit = errors.New("interp: step limit exceeded")
	ErrDepth     = errors.New("interp: call depth exceeded")
	ErrUndefined = errors.New("interp: call to undefined function")
)

// CostTable assigns cycle costs to instruction classes.
type CostTable struct {
	IntALU int64 // add/sub/logic/shift/cmp/mov/const
	IntMul int64
	IntDiv int64
	FPALU  int64 // fadd/fsub/fcmp
	FPMul  int64
	FPDiv  int64
	Load   int64 // base cost; memory model hooks add more
	Store  int64
	Alloc  int64
	Free   int64
	Call   int64
	Branch int64
	Jump   int64
	Ret    int64
}

// DefaultCosts returns x64-like latencies (throughput-ish costs).
func DefaultCosts() CostTable {
	return CostTable{
		IntALU: 1, IntMul: 3, IntDiv: 21,
		FPALU: 3, FPMul: 4, FPDiv: 13,
		Load: 4, Store: 4,
		Alloc: 40, Free: 30,
		Call: 6, Branch: 2, Jump: 1, Ret: 2,
	}
}

// Hooks connect intrinsics and memory traffic to the runtime layers.
// Each hook returns the cycles its work costs; nil hooks cost zero and
// do nothing.
type Hooks struct {
	// Guard is the CARAT protection check for an effective address.
	Guard func(addr mem.Addr) int64
	// GuardRegion is the hoisted whole-region CARAT check (one check
	// validates the entire allocation containing base).
	GuardRegion func(base mem.Addr) int64
	// TrackAlloc/TrackFree/TrackEsc are CARAT allocation-table updates.
	TrackAlloc func(addr mem.Addr, size uint64) int64
	TrackFree  func(addr mem.Addr) int64
	// TrackEsc records that a (possible) pointer value val was stored
	// at location loc, so the runtime can patch it if the pointee moves.
	TrackEsc func(loc mem.Addr, val uint64) int64
	// YieldCheck is the compiler-timing check; elapsed is the cycle
	// count consumed by this Interp so far.
	YieldCheck func(elapsed int64) int64
	// Poll is the blended device poll check.
	Poll func() int64
	// MemAccess is charged for every load/store effective address
	// (paging/TLB/coherence models).
	MemAccess func(addr mem.Addr, write bool) int64
	// Extern handles calls to functions not defined in the module.
	Extern func(name string, args []uint64) (uint64, int64, error)
	// Abort, when non-nil, is polled after every instruction; a non-nil
	// return stops execution with that error (protection-fault
	// teardown, deadline enforcement).
	Abort func() error
}

// Stats aggregates execution counters.
type Stats struct {
	Steps       int64
	Cycles      int64
	Loads       int64
	Stores      int64
	Allocs      int64
	Frees       int64
	Guards      int64
	YieldChecks int64
	Polls       int64
	Calls       int64
	GuardCycles int64 // cycles attributable to guards (overhead accounting)
	YieldCycles int64
	PollCycles  int64
	TrackCycles int64
}

// Heap is the interpreter's memory: a buddy allocator for addresses plus
// word-granularity content storage.
type Heap struct {
	Buddy *mem.Buddy
	words map[mem.Addr]uint64
}

// NewHeap creates a heap of size bytes (power of two) based at base.
func NewHeap(base mem.Addr, size uint64) (*Heap, error) {
	b, err := mem.NewBuddy(base, size, 6)
	if err != nil {
		return nil, err
	}
	return &Heap{Buddy: b, words: make(map[mem.Addr]uint64)}, nil
}

// Alloc allocates n bytes.
func (h *Heap) Alloc(n uint64) (mem.Addr, error) { return h.Buddy.Alloc(n) }

// Free releases an allocation.
func (h *Heap) Free(a mem.Addr) error { return h.Buddy.Free(a) }

// Load reads the 8-byte word at a (aligned down).
func (h *Heap) Load(a mem.Addr) uint64 { return h.words[a&^7] }

// Store writes the 8-byte word at a (aligned down).
func (h *Heap) Store(a mem.Addr, v uint64) { h.words[a&^7] = v }

// Move copies n bytes of content from src to dst (CARAT region motion).
func (h *Heap) Move(src, dst mem.Addr, n uint64) {
	for off := uint64(0); off < n; off += 8 {
		h.words[(dst+mem.Addr(off))&^7] = h.words[(src+mem.Addr(off))&^7]
		delete(h.words, (src+mem.Addr(off))&^7)
	}
}

// Interp executes functions of one module against one heap.
type Interp struct {
	Mod   *ir.Module
	Heap  *Heap
	Cost  CostTable
	Hooks Hooks
	Stats Stats

	// MaxSteps bounds total executed instructions (default 200M).
	MaxSteps int64
	// MaxDepth bounds call nesting (default 256).
	MaxDepth int
}

// New creates an interpreter over mod with a fresh 256 MiB heap.
func New(mod *ir.Module) (*Interp, error) {
	h, err := NewHeap(0x10000, 256<<20)
	if err != nil {
		return nil, err
	}
	return &Interp{
		Mod:      mod,
		Heap:     h,
		Cost:     DefaultCosts(),
		MaxSteps: 200_000_000,
		MaxDepth: 256,
	}, nil
}

// Call runs the named function with the given arguments and returns its
// result. Cycle and event counts accumulate in Stats across calls.
func (ip *Interp) Call(name string, args ...uint64) (uint64, error) {
	return ip.call(name, args, 0)
}

func (ip *Interp) call(name string, args []uint64, depth int) (uint64, error) {
	if depth > ip.MaxDepth {
		return 0, ErrDepth
	}
	f, ok := ip.Mod.Funcs[name]
	if !ok {
		if ip.Hooks.Extern != nil {
			ret, cost, err := ip.Hooks.Extern(name, args)
			ip.Stats.Cycles += cost
			return ret, err
		}
		return 0, fmt.Errorf("%w: %s", ErrUndefined, name)
	}
	if len(args) != f.NumParams {
		return 0, fmt.Errorf("interp: %s wants %d args, got %d", name, f.NumParams, len(args))
	}
	regs := make([]uint64, f.NumRegs)
	copy(regs, args)

	blk := f.Entry()
	idx := 0
	for {
		if idx >= len(blk.Instrs) {
			return 0, fmt.Errorf("interp: fell off block %s.%s", f.Name, blk.Name)
		}
		in := blk.Instrs[idx]
		ip.Stats.Steps++
		if ip.Stats.Steps > ip.MaxSteps {
			return 0, ErrStepLimit
		}
		if ip.Hooks.Abort != nil {
			if err := ip.Hooks.Abort(); err != nil {
				return 0, err
			}
		}
		switch in.Op {
		case ir.OpConst:
			regs[in.Dst] = uint64(in.Imm)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFConst:
			regs[in.Dst] = math.Float64bits(in.FImm)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpMov:
			regs[in.Dst] = regs[in.A]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpAdd:
			regs[in.Dst] = uint64(int64(regs[in.A]) + int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpSub:
			regs[in.Dst] = uint64(int64(regs[in.A]) - int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpMul:
			regs[in.Dst] = uint64(int64(regs[in.A]) * int64(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.IntMul
		case ir.OpDiv:
			b := int64(regs[in.B])
			if b == 0 {
				return 0, fmt.Errorf("interp: division by zero in %s.%s", f.Name, blk.Name)
			}
			regs[in.Dst] = uint64(int64(regs[in.A]) / b)
			ip.Stats.Cycles += ip.Cost.IntDiv
		case ir.OpRem:
			b := int64(regs[in.B])
			if b == 0 {
				return 0, fmt.Errorf("interp: modulo by zero in %s.%s", f.Name, blk.Name)
			}
			regs[in.Dst] = uint64(int64(regs[in.A]) % b)
			ip.Stats.Cycles += ip.Cost.IntDiv
		case ir.OpAnd:
			regs[in.Dst] = regs[in.A] & regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpOr:
			regs[in.Dst] = regs[in.A] | regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpXor:
			regs[in.Dst] = regs[in.A] ^ regs[in.B]
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpShl:
			regs[in.Dst] = regs[in.A] << (regs[in.B] & 63)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpShr:
			regs[in.Dst] = regs[in.A] >> (regs[in.B] & 63)
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFAdd:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) + math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpFSub:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) - math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpFMul:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) * math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPMul
		case ir.OpFDiv:
			regs[in.Dst] = math.Float64bits(math.Float64frombits(regs[in.A]) / math.Float64frombits(regs[in.B]))
			ip.Stats.Cycles += ip.Cost.FPDiv
		case ir.OpICmp:
			regs[in.Dst] = boolToU64(icmp(in.Pred, int64(regs[in.A]), int64(regs[in.B])))
			ip.Stats.Cycles += ip.Cost.IntALU
		case ir.OpFCmp:
			regs[in.Dst] = boolToU64(fcmp(in.Pred, math.Float64frombits(regs[in.A]), math.Float64frombits(regs[in.B])))
			ip.Stats.Cycles += ip.Cost.FPALU
		case ir.OpLoad:
			addr := mem.Addr(int64(regs[in.A]) + in.Imm)
			ip.Stats.Loads++
			ip.Stats.Cycles += ip.Cost.Load
			if ip.Hooks.MemAccess != nil {
				ip.Stats.Cycles += ip.Hooks.MemAccess(addr, false)
			}
			regs[in.Dst] = ip.Heap.Load(addr)
		case ir.OpStore:
			addr := mem.Addr(int64(regs[in.A]) + in.Imm)
			ip.Stats.Stores++
			ip.Stats.Cycles += ip.Cost.Store
			if ip.Hooks.MemAccess != nil {
				ip.Stats.Cycles += ip.Hooks.MemAccess(addr, true)
			}
			ip.Heap.Store(addr, regs[in.B])
		case ir.OpAlloc:
			size := uint64(in.Imm)
			if in.A != ir.NoReg {
				size = regs[in.A]
			}
			a, err := ip.Heap.Alloc(size)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = uint64(a)
			ip.Stats.Allocs++
			ip.Stats.Cycles += ip.Cost.Alloc
		case ir.OpFree:
			if err := ip.Heap.Free(mem.Addr(regs[in.A])); err != nil {
				return 0, err
			}
			ip.Stats.Frees++
			ip.Stats.Cycles += ip.Cost.Free
		case ir.OpCall:
			callArgs := make([]uint64, len(in.Args))
			for i, r := range in.Args {
				callArgs[i] = regs[r]
			}
			ip.Stats.Calls++
			ip.Stats.Cycles += ip.Cost.Call
			ret, err := ip.call(in.Callee, callArgs, depth+1)
			if err != nil {
				return 0, err
			}
			regs[in.Dst] = ret
		case ir.OpGuard:
			ip.Stats.Guards++
			if in.Region {
				if ip.Hooks.GuardRegion != nil {
					c := ip.Hooks.GuardRegion(mem.Addr(regs[in.A]))
					ip.Stats.Cycles += c
					ip.Stats.GuardCycles += c
				}
			} else if ip.Hooks.Guard != nil {
				c := ip.Hooks.Guard(mem.Addr(int64(regs[in.A]) + in.Imm))
				ip.Stats.Cycles += c
				ip.Stats.GuardCycles += c
			}
		case ir.OpTrackAlloc:
			if ip.Hooks.TrackAlloc != nil {
				sz := uint64(in.Imm)
				if in.B != ir.NoReg {
					sz = regs[in.B]
				}
				c := ip.Hooks.TrackAlloc(mem.Addr(regs[in.A]), sz)
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpTrackFree:
			if ip.Hooks.TrackFree != nil {
				c := ip.Hooks.TrackFree(mem.Addr(regs[in.A]))
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpTrackEsc:
			if ip.Hooks.TrackEsc != nil {
				loc := mem.Addr(int64(regs[in.A]) + in.Imm)
				c := ip.Hooks.TrackEsc(loc, regs[in.B])
				ip.Stats.Cycles += c
				ip.Stats.TrackCycles += c
			}
		case ir.OpYieldCheck:
			ip.Stats.YieldChecks++
			if ip.Hooks.YieldCheck != nil {
				c := ip.Hooks.YieldCheck(ip.Stats.Cycles)
				ip.Stats.Cycles += c
				ip.Stats.YieldCycles += c
			}
		case ir.OpPoll:
			ip.Stats.Polls++
			if ip.Hooks.Poll != nil {
				c := ip.Hooks.Poll()
				ip.Stats.Cycles += c
				ip.Stats.PollCycles += c
			}
		case ir.OpBr:
			ip.Stats.Cycles += ip.Cost.Branch
			if regs[in.A] != 0 {
				blk, idx = in.Target, 0
			} else {
				blk, idx = in.Else, 0
			}
			continue
		case ir.OpJmp:
			ip.Stats.Cycles += ip.Cost.Jump
			blk, idx = in.Target, 0
			continue
		case ir.OpRet:
			ip.Stats.Cycles += ip.Cost.Ret
			if in.A == ir.NoReg {
				return 0, nil
			}
			return regs[in.A], nil
		default:
			return 0, fmt.Errorf("interp: unimplemented op %s", in.Op)
		}
		idx++
	}
}

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func icmp(p ir.Pred, a, b int64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

func fcmp(p ir.Pred, a, b float64) bool {
	switch p {
	case ir.PredEQ:
		return a == b
	case ir.PredNE:
		return a != b
	case ir.PredLT:
		return a < b
	case ir.PredLE:
		return a <= b
	case ir.PredGT:
		return a > b
	case ir.PredGE:
		return a >= b
	}
	return false
}

// F64 converts a raw register value to float64 (test convenience).
func F64(v uint64) float64 { return math.Float64frombits(v) }

// U64 converts a float64 to its raw register encoding.
func U64(f float64) uint64 { return math.Float64bits(f) }

// Superinstruction-fusion equivalence tests: the fused fast path must
// be bit-identical to the reference engine even when the step budget
// expires inside a fused pair, and fusion must be a pure performance
// transform (NoFusion and default fusion agree with the reference on
// everything observable).
package interp_test

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/interp"
	"repro/internal/ir"
	"repro/internal/workloads"
)

// fusedPatternsModule builds one function whose straight-line blocks
// exercise every fusion pattern the compiler recognizes, including
// hand-spliced CARAT-shaped guards (guard then the access it protects,
// same base and offset).
func fusedPatternsModule() *ir.Module {
	m := ir.NewModule("fusedpat")
	f := m.NewFunction("main", 0)
	b := ir.NewBuilder(f)

	// entry: alu+store twice (const feeding the store), then const+jmp
	// (alu+jmp with a const constituent).
	buf := b.Alloc(128)
	c7 := b.Const(7)
	b.Store(buf, 0, c7)
	c9 := b.Const(9)
	b.Store(buf, 8, c9)
	c0 := b.Const(0)
	loads := b.Block("loads")
	b.Jmp(loads)

	// loads: load+load, then load+alu (the ALU consumes the load).
	b.SetBlock(loads)
	x := b.Load(buf, 0)
	y := b.Load(buf, 8)
	_ = x
	z := b.Load(buf, 0)
	s := b.Add(z, y)
	b.Store(buf, 16, s)
	addr := b.Block("addr")
	b.Jmp(addr)

	// addr: alu+load (the ALU computes the load's base), then alu+store.
	b.SetBlock(addr)
	a1 := b.Add(buf, c0)
	w := b.Load(a1, 0)
	s2 := b.Add(w, c7)
	b.Store(buf, 24, s2)
	stores := b.Block("stores")
	b.Jmp(stores)

	// stores: store+alu (streaming-loop tail shape).
	b.SetBlock(stores)
	b.Store(buf, 32, c7)
	_ = b.Add(c7, c9)
	guards := b.Block("guards")
	b.Jmp(guards)

	// guards: guard+load and guard+store, spliced below.
	b.SetBlock(guards)
	_ = b.Load(buf, 0)
	b.Store(buf, 8, c9)
	chain := b.Block("chain")
	b.Jmp(chain)

	// chain: isolated mov+add (alu+alu), flanked by non-ALU on both
	// sides so the selection policy admits it.
	b.SetBlock(chain)
	mv := b.Mov(c7)
	ad := b.Add(mv, c9)
	b.Store(buf, 40, ad)
	fbr := b.Block("fbr")
	b.Jmp(fbr)

	// fbr: fcmp+br.
	b.SetBlock(fbr)
	fx := b.FConst(1.5)
	fy := b.FConst(2.5)
	cond := b.FCmp(ir.PredLT, fx, fy)
	ft := b.Block("ft")
	ff := b.Block("ff")
	b.Br(cond, ft, ff)
	loop := b.Block("loop")
	b.SetBlock(ft)
	b.Jmp(loop)
	b.SetBlock(ff)
	b.Jmp(loop)

	// loop: icmp+br in the header, store+alu rescued by alu+jmp on the
	// backedge (store; add; mov; jmp → two fused pairs).
	b.SetBlock(loop)
	b.CountingLoop(0, 4, 1, func(i ir.Reg) {
		b.Store(b.Add(buf, b.Mul(i, b.Const(8))), 48, i)
	})
	b.Ret(b.Load(buf, 16))

	// Hand-splice the CARAT guards: guard(base, off) immediately before
	// the access with the same base and offset.
	g := f.Blocks[0]
	for _, blk := range f.Blocks {
		if blk.Name == "guards" {
			g = blk
		}
	}
	var out []*ir.Instr
	for _, in := range g.Instrs {
		if in.Op == ir.OpLoad || in.Op == ir.OpStore {
			out = append(out, &ir.Instr{Op: ir.OpGuard, Dst: ir.NoReg, A: in.A, B: ir.NoReg, Imm: in.Imm})
		}
		out = append(out, in)
	}
	g.Instrs = out
	return m
}

// TestFusionPatternCoverage pins that fusedPatternsModule really
// contains every pattern, so the budget sweep below exercises each
// fused dispatch arm.
func TestFusionPatternCoverage(t *testing.T) {
	m := fusedPatternsModule()
	got := map[string]int{}
	for _, f := range m.Functions() {
		for _, blk := range f.Blocks {
			ir.EachFusiblePair(blk, nil, func(i int, k ir.FuseKind) {
				got[k.String()]++
			})
		}
	}
	want := []string{
		"cmp+br", "load+alu", "alu+load", "alu+store", "guard+load",
		"guard+store", "alu+alu", "load+load", "store+alu", "alu+jmp",
	}
	for _, k := range want {
		if got[k] == 0 {
			t.Errorf("pattern %s not present in the coverage module (have %v)", k, got)
		}
	}
	p := interp.Compile(m, interp.DefaultCosts(), nil)
	total := 0
	for _, n := range got {
		total += n
	}
	if p.FusedPairs() != total {
		t.Errorf("compiled %d fused pairs, EachFusiblePair visits %d", p.FusedPairs(), total)
	}
	if p.FusedPairs() < len(want) {
		t.Fatalf("only %d fused pairs; need at least one per pattern", p.FusedPairs())
	}
}

// TestFusedStepBudgetParity sweeps MaxSteps across the whole execution
// of the all-patterns module, so the budget expires inside (and at
// every boundary of) each kind of fused pair. The fast path must fall
// back to single-stepping the pair's first constituent and report
// ErrStepLimit with exactly the reference's Stats and heap: both
// engines stop at Steps == limit+1 (the over-limit step is counted
// before the check fires).
func TestFusedStepBudgetParity(t *testing.T) {
	probe, err := interp.New(fusedPatternsModule())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := probe.ReferenceCall("main"); err != nil {
		t.Fatal(err)
	}
	total := probe.Stats.Steps

	for limit := int64(1); limit < total; limit++ {
		m := fusedPatternsModule()
		fast, _ := interp.New(m)
		ref, _ := interp.New(m)
		fast.MaxSteps, ref.MaxSteps = limit, limit
		fr, ferr := fast.Call("main")
		rr, rerr := ref.ReferenceCall("main")
		if !errors.Is(ferr, interp.ErrStepLimit) || !errors.Is(rerr, interp.ErrStepLimit) {
			t.Fatalf("limit %d: expected step-limit errors, got fast=%v ref=%v", limit, ferr, rerr)
		}
		if fr != rr || fast.Stats != ref.Stats {
			t.Fatalf("limit %d: divergence\nfast: %+v\nref:  %+v", limit, fast.Stats, ref.Stats)
		}
		if fast.Stats.Steps != limit+1 {
			t.Fatalf("limit %d: stopped after %d steps, want %d", limit, fast.Stats.Steps, limit+1)
		}
		if !reflect.DeepEqual(fast.Heap.Snapshot(), ref.Heap.Snapshot()) {
			t.Fatalf("limit %d: heaps diverge", limit)
		}
	}

	// At exactly the full budget both engines complete.
	m := fusedPatternsModule()
	fast, _ := interp.New(m)
	ref, _ := interp.New(m)
	fast.MaxSteps, ref.MaxSteps = total, total
	fr, ferr := fast.Call("main")
	rr, rerr := ref.ReferenceCall("main")
	if ferr != nil || rerr != nil || fr != rr || fast.Stats != ref.Stats {
		t.Fatalf("full budget: fast=(%d,%v) ref=(%d,%v)", fr, ferr, rr, rerr)
	}
}

// TestKernelStepBudgetAcrossFusedPairs runs the same sweep over a real
// kernel prefix: the fused compiled form of stream-triad must hit the
// limit on exactly the same instruction as the reference for every
// budget in the window (the window covers the init loop and the first
// triad iterations, so limits land inside cmp+br, store+alu, and
// alu+jmp pairs).
func TestKernelStepBudgetAcrossFusedPairs(t *testing.T) {
	k := workloads.CARATSuite()[0]
	if p := interp.Compile(k.Build(), interp.DefaultCosts(), nil); p.FusedPairs() == 0 {
		t.Fatal("stream-triad compiles with no fused pairs")
	}
	for limit := int64(1); limit <= 200; limit++ {
		m := k.Build()
		fast, _ := interp.New(m)
		ref, _ := interp.New(m)
		fast.MaxSteps, ref.MaxSteps = limit, limit
		fr, ferr := fast.Call(k.Entry)
		rr, rerr := ref.ReferenceCall(k.Entry)
		if !errors.Is(ferr, interp.ErrStepLimit) || !errors.Is(rerr, interp.ErrStepLimit) {
			t.Fatalf("limit %d: expected step-limit errors, got fast=%v ref=%v", limit, ferr, rerr)
		}
		if fr != rr || fast.Stats != ref.Stats || fast.Stats.Steps != limit+1 {
			t.Fatalf("limit %d: divergence fast=%+v ref=%+v", limit, fast.Stats, ref.Stats)
		}
	}
}

// TestNoFusionEquivalence pins that disabling fusion changes nothing
// observable: NoFusion fast path == reference on the whole kernel
// suite, and the all-patterns module returns the same value fused,
// unfused, and interpreted.
func TestNoFusionEquivalence(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		m := k.Build()
		fast, _ := interp.New(m)
		fast.Fusion = interp.NoFusion()
		ref, _ := interp.New(m)
		fr, ferr := fast.Call(k.Entry)
		rr, rerr := ref.ReferenceCall(k.Entry)
		if ferr != nil || rerr != nil || fr != rr || fast.Stats != ref.Stats {
			t.Fatalf("%s: NoFusion fast=(%d,%v) ref=(%d,%v)", k.Name, fr, ferr, rr, rerr)
		}
		if fast.Program().FusedPairs() != 0 {
			t.Fatalf("%s: NoFusion program still has %d fused pairs", k.Name, fast.Program().FusedPairs())
		}
	}

	m := fusedPatternsModule()
	fused, _ := interp.New(m)
	unfused, _ := interp.New(m)
	unfused.Fusion = interp.NoFusion()
	ref, _ := interp.New(m)
	a, aerr := fused.Call("main")
	b, berr := unfused.Call("main")
	c, cerr := ref.ReferenceCall("main")
	if aerr != nil || berr != nil || cerr != nil || a != b || b != c {
		t.Fatalf("fused=%d unfused=%d ref=%d (errs %v %v %v)", a, b, c, aerr, berr, cerr)
	}
	if fused.Stats != ref.Stats || unfused.Stats != ref.Stats {
		t.Fatalf("stats diverge\nfused:   %+v\nunfused: %+v\nref:     %+v",
			fused.Stats, unfused.Stats, ref.Stats)
	}
	if fused.Program().FusedPairs() == 0 {
		t.Fatal("default heuristic fused nothing in the all-patterns module")
	}
}

// TestFusionTableSelection pins profile-guided filtering: a fusion
// table restricted to cmp+br admits only those pairs, results stay
// bit-identical, and swapping the table on a live interpreter
// recompiles (the program cache keys on the table signature).
func TestFusionTableSelection(t *testing.T) {
	m := fusedPatternsModule()
	full := interp.Compile(m, interp.DefaultCosts(), nil)
	only := interp.NewFusionTable([][2]ir.Op{{ir.OpICmp, ir.OpBr}, {ir.OpFCmp, ir.OpBr}})
	restricted := interp.Compile(m, interp.DefaultCosts(), only)
	if restricted.FusedPairs() >= full.FusedPairs() {
		t.Fatalf("restricted table fused %d pairs, full heuristic %d",
			restricted.FusedPairs(), full.FusedPairs())
	}
	if restricted.FusedPairs() != 2 {
		t.Fatalf("cmp+br-only table fused %d pairs, want 2 (icmp+br, fcmp+br)", restricted.FusedPairs())
	}

	ip, _ := interp.New(m)
	ip.Fusion = only
	ref, _ := interp.New(m)
	fr, ferr := ip.Call("main")
	rr, rerr := ref.ReferenceCall("main")
	if ferr != nil || rerr != nil || fr != rr || ip.Stats != ref.Stats {
		t.Fatalf("restricted table diverges: fast=(%d,%v) ref=(%d,%v)", fr, ferr, rr, rerr)
	}

	p1 := ip.Program()
	ip.Fusion = nil // back to the default heuristic
	if _, err := ip.Call("main"); err != nil {
		t.Fatal(err)
	}
	p2 := ip.Program()
	if p1 == p2 {
		t.Fatal("fusion-table change did not recompile the program")
	}
	if p2.FusedPairs() != full.FusedPairs() {
		t.Fatalf("recompiled program fused %d pairs, want %d", p2.FusedPairs(), full.FusedPairs())
	}
}

// TestLintFusibleLockstep is in internal/analysis's court for the walk
// itself; here we pin the compiled-engine side of the contract: for
// every kernel, the number of fusible-pair diagnostics the shared walk
// reports equals the superinstruction count the compiler forms with
// the default heuristic.
func TestLintFusibleLockstep(t *testing.T) {
	for _, k := range workloads.CARATSuite() {
		m := k.Build()
		visits := 0
		for _, f := range m.Functions() {
			for _, blk := range f.Blocks {
				ir.EachFusiblePair(blk, nil, func(int, ir.FuseKind) { visits++ })
			}
		}
		p := interp.Compile(m, interp.DefaultCosts(), nil)
		if p.FusedPairs() != visits {
			t.Errorf("%s: compiler fused %d pairs, shared walk visits %d", k.Name, p.FusedPairs(), visits)
		}
		if p.FusedPairs() == 0 {
			t.Errorf("%s: no fused pairs formed", k.Name)
		}
	}
}

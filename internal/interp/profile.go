package interp

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ir"
)

// PairProfile counts adjacent executed opcode pairs within basic
// blocks — the dynamic frequency data that drives profile-guided
// superinstruction selection. The reference engine gathers it when
// Interp.PairProf is set (profiling routes Call through the reference
// path, like Hooks.Abort, so the fast path never pays for counters);
// block transfers reset the pairing, matching the fuser's intra-block
// scope.
//
// The counter matrix is a fixed array, not part of Stats: Stats must
// stay a comparable value type (differential tests compare it with !=).
type PairProfile struct {
	counts [ir.NumOps][ir.NumOps]int64
}

// Note records one executed adjacency (first then second). Out-of-range
// opcodes (engine-synthetic) are ignored.
func (p *PairProfile) Note(first, second ir.Op) {
	if first < 0 || int(first) >= ir.NumOps || second < 0 || int(second) >= ir.NumOps {
		return
	}
	p.counts[first][second]++
}

// Merge adds q's counts into p (suite-wide aggregation of per-kernel
// profiles).
func (p *PairProfile) Merge(q *PairProfile) {
	if q == nil {
		return
	}
	for a := 0; a < ir.NumOps; a++ {
		for b := 0; b < ir.NumOps; b++ {
			p.counts[a][b] += q.counts[a][b]
		}
	}
}

// PairCount is one profile row.
type PairCount struct {
	First, Second ir.Op
	Count         int64
}

// Top returns the n most frequent pairs, ordered by count descending
// with (first, second) opcode order as the tie-break, so the output is
// deterministic for equal counts. Zero-count pairs never appear.
func (p *PairProfile) Top(n int) []PairCount {
	var rows []PairCount
	for a := 0; a < ir.NumOps; a++ {
		for b := 0; b < ir.NumOps; b++ {
			if c := p.counts[a][b]; c > 0 {
				rows = append(rows, PairCount{ir.Op(a), ir.Op(b), c})
			}
		}
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		if rows[i].First != rows[j].First {
			return rows[i].First < rows[j].First
		}
		return rows[i].Second < rows[j].Second
	})
	if n > 0 && len(rows) > n {
		rows = rows[:n]
	}
	return rows
}

// Total returns the total number of recorded adjacencies.
func (p *PairProfile) Total() int64 {
	var sum int64
	for a := 0; a < ir.NumOps; a++ {
		for b := 0; b < ir.NumOps; b++ {
			sum += p.counts[a][b]
		}
	}
	return sum
}

// Render formats the top-n pair table for `interweave interp -profile`.
// The fusible column marks pairs the fusion stage could select
// (structural opcode-level check); ordering is Top's, so the output is
// byte-stable for a given profile.
func (p *PairProfile) Render(n int) string {
	rows := p.Top(n)
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-28s %12s  %s\n", "rank", "pair", "count", "fusible")
	for i, r := range rows {
		fus := "-"
		if ir.FusibleOps(r.First, r.Second) {
			fus = "yes"
		}
		fmt.Fprintf(&sb, "%-4d %-28s %12d  %s\n",
			i+1, r.First.String()+" + "+r.Second.String(), r.Count, fus)
	}
	return sb.String()
}

// Table derives a fusion table from the profile: the fusible pairs
// among the top n. Pairs that cannot match any fusion pattern (e.g.
// jmp+const block seams) are skipped without consuming a slot.
func (p *PairProfile) Table(n int) *FusionTable {
	var pairs [][2]ir.Op
	for _, r := range p.Top(0) {
		if !ir.FusibleOps(r.First, r.Second) {
			continue
		}
		pairs = append(pairs, [2]ir.Op{r.First, r.Second})
		if n > 0 && len(pairs) >= n {
			break
		}
	}
	return NewFusionTable(pairs)
}

package interp

import (
	"errors"
	"math"
	"testing"

	"repro/internal/ir"
	"repro/internal/mem"
)

func sumModule() *ir.Module {
	m := ir.NewModule("t")
	f := m.NewFunction("sum", 1)
	b := ir.NewBuilder(f)
	n := b.Param(0)
	s := b.Const(0)
	one := b.Const(1)
	i := b.Const(0)
	header := b.Block("header")
	body := b.Block("body")
	exit := b.Block("exit")
	b.Jmp(header)
	b.SetBlock(header)
	cond := b.ICmp(ir.PredLT, i, n)
	b.Br(cond, body, exit)
	b.SetBlock(body)
	b.MovTo(s, b.Add(s, i))
	b.MovTo(i, b.Add(i, one))
	b.Jmp(header)
	b.SetBlock(exit)
	b.Ret(s)
	return m
}

func TestSumLoop(t *testing.T) {
	ip, err := New(sumModule())
	if err != nil {
		t.Fatal(err)
	}
	got, err := ip.Call("sum", 100)
	if err != nil {
		t.Fatal(err)
	}
	if got != 4950 {
		t.Fatalf("sum(100) = %d, want 4950", got)
	}
	if ip.Stats.Cycles == 0 || ip.Stats.Steps == 0 {
		t.Fatal("no accounting recorded")
	}
}

func TestArithmeticOps(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	x, y := b.Param(0), b.Param(1)
	r := b.Mul(b.Sub(b.Add(x, y), b.Const(1)), b.Const(2)) // ((x+y)-1)*2
	r = b.Add(r, b.Rem(x, b.Const(7)))
	r = b.Xor(r, b.Const(0))
	r = b.Or(r, b.And(r, r))
	r = b.Shr(b.Shl(r, b.Const(3)), b.Const(3))
	b.Ret(r)
	ip, _ := New(m)
	got, err := ip.Call("f", 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(((10+5)-1)*2 + 10%7)
	if got != want {
		t.Fatalf("got %d, want %d", got, want)
	}
}

func TestDivByZero(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 1)
	b := ir.NewBuilder(f)
	b.Ret(b.Div(b.Param(0), b.Const(0)))
	ip, _ := New(m)
	if _, err := ip.Call("f", 5); err == nil {
		t.Fatal("expected division-by-zero error")
	}
}

func TestFloatOps(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	x := b.FConst(1.5)
	y := b.FConst(2.0)
	r := b.FDiv(b.FMul(b.FAdd(x, y), b.FSub(y, x)), y) // (3.5*0.5)/2 = 0.875
	b.Ret(r)
	ip, _ := New(m)
	got, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if v := F64(got); math.Abs(v-0.875) > 1e-12 {
		t.Fatalf("got %v, want 0.875", v)
	}
}

func TestComparePredicates(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 2)
	b := ir.NewBuilder(f)
	x, y := b.Param(0), b.Param(1)
	acc := b.Const(0)
	for bit, p := range []ir.Pred{ir.PredEQ, ir.PredNE, ir.PredLT, ir.PredLE, ir.PredGT, ir.PredGE} {
		c := b.ICmp(p, x, y)
		sh := b.Shl(c, b.Const(int64(bit)))
		b.MovTo(acc, b.Or(acc, sh))
	}
	b.Ret(acc)
	ip, _ := New(m)
	got, _ := ip.Call("f", 3, 5)
	// 3 vs 5: EQ=0 NE=1 LT=1 LE=1 GT=0 GE=0 -> bits 1,2,3 -> 0b001110
	if got != 0b001110 {
		t.Fatalf("predicate bits = %06b", got)
	}
	got, _ = ip.Call("f", 5, 5)
	// EQ=1 NE=0 LT=0 LE=1 GT=0 GE=1 -> 0b101001
	if got != 0b101001 {
		t.Fatalf("predicate bits = %06b", got)
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	v := b.Const(0xdead)
	b.Store(buf, 8, v)
	got := b.Load(buf, 8)
	b.Free(buf)
	b.Ret(got)
	ip, _ := New(m)
	r, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if r != 0xdead {
		t.Fatalf("round trip = %#x", r)
	}
	if ip.Stats.Allocs != 1 || ip.Stats.Frees != 1 || ip.Stats.Loads != 1 || ip.Stats.Stores != 1 {
		t.Fatalf("stats = %+v", ip.Stats)
	}
}

func TestFunctionCallsAndRecursion(t *testing.T) {
	m := ir.NewModule("t")
	fib := m.NewFunction("fib", 1)
	b := ir.NewBuilder(fib)
	n := b.Param(0)
	two := b.Const(2)
	rec := b.Block("rec")
	base := b.Block("base")
	cond := b.ICmp(ir.PredLT, n, two)
	b.Br(cond, base, rec)
	b.SetBlock(base)
	b.Ret(n)
	b.SetBlock(rec)
	one := b.Const(1)
	a := b.Call("fib", b.Sub(n, one))
	c := b.Call("fib", b.Sub(n, two))
	b.Ret(b.Add(a, c))

	ip, _ := New(m)
	got, err := ip.Call("fib", 15)
	if err != nil {
		t.Fatal(err)
	}
	if got != 610 {
		t.Fatalf("fib(15) = %d, want 610", got)
	}
}

func TestCallDepthLimit(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("inf", 0)
	b := ir.NewBuilder(f)
	b.Ret(b.Call("inf"))
	ip, _ := New(m)
	ip.MaxDepth = 50
	if _, err := ip.Call("inf"); !errors.Is(err, ErrDepth) {
		t.Fatalf("err = %v, want depth", err)
	}
}

func TestStepLimit(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("spin", 0)
	b := ir.NewBuilder(f)
	loop := b.Block("loop")
	b.Jmp(loop)
	b.SetBlock(loop)
	b.Jmp(loop)
	ip, _ := New(m)
	ip.MaxSteps = 1000
	if _, err := ip.Call("spin"); !errors.Is(err, ErrStepLimit) {
		t.Fatalf("err = %v, want step limit", err)
	}
}

func TestUndefinedCall(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	b.Ret(b.Call("nope"))
	ip, _ := New(m)
	if _, err := ip.Call("f"); !errors.Is(err, ErrUndefined) {
		t.Fatalf("err = %v", err)
	}
}

func TestExternHook(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	x := b.Const(21)
	b.Ret(b.Call("double", x))
	ip, _ := New(m)
	ip.Hooks.Extern = func(name string, args []uint64) (uint64, int64, error) {
		if name != "double" {
			t.Fatalf("extern name = %s", name)
		}
		return args[0] * 2, 100, nil
	}
	got, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Fatalf("extern result = %d", got)
	}
}

func TestGuardHookAccounting(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	b.Cur.Instrs = append(b.Cur.Instrs, &ir.Instr{Op: ir.OpGuard, A: buf, B: ir.NoReg})
	v := b.Const(7)
	b.Store(buf, 0, v)
	b.Ret(ir.NoReg)
	ip, _ := New(m)
	var guarded []mem.Addr
	ip.Hooks.Guard = func(a mem.Addr) int64 {
		guarded = append(guarded, a)
		return 9
	}
	if _, err := ip.Call("f"); err != nil {
		t.Fatal(err)
	}
	if len(guarded) != 1 {
		t.Fatalf("guards ran %d times", len(guarded))
	}
	if ip.Stats.GuardCycles != 9 || ip.Stats.Guards != 1 {
		t.Fatalf("stats = %+v", ip.Stats)
	}
}

func TestYieldCheckHook(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	for i := 0; i < 5; i++ {
		b.Cur.Instrs = append(b.Cur.Instrs, &ir.Instr{Op: ir.OpYieldCheck, A: ir.NoReg, B: ir.NoReg})
		b.Const(int64(i))
	}
	b.Ret(ir.NoReg)
	ip, _ := New(m)
	var elapsed []int64
	ip.Hooks.YieldCheck = func(e int64) int64 {
		elapsed = append(elapsed, e)
		return 6
	}
	if _, err := ip.Call("f"); err != nil {
		t.Fatal(err)
	}
	if len(elapsed) != 5 {
		t.Fatalf("yield checks = %d", len(elapsed))
	}
	for i := 1; i < len(elapsed); i++ {
		if elapsed[i] <= elapsed[i-1] {
			t.Fatal("elapsed cycles not monotone")
		}
	}
	if ip.Stats.YieldCycles != 30 {
		t.Fatalf("yield cycles = %d", ip.Stats.YieldCycles)
	}
}

func TestMemAccessHook(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	buf := b.Alloc(64)
	v := b.Const(1)
	b.Store(buf, 0, v)
	b.Load(buf, 0)
	b.Ret(ir.NoReg)
	ip, _ := New(m)
	var accesses []bool
	ip.Hooks.MemAccess = func(a mem.Addr, write bool) int64 {
		accesses = append(accesses, write)
		return 50
	}
	before := ip.Stats.Cycles
	if _, err := ip.Call("f"); err != nil {
		t.Fatal(err)
	}
	if len(accesses) != 2 || !accesses[0] || accesses[1] {
		t.Fatalf("accesses = %v", accesses)
	}
	if ip.Stats.Cycles-before < 100 {
		t.Fatal("mem access costs not charged")
	}
}

func TestHeapMove(t *testing.T) {
	h, err := NewHeap(0, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	src, _ := h.Alloc(64)
	dst, _ := h.Alloc(64)
	h.Store(src+8, 0xabc)
	h.Move(src, dst, 64)
	if h.Load(dst+8) != 0xabc {
		t.Fatal("move did not copy content")
	}
	if h.Load(src+8) != 0 {
		t.Fatal("move left stale content")
	}
}

func TestCountingLoopExecution(t *testing.T) {
	m := ir.NewModule("t")
	f := m.NewFunction("f", 0)
	b := ir.NewBuilder(f)
	acc := b.Const(0)
	b.CountingLoop(0, 10, 3, func(i ir.Reg) {
		b.MovTo(acc, b.Add(acc, i))
	})
	b.Ret(acc)
	ip, _ := New(m)
	got, err := ip.Call("f")
	if err != nil {
		t.Fatal(err)
	}
	if got != 0+3+6+9 {
		t.Fatalf("got %d", got)
	}
}

func TestArityMismatch(t *testing.T) {
	ip, _ := New(sumModule())
	if _, err := ip.Call("sum"); err == nil {
		t.Fatal("expected arity error")
	}
}

package interp

import (
	"testing"

	"repro/internal/ir"
)

func TestPairProfileTopOrdering(t *testing.T) {
	p := &PairProfile{}
	p.Note(ir.OpICmp, ir.OpBr)
	p.Note(ir.OpICmp, ir.OpBr)
	p.Note(ir.OpICmp, ir.OpBr)
	p.Note(ir.OpMov, ir.OpJmp) // ties with add+mov on count
	p.Note(ir.OpAdd, ir.OpMov)
	rows := p.Top(0)
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	if rows[0].First != ir.OpICmp || rows[0].Count != 3 {
		t.Errorf("row 0 = %v+%v x%d, want icmp+br x3", rows[0].First, rows[0].Second, rows[0].Count)
	}
	// Equal counts tie-break by (first, second) opcode order (mov is
	// declared before add), so the table is deterministic run to run.
	if rows[1].First != ir.OpMov || rows[2].First != ir.OpAdd {
		t.Errorf("tie-break order %v then %v, want mov+jmp then add+mov", rows[1].First, rows[2].First)
	}
	if got := p.Top(1); len(got) != 1 || got[0].First != ir.OpICmp {
		t.Errorf("Top(1) = %v", got)
	}
}

// TestPairProfileRender pins the exact renderer output `interweave
// interp -profile` prints, including the fusible marking.
func TestPairProfileRender(t *testing.T) {
	p := &PairProfile{}
	for i := 0; i < 12; i++ {
		p.Note(ir.OpICmp, ir.OpBr)
	}
	for i := 0; i < 5; i++ {
		p.Note(ir.OpJmp, ir.OpConst) // block seam: not fusible
	}
	got := p.Render(10)
	expect := "rank pair                                count  fusible\n" +
		"1    icmp + br                              12  yes\n" +
		"2    jmp + const                             5  -\n"
	if got != expect {
		t.Errorf("Render mismatch\ngot:\n%q\nwant:\n%q", got, expect)
	}
}

func TestPairProfileTableSkipsNonFusible(t *testing.T) {
	p := &PairProfile{}
	for i := 0; i < 100; i++ {
		p.Note(ir.OpJmp, ir.OpConst) // hottest, but never fusible
	}
	p.Note(ir.OpICmp, ir.OpBr)
	p.Note(ir.OpAdd, ir.OpLoad)
	ft := p.Table(1)
	pairs := ft.Pairs()
	if len(pairs) != 1 {
		t.Fatalf("Table(1) has %d pairs, want 1", len(pairs))
	}
	// Non-fusible pairs are skipped without consuming a slot; the one
	// slot goes to the hottest fusible pair.
	if pairs[0] != [2]ir.Op{ir.OpAdd, ir.OpLoad} && pairs[0] != [2]ir.Op{ir.OpICmp, ir.OpBr} {
		t.Fatalf("Table(1) picked %v", pairs[0])
	}
	if !ft.Allows(pairs[0][0], pairs[0][1]) || ft.Allows(ir.OpJmp, ir.OpConst) {
		t.Error("derived table allows the wrong pairs")
	}
}

func TestPairProfileMerge(t *testing.T) {
	a, b := &PairProfile{}, &PairProfile{}
	a.Note(ir.OpICmp, ir.OpBr)
	b.Note(ir.OpICmp, ir.OpBr)
	b.Note(ir.OpAdd, ir.OpMov)
	a.Merge(b)
	if a.Total() != 3 {
		t.Errorf("merged total %d, want 3", a.Total())
	}
	a.Merge(nil) // no-op
	if a.Total() != 3 {
		t.Errorf("nil merge changed total to %d", a.Total())
	}
}

func TestPairProfileNoteBounds(t *testing.T) {
	p := &PairProfile{}
	p.Note(ir.Op(-1), ir.OpBr)
	p.Note(ir.OpBr, ir.Op(ir.NumOps))
	if p.Total() != 0 {
		t.Errorf("out-of-range notes recorded: total %d", p.Total())
	}
}

package interp

import (
	"math"

	"repro/internal/ir"
)

// This file is the interpreter's "compile" step: it flattens each IR
// function into a contiguous array of pre-decoded instructions. The
// flattening does four things the tree-walking reference engine pays
// for on every executed instruction:
//
//   - branch targets become absolute PCs (no *Block chasing),
//   - the cycle cost of each op is folded in from the CostTable,
//   - hot adjacent pairs (compare+branch, load+ALU, ALU+load/store,
//     guard+load/store, load+load, store+ALU, ALU+jmp backedges,
//     isolated ALU chains) are fused into single superinstructions
//     with their own dispatch arms in exec.go,
//   - maximal straight-line runs of pure ALU ops are annotated with
//     their length and total cost, so the executor can account a whole
//     run with two additions and then execute values only.
//
// Fusion runs before run annotation, so runs never include a fused
// slot; the shared selection policy (ir.EachFusiblePair) only fuses a
// pure-ALU pair when it is isolated, so fusion never splits a longer
// run the batcher would dispatch more cheaply.
//
// A Program snapshots one (module generation, cost table, fusion
// table) triple; Interp.ensureProg recompiles when any of them change.

// opFellOff is a synthetic opcode placed in the reserved trap slot of a
// block that lacks a terminator (see ir.Layout). Executing it reproduces
// the reference engine's fell-off-the-block diagnostic.
const opFellOff = ir.Op(-1)

// noPC marks an unresolvable branch target (a *Block that is not part
// of the laid-out function — impossible via the builder API).
const noPC = int32(-2)

// cinstr is one pre-decoded instruction, packed into a single 64-byte
// cache line so the dispatch loop touches exactly one line per
// instruction. Call operands (callee name, argument registers, resolved
// target) live in a side table on cfunc, indexed by imm — calls are
// rare relative to ALU/memory traffic.
type cinstr struct {
	op     int32 // ir.Op, opFellOff, or a fused opFused* opcode
	dst    int32 // register indexes; -1 = ir.NoReg
	a, b   int32
	pred   uint8 // ir.Pred for icmp/fcmp (first constituent when fused)
	region bool
	pred2  uint8 // fused pairs: ir.Pred of the second constituent
	aux    uint8 // fused pairs: the ir.Op of the pair's ALU constituent
	// runLen/runCost: when this instruction is run-eligible (a pure
	// ALU op), the number of consecutive run-eligible instructions
	// from here to the end of the run, and their total cycle cost.
	// Computed as suffix sums so execution may also enter mid-run.
	// Fused slots are never run-eligible; their runCost field is
	// repurposed as the second constituent's immediate (imm2).
	runLen  int32
	imm     int64 // immediate; Float64bits(FImm) for fconst; call index for call
	cost    int64 // folded cycle cost of this op (both constituents when fused)
	runCost int64
	target  int32 // OpBr taken / OpJmp target, as absolute PC; fused: a2
	els     int32 // OpBr fall-through, as absolute PC; fused: b2
	blk     int32 // index into cfunc.blocks (diagnostics)
	dst2    int32 // fused pairs: destination of the second constituent
}

// Fused-pair field aliases. A fused slot is never a branch and never
// run-eligible, so the branch-target and run-cost fields are free to
// carry the second constituent's operands; the whole pair then fits in
// the one 64-byte line the dispatch loop already touches. The original
// second slot (pc+1) stays intact for the step-budget fallback path.
func (c *cinstr) a2() int32   { return c.target }
func (c *cinstr) b2() int32   { return c.els }
func (c *cinstr) imm2() int64 { return c.runCost }

// Fused superinstruction opcodes, allocated above the ir opcode space
// (consecutively, to keep the dispatch switch dense). The comparison
// `op >= opFusedBase` routes dispatch to the fused arms.
const (
	opFusedBase int32 = int32(ir.NumOps) + iota
	opFusedICmpBr
	opFusedFCmpBr
	opFusedLoadALU
	opFusedALULoad
	opFusedALUStore
	opFusedGuardLoad
	opFusedGuardStore
	opFusedALUALU
	opFusedLoadLoad
	opFusedStoreALU
	opFusedALUJmp
)

// ccall is the side-table entry for one OpCall site.
type ccall struct {
	callee  string
	calleeF *cfunc  // pre-resolved in-module callee (nil = extern)
	args    []int32 // call argument registers
}

// cfunc is one compiled function.
type cfunc struct {
	name      string
	numParams int
	numRegs   int
	code      []cinstr
	calls     []ccall
	blocks    []*ir.Block // layout order, for diagnostics
	fused     int         // superinstruction pairs formed by the fusion stage
}

// Program is a compiled module: every function flattened, valid for one
// module generation, one cost table, and one fusion table.
type Program struct {
	gen   uint64
	cost  CostTable
	fsig  uint64
	funcs map[string]*cfunc
}

// Gen returns the module generation the program was compiled at.
func (p *Program) Gen() uint64 { return p.gen }

// Func returns the compiled form of the named function (tests).
func (p *Program) Func(name string) *cfunc { return p.funcs[name] }

// FusedPairs returns the total superinstruction pairs the fusion stage
// formed across all functions (benchmark and lockstep reporting).
func (p *Program) FusedPairs() int {
	total := 0
	for _, cf := range p.funcs { // detvet:ok — order-independent sum
		total += cf.fused
	}
	return total
}

// FusedPairsIn returns the fused-pair count of one function.
func (p *Program) FusedPairsIn(name string) int {
	if cf := p.funcs[name]; cf != nil {
		return cf.fused
	}
	return 0
}

// Compile flattens every function of mod against the given cost table,
// fusing the adjacent pairs fuse allows (nil = the static default
// heuristic, every structural pattern; NoFusion() disables fusion). It
// only reads the module, so concurrent compiles of a shared, quiescent
// module are safe.
func Compile(mod *ir.Module, cost CostTable, fuse *FusionTable) *Program {
	p := &Program{gen: mod.Gen(), cost: cost, fsig: fuse.Sig(),
		funcs: make(map[string]*cfunc, len(mod.Funcs))}
	for name, f := range mod.Funcs { // detvet:ok — map fill, order-independent
		p.funcs[name] = compileFunc(f, cost, fuse)
	}
	// Resolve calls to in-module functions now so the executor does no
	// map lookups; a nil calleeF means extern.
	for _, cf := range p.funcs { // detvet:ok — pointer patching, order-independent
		for i := range cf.calls {
			c := &cf.calls[i]
			c.calleeF = p.funcs[c.callee]
		}
	}
	return p
}

// runnable reports whether op may be batched into a straight-line ALU
// run (ir.PureALU: pure register-to-register ops that cannot fault,
// touch memory, invoke hooks, or transfer control). Fused opcodes are
// not runnable: a fused arm does its own batched accounting.
func runnable(op ir.Op) bool {
	return int(op) < ir.NumOps && ir.PureALU(op)
}

// costOf folds the cost table into a per-op cycle cost. Interweaving
// intrinsics cost zero here: their cycles are charged by hooks.
func costOf(op ir.Op, c CostTable) int64 {
	switch op {
	case ir.OpConst, ir.OpFConst, ir.OpMov, ir.OpAdd, ir.OpSub,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpICmp:
		return c.IntALU
	case ir.OpMul:
		return c.IntMul
	case ir.OpDiv, ir.OpRem:
		return c.IntDiv
	case ir.OpFAdd, ir.OpFSub, ir.OpFCmp:
		return c.FPALU
	case ir.OpFMul:
		return c.FPMul
	case ir.OpFDiv:
		return c.FPDiv
	case ir.OpLoad:
		return c.Load
	case ir.OpStore:
		return c.Store
	case ir.OpAlloc:
		return c.Alloc
	case ir.OpFree:
		return c.Free
	case ir.OpCall:
		return c.Call
	case ir.OpBr:
		return c.Branch
	case ir.OpJmp:
		return c.Jump
	case ir.OpRet:
		return c.Ret
	}
	return 0
}

// fusePair rewrites the slot at pc into the fused superinstruction for
// pattern k, pulling the second constituent's operands out of the
// (already encoded) slot at pc+1. That second slot stays intact: normal
// control flow never reaches it — branch targets resolve only to block
// starts — but the step-budget fallback falls through to it after
// executing the first constituent singly.
func fusePair(cf *cfunc, pc int, k ir.FuseKind) {
	s1 := &cf.code[pc]
	s2 := &cf.code[pc+1]
	switch k {
	case ir.FuseCmpBr:
		if ir.Op(s1.op) == ir.OpICmp {
			s1.op = opFusedICmpBr
		} else {
			s1.op = opFusedFCmpBr
		}
		s1.target, s1.els = s2.target, s2.els
	case ir.FuseLoadALU:
		s1.op = opFusedLoadALU
		s1.aux = uint8(s2.op)
		s1.pred2 = s2.pred
		s1.dst2 = s2.dst
		s1.target, s1.els = s2.a, s2.b // a2, b2
		// The ALU constituent reads the load's result, so it is never a
		// const and needs no immediate; the imm2 slot carries its cost so
		// the arm can charge the load before the MemAccess hook observes
		// Stats and the ALU after, matching the reference order.
		s1.runCost = s2.cost
	case ir.FuseALULoad:
		s1.aux = uint8(s1.op)
		s1.op = opFusedALULoad
		s1.dst2 = s2.dst
		s1.target = s2.a    // a2
		s1.runCost = s2.imm // imm2
	case ir.FuseALUStore:
		s1.aux = uint8(s1.op)
		s1.op = opFusedALUStore
		s1.target, s1.els = s2.a, s2.b // a2, b2
		s1.runCost = s2.imm            // imm2
	case ir.FuseGuardLoad:
		s1.op = opFusedGuardLoad
		s1.dst2 = s2.dst
		s1.target = s2.a    // a2
		s1.runCost = s2.imm // imm2
	case ir.FuseGuardStore:
		s1.op = opFusedGuardStore
		s1.target, s1.els = s2.a, s2.b // a2, b2
		s1.runCost = s2.imm            // imm2
	case ir.FuseALUALU:
		// Both constituents are pure ALU; the second's operands are read
		// live from the intact slot at pc+1, so only the first's opcode
		// needs saving.
		s1.aux = uint8(s1.op)
		s1.op = opFusedALUALU
	case ir.FuseLoadLoad:
		s1.op = opFusedLoadLoad
		s1.dst2 = s2.dst
		s1.target = s2.a    // a2
		s1.runCost = s2.imm // imm2
	case ir.FuseStoreALU:
		// The ALU constituent is never a const (pattern excludes them),
		// so imm2 is free to carry its cost for the hook-parity split.
		s1.op = opFusedStoreALU
		s1.aux = uint8(s2.op)
		s1.pred2 = s2.pred
		s1.dst2 = s2.dst
		s1.target, s1.els = s2.a, s2.b // a2, b2
		s1.runCost = s2.cost
	case ir.FuseALUJmp:
		s1.aux = uint8(s1.op)
		s1.op = opFusedALUJmp
		s1.target = s2.target
	}
	s1.cost += s2.cost
	cf.fused++
}

func compileFunc(f *ir.Function, cost CostTable, fuse *FusionTable) *cfunc {
	l := f.Layout()
	cf := &cfunc{
		name:      f.Name,
		numParams: f.NumParams,
		numRegs:   f.NumRegs,
		code:      make([]cinstr, l.N),
		blocks:    l.Blocks,
	}
	resolve := func(b *ir.Block) int32 {
		if pc, ok := l.StartOf(b); ok {
			return int32(pc)
		}
		return noPC
	}
	for bi, b := range l.Blocks {
		pc := l.Start[bi]
		for _, in := range b.Instrs {
			ci := &cf.code[pc]
			ci.op = int32(in.Op)
			ci.pred = uint8(in.Pred)
			ci.region = in.Region
			ci.dst = int32(in.Dst)
			ci.a = int32(in.A)
			ci.b = int32(in.B)
			ci.imm = in.Imm
			ci.cost = costOf(in.Op, cost)
			ci.blk = int32(bi)
			switch in.Op {
			case ir.OpFConst:
				ci.imm = int64(math.Float64bits(in.FImm))
			case ir.OpBr:
				ci.target = resolve(in.Target)
				ci.els = resolve(in.Else)
			case ir.OpJmp:
				ci.target = resolve(in.Target)
			case ir.OpCall:
				args := make([]int32, len(in.Args))
				for i, r := range in.Args {
					args[i] = int32(r)
				}
				ci.imm = int64(len(cf.calls))
				cf.calls = append(cf.calls, ccall{callee: in.Callee, args: args})
			}
			pc++
		}
		if tp := l.TrapPC(bi); tp >= 0 {
			cf.code[tp] = cinstr{op: int32(opFellOff), blk: int32(bi)}
		}
	}
	// Fusion stage: collapse the selected adjacent pairs into
	// superinstructions, greedily per block (ir.EachFusiblePair is the
	// shared selection policy — analysis.LintFusible walks the same
	// pairs). Must run before run annotation: fused slots are not
	// run-eligible, and the policy keeps pure-ALU fusion out of longer
	// runs, so annotation over the fused code stays optimal.
	var allow func(a, b ir.Op) bool
	if fuse != nil {
		allow = fuse.Allows
	}
	for bi, b := range l.Blocks {
		start := l.Start[bi]
		ir.EachFusiblePair(b, allow, func(i int, k ir.FuseKind) {
			fusePair(cf, start+i, k)
		})
	}
	// Annotate straight-line ALU runs with suffix lengths and costs.
	// Runs never cross a block boundary: every block span ends in a
	// terminator or a trap slot, neither of which is runnable.
	for bi, b := range l.Blocks {
		start := l.Start[bi]
		var runLen int32
		var runCost int64
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ci := &cf.code[start+i]
			if runnable(ir.Op(ci.op)) {
				runLen++
				runCost += ci.cost
				ci.runLen = runLen
				ci.runCost = runCost
			} else {
				runLen = 0
				runCost = 0
			}
		}
	}
	return cf
}

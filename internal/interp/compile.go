package interp

import (
	"math"

	"repro/internal/ir"
)

// This file is the interpreter's "compile" step: it flattens each IR
// function into a contiguous array of pre-decoded instructions. The
// flattening does three things the tree-walking reference engine pays
// for on every executed instruction:
//
//   - branch targets become absolute PCs (no *Block chasing),
//   - the cycle cost of each op is folded in from the CostTable,
//   - maximal straight-line runs of pure ALU ops are annotated with
//     their length and total cost, so the executor can account a whole
//     run with two additions and then execute values only.
//
// A Program snapshots one (module generation, cost table) pair;
// Interp.ensureProg recompiles when either changes.

// opFellOff is a synthetic opcode placed in the reserved trap slot of a
// block that lacks a terminator (see ir.Layout). Executing it reproduces
// the reference engine's fell-off-the-block diagnostic.
const opFellOff = ir.Op(-1)

// noPC marks an unresolvable branch target (a *Block that is not part
// of the laid-out function — impossible via the builder API).
const noPC = int32(-2)

// cinstr is one pre-decoded instruction, packed into a single 64-byte
// cache line so the dispatch loop touches exactly one line per
// instruction. Call operands (callee name, argument registers, resolved
// target) live in a side table on cfunc, indexed by imm — calls are
// rare relative to ALU/memory traffic.
type cinstr struct {
	op     int32 // ir.Op, or opFellOff
	dst    int32 // register indexes; -1 = ir.NoReg
	a, b   int32
	pred   uint8 // ir.Pred for icmp/fcmp
	region bool
	_      [2]byte
	// runLen/runCost: when this instruction is run-eligible (a pure
	// ALU op), the number of consecutive run-eligible instructions
	// from here to the end of the run, and their total cycle cost.
	// Computed as suffix sums so execution may also enter mid-run.
	runLen  int32
	imm     int64 // immediate; Float64bits(FImm) for fconst; call index for call
	cost    int64 // folded cycle cost of this op
	runCost int64
	target  int32 // OpBr taken / OpJmp target, as absolute PC
	els     int32 // OpBr fall-through, as absolute PC
	blk     int32 // index into cfunc.blocks (diagnostics)
	_       int32
}

// ccall is the side-table entry for one OpCall site.
type ccall struct {
	callee  string
	calleeF *cfunc  // pre-resolved in-module callee (nil = extern)
	args    []int32 // call argument registers
}

// cfunc is one compiled function.
type cfunc struct {
	name      string
	numParams int
	numRegs   int
	code      []cinstr
	calls     []ccall
	blocks    []*ir.Block // layout order, for diagnostics
}

// Program is a compiled module: every function flattened, valid for one
// module generation and one cost table.
type Program struct {
	gen   uint64
	cost  CostTable
	funcs map[string]*cfunc
}

// Gen returns the module generation the program was compiled at.
func (p *Program) Gen() uint64 { return p.gen }

// Func returns the compiled form of the named function (tests).
func (p *Program) Func(name string) *cfunc { return p.funcs[name] }

// Compile flattens every function of mod against the given cost table.
// It only reads the module, so concurrent compiles of a shared,
// quiescent module are safe.
func Compile(mod *ir.Module, cost CostTable) *Program {
	p := &Program{gen: mod.Gen(), cost: cost, funcs: make(map[string]*cfunc, len(mod.Funcs))}
	for name, f := range mod.Funcs {
		p.funcs[name] = compileFunc(f, cost)
	}
	// Resolve calls to in-module functions now so the executor does no
	// map lookups; a nil calleeF means extern.
	for _, cf := range p.funcs {
		for i := range cf.calls {
			c := &cf.calls[i]
			c.calleeF = p.funcs[c.callee]
		}
	}
	return p
}

// runnable reports whether op may be batched into a straight-line ALU
// run: pure register-to-register ops that cannot fault, touch memory,
// invoke hooks, or transfer control. Div/Rem are excluded (divide by
// zero faults mid-run).
func runnable(op ir.Op) bool {
	switch op {
	case ir.OpConst, ir.OpFConst, ir.OpMov,
		ir.OpAdd, ir.OpSub, ir.OpMul,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr,
		ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv,
		ir.OpICmp, ir.OpFCmp:
		return true
	}
	return false
}

// costOf folds the cost table into a per-op cycle cost. Interweaving
// intrinsics cost zero here: their cycles are charged by hooks.
func costOf(op ir.Op, c CostTable) int64 {
	switch op {
	case ir.OpConst, ir.OpFConst, ir.OpMov, ir.OpAdd, ir.OpSub,
		ir.OpAnd, ir.OpOr, ir.OpXor, ir.OpShl, ir.OpShr, ir.OpICmp:
		return c.IntALU
	case ir.OpMul:
		return c.IntMul
	case ir.OpDiv, ir.OpRem:
		return c.IntDiv
	case ir.OpFAdd, ir.OpFSub, ir.OpFCmp:
		return c.FPALU
	case ir.OpFMul:
		return c.FPMul
	case ir.OpFDiv:
		return c.FPDiv
	case ir.OpLoad:
		return c.Load
	case ir.OpStore:
		return c.Store
	case ir.OpAlloc:
		return c.Alloc
	case ir.OpFree:
		return c.Free
	case ir.OpCall:
		return c.Call
	case ir.OpBr:
		return c.Branch
	case ir.OpJmp:
		return c.Jump
	case ir.OpRet:
		return c.Ret
	}
	return 0
}

func compileFunc(f *ir.Function, cost CostTable) *cfunc {
	l := f.Layout()
	cf := &cfunc{
		name:      f.Name,
		numParams: f.NumParams,
		numRegs:   f.NumRegs,
		code:      make([]cinstr, l.N),
		blocks:    l.Blocks,
	}
	resolve := func(b *ir.Block) int32 {
		if pc, ok := l.StartOf(b); ok {
			return int32(pc)
		}
		return noPC
	}
	for bi, b := range l.Blocks {
		pc := l.Start[bi]
		for _, in := range b.Instrs {
			ci := &cf.code[pc]
			ci.op = int32(in.Op)
			ci.pred = uint8(in.Pred)
			ci.region = in.Region
			ci.dst = int32(in.Dst)
			ci.a = int32(in.A)
			ci.b = int32(in.B)
			ci.imm = in.Imm
			ci.cost = costOf(in.Op, cost)
			ci.blk = int32(bi)
			switch in.Op {
			case ir.OpFConst:
				ci.imm = int64(math.Float64bits(in.FImm))
			case ir.OpBr:
				ci.target = resolve(in.Target)
				ci.els = resolve(in.Else)
			case ir.OpJmp:
				ci.target = resolve(in.Target)
			case ir.OpCall:
				args := make([]int32, len(in.Args))
				for i, r := range in.Args {
					args[i] = int32(r)
				}
				ci.imm = int64(len(cf.calls))
				cf.calls = append(cf.calls, ccall{callee: in.Callee, args: args})
			}
			pc++
		}
		if tp := l.TrapPC(bi); tp >= 0 {
			cf.code[tp] = cinstr{op: int32(opFellOff), blk: int32(bi)}
		}
	}
	// Annotate straight-line ALU runs with suffix lengths and costs.
	// Runs never cross a block boundary: every block span ends in a
	// terminator or a trap slot, neither of which is runnable.
	for bi, b := range l.Blocks {
		start := l.Start[bi]
		var runLen int32
		var runCost int64
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			ci := &cf.code[start+i]
			if runnable(ir.Op(ci.op)) {
				runLen++
				runCost += ci.cost
				ci.runLen = runLen
				ci.runCost = runCost
			} else {
				runLen = 0
				runCost = 0
			}
		}
	}
	return cf
}

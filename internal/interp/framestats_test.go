package interp

import (
	"testing"

	"repro/internal/ir"
)

// TestFrameStatsAccounting: FrameWords accumulates NumRegs per call and
// MaxFrameRegs tracks the widest frame, identically on both engines.
func TestFrameStatsAccounting(t *testing.T) {
	m := ir.NewModule("t")
	wide := m.NewFunction("wide", 1)
	b := ir.NewBuilder(wide)
	v := b.Param(0)
	for i := 0; i < 9; i++ {
		v = b.Add(v, b.Const(int64(i)))
	}
	b.Ret(v)
	wideRegs := wide.NumRegs

	main := m.NewFunction("main", 0)
	b = ir.NewBuilder(main)
	r := b.Call("wide", b.Const(1))
	r = b.Add(r, b.Call("wide", b.Const(2)))
	b.Ret(r)
	mainRegs := main.NumRegs

	wantWords := int64(mainRegs + 2*wideRegs)
	wantMax := int64(wideRegs)
	if wideRegs <= mainRegs {
		t.Fatalf("test setup: wide (%d regs) should out-size main (%d)", wideRegs, mainRegs)
	}

	for _, engine := range []string{"fast", "reference"} {
		ip, err := New(m)
		if err != nil {
			t.Fatal(err)
		}
		if engine == "fast" {
			_, err = ip.Call("main")
		} else {
			_, err = ip.ReferenceCall("main")
		}
		if err != nil {
			t.Fatal(err)
		}
		if ip.Stats.FrameWords != wantWords {
			t.Errorf("%s: FrameWords = %d, want %d", engine, ip.Stats.FrameWords, wantWords)
		}
		if ip.Stats.MaxFrameRegs != wantMax {
			t.Errorf("%s: MaxFrameRegs = %d, want %d", engine, ip.Stats.MaxFrameRegs, wantMax)
		}
	}
}
